// Ablation (§4.2/§5): accuracy of the ACPI battery measurement protocol vs
// run length, and the Baytech cross-check.  The paper runs applications
// for minutes (or iterates them) specifically so the 15-20 s ACPI refresh
// and 1 mWh quantization do not distort the energy numbers.
//
// The run-length sweep is a campaign whose only axis is the workload list:
// the same FT kernel instantiated at six problem scales.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Ablation: ACPI/Baytech measurement error vs run length").c_str());

  core::RunConfig cfg = core::RunConfigBuilder(bench::base_config(args))
                            .use_meters(true)
                            .build();
  campaign::ExperimentSpec spec;
  for (double scale : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    spec.workload(apps::make_ft(scale), "FT scale " + analysis::fmt(scale, 2));
  }
  spec.base(cfg).trials(1);
  const auto result = bench::run(spec, args);

  analysis::TextTable t({"run length", "true J", "ACPI J", "ACPI err %",
                         "Baytech J", "Baytech err %"});
  for (const auto& cell : result.cells) {
    const auto& r = cell.result;
    const double acpi_err = 100 * (r.energy_acpi_j - r.energy_j) / r.energy_j;
    const double bay_err = 100 * (r.energy_baytech_j - r.energy_j) / r.energy_j;
    t.add_row({analysis::fmt(r.delay_s, 0) + " s", analysis::fmt(r.energy_j, 0),
               analysis::fmt(r.energy_acpi_j, 0), analysis::fmt(acpi_err, 1),
               analysis::fmt(r.energy_baytech_j, 0), analysis::fmt(bay_err, 1)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Short runs suffer from the stale 15-20 s ACPI refresh and 1 mWh "
              "quantization; minutes-long runs converge — reproducing why the "
              "paper sized problems 'measured in minutes' and repeated trials.\n");
  return 0;
}
