// Ablation (§4.2/§5): accuracy of the ACPI battery measurement protocol vs
// run length, and the Baytech cross-check.  The paper runs applications
// for minutes (or iterates them) specifically so the 15-20 s ACPI refresh
// and 1 mWh quantization do not distort the energy numbers.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Ablation: ACPI/Baytech measurement error vs run length").c_str());

  analysis::TextTable t({"run length", "true J", "ACPI J", "ACPI err %",
                         "Baytech J", "Baytech err %"});
  for (double scale : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    auto ft = apps::make_ft(scale);
    core::RunConfig cfg = bench::base_config(args);
    cfg.use_meters = true;
    const auto r = core::run_workload(ft, cfg);
    const double acpi_err = 100 * (r.energy_acpi_j - r.energy_j) / r.energy_j;
    const double bay_err = 100 * (r.energy_baytech_j - r.energy_j) / r.energy_j;
    t.add_row({analysis::fmt(r.delay_s, 0) + " s", analysis::fmt(r.energy_j, 0),
               analysis::fmt(r.energy_acpi_j, 0), analysis::fmt(acpi_err, 1),
               analysis::fmt(r.energy_baytech_j, 0), analysis::fmt(bay_err, 1)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Short runs suffer from the stale 15-20 s ACPI refresh and 1 mWh "
              "quantization; minutes-long runs converge — reproducing why the "
              "paper sized problems 'measured in minutes' and repeated trials.\n");
  return 0;
}
