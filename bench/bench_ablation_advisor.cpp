// Ablation: advisor-derived INTERNAL schedules vs. the paper's hand-written
// insertions.
//
// For FT (§5.3) the advisor reads one profiled run and must re-derive the
// Figure-10 phase schedule (1400 MHz, 600 MHz around MPI_Alltoall); the
// acceptance gate asserts its measured energy is within 2% and delay within
// 1% of the hand insertion.  For CG (§5.4) the advisor must reproduce the
// rank asymmetry behind the paper's internal I split (lower half faster
// than upper half); the table compares it against the hand 1200/800.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace pcd;

namespace {

struct CaseResult {
  core::RunResult baseline;
  profiler::InternalSchedule schedule;
  core::RunResult advised;
  core::RunResult hand;
};

CaseResult run_case(const apps::Workload& workload, const core::RunConfig& base,
                    const apps::DvsHooks& paper_hooks) {
  CaseResult out;
  core::RunConfig profile_cfg = base;
  profile_cfg.profile = true;
  out.baseline = core::run_workload(workload, profile_cfg);
  out.schedule = profiler::advise(*out.baseline.profiler);

  core::RunConfig advised_cfg = base;
  advised_cfg.hooks = core::hooks_for(out.schedule);
  out.advised = core::run_workload(workload, advised_cfg);

  core::RunConfig hand_cfg = base;
  hand_cfg.hooks = paper_hooks;
  out.hand = core::run_workload(workload, hand_cfg);
  return out;
}

void add_rows(analysis::TextTable& t, const char* code, const CaseResult& c) {
  auto row = [&](const char* label, const core::RunResult& r) {
    t.add_row({code, label, analysis::fmt(r.delay_s, 4), analysis::fmt(r.energy_j, 1),
               analysis::fmt(r.delay_s / c.baseline.delay_s, 4),
               analysis::fmt(r.energy_j / c.baseline.energy_j, 4)});
  };
  row("baseline (profile run)", c.baseline);
  row("advisor schedule", c.advised);
  row("paper hand insertion", c.hand);
  t.add_row({code, "advisor predicted", "-", "-",
             analysis::fmt(c.schedule.predicted_delay_factor, 4),
             analysis::fmt(c.schedule.predicted_energy_factor, 4)});
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const core::RunConfig base = bench::base_config(args);

  const auto ft = run_case(apps::make_ft(args.scale), base,
                           core::internal_phase_hooks(1400, 600));
  const auto cg = run_case(apps::make_cg(args.scale), base,
                           core::internal_rank_speed_hooks(
                               [](int rank) { return rank < 4 ? 1200 : 800; }));

  analysis::TextTable t(
      {"code", "schedule", "delay (s)", "energy (J)", "norm delay", "norm energy"});
  add_rows(t, "FT", ft);
  add_rows(t, "CG", cg);
  std::printf("advisor vs hand-written INTERNAL, scale %.2f\n%s", args.scale,
              t.str().c_str());

  std::printf("FT advisor: mode=%s label=%s low=%d MHz\n",
              profiler::to_string(ft.schedule.mode), ft.schedule.phase_label.c_str(),
              ft.schedule.low_mhz);
  std::printf("CG advisor: mode=%s speeds:", profiler::to_string(cg.schedule.mode));
  for (int mhz : cg.schedule.rank_mhz) std::printf(" %d", mhz);
  std::printf("\n");

  // Gate 1: the FT advisor must land on the paper's phase schedule —
  // measured within 2% energy and 1% delay of the hand insertion.
  const double ft_delay_err = std::abs(ft.advised.delay_s / ft.hand.delay_s - 1.0);
  const double ft_energy_err = std::abs(ft.advised.energy_j / ft.hand.energy_j - 1.0);
  if (ft.schedule.mode != profiler::InternalSchedule::Mode::Phase ||
      ft_delay_err > 0.01 || ft_energy_err > 0.02) {
    std::fprintf(stderr,
                 "FT advisor diverged from the hand schedule: mode=%s "
                 "delay err %.2f%%, energy err %.2f%%\n",
                 profiler::to_string(ft.schedule.mode), 100 * ft_delay_err,
                 100 * ft_energy_err);
    return 1;
  }

  // Gate 2: the CG advisor must reproduce the paper's rank asymmetry
  // (every lower-half rank at least as fast as every upper-half rank, and
  // strictly faster in aggregate).
  bool asym = cg.schedule.mode == profiler::InternalSchedule::Mode::PerRank &&
              cg.schedule.rank_mhz.size() >= 8;
  if (asym) {
    int lower = 0, upper = 0;
    for (std::size_t r = 0; r < 8; ++r) {
      (r < 4 ? lower : upper) += cg.schedule.rank_mhz[r];
    }
    asym = lower > upper;
  }
  if (!asym) {
    std::fprintf(stderr, "CG advisor failed to reproduce the rank asymmetry\n");
    return 1;
  }
  return 0;
}
