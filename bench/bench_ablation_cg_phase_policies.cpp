// Ablation (§5.3.2): the two *rejected* phase-based INTERNAL policies for
// CG — scale down during every communication, and scale down during every
// MPI_Wait.  The paper found both increase BOTH energy and delay by 1-3%
// because CG's cycles are too short to amortize transition overhead.
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Ablation: rejected phase-based internal policies for CG (§5.3.2)").c_str());

  auto cg = apps::make_cg(args.scale);
  core::RunConfig base_cfg = bench::base_config(args);
  base_cfg.static_mhz = 1400;
  const auto base = core::run_trials(cg, base_cfg, args.trials);

  analysis::TextTable t({"policy", "norm delay", "norm energy", "DVS transitions"});
  auto add = [&](const char* label, const core::RunResult& r) {
    t.add_row({label, analysis::fmt(r.delay_s / base.delay_s),
               analysis::fmt(r.energy_j / base.energy_j),
               std::to_string(r.dvs_transitions)});
  };

  core::RunConfig comm_cfg = bench::base_config(args);
  comm_cfg.hooks = core::internal_comm_scaling_hooks(1400, 600);
  add("scale-during-comm (rejected)", core::run_trials(cg, comm_cfg, args.trials));

  core::RunConfig wait_cfg = bench::base_config(args);
  wait_cfg.hooks = core::internal_wait_scaling_hooks(1400, 600);
  add("scale-during-wait (rejected)", core::run_trials(cg, wait_cfg, args.trials));

  core::RunConfig hetero_cfg = bench::base_config(args);
  hetero_cfg.hooks = core::internal_rank_speed_hooks(
      [](int rank) { return rank <= 3 ? 1200 : 800; });
  add("heterogeneous (adopted)", core::run_trials(cg, hetero_cfg, args.trials));

  std::printf("%s\n", t.str().c_str());
  std::printf("Paper: both phase-based policies *increase* energy and delay "
              "(1~3%%) — CG's message cycles are too short for the 10-30 us "
              "transition stalls; the adopted policy is per-rank static.\n");
  return 0;
}
