// Ablation (§5.3.2): the two *rejected* phase-based INTERNAL policies for
// CG — scale down during every communication, and scale down during every
// MPI_Wait.  The paper found both increase BOTH energy and delay by 1-3%
// because CG's cycles are too short to amortize transition overhead.
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Ablation: rejected phase-based internal policies for CG (§5.3.2)").c_str());

  campaign::ExperimentSpec spec;
  spec.workload(apps::make_cg(args.scale))
      .base(bench::base_config(args))
      .axis(campaign::Axis::strategies(
          "policy",
          {{"1400",
            [](core::RunConfig& c) { c.static_mhz = 1400; }},
           {"scale-during-comm (rejected)",
            [](core::RunConfig& c) {
              c.hooks = core::internal_comm_scaling_hooks(1400, 600);
            }},
           {"scale-during-wait (rejected)",
            [](core::RunConfig& c) {
              c.hooks = core::internal_wait_scaling_hooks(1400, 600);
            }},
           {"heterogeneous (adopted)",
            [](core::RunConfig& c) {
              c.hooks = core::internal_rank_speed_hooks(
                  [](int rank) { return rank <= 3 ? 1200 : 800; });
            }}}))
      .trials(args.trials);
  const auto result = bench::run(spec, args);
  const std::string cg = spec.workload_entries().front().first;

  analysis::TextTable t({"policy", "norm delay", "norm energy", "DVS transitions"});
  for (const char* label : {"scale-during-comm (rejected)",
                            "scale-during-wait (rejected)",
                            "heterogeneous (adopted)"}) {
    const auto ed = bench::normalized(result, cg, {label}, {"1400"});
    const auto* cell = result.find(cg, {label});
    t.add_row({label, analysis::fmt(ed.delay), analysis::fmt(ed.energy),
               std::to_string(cell->result.dvs_transitions)});
  }

  std::printf("%s\n", t.str().c_str());
  std::printf("Paper: both phase-based policies *increase* energy and delay "
              "(1~3%%) — CG's message cycles are too short for the 10-30 us "
              "transition stalls; the adopted policy is per-rank static.\n");
  return 0;
}
