// Ablation (§5.1): CPUSPEED 1.1 (0.1 s interval) vs 1.2.1 (2 s interval),
// plus a threshold sweep — the paper's planned future work on tuning the
// daemon for codes that perform poorly.
//
// Paper: "CPUSPEED version 1.1 always chooses the highest CPU speed for
// most NPB codes without significant energy savings" — the short interval
// makes any compute spike jump straight back to full speed.
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Ablation: CPUSPEED version (polling interval) and thresholds").c_str());

  campaign::ExperimentSpec spec;
  for (const auto& name : {"FT", "CG", "MG", "EP"}) {
    spec.workload(*apps::npb_by_name(name, args.scale));
  }
  spec.base(bench::base_config(args))
      .axis(campaign::Axis::strategies(
          "daemon",
          {{"1400", [](core::RunConfig& c) { c.static_mhz = 1400; }},
           {"v1.1",
            [](core::RunConfig& c) { c.daemon = core::CpuspeedParams::v1_1(); }},
           {"v1.2.1",
            [](core::RunConfig& c) { c.daemon = core::CpuspeedParams::v1_2_1(); }}}))
      .trials(args.trials);
  const auto result = bench::run(spec, args);

  analysis::TextTable t({"code", "v1.1 (0.1s) delay/energy", "v1.2.1 (2s) delay/energy",
                         "v1.2.1 mean f (MHz)"});
  for (const auto& [label, workload] : spec.workload_entries()) {
    const auto v11 = bench::normalized(result, label, {"v1.1"}, {"1400"});
    const auto v121 = bench::normalized(result, label, {"v1.2.1"}, {"1400"});
    const auto* v121_cell = result.find(label, {"v1.2.1"});
    t.add_row({workload.name,
               analysis::fmt(v11.delay) + " / " + analysis::fmt(v11.energy),
               analysis::fmt(v121.delay) + " / " + analysis::fmt(v121.energy),
               std::to_string(static_cast<int>(v121_cell->result.dvs_transitions)) +
                   " transitions"});
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("Threshold sweep for MG (usage_threshold; v1.2.1 interval):\n");
  campaign::ExperimentSpec sweep;
  core::RunConfig daemon_base = bench::base_config(args);
  daemon_base.daemon = core::CpuspeedParams::v1_2_1();
  sweep.workload(*apps::npb_by_name("MG", args.scale))
      .base(daemon_base)
      .axis(campaign::Axis::numeric("usage threshold", {0.60, 0.75, 0.85, 0.95},
                                    [](core::RunConfig& c, double usage) {
                                      c.daemon->usage_threshold = usage;
                                      if (c.daemon->max_threshold <= usage) {
                                        c.daemon->max_threshold = usage + 0.04;
                                      }
                                    }))
      .trials(args.trials);
  const auto sweep_result = bench::run(sweep, args);

  core::RunConfig base_cfg = bench::base_config(args);
  base_cfg.static_mhz = 1400;
  const auto base = campaign::run_trials(*apps::npb_by_name("MG", args.scale),
                                         base_cfg, args.trials, args.threads);
  for (const auto& cell : sweep_result.cells) {
    std::printf("  usage<%.2f: delay %.2f energy %.2f\n", cell.numbers.front(),
                cell.result.delay_s / base.delay_s,
                cell.result.energy_j / base.energy_j);
  }
  std::printf("\nLower thresholds keep MG fast (no savings); higher thresholds "
              "trade large delay for energy — the paper's MG/BT pathology.\n");
  return 0;
}
