// Ablation (§5.1): CPUSPEED 1.1 (0.1 s interval) vs 1.2.1 (2 s interval),
// plus a threshold sweep — the paper's planned future work on tuning the
// daemon for codes that perform poorly.
//
// Paper: "CPUSPEED version 1.1 always chooses the highest CPU speed for
// most NPB codes without significant energy savings" — the short interval
// makes any compute spike jump straight back to full speed.
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Ablation: CPUSPEED version (polling interval) and thresholds").c_str());

  analysis::TextTable t({"code", "v1.1 (0.1s) delay/energy", "v1.2.1 (2s) delay/energy",
                         "v1.2.1 mean f (MHz)"});
  for (const auto& name : {"FT", "CG", "MG", "EP"}) {
    auto workload = *apps::npb_by_name(name, args.scale);
    core::RunConfig base_cfg = bench::base_config(args);
    base_cfg.static_mhz = 1400;
    const auto base = core::run_trials(workload, base_cfg, args.trials);

    auto run_daemon = [&](core::CpuspeedParams params) {
      core::RunConfig cfg = bench::base_config(args);
      cfg.daemon = params;
      return core::run_trials(workload, cfg, args.trials);
    };
    const auto v11 = run_daemon(core::CpuspeedParams::v1_1());
    const auto v121 = run_daemon(core::CpuspeedParams::v1_2_1());

    t.add_row({workload.name,
               analysis::fmt(v11.delay_s / base.delay_s) + " / " +
                   analysis::fmt(v11.energy_j / base.energy_j),
               analysis::fmt(v121.delay_s / base.delay_s) + " / " +
                   analysis::fmt(v121.energy_j / base.energy_j),
               std::to_string(static_cast<int>(v121.dvs_transitions))  + " transitions"});
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("Threshold sweep for MG (usage_threshold; v1.2.1 interval):\n");
  auto mg = *apps::npb_by_name("MG", args.scale);
  core::RunConfig base_cfg = bench::base_config(args);
  base_cfg.static_mhz = 1400;
  const auto base = core::run_trials(mg, base_cfg, args.trials);
  for (double usage : {0.60, 0.75, 0.85, 0.95}) {
    core::RunConfig cfg = bench::base_config(args);
    core::CpuspeedParams p = core::CpuspeedParams::v1_2_1();
    p.usage_threshold = usage;
    if (p.max_threshold <= usage) p.max_threshold = usage + 0.04;
    cfg.daemon = p;
    const auto run = core::run_trials(mg, cfg, args.trials);
    std::printf("  usage<%.2f: delay %.2f energy %.2f\n", usage,
                run.delay_s / base.delay_s, run.energy_j / base.energy_j);
  }
  std::printf("\nLower thresholds keep MG fast (no savings); higher thresholds "
              "trade large delay for energy — the paper's MG/BT pathology.\n");
  return 0;
}
