// Ablation: what each resilience mechanism buys under escalating faults.
//
// Runs CG under the CPUSPEED daemon while sweeping fault severity
// (healthy, straggler hazard, cluster-wide stuck DVS, node crash) crossed
// with the armed resilience (none / watchdog / checkpoint-restart), and
// reports delay and energy vs. the fault-free daemon run plus the
// detect/recover counters.  The zero-cost claim is visible in the first
// two rows: arming resilience with no faults reproduces the healthy run
// bit-for-bit.
#include <cstdio>
#include <string>

#include "bench/bench_common.hpp"

using namespace pcd;

namespace {

struct Row {
  std::string label;
  core::RunResult result;
};

core::RunConfig daemon_base(const bench::BenchArgs& args) {
  core::RunConfig cfg;
  cfg.seed = args.seed;
  cfg.daemon = core::CpuspeedParams{};
  cfg.daemon->interval_s = 0.2;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto workload = apps::make_cg(args.scale);
  std::vector<Row> rows;

  rows.push_back({"daemon, healthy",
                  core::run_workload(workload, daemon_base(args))});

  {
    core::RunConfig cfg = daemon_base(args);
    cfg.faults.resilience.watchdog = true;
    cfg.faults.resilience.mpi_timeout_s = 120;
    rows.push_back({"daemon, armed, no faults", core::run_workload(workload, cfg)});
  }

  {
    core::RunConfig cfg = daemon_base(args);
    fault::HazardModel hazard;
    hazard.kind = fault::FaultKind::Straggler;
    hazard.mtbf_s = 2.0;
    hazard.duration_s = 0.5;
    hazard.magnitude = 0.5;
    cfg.faults.hazards.push_back(hazard);
    cfg.faults.horizon_s = 60;
    rows.push_back({"straggler hazard", core::run_workload(workload, cfg)});
  }

  for (bool watchdog : {false, true}) {
    core::RunConfig cfg = daemon_base(args);
    for (int n = 0; n < workload.ranks; ++n) {
      cfg.faults.events.push_back(fault::stuck_dvs(0.3, n, 1.0));
    }
    cfg.faults.resilience.watchdog = watchdog;
    cfg.faults.resilience.watchdog_params.check_interval_s = 0.25;
    cfg.faults.resilience.watchdog_params.stuck_checks_before_fallback = 2;
    rows.push_back({watchdog ? "stuck DVS + watchdog" : "stuck DVS, unguarded",
                    core::run_workload(workload, cfg)});
  }

  for (bool ckpt : {false, true}) {
    core::RunConfig cfg = daemon_base(args);
    cfg.faults.events.push_back(fault::node_crash(0.6, 0, /*boot_delay_s=*/0.5));
    cfg.faults.resilience.mpi_timeout_s = 5;
    if (ckpt) {
      cfg.faults.resilience.checkpoint_interval_s = 0.5;
      cfg.faults.resilience.checkpoint_cost_s = 0.05;
    }
    rows.push_back({ckpt ? "node crash + C/R" : "node crash, no C/R",
                    core::run_workload(workload, cfg)});
  }

  const double base_delay = rows[0].result.delay_s;
  const double base_energy = rows[0].result.energy_j;
  analysis::TextTable table({"scenario", "delay (s)", "d vs healthy", "energy (J)",
                             "detected", "recovered", "outcome"});
  for (const auto& row : rows) {
    const auto& r = row.result;
    char delta[32];
    std::snprintf(delta, sizeof delta, "%+.1f%%",
                  100.0 * (r.delay_s / base_delay - 1.0));
    const auto* rep = r.fault_report.has_value() ? &*r.fault_report : nullptr;
    table.add_row({row.label, analysis::fmt(r.delay_s, 3), delta,
                   analysis::fmt(r.energy_j, 1),
                   rep ? std::to_string(rep->detections) : "-",
                   rep ? std::to_string(rep->recoveries) : "-",
                   r.failed ? "FAILED (detected)" : "completed"});
  }
  std::printf("CG scale %.2f, %d ranks: fault/resilience ablation\n%s", args.scale,
              workload.ranks, table.str().c_str());
  std::printf("healthy daemon reference: delay %.3f s, energy %.1f J\n", base_delay,
              base_energy);

  // The zero-cost property, asserted rather than eyeballed.
  const auto& armed = rows[1].result;
  if (armed.delay_s != base_delay || armed.energy_j != base_energy) {
    std::fprintf(stderr, "zero-cost violation: armed run diverged from healthy run\n");
    return 1;
  }
  return 0;
}
