// Ablation: what each resilience mechanism buys under escalating faults.
//
// Runs CG under the CPUSPEED daemon while sweeping fault severity
// (healthy, straggler hazard, cluster-wide stuck DVS, node crash) crossed
// with the armed resilience (none / watchdog / checkpoint-restart), and
// reports delay and energy vs. the fault-free daemon run plus the
// detect/recover counters.  The whole sweep is one campaign over a
// "scenario" strategy axis; the zero-cost claim is visible in the first
// two rows: arming resilience with no faults reproduces the healthy run
// bit-for-bit.
#include <cstdio>
#include <string>

#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto workload = apps::make_cg(args.scale);
  const int ranks = workload.ranks;

  core::CpuspeedParams daemon;
  daemon.interval_s = 0.2;
  const core::RunConfig base = core::RunConfigBuilder()
                                   .seed(args.seed)
                                   .daemon(daemon)
                                   .build();

  std::vector<std::pair<std::string, std::function<void(core::RunConfig&)>>> scenarios;
  scenarios.emplace_back("daemon, healthy", [](core::RunConfig&) {});
  scenarios.emplace_back("daemon, armed, no faults", [](core::RunConfig& c) {
    c.faults.resilience.watchdog = true;
    c.faults.resilience.mpi_timeout_s = 120;
  });
  scenarios.emplace_back("straggler hazard", [](core::RunConfig& c) {
    fault::HazardModel hazard;
    hazard.kind = fault::FaultKind::Straggler;
    hazard.mtbf_s = 2.0;
    hazard.duration_s = 0.5;
    hazard.magnitude = 0.5;
    c.faults.hazards.push_back(hazard);
    c.faults.horizon_s = 60;
  });
  for (bool watchdog : {false, true}) {
    scenarios.emplace_back(
        watchdog ? "stuck DVS + watchdog" : "stuck DVS, unguarded",
        [watchdog, ranks](core::RunConfig& c) {
          for (int n = 0; n < ranks; ++n) {
            c.faults.events.push_back(fault::stuck_dvs(0.3, n, 1.0));
          }
          c.faults.resilience.watchdog = watchdog;
          c.faults.resilience.watchdog_params.check_interval_s = 0.25;
          c.faults.resilience.watchdog_params.stuck_checks_before_fallback = 2;
        });
  }
  for (bool ckpt : {false, true}) {
    scenarios.emplace_back(
        ckpt ? "node crash + C/R" : "node crash, no C/R",
        [ckpt](core::RunConfig& c) {
          c.faults.events.push_back(fault::node_crash(0.6, 0, /*boot_delay_s=*/0.5));
          c.faults.resilience.mpi_timeout_s = 5;
          if (ckpt) {
            c.faults.resilience.checkpoint_interval_s = 0.5;
            c.faults.resilience.checkpoint_cost_s = 0.05;
          }
        });
  }

  campaign::ExperimentSpec spec;
  spec.workload(workload)
      .base(base)
      .axis(campaign::Axis::strategies("scenario", scenarios))
      .trials(1);
  const auto result = bench::run(spec, args);

  const auto& healthy = result.cells.front().result;
  const double base_delay = healthy.delay_s;
  const double base_energy = healthy.energy_j;
  analysis::TextTable table({"scenario", "delay (s)", "d vs healthy", "energy (J)",
                             "detected", "recovered", "outcome"});
  for (const auto& cell : result.cells) {
    const auto& r = cell.result;
    char delta[32];
    std::snprintf(delta, sizeof delta, "%+.1f%%",
                  100.0 * (r.delay_s / base_delay - 1.0));
    const auto* rep = r.fault_report.has_value() ? &*r.fault_report : nullptr;
    table.add_row({cell.labels.front(), analysis::fmt(r.delay_s, 3), delta,
                   analysis::fmt(r.energy_j, 1),
                   rep ? std::to_string(rep->detections) : "-",
                   rep ? std::to_string(rep->recoveries) : "-",
                   r.failed ? "FAILED (detected)" : "completed"});
  }
  std::printf("CG scale %.2f, %d ranks: fault/resilience ablation\n%s", args.scale,
              ranks, table.str().c_str());
  std::printf("healthy daemon reference: delay %.3f s, energy %.1f J\n", base_delay,
              base_energy);

  // The zero-cost property, asserted rather than eyeballed.
  const auto& armed = result.cells[1].result;
  if (armed.delay_s != base_delay || armed.energy_j != base_energy) {
    std::fprintf(stderr, "zero-cost violation: armed run diverged from healthy run\n");
    return 1;
  }
  return 0;
}
