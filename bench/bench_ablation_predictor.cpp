// Ablation (paper §7 future work): the phase-predictor daemon vs CPUSPEED
// 1.2.1 across all NPB codes — does better prediction fix the MG/BT
// pathology while keeping the FT/IS savings?
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/predictor.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Ablation: phase-predictor daemon (future work) vs CPUSPEED 1.2.1").c_str());

  campaign::ExperimentSpec spec;
  spec.workloads(apps::all_npb(args.scale))
      .base(bench::base_config(args))
      .axis(campaign::Axis::strategies(
          "scheduler",
          {{"1400", [](core::RunConfig& c) { c.static_mhz = 1400; }},
           {"cpuspeed",
            [](core::RunConfig& c) { c.daemon = core::CpuspeedParams::v1_2_1(); }},
           {"predictor",
            [](core::RunConfig& c) { c.predictor = core::PhasePredictorParams{}; }}}))
      .trials(args.trials);
  const auto result = bench::run(spec, args);

  analysis::TextTable t({"code", "cpuspeed delay/energy", "predictor delay/energy",
                         "predictor wins ED2P?"});
  for (const auto& [label, workload] : spec.workload_entries()) {
    const auto cs_n = bench::normalized(result, label, {"cpuspeed"}, {"1400"});
    const auto pred_n = bench::normalized(result, label, {"predictor"}, {"1400"});
    const bool wins = core::fused_value(core::Metric::ED2P, pred_n) <
                      core::fused_value(core::Metric::ED2P, cs_n);
    t.add_row({workload.name,
               analysis::fmt(cs_n.delay) + " / " + analysis::fmt(cs_n.energy),
               analysis::fmt(pred_n.delay) + " / " + analysis::fmt(pred_n.energy),
               wins ? "yes" : "no"});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("The predictor classifies windows (compute / slack / mixed) and "
              "jumps directly instead of stepping — removing CPUSPEED's lag on "
              "phase boundaries and its drift on blended codes.\n");
  return 0;
}
