// Ablation (paper §7 future work): the phase-predictor daemon vs CPUSPEED
// 1.2.1 across all NPB codes — does better prediction fix the MG/BT
// pathology while keeping the FT/IS savings?
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/predictor.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Ablation: phase-predictor daemon (future work) vs CPUSPEED 1.2.1").c_str());

  analysis::TextTable t({"code", "cpuspeed delay/energy", "predictor delay/energy",
                         "predictor wins ED2P?"});
  for (const auto& workload : apps::all_npb(args.scale)) {
    core::RunConfig base_cfg = bench::base_config(args);
    base_cfg.static_mhz = 1400;
    const auto base = core::run_trials(workload, base_cfg, args.trials);

    core::RunConfig cs_cfg = bench::base_config(args);
    cs_cfg.daemon = core::CpuspeedParams::v1_2_1();
    const auto cs = core::run_trials(workload, cs_cfg, args.trials);

    core::RunConfig pred_cfg = bench::base_config(args);
    pred_cfg.predictor = core::PhasePredictorParams{};
    const auto pred = core::run_trials(workload, pred_cfg, args.trials);

    const auto norm = [&](const core::RunResult& r) {
      return core::EnergyDelay{r.energy_j / base.energy_j, r.delay_s / base.delay_s};
    };
    const auto cs_n = norm(cs);
    const auto pred_n = norm(pred);
    const bool wins = core::fused_value(core::Metric::ED2P, pred_n) <
                      core::fused_value(core::Metric::ED2P, cs_n);
    t.add_row({workload.name,
               analysis::fmt(cs_n.delay) + " / " + analysis::fmt(cs_n.energy),
               analysis::fmt(pred_n.delay) + " / " + analysis::fmt(pred_n.energy),
               wins ? "yes" : "no"});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("The predictor classifies windows (compute / slack / mixed) and "
              "jumps directly instead of stepping — removing CPUSPEED's lag on "
              "phase boundaries and its drift on blended codes.\n");
  return 0;
}
