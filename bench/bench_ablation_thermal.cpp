// Ablation (paper §1): thermal and reliability impact of DVS scheduling.
// "Component life expectancy decreases 50% for every 10°C increase" — so a
// schedule that lowers the average CPU temperature raises expected
// component life.  Runs FT under the three strategies and reports mean /
// peak CPU temperature and the Arrhenius life factor vs the no-DVS run.
#include <cstdio>
#include <numeric>

#include "bench/bench_common.hpp"
#include "core/strategies.hpp"
#include "mpi/comm.hpp"
#include "power/thermal.hpp"

using namespace pcd;

namespace {

struct ThermalResult {
  double delay_s = 0;
  double mean_c = 0;
  double peak_c = 0;
};

ThermalResult run_with_thermal(const apps::Workload& workload,
                               const core::RunConfig& config) {
  // Mirrors core::run_workload but attaches a ThermalModel per node.
  sim::Engine engine;
  machine::ClusterConfig cc = config.cluster;
  cc.nodes = workload.ranks;
  cc.seed = config.seed;
  machine::Cluster cluster(engine, cc);

  if (config.static_mhz != 0) {
    cluster.set_all_cpuspeed(config.static_mhz);
    engine.run_until(engine.now() + sim::kMillisecond);
  }
  std::vector<std::unique_ptr<power::ThermalModel>> thermals;
  for (int i = 0; i < cluster.size(); ++i) {
    thermals.push_back(std::make_unique<power::ThermalModel>(
        engine, cluster.node(i).power(), power::ThermalParams{}));
    thermals.back()->start();
  }
  std::vector<std::unique_ptr<core::CpuspeedDaemon>> daemons;
  if (config.daemon) {
    for (int i = 0; i < cluster.size(); ++i) {
      daemons.push_back(std::make_unique<core::CpuspeedDaemon>(
          engine, cluster.node(i), *config.daemon));
      daemons.back()->start();
    }
  }

  std::vector<int> ids(workload.ranks);
  std::iota(ids.begin(), ids.end(), 0);
  mpi::Comm comm(cluster, ids);
  apps::AppContext ctx;
  ctx.comm = &comm;
  ctx.hooks = &config.hooks;

  std::vector<sim::Process> procs;
  for (int r = 0; r < workload.ranks; ++r) {
    procs.push_back(sim::spawn(engine, workload.make_rank(ctx, r)));
  }
  const sim::SimTime t0 = engine.now();
  // Join all ranks, then freeze the instruments at exactly t_end (a large
  // run() batch would otherwise process daemon/thermal ticks far past it).
  ThermalResult out;
  bool done = false;
  auto watcher = [&]() -> sim::Process {
    for (auto& p : procs) co_await p;
    out.delay_s = sim::to_seconds(engine.now() - t0);
    for (auto& th : thermals) {
      out.mean_c += th->mean_c() / thermals.size();
      out.peak_c = std::max(out.peak_c, th->peak_c());
      th->stop();
    }
    for (auto& d : daemons) d->stop();
    done = true;
  };
  sim::spawn(engine, watcher());
  while (!done) {
    if (engine.run(100'000) == 0) break;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Ablation: CPU temperature and Arrhenius life factor under DVS (FT.C.8)").c_str());

  auto ft = apps::make_ft(args.scale);
  analysis::TextTable t({"schedule", "delay (s)", "mean T (C)", "peak T (C)",
                         "life factor vs no-DVS"});

  const auto base = run_with_thermal(
      ft, core::RunConfigBuilder(bench::base_config(args)).static_mhz(1400).build());
  auto add = [&](const char* label, const ThermalResult& r) {
    t.add_row({label, analysis::fmt(r.delay_s, 1), analysis::fmt(r.mean_c, 1),
               analysis::fmt(r.peak_c, 1),
               analysis::fmt(power::ThermalModel::arrhenius_life_factor(
                                 r.mean_c, base.mean_c), 2) + "x"});
  };
  add("no DVS (1400)", base);

  auto builder = [&] { return core::RunConfigBuilder(bench::base_config(args)); };
  add("external 600", run_with_thermal(ft, builder().static_mhz(600).build()));
  add("internal 1400/600",
      run_with_thermal(ft,
                       builder().hooks(core::internal_phase_hooks(1400, 600)).build()));
  add("cpuspeed (auto)",
      run_with_thermal(ft, builder().daemon(core::CpuspeedParams::v1_2_1()).build()));

  std::printf("%s\n", t.str().c_str());
  std::printf("Paper §1: every 10 C of cooling doubles component life "
              "expectancy; internal scheduling gets most of external@600's "
              "thermal benefit without the delay.\n");
  return 0;
}
