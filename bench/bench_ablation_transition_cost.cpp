// Ablation (§2 footnote 2): sensitivity of INTERNAL scheduling to the DVS
// mode-transition cost.  The paper notes 20-30 us costs with a ~10 us
// manufacturer floor; internal scheduling is viable only while phase
// length >> transition cost.  Sweeping the cost shows where FT's
// phase-based scheduling (long phases) and CG's would-be phase-based
// scheduling (short cycles) break down.
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Ablation: DVS transition-cost sensitivity of INTERNAL scheduling").c_str());

  const std::vector<double> costs_us{10.0, 30.0, 100.0, 1000.0, 5000.0};
  auto cost_axis = campaign::Axis::numeric(
      "transition cost (us)", costs_us, [](core::RunConfig& c, double cost_us) {
        c.cluster.node.cpu.transition_min = sim::from_micros(cost_us);
        c.cluster.node.cpu.transition_max = sim::from_micros(cost_us);
      });

  // One cost sweep per (workload, policy) pair; each is normalized to a
  // full-speed run of the same workload.
  auto sweep = [&](apps::Workload workload, apps::DvsHooks hooks) {
    core::RunConfig cfg = bench::base_config(args);
    cfg.hooks = std::move(hooks);
    campaign::ExperimentSpec spec;
    spec.workload(std::move(workload)).base(cfg).axis(cost_axis).trials(args.trials);
    return bench::run(spec, args);
  };
  auto base_of = [&](const apps::Workload& w) {
    core::RunConfig cfg = bench::base_config(args);
    cfg.static_mhz = 1400;
    return campaign::run_trials(w, cfg, args.trials, args.threads);
  };

  auto ft = apps::make_ft(args.scale);
  auto cg = apps::make_cg(args.scale);
  const auto ft_base = base_of(ft);
  const auto cg_base = base_of(cg);
  const auto ft_sweep = sweep(ft, core::internal_phase_hooks(1400, 600));
  const auto cg_sweep = sweep(cg, core::internal_comm_scaling_hooks(1400, 600));

  analysis::TextTable t({"transition cost", "FT internal delay/energy",
                         "CG scale-during-comm delay/energy"});
  auto fmt_cell = [](const campaign::CellResult& cell, const core::RunResult& base) {
    return analysis::fmt(cell.result.delay_s / base.delay_s) + " / " +
           analysis::fmt(cell.result.energy_j / base.energy_j);
  };
  for (std::size_t i = 0; i < costs_us.size(); ++i) {
    t.add_row({analysis::fmt(costs_us[i], 0) + " us",
               fmt_cell(ft_sweep.cells[i], ft_base),
               fmt_cell(cg_sweep.cells[i], cg_base)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("FT's seconds-long phases tolerate costs up to milliseconds; CG's "
              "per-message scaling degrades as cost grows — quantifying the "
              "paper's granularity argument.\n");
  return 0;
}
