// Ablation (§2 footnote 2): sensitivity of INTERNAL scheduling to the DVS
// mode-transition cost.  The paper notes 20-30 us costs with a ~10 us
// manufacturer floor; internal scheduling is viable only while phase
// length >> transition cost.  Sweeping the cost shows where FT's
// phase-based scheduling (long phases) and CG's would-be phase-based
// scheduling (short cycles) break down.
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Ablation: DVS transition-cost sensitivity of INTERNAL scheduling").c_str());

  analysis::TextTable t({"transition cost", "FT internal delay/energy",
                         "CG scale-during-comm delay/energy"});
  auto ft = apps::make_ft(args.scale);
  auto cg = apps::make_cg(args.scale);

  core::RunConfig base_cfg = bench::base_config(args);
  base_cfg.static_mhz = 1400;
  const auto ft_base = core::run_trials(ft, base_cfg, args.trials);
  const auto cg_base = core::run_trials(cg, base_cfg, args.trials);

  for (double cost_us : {10.0, 30.0, 100.0, 1000.0, 5000.0}) {
    auto with_cost = [&](const apps::Workload& w, apps::DvsHooks hooks,
                         const core::RunResult& base) {
      core::RunConfig cfg = bench::base_config(args);
      cfg.hooks = std::move(hooks);
      cfg.cluster.node.cpu.transition_min = sim::from_micros(cost_us);
      cfg.cluster.node.cpu.transition_max = sim::from_micros(cost_us);
      const auto r = core::run_trials(w, cfg, args.trials);
      return analysis::fmt(r.delay_s / base.delay_s) + " / " +
             analysis::fmt(r.energy_j / base.energy_j);
    };
    t.add_row({analysis::fmt(cost_us, 0) + " us",
               with_cost(ft, core::internal_phase_hooks(1400, 600), ft_base),
               with_cost(cg, core::internal_comm_scaling_hooks(1400, 600), cg_base)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("FT's seconds-long phases tolerate costs up to milliseconds; CG's "
              "per-message scaling degrades as cost grows — quantifying the "
              "paper's granularity argument.\n");
  return 0;
}
