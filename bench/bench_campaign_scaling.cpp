// Campaign engine scaling: run a Figure-6-sized sweep (8 NPB codes x 5
// static frequencies x 3 trials = 120 simulations) once serially and once
// on the work-stealing pool, then check two properties:
//
//   1. determinism — the serial and parallel CampaignResult tables are
//      bit-identical (same tsv(), same fingerprint), regardless of thread
//      count or scheduling order;
//   2. scaling — with >= 8 hardware threads the parallel run is at least
//      3x faster than the serial run (skipped, but reported, on smaller
//      machines: CI containers sometimes expose a single core).
//
// Exits non-zero on any violation so CI can gate on it.
#include <cstdio>
#include <thread>

#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Campaign engine: serial vs parallel on a Figure-6-sized sweep").c_str());

  campaign::ExperimentSpec spec;
  spec.workloads(apps::all_npb(args.scale))
      .base(bench::base_config(args))
      .axis(campaign::Axis::static_mhz(bench::nemo_freqs()))
      .trials(3);

  const unsigned hw = std::thread::hardware_concurrency();
  const int par_threads = args.threads > 0 ? args.threads : 8;
  std::printf("%d cells x 3 trials = %d runs; hardware threads: %u\n\n",
              static_cast<int>(spec.total_runs() / 3),
              static_cast<int>(spec.total_runs()), hw);

  campaign::CampaignOptions serial_opts;
  serial_opts.threads = 1;
  const auto serial = campaign::CampaignRunner(serial_opts).run(spec);

  campaign::CampaignOptions par_opts;
  par_opts.threads = par_threads;
  const auto parallel = campaign::CampaignRunner(par_opts).run(spec);

  const double speedup = serial.wall_s / parallel.wall_s;
  std::printf("serial   (1 thread):  %7.2f s  fingerprint %016llx\n", serial.wall_s,
              static_cast<unsigned long long>(serial.fingerprint()));
  std::printf("parallel (%d threads): %7.2f s  fingerprint %016llx\n", par_threads,
              parallel.wall_s,
              static_cast<unsigned long long>(parallel.fingerprint()));
  std::printf("speedup: %.2fx\n\n", speedup);

  if (serial.tsv() != parallel.tsv()) {
    std::fprintf(stderr,
                 "FAIL: serial and parallel result tables are not bit-identical\n");
    return 1;
  }
  std::printf("determinism: serial and parallel tables bit-identical [ok]\n");

  if (hw >= 8) {
    if (speedup < 3.0) {
      std::fprintf(stderr, "FAIL: speedup %.2fx < 3x with %u hardware threads\n",
                   speedup, hw);
      return 1;
    }
    std::printf("scaling: %.2fx >= 3x at %d threads [ok]\n", speedup, par_threads);
  } else {
    std::printf("scaling: only %u hardware thread(s); 3x assertion skipped "
                "(speedup measured: %.2fx)\n", hw, speedup);
  }
  return 0;
}
