// Shared helpers for the per-table/per-figure bench binaries.
//
// Every bench accepts:
//   --scale <x>    workload scale factor (default 0.5; 1.0 = paper-scale
//                  minutes-long runs)
//   --trials <n>   repeated measurements per point (default 1; the paper
//                  used >= 3)
//   --seed <n>     base RNG seed
//   --threads <n>  campaign worker threads (default 0 = all cores; 1 =
//                  serial reference)
//   --progress     live progress line on stderr
// or the PCD_SCALE / PCD_TRIALS / PCD_THREADS environment variables.
//
// Sweeps and repeated trials all go through campaign::ExperimentSpec — the
// per-bench for-loops this header used to carry are gone; a bench declares
// its run matrix and post-processes the aggregated cells.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "apps/npb.hpp"
#include "campaign/runner.hpp"
#include "campaign/sweeps.hpp"
#include "core/runner.hpp"
#include "core/strategies.hpp"

namespace pcd::bench {

struct BenchArgs {
  double scale = 0.5;
  int trials = 1;
  std::uint64_t seed = 1;
  int threads = 0;  // 0 = hardware concurrency
  bool progress = false;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    if (const char* e = std::getenv("PCD_SCALE")) a.scale = std::atof(e);
    if (const char* e = std::getenv("PCD_TRIALS")) a.trials = std::atoi(e);
    if (const char* e = std::getenv("PCD_THREADS")) a.threads = std::atoi(e);
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--progress") == 0) a.progress = true;
      if (i + 1 >= argc) continue;
      if (std::strcmp(argv[i], "--scale") == 0) a.scale = std::atof(argv[i + 1]);
      if (std::strcmp(argv[i], "--trials") == 0) a.trials = std::atoi(argv[i + 1]);
      if (std::strcmp(argv[i], "--seed") == 0) a.seed = std::strtoull(argv[i + 1], nullptr, 10);
      if (std::strcmp(argv[i], "--threads") == 0) a.threads = std::atoi(argv[i + 1]);
    }
    if (a.scale <= 0) a.scale = 0.5;
    if (a.trials < 1) a.trials = 1;
    return a;
  }
};

inline core::RunConfig base_config(const BenchArgs& args) {
  core::RunConfig c;
  c.seed = args.seed;
  return c;
}

inline campaign::CampaignOptions options(const BenchArgs& args) {
  campaign::CampaignOptions o;
  o.threads = args.threads;
  if (args.progress) {
    o.on_progress = [](const campaign::Progress& p) {
      std::fprintf(stderr, "\r[%zu/%zu] %-48.48s", p.completed, p.total,
                   p.cell.c_str());
      if (p.completed == p.total) std::fprintf(stderr, "\n");
    };
  }
  return o;
}

/// Declares-and-runs: every bench's run matrix goes through here.
inline campaign::CampaignResult run(const campaign::ExperimentSpec& spec,
                                    const BenchArgs& args) {
  return campaign::CampaignRunner(options(args)).run(spec);
}

/// Median energy/delay of one cell normalized to a baseline cell.
inline core::EnergyDelay normalized(const campaign::CampaignResult& r,
                                    const std::string& workload,
                                    const std::vector<std::string>& labels,
                                    const std::vector<std::string>& base_labels) {
  const auto* cell = r.find(workload, labels);
  const auto* base = r.find(workload, base_labels);
  if (cell == nullptr || base == nullptr) {
    throw std::invalid_argument("missing campaign cell for '" + workload + "'");
  }
  return cell->normalized_to(*base);
}

/// The five NEMO frequencies, ascending.
inline std::vector<int> nemo_freqs() { return {600, 800, 1000, 1200, 1400}; }

}  // namespace pcd::bench

#include <algorithm>

#include "analysis/reference.hpp"

namespace pcd::bench {

/// Shared body of Figures 6 and 7: EXTERNAL control driven by a fused
/// metric, reported next to what the paper's own Table 2 data selects.
/// One campaign covers every (code x frequency x trial) point.
inline void run_external_metric_figure(core::Metric metric, const BenchArgs& args) {
  campaign::ExperimentSpec spec;
  spec.workloads(apps::all_npb(args.scale))
      .base(base_config(args))
      .axis(campaign::Axis::static_mhz(nemo_freqs()))
      .trials(args.trials);
  const auto result = run(spec, args);

  struct Row {
    std::string code;
    int freq;
    core::EnergyDelay at;
    int paper_freq = 0;
    core::EnergyDelay paper_at;
    bool paper_known = false;
  };
  std::vector<Row> rows;

  for (const auto& [label, workload] : spec.workload_entries()) {
    const auto crescendo = campaign::sweep_of(result, label).normalized();
    const auto choice = core::select_operating_point(crescendo, metric);

    const auto* ref = analysis::table2_row(workload.name);
    Row row;
    row.code = label;
    row.freq = choice.freq_mhz;
    row.at = choice.at;
    if (ref != nullptr && ref->energy_known) {
      core::Crescendo paper_crescendo;
      for (const auto& [f, ed] : ref->at) paper_crescendo[f] = ed;
      const auto paper_choice = core::select_operating_point(paper_crescendo, metric);
      row.paper_freq = paper_choice.freq_mhz;
      row.paper_at = paper_choice.at;
      row.paper_known = true;
    }
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.at.delay < b.at.delay; });

  analysis::TextTable t({"code", "chosen f", "norm delay", "norm energy",
                         "paper choice", "paper delay/energy"});
  for (const auto& r : rows) {
    t.add_row({r.code, std::to_string(r.freq) + " MHz", analysis::fmt(r.at.delay),
               analysis::fmt(r.at.energy),
               r.paper_known ? std::to_string(r.paper_freq) + " MHz" : "n/a",
               r.paper_known ? analysis::fmt(r.paper_at.delay) + " / " +
                                   analysis::fmt(r.paper_at.energy)
                             : "n/a"});
  }
  std::printf("%s\n", t.str().c_str());
}

}  // namespace pcd::bench
