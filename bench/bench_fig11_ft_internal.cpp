// Figure 11: FT.C.8 under INTERNAL control (1400 MHz compute / 600 MHz
// all-to-all, Figure 10's insertion) vs every EXTERNAL setting vs CPUSPEED.
//
// Paper: internal saves 36% energy with no noticeable delay; external@600
// saves 38% at 13% delay; CPUSPEED saves 24% at 4% delay.  All settings
// are one strategy axis of a single campaign.
#include <cstdio>

#include "analysis/reference.hpp"
#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Figure 11: FT.C.8 — INTERNAL vs EXTERNAL vs CPUSPEED").c_str());

  std::vector<std::pair<std::string, std::function<void(core::RunConfig&)>>> settings{
      {"internal 1400/600",
       [](core::RunConfig& c) { c.hooks = core::internal_phase_hooks(1400, 600); }}};
  for (int f : bench::nemo_freqs()) {
    settings.emplace_back("external " + std::to_string(f),
                          [f](core::RunConfig& c) { c.static_mhz = f; });
  }
  settings.emplace_back("cpuspeed (auto)", [](core::RunConfig& c) {
    c.daemon = core::CpuspeedParams::v1_2_1();
  });

  campaign::ExperimentSpec spec;
  spec.workload(apps::make_ft(args.scale))
      .base(bench::base_config(args))
      .axis(campaign::Axis::strategies("setting", settings))
      .trials(args.trials);
  const auto result = bench::run(spec, args);
  const std::string ft = spec.workload_entries().front().first;
  const std::vector<std::string> baseline{"external 1400"};

  analysis::TextTable t({"setting", "normalized delay", "normalized energy"});
  auto add = [&](const std::string& label, double pd, double pe) {
    const auto ed = bench::normalized(result, ft, {label}, baseline);
    t.add_row({label, analysis::vs_paper(ed.delay, pd),
               analysis::vs_paper(ed.energy, pe)});
  };

  add("internal 1400/600", 1.00, 0.64);
  const auto* ref = analysis::table2_row("FT");
  for (int f : bench::nemo_freqs()) {
    add("external " + std::to_string(f), ref ? ref->at.at(f).delay : -1,
        ref ? ref->at.at(f).energy : -1);
  }
  add("cpuspeed (auto)", ref ? ref->auto_daemon.delay : -1,
      ref ? ref->auto_daemon.energy : -1);

  std::printf("%s\n", t.str().c_str());
  std::printf("Paper: INTERNAL saves 36%% with no noticeable delay — better than "
              "both external@600 (38%% at 13%% delay) and CPUSPEED (24%% at 4%%).\n");
  const auto* internal = result.find(ft, {"internal 1400/600"});
  std::printf("internal run: %lld DVS transitions across %d ranks\n",
              static_cast<long long>(internal->result.dvs_transitions),
              spec.workload_entries().front().second.ranks);
  return 0;
}
