// Figure 11: FT.C.8 under INTERNAL control (1400 MHz compute / 600 MHz
// all-to-all, Figure 10's insertion) vs every EXTERNAL setting vs CPUSPEED.
//
// Paper: internal saves 36% energy with no noticeable delay; external@600
// saves 38% at 13% delay; CPUSPEED saves 24% at 4% delay.
#include <cstdio>

#include "analysis/reference.hpp"
#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Figure 11: FT.C.8 — INTERNAL vs EXTERNAL vs CPUSPEED").c_str());

  auto ft = apps::make_ft(args.scale);

  // Baseline + external sweep.
  auto sweep = core::sweep_static(ft, bench::base_config(args), bench::nemo_freqs(),
                                  args.trials);
  const auto crescendo = sweep.normalized();
  const double base_delay = sweep.points.back().result.delay_s;
  const double base_energy = sweep.points.back().result.energy_j;

  analysis::TextTable t({"setting", "normalized delay", "normalized energy"});
  auto add = [&](const std::string& label, double d, double e, double pd, double pe) {
    t.add_row({label, analysis::vs_paper(d, pd), analysis::vs_paper(e, pe)});
  };

  // INTERNAL: low speed around the profiled all-to-all phase.
  core::RunConfig internal_cfg = bench::base_config(args);
  internal_cfg.hooks = core::internal_phase_hooks(1400, 600);
  const auto internal = core::run_trials(ft, internal_cfg, args.trials);
  add("internal 1400/600", internal.delay_s / base_delay,
      internal.energy_j / base_energy, 1.00, 0.64);

  const auto* ref = analysis::table2_row("FT");
  for (int f : bench::nemo_freqs()) {
    const auto& ed = crescendo.at(f);
    add("external " + std::to_string(f), ed.delay, ed.energy,
        ref ? ref->at.at(f).delay : -1, ref ? ref->at.at(f).energy : -1);
  }

  core::RunConfig auto_cfg = bench::base_config(args);
  auto_cfg.daemon = core::CpuspeedParams::v1_2_1();
  const auto auto_run = core::run_trials(ft, auto_cfg, args.trials);
  add("cpuspeed (auto)", auto_run.delay_s / base_delay, auto_run.energy_j / base_energy,
      ref ? ref->auto_daemon.delay : -1, ref ? ref->auto_daemon.energy : -1);

  std::printf("%s\n", t.str().c_str());
  std::printf("Paper: INTERNAL saves 36%% with no noticeable delay — better than "
              "both external@600 (38%% at 13%% delay) and CPUSPEED (24%% at 4%%).\n");
  std::printf("internal run: %lld DVS transitions across %d ranks\n",
              static_cast<long long>(internal.dvs_transitions), ft.ranks);
  return 0;
}
