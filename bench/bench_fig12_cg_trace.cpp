// Figure 12: performance trace of CG.C.8, verifying the observations that
// drive the heterogeneous internal scheduling decision:
//   1. CG is communication-intensive and synchronizes every cycle;
//   2. Wait and Send are the major communication events;
//   3. cycles are short, so transition overhead cannot be ignored;
//   4. ranks 4-7 have a larger comm-to-comp ratio than ranks 0-3.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "trace/profile.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading("Figure 12: CG.C.8 performance trace").c_str());

  const core::RunConfig cfg = core::RunConfigBuilder(bench::base_config(args))
                                  .collect_trace(true)
                                  .build();
  const double scale = std::min(args.scale, 0.05);  // a few hundred cycles
  const auto result = core::run_workload(apps::make_cg(scale), cfg);

  std::printf("%s\n", result.timeline.c_str());
  std::printf("%s\n", trace::render_profile(*result.profile).c_str());

  const auto& p = *result.profile;
  double wait_s = 0, comm_s = 0;
  for (const auto& r : p.ranks) {
    wait_s += r.wait_s;
    comm_s += r.comm_s();
  }
  double lower_ratio = 0, upper_ratio = 0;
  const int half = static_cast<int>(p.ranks.size()) / 2;
  for (int r = 0; r < static_cast<int>(p.ranks.size()); ++r) {
    (r < half ? lower_ratio : upper_ratio) += p.ranks[r].comm_to_comp() / half;
  }

  std::printf("observations (paper expectations):\n");
  std::printf("  1. comm:comp = %.2f : 1 (paper: communication-intensive) %s\n",
              p.comm_to_comp(), p.comm_to_comp() > 0.8 ? "[ok]" : "[off]");
  std::printf("  2. Wait share of comm = %.0f%% (paper: Wait/Send dominant) %s\n",
              100 * wait_s / comm_s, wait_s / comm_s > 0.5 ? "[ok]" : "[off]");
  std::printf("  3. cycle time = %.1f ms, ~%.0fx the ~25 us transition cost "
              "(paper: overhead not ignorable at phase granularity)\n",
              1000 * p.mean_iteration_s / 24, p.mean_iteration_s / 24 / 25e-6);
  std::printf("  4. comm/comp ranks 0-%d = %.2f vs ranks %d-%d = %.2f "
              "(paper: upper ranks larger) %s\n",
              half - 1, lower_ratio, half, static_cast<int>(p.ranks.size()) - 1,
              upper_ratio, upper_ratio > 1.5 * lower_ratio ? "[ok]" : "[off]");
  return 0;
}
