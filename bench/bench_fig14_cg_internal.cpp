// Figure 14: CG.C.8 under heterogeneous INTERNAL scheduling (Figure 13's
// per-rank speeds) vs EXTERNAL vs CPUSPEED.
//
// Paper: internal I (ranks 0-3 @1200, 4-7 @800) saves 23% at 8% delay;
// internal II (@1000/@800) saves 16% at 8% delay; neither beats
// external@800 (28% at 8%) because CG's tight synchronization leaves no
// exploitable slack.  All seven settings are one strategy axis.
#include <cstdio>

#include "analysis/reference.hpp"
#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Figure 14: CG.C.8 — heterogeneous INTERNAL vs EXTERNAL vs CPUSPEED").c_str());

  // Figure 13: if (myrank <= 3) high else low.
  auto hetero = [](int high, int low) {
    return [high, low](core::RunConfig& c) {
      c.hooks = core::internal_rank_speed_hooks(
          [high, low](int rank) { return rank <= 3 ? high : low; });
    };
  };
  std::vector<std::pair<std::string, std::function<void(core::RunConfig&)>>> settings{
      {"internal I  (1200/800)", hetero(1200, 800)},
      {"internal II (1000/800)", hetero(1000, 800)}};
  for (int f : bench::nemo_freqs()) {
    settings.emplace_back("external " + std::to_string(f),
                          [f](core::RunConfig& c) { c.static_mhz = f; });
  }
  settings.emplace_back("cpuspeed (auto)", [](core::RunConfig& c) {
    c.daemon = core::CpuspeedParams::v1_2_1();
  });

  campaign::ExperimentSpec spec;
  spec.workload(apps::make_cg(args.scale))
      .base(bench::base_config(args))
      .axis(campaign::Axis::strategies("setting", settings))
      .trials(args.trials);
  const auto result = bench::run(spec, args);
  const std::string cg = spec.workload_entries().front().first;
  const std::vector<std::string> baseline{"external 1400"};

  analysis::TextTable t({"setting", "normalized delay", "normalized energy"});
  auto add = [&](const std::string& label, double pd, double pe) {
    const auto ed = bench::normalized(result, cg, {label}, baseline);
    t.add_row({label, analysis::vs_paper(ed.delay, pd),
               analysis::vs_paper(ed.energy, pe)});
  };

  add("internal I  (1200/800)", 1.08, 0.77);
  add("internal II (1000/800)", 1.08, 0.84);
  const auto* ref = analysis::table2_row("CG");
  for (int f : bench::nemo_freqs()) {
    add("external " + std::to_string(f), ref ? ref->at.at(f).delay : -1,
        ref ? ref->at.at(f).energy : -1);
  }
  add("cpuspeed (auto)", ref ? ref->auto_daemon.delay : -1,
      ref ? ref->auto_daemon.energy : -1);

  std::printf("%s\n", t.str().c_str());
  std::printf("Paper conclusion (reproduced): heterogeneous internal scheduling "
              "does not significantly beat external@800 for CG — frequent "
              "synchronization aggregates gains and losses across all nodes.\n");
  return 0;
}
