// Figure 14: CG.C.8 under heterogeneous INTERNAL scheduling (Figure 13's
// per-rank speeds) vs EXTERNAL vs CPUSPEED.
//
// Paper: internal I (ranks 0-3 @1200, 4-7 @800) saves 23% at 8% delay;
// internal II (@1000/@800) saves 16% at 8% delay; neither beats
// external@800 (28% at 8%) because CG's tight synchronization leaves no
// exploitable slack.
#include <cstdio>

#include "analysis/reference.hpp"
#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Figure 14: CG.C.8 — heterogeneous INTERNAL vs EXTERNAL vs CPUSPEED").c_str());

  auto cg = apps::make_cg(args.scale);
  auto sweep = core::sweep_static(cg, bench::base_config(args), bench::nemo_freqs(),
                                  args.trials);
  const auto crescendo = sweep.normalized();
  const double base_delay = sweep.points.back().result.delay_s;
  const double base_energy = sweep.points.back().result.energy_j;

  analysis::TextTable t({"setting", "normalized delay", "normalized energy"});
  auto add = [&](const std::string& label, double d, double e, double pd, double pe) {
    t.add_row({label, analysis::vs_paper(d, pd), analysis::vs_paper(e, pe)});
  };

  // Figure 13: if (myrank <= 3) high else low.
  auto hetero = [&](int high, int low) {
    core::RunConfig cfg = bench::base_config(args);
    cfg.hooks = core::internal_rank_speed_hooks(
        [high, low](int rank) { return rank <= 3 ? high : low; });
    return core::run_trials(cg, cfg, args.trials);
  };
  const auto internal1 = hetero(1200, 800);
  add("internal I  (1200/800)", internal1.delay_s / base_delay,
      internal1.energy_j / base_energy, 1.08, 0.77);
  const auto internal2 = hetero(1000, 800);
  add("internal II (1000/800)", internal2.delay_s / base_delay,
      internal2.energy_j / base_energy, 1.08, 0.84);

  const auto* ref = analysis::table2_row("CG");
  for (int f : bench::nemo_freqs()) {
    const auto& ed = crescendo.at(f);
    add("external " + std::to_string(f), ed.delay, ed.energy,
        ref ? ref->at.at(f).delay : -1, ref ? ref->at.at(f).energy : -1);
  }

  core::RunConfig auto_cfg = bench::base_config(args);
  auto_cfg.daemon = core::CpuspeedParams::v1_2_1();
  const auto auto_run = core::run_trials(cg, auto_cfg, args.trials);
  add("cpuspeed (auto)", auto_run.delay_s / base_delay, auto_run.energy_j / base_energy,
      ref ? ref->auto_daemon.delay : -1, ref ? ref->auto_daemon.energy : -1);

  std::printf("%s\n", t.str().c_str());
  std::printf("Paper conclusion (reproduced): heterogeneous internal scheduling "
              "does not significantly beat external@800 for CG — frequent "
              "synchronization aggregates gains and losses across all nodes.\n");
  return 0;
}
