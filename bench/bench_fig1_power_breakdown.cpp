// Figure 1: component breakdown of server power under load and at idle.
//
// Paper: on a Pentium III node running the memory-bound swim, the CPU is
// ~35% of total system power under load and ~15% when idle.
#include <cstdio>

#include "apps/npb.hpp"
#include "bench/bench_common.hpp"
#include "core/runner.hpp"

using namespace pcd;

namespace {

machine::NodeConfig pentium_iii_node() {
  machine::NodeConfig n;
  // Single operating point: the PIII node has no DVS; voltage/frequency
  // chosen to represent a 1 GHz Coppermine-class server part.
  n.operating_points = cpu::OperatingPointTable({{1000, 1.75}});
  n.power = power::NodePowerParams::pentium_iii_server();
  n.power.base_watts = 33.0;  // bigger PSU/fan overhead than the laptops
  n.cpu.act_idle = 0.085;
  return n;
}

void report(const char* label, const power::EnergyBreakdown& e) {
  const double total = e.total();
  std::printf("%-18s %8.1f J total | cpu %5.1f%% | memory %5.1f%% | disk %5.1f%% | "
              "nic %5.1f%% | other %5.1f%%\n",
              label, total, 100 * e.cpu / total, 100 * e.memory / total,
              100 * e.disk / total, 100 * e.nic / total, 100 * e.other / total);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Figure 1: node power breakdown (Pentium III node, swim)").c_str());

  // Idle node: integrate one minute of idle power.
  {
    sim::Engine engine;
    machine::ClusterConfig cc;
    cc.nodes = 1;
    cc.node = pentium_iii_node();
    machine::Cluster cluster(engine, cc);
    engine.run_until(60 * sim::kSecond);
    report("idle", cluster.node(0).power().energy_breakdown());
  }

  // Under load: run swim on the PIII node profile.
  {
    machine::ClusterConfig cluster = bench::base_config(args).cluster;
    cluster.node = pentium_iii_node();
    const core::RunConfig cfg = core::RunConfigBuilder(bench::base_config(args))
                                    .cluster(cluster)
                                    .build();
    auto swim = apps::make_swim(args.scale);
    // run_workload builds its own cluster from cfg.cluster.node.
    const auto result = core::run_workload(swim, cfg);
    std::printf("(swim run: %.1f s, %.0f J)\n", result.delay_s, result.energy_j);
  }
  {
    // Re-run manually to get the component breakdown (the runner reports
    // totals; here we integrate the node directly).
    sim::Engine engine;
    machine::ClusterConfig cc;
    cc.nodes = 1;
    cc.node = pentium_iii_node();
    machine::Cluster cluster(engine, cc);
    std::vector<int> ids{0};
    mpi::Comm comm(cluster, ids);
    apps::AppContext ctx;
    ctx.comm = &comm;
    auto swim = apps::make_swim(args.scale);
    auto p = sim::spawn(engine, swim.make_rank(ctx, 0));
    engine.run();
    report("loaded (swim)", cluster.node(0).power().energy_breakdown());
  }

  std::printf("\nPaper reference: CPU ~35%% of system power under load, ~15%% idle "
              "(Pentium III, ~45 W peak CPU).\n");
  return 0;
}
