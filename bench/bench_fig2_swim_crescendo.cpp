// Figure 2: the energy-delay "crescendo" for swim on a single NEMO node —
// normalized delay and energy at each static frequency.
//
// Paper observations: delay rises from <1% at 1200 MHz to ~25% at 600 MHz;
// energy decreases steadily (8% saving at 1200 MHz with <1% delay).
#include <cstdio>

#include "apps/npb.hpp"
#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Figure 2: energy-delay crescendo for swim (single NEMO node)").c_str());

  auto swim = apps::make_swim(args.scale);
  const auto sweep = campaign::sweep_static(swim, bench::base_config(args),
                                            bench::nemo_freqs(), args.trials,
                                            args.threads);
  const auto crescendo = sweep.normalized();

  analysis::TextTable t({"CPU speed", "normalized delay", "normalized energy"});
  for (const auto& [freq, ed] : crescendo) {
    t.add_row({std::to_string(freq) + " MHz", analysis::fmt(ed.delay),
               analysis::fmt(ed.energy)});
  }
  std::printf("%s\n", t.str().c_str());

  const auto& at1200 = crescendo.at(1200);
  const auto& at600 = crescendo.at(600);
  std::printf("at 1200 MHz: %.0f%% energy saving with %.1f%% delay increase "
              "(paper: ~8%% saving, <1%% delay)\n",
              100 * (1 - at1200.energy), 100 * (at1200.delay - 1));
  std::printf("at  600 MHz: delay increase %.0f%% (paper: ~25%%)\n",
              100 * (at600.delay - 1));
  return 0;
}
