// Figure 5: energy-performance efficiency of NPB codes under CPUSPEED
// 1.2.1 daemon scheduling, sorted by normalized delay.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/reference.hpp"
#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Figure 5: NPB energy-performance under CPUSPEED 1.2.1 (sorted by delay)").c_str());

  struct Row {
    std::string code;
    double delay, energy;
    const analysis::Table2Row* ref;
  };
  std::vector<Row> rows;

  for (const auto& workload : apps::all_npb(args.scale)) {
    // Baseline at full speed.
    core::RunConfig base_cfg = bench::base_config(args);
    base_cfg.static_mhz = 1400;
    const auto base = core::run_trials(workload, base_cfg, args.trials);
    // Daemon run.
    core::RunConfig auto_cfg = bench::base_config(args);
    auto_cfg.daemon = core::CpuspeedParams::v1_2_1();
    const auto run = core::run_trials(workload, auto_cfg, args.trials);
    rows.push_back(Row{workload.name, run.delay_s / base.delay_s,
                       run.energy_j / base.energy_j,
                       analysis::table2_row(workload.name)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.delay < b.delay; });

  analysis::TextTable t({"code", "normalized delay", "normalized energy"});
  for (const auto& r : rows) {
    t.add_row({r.code,
               analysis::vs_paper(r.delay, r.ref ? r.ref->auto_daemon.delay : -1),
               analysis::vs_paper(r.energy, r.ref && r.ref->energy_known
                                                ? r.ref->auto_daemon.energy
                                                : -1)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Paper: LU/EP ~3-4%% saving at 1-2%% delay; IS/FT ~25%% at 1-4%%; "
              "SP/CG 31-35%% at 13-14%%; MG/BT 21-23%% at 32-36%% delay.\n");
  return 0;
}
