// Figure 5: energy-performance efficiency of NPB codes under CPUSPEED
// 1.2.1 daemon scheduling, sorted by normalized delay.
//
// One campaign: every code x {full-speed baseline, daemon} x trials.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/reference.hpp"
#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Figure 5: NPB energy-performance under CPUSPEED 1.2.1 (sorted by delay)").c_str());

  campaign::ExperimentSpec spec;
  spec.workloads(apps::all_npb(args.scale))
      .base(bench::base_config(args))
      .axis(campaign::Axis::strategies(
          "setting",
          {{"1400", [](core::RunConfig& c) { c.static_mhz = 1400; }},
           {"auto",
            [](core::RunConfig& c) { c.daemon = core::CpuspeedParams::v1_2_1(); }}}))
      .trials(args.trials);
  const auto result = bench::run(spec, args);

  struct Row {
    std::string code;
    core::EnergyDelay ed;
    const analysis::Table2Row* ref;
  };
  std::vector<Row> rows;
  for (const auto& [label, workload] : spec.workload_entries()) {
    rows.push_back(Row{label, bench::normalized(result, label, {"auto"}, {"1400"}),
                       analysis::table2_row(workload.name)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.ed.delay < b.ed.delay; });

  analysis::TextTable t({"code", "normalized delay", "normalized energy"});
  for (const auto& r : rows) {
    t.add_row({r.code,
               analysis::vs_paper(r.ed.delay, r.ref ? r.ref->auto_daemon.delay : -1),
               analysis::vs_paper(r.ed.energy, r.ref && r.ref->energy_known
                                                   ? r.ref->auto_daemon.energy
                                                   : -1)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Paper: LU/EP ~3-4%% saving at 1-2%% delay; IS/FT ~25%% at 1-4%%; "
              "SP/CG 31-35%% at 13-14%%; MG/BT 21-23%% at 32-36%% delay.\n");
  return 0;
}
