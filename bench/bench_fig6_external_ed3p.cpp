// Figure 6: EXTERNAL DVS control with the ED3P (E*D^3) metric — for each
// code, sweep the static frequencies, pick the point minimizing ED3P, and
// report the resulting normalized energy/delay.
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Figure 6: EXTERNAL control with the ED3P metric").c_str());
  bench::run_external_metric_figure(core::Metric::ED3P, args);
  std::printf("Paper: FT saves 30%% at 7%% delay; CG 20%% at 4%%; SP 9%% with 1%% "
              "speedup; IS 25%% with 9%% speedup; BT/EP/LU/MG unchanged.\n");
  return 0;
}
