// Figure 7: EXTERNAL DVS control with the ED2P (E*D^2) metric — same trend
// as Figure 6, but the metric tolerates slightly more delay for more
// energy savings.
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Figure 7: EXTERNAL control with the ED2P metric").c_str());
  bench::run_external_metric_figure(core::Metric::ED2P, args);
  std::printf("Paper: ED2P picks lower points than ED3P — FT saves 38%% at 13%% "
              "delay; CG 28%% at 8%%; SP 19%% at 3%%.\n");
  return 0;
}
