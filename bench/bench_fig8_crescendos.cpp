// Figure 8: energy-delay crescendos of the eight NPB codes, grouped into
// the paper's four categories (§5.2).  One campaign: 8 codes x 5
// frequencies x trials.
#include <cstdio>

#include "analysis/crescendo.hpp"
#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Figure 8: energy-delay crescendos and Type I-IV classification").c_str());

  campaign::ExperimentSpec spec;
  spec.workloads(apps::all_npb(args.scale))
      .base(bench::base_config(args))
      .axis(campaign::Axis::static_mhz(bench::nemo_freqs()))
      .trials(args.trials);
  const auto result = bench::run(spec, args);

  int matches = 0, total = 0;
  for (const auto& [label, workload] : spec.workload_entries()) {
    const auto crescendo = campaign::sweep_of(result, label).normalized();

    std::printf("%s\n", label.c_str());
    std::printf("  %-10s", "delay:");
    for (const auto& [f, ed] : crescendo) std::printf(" %4d:%.2f", f, ed.delay);
    std::printf("\n  %-10s", "energy:");
    for (const auto& [f, ed] : crescendo) std::printf(" %4d:%.2f", f, ed.energy);

    const auto type = analysis::classify_crescendo(crescendo);
    const auto code2 = workload.name.substr(0, 2);
    const auto paper_type = analysis::figure8_types().at(code2);
    ++total;
    matches += (type == paper_type);
    std::printf("\n  type: %s (paper: %s)%s\n\n", analysis::to_string(type),
                analysis::to_string(paper_type),
                type == paper_type ? "" : "  <-- MISMATCH");
  }
  std::printf("classification agreement with the paper: %d/%d\n", matches, total);
  std::printf("Paper: Type I = EP; Type II = BT, MG, LU; Type III = FT, CG, SP; "
              "Type IV = IS.  Types III/IV save energy, I/II do not.\n");
  return 0;
}
