// Figure 9: performance trace of FT.C.8 (MPE/Jumpshot in the paper; here
// the tracer's profile + ASCII timeline), verifying the observations the
// internal-scheduling design rests on:
//   1. FT is communication-bound, comm:comp ~ 2:1;
//   2. most execution time is all-to-all communication;
//   3. iteration time >> CPU speed transition overhead;
//   4. the workload is balanced across nodes.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "trace/profile.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading("Figure 9: FT.C.8 performance trace").c_str());

  const core::RunConfig cfg = core::RunConfigBuilder(bench::base_config(args))
                                  .collect_trace(true)
                                  .build();
  const double scale = std::min(args.scale, 0.25);  // short trace is readable
  const auto result = core::run_workload(apps::make_ft(scale), cfg);

  std::printf("%s\n", result.timeline.c_str());
  std::printf("%s\n", trace::render_profile(*result.profile).c_str());

  const auto& p = *result.profile;
  std::printf("observations (paper expectations):\n");
  std::printf("  1. comm:comp ratio = %.2f : 1 (paper ~2:1) %s\n", p.comm_to_comp(),
              p.comm_to_comp() > 1.5 && p.comm_to_comp() < 2.6 ? "[ok]" : "[off]");
  double coll = 0, comm = 0;
  for (const auto& r : p.ranks) {
    coll += r.collective_s;
    comm += r.comm_s();
  }
  std::printf("  2. all-to-all share of comm = %.0f%% (paper: dominant) %s\n",
              100 * coll / comm, coll / comm > 0.8 ? "[ok]" : "[off]");
  std::printf("  3. iteration time %.2f s >> transition cost ~25 us %s\n",
              p.mean_iteration_s, p.mean_iteration_s > 0.1 ? "[ok]" : "[off]");
  std::printf("  4. compute imbalance across ranks = %.1f%% (paper: balanced) %s\n",
              100 * p.imbalance(), p.imbalance() < 0.1 ? "[ok]" : "[off]");
  return 0;
}
