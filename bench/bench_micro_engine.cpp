// google-benchmark microbenchmarks for the simulator substrate itself:
// event-queue throughput, coroutine process overhead, MPI message cost,
// and end-to-end workload simulation rate.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "apps/npb.hpp"
#include "core/runner.hpp"
#include "machine/cluster.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

using namespace pcd;

static void BM_EngineScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    int count = 0;
    for (int i = 0; i < n; ++i) {
      e.schedule_at(i, [&count] { ++count; });
    }
    e.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1024)->Arg(65536);

static void BM_EngineScheduleRunDigest(benchmark::State& state) {
  // Same hot loop with the determinism digest collecting: one rolling-hash
  // fold per dispatch (the cheap tier).  CI gates the overhead vs
  // BM_EngineScheduleRun at 3% (tools/check_bench_regression.py).
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    sim::DigestStream digest;
    sim::Engine::DeterminismHooks hooks;
    hooks.event_digest = &digest;
    e.set_determinism(hooks);
    int count = 0;
    for (int i = 0; i < n; ++i) {
      e.schedule_at(i, [&count] { ++count; });
    }
    e.run();
    benchmark::DoNotOptimize(count);
    benchmark::DoNotOptimize(digest.hash);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRunDigest)->Arg(1024)->Arg(65536);

static void BM_EnginePeriodicTimers(benchmark::State& state) {
  // Steady-state cost of pooled periodic timers (cpuspeed daemons, samplers,
  // battery polls): n wheel-parked timers re-arming in place, no heap churn.
  const int n = static_cast<int>(state.range(0));
  sim::Engine e;
  std::int64_t fires = 0;
  std::vector<sim::EventId> ids;
  ids.reserve(n);
  for (int i = 0; i < n; ++i) {
    ids.push_back(e.schedule_every(sim::from_millis(1.0 + i % 7), [&fires] { ++fires; }));
  }
  for (auto _ : state) {
    const std::int64_t before = fires;
    e.run_until(e.now() + sim::from_millis(64.0));
    benchmark::DoNotOptimize(fires - before);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(fires));
  for (auto id : ids) e.cancel(id);
}
BENCHMARK(BM_EnginePeriodicTimers)->Arg(16)->Arg(256);

static void BM_EngineScheduleCancel(benchmark::State& state) {
  // Schedule + O(1) cancel churn (MPI timeout guards armed and disarmed per
  // message): slots recycle through the free list, dead entries are skipped
  // lazily, and nothing allocates in steady state.
  const int n = static_cast<int>(state.range(0));
  sim::Engine e;
  std::vector<sim::EventId> ids;
  ids.reserve(n);
  for (auto _ : state) {
    ids.clear();
    for (int i = 0; i < n; ++i) {
      ids.push_back(e.schedule_in(sim::from_millis(5.0) + i, [] {}));
    }
    for (auto id : ids) benchmark::DoNotOptimize(e.cancel(id));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleCancel)->Arg(1024);

static void BM_CoroutineDelayChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    auto proc = [](int hops) -> sim::Process {
      for (int i = 0; i < hops; ++i) co_await sim::delay(1);
    };
    sim::spawn(e, proc(n));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CoroutineDelayChain)->Arg(1024)->Arg(16384);

static void BM_MpiPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    machine::ClusterConfig cc;
    cc.nodes = 2;
    machine::Cluster cluster(e, cc);
    mpi::Comm comm(cluster, {0, 1});
    auto a = [&]() -> sim::Process {
      for (int i = 0; i < 100; ++i) {
        co_await comm.send(0, 1, 1, 1024);
        co_await comm.recv(0, 1, 2);
      }
    };
    auto b = [&]() -> sim::Process {
      for (int i = 0; i < 100; ++i) {
        co_await comm.recv(1, 0, 1);
        co_await comm.send(1, 0, 2, 1024);
      }
    };
    sim::spawn(e, a());
    sim::spawn(e, b());
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_MpiPingPong);

static void BM_FullWorkloadRun(benchmark::State& state) {
  for (auto _ : state) {
    auto cg = apps::make_cg(0.05);
    core::RunConfig cfg;
    const auto r = core::run_workload(cg, cfg);
    benchmark::DoNotOptimize(r.energy_j);
  }
}
BENCHMARK(BM_FullWorkloadRun)->Unit(benchmark::kMillisecond);

#ifndef PCD_BUILD_TYPE
#define PCD_BUILD_TYPE "unknown"
#endif

// Expanded BENCHMARK_MAIN() plus a context entry recording how *this* binary
// was compiled.  The library's own "library_build_type" reflects the system
// google-benchmark package, not our flags; tools/check_bench_regression.py
// reads "build_type" to refuse comparisons against unoptimized builds.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("build_type", PCD_BUILD_TYPE);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
