// google-benchmark overhead gates for the profiler: the same end-to-end
// CG run at four observability levels.
//
//   ProfilerOff   plain run, no tracer at all
//   TraceOnly     MPE-style trace collection (pre-existing subsystem)
//   ProfilerOn    trace + energy attribution: the probe samples every
//                 scope, records carry joules/cycles, messages are logged
//                 — but the post-run DAG analysis is skipped
//   ProfilerFull  everything: collection + capture + attribution rollup +
//                 cross-rank critical path / slack
//
// CI gates (tools/check_bench_regression.py --candidate-prefix):
//   - enabling attribution on a traced run (TraceOnly -> ProfilerOn) must
//     cost <= 5%: the energy probe is the only in-run addition and must
//     stay in the noise so profiled runs remain trustworthy;
//   - the full pipeline (ProfilerOff -> ProfilerFull) is backstopped at
//     50%: the batch analysis is proportional to trace size (~0.3 us per
//     record) and is run once per profile, but a regression that doubles
//     it should still fail loudly.
#include <benchmark/benchmark.h>

#include "apps/npb.hpp"
#include "core/runner.hpp"

using namespace pcd;

namespace {

void run_case(benchmark::State& state, bool trace, bool profile, bool analysis) {
  for (auto _ : state) {
    auto cg = apps::make_cg(0.05);
    core::RunConfig cfg;
    cfg.collect_trace = trace;
    cfg.profile = profile;
    cfg.profile_analysis = analysis;
    const auto r = core::run_workload(cg, cfg);
    benchmark::DoNotOptimize(r.energy_j);
    if (r.profiler.has_value()) {
      benchmark::DoNotOptimize(r.profiler->attribution.scoped_j);
    }
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

static void BM_WorkloadRun_ProfilerOff(benchmark::State& state) {
  run_case(state, false, false, false);
}
BENCHMARK(BM_WorkloadRun_ProfilerOff)->Unit(benchmark::kMillisecond);

static void BM_WorkloadRun_TraceOnly(benchmark::State& state) {
  run_case(state, true, false, false);
}
BENCHMARK(BM_WorkloadRun_TraceOnly)->Unit(benchmark::kMillisecond);

static void BM_WorkloadRun_ProfilerOn(benchmark::State& state) {
  run_case(state, false, true, false);
}
BENCHMARK(BM_WorkloadRun_ProfilerOn)->Unit(benchmark::kMillisecond);

static void BM_WorkloadRun_ProfilerFull(benchmark::State& state) {
  run_case(state, false, true, true);
}
BENCHMARK(BM_WorkloadRun_ProfilerFull)->Unit(benchmark::kMillisecond);

#ifndef PCD_BUILD_TYPE
#define PCD_BUILD_TYPE "unknown"
#endif

// Expanded BENCHMARK_MAIN() plus a context entry recording how *this* binary
// was compiled (see bench_micro_engine.cpp).
int main(int argc, char** argv) {
  benchmark::AddCustomContext("build_type", PCD_BUILD_TYPE);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
