// Whole-run events/s gate for the simulator hot path (DESIGN.md §3.15).
//
// Unlike bench_micro_engine (substrate microbenchmarks) this measures the
// rate the *full stack* dispatches events on a production-shaped run: a
// 4096-rank CG-style workload (sliced compute + pairwise 64 KB exchanges
// half the ring away) under the CPUSPEED daemon, through core::run_workload
// — so CPU accounting, the power arena, the MPI rendezvous protocol, and
// the network model are all on the measured path.  This is the benchmark
// that gates the arena/pooling work: per-node scalar integration, malloc
// round-trips for coroutine frames / MPI message state, and per-read power
// recomputes all show up here and nowhere in the microbenches.
//
// Emits google-benchmark-shaped JSON (context + one entry per repetition
// plus a median aggregate) consumed by tools/check_bench_regression.py.
// The context records this binary's own optimization level ("build_type")
// so the checker can refuse debug-build comparisons.
//
// Usage:
//   bench_run_throughput [--nodes N] [--cycles C] [--reps R] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/workload.hpp"
#include "core/runner.hpp"
#include "mpi/comm.hpp"
#include "sim/process.hpp"

#ifndef PCD_BUILD_TYPE
#define PCD_BUILD_TYPE "unknown"
#endif

using namespace pcd;

namespace {

// CG-shaped rank at arbitrary scale: sliced compute, then two pairwise
// 64 KB exchanges with the rank half the ring away (rendezvous-sized), the
// lower half carrying an extra memory-bound phase so the halves drift and
// the waits are real.
apps::Workload make_cg_shape(int ranks, int cycles) {
  apps::Workload w;
  w.name = "CGSHAPE." + std::to_string(ranks);
  w.ranks = ranks;
  w.iterations = cycles;
  w.make_rank = [ranks, cycles](apps::AppContext& ctx, int rank) -> sim::Process {
    auto& comm = *ctx.comm;
    const int half = ranks / 2;
    const int partner = rank < half ? rank + half : rank - half;
    const bool lower = rank < half;
    for (int it = 0; it < cycles; ++it) {
      co_await apps::compute_phase(ctx, rank, 0.0035, 0.006);
      for (int tag = 7; tag <= 8; ++tag) {
        if (tag == 8 && lower) co_await apps::compute_phase(ctx, rank, 0.0, 0.013);
        auto rr = comm.irecv(rank, partner, tag);
        auto sr = comm.isend(rank, partner, tag, 64 * 1024);
        std::vector<mpi::Comm::Request> reqs;
        reqs.push_back(std::move(sr));
        reqs.push_back(std::move(rr));
        co_await comm.waitall(rank, std::move(reqs));
      }
    }
  };
  return w;
}

struct Measurement {
  std::int64_t events = 0;
  double wall_s = 0;
  double events_per_s = 0;
  double delay_s = 0;
  double energy_j = 0;
};

void append_entry(std::string& out, const char* name, const char* run_type,
                  const char* aggregate_name, const Measurement& m, bool last) {
  char buf[640];
  std::string agg;
  if (aggregate_name != nullptr) {
    agg = std::string("      \"aggregate_name\": \"") + aggregate_name + "\",\n";
  }
  std::snprintf(buf, sizeof buf,
                "    {\n"
                "      \"name\": \"%s\",\n"
                "      \"run_name\": \"BM_RunThroughput_CG\",\n"
                "      \"run_type\": \"%s\",\n"
                "%s"
                "      \"iterations\": 1,\n"
                "      \"real_time\": %.6f,\n"
                "      \"cpu_time\": %.6f,\n"
                "      \"time_unit\": \"s\",\n"
                "      \"items_per_second\": %.3f,\n"
                "      \"events\": %lld,\n"
                "      \"sim_delay_s\": %.6f,\n"
                "      \"sim_energy_j\": %.3f\n"
                "    }%s\n",
                name, run_type, agg.c_str(), m.wall_s, m.wall_s, m.events_per_s,
                static_cast<long long>(m.events), m.delay_s, m.energy_j,
                last ? "" : ",");
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  int nodes = 4096;
  int cycles = 64;
  int reps = 3;
  std::string out_path = "BENCH_run.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0) nodes = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--cycles") == 0) cycles = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--reps") == 0) reps = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }
  if (reps < 1) reps = 1;

  core::RunConfig cfg;
  cfg.daemon = core::CpuspeedParams{};  // the paper's daemon is on the hot path
  const apps::Workload w = make_cg_shape(nodes, cycles);

  std::printf("run throughput: %d nodes x %d cycles, %d repetition(s), %s build\n",
              nodes, cycles, reps, PCD_BUILD_TYPE);

  std::vector<Measurement> ms;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const core::RunResult res = core::run_workload(w, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    Measurement m;
    m.wall_s = std::chrono::duration<double>(t1 - t0).count();
    m.events = res.events;
    m.events_per_s = m.wall_s > 0 ? static_cast<double>(m.events) / m.wall_s : 0;
    m.delay_s = res.delay_s;
    m.energy_j = res.energy_j;
    std::printf("  rep %d: %lld events in %.3f s wall -> %.0f events/s "
                "(delay %.3f s, energy %.1f J)\n",
                r + 1, static_cast<long long>(m.events), m.wall_s,
                m.events_per_s, m.delay_s, m.energy_j);
    if (m.events == 0) {
      std::fprintf(stderr, "FAIL: run dispatched no events\n");
      return 1;
    }
    ms.push_back(m);
  }

  // Median by events/s: the gate metric.  Simulated results (events, delay,
  // energy) are identical across reps — the run is deterministic; only wall
  // time varies.
  std::vector<Measurement> by_rate = ms;
  std::sort(by_rate.begin(), by_rate.end(),
            [](const Measurement& a, const Measurement& b) {
              return a.events_per_s < b.events_per_s;
            });
  const Measurement median = by_rate[by_rate.size() / 2];
  std::printf("median: %.0f events/s\n", median.events_per_s);

  std::string json = "{\n  \"context\": {\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    \"executable\": \"bench_run_throughput\",\n"
                  "    \"build_type\": \"%s\",\n"
                  "    \"num_cpus\": %u,\n"
                  "    \"nodes\": %d,\n"
                  "    \"cycles\": %d\n  },\n  \"benchmarks\": [\n",
                  PCD_BUILD_TYPE, std::thread::hardware_concurrency(), nodes,
                  cycles);
    json += buf;
  }
  for (std::size_t r = 0; r < ms.size(); ++r) {
    const std::string name =
        "BM_RunThroughput_CG/repetition:" + std::to_string(r);
    append_entry(json, name.c_str(), "iteration", nullptr, ms[r],
                 /*last=*/false);
  }
  append_entry(json, "BM_RunThroughput_CG_median", "aggregate", "median",
               median, /*last=*/true);
  json += "  ]\n}\n";

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 2;
  }
  return 0;
}
