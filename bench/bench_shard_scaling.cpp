// Shard-scaling gate for the sharded parallel event engine (DESIGN.md
// §3.14): measures aggregate events/s and nodes-simulated against shard
// count on a synthetic power-aware-cluster workload, and demonstrates a
// >= 100k-node run completing.  Emits google-benchmark-style JSON (one
// entry per shard count plus the huge run) consumed by
// tools/check_bench_regression.py in the shard-smoke CI job.
//
// The synthetic workload models the event mix a sharded DVS campaign
// produces: every node runs a periodic daemon-style tick (utilization
// poll / power integration), and every 8th tick sends a ring message to a
// node on the next shard through the conservative cross-shard post path —
// so the measurement covers both the per-shard hot loop and the barrier
// protocol, not an embarrassingly parallel best case.
//
// A second section measures the *observability overhead* of sharded runs:
// the same compute-bound workload is run through core::run_workload at
// 1/2/4/8 shards with telemetry off and on (registry + decision log +
// transition stream + sampler + exports, the per-shard collect-and-merge
// path), emitting BM_ShardObsOff/shards:N and BM_ShardObsOn/shards:N
// entries whose items_per_second is useful-work throughput
// (rank-iterations per wall second).  CI gates obs-on at >= 95% of
// obs-off from the same file via check_bench_regression.py
// --candidate-prefix, so machine speed cancels out of the comparison.
// Tracing/profiling is deliberately *not* part of the gated config: its
// cost is per-trace-record and therefore proportional to useful work —
// a constant-factor tax measured by bench_micro_profiler's own gate —
// whereas this gate checks that passive telemetry stays in the noise.
//
// Usage:
//   bench_shard_scaling [--nodes N] [--horizon-ms T] [--big-nodes N]
//                       [--obs-steps N] [--obs-reps N]
//                       [--out FILE] [--no-check]
//
// When the host has >= 8 hardware threads, the run *asserts* >= 3x
// aggregate events/s at 8 shards over 1 shard (the acceptance criterion)
// and exits non-zero on failure; on smaller hosts the assertion is skipped
// (the engine falls back to whatever parallelism exists) unless --no-check
// already disabled it.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "apps/workload.hpp"
#include "core/runner.hpp"
#include "machine/partition.hpp"
#include "sim/sharded.hpp"
#include "sim/time.hpp"

#ifndef PCD_BUILD_TYPE
#define PCD_BUILD_TYPE "unknown"
#endif

namespace {

constexpr pcd::sim::SimDuration kLookahead = 10 * pcd::sim::kMicrosecond;
constexpr pcd::sim::SimDuration kTickPeriod = 50 * pcd::sim::kMicrosecond;

struct NodeState {
  int shard = 0;
  std::uint64_t ticks = 0;
  std::uint64_t received = 0;
};

struct Synth {
  pcd::sim::ShardedEngine* se;
  const pcd::machine::ShardPlan* plan;
  std::vector<NodeState>* nodes;
  pcd::sim::SimTime horizon;
};

// One daemon-style node tick; reschedules itself until the horizon and
// rings a peer on the next shard every 8th firing.
void tick(Synth* c, int g) {
  NodeState& st = (*c->nodes)[static_cast<std::size_t>(g)];
  ++st.ticks;
  pcd::sim::Engine& e = c->se->shard(st.shard);
  if (st.ticks % 8 == 0 && c->plan->shards() > 1) {
    const int ps = (st.shard + 1) % c->plan->shards();
    const int pg =
        c->plan->global_of(ps, c->plan->local_of(g) % c->plan->count(ps));
    c->se->post(st.shard, ps, e.now() + c->se->lookahead(),
                [c, pg] { ++(*c->nodes)[static_cast<std::size_t>(pg)].received; },
                "bench.ring");
  }
  const pcd::sim::SimTime next = e.now() + kTickPeriod;
  if (next <= c->horizon) {
    e.schedule_at(next, [c, g] { tick(c, g); }, "bench.tick");
  }
}

struct Measurement {
  int shards = 0;
  int nodes = 0;
  std::uint64_t events = 0;
  double wall_s = 0;
  double events_per_s = 0;
};

Measurement run_synth(int shards, int total_nodes, pcd::sim::SimTime horizon) {
  pcd::sim::ShardedEngine se(shards, kLookahead);
  const auto plan = pcd::machine::ShardPlan::contiguous(total_nodes, shards);
  std::vector<NodeState> nodes(static_cast<std::size_t>(total_nodes));
  for (int g = 0; g < total_nodes; ++g) {
    nodes[static_cast<std::size_t>(g)].shard = plan.shard_of(g);
  }
  Synth ctx{&se, &plan, &nodes, horizon};
  for (int g = 0; g < total_nodes; ++g) {
    // Stagger first firings inside one tick period so windows carry work
    // from every node instead of one synchronized burst.
    const pcd::sim::SimTime first =
        (static_cast<pcd::sim::SimTime>(g) * 7919) % kTickPeriod;
    se.shard(plan.shard_of(g)).schedule_at(first, [c = &ctx, g] { tick(c, g); },
                                           "bench.tick");
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto stats = se.run();
  const auto t1 = std::chrono::steady_clock::now();

  Measurement m;
  m.shards = shards;
  m.nodes = total_nodes;
  m.events = stats.events;
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  m.events_per_s = m.wall_s > 0 ? static_cast<double>(m.events) / m.wall_s : 0;
  return m;
}

// --- observability overhead section -----------------------------------
//
// A compute-bound workload through the full runner (core::run_workload),
// not the raw engine: the point is to price what the per-shard collectors
// and the deterministic merge add to a real run.  Compute-only so every
// shard count executes the identical simulation.

pcd::sim::Process obs_rank(pcd::apps::AppContext& ctx, int rank, int steps) {
  ctx.call(ctx.hooks ? ctx.hooks->at_start : nullptr, rank);
  for (int s = 0; s < steps; ++s) {
    if (ctx.tracer != nullptr) ctx.tracer->mark_iteration(rank);
    // Sub-millisecond phases keep the simulated span short relative to the
    // iteration count, so sampler ticks (proportional to simulated time)
    // amortize over the per-event work being priced.
    co_await pcd::apps::compute_phase(ctx, rank, /*onchip_s=*/0.0002,
                                      /*mem_s=*/0.0001);
  }
}

// Process CPU time: the overhead gate compares obs-on/obs-off work, and
// wall clock on a shared runner is far too noisy for a 5% bound — a
// background process stretches one side of the comparison by 10%+.  CPU
// time charges the run for the cycles it actually used (all threads), so
// the ratio survives co-tenancy; only the off/on *ratio* is gated.
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

double best(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

// One rep: useful-work throughput (rank-iterations / CPU second) with the
// observation stack off or on.
double obs_rep(int shards, int ranks, int steps, bool obs,
               std::uint64_t* events_out) {
  pcd::apps::Workload app;
  app.name = "bench.obs";
  app.ranks = ranks;
  app.iterations = steps;
  app.description = "compute-only observability-overhead workload";
  app.make_rank = [steps](pcd::apps::AppContext& ctx, int rank) {
    return obs_rank(ctx, rank, steps);
  };
  pcd::core::RunConfig cfg;
  cfg.shards = shards;
  cfg.static_mhz = 600;
  if (obs) {
    cfg.telemetry.enabled = true;
    // Coarse sampling for a throughput run: the default 50 ms period is
    // sized for wall-clock-dominated workloads; at this benchmark's
    // events-per-sim-second the series would swamp the measurement.
    cfg.telemetry.sampler.period_s = 0.5;
  }
  const double c0 = cpu_seconds();
  const auto result = pcd::core::run_workload(app, cfg);
  const double used = cpu_seconds() - c0;
  *events_out = static_cast<std::uint64_t>(result.events);
  return used > 0 ? static_cast<double>(ranks) * steps / used : 0;
}

// Off and on runs alternate within each rep (the bench_micro_profiler
// interleaving rationale: slow thermal / noisy-neighbor drift hits both
// sides of the comparison instead of one block), and the reported number
// is the *best* rep: CPU-time noise — preemption, frequency dips, cold
// caches — is strictly additive, so the fastest rep is the closest
// estimate of the true cost on both sides of the 5% gate.
void run_obs_pair(int shards, int ranks, int steps, int reps,
                  Measurement* off, Measurement* on) {
  std::vector<double> off_ips, on_ips;
  off->shards = on->shards = shards;
  off->nodes = on->nodes = ranks;
  for (int r = 0; r < reps; ++r) {
    off_ips.push_back(obs_rep(shards, ranks, steps, false, &off->events));
    on_ips.push_back(obs_rep(shards, ranks, steps, true, &on->events));
  }
  off->events_per_s = best(off_ips);
  on->events_per_s = best(on_ips);
  off->wall_s = off->events_per_s > 0
                    ? static_cast<double>(ranks) * steps / off->events_per_s
                    : 0;
  on->wall_s = on->events_per_s > 0
                   ? static_cast<double>(ranks) * steps / on->events_per_s
                   : 0;
}

void append_json_entry(std::string& out, const Measurement& m,
                       const std::string& name, bool last) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "    {\n"
                "      \"name\": \"%s\",\n"
                "      \"run_name\": \"%s\",\n"
                "      \"run_type\": \"iteration\",\n"
                "      \"iterations\": 1,\n"
                "      \"real_time\": %.6f,\n"
                "      \"cpu_time\": %.6f,\n"
                "      \"time_unit\": \"s\",\n"
                "      \"items_per_second\": %.3f,\n"
                "      \"shards\": %d,\n"
                "      \"nodes\": %d,\n"
                "      \"events\": %llu\n"
                "    }%s\n",
                name.c_str(), name.c_str(), m.wall_s, m.wall_s, m.events_per_s,
                m.shards, m.nodes, static_cast<unsigned long long>(m.events),
                last ? "" : ",");
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  int nodes = 4096;
  double horizon_ms = 20.0;
  int big_nodes = 131072;
  int obs_steps = 12000;
  int obs_reps = 9;
  std::string out_path = "BENCH_shard.json";
  bool check = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-check") == 0) check = false;
    if (i + 1 >= argc) continue;
    if (std::strcmp(argv[i], "--nodes") == 0) nodes = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--horizon-ms") == 0) horizon_ms = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--big-nodes") == 0) big_nodes = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--obs-steps") == 0) obs_steps = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--obs-reps") == 0) obs_reps = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }
  const auto horizon =
      static_cast<pcd::sim::SimTime>(horizon_ms * 1e6);  // ms -> ns
  const unsigned hw = std::thread::hardware_concurrency();

  // Observability overhead: full-runner compute workload, obs stack off vs
  // on, at each shard count.  64 ranks keeps every shard populated at 8.
  // Runs FIRST: the synthetic scaling runs (especially the 100k-node one)
  // leave the allocator with a grown, fragmented heap that measurably
  // penalizes the allocation-heavier obs-on side of the comparison.
  const int obs_ranks = 64;
  std::printf("observability overhead: %d ranks x %d iterations, "
              "best of %d interleaved reps (CPU time)\n",
              obs_ranks, obs_steps, obs_reps);
  std::printf("%8s %14s %14s %10s\n", "shards", "off items/s", "on items/s",
              "overhead");
  std::vector<Measurement> obs_off, obs_on;
  for (int shards : {1, 2, 4, 8}) {
    Measurement off, on;
    run_obs_pair(shards, obs_ranks, obs_steps, obs_reps, &off, &on);
    const double overhead =
        off.events_per_s > 0 ? 1.0 - on.events_per_s / off.events_per_s : 0.0;
    std::printf("%8d %14.0f %14.0f %9.1f%%\n", shards, off.events_per_s,
                on.events_per_s, overhead * 100.0);
    obs_off.push_back(off);
    obs_on.push_back(on);
  }

  std::printf("\nshard scaling: %d nodes, %.1f ms simulated, %u hardware threads\n",
              nodes, horizon_ms, hw);
  std::printf("%8s %12s %12s %10s %8s\n", "shards", "events", "events/s",
              "wall_s", "speedup");

  std::vector<Measurement> results;
  double base_eps = 0;
  for (int shards : {1, 2, 4, 8}) {
    const auto m = run_synth(shards, nodes, horizon);
    if (shards == 1) base_eps = m.events_per_s;
    std::printf("%8d %12llu %12.0f %10.3f %7.2fx\n", m.shards,
                static_cast<unsigned long long>(m.events), m.events_per_s,
                m.wall_s, base_eps > 0 ? m.events_per_s / base_eps : 0.0);
    results.push_back(m);
  }

  // The >= 100k-node demonstration: a shorter horizon keeps the event count
  // comparable, the point is that construction + windows handle the scale.
  const auto big = run_synth(8, big_nodes, horizon / 8);
  std::printf("%d-node run: %llu events at %.0f events/s (%.3f s wall)\n",
              big.nodes, static_cast<unsigned long long>(big.events),
              big.events_per_s, big.wall_s);
  std::vector<std::string> names;
  std::string json = "{\n  \"context\": {\n";
  {
    char buf[256];
    // hardware_threads disambiguates a skipped speedup assertion when the
    // JSON is read away from the run log: < 8 threads means the scaling
    // numbers are contention-bound, not a regression.
    std::snprintf(buf, sizeof buf,
                  "    \"executable\": \"bench_shard_scaling\",\n"
                  "    \"build_type\": \"%s\",\n"
                  "    \"num_cpus\": %u,\n"
                  "    \"hardware_threads\": %u\n  },\n  \"benchmarks\": [\n",
                  PCD_BUILD_TYPE, hw, hw);
    json += buf;
  }
  for (const auto& m : results) {
    append_json_entry(json, m,
                      "BM_ShardScaling/shards:" + std::to_string(m.shards),
                      /*last=*/false);
  }
  append_json_entry(json, big,
                    "BM_ShardHugeRun/nodes:" + std::to_string(big.nodes),
                    /*last=*/false);
  for (const auto& m : obs_off) {
    append_json_entry(json, m,
                      "BM_ShardObsOff/shards:" + std::to_string(m.shards),
                      /*last=*/false);
  }
  for (std::size_t i = 0; i < obs_on.size(); ++i) {
    append_json_entry(json, obs_on[i],
                      "BM_ShardObsOn/shards:" + std::to_string(obs_on[i].shards),
                      /*last=*/i + 1 == obs_on.size());
  }
  json += "  ]\n}\n";
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 2;
  }

  if (big.events == 0) {
    std::fprintf(stderr, "FAIL: %d-node run dispatched no events\n", big_nodes);
    return 1;
  }
  if (check && hw >= 8) {
    const double speedup = results.back().events_per_s / results.front().events_per_s;
    if (speedup < 3.0) {
      std::fprintf(stderr,
                   "FAIL: 8-shard speedup %.2fx < 3.0x on %u hardware threads\n",
                   speedup, hw);
      return 1;
    }
    std::printf("8-shard speedup %.2fx (>= 3.0x required): ok\n", speedup);
  } else if (check) {
    std::printf("skipped: %u hw threads (>= 8 required for the 3.0x "
                "speedup assertion)\n", hw);
  }
  return 0;
}
