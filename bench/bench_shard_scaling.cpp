// Shard-scaling gate for the sharded parallel event engine (DESIGN.md
// §3.14): measures aggregate events/s and nodes-simulated against shard
// count on a synthetic power-aware-cluster workload, and demonstrates a
// >= 100k-node run completing.  Emits google-benchmark-style JSON (one
// entry per shard count plus the huge run) consumed by
// tools/check_bench_regression.py in the shard-smoke CI job.
//
// The synthetic workload models the event mix a sharded DVS campaign
// produces: every node runs a periodic daemon-style tick (utilization
// poll / power integration), and every 8th tick sends a ring message to a
// node on the next shard through the conservative cross-shard post path —
// so the measurement covers both the per-shard hot loop and the barrier
// protocol, not an embarrassingly parallel best case.
//
// Usage:
//   bench_shard_scaling [--nodes N] [--horizon-ms T] [--big-nodes N]
//                       [--out FILE] [--no-check]
//
// When the host has >= 8 hardware threads, the run *asserts* >= 3x
// aggregate events/s at 8 shards over 1 shard (the acceptance criterion)
// and exits non-zero on failure; on smaller hosts the assertion is skipped
// (the engine falls back to whatever parallelism exists) unless --no-check
// already disabled it.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "machine/partition.hpp"
#include "sim/sharded.hpp"
#include "sim/time.hpp"

#ifndef PCD_BUILD_TYPE
#define PCD_BUILD_TYPE "unknown"
#endif

namespace {

constexpr pcd::sim::SimDuration kLookahead = 10 * pcd::sim::kMicrosecond;
constexpr pcd::sim::SimDuration kTickPeriod = 50 * pcd::sim::kMicrosecond;

struct NodeState {
  int shard = 0;
  std::uint64_t ticks = 0;
  std::uint64_t received = 0;
};

struct Synth {
  pcd::sim::ShardedEngine* se;
  const pcd::machine::ShardPlan* plan;
  std::vector<NodeState>* nodes;
  pcd::sim::SimTime horizon;
};

// One daemon-style node tick; reschedules itself until the horizon and
// rings a peer on the next shard every 8th firing.
void tick(Synth* c, int g) {
  NodeState& st = (*c->nodes)[static_cast<std::size_t>(g)];
  ++st.ticks;
  pcd::sim::Engine& e = c->se->shard(st.shard);
  if (st.ticks % 8 == 0 && c->plan->shards() > 1) {
    const int ps = (st.shard + 1) % c->plan->shards();
    const int pg =
        c->plan->global_of(ps, c->plan->local_of(g) % c->plan->count(ps));
    c->se->post(st.shard, ps, e.now() + c->se->lookahead(),
                [c, pg] { ++(*c->nodes)[static_cast<std::size_t>(pg)].received; },
                "bench.ring");
  }
  const pcd::sim::SimTime next = e.now() + kTickPeriod;
  if (next <= c->horizon) {
    e.schedule_at(next, [c, g] { tick(c, g); }, "bench.tick");
  }
}

struct Measurement {
  int shards = 0;
  int nodes = 0;
  std::uint64_t events = 0;
  double wall_s = 0;
  double events_per_s = 0;
};

Measurement run_synth(int shards, int total_nodes, pcd::sim::SimTime horizon) {
  pcd::sim::ShardedEngine se(shards, kLookahead);
  const auto plan = pcd::machine::ShardPlan::contiguous(total_nodes, shards);
  std::vector<NodeState> nodes(static_cast<std::size_t>(total_nodes));
  for (int g = 0; g < total_nodes; ++g) {
    nodes[static_cast<std::size_t>(g)].shard = plan.shard_of(g);
  }
  Synth ctx{&se, &plan, &nodes, horizon};
  for (int g = 0; g < total_nodes; ++g) {
    // Stagger first firings inside one tick period so windows carry work
    // from every node instead of one synchronized burst.
    const pcd::sim::SimTime first =
        (static_cast<pcd::sim::SimTime>(g) * 7919) % kTickPeriod;
    se.shard(plan.shard_of(g)).schedule_at(first, [c = &ctx, g] { tick(c, g); },
                                           "bench.tick");
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto stats = se.run();
  const auto t1 = std::chrono::steady_clock::now();

  Measurement m;
  m.shards = shards;
  m.nodes = total_nodes;
  m.events = stats.events;
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  m.events_per_s = m.wall_s > 0 ? static_cast<double>(m.events) / m.wall_s : 0;
  return m;
}

void append_json_entry(std::string& out, const Measurement& m,
                       const std::string& name, bool last) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "    {\n"
                "      \"name\": \"%s\",\n"
                "      \"run_name\": \"%s\",\n"
                "      \"run_type\": \"iteration\",\n"
                "      \"iterations\": 1,\n"
                "      \"real_time\": %.6f,\n"
                "      \"cpu_time\": %.6f,\n"
                "      \"time_unit\": \"s\",\n"
                "      \"items_per_second\": %.3f,\n"
                "      \"shards\": %d,\n"
                "      \"nodes\": %d,\n"
                "      \"events\": %llu\n"
                "    }%s\n",
                name.c_str(), name.c_str(), m.wall_s, m.wall_s, m.events_per_s,
                m.shards, m.nodes, static_cast<unsigned long long>(m.events),
                last ? "" : ",");
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  int nodes = 4096;
  double horizon_ms = 20.0;
  int big_nodes = 131072;
  std::string out_path = "BENCH_shard.json";
  bool check = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-check") == 0) check = false;
    if (i + 1 >= argc) continue;
    if (std::strcmp(argv[i], "--nodes") == 0) nodes = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--horizon-ms") == 0) horizon_ms = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--big-nodes") == 0) big_nodes = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }
  const auto horizon =
      static_cast<pcd::sim::SimTime>(horizon_ms * 1e6);  // ms -> ns
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("shard scaling: %d nodes, %.1f ms simulated, %u hardware threads\n",
              nodes, horizon_ms, hw);
  std::printf("%8s %12s %12s %10s %8s\n", "shards", "events", "events/s",
              "wall_s", "speedup");

  std::vector<Measurement> results;
  double base_eps = 0;
  for (int shards : {1, 2, 4, 8}) {
    const auto m = run_synth(shards, nodes, horizon);
    if (shards == 1) base_eps = m.events_per_s;
    std::printf("%8d %12llu %12.0f %10.3f %7.2fx\n", m.shards,
                static_cast<unsigned long long>(m.events), m.events_per_s,
                m.wall_s, base_eps > 0 ? m.events_per_s / base_eps : 0.0);
    results.push_back(m);
  }

  // The >= 100k-node demonstration: a shorter horizon keeps the event count
  // comparable, the point is that construction + windows handle the scale.
  const auto big = run_synth(8, big_nodes, horizon / 8);
  std::printf("%d-node run: %llu events at %.0f events/s (%.3f s wall)\n",
              big.nodes, static_cast<unsigned long long>(big.events),
              big.events_per_s, big.wall_s);
  std::vector<std::string> names;
  std::string json = "{\n  \"context\": {\n";
  {
    char buf[256];
    // hardware_threads disambiguates a skipped speedup assertion when the
    // JSON is read away from the run log: < 8 threads means the scaling
    // numbers are contention-bound, not a regression.
    std::snprintf(buf, sizeof buf,
                  "    \"executable\": \"bench_shard_scaling\",\n"
                  "    \"build_type\": \"%s\",\n"
                  "    \"num_cpus\": %u,\n"
                  "    \"hardware_threads\": %u\n  },\n  \"benchmarks\": [\n",
                  PCD_BUILD_TYPE, hw, hw);
    json += buf;
  }
  for (const auto& m : results) {
    append_json_entry(json, m,
                      "BM_ShardScaling/shards:" + std::to_string(m.shards),
                      /*last=*/false);
  }
  append_json_entry(json, big,
                    "BM_ShardHugeRun/nodes:" + std::to_string(big.nodes),
                    /*last=*/true);
  json += "  ]\n}\n";
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 2;
  }

  if (big.events == 0) {
    std::fprintf(stderr, "FAIL: %d-node run dispatched no events\n", big_nodes);
    return 1;
  }
  if (check && hw >= 8) {
    const double speedup = results.back().events_per_s / results.front().events_per_s;
    if (speedup < 3.0) {
      std::fprintf(stderr,
                   "FAIL: 8-shard speedup %.2fx < 3.0x on %u hardware threads\n",
                   speedup, hw);
      return 1;
    }
    std::printf("8-shard speedup %.2fx (>= 3.0x required): ok\n", speedup);
  } else if (check) {
    std::printf("skipped: %u hw threads (>= 8 required for the 3.0x "
                "speedup assertion)\n", hw);
  }
  return 0;
}
