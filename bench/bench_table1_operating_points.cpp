// Table 1: operating points of the Pentium M 1.4 GHz processor, plus the
// measured DVS transition-cost distribution of the CPU model.
#include <cstdio>

#include "analysis/report.hpp"
#include "bench/bench_common.hpp"
#include "cpu/cpu.hpp"
#include "power/cpu_power.hpp"
#include "sim/engine.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  (void)bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading(
      "Table 1: operating points for the Pentium M 1.4 GHz processor").c_str());

  const auto table = cpu::OperatingPointTable::pentium_m_1400();
  const power::CpuPowerModel model(power::CpuPowerParams::pentium_m(), table.highest());

  analysis::TextTable t({"Frequency", "Supply voltage", "busy CPU power (model)",
                         "idle CPU power (model)"});
  for (auto it = table.points().rbegin(); it != table.points().rend(); ++it) {
    t.add_row({std::to_string(it->freq_mhz / 1000) + "." +
                   std::to_string((it->freq_mhz / 100) % 10) + " GHz",
               analysis::fmt(it->voltage, 3) + " V",
               analysis::fmt(model.watts(*it, 1.0), 1) + " W",
               analysis::fmt(model.watts(*it, 0.18), 1) + " W"});
  }
  std::printf("%s\n", t.str().c_str());

  // Transition-cost microbenchmark: drive 10k transitions, histogram stalls.
  std::printf("DVS transition stall distribution (paper: 20-30 us observed on "
              "Opteron, ~10 us manufacturer floor; model draws 10-30 us):\n");
  sim::Engine engine;
  cpu::Cpu cpu(engine, table, cpu::CpuConfig{}, sim::Rng(42));
  sim::SimDuration min_stall = 1 << 30, max_stall = 0, prev_total = 0;
  for (int i = 0; i < 10000; ++i) {
    cpu.set_frequency_mhz(i % 2 == 0 ? 600 : 1400);
    engine.run();
    const auto stall = cpu.stats().transition_stall_ns - prev_total;
    prev_total = cpu.stats().transition_stall_ns;
    min_stall = std::min(min_stall, stall);
    max_stall = std::max(max_stall, stall);
  }
  std::printf("  transitions: %lld, stall min %.1f us, max %.1f us, mean %.1f us\n",
              static_cast<long long>(cpu.stats().transitions),
              min_stall / 1000.0, max_stall / 1000.0,
              cpu.stats().transition_stall_ns / 1000.0 / cpu.stats().transitions);
  return 0;
}
