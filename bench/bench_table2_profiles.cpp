// Table 2: energy-performance profiles of the NPB benchmarks.
//
// For each code, runs the CPUSPEED daemon ("auto") and every static
// frequency, then prints normalized delay (top) and normalized energy
// (bottom) per cell next to the paper's values.
#include <cstdio>

#include "analysis/reference.hpp"
#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading("Table 2: energy-performance profiles of NPB "
                                      "(normalized delay / normalized energy)").c_str());
  std::printf("scale=%.2f trials=%d (paper values in parentheses; paper energy for SP "
              "not published)\n\n",
              args.scale, args.trials);

  const auto freqs = bench::nemo_freqs();
  analysis::TextTable table({"code", "auto", "600 MHz", "800 MHz", "1000 MHz",
                             "1200 MHz", "1400 MHz"});

  for (const auto& workload : apps::all_npb(args.scale)) {
    const auto* ref = analysis::table2_row(workload.name);

    // Static sweep (EXTERNAL settings).
    auto sweep = core::sweep_static(workload, bench::base_config(args), freqs,
                                    args.trials);
    const auto crescendo = sweep.normalized();
    const double base_delay = sweep.points.back().result.delay_s;
    const double base_energy = sweep.points.back().result.energy_j;

    // CPUSPEED daemon ("auto" column).
    core::RunConfig auto_cfg = bench::base_config(args);
    auto_cfg.daemon = core::CpuspeedParams::v1_2_1();
    const auto auto_run = core::run_trials(workload, auto_cfg, args.trials);
    const double auto_delay = auto_run.delay_s / base_delay;
    const double auto_energy = auto_run.energy_j / base_energy;

    std::vector<std::string> delay_row{workload.name};
    std::vector<std::string> energy_row{""};
    auto cell = [&](double measured, double paper, bool known) {
      char buf[64];
      if (known) {
        std::snprintf(buf, sizeof buf, "%.2f (%.2f)", measured, paper);
      } else {
        std::snprintf(buf, sizeof buf, "%.2f ( -- )", measured);
      }
      return std::string(buf);
    };
    delay_row.push_back(cell(auto_delay, ref ? ref->auto_daemon.delay : 0, ref));
    energy_row.push_back(cell(auto_energy, ref ? ref->auto_daemon.energy : 0,
                              ref && ref->energy_known));
    for (int f : freqs) {
      const auto& ed = crescendo.at(f);
      const auto* paper = ref && ref->at.count(f) ? &ref->at.at(f) : nullptr;
      delay_row.push_back(cell(ed.delay, paper ? paper->delay : 0, paper != nullptr));
      energy_row.push_back(cell(ed.energy, paper ? paper->energy : 0,
                                paper != nullptr && ref->energy_known));
    }
    table.add_row(delay_row);
    table.add_row(energy_row);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Row format: normalized delay on top, normalized energy below "
              "(both relative to 1400 MHz), as in the paper's Table 2.\n");
  return 0;
}
