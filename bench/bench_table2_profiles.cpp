// Table 2: energy-performance profiles of the NPB benchmarks.
//
// For each code, runs the CPUSPEED daemon ("auto") and every static
// frequency, then prints normalized delay (top) and normalized energy
// (bottom) per cell next to the paper's values.  The whole table is one
// campaign: 8 codes x 6 settings x trials.
#include <cstdio>

#include "analysis/reference.hpp"
#include "bench/bench_common.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("%s", analysis::heading("Table 2: energy-performance profiles of NPB "
                                      "(normalized delay / normalized energy)").c_str());
  std::printf("scale=%.2f trials=%d (paper values in parentheses; paper energy for SP "
              "not published)\n\n",
              args.scale, args.trials);

  const auto freqs = bench::nemo_freqs();
  std::vector<std::pair<std::string, std::function<void(core::RunConfig&)>>> settings{
      {"auto", [](core::RunConfig& c) { c.daemon = core::CpuspeedParams::v1_2_1(); }}};
  for (int f : freqs) {
    settings.emplace_back(std::to_string(f),
                          [f](core::RunConfig& c) { c.static_mhz = f; });
  }

  campaign::ExperimentSpec spec;
  spec.workloads(apps::all_npb(args.scale))
      .base(bench::base_config(args))
      .axis(campaign::Axis::strategies("setting", settings))
      .trials(args.trials);
  const auto result = bench::run(spec, args);

  analysis::TextTable table({"code", "auto", "600 MHz", "800 MHz", "1000 MHz",
                             "1200 MHz", "1400 MHz"});
  for (const auto& [label, workload] : spec.workload_entries()) {
    const auto* ref = analysis::table2_row(workload.name);

    std::vector<std::string> delay_row{label};
    std::vector<std::string> energy_row{""};
    auto cell = [&](double measured, double paper, bool known) {
      char buf[64];
      if (known) {
        std::snprintf(buf, sizeof buf, "%.2f (%.2f)", measured, paper);
      } else {
        std::snprintf(buf, sizeof buf, "%.2f ( -- )", measured);
      }
      return std::string(buf);
    };
    const auto auto_ed = bench::normalized(result, label, {"auto"}, {"1400"});
    delay_row.push_back(cell(auto_ed.delay, ref ? ref->auto_daemon.delay : 0, ref));
    energy_row.push_back(cell(auto_ed.energy, ref ? ref->auto_daemon.energy : 0,
                              ref && ref->energy_known));
    for (int f : freqs) {
      const auto ed = bench::normalized(result, label, {std::to_string(f)}, {"1400"});
      const auto* paper = ref && ref->at.count(f) ? &ref->at.at(f) : nullptr;
      delay_row.push_back(cell(ed.delay, paper ? paper->delay : 0, paper != nullptr));
      energy_row.push_back(cell(ed.energy, paper ? paper->energy : 0,
                                paper != nullptr && ref->energy_known));
    }
    table.add_row(delay_row);
    table.add_row(energy_row);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Row format: normalized delay on top, normalized energy below "
              "(both relative to 1400 MHz), as in the paper's Table 2.\n");
  return 0;
}
