# Empty dependencies file for bench_ablation_acpi_accuracy.
# This may be replaced when dependencies are built.
