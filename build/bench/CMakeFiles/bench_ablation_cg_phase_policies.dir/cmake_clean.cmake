file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cg_phase_policies.dir/bench_ablation_cg_phase_policies.cpp.o"
  "CMakeFiles/bench_ablation_cg_phase_policies.dir/bench_ablation_cg_phase_policies.cpp.o.d"
  "bench_ablation_cg_phase_policies"
  "bench_ablation_cg_phase_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cg_phase_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
