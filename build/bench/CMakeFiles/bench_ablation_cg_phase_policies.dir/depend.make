# Empty dependencies file for bench_ablation_cg_phase_policies.
# This may be replaced when dependencies are built.
