file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cpuspeed_versions.dir/bench_ablation_cpuspeed_versions.cpp.o"
  "CMakeFiles/bench_ablation_cpuspeed_versions.dir/bench_ablation_cpuspeed_versions.cpp.o.d"
  "bench_ablation_cpuspeed_versions"
  "bench_ablation_cpuspeed_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cpuspeed_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
