# Empty dependencies file for bench_ablation_cpuspeed_versions.
# This may be replaced when dependencies are built.
