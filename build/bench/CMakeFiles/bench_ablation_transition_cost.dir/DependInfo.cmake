
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_transition_cost.cpp" "bench/CMakeFiles/bench_ablation_transition_cost.dir/bench_ablation_transition_cost.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_transition_cost.dir/bench_ablation_transition_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/pcd_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pcd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/pcd_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/pcd_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pcd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pcd_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pcd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pcd_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/pcd_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
