file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_ft_internal.dir/bench_fig11_ft_internal.cpp.o"
  "CMakeFiles/bench_fig11_ft_internal.dir/bench_fig11_ft_internal.cpp.o.d"
  "bench_fig11_ft_internal"
  "bench_fig11_ft_internal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_ft_internal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
