# Empty dependencies file for bench_fig11_ft_internal.
# This may be replaced when dependencies are built.
