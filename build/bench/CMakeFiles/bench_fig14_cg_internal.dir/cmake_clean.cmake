file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_cg_internal.dir/bench_fig14_cg_internal.cpp.o"
  "CMakeFiles/bench_fig14_cg_internal.dir/bench_fig14_cg_internal.cpp.o.d"
  "bench_fig14_cg_internal"
  "bench_fig14_cg_internal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_cg_internal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
