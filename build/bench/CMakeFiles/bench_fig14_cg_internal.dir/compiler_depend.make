# Empty compiler generated dependencies file for bench_fig14_cg_internal.
# This may be replaced when dependencies are built.
