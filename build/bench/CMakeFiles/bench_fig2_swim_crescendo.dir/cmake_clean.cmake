file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_swim_crescendo.dir/bench_fig2_swim_crescendo.cpp.o"
  "CMakeFiles/bench_fig2_swim_crescendo.dir/bench_fig2_swim_crescendo.cpp.o.d"
  "bench_fig2_swim_crescendo"
  "bench_fig2_swim_crescendo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_swim_crescendo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
