# Empty dependencies file for bench_fig2_swim_crescendo.
# This may be replaced when dependencies are built.
