file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cpuspeed_npb.dir/bench_fig5_cpuspeed_npb.cpp.o"
  "CMakeFiles/bench_fig5_cpuspeed_npb.dir/bench_fig5_cpuspeed_npb.cpp.o.d"
  "bench_fig5_cpuspeed_npb"
  "bench_fig5_cpuspeed_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cpuspeed_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
