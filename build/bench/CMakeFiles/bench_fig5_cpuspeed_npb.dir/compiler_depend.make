# Empty compiler generated dependencies file for bench_fig5_cpuspeed_npb.
# This may be replaced when dependencies are built.
