file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_external_ed3p.dir/bench_fig6_external_ed3p.cpp.o"
  "CMakeFiles/bench_fig6_external_ed3p.dir/bench_fig6_external_ed3p.cpp.o.d"
  "bench_fig6_external_ed3p"
  "bench_fig6_external_ed3p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_external_ed3p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
