# Empty compiler generated dependencies file for bench_fig6_external_ed3p.
# This may be replaced when dependencies are built.
