file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_external_ed2p.dir/bench_fig7_external_ed2p.cpp.o"
  "CMakeFiles/bench_fig7_external_ed2p.dir/bench_fig7_external_ed2p.cpp.o.d"
  "bench_fig7_external_ed2p"
  "bench_fig7_external_ed2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_external_ed2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
