# Empty dependencies file for bench_fig7_external_ed2p.
# This may be replaced when dependencies are built.
