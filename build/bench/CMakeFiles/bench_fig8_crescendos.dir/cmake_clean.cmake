file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_crescendos.dir/bench_fig8_crescendos.cpp.o"
  "CMakeFiles/bench_fig8_crescendos.dir/bench_fig8_crescendos.cpp.o.d"
  "bench_fig8_crescendos"
  "bench_fig8_crescendos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_crescendos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
