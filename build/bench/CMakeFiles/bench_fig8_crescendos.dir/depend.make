# Empty dependencies file for bench_fig8_crescendos.
# This may be replaced when dependencies are built.
