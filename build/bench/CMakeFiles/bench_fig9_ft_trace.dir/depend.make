# Empty dependencies file for bench_fig9_ft_trace.
# This may be replaced when dependencies are built.
