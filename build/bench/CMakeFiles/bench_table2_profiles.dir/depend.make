# Empty dependencies file for bench_table2_profiles.
# This may be replaced when dependencies are built.
