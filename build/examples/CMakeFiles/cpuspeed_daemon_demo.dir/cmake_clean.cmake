file(REMOVE_RECURSE
  "CMakeFiles/cpuspeed_daemon_demo.dir/cpuspeed_daemon_demo.cpp.o"
  "CMakeFiles/cpuspeed_daemon_demo.dir/cpuspeed_daemon_demo.cpp.o.d"
  "cpuspeed_daemon_demo"
  "cpuspeed_daemon_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpuspeed_daemon_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
