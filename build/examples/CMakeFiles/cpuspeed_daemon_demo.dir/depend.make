# Empty dependencies file for cpuspeed_daemon_demo.
# This may be replaced when dependencies are built.
