file(REMOVE_RECURSE
  "CMakeFiles/external_selection.dir/external_selection.cpp.o"
  "CMakeFiles/external_selection.dir/external_selection.cpp.o.d"
  "external_selection"
  "external_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
