# Empty compiler generated dependencies file for external_selection.
# This may be replaced when dependencies are built.
