file(REMOVE_RECURSE
  "CMakeFiles/ft_internal_scheduling.dir/ft_internal_scheduling.cpp.o"
  "CMakeFiles/ft_internal_scheduling.dir/ft_internal_scheduling.cpp.o.d"
  "ft_internal_scheduling"
  "ft_internal_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_internal_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
