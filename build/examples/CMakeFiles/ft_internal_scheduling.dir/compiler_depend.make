# Empty compiler generated dependencies file for ft_internal_scheduling.
# This may be replaced when dependencies are built.
