file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_cg.dir/heterogeneous_cg.cpp.o"
  "CMakeFiles/heterogeneous_cg.dir/heterogeneous_cg.cpp.o.d"
  "heterogeneous_cg"
  "heterogeneous_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
