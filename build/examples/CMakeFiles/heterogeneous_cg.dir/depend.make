# Empty dependencies file for heterogeneous_cg.
# This may be replaced when dependencies are built.
