file(REMOVE_RECURSE
  "CMakeFiles/powerpack_meters.dir/powerpack_meters.cpp.o"
  "CMakeFiles/powerpack_meters.dir/powerpack_meters.cpp.o.d"
  "powerpack_meters"
  "powerpack_meters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powerpack_meters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
