# Empty dependencies file for powerpack_meters.
# This may be replaced when dependencies are built.
