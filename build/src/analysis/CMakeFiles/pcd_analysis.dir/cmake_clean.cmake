file(REMOVE_RECURSE
  "CMakeFiles/pcd_analysis.dir/crescendo.cpp.o"
  "CMakeFiles/pcd_analysis.dir/crescendo.cpp.o.d"
  "CMakeFiles/pcd_analysis.dir/reference.cpp.o"
  "CMakeFiles/pcd_analysis.dir/reference.cpp.o.d"
  "CMakeFiles/pcd_analysis.dir/report.cpp.o"
  "CMakeFiles/pcd_analysis.dir/report.cpp.o.d"
  "libpcd_analysis.a"
  "libpcd_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
