file(REMOVE_RECURSE
  "libpcd_analysis.a"
)
