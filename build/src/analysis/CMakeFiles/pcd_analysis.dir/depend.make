# Empty dependencies file for pcd_analysis.
# This may be replaced when dependencies are built.
