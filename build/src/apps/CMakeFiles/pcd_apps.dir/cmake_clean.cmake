file(REMOVE_RECURSE
  "CMakeFiles/pcd_apps.dir/npb.cpp.o"
  "CMakeFiles/pcd_apps.dir/npb.cpp.o.d"
  "CMakeFiles/pcd_apps.dir/workload.cpp.o"
  "CMakeFiles/pcd_apps.dir/workload.cpp.o.d"
  "libpcd_apps.a"
  "libpcd_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcd_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
