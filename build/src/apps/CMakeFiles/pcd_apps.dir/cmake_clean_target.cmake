file(REMOVE_RECURSE
  "libpcd_apps.a"
)
