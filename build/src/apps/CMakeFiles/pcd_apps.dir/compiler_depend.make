# Empty compiler generated dependencies file for pcd_apps.
# This may be replaced when dependencies are built.
