file(REMOVE_RECURSE
  "CMakeFiles/pcd_core.dir/cpuspeed.cpp.o"
  "CMakeFiles/pcd_core.dir/cpuspeed.cpp.o.d"
  "CMakeFiles/pcd_core.dir/metrics.cpp.o"
  "CMakeFiles/pcd_core.dir/metrics.cpp.o.d"
  "CMakeFiles/pcd_core.dir/predictor.cpp.o"
  "CMakeFiles/pcd_core.dir/predictor.cpp.o.d"
  "CMakeFiles/pcd_core.dir/runner.cpp.o"
  "CMakeFiles/pcd_core.dir/runner.cpp.o.d"
  "CMakeFiles/pcd_core.dir/strategies.cpp.o"
  "CMakeFiles/pcd_core.dir/strategies.cpp.o.d"
  "libpcd_core.a"
  "libpcd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
