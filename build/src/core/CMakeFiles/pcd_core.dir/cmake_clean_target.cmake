file(REMOVE_RECURSE
  "libpcd_core.a"
)
