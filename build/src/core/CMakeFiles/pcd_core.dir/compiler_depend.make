# Empty compiler generated dependencies file for pcd_core.
# This may be replaced when dependencies are built.
