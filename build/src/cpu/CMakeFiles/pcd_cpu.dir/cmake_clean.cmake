file(REMOVE_RECURSE
  "CMakeFiles/pcd_cpu.dir/cpu.cpp.o"
  "CMakeFiles/pcd_cpu.dir/cpu.cpp.o.d"
  "libpcd_cpu.a"
  "libpcd_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcd_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
