file(REMOVE_RECURSE
  "libpcd_cpu.a"
)
