# Empty dependencies file for pcd_cpu.
# This may be replaced when dependencies are built.
