file(REMOVE_RECURSE
  "CMakeFiles/pcd_machine.dir/cluster.cpp.o"
  "CMakeFiles/pcd_machine.dir/cluster.cpp.o.d"
  "libpcd_machine.a"
  "libpcd_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcd_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
