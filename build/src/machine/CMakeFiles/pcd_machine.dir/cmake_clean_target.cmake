file(REMOVE_RECURSE
  "libpcd_machine.a"
)
