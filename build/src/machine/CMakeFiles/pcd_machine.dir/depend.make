# Empty dependencies file for pcd_machine.
# This may be replaced when dependencies are built.
