file(REMOVE_RECURSE
  "CMakeFiles/pcd_mpi.dir/comm.cpp.o"
  "CMakeFiles/pcd_mpi.dir/comm.cpp.o.d"
  "libpcd_mpi.a"
  "libpcd_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcd_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
