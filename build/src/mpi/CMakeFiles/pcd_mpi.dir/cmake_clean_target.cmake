file(REMOVE_RECURSE
  "libpcd_mpi.a"
)
