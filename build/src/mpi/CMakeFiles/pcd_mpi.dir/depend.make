# Empty dependencies file for pcd_mpi.
# This may be replaced when dependencies are built.
