file(REMOVE_RECURSE
  "CMakeFiles/pcd_net.dir/network.cpp.o"
  "CMakeFiles/pcd_net.dir/network.cpp.o.d"
  "libpcd_net.a"
  "libpcd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
