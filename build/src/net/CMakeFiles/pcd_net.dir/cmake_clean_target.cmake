file(REMOVE_RECURSE
  "libpcd_net.a"
)
