# Empty dependencies file for pcd_net.
# This may be replaced when dependencies are built.
