
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/meters.cpp" "src/power/CMakeFiles/pcd_power.dir/meters.cpp.o" "gcc" "src/power/CMakeFiles/pcd_power.dir/meters.cpp.o.d"
  "/root/repo/src/power/node_power.cpp" "src/power/CMakeFiles/pcd_power.dir/node_power.cpp.o" "gcc" "src/power/CMakeFiles/pcd_power.dir/node_power.cpp.o.d"
  "/root/repo/src/power/thermal.cpp" "src/power/CMakeFiles/pcd_power.dir/thermal.cpp.o" "gcc" "src/power/CMakeFiles/pcd_power.dir/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/pcd_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
