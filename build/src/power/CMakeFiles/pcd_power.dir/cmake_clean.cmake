file(REMOVE_RECURSE
  "CMakeFiles/pcd_power.dir/meters.cpp.o"
  "CMakeFiles/pcd_power.dir/meters.cpp.o.d"
  "CMakeFiles/pcd_power.dir/node_power.cpp.o"
  "CMakeFiles/pcd_power.dir/node_power.cpp.o.d"
  "CMakeFiles/pcd_power.dir/thermal.cpp.o"
  "CMakeFiles/pcd_power.dir/thermal.cpp.o.d"
  "libpcd_power.a"
  "libpcd_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcd_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
