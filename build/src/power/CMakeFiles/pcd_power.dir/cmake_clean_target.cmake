file(REMOVE_RECURSE
  "libpcd_power.a"
)
