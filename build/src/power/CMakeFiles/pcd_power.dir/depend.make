# Empty dependencies file for pcd_power.
# This may be replaced when dependencies are built.
