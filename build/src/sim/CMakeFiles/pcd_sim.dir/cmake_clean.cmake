file(REMOVE_RECURSE
  "CMakeFiles/pcd_sim.dir/engine.cpp.o"
  "CMakeFiles/pcd_sim.dir/engine.cpp.o.d"
  "libpcd_sim.a"
  "libpcd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
