file(REMOVE_RECURSE
  "libpcd_sim.a"
)
