# Empty dependencies file for pcd_sim.
# This may be replaced when dependencies are built.
