file(REMOVE_RECURSE
  "CMakeFiles/pcd_trace.dir/export.cpp.o"
  "CMakeFiles/pcd_trace.dir/export.cpp.o.d"
  "CMakeFiles/pcd_trace.dir/profile.cpp.o"
  "CMakeFiles/pcd_trace.dir/profile.cpp.o.d"
  "libpcd_trace.a"
  "libpcd_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
