file(REMOVE_RECURSE
  "libpcd_trace.a"
)
