# Empty compiler generated dependencies file for pcd_trace.
# This may be replaced when dependencies are built.
