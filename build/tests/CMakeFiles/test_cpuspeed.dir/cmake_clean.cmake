file(REMOVE_RECURSE
  "CMakeFiles/test_cpuspeed.dir/test_cpuspeed.cpp.o"
  "CMakeFiles/test_cpuspeed.dir/test_cpuspeed.cpp.o.d"
  "test_cpuspeed"
  "test_cpuspeed.pdb"
  "test_cpuspeed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpuspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
