# Empty dependencies file for test_cpuspeed.
# This may be replaced when dependencies are built.
