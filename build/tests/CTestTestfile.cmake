# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_op[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_cpuspeed[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
