// Campaign service demo: the resilient server end to end, in process.
//
// Submits a small Figure-5-shaped campaign (NPB codes x {static 1400 MHz,
// CPUSPEED v1.2.1}) twice against a disk-backed result cache: the cold
// pass computes and persists every cell, the warm pass is served entirely
// from the cache — same fingerprint, a fraction of the wall time.  Then it
// demonstrates the robustness layer: load shedding on a full admission
// queue, and a chaos round where injected crashes are retried until the
// response converges to the clean fingerprint.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "fault/plan.hpp"
#include "service/service.hpp"

using namespace pcd;

namespace {

service::SpecRequest small_fig5(double scale) {
  service::SpecRequest req;
  req.workloads = {"FT", "CG", "EP", "IS"};
  req.scale = scale;
  req.trials = 1;
  req.strategies = {{"1400", 1400, ""}, {"auto", 0, "v1.2.1"}};
  return req;
}

void print(const char* pass, const service::Response& r) {
  std::printf("%-6s status=%-9s cells=%zu hits=%d misses=%d retries=%d"
              " fingerprint=%016llx wall=%.2fs\n",
              pass, service::to_string(r.status), r.result.cells.size(),
              r.cache_hits, r.cache_misses, r.retries,
              static_cast<unsigned long long>(r.fingerprint), r.result.wall_s);
}

}  // namespace

int main() {
  const std::string cache_dir = "/tmp/pcd_service_demo_cache";
  std::filesystem::remove_all(cache_dir);

  service::ServiceOptions opts;
  opts.workers = 2;
  opts.campaign_threads = 0;  // hardware concurrency
  opts.cache_dir = cache_dir;

  std::printf("== cold vs warm (crash-safe result cache) ==\n");
  std::uint64_t clean_fingerprint = 0;
  {
    service::CampaignService svc(opts);
    const auto cold = svc.execute(small_fig5(0.02));
    print("cold", cold);
    const auto warm = svc.execute(small_fig5(0.02));
    print("warm", warm);
    clean_fingerprint = cold.fingerprint;
    std::printf("fingerprints %s; warm served %.0f%% from cache, %.1fx faster\n",
                cold.fingerprint == warm.fingerprint ? "match" : "DIVERGE",
                100.0 * warm.cache_hits /
                    double(warm.cache_hits + warm.cache_misses),
                warm.result.wall_s > 0 ? cold.result.wall_s / warm.result.wall_s
                                       : 0.0);
    svc.drain();  // persists the cache index for the next open
  }

  std::printf("\n== recovery + admission control ==\n");
  {
    service::ServiceOptions tight = opts;
    tight.workers = 1;
    tight.max_queue = 1;
    service::CampaignService svc(tight);
    const auto cs = svc.cache_stats();
    std::printf("reopened cache: %lld entries recovered (%s), 0 corrupt\n",
                static_cast<long long>(cs.recovered),
                cs.index_used ? "index fast path" : "full scan");
    // Three tickets against one worker + one queue slot: the third sheds.
    auto t1 = svc.submit(small_fig5(0.02));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));  // worker takes #1
    auto t2 = svc.submit(small_fig5(0.02));
    auto t3 = svc.submit(small_fig5(0.02));
    const auto r3 = svc.wait(t3);
    std::printf("third submission: %s (%s; retry_after=%.2fs)\n",
                service::to_string(r3.status), r3.reason.c_str(),
                r3.retry_after_s);
    print("q#1", svc.wait(t1));
    print("q#2", svc.wait(t2));
    svc.drain();
  }

  std::printf("\n== chaos: injected crashes, retried to convergence ==\n");
  {
    service::ServiceOptions chaotic = opts;
    chaotic.cache_dir = "";  // isolate from the warm cache for the demo
    chaotic.chaos.probability = 1.0;  // every first attempt runs under faults
    chaotic.chaos.plan.events.push_back(fault::node_crash(0.5, 0));
    chaotic.max_retries = 2;
    service::CampaignService svc(chaotic);
    const auto chaos = svc.execute(small_fig5(0.02));
    print("chaos", chaos);
    std::printf("chaos response %s the clean fingerprint after %d retries\n",
                chaos.fingerprint == clean_fingerprint ? "CONVERGED to"
                                                       : "diverged from",
                chaos.retries);
  }
  return 0;
}
