// CPUSPEED daemon behaviour across versions and thresholds, watching one
// node's operating-point residency — why history-based scheduling works
// for phase-heavy codes (FT) and fails for blended ones (MG).
//
//   ./cpuspeed_daemon_demo [code] [scale]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/npb.hpp"
#include "core/runner.hpp"

using namespace pcd;

namespace {

// Runs the daemon configuration and prints per-operating-point residency.
void run_and_report(const apps::Workload& workload, const char* label,
                    core::CpuspeedParams params, const core::RunResult& base) {
  // Build the run manually so the node stats stay inspectable.
  const auto cfg = core::RunConfigBuilder().daemon(params).build();
  const auto r = core::run_workload(workload, cfg);
  std::printf("%-28s delay %.2f energy %.2f, %lld speed changes, mean util %.2f\n",
              label, r.delay_s / base.delay_s, r.energy_j / base.energy_j,
              static_cast<long long>(r.dvs_transitions), r.mean_utilization);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string code = argc > 1 ? argv[1] : "FT";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  auto workload = apps::npb_by_name(code, scale);
  if (!workload) {
    std::fprintf(stderr, "unknown workload '%s'\n", code.c_str());
    return 1;
  }

  const auto base_cfg = core::RunConfigBuilder().static_mhz(1400).build();
  const auto base = core::run_workload(*workload, base_cfg);
  std::printf("%s baseline: %.1f s, %.0f J\n\n", workload->name.c_str(), base.delay_s,
              base.energy_j);

  run_and_report(*workload, "cpuspeed 1.1 (0.1 s)", core::CpuspeedParams::v1_1(), base);
  run_and_report(*workload, "cpuspeed 1.2.1 (2 s)", core::CpuspeedParams::v1_2_1(),
                 base);

  std::printf("\nthreshold variations (interval 2 s):\n");
  for (double usage : {0.6, 0.75, 0.85, 0.95}) {
    core::CpuspeedParams p = core::CpuspeedParams::v1_2_1();
    p.usage_threshold = usage;
    if (p.max_threshold <= usage) p.max_threshold = usage + 0.04;
    char label[64];
    std::snprintf(label, sizeof label, "  usage threshold %.2f", usage);
    run_and_report(*workload, label, p, base);
  }
  std::printf("\npaper: v1.1's 0.1 s interval is 'equivalent to no DVS'; v1.2.1 "
              "saves energy but costs 10%%+ delay whenever savings exceed 25%%.\n");
  return 0;
}
