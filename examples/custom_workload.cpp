// Building a custom workload against the public API: a two-phase "weather
// mini-app" (dense compute + halo exchange + global reduce), then finding
// its best DVS schedule.
//
// This is the path a downstream user takes to evaluate DVS scheduling for
// their own application before touching a real power-aware cluster.
#include <cstdio>

#include "apps/workload.hpp"
#include "campaign/sweeps.hpp"
#include "core/runner.hpp"
#include "core/strategies.hpp"

using namespace pcd;

namespace {

// One rank of the mini-app.  Phases per step:
//   - dense stencil update: mostly on-chip with some memory traffic,
//   - halo exchange with both ring neighbours (nonblocking),
//   - global residual reduction.
sim::Process weather_rank(apps::AppContext& ctx, int rank, int steps) {
  auto& comm = *ctx.comm;
  const int p = comm.size();
  const int left = (rank + p - 1) % p;
  const int right = (rank + 1) % p;
  ctx.call(ctx.hooks ? ctx.hooks->at_start : nullptr, rank);
  for (int s = 0; s < steps; ++s) {
    if (ctx.tracer) ctx.tracer->mark_iteration(rank);
    co_await apps::compute_phase(ctx, rank, /*onchip_s=*/0.12, /*mem_s=*/0.08);

    ctx.call(ctx.hooks ? ctx.hooks->before_marked_comm : nullptr, rank);
    auto r1 = comm.irecv(rank, left, 1);
    auto r2 = comm.irecv(rank, right, 2);
    auto s1 = comm.isend(rank, right, 1, 600'000);
    auto s2 = comm.isend(rank, left, 2, 600'000);
    std::vector<mpi::Comm::Request> reqs{s1, s2, r1, r2};
    co_await comm.waitall(rank, std::move(reqs));
    co_await comm.allreduce(rank, 64);
    ctx.call(ctx.hooks ? ctx.hooks->after_marked_comm : nullptr, rank);
  }
}

apps::Workload make_weather(int ranks, int steps) {
  apps::Workload w;
  w.name = "weather." + std::to_string(ranks);
  w.ranks = ranks;
  w.iterations = steps;
  w.description = "stencil mini-app: compute + halo exchange + reduce";
  w.make_rank = [steps](apps::AppContext& ctx, int rank) {
    return weather_rank(ctx, rank, steps);
  };
  return w;
}

}  // namespace

int main() {
  auto app = make_weather(/*ranks=*/8, /*steps=*/120);
  std::printf("custom workload: %s\n\n", app.description.c_str());

  // 1. Black-box frequency sweep -> crescendo.
  auto sweep = campaign::sweep_static(app, core::RunConfig{});
  const auto crescendo = sweep.normalized();
  std::printf("crescendo (freq: delay / energy):\n");
  for (const auto& [f, ed] : crescendo) {
    std::printf("  %4d MHz: %.3f / %.3f\n", f, ed.delay, ed.energy);
  }

  // 2. Pick an operating point under a 5% performance constraint.
  const auto choice = core::select_delay_constrained(crescendo, 0.05);
  if (choice) {
    std::printf("\nperformance-constrained choice: %d MHz "
                "(%.1f%% energy saving at %.1f%% delay)\n",
                choice->freq_mhz, 100 * (1 - choice->at.energy),
                100 * (choice->at.delay - 1));
  }

  // 3. Try internal scheduling around the marked communication phase.
  const auto internal_cfg = core::RunConfigBuilder()
                                .hooks(core::internal_phase_hooks(1400, 600))
                                .build();
  const auto internal = core::run_workload(app, internal_cfg);
  const auto& base = sweep.points.back().result;
  std::printf("internal 1400/600: delay %.3f energy %.3f (normalized)\n",
              internal.delay_s / base.delay_s, internal.energy_j / base.energy_j);
  return 0;
}
