// EXTERNAL control with metric-driven operating-point selection:
// sweep the static frequencies, print the crescendo, and show what each
// fused metric (EDP / ED2P / ED3P) and the performance-constrained
// minimum-energy rule would choose.
//
//   ./external_selection [code] [scale] [max-slowdown%]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/npb.hpp"
#include "campaign/sweeps.hpp"
#include "core/runner.hpp"
#include "core/strategies.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const std::string code = argc > 1 ? argv[1] : "CG";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;
  const double max_slowdown = (argc > 3 ? std::atof(argv[3]) : 5.0) / 100.0;

  auto workload = apps::npb_by_name(code, scale);
  if (!workload) {
    std::fprintf(stderr, "unknown workload '%s'\n", code.c_str());
    return 1;
  }

  std::printf("profiling %s as a black box across static frequencies...\n\n",
              workload->name.c_str());
  auto sweep = campaign::sweep_static(*workload, core::RunConfig{});
  const auto crescendo = sweep.normalized();

  std::printf("%-10s %-12s %-12s %-8s %-8s %-8s\n", "freq", "norm delay",
              "norm energy", "EDP", "ED2P", "ED3P");
  for (const auto& [freq, ed] : crescendo) {
    std::printf("%-10d %-12.3f %-12.3f %-8.3f %-8.3f %-8.3f\n", freq, ed.delay,
                ed.energy, core::fused_value(core::Metric::EDP, ed),
                core::fused_value(core::Metric::ED2P, ed),
                core::fused_value(core::Metric::ED3P, ed));
  }

  std::printf("\nselections:\n");
  for (auto metric : {core::Metric::EDP, core::Metric::ED2P, core::Metric::ED3P}) {
    const auto choice = core::select_operating_point(crescendo, metric);
    std::printf("  %-5s -> %4d MHz (delay %.2f, energy %.2f)\n",
                core::to_string(metric), choice.freq_mhz, choice.at.delay,
                choice.at.energy);
  }
  const auto constrained = core::select_delay_constrained(crescendo, max_slowdown);
  if (constrained) {
    std::printf("  min-energy within %.0f%% slowdown -> %4d MHz "
                "(delay %.2f, energy %.2f)\n",
                100 * max_slowdown, constrained->freq_mhz, constrained->at.delay,
                constrained->at.energy);
  } else {
    std::printf("  no operating point satisfies a %.0f%% slowdown bound\n",
                100 * max_slowdown);
  }
  return 0;
}
