// Fault injection and resilient DVS: three scenarios on a CG run.
//
//   1. The DVS driver wedges on every node mid-run.  The per-node watchdog
//      notices that requested and actual frequency diverge, restarts
//      nothing (the hardware is stuck, not the daemon), and degrades
//      gracefully to full speed: the paper's performance constraint
//      survives, only the energy saving is lost.
//   2. A node crashes with no checkpointing armed.  The MPI progress
//      watchdog turns the hang into a structured failure instead of an
//      infinite simulation.
//   3. The same crash with coordinated checkpoint/restart: the node
//      reboots, redoes the work since the last checkpoint, and the run
//      completes.
//
//   ./fault_injection_demo [scale]   (default 0.15)
#include <cstdio>
#include <cstdlib>

#include "analysis/report.hpp"
#include "apps/npb.hpp"
#include "core/runner.hpp"

using namespace pcd;

namespace {

void print_outcome(const char* label, const core::RunResult& r,
                   const core::RunResult& baseline) {
  std::printf("%-28s delay %7.3f s (%+5.1f%% vs no-DVS)   energy %8.1f J%s\n",
              label, r.delay_s, 100.0 * (r.delay_s / baseline.delay_s - 1.0),
              r.energy_j, r.failed ? "   ** FAILED **" : "");
  if (r.failed) std::printf("  failure: %s\n", r.failure.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.15;
  const auto workload = apps::make_cg(scale);

  const auto baseline =
      core::run_workload(workload, core::RunConfigBuilder().build());
  print_outcome("no DVS", baseline, baseline);

  core::CpuspeedParams daemon_params;
  daemon_params.interval_s = 0.2;
  const auto daemon_cfg = core::RunConfigBuilder().daemon(daemon_params).build();
  const auto healthy = core::run_workload(workload, daemon_cfg);
  print_outcome("CPUSPEED daemon, healthy", healthy, baseline);

  // -- Scenario 1: every DVS driver wedges for 1 s at t = 0.3 s ------------
  fault::FaultPlan stuck_plan;
  for (int n = 0; n < workload.ranks; ++n) {
    stuck_plan.events.push_back(fault::stuck_dvs(0.3, n, 1.0));
  }
  const auto unguarded = core::run_workload(
      workload, core::RunConfigBuilder(daemon_cfg).faults(stuck_plan).build());
  print_outcome("stuck DVS, no watchdog", unguarded, baseline);

  fault::FaultPlan guarded_plan = stuck_plan;
  guarded_plan.resilience.watchdog = true;
  guarded_plan.resilience.watchdog_params.check_interval_s = 0.25;
  guarded_plan.resilience.watchdog_params.stuck_checks_before_fallback = 2;
  telemetry::TelemetryOptions watchdog_telemetry;
  watchdog_telemetry.enabled = true;
  const auto guarded = core::run_workload(workload,
                                          core::RunConfigBuilder(daemon_cfg)
                                              .faults(guarded_plan)
                                              .telemetry(watchdog_telemetry)
                                              .build());
  print_outcome("stuck DVS + watchdog", guarded, baseline);
  if (guarded.fault_report) {
    std::printf("\n%s\n", guarded.fault_report->summary().c_str());
  }

  // -- Scenario 2: node 0 crashes, nothing armed ---------------------------
  fault::FaultPlan crash_plan;
  crash_plan.events.push_back(fault::node_crash(0.6, 0));
  crash_plan.resilience.mpi_timeout_s = 5;
  const auto lost = core::run_workload(
      workload, core::RunConfigBuilder(daemon_cfg).faults(crash_plan).build());
  print_outcome("node crash, no C/R", lost, baseline);

  // -- Scenario 3: same crash with checkpoint/restart ----------------------
  fault::FaultPlan ckpt_plan = crash_plan;
  ckpt_plan.events.back() = fault::node_crash(0.6, 0, /*boot_delay_s=*/0.5);
  ckpt_plan.resilience.checkpoint_interval_s = 0.5;
  ckpt_plan.resilience.checkpoint_cost_s = 0.05;
  const auto survived = core::run_workload(
      workload, core::RunConfigBuilder(daemon_cfg).faults(ckpt_plan).build());
  print_outcome("node crash + checkpoint/restart", survived, baseline);
  if (survived.fault_report) {
    std::printf("\n%s\n", survived.fault_report->summary().c_str());
  }
  return (guarded.failed || survived.failed || !lost.failed) ? 1 : 0;
}
