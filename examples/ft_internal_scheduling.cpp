// The paper's FT walkthrough (§5.3.1), end to end:
//   1. profile FT with the MPE-style tracer and draw the four observations,
//   2. derive the internal schedule (low speed around the all-to-all),
//   3. verify against EXTERNAL and CPUSPEED.
#include <cstdio>

#include "apps/npb.hpp"
#include "core/runner.hpp"
#include "core/strategies.hpp"
#include "trace/profile.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  auto ft = apps::make_ft(scale);

  // --- step 1: performance profiling (Figure 9) ---
  std::printf("step 1: profiling %s\n", ft.name.c_str());
  const auto trace_cfg = core::RunConfigBuilder().collect_trace().build();
  const auto profiled = core::run_workload(ft, trace_cfg);
  const auto& p = *profiled.profile;
  std::printf("  comm:comp = %.2f:1, imbalance %.1f%%, iteration %.2f s\n",
              p.comm_to_comp(), 100 * p.imbalance(), p.mean_iteration_s);
  std::printf("  -> communication-bound, balanced, long phases: scale the CPU\n"
              "     down for the all-to-all, back up for compute (Figure 10).\n\n");

  // --- step 2+3: internal schedule vs alternatives ---
  const double base_delay = profiled.delay_s;
  const double base_energy = profiled.energy_j;

  auto report = [&](const char* label, const core::RunResult& r) {
    std::printf("  %-24s delay %.2f energy %.2f (normalized)\n", label,
                r.delay_s / base_delay, r.energy_j / base_energy);
  };

  std::printf("step 2: internal scheduling (set_cpuspeed 600 around mpi_alltoall)\n");
  const auto internal_cfg = core::RunConfigBuilder()
                                .hooks(core::internal_phase_hooks(1400, 600))
                                .build();
  report("internal 1400/600", core::run_workload(ft, internal_cfg));

  std::printf("\nstep 3: compare against the other strategies\n");
  report("external 600 MHz",
         core::run_workload(ft, core::RunConfigBuilder().static_mhz(600).build()));
  const auto daemon_cfg =
      core::RunConfigBuilder().daemon(core::CpuspeedParams::v1_2_1()).build();
  report("cpuspeed daemon", core::run_workload(ft, daemon_cfg));

  std::printf("\npaper: internal saves 36%% with no noticeable delay; external@600 "
              "saves 38%% but costs 13%% delay; cpuspeed saves 24%% at 4%%.\n");
  return 0;
}
