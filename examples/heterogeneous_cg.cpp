// Heterogeneous per-rank DVS from trace asymmetry (the paper's CG study,
// §5.3.2): profile per-rank comm/comp ratios, derive per-rank speeds, and
// check the result against homogeneous EXTERNAL settings.
#include <cstdio>
#include <cstdlib>

#include "apps/npb.hpp"
#include "core/runner.hpp"
#include "core/strategies.hpp"
#include "trace/profile.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  auto cg = apps::make_cg(scale);

  // Profile: which ranks have slack (high comm-to-comp ratio)?
  core::RunConfig trace_cfg;
  trace_cfg.collect_trace = true;
  const auto profiled = core::run_workload(cg, trace_cfg);
  const auto& p = *profiled.profile;
  std::printf("per-rank comm/comp ratios:\n");
  for (std::size_t r = 0; r < p.ranks.size(); ++r) {
    std::printf("  rank %zu: %.2f%s\n", r, p.ranks[r].comm_to_comp(),
                p.ranks[r].comm_to_comp() > 1.0 ? "  <- apparent slack" : "");
  }

  // Automatic selection from the profile (footnote 6 made systematic).
  const auto auto_speeds = core::select_per_rank_speeds(
      p, cpu::OperatingPointTable::pentium_m_1400());
  std::printf("\nautomatic per-rank selection from slack:");
  for (std::size_t r = 0; r < auto_speeds.size(); ++r) {
    std::printf(" r%zu=%d", r, auto_speeds[r]);
  }
  std::printf("\n");

  // Figure 13's decision: high speed for ranks 0-3, low for 4-7.
  auto run_hetero = [&](int high, int low) {
    core::RunConfig cfg;
    cfg.hooks = core::internal_rank_speed_hooks(
        [high, low](int rank) { return rank <= 3 ? high : low; });
    return core::run_workload(cg, cfg);
  };

  const double bd = profiled.delay_s, be = profiled.energy_j;
  std::printf("\nnormalized results (vs no-DVS):\n");
  auto report = [&](const char* label, const core::RunResult& r) {
    std::printf("  %-24s delay %.2f energy %.2f\n", label, r.delay_s / bd,
                r.energy_j / be);
  };
  report("internal I  (1200/800)", run_hetero(1200, 800));
  report("internal II (1000/800)", run_hetero(1000, 800));
  {
    core::RunConfig cfg;
    cfg.hooks = core::internal_rank_speed_hooks(
        [auto_speeds](int rank) { return auto_speeds[rank]; });
    report("auto per-rank", core::run_workload(cg, cfg));
  }
  core::RunConfig ext;
  ext.static_mhz = 800;
  report("external 800 (homog.)", core::run_workload(cg, ext));

  std::printf("\nthe paper's negative result, reproduced: the apparent slack on "
              "ranks 4-7 is not exploitable — CG synchronizes every cycle, so "
              "slowing them stalls everyone, and heterogeneous speeds do not "
              "beat a homogeneous external setting.\n");
  return 0;
}
