// Heterogeneous per-rank DVS from trace asymmetry (the paper's CG study,
// §5.3.2): profile per-rank comm/comp ratios, derive per-rank speeds, and
// check the result against homogeneous EXTERNAL settings.
//
// The comparison runs are one experiment campaign: CG x a "schedule"
// strategy axis (two Figure-13 splits, the auto-derived per-rank speeds,
// and a homogeneous external setting).
#include <cstdio>
#include <cstdlib>

#include "apps/npb.hpp"
#include "campaign/runner.hpp"
#include "core/runner.hpp"
#include "core/strategies.hpp"
#include "trace/profile.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  auto cg = apps::make_cg(scale);

  // Profile: which ranks have slack (high comm-to-comp ratio)?
  const core::RunConfig trace_cfg =
      core::RunConfigBuilder().collect_trace(true).build();
  const auto profiled = core::run_workload(cg, trace_cfg);
  const auto& p = *profiled.profile;
  std::printf("per-rank comm/comp ratios:\n");
  for (std::size_t r = 0; r < p.ranks.size(); ++r) {
    std::printf("  rank %zu: %.2f%s\n", r, p.ranks[r].comm_to_comp(),
                p.ranks[r].comm_to_comp() > 1.0 ? "  <- apparent slack" : "");
  }

  // Automatic selection from the profile (footnote 6 made systematic).
  const auto auto_speeds = core::select_per_rank_speeds(
      p, cpu::OperatingPointTable::pentium_m_1400());
  std::printf("\nautomatic per-rank selection from slack:");
  for (std::size_t r = 0; r < auto_speeds.size(); ++r) {
    std::printf(" r%zu=%d", r, auto_speeds[r]);
  }
  std::printf("\n");

  // Figure 13's decision: high speed for ranks 0-3, low for 4-7.
  auto hetero = [](int high, int low) {
    return [high, low](core::RunConfig& c) {
      c.hooks = core::internal_rank_speed_hooks(
          [high, low](int rank) { return rank <= 3 ? high : low; });
    };
  };
  campaign::ExperimentSpec spec;
  spec.workload(cg)
      .axis(campaign::Axis::strategies(
          "schedule",
          {{"internal I  (1200/800)", hetero(1200, 800)},
           {"internal II (1000/800)", hetero(1000, 800)},
           {"auto per-rank",
            [auto_speeds](core::RunConfig& c) {
              c.hooks = core::internal_rank_speed_hooks(
                  [auto_speeds](int rank) { return auto_speeds[rank]; });
            }},
           {"external 800 (homog.)",
            [](core::RunConfig& c) { c.static_mhz = 800; }}}));
  const auto result = campaign::run_campaign(spec);

  const double bd = profiled.delay_s, be = profiled.energy_j;
  std::printf("\nnormalized results (vs no-DVS):\n");
  for (const auto& cell : result.cells) {
    std::printf("  %-24s delay %.2f energy %.2f\n", cell.labels.front().c_str(),
                cell.result.delay_s / bd, cell.result.energy_j / be);
  }

  std::printf("\nthe paper's negative result, reproduced: the apparent slack on "
              "ranks 4-7 is not exploitable — CG synchronizes every cycle, so "
              "slowing them stalls everyone, and heterogeneous speeds do not "
              "beat a homogeneous external setting.\n");
  return 0;
}
