// PowerPack measurement walkthrough: the paper's §4.2 ACPI battery
// protocol and the Baytech cross-check, applied to one measured FT run.
#include <cstdio>
#include <cstdlib>

#include "apps/npb.hpp"
#include "core/runner.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  auto ft = apps::make_ft(scale);

  std::printf("measurement protocol (paper section 4.2):\n"
              "  1. fully charge all batteries\n"
              "  2. disconnect building power via the Baytech strip\n"
              "  3. discharge ~5 minutes for stable readings\n"
              "  4. run the application, difference the reported capacities\n\n");

  const auto cfg = core::RunConfigBuilder().use_meters().build();
  const auto r = core::run_workload(ft, cfg);

  std::printf("%s: %.1f s\n", ft.name.c_str(), r.delay_s);
  std::printf("  exact integrator : %8.0f J\n", r.energy_j);
  std::printf("  ACPI batteries   : %8.0f J  (%+.1f%% — 15-20 s refresh, 1 mWh "
              "quanta)\n",
              r.energy_acpi_j, 100 * (r.energy_acpi_j - r.energy_j) / r.energy_j);
  std::printf("  Baytech estimate : %8.0f J  (%+.1f%% — per-minute averages)\n",
              r.energy_baytech_j,
              100 * (r.energy_baytech_j - r.energy_j) / r.energy_j);
  std::printf("\nthe two independent instruments agree within a few percent for "
              "minutes-long runs — the redundancy the paper used to validate "
              "its ACPI numbers.\n");
  return 0;
}
