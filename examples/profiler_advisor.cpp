// The profiler-advisor loop, end to end, on both paper case studies:
//   1. run the workload once with energy attribution on (RunConfig::profile),
//   2. print the attribution / critical-path / schedule report,
//   3. apply the advisor's schedule through core::hooks_for and re-run,
//   4. compare measured energy/delay against the advisor's predictions and
//      against the paper's hand-written INTERNAL insertion.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/advisor_report.hpp"
#include "apps/npb.hpp"
#include "core/runner.hpp"
#include "core/strategies.hpp"

using namespace pcd;

namespace {

void advise_and_verify(const apps::Workload& workload,
                       const apps::DvsHooks& paper_hooks, const char* paper_label,
                       const char* csv_path) {
  std::printf("==== %s ====\n", workload.name.c_str());

  // Step 1: one profiled run at full speed.
  const auto profile_cfg = core::RunConfigBuilder().profile().build();
  const auto baseline = core::run_workload(workload, profile_cfg);
  const auto& prof = *baseline.profiler;

  // Step 2: derive and report.
  const auto schedule = profiler::advise(prof);
  std::fputs(analysis::advisor_report_text(prof, schedule).c_str(), stdout);
  if (csv_path != nullptr) {
    if (FILE* f = std::fopen(csv_path, "w")) {
      const std::string csv = analysis::advisor_report_csv(prof, schedule);
      std::fwrite(csv.data(), 1, csv.size(), f);
      std::fclose(f);
      std::printf("(csv written to %s)\n", csv_path);
    }
  }

  // Step 3: execute the derived schedule.
  const auto advised_cfg =
      core::RunConfigBuilder().hooks(core::hooks_for(schedule)).build();
  const auto advised = core::run_workload(workload, advised_cfg);

  // Step 4: predictions and the paper's hand insertion.
  const auto paper_cfg = core::RunConfigBuilder().hooks(paper_hooks).build();
  const auto hand = core::run_workload(workload, paper_cfg);

  std::printf("\n%-28s %10s %10s\n", "", "delay", "energy");
  std::printf("%-28s %10.4f %10.1f\n", "baseline (profiled run)", baseline.delay_s,
              baseline.energy_j);
  std::printf("%-28s %10.4f %10.1f  (factors %.4f / %.4f)\n", "advisor schedule",
              advised.delay_s, advised.energy_j, advised.delay_s / baseline.delay_s,
              advised.energy_j / baseline.energy_j);
  std::printf("%-28s %10.4f %10.4f\n", "advisor predicted factors",
              schedule.predicted_delay_factor, schedule.predicted_energy_factor);
  std::printf("%-28s %10.4f %10.1f  (factors %.4f / %.4f)\n", paper_label,
              hand.delay_s, hand.energy_j, hand.delay_s / baseline.delay_s,
              hand.energy_j / baseline.energy_j);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  // Optional: prefix for machine-readable CSV reports ("<prefix>_ft.csv",
  // "<prefix>_cg.csv") — used by CI to archive the advisor's output.
  const std::string prefix = argc > 2 ? argv[2] : "";
  const std::string ft_csv = prefix.empty() ? "" : prefix + "_ft.csv";
  const std::string cg_csv = prefix.empty() ? "" : prefix + "_cg.csv";

  // FT (§5.3): the advisor should find the dominant MPI_Alltoall phase and
  // re-derive the paper's Figure-10 insertion (1400 high / 600 low).
  advise_and_verify(apps::make_ft(scale), core::internal_phase_hooks(1400, 600),
                    "paper internal 1400/600",
                    ft_csv.empty() ? nullptr : ft_csv.c_str());

  // CG (§5.4): the advisor should find the rank asymmetry and assign the
  // lower (busier) ranks a higher speed than the upper ones.
  advise_and_verify(apps::make_cg(scale),
                    core::internal_rank_speed_hooks(
                        [](int rank) { return rank < 4 ? 1200 : 800; }),
                    "paper internal I 1200/800",
                    cg_csv.empty() ? nullptr : cg_csv.c_str());
  return 0;
}
