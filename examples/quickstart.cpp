// Quickstart: build a power-aware cluster, run a workload under the three
// DVS strategies, and print measured delay/energy.
//
//   ./quickstart [code] [scale]
//
// `code` is an NPB name (FT, CG, EP, IS, LU, MG, BT, SP) or "swim";
// default FT at scale 0.5.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/npb.hpp"
#include "core/runner.hpp"
#include "core/strategies.hpp"

using namespace pcd;

int main(int argc, char** argv) {
  const std::string code = argc > 1 ? argv[1] : "FT";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

  auto workload = apps::npb_by_name(code, scale);
  if (!workload) {
    std::fprintf(stderr, "unknown workload '%s'\n", code.c_str());
    return 1;
  }
  std::printf("workload %s (%d ranks): %s\n\n", workload->name.c_str(),
              workload->ranks, workload->description.c_str());

  auto report = [](const char* label, const core::RunResult& r) {
    std::printf("%-22s delay %7.2f s   energy %9.0f J   util %4.2f   "
                "transitions %5lld   collisions %lld\n",
                label, r.delay_s, r.energy_j, r.mean_utilization,
                static_cast<long long>(r.dvs_transitions),
                static_cast<long long>(r.net_collisions));
  };

  // Baseline: no DVS (all nodes at the highest frequency).
  const auto baseline =
      core::run_workload(*workload, core::RunConfigBuilder().build());
  report("baseline (1400 MHz)", baseline);

  // EXTERNAL: a single static frequency on every node.
  for (int mhz : {1200, 1000, 800, 600}) {
    char label[32];
    std::snprintf(label, sizeof label, "external (%d MHz)", mhz);
    report(label, core::run_workload(
                      *workload, core::RunConfigBuilder().static_mhz(mhz).build()));
  }

  // CPUSPEED daemon.
  const auto auto_cfg =
      core::RunConfigBuilder().daemon(core::CpuspeedParams::v1_2_1()).build();
  report("cpuspeed 1.2.1 (auto)", core::run_workload(*workload, auto_cfg));

  // INTERNAL: phase-based scheduling (the paper's FT recipe).
  const auto internal_cfg = core::RunConfigBuilder()
                                .hooks(core::internal_phase_hooks(1400, 600))
                                .build();
  report("internal (1400/600)", core::run_workload(*workload, internal_cfg));

  std::printf("\nNormalize against the baseline row to compare with the paper's "
              "tables (energy < 1.0 = savings).\n");
  return 0;
}
