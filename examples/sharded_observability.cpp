// Sharded observability demo: one run with the full observation stack —
// telemetry, faults, energy-attribution profiling, digests — executed on a
// sharded engine, exporting both the merged (shard-free) views and the
// per-shard provenance views.
//
// The workload is compute-only with identical work on every rank, so the
// simulation is bit-identical at every shard count and the merged exports
// can be diffed byte-for-byte against a --shards 1 run (CI does exactly
// that under sanitizers).  Usage:
//
//   sharded_observability [--shards N] [--prom FILE] [--prom-sharded FILE]
//                         [--trace FILE] [--trace-sharded FILE]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "apps/workload.hpp"
#include "core/runner.hpp"
#include "fault/plan.hpp"
#include "telemetry/export.hpp"

using namespace pcd;

namespace {

sim::Process comp_rank(apps::AppContext& ctx, int rank, int steps) {
  ctx.call(ctx.hooks ? ctx.hooks->at_start : nullptr, rank);
  for (int s = 0; s < steps; ++s) {
    if (ctx.tracer != nullptr) ctx.tracer->mark_iteration(rank);
    co_await apps::compute_phase(ctx, rank, /*onchip_s=*/0.06, /*mem_s=*/0.03);
  }
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "sharded_observability: cannot write '%s'\n",
                 path.c_str());
    return false;
  }
  f << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int shards = 4;
  std::string prom, prom_sharded, trace, trace_sharded;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (std::strcmp(argv[i], "--shards") == 0) shards = std::atoi(next());
    else if (std::strcmp(argv[i], "--prom") == 0) prom = next();
    else if (std::strcmp(argv[i], "--prom-sharded") == 0) prom_sharded = next();
    else if (std::strcmp(argv[i], "--trace") == 0) trace = next();
    else if (std::strcmp(argv[i], "--trace-sharded") == 0) trace_sharded = next();
    else {
      std::fprintf(stderr, "usage: sharded_observability [--shards N] "
                           "[--prom F] [--prom-sharded F] [--trace F] "
                           "[--trace-sharded F]\n");
      return 2;
    }
  }

  apps::Workload app;
  app.name = "comp.8";
  app.ranks = 8;
  app.iterations = 20;
  app.description = "compute-only demo app (bit-identical at any shard count)";
  app.make_rank = [](apps::AppContext& ctx, int rank) {
    return comp_rank(ctx, rank, 20);
  };

  core::RunConfig cfg;
  cfg.shards = shards;
  cfg.static_mhz = 600;
  // Pin the DVS transition stall — it is drawn from the node RNG, and shard
  // clusters seed nodes per shard, so an interval would make transition
  // timestamps shard-count-dependent.
  cfg.cluster.node.cpu.transition_min = sim::from_micros(20.0);
  cfg.cluster.node.cpu.transition_max = sim::from_micros(20.0);
  cfg.telemetry.enabled = true;
  cfg.profile = true;
  cfg.determinism.digest = true;
  cfg.faults.events.push_back(fault::stuck_dvs(1.0, 5, 2.0));
  cfg.faults.events.push_back(
      fault::sensor_dropout(1.5, -1, fault::SensorMode::Stale, 1.0));

  const auto result = core::run_workload(app, cfg);
  std::printf("%s @ %d shard%s: delay %.3f s, energy %.1f J, %lld events\n",
              app.name.c_str(), shards, shards == 1 ? "" : "s", result.delay_s,
              result.energy_j, static_cast<long long>(result.events));
  if (result.fault_report.has_value()) {
    std::fputs(result.fault_report->summary().c_str(), stdout);
  }
  if (!result.telemetry.has_value()) return 1;
  const auto& snap = *result.telemetry;
  if (!prom.empty() && !write_file(prom, telemetry::to_prometheus(snap.metrics)))
    return 1;
  if (!prom_sharded.empty() &&
      !write_file(prom_sharded, telemetry::to_prometheus_sharded(snap)))
    return 1;
  if (!trace.empty() && !write_file(trace, snap.chrome_trace_json)) return 1;
  if (!trace_sharded.empty() &&
      !write_file(trace_sharded, snap.chrome_trace_sharded_json))
    return 1;
  return result.failed ? 1 : 0;
}
