// End-to-end tour of the telemetry subsystem: run an NPB code under the
// CPUSPEED daemon with the metrics registry, DVS decision log, and
// time-series sampler enabled, print the rendered run summary, and write
// the exporter outputs next to the binary:
//
//   trace.json       Chrome trace-event JSON — open in https://ui.perfetto.dev
//                    or chrome://tracing (rank scopes, DVS instants, power)
//   metrics.prom     Prometheus text exposition of the registry
//   power_series.csv per-node sampled power / frequency / utilization
//   decisions.csv    the DVS decision log with cause attribution
//
//   ./telemetry_demo [code] [scale]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "analysis/report.hpp"
#include "apps/npb.hpp"
#include "core/runner.hpp"
#include "telemetry/export.hpp"

using namespace pcd;

namespace {

void write_file(const char* path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  std::printf("  wrote %-18s (%zu bytes)\n", path, content.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string code = argc > 1 ? argv[1] : "FT";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

  auto workload = apps::npb_by_name(code, scale);
  if (!workload) {
    std::fprintf(stderr, "unknown workload '%s'\n", code.c_str());
    return 1;
  }

  telemetry::TelemetryOptions topts;
  topts.enabled = true;            // registry + decision log + transitions
  topts.sampler.period_s = 0.050;  // Figure-1-style power sampling
  const auto cfg = core::RunConfigBuilder()
                       .daemon(core::CpuspeedParams::v1_2_1())
                       .collect_trace()  // rank scopes in the Chrome trace
                       .telemetry(topts)
                       .build();

  const auto result = core::run_workload(*workload, cfg);
  std::fputs(analysis::render_run_summary(result).c_str(), stdout);

  const auto& snap = *result.telemetry;
  std::printf("\nexports:\n");
  write_file("trace.json", snap.chrome_trace_json);
  write_file("metrics.prom", telemetry::to_prometheus(snap.metrics));
  write_file("power_series.csv", telemetry::series_csv(snap));
  write_file("decisions.csv", telemetry::decisions_csv(snap));
  std::printf(
      "\nload trace.json in Perfetto: rank timelines under 'ranks', DVS\n"
      "transitions and power counters under 'nodes'.\n");
  return 0;
}
