#include "analysis/advisor_report.hpp"

#include <algorithm>
#include <cstdio>

#include "analysis/report.hpp"
#include "trace/profile.hpp"

namespace pcd::analysis {

namespace {

std::string fmt_int(long long v) { return std::to_string(v); }

}  // namespace

std::string advisor_report_text(const profiler::ProfileResult& prof,
                                const profiler::InternalSchedule& schedule,
                                std::size_t top_labels) {
  const auto& run = prof.run;
  const auto& attr = prof.attribution;
  const auto& slack = prof.slack;
  std::string out;

  out += heading("profile");
  char line[256];
  std::snprintf(line, sizeof line,
                "ranks=%d  profiled at %d MHz  makespan=%.4f s  "
                "measured delay=%.4f s  measured energy=%.1f J "
                "(scoped %.1f J, %.1f%%)\n",
                run.ranks(), run.profile_mhz, run.makespan_s(),
                run.measured_delay_s, run.measured_energy_j, attr.scoped_j,
                run.measured_energy_j > 0
                    ? 100.0 * attr.scoped_j / run.measured_energy_j
                    : 0.0);
  out += line;

  out += heading("energy attribution (per rank)");
  TextTable ranks({"rank", "scoped(s)", "energy(J)", "cycles(G)", "wait+coll(J)",
                   "critical(s)", "elastic(s)"});
  for (std::size_t r = 0; r < attr.ranks.size(); ++r) {
    const auto& ra = attr.ranks[r];
    const double idle_j = ra.at(trace::Cat::Wait).joules +
                          ra.at(trace::Cat::Collective).joules;
    ranks.add_row({fmt_int(static_cast<long long>(r)), fmt(ra.seconds, 3),
                   fmt(ra.joules, 1), fmt(ra.cycles / 1e9, 2), fmt(idle_j, 1),
                   fmt(slack.rank_critical_s[r], 3), fmt(slack.rank_elastic_s[r], 3)});
  }
  out += ranks.str();

  out += heading("energy attribution (top labels)");
  TextTable labels({"label", "cat", "count", "seconds", "energy(J)", "cpu(J)",
                    "cycles(G)", "max-rank(s)"});
  for (std::size_t i = 0; i < std::min(top_labels, attr.labels.size()); ++i) {
    const auto& l = attr.labels[i];
    labels.add_row({l.label.empty() ? "(unlabeled)" : l.label,
                    trace::to_string(l.cat), fmt_int(l.count), fmt(l.seconds, 3),
                    fmt(l.joules, 1), fmt(l.cpu_joules, 1), fmt(l.cycles / 1e9, 2),
                    fmt(l.max_rank_seconds, 3)});
  }
  out += labels.str();

  out += heading("critical path");
  std::snprintf(line, sizeof line, "critical seconds by category (eps=%.2g s):\n",
                slack.critical_eps_s);
  out += line;
  for (std::size_t c = 0; c < slack.critical_by_cat_s.size(); ++c) {
    if (slack.critical_by_cat_s[c] <= 0) continue;
    std::snprintf(line, sizeof line, "  %-10s %10.4f s\n",
                  trace::to_string(static_cast<trace::Cat>(c)),
                  slack.critical_by_cat_s[c]);
    out += line;
  }

  out += heading("derived schedule");
  std::snprintf(line, sizeof line, "mode=%s", profiler::to_string(schedule.mode));
  out += line;
  switch (schedule.mode) {
    case profiler::InternalSchedule::Mode::Phase:
      std::snprintf(line, sizeof line, "  high=%d MHz  low=%d MHz  around \"%s\"",
                    schedule.high_mhz, schedule.low_mhz,
                    schedule.phase_label.c_str());
      out += line;
      break;
    case profiler::InternalSchedule::Mode::PerRank:
      out += "  rank speeds (MHz):";
      for (int mhz : schedule.rank_mhz) out += ' ' + std::to_string(mhz);
      break;
    case profiler::InternalSchedule::Mode::None:
      out += "  (no exploitable slack; run unchanged)";
      break;
  }
  out += '\n';
  std::snprintf(line, sizeof line,
                "predicted delay factor=%.4f  predicted energy factor=%.4f\n",
                schedule.predicted_delay_factor, schedule.predicted_energy_factor);
  out += line;
  if (!schedule.rationale.empty()) {
    out += heading("rationale");
    out += schedule.rationale;
    if (out.back() != '\n') out += '\n';
  }
  return out;
}

std::string advisor_report_csv(const profiler::ProfileResult& prof,
                               const profiler::InternalSchedule& schedule) {
  const auto& attr = prof.attribution;
  const auto& slack = prof.slack;
  std::string out = "section,key,seconds,energy_j,cpu_energy_j,cycles,count\n";
  char line[256];
  for (std::size_t r = 0; r < attr.ranks.size(); ++r) {
    const auto& ra = attr.ranks[r];
    std::snprintf(line, sizeof line, "rank,%zu,%.6f,%.6f,,%.0f,\n", r, ra.seconds,
                  ra.joules, ra.cycles);
    out += line;
    std::snprintf(line, sizeof line, "rank_slack,%zu,%.6f,,,,\n", r,
                  slack.rank_elastic_s[r]);
    out += line;
    std::snprintf(line, sizeof line, "rank_critical,%zu,%.6f,,,,\n", r,
                  slack.rank_critical_s[r]);
    out += line;
  }
  for (const auto& l : attr.labels) {
    std::snprintf(line, sizeof line, "label,%s,%.6f,%.6f,%.6f,%.0f,%d\n",
                  l.label.empty() ? "(unlabeled)" : l.label.c_str(), l.seconds,
                  l.joules, l.cpu_joules, l.cycles, l.count);
    out += line;
  }
  out += "schedule,mode=";
  out += profiler::to_string(schedule.mode);
  out += ",,,,,\n";
  if (schedule.mode == profiler::InternalSchedule::Mode::Phase) {
    std::snprintf(line, sizeof line, "schedule,high_mhz=%d,,,,,\n", schedule.high_mhz);
    out += line;
    std::snprintf(line, sizeof line, "schedule,low_mhz=%d,,,,,\n", schedule.low_mhz);
    out += line;
    out += "schedule,phase_label=" + schedule.phase_label + ",,,,,\n";
  }
  for (std::size_t r = 0; r < schedule.rank_mhz.size(); ++r) {
    std::snprintf(line, sizeof line, "schedule,rank%zu_mhz=%d,,,,,\n", r,
                  schedule.rank_mhz[r]);
    out += line;
  }
  std::snprintf(line, sizeof line, "schedule,predicted_delay_factor=%.6f,,,,,\n",
                schedule.predicted_delay_factor);
  out += line;
  std::snprintf(line, sizeof line, "schedule,predicted_energy_factor=%.6f,,,,,\n",
                schedule.predicted_energy_factor);
  out += line;
  return out;
}

}  // namespace pcd::analysis
