// Renders the profiler's attribution / critical-path / advisor output as
// the text report an operator reads and the CSV a plotting script ingests.
#pragma once

#include <string>

#include "profiler/profiler.hpp"

namespace pcd::analysis {

/// Full advisor report: per-rank energy attribution, top labels by energy,
/// critical-path and slack summary, the derived schedule with its
/// rationale, and predicted energy/delay factors vs. the measured profile
/// run.  `top_labels` caps the label table.
std::string advisor_report_text(const profiler::ProfileResult& prof,
                                const profiler::InternalSchedule& schedule,
                                std::size_t top_labels = 10);

/// Machine-readable companion: one `section,key,...` row per fact, covering
/// rank attribution, label attribution, slack, and the schedule.
std::string advisor_report_csv(const profiler::ProfileResult& prof,
                               const profiler::InternalSchedule& schedule);

}  // namespace pcd::analysis
