#include "analysis/crescendo.hpp"

#include <stdexcept>

namespace pcd::analysis {

CrescendoType classify_crescendo(const core::Crescendo& crescendo) {
  if (crescendo.size() < 2) throw std::invalid_argument("crescendo needs >= 2 points");
  // The lowest frequency shows the asymptotic behaviour most clearly.
  const auto& low = crescendo.begin()->second;
  const double delay_increase = low.delay - 1.0;
  const double energy_saving = 1.0 - low.energy;

  if (energy_saving < 0.05) return CrescendoType::I;
  if (delay_increase < 0.08 && energy_saving > 0.15) return CrescendoType::IV;
  // Rate comparison: II when delay rises at least as fast as energy falls.
  if (delay_increase >= 0.8 * energy_saving) return CrescendoType::II;
  return CrescendoType::III;
}

}  // namespace pcd::analysis
