// Energy-delay crescendo classification (paper §5.2, Figure 8).
#pragma once

#include "analysis/reference.hpp"
#include "core/metrics.hpp"

namespace pcd::analysis {

/// Classifies a normalized crescendo into the paper's four types using the
/// behaviour at the lowest operating point:
///   Type I:   near-zero energy benefit, linear performance decrease;
///   Type II:  energy reduction and delay increase at about the same rate;
///   Type III: energy falls faster than delay rises;
///   Type IV:  near-zero performance decrease, linear energy saving.
CrescendoType classify_crescendo(const core::Crescendo& crescendo);

}  // namespace pcd::analysis
