#include "analysis/reference.hpp"

namespace pcd::analysis {

namespace {

Table2Row row(std::string code, core::EnergyDelay auto_col,
              std::initializer_list<std::pair<int, core::EnergyDelay>> cols,
              bool energy_known = true) {
  Table2Row r;
  r.code = std::move(code);
  r.auto_daemon = auto_col;
  for (const auto& [f, ed] : cols) r.at[f] = ed;
  r.energy_known = energy_known;
  return r;
}

// {energy, delay} — note EnergyDelay stores energy first.
std::vector<Table2Row> build_table2() {
  return {
      row("BT.C.9", {0.89, 1.36},
          {{600, {0.79, 1.52}}, {800, {0.82, 1.27}}, {1000, {0.87, 1.14}},
           {1200, {0.96, 1.05}}, {1400, {1.00, 1.00}}}),
      row("CG.C.8", {0.65, 1.14},
          {{600, {0.65, 1.14}}, {800, {0.72, 1.08}}, {1000, {0.80, 1.04}},
           {1200, {0.93, 1.02}}, {1400, {1.00, 1.00}}}),
      row("EP.C.8", {0.97, 1.01},
          {{600, {1.15, 2.35}}, {800, {1.03, 1.75}}, {1000, {1.02, 1.40}},
           {1200, {1.03, 1.17}}, {1400, {1.00, 1.00}}}),
      row("FT.C.8", {0.76, 1.04},
          {{600, {0.62, 1.13}}, {800, {0.70, 1.07}}, {1000, {0.80, 1.04}},
           {1200, {0.93, 1.02}}, {1400, {1.00, 1.00}}}),
      row("IS.C.8", {0.75, 1.02},
          {{600, {0.68, 1.04}}, {800, {0.73, 1.01}}, {1000, {0.75, 0.91}},
           {1200, {0.94, 1.03}}, {1400, {1.00, 1.00}}}),
      row("LU.C.8", {0.96, 1.01},
          {{600, {0.79, 1.58}}, {800, {0.82, 1.32}}, {1000, {0.88, 1.18}},
           {1200, {0.95, 1.07}}, {1400, {1.00, 1.00}}}),
      row("MG.C.8", {0.87, 1.32},
          {{600, {0.76, 1.39}}, {800, {0.79, 1.21}}, {1000, {0.85, 1.10}},
           {1200, {0.97, 1.04}}, {1400, {1.00, 1.00}}}),
      // SP's energy values are not printed in the paper's truncated table;
      // delays are.  Energy entries carry the delay-only flag.
      row("SP.C.9", {0.0, 1.13},
          {{600, {0.0, 1.18}}, {800, {0.0, 1.08}}, {1000, {0.0, 1.03}},
           {1200, {0.0, 0.99}}, {1400, {0.0, 1.00}}},
          /*energy_known=*/false),
  };
}

}  // namespace

const std::vector<Table2Row>& table2() {
  static const std::vector<Table2Row> t = build_table2();
  return t;
}

const Table2Row* table2_row(const std::string& code) {
  for (const auto& r : table2()) {
    if (r.code.rfind(code, 0) == 0 || code.rfind(r.code.substr(0, 2), 0) == 0) {
      if (r.code.substr(0, 2) == code.substr(0, 2)) return &r;
    }
  }
  return nullptr;
}

const std::vector<InternalRef>& figure11_ft() {
  // §5.3.1: INTERNAL (1400/600) saves 36% with no noticeable delay;
  // EXTERNAL 600 saves 38% at 13% delay; CPUSPEED saves 24% at 4% delay.
  static const std::vector<InternalRef> v = {
      {"internal(1400/600)", {0.64, 1.00}},
      {"external(600)", {0.62, 1.13}},
      {"cpuspeed(auto)", {0.76, 1.04}},
  };
  return v;
}

const std::vector<InternalRef>& figure14_cg() {
  // §5.3.2: internal I (1200/800) saves 23% at 8% delay; internal II
  // (1000/800) saves 16% at 8% delay; external 800 is 0.72/1.08.
  static const std::vector<InternalRef> v = {
      {"internal-I(1200/800)", {0.77, 1.08}},
      {"internal-II(1000/800)", {0.84, 1.08}},
      {"external(800)", {0.72, 1.08}},
      {"cpuspeed(auto)", {0.65, 1.14}},
  };
  return v;
}

const char* to_string(CrescendoType t) {
  switch (t) {
    case CrescendoType::I: return "I";
    case CrescendoType::II: return "II";
    case CrescendoType::III: return "III";
    case CrescendoType::IV: return "IV";
  }
  return "?";
}

const std::map<std::string, CrescendoType>& figure8_types() {
  static const std::map<std::string, CrescendoType> m = {
      {"EP", CrescendoType::I},  {"BT", CrescendoType::II},
      {"MG", CrescendoType::II}, {"LU", CrescendoType::II},
      {"FT", CrescendoType::III}, {"CG", CrescendoType::III},
      {"SP", CrescendoType::III}, {"IS", CrescendoType::IV},
  };
  return m;
}

}  // namespace pcd::analysis
