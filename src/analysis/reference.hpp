// The paper's published numbers, embedded for side-by-side comparison in
// every bench (EXPERIMENTS.md is generated from these plus our measurements).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics.hpp"

namespace pcd::analysis {

/// One row of the paper's Table 2: normalized delay/energy per CPU speed,
/// plus the CPUSPEED ("auto") column.  SP's energy values are not printed
/// in the paper ("Only partial results are shown"), so they are absent.
struct Table2Row {
  std::string code;                       // e.g. "FT.C.8"
  core::EnergyDelay auto_daemon;          // CPUSPEED 1.2.1
  std::map<int, core::EnergyDelay> at;    // 600..1400 MHz
  bool energy_known = true;
};

/// All eight NPB rows of Table 2.
const std::vector<Table2Row>& table2();

/// Lookup by code prefix ("FT", "FT.C.8"); nullptr if unknown.
const Table2Row* table2_row(const std::string& code);

/// Figure 11 (FT) and Figure 14 (CG) INTERNAL-scheduling reference points.
struct InternalRef {
  std::string label;
  core::EnergyDelay value;
};
const std::vector<InternalRef>& figure11_ft();
const std::vector<InternalRef>& figure14_cg();

/// §5.2's four crescendo categories, per code.
enum class CrescendoType { I, II, III, IV };
const char* to_string(CrescendoType t);
const std::map<std::string, CrescendoType>& figure8_types();

}  // namespace pcd::analysis
