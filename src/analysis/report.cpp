#include "analysis/report.hpp"

#include <algorithm>
#include <cstdio>

namespace pcd::analysis {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      line += (i == 0 ? "| " : " | ");
      line += cells[i];
      line.append(width[i] - cells[i].size(), ' ');
    }
    line += " |\n";
    return line;
  };
  std::string rule = "|";
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    rule.append(width[i] + 2, '-');
    rule += "|";
  }
  rule += "\n";
  std::string out = emit_row(headers_) + rule;
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string vs_paper(double measured, double paper, int precision) {
  if (paper <= 0) return fmt(measured, precision) + " (paper n/a)";
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f (paper %.*f, d=%+.*f)", precision, measured,
                precision, paper, precision, measured - paper);
  return buf;
}

std::string heading(const std::string& title) {
  std::string out = "\n== " + title + " ==\n";
  out += std::string(out.size() - 2, '-') + "\n";
  return out;
}

std::string render_run_summary(const core::RunResult& result,
                               std::size_t max_decisions) {
  std::string out = heading("run summary: " + result.workload);
  char line[160];
  std::snprintf(line, sizeof line,
                "delay %.3f s   energy %.1f J   mean util %.2f   "
                "dvs transitions %lld   collisions %lld   messages %lld\n",
                result.delay_s, result.energy_j, result.mean_utilization,
                static_cast<long long>(result.dvs_transitions),
                static_cast<long long>(result.net_collisions),
                static_cast<long long>(result.messages));
  out += line;

  if (result.failed) {
    out += "RUN FAILED: " + result.failure + "\n";
  }
  if (result.fault_report.has_value()) {
    out += heading("faults and resilience");
    out += result.fault_report->summary();
  }

  if (result.telemetry.has_value()) {
    const auto& t = *result.telemetry;

    out += heading("top metrics");
    TextTable metrics({"metric", "labels", "value"});
    for (const auto& s : t.metrics) {
      std::string labels;
      for (const auto& [k, v] : s.labels) {
        if (!labels.empty()) labels += ' ';
        labels += k + "=" + v;
      }
      metrics.add_row({s.name, labels, fmt(s.value, 2)});
    }
    out += metrics.str();

    if (max_decisions > 0 && !t.decisions.empty()) {
      out += heading("dvs decisions");
      TextTable dvs({"t (s)", "node", "mhz", "cause", "util", "detail"});
      std::size_t shown = 0;
      for (const auto& d : t.decisions) {
        if (shown++ >= max_decisions) break;
        char mhz[32];
        std::snprintf(mhz, sizeof mhz, "%d->%d", d.from_mhz, d.to_mhz);
        dvs.add_row({fmt(pcd::sim::to_seconds(d.t), 3), std::to_string(d.node), mhz,
                     pcd::telemetry::to_string(d.cause),
                     d.has_utilization() ? fmt(d.utilization, 3) : "-", d.detail});
      }
      out += dvs.str();
      if (t.decisions.size() > max_decisions) {
        std::snprintf(line, sizeof line, "(%zu more decisions not shown)\n",
                      t.decisions.size() - max_decisions);
        out += line;
      }
    }
  }

  if (result.profile.has_value()) {
    out += heading("per-rank comm/compute balance");
    TextTable balance({"rank", "comp (s)", "comm (s)", "comm/comp"});
    for (std::size_t r = 0; r < result.profile->ranks.size(); ++r) {
      const auto& rp = result.profile->ranks[r];
      balance.add_row({std::to_string(r), fmt(rp.comp_s(), 3), fmt(rp.comm_s(), 3),
                       fmt(rp.comm_to_comp(), 2)});
    }
    out += balance.str();
    std::snprintf(line, sizeof line, "imbalance %.3f   comm/comp overall %.2f\n",
                  result.profile->imbalance(), result.profile->comm_to_comp());
    out += line;
  }
  return out;
}

}  // namespace pcd::analysis
