#include "analysis/report.hpp"

#include <algorithm>
#include <cstdio>

namespace pcd::analysis {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      line += (i == 0 ? "| " : " | ");
      line += cells[i];
      line.append(width[i] - cells[i].size(), ' ');
    }
    line += " |\n";
    return line;
  };
  std::string rule = "|";
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    rule.append(width[i] + 2, '-');
    rule += "|";
  }
  rule += "\n";
  std::string out = emit_row(headers_) + rule;
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string vs_paper(double measured, double paper, int precision) {
  if (paper <= 0) return fmt(measured, precision) + " (paper n/a)";
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f (paper %.*f, d=%+.*f)", precision, measured,
                precision, paper, precision, measured - paper);
  return buf;
}

std::string heading(const std::string& title) {
  std::string out = "\n== " + title + " ==\n";
  out += std::string(out.size() - 2, '-') + "\n";
  return out;
}

}  // namespace pcd::analysis
