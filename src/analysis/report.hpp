// Text-report helpers shared by the bench binaries: fixed-width tables and
// paper-vs-measured comparison formatting.
#pragma once

#include <string>
#include <vector>

#include "core/runner.hpp"

namespace pcd::analysis {

/// Simple fixed-width ASCII table builder.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision ("1.04").
std::string fmt(double v, int precision = 2);

/// "measured (paper Δ=+0.03)" comparison cell; paper < 0 means unknown.
std::string vs_paper(double measured, double paper, int precision = 2);

/// Section header with a rule, used by every bench for consistent output.
std::string heading(const std::string& title);

/// Human-readable run summary: headline delay/energy numbers, then — when
/// the run carried telemetry — the top registry metrics, the DVS decision
/// table (time, node, transition, cause, triggering utilization), and the
/// per-rank comm/compute balance from the trace profile.
/// `max_decisions` caps the transition table (0 = omit it).
std::string render_run_summary(const core::RunResult& result,
                               std::size_t max_decisions = 20);

}  // namespace pcd::analysis
