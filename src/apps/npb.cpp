// NPB replica implementations and their calibration constants.
//
// Calibration (DESIGN.md §4): Table 2's delay rows fit
//     D(f)/D(1400) = 1 + w_cpu * (1400/f - 1)
// to within ~2%, which pins each code's on-chip (frequency-sensitive)
// fraction w_cpu.  The split of the remaining time between memory stalls
// and communication is set from the paper's trace observations (FT §5.3.1,
// CG §5.3.2) and from each code's published characteristics; the energy
// rows then emerge from the power model.
//
// Base-time budget at 1400 MHz is ~60 s per code at scale 1.0 (the paper
// runs for minutes so that ACPI polling is accurate; our exact integrator
// does not need that, and the dedicated ACPI bench studies the error).
#include "apps/npb.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>

namespace pcd::apps {

namespace {

// Tag space for the replicas' explicit point-to-point messages.
constexpr int kTagExchangeA = 101;
constexpr int kTagExchangeB = 102;
constexpr int kTagSweep = 110;

// ---- FT: communication-bound, all-to-all transposes ------------------------
//
// Figure 9 observations: comm:comp ~ 2:1, dominated by alltoall, long
// iterations, balanced ranks.  w_cpu = 0.0975 (delay(600) = 1.13).
// Per iteration at 1400: on-chip 0.2925 s, memory 0.7275 s, alltoall wire
// ~1.98 s (7 pairwise rounds of 3.54 MB at 12.5 MB/s).

struct FtSpec {
  int ranks = 8;
  int iterations = 20;
  double onchip_s = 0.2925;
  double mem_s = 0.7275;
  double alltoall_mb = 3.54;
};

sim::Process ft_rank(AppContext& ctx, FtSpec spec, double scale, int rank) {
  auto& comm = *ctx.comm;
  ctx.call(ctx.hooks ? ctx.hooks->at_start : nullptr, rank);
  const int iters = std::max(2, static_cast<int>(std::lround(spec.iterations * scale)));
  for (int it = 0; it < iters; ++it) {
    if (ctx.tracer) ctx.tracer->mark_iteration(rank);
    co_await compute_phase(ctx, rank, spec.onchip_s, spec.mem_s);
    // The paper's Figure 10 insertion points: set_cpuspeed(low) before the
    // all-to-all, set_cpuspeed(high) after.
    ctx.call(ctx.hooks ? ctx.hooks->before_marked_comm : nullptr, rank);
    ctx.call(ctx.hooks ? ctx.hooks->before_any_comm : nullptr, rank);
    co_await comm.alltoall(rank, static_cast<std::int64_t>(spec.alltoall_mb * 1e6));
    ctx.call(ctx.hooks ? ctx.hooks->after_any_comm : nullptr, rank);
    ctx.call(ctx.hooks ? ctx.hooks->after_marked_comm : nullptr, rank);
  }
  co_await comm.allreduce(rank, 64);  // final checksum
}

// ---- CG: frequent synchronization, per-rank asymmetry ------------------------
//
// Figure 12 observations: Wait and Send are the major events, cycles are
// short (transition overhead non-negligible), ranks 4-7 have a larger
// comm-to-comp ratio than ranks 0-3.  w_cpu = 0.105.
//
// Inner cycle (all ranks): on-chip 3.5 ms + base memory 6 ms, exchange with
// the partner rank (i <-> i+P/2), ranks 0..P/2-1 do 13 ms of extra
// memory-bound matrix work while the upper ranks wait in recv, exchange
// back, small allreduce.  Slowing the upper ranks delays their sends and
// stalls the lower ranks (tight bidirectional dependency), so — as the
// paper measured — heterogeneous scheduling buys no free slack.

struct CgSpec {
  int ranks = 8;
  int cycles = 1800;
  double onchip_s = 0.0035;
  double mem_base_s = 0.006;
  double mem_extra_s = 0.013;  // lower half only
  double exchange_kb = 64.0;
};

sim::Process cg_rank(AppContext& ctx, CgSpec spec, double scale, int rank) {
  auto& comm = *ctx.comm;
  const int half = spec.ranks / 2;
  const int partner = rank < half ? rank + half : rank - half;
  const bool lower = rank < half;
  ctx.call(ctx.hooks ? ctx.hooks->at_start : nullptr, rank);
  const int cycles = std::max(1, static_cast<int>(std::lround(spec.cycles * scale)));
  const auto bytes = static_cast<std::int64_t>(spec.exchange_kb * 1024);

  auto exchange = [&](int tag) -> sim::Op<> {
    ctx.call(ctx.hooks ? ctx.hooks->before_any_comm : nullptr, rank);
    auto rr = comm.irecv(rank, partner, tag);
    auto sr = comm.isend(rank, partner, tag, bytes);
    ctx.call(ctx.hooks ? ctx.hooks->before_wait : nullptr, rank);
    std::vector<mpi::Comm::Request> reqs;
    reqs.push_back(std::move(sr));
    reqs.push_back(std::move(rr));
    co_await comm.waitall(rank, std::move(reqs));
    ctx.call(ctx.hooks ? ctx.hooks->after_wait : nullptr, rank);
    ctx.call(ctx.hooks ? ctx.hooks->after_any_comm : nullptr, rank);
  };

  for (int it = 0; it < cycles; ++it) {
    if (ctx.tracer && it % 24 == 0) ctx.tracer->mark_iteration(rank);
    co_await compute_phase(ctx, rank, spec.onchip_s, spec.mem_base_s);
    co_await exchange(kTagExchangeA);
    if (lower) {
      co_await compute_phase(ctx, rank, 0.0, spec.mem_extra_s);
    }
    co_await exchange(kTagExchangeB);
    co_await comm.allreduce(rank, 16);  // rho
  }
}

// ---- EP: embarrassingly parallel -------------------------------------------
//
// Type I crescendo: pure on-chip work, near-linear slowdown, no energy
// benefit from DVS.  w_cpu = 1.0.

struct EpSpec {
  int ranks = 8;
  int iterations = 16;
  double onchip_s = 3.64;
  double mem_s = 0.11;
};

sim::Process ep_rank(AppContext& ctx, EpSpec spec, double scale, int rank) {
  auto& comm = *ctx.comm;
  ctx.call(ctx.hooks ? ctx.hooks->at_start : nullptr, rank);
  const int iters = std::max(2, static_cast<int>(std::lround(spec.iterations * scale)));
  for (int it = 0; it < iters; ++it) {
    if (ctx.tracer) ctx.tracer->mark_iteration(rank);
    co_await compute_phase(ctx, rank, spec.onchip_s, spec.mem_s);
  }
  for (int i = 0; i < 3; ++i) co_await comm.allreduce(rank, 64);  // sx, sy, counts
}

// ---- IS: bursty all-to-all-v, collision-prone --------------------------------
//
// Type IV crescendo: near-flat delay, linear energy saving; the paper's
// anomaly (fastest run *below* peak frequency) comes from the collision/
// backoff model firing on IS's bursts of large key exchanges.

struct IsSpec {
  int ranks = 8;
  int iterations = 10;
  double onchip_s = 1.35;   // key counting/ranking is branchy integer work
  double mem_s = 0.25;
  int chunks = 24;
  double chunk_kb = 333.0;  // per-pair per chunk: above collision_min_bytes
};

sim::Process is_rank(AppContext& ctx, IsSpec spec, double scale, int rank) {
  auto& comm = *ctx.comm;
  ctx.call(ctx.hooks ? ctx.hooks->at_start : nullptr, rank);
  const auto chunk_bytes = static_cast<std::int64_t>(spec.chunk_kb * 1024);
  std::vector<std::int64_t> sizes(spec.ranks, chunk_bytes);
  sizes[rank] = 0;
  const int iters = std::max(2, static_cast<int>(std::lround(spec.iterations * scale)));
  for (int it = 0; it < iters; ++it) {
    if (ctx.tracer) ctx.tracer->mark_iteration(rank);
    co_await compute_phase(ctx, rank, spec.onchip_s, spec.mem_s);
    co_await comm.allreduce(rank, 1024);  // bucket size exchange
    ctx.call(ctx.hooks ? ctx.hooks->before_marked_comm : nullptr, rank);
    for (int c = 0; c < spec.chunks; ++c) {
      // Key redistribution: all sends posted at once (burst) — the
      // collision-prone traffic shape behind the paper's IS anomaly.
      co_await comm.alltoallv_burst(rank, sizes);
    }
    ctx.call(ctx.hooks ? ctx.hooks->after_marked_comm : nullptr, rank);
  }
}

// ---- LU: wavefront sweeps, frequent small messages ---------------------------
//
// Type II: compute-heavy (w_cpu = 0.435); the daemon sees high utilization
// and keeps full speed (auto ~ 1.01/0.96 in Table 2).

struct LuSpec {
  int ranks = 8;
  int iterations = 250;
  double onchip_s = 0.1044;
  double mem_s = 0.115;
  double sweep_kb = 45.0;
};

sim::Process lu_rank(AppContext& ctx, LuSpec spec, double scale, int rank) {
  // The 2-D wavefront keeps every rank busy almost all the time: each
  // sub-iteration computes a block, then exchanges thin pencils with both
  // ring neighbours (nonblocking, overlapped), so the CPUSPEED daemon sees
  // near-full utilization — which is why the paper's LU "auto" column is
  // equivalent to no DVS.
  auto& comm = *ctx.comm;
  const int p = spec.ranks;
  const int next = (rank + 1) % p;
  const int prev = (rank - 1 + p) % p;
  const auto bytes = static_cast<std::int64_t>(spec.sweep_kb * 1024);
  ctx.call(ctx.hooks ? ctx.hooks->at_start : nullptr, rank);
  const int iters = std::max(1, static_cast<int>(std::lround(spec.iterations * scale)));
  for (int it = 0; it < iters; ++it) {
    if (ctx.tracer && it % 5 == 0) ctx.tracer->mark_iteration(rank);
    for (int sweep = 0; sweep < 2; ++sweep) {  // lower then upper triangular
      const int tag = kTagSweep + sweep;
      const int to = sweep == 0 ? next : prev;
      const int from = sweep == 0 ? prev : next;
      auto rr = comm.irecv(rank, from, tag);
      auto sr = comm.isend(rank, to, tag, bytes);
      // LU's "memory" time is pointer-chasing cache misses: the core stays
      // nearly fully active (hence LU's near-EP power profile in Table 2).
      co_await compute_phase(ctx, rank, spec.onchip_s / 2, spec.mem_s / 2, 0.95);
      std::vector<mpi::Comm::Request> reqs;
      reqs.push_back(std::move(sr));
      reqs.push_back(std::move(rr));
      co_await comm.waitall(rank, std::move(reqs));
    }
  }
  co_await comm.allreduce(rank, 64);
}

// ---- MG: multigrid V-cycle, memory heavy -------------------------------------
//
// Type II; blended utilization sits below the daemon's up-threshold, which
// is why CPUSPEED drags MG to low speed (auto 1.32/0.87).  w_cpu = 0.2925.

struct MgSpec {
  int ranks = 8;
  int iterations = 50;
  double onchip_s = 0.351;
  double mem_s = 0.432;
  double top_level_mb = 2.0;  // halved per level, exchanged up+down the cycle
  int levels = 6;
};

sim::Process mg_rank(AppContext& ctx, MgSpec spec, double scale, int rank) {
  auto& comm = *ctx.comm;
  const int p = spec.ranks;
  const int partner = rank ^ 1;  // nearest-neighbour halo partner
  ctx.call(ctx.hooks ? ctx.hooks->at_start : nullptr, rank);
  const int iters = std::max(1, static_cast<int>(std::lround(spec.iterations * scale)));
  for (int it = 0; it < iters; ++it) {
    if (ctx.tracer) ctx.tracer->mark_iteration(rank);
    // Down-cycle: restrict; up-cycle: prolongate.  Compute is spread across
    // levels (coarse levels are cheap), halos shrink 4x per level.
    for (int pass = 0; pass < 2; ++pass) {
      double level_mb = spec.top_level_mb;
      double level_onchip = spec.onchip_s / 2 * 0.75;
      double level_mem = spec.mem_s / 2 * 0.75;
      for (int l = 0; l < spec.levels; ++l) {
        co_await compute_phase(ctx, rank, level_onchip, level_mem);
        if (p > 1) {
          ctx.call(ctx.hooks ? ctx.hooks->before_any_comm : nullptr, rank);
          auto rr = comm.irecv(rank, partner, kTagExchangeA + l);
          auto sr = comm.isend(rank, partner, kTagExchangeA + l,
                               static_cast<std::int64_t>(level_mb * 1e6));
          std::vector<mpi::Comm::Request> reqs;
          reqs.push_back(std::move(sr));
          reqs.push_back(std::move(rr));
          co_await comm.waitall(rank, std::move(reqs));
          ctx.call(ctx.hooks ? ctx.hooks->after_any_comm : nullptr, rank);
        }
        level_mb /= 4.0;
        level_onchip /= 3.0;
        level_mem /= 3.0;
      }
    }
    co_await comm.allreduce(rank, 64);  // residual norm
  }
}

// ---- BT / SP: 9-rank pseudo-applications -------------------------------------
//
// Ring face-exchanges per directional sweep.  BT (w_cpu = 0.39) is Type II;
// SP (w_cpu = 0.135) is Type III with mild collision sensitivity (its
// Table 2 row shows delay 0.99 at 1200 MHz).

struct SweepSpec {
  int ranks = 9;
  int iterations = 60;
  double onchip_s = 0.39;
  double mem_s = 0.33;
  double face_kb = 583.0;  // per exchange; 6 exchanges per iteration
  int chunks_per_face = 1; // SP chunks its faces into collision-prone bursts
};

sim::Process sweep_rank(AppContext& ctx, SweepSpec spec, double scale, int rank) {
  auto& comm = *ctx.comm;
  const int p = spec.ranks;
  const int next = (rank + 1) % p;
  const int prev = (rank - 1 + p) % p;
  ctx.call(ctx.hooks ? ctx.hooks->at_start : nullptr, rank);
  const int iters = std::max(2, static_cast<int>(std::lround(spec.iterations * scale)));
  const auto chunk_bytes =
      static_cast<std::int64_t>(spec.face_kb * 1024 / spec.chunks_per_face);
  for (int it = 0; it < iters; ++it) {
    if (ctx.tracer && it % 2 == 0) ctx.tracer->mark_iteration(rank);
    for (int dir = 0; dir < 3; ++dir) {  // x, y, z sweeps
      co_await compute_phase(ctx, rank, spec.onchip_s / 3, spec.mem_s / 3);
      for (int side = 0; side < 2; ++side) {
        const int to = side == 0 ? next : prev;
        const int from = side == 0 ? prev : next;
        ctx.call(ctx.hooks ? ctx.hooks->before_any_comm : nullptr, rank);
        for (int c = 0; c < spec.chunks_per_face; ++c) {
          const int tag = kTagExchangeA + dir * 8 + side * 4 + (c % 4);
          auto rr = comm.irecv(rank, from, tag);
          auto sr = comm.isend(rank, to, tag, chunk_bytes);
          std::vector<mpi::Comm::Request> reqs;
          reqs.push_back(std::move(sr));
          reqs.push_back(std::move(rr));
          co_await comm.waitall(rank, std::move(reqs));
        }
        ctx.call(ctx.hooks ? ctx.hooks->after_any_comm : nullptr, rank);
      }
    }
  }
  co_await comm.allreduce(rank, 64);
}

// ---- swim / microbenchmarks ---------------------------------------------------

sim::Process swim_rank(AppContext& ctx, int iterations, double onchip_s, double mem_s,
                       double mem_act, int rank) {
  for (int it = 0; it < iterations; ++it) {
    if (ctx.tracer) ctx.tracer->mark_iteration(rank);
    co_await compute_phase(ctx, rank, onchip_s, mem_s, mem_act);
  }
}

sim::Process pingpong_rank(AppContext& ctx, int iterations, std::int64_t bytes,
                           int rank) {
  auto& comm = *ctx.comm;
  for (int it = 0; it < iterations; ++it) {
    if (ctx.tracer) ctx.tracer->mark_iteration(rank);
    if (rank == 0) {
      co_await comm.send(0, 1, kTagExchangeA, bytes);
      co_await comm.recv(0, 1, kTagExchangeB);
    } else {
      co_await comm.recv(1, 0, kTagExchangeA);
      co_await comm.send(1, 0, kTagExchangeB, bytes);
    }
  }
}

}  // namespace

// ---- factories ---------------------------------------------------------------

Workload make_ft(double scale) {
  FtSpec spec;
  Workload w;
  w.name = "FT.C.8";
  w.ranks = spec.ranks;
  w.iterations = spec.iterations;
  w.description = "3-D FFT: alltoall transposes, comm:comp ~ 2:1, balanced";
  w.make_rank = [spec, scale](AppContext& ctx, int rank) {
    return ft_rank(ctx, spec, scale, rank);
  };
  return w;
}

Workload make_cg(double scale) {
  CgSpec spec;
  Workload w;
  w.name = "CG.C.8";
  w.ranks = spec.ranks;
  w.iterations = spec.cycles;
  w.description = "conjugate gradient: short cycles, Wait/Send dominant, rank asymmetry";
  w.make_rank = [spec, scale](AppContext& ctx, int rank) {
    return cg_rank(ctx, spec, scale, rank);
  };
  return w;
}

Workload make_ep(double scale) {
  EpSpec spec;
  Workload w;
  w.name = "EP.C.8";
  w.ranks = spec.ranks;
  w.iterations = spec.iterations;
  w.description = "embarrassingly parallel: pure on-chip compute";
  w.make_rank = [spec, scale](AppContext& ctx, int rank) {
    return ep_rank(ctx, spec, scale, rank);
  };
  return w;
}

Workload make_is(double scale) {
  IsSpec spec;
  Workload w;
  w.name = "IS.C.8";
  w.ranks = spec.ranks;
  w.iterations = spec.iterations;
  w.description = "integer sort: bursty key redistribution (collision-prone)";
  w.make_rank = [spec, scale](AppContext& ctx, int rank) {
    return is_rank(ctx, spec, scale, rank);
  };
  return w;
}

Workload make_lu(double scale) {
  LuSpec spec;
  Workload w;
  w.name = "LU.C.8";
  w.ranks = spec.ranks;
  w.iterations = spec.iterations;
  w.description = "LU: pipelined wavefront sweeps, frequent small messages";
  w.make_rank = [spec, scale](AppContext& ctx, int rank) {
    return lu_rank(ctx, spec, scale, rank);
  };
  return w;
}

Workload make_mg(double scale) {
  MgSpec spec;
  Workload w;
  w.name = "MG.C.8";
  w.ranks = spec.ranks;
  w.iterations = spec.iterations;
  w.description = "multigrid V-cycle: memory-heavy with level halo exchanges";
  w.make_rank = [spec, scale](AppContext& ctx, int rank) {
    return mg_rank(ctx, spec, scale, rank);
  };
  return w;
}

Workload make_bt(double scale) {
  SweepSpec spec;  // BT defaults
  Workload w;
  w.name = "BT.C.9";
  w.ranks = spec.ranks;
  w.iterations = spec.iterations;
  w.description = "block-tridiagonal: directional sweeps with face exchanges";
  w.make_rank = [spec, scale](AppContext& ctx, int rank) {
    return sweep_rank(ctx, spec, scale, rank);
  };
  return w;
}

Workload make_sp(double scale) {
  SweepSpec spec;
  spec.iterations = 100;
  spec.onchip_s = 0.081;
  spec.mem_s = 0.18;
  spec.face_kb = 700.0;
  spec.chunks_per_face = 2;  // 350 KB bursts: above the collision threshold
  Workload w;
  w.name = "SP.C.9";
  w.ranks = spec.ranks;
  w.iterations = spec.iterations;
  w.description = "scalar-pentadiagonal: comm-heavier sweeps, mild collision sensitivity";
  w.make_rank = [spec, scale](AppContext& ctx, int rank) {
    return sweep_rank(ctx, spec, scale, rank);
  };
  return w;
}

Workload make_swim(double scale) {
  Workload w;
  w.name = "swim";
  w.ranks = 1;
  w.iterations = 60;
  w.description = "SPEC 2000 swim: single-node memory-bound (Figure 2)";
  const int iters = std::max(1, static_cast<int>(std::lround(60 * scale)));
  w.iterations = iters;
  w.make_rank = [iters](AppContext& ctx, int rank) {
    // swim's array sweeps keep the core fairly active between misses.
    return swim_rank(ctx, iters, 0.19, 0.81, /*mem_act=*/0.55, rank);
  };
  return w;
}

Workload make_micro_cpu_bound(double scale) {
  Workload w;
  w.name = "micro.cpu";
  w.ranks = 1;
  w.iterations = 30;
  w.description = "PowerPack microbenchmark: CPU-bound (register/L1 loop)";
  const int iters = std::max(1, static_cast<int>(std::lround(30 * scale)));
  w.iterations = iters;
  w.make_rank = [iters](AppContext& ctx, int rank) {
    return swim_rank(ctx, iters, 1.0, 0.0, -1, rank);
  };
  return w;
}

Workload make_micro_memory_bound(double scale) {
  Workload w;
  w.name = "micro.mem";
  w.ranks = 1;
  w.iterations = 30;
  w.description = "PowerPack microbenchmark: memory-bound (strided misses)";
  const int iters = std::max(1, static_cast<int>(std::lround(30 * scale)));
  w.iterations = iters;
  w.make_rank = [iters](AppContext& ctx, int rank) {
    return swim_rank(ctx, iters, 0.1, 0.9, -1, rank);
  };
  return w;
}

Workload make_micro_comm_bound(double scale) {
  Workload w;
  w.name = "micro.comm";
  w.ranks = 2;
  w.iterations = 100;
  w.description = "PowerPack microbenchmark: communication-bound (1 MB ping-pong)";
  const int iters = std::max(1, static_cast<int>(std::lround(100 * scale)));
  w.iterations = iters;
  w.make_rank = [iters](AppContext& ctx, int rank) {
    return pingpong_rank(ctx, iters, 1'000'000, rank);
  };
  return w;
}

std::vector<Workload> all_npb(double scale) {
  return {make_bt(scale), make_cg(scale), make_ep(scale), make_ft(scale),
          make_is(scale), make_lu(scale), make_mg(scale), make_sp(scale)};
}

std::optional<Workload> npb_by_name(const std::string& name, double scale) {
  std::string key;
  for (char c : name) {
    if (c == '.') break;
    key += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  if (key == "FT") return make_ft(scale);
  if (key == "CG") return make_cg(scale);
  if (key == "EP") return make_ep(scale);
  if (key == "IS") return make_is(scale);
  if (key == "LU") return make_lu(scale);
  if (key == "MG") return make_mg(scale);
  if (key == "BT") return make_bt(scale);
  if (key == "SP") return make_sp(scale);
  if (key == "SWIM") return make_swim(scale);
  return std::nullopt;
}

}  // namespace pcd::apps
