// Synthetic replicas of the NAS Parallel Benchmarks (class C, 8/9 ranks, as
// evaluated in the paper) plus swim and the PowerPack microbenchmarks.
//
// Each replica reproduces the code's phase structure — communication
// pattern, communication-to-computation ratio, memory-boundedness, per-rank
// asymmetry — calibrated so the simulated energy-delay profiles match the
// shape of the paper's Table 2 (see apps/npb.cpp for the calibration
// derivation and DESIGN.md §4 for the model).
//
// `scale` multiplies all phase durations and message volumes: 1.0 gives
// minutes-scale runs comparable to the paper's methodology; tests use
// smaller scales.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "apps/workload.hpp"

namespace pcd::apps {

Workload make_ft(double scale = 1.0);  // 3-D FFT: alltoall-dominated
Workload make_cg(double scale = 1.0);  // conjugate gradient: frequent sync, rank asymmetry
Workload make_ep(double scale = 1.0);  // embarrassingly parallel: pure on-chip
Workload make_is(double scale = 1.0);  // integer sort: bursty alltoallv (collision-prone)
Workload make_lu(double scale = 1.0);  // LU: wavefront, frequent small messages
Workload make_mg(double scale = 1.0);  // multigrid: memory-heavy, V-cycle exchanges
Workload make_bt(double scale = 1.0);  // block-tridiagonal (9 ranks)
Workload make_sp(double scale = 1.0);  // scalar-pentadiagonal (9 ranks)

/// swim from SPEC 2000: the single-node memory-bound code of Figures 1–2.
Workload make_swim(double scale = 1.0);

/// PowerPack microbenchmarks (paper §4.4).
Workload make_micro_cpu_bound(double scale = 1.0);
Workload make_micro_memory_bound(double scale = 1.0);
Workload make_micro_comm_bound(double scale = 1.0);

/// All eight NPB codes in the paper's canonical naming order.
std::vector<Workload> all_npb(double scale = 1.0);

/// Lookup by code name ("FT", "cg", "FT.C.8", ...); nullopt if unknown.
std::optional<Workload> npb_by_name(const std::string& name, double scale = 1.0);

}  // namespace pcd::apps
