#include "apps/workload.hpp"

#include <algorithm>
#include <cmath>

namespace pcd::apps {

sim::Op<> compute_phase(AppContext& ctx, int rank, double onchip_s, double mem_s,
                        double mem_act) {
  auto& cpu = ctx.comm->node(rank).cpu();
  const double total = onchip_s + mem_s;
  if (total <= 0) co_return;
  const int slices = std::max(1, static_cast<int>(std::lround(total / ctx.slice_s)));
  const double on_per = onchip_s / slices;
  const double mem_per = mem_s / slices;
  for (int i = 0; i < slices; ++i) {
    if (on_per > 0) {
      std::optional<trace::Tracer::Scope> sc;
      if (ctx.tracer) sc.emplace(ctx.tracer->scope(rank, trace::Cat::Compute));
      co_await cpu.run_onchip_seconds_at_max(on_per);
    }
    if (mem_per > 0) {
      std::optional<trace::Tracer::Scope> sc;
      if (ctx.tracer) sc.emplace(ctx.tracer->scope(rank, trace::Cat::MemStall));
      co_await cpu.run_memstall(sim::from_seconds(mem_per), mem_act);
    }
  }
}

}  // namespace pcd::apps
