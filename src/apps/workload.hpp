// Workload framework: applications as coroutine "phase programs".
//
// Each NPB replica (and swim, and the microbenchmarks) is a factory that
// builds one rank process.  Rank processes interleave:
//   - compute phases (on-chip cycles + memory stalls, sliced so utilization
//     sampling and power traces see realistic interleave),
//   - MPI communication with the paper's per-code patterns.
//
// INTERNAL scheduling (paper §3.3/§5.3) attaches through DvsHooks: the
// workload calls the hooks at the same source locations where the paper
// inserts set_cpuspeed() calls (Figures 10 and 13).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "sim/op.hpp"
#include "sim/process.hpp"
#include "trace/tracer.hpp"

namespace pcd::apps {

/// Hook points for INTERNAL DVS control, mirroring where API calls are
/// inserted in the paper's source listings.
struct DvsHooks {
  using Fn = std::function<void(mpi::CommBase&, int rank)>;
  /// Called once per rank at MPI_Init time (heterogeneous per-rank speeds,
  /// Figure 13).
  Fn at_start;
  /// Called around the dominant communication phase the profile identified
  /// (Figure 10: set_cpuspeed(low) before mpi_alltoall, high after).
  Fn before_marked_comm;
  Fn after_marked_comm;
  /// Called around *every* communication call — the first rejected CG
  /// policy (§5.3.2: "scale down CPU speed during communication").
  Fn before_any_comm;
  Fn after_any_comm;
  /// Called around every MPI_Wait — the second rejected CG policy.
  Fn before_wait;
  Fn after_wait;
};

/// Shared context handed to every rank process.
struct AppContext {
  mpi::CommBase* comm = nullptr;
  trace::Tracer* tracer = nullptr;
  const DvsHooks* hooks = nullptr;
  /// Compute phases are sliced into chunks of roughly this duration so the
  /// CPUSPEED daemon's utilization windows see the true busy/idle mix.
  double slice_s = 0.050;

  void call(const DvsHooks::Fn& fn, int rank) const {
    if (hooks != nullptr && fn) fn(*comm, rank);
  }
};

/// A runnable workload: name + rank count + rank-process factory.
struct Workload {
  std::string name;        // e.g. "FT.C.8"
  int ranks = 1;
  int iterations = 1;
  std::string description;
  std::function<sim::Process(AppContext&, int rank)> make_rank;
};

/// Executes a compute phase: `onchip_s` of on-chip work (expressed in
/// seconds at the node's top frequency) interleaved with `mem_s` of
/// frequency-insensitive memory stalls, sliced per ctx.slice_s.
/// `mem_act` overrides the power activity of the stalls (< 0 = default);
/// cache-miss-bound compute (LU) keeps the core nearly fully active while
/// streaming stalls (swim) do not.
sim::Op<> compute_phase(AppContext& ctx, int rank, double onchip_s, double mem_s,
                        double mem_act = -1);

}  // namespace pcd::apps
