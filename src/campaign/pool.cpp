#include "campaign/pool.hpp"

#include <algorithm>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace pcd::campaign {

int effective_threads(int threads, std::size_t items) {
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  if (items < static_cast<std::size_t>(threads)) threads = static_cast<int>(items);
  return std::max(threads, 1);
}

namespace {

struct WorkerQueue {
  std::mutex m;
  std::deque<std::size_t> q;

  bool pop_front(std::size_t* out) {
    std::lock_guard lock(m);
    if (q.empty()) return false;
    *out = q.front();
    q.pop_front();
    return true;
  }

  bool steal_back(std::size_t* out) {
    std::lock_guard lock(m);
    if (q.empty()) return false;
    *out = q.back();
    q.pop_back();
    return true;
  }
};

}  // namespace

void run_indexed(std::size_t items, int threads,
                 const std::function<void(std::size_t)>& fn) {
  if (items == 0) return;
  const int n = effective_threads(threads, items);
  if (n == 1) {
    for (std::size_t i = 0; i < items; ++i) fn(i);
    return;
  }

  // Deal contiguous blocks: worker w owns [w*items/n, (w+1)*items/n).
  std::vector<WorkerQueue> queues(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    const std::size_t lo = items * static_cast<std::size_t>(w) / n;
    const std::size_t hi = items * (static_cast<std::size_t>(w) + 1) / n;
    for (std::size_t i = lo; i < hi; ++i) queues[w].q.push_back(i);
  }

  std::mutex err_mutex;
  std::size_t first_err_item = std::numeric_limits<std::size_t>::max();
  std::exception_ptr first_err;

  auto worker = [&](int self) {
    std::size_t item;
    for (;;) {
      bool got = queues[self].pop_front(&item);
      for (int k = 1; !got && k < n; ++k) {
        got = queues[(self + k) % n].steal_back(&item);
      }
      if (!got) return;  // every deque empty: all items claimed
      try {
        fn(item);
      } catch (...) {
        std::lock_guard lock(err_mutex);
        if (item < first_err_item) {
          first_err_item = item;
          first_err = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> team;
  team.reserve(static_cast<std::size_t>(n) - 1);
  for (int w = 1; w < n; ++w) team.emplace_back(worker, w);
  worker(0);
  for (auto& t : team) t.join();
  if (first_err) std::rethrow_exception(first_err);
}

}  // namespace pcd::campaign
