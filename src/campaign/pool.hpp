// Work-stealing execution of an index space over a fixed thread team.
//
// Items are dealt to per-worker deques in contiguous blocks; each worker
// pops from the front of its own deque (cache-friendly, preserves locality
// of neighbouring cells) and, when empty, steals from the *back* of a
// victim's deque — so long-tailed items (a paper-scale FT run next to a
// 600 MHz EP run) rebalance instead of serializing the tail.
//
// The pool imposes no ordering: callers must make fn(i) independent and
// write results into slot i.  Exceptions escaping fn stop nothing — every
// item still runs — but the first one (by item index) is rethrown after
// the team joins.
#pragma once

#include <cstddef>
#include <functional>

namespace pcd::campaign {

/// Number of workers actually used for `threads` requested over `items`
/// (0 = hardware concurrency; never more workers than items, never < 1).
int effective_threads(int threads, std::size_t items);

/// Runs fn(0..items-1) across `threads` workers; blocks until all complete.
/// threads <= 1 (or a single item) degenerates to an inline loop on the
/// calling thread — the serial reference executions in tests/benches pay
/// no synchronization cost.
void run_indexed(std::size_t items, int threads,
                 const std::function<void(std::size_t)>& fn);

}  // namespace pcd::campaign
