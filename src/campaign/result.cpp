#include "campaign/result.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/report.hpp"
#include "sim/provenance.hpp"

namespace pcd::campaign {

namespace {

double median_of_sorted(const std::vector<double>& v, std::size_t lo, std::size_t hi) {
  // Median of the sorted half-open range [lo, hi).
  const std::size_t n = hi - lo;
  const std::size_t m = lo + n / 2;
  return n % 2 == 1 ? v[m] : 0.5 * (v[m - 1] + v[m]);
}

}  // namespace

Summary Summary::of(std::vector<double> values) {
  Summary s;
  s.n = static_cast<int>(values.size());
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  s.min = values.front();
  s.max = values.back();
  s.median = median_of_sorted(values, 0, n);
  // Tukey hinges: halves include the middle element for odd n.
  s.q1 = median_of_sorted(values, 0, n / 2 + n % 2);
  s.q3 = median_of_sorted(values, n / 2, n);
  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(n);
  return s;
}

CellResult aggregate_cell(std::vector<TrialRecord> trials) {
  CellResult cell;
  cell.runs = static_cast<int>(trials.size());

  std::vector<double> delays, energies;
  std::vector<std::size_t> ok;  // indices of trials that produced a result
  for (std::size_t t = 0; t < trials.size(); ++t) {
    const auto& rec = trials[t];
    if (rec.threw) {
      ++cell.failures;
      if (cell.thrown++ == 0) cell.first_exception = rec.error;
      if (std::find(cell.errors.begin(), cell.errors.end(), rec.error) ==
          cell.errors.end()) {
        cell.errors.push_back(rec.error);
      }
      continue;
    }
    if (rec.result.failed) {
      ++cell.failures;
      if (std::find(cell.errors.begin(), cell.errors.end(), rec.result.failure) ==
          cell.errors.end()) {
        cell.errors.push_back(rec.result.failure);
      }
    }
    ok.push_back(t);
    delays.push_back(rec.result.delay_s);
    energies.push_back(rec.result.energy_j);
  }

  cell.delay = Summary::of(delays);
  cell.energy = Summary::of(energies);

  // Digest drill-down: fold the trials' run-digest roots in trial order.
  // One trial without a digest poisons the cell (has_digest stays false)
  // rather than silently fingerprinting a partial set.
  if (!ok.empty()) {
    sim::DigestStream roots;
    bool all = true;
    for (std::size_t t : ok) {
      const auto& det = trials[t].result.determinism;
      if (!det.has_value()) {
        all = false;
        break;
      }
      roots.fold(det->digest.root());
    }
    if (all) {
      cell.digest_root = roots.hash;
      cell.has_digest = true;
    }
  }

  if (ok.empty()) {
    cell.result.failed = true;
    cell.result.failure = cell.errors.empty() ? "no trials completed" : cell.errors.front();
    return cell;
  }

  // Representative: closest delay to the delay median; ties broken by
  // closest energy to the energy median, then lowest trial index.  For odd
  // trial counts this is exactly the median-delay trial; for even counts it
  // is the nearer of the two middle trials — never an arbitrary front().
  std::size_t best = ok.front();
  double best_dd = std::abs(trials[best].result.delay_s - cell.delay.median);
  double best_de = std::abs(trials[best].result.energy_j - cell.energy.median);
  for (std::size_t t : ok) {
    const double dd = std::abs(trials[t].result.delay_s - cell.delay.median);
    const double de = std::abs(trials[t].result.energy_j - cell.energy.median);
    if (dd < best_dd || (dd == best_dd && de < best_de)) {
      best = t;
      best_dd = dd;
      best_de = de;
    }
  }
  cell.result = std::move(trials[best].result);
  cell.result.delay_s = cell.delay.median;
  cell.result.energy_j = cell.energy.median;
  return cell;
}

core::EnergyDelay CellResult::normalized_to(const CellResult& baseline) const {
  return core::EnergyDelay{energy.median / baseline.energy.median,
                           delay.median / baseline.delay.median};
}

const CellResult* CampaignResult::find(const std::string& workload,
                                       const std::vector<std::string>& labels) const {
  for (const auto& c : cells) {
    if (c.workload != workload) continue;
    if (!labels.empty() && c.labels != labels) continue;
    return &c;
  }
  return nullptr;
}

std::vector<const CellResult*> CampaignResult::select(const std::string& workload) const {
  std::vector<const CellResult*> out;
  for (const auto& c : cells) {
    if (c.workload == workload) out.push_back(&c);
  }
  return out;
}

std::string CampaignResult::table() const {
  std::vector<std::string> headers{"workload"};
  headers.insert(headers.end(), axis_names.begin(), axis_names.end());
  headers.insert(headers.end(), {"trials", "delay (s)", "energy (J)", "IQR delay",
                                 "failures"});
  analysis::TextTable t(headers);
  for (const auto& c : cells) {
    std::vector<std::string> row{c.workload};
    row.insert(row.end(), c.labels.begin(), c.labels.end());
    row.push_back(std::to_string(c.runs));
    row.push_back(analysis::fmt(c.delay.median, 3));
    row.push_back(analysis::fmt(c.energy.median, 1));
    row.push_back(analysis::fmt(c.delay.q1, 3) + ".." + analysis::fmt(c.delay.q3, 3));
    row.push_back(c.failures == 0 ? "-" : std::to_string(c.failures));
    t.add_row(row);
  }
  return t.str();
}

std::string CampaignResult::tsv() const {
  std::string out = "workload";
  for (const auto& a : axis_names) out += "\t" + a;
  out +=
      "\ttrials\tfailures\tdelay_median\tdelay_q1\tdelay_q3\tdelay_min\tdelay_max"
      "\tdelay_mean\tenergy_median\tenergy_q1\tenergy_q3\tenergy_min\tenergy_max"
      "\tenergy_mean\ttransitions\tcollisions\tmessages\tutilization\tfailed\terrors\n";
  char buf[64];
  auto hex = [&](double v) {
    std::snprintf(buf, sizeof buf, "\t%a", v);
    out += buf;
  };
  for (const auto& c : cells) {
    out += c.workload;
    for (const auto& l : c.labels) out += "\t" + l;
    out += "\t" + std::to_string(c.runs);
    out += "\t" + std::to_string(c.failures);
    for (double v : {c.delay.median, c.delay.q1, c.delay.q3, c.delay.min, c.delay.max,
                     c.delay.mean, c.energy.median, c.energy.q1, c.energy.q3,
                     c.energy.min, c.energy.max, c.energy.mean}) {
      hex(v);
    }
    out += "\t" + std::to_string(c.result.dvs_transitions);
    out += "\t" + std::to_string(c.result.net_collisions);
    out += "\t" + std::to_string(c.result.messages);
    hex(c.result.mean_utilization);
    out += c.result.failed ? "\t1" : "\t0";
    out += "\t";
    for (std::size_t i = 0; i < c.errors.size(); ++i) {
      if (i > 0) out += " | ";
      out += c.errors[i];
    }
    out += "\n";
  }
  return out;
}

std::uint64_t CampaignResult::fingerprint() const {
  bool all_digests = !cells.empty();
  for (const auto& c : cells) {
    if (!c.has_digest) {
      all_digests = false;
      break;
    }
  }
  if (all_digests) {
    sim::DigestStream h;
    for (const auto& c : cells) h.fold(c.digest_root);
    return h.hash;
  }
  const std::string s = tsv();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char ch : s) {
    h ^= ch;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace pcd::campaign
