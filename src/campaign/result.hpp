// Campaign results: one aggregated cell per point of the run matrix.
//
// Trials stream into their cell as they finish (on whatever worker thread
// ran them) and are reduced to summary statistics plus one representative
// RunResult as soon as the cell completes — full per-trial results
// (telemetry snapshots, traces) are not retained for the whole campaign,
// so memory stays bounded by cells-in-flight, not by total runs.
//
// Aggregation is a pure function of the cell's trial results indexed by
// trial number, so a CampaignResult is byte-identical across thread
// counts; tsv()/fingerprint() exist to assert exactly that.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/runner.hpp"

namespace pcd::campaign {

/// Five-number-ish summary of one metric across a cell's trials.
struct Summary {
  int n = 0;
  double median = 0, q1 = 0, q3 = 0, min = 0, max = 0, mean = 0;

  /// Median = average of the two middle elements for even n; quartiles by
  /// the same midpoint rule on the lower/upper halves (inclusive of the
  /// middle element for odd n).
  static Summary of(std::vector<double> values);
};

/// Outcome of a single run inside a cell: the result, or the exception it
/// escaped with.
struct TrialRecord {
  core::RunResult result;
  bool threw = false;
  std::string error;  // exception text when threw
};

struct CellResult {
  std::size_t index = 0;               // row-major position in the matrix
  std::string workload;
  std::vector<std::string> labels;     // one per axis, in axis order
  std::vector<double> numbers;         // numeric axis values (see AxisValue)
  std::vector<bool> numeric;

  /// Representative run: the trial whose delay is closest to the median
  /// (ties: closest energy to the energy median, then lowest trial index),
  /// with delay_s/energy_j overwritten by the true medians — so the
  /// headline numbers follow the paper's median-of-trials rule while every
  /// other field is consistently from one real run.
  core::RunResult result;

  Summary delay, energy;

  /// Rolling FNV-1a fold of the trials' run-digest roots, in trial order.
  /// Valid only when has_digest — i.e. every completed trial carried a
  /// determinism digest (ExperimentSpec::collect_digests).
  std::uint64_t digest_root = 0;
  bool has_digest = false;

  int runs = 0;       // trials attempted
  int failures = 0;   // structured RunResult failures + thrown trials
  int thrown = 0;     // of those, trials that escaped with an exception
  std::vector<std::string> errors;       // distinct failure/error strings
  std::string first_exception;           // text of the first thrown trial

  /// Structured root cause when the cell's RunConfig failed validation
  /// (lenient expansion): one entry per offending field, so service error
  /// responses and reports carry the exact issue list, not just a rendered
  /// string.  Empty for cells that were actually executed.
  std::vector<core::ConfigIssue> config_issues;

  /// Median normalized against another cell (e.g. the full-speed baseline).
  core::EnergyDelay normalized_to(const CellResult& baseline) const;
};

/// Aggregates one cell from its trial records (ordered by trial index).
CellResult aggregate_cell(std::vector<TrialRecord> trials);

class CampaignResult {
 public:
  std::vector<std::string> axis_names;  // excludes the implicit workload axis
  std::vector<CellResult> cells;        // row-major, workload outermost
  std::size_t total_runs = 0;
  int threads = 1;      // as executed (not part of tsv())
  double wall_s = 0;    // real wall-clock time (not part of tsv())

  /// Cell lookup by workload label + axis labels (empty labels = the
  /// workload's only cell).  Null when absent.
  const CellResult* find(const std::string& workload,
                         const std::vector<std::string>& labels = {}) const;

  /// All cells of one workload, in matrix order.
  std::vector<const CellResult*> select(const std::string& workload) const;

  /// Human-readable table (one row per cell).
  std::string table() const;

  /// Deterministic serialization of every cell (hex-exact doubles, no
  /// wall-clock or thread count): byte-identical across thread counts.
  std::string tsv() const;

  /// Cheap determinism assertion.  When every cell carries a determinism
  /// digest (collect_digests campaigns), this is the fold of the per-cell
  /// digest roots — a mismatch drills down: fingerprint -> cell root ->
  /// trial digest -> checkpoint interval -> event (tools/pcd_diff).
  /// Otherwise it is the historical FNV-1a of tsv(), so digest-off
  /// campaigns keep their fingerprint bit-for-bit.
  std::uint64_t fingerprint() const;
};

}  // namespace pcd::campaign
