#include "campaign/runner.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <utility>
#include <vector>

#include "campaign/pool.hpp"

namespace pcd::campaign {

CampaignResult CampaignRunner::run(const ExperimentSpec& spec) const {
  return run_cells(spec, spec.expand());
}

CampaignResult CampaignRunner::run_cells(const ExperimentSpec& spec,
                                         std::vector<CellPlan> plans) const {
  const int trials = spec.trial_count();
  const auto& workloads = spec.workload_entries();

  CampaignResult result;
  for (const auto& a : spec.axes()) result.axis_names.push_back(a.name);
  result.total_runs = plans.size() * static_cast<std::size_t>(trials);
  result.cells.resize(plans.size());

  // Per-cell trial buffers, freed as soon as the cell aggregates.
  struct CellState {
    std::vector<TrialRecord> records;
    std::atomic<int> remaining;
  };
  std::vector<CellState> states(plans.size());
  for (auto& s : states) {
    s.records.resize(static_cast<std::size_t>(trials));
    s.remaining.store(trials, std::memory_order_relaxed);
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::mutex progress_mutex;
  std::size_t completed = 0, failures = 0;
  telemetry::Counter* runs_total = nullptr;
  telemetry::Counter* failures_total = nullptr;
  telemetry::Gauge* in_flight = nullptr;
  if (options_.metrics != nullptr) {
    runs_total = &options_.metrics->counter("campaign_runs_total");
    failures_total = &options_.metrics->counter("campaign_failures_total");
    in_flight = &options_.metrics->gauge("campaign_runs_in_flight");
    in_flight->set(static_cast<double>(result.total_runs));
  }

  const int threads = effective_threads(options_.threads, result.total_runs);
  result.threads = threads;

  auto execute = [&](std::size_t unit) {
    const std::size_t cell_index = unit / static_cast<std::size_t>(trials);
    const int trial = static_cast<int>(unit % static_cast<std::size_t>(trials));
    const CellPlan& plan = plans[cell_index];

    TrialRecord rec;
    if (!plan.valid()) {
      // Lenient expansion left the structured issue list on the plan: the
      // cell is never executed, and every trial records the root cause the
      // way a thrown run would (so tsv()'s errors column carries it too).
      rec.threw = true;
      rec.error = "invalid cell config: " + core::describe(plan.issues);
    } else if (options_.cancel != nullptr &&
               options_.cancel->load(std::memory_order_relaxed)) {
      rec.result.failed = true;
      rec.result.failure = "run cancelled before start";
    } else {
      core::RunConfig cfg = trial_config(plan.config, trial);
      if (options_.cancel != nullptr && cfg.cancel == nullptr) {
        cfg.cancel = options_.cancel;
      }
      if (options_.run_deadline_s > 0 &&
          (cfg.wall_deadline_s <= 0 ||
           cfg.wall_deadline_s > options_.run_deadline_s)) {
        cfg.wall_deadline_s = options_.run_deadline_s;
      }
      try {
        rec.result = core::run_workload(workloads[plan.workload].second, cfg);
      } catch (const std::exception& e) {
        rec.threw = true;
        rec.error = e.what();
      } catch (...) {
        rec.threw = true;
        rec.error = "unknown exception";
      }
    }
    const bool run_failed = rec.threw || rec.result.failed;

    CellState& state = states[cell_index];
    state.records[static_cast<std::size_t>(trial)] = std::move(rec);
    // The worker that stores the cell's last trial aggregates it; the
    // release/acquire pair orders every trial's store before the reads.
    if (state.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      CellResult cell = aggregate_cell(std::move(state.records));
      cell.index = plan.index;
      cell.config_issues = plan.issues;
      cell.workload = plan.workload_label;
      cell.labels = plan.labels;
      cell.numbers = plan.numbers;
      cell.numeric = plan.numeric;
      result.cells[cell_index] = std::move(cell);
      state.records = {};  // bounded memory: drop the trial buffer now
    }

    if (options_.on_progress || options_.metrics != nullptr) {
      std::lock_guard lock(progress_mutex);
      ++completed;
      if (run_failed) ++failures;
      if (runs_total != nullptr) {
        runs_total->inc();
        if (run_failed) failures_total->inc();
        in_flight->set(static_cast<double>(result.total_runs - completed));
      }
      if (options_.on_progress) {
        Progress p;
        p.completed = completed;
        p.total = result.total_runs;
        p.failures = failures;
        p.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                       .count();
        p.cell = plan.workload_label;
        for (const auto& l : plan.labels) p.cell += " / " + l;
        options_.on_progress(p);
      }
    }
  };

  run_indexed(result.total_runs, threads, execute);

  result.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

CampaignResult run_campaign(const ExperimentSpec& spec, CampaignOptions options) {
  return CampaignRunner(std::move(options)).run(spec);
}

}  // namespace pcd::campaign
