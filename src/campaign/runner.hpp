// CampaignRunner: executes an ExperimentSpec's run matrix concurrently.
//
// Every run is a pure function of its RunConfig (share-nothing: each
// run_workload builds its own Engine/Cluster/Comm; src has no mutable
// globals), so the matrix parallelizes without locks around the model.
// Trials land in per-cell slots indexed by trial number; the worker that
// completes a cell's last trial aggregates it immediately and releases the
// buffered results, keeping memory bounded by cells in flight.
//
// The CampaignResult is byte-identical for any thread count — seeds derive
// from (cell, trial) coordinates, aggregation reads slots in trial order,
// and cells sit at fixed matrix positions.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "campaign/result.hpp"
#include "campaign/spec.hpp"
#include "telemetry/metrics.hpp"

namespace pcd::campaign {

/// Snapshot handed to the progress callback after every completed run.
struct Progress {
  std::size_t completed = 0;  // runs finished so far
  std::size_t total = 0;      // total runs in the matrix
  std::size_t failures = 0;   // structured failures + thrown runs so far
  double wall_s = 0;          // real time since the campaign started
  std::string cell;           // "workload / label / label" of the finished run
};

struct CampaignOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = serial reference.
  int threads = 0;

  /// Invoked after every run (serialized; may be called from any worker).
  std::function<void(const Progress&)> on_progress;

  /// Optional feed into the telemetry layer: campaign_runs_total,
  /// campaign_failures_total counters and a campaign_runs_in_flight gauge,
  /// updated under the same lock as on_progress.
  telemetry::MetricsRegistry* metrics = nullptr;

  /// Cooperative cancellation, threaded into every trial's RunConfig and
  /// checked before each trial starts.  Once raised, in-flight runs abort
  /// with a structured "run cancelled" failure at their next event-batch
  /// boundary and not-yet-started trials are recorded as cancelled without
  /// executing.  Null = never cancelled (zero-cost).
  const std::atomic<bool>* cancel = nullptr;

  /// Per-trial wall-clock deadline in seconds (0 = none): applied to every
  /// trial whose cell config does not already carry a tighter
  /// RunConfig::wall_deadline_s.  The campaign service uses this to keep a
  /// stuck cell from wedging a worker forever.
  double run_deadline_s = 0;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {}) : options_(std::move(options)) {}

  /// Expands (eagerly validating every cell), executes, aggregates.
  CampaignResult run(const ExperimentSpec& spec) const;

  /// Executes an explicit set of cell plans from `spec` — any subset or
  /// reordering of expand()/expand_lenient() output.  This is the campaign
  /// service's entry point: it re-runs only the cells its result cache
  /// missed, on the same work-stealing pool with the same determinism
  /// guarantees.  Plans with validation issues are not executed; their
  /// cells carry a structured failure (config_issues + error text) so the
  /// TSV and service responses name the root cause.  Cells land in the
  /// result in the order given; CellResult::index keeps each plan's
  /// original matrix position.
  CampaignResult run_cells(const ExperimentSpec& spec,
                           std::vector<CellPlan> plans) const;

 private:
  CampaignOptions options_;
};

/// One-call convenience.
CampaignResult run_campaign(const ExperimentSpec& spec, CampaignOptions options = {});

}  // namespace pcd::campaign
