#include "campaign/spec.hpp"

#include <algorithm>
#include <cstdio>

namespace pcd::campaign {

Axis Axis::static_mhz(const std::vector<int>& freqs) {
  Axis a;
  a.name = "static MHz";
  for (int f : freqs) {
    AxisValue v;
    v.label = std::to_string(f);
    v.apply = [f](core::RunConfig& c) { c.static_mhz = f; };
    v.number = f;
    v.numeric = true;
    a.values.push_back(std::move(v));
  }
  return a;
}

Axis Axis::seeds(const std::vector<std::uint64_t>& seeds) {
  Axis a;
  a.name = "seed";
  for (auto s : seeds) {
    AxisValue v;
    v.label = std::to_string(s);
    v.apply = [s](core::RunConfig& c) { c.seed = s; };
    v.number = static_cast<double>(s);
    v.numeric = true;
    a.values.push_back(std::move(v));
  }
  return a;
}

Axis Axis::daemons(std::vector<std::pair<std::string, core::CpuspeedParams>> params) {
  Axis a;
  a.name = "daemon";
  for (auto& [label, p] : params) {
    AxisValue v;
    v.label = label;
    v.apply = [p](core::RunConfig& c) { c.daemon = p; };
    a.values.push_back(std::move(v));
  }
  return a;
}

Axis Axis::strategies(
    std::string name,
    std::vector<std::pair<std::string, std::function<void(core::RunConfig&)>>> values) {
  Axis a;
  a.name = std::move(name);
  for (auto& [label, fn] : values) {
    AxisValue v;
    v.label = label;
    v.apply = std::move(fn);
    a.values.push_back(std::move(v));
  }
  return a;
}

Axis Axis::numeric(std::string name, const std::vector<double>& values,
                   std::function<void(core::RunConfig&, double)> set) {
  Axis a;
  a.name = std::move(name);
  for (double x : values) {
    AxisValue v;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", x);
    v.label = buf;
    v.apply = [set, x](core::RunConfig& c) { set(c, x); };
    v.number = x;
    v.numeric = true;
    a.values.push_back(std::move(v));
  }
  return a;
}

ExperimentSpec& ExperimentSpec::workload(apps::Workload w, std::string label) {
  if (label.empty()) label = w.name;
  workloads_.emplace_back(std::move(label), std::move(w));
  return *this;
}

ExperimentSpec& ExperimentSpec::workloads(const std::vector<apps::Workload>& ws) {
  for (const auto& w : ws) workload(w);
  return *this;
}

ExperimentSpec& ExperimentSpec::base(core::RunConfig cfg) {
  base_ = std::move(cfg);
  return *this;
}

ExperimentSpec& ExperimentSpec::axis(Axis a) {
  axes_.push_back(std::move(a));
  return *this;
}

ExperimentSpec& ExperimentSpec::trials(int n) {
  trials_ = n;
  return *this;
}

ExperimentSpec& ExperimentSpec::collect_digests(bool on) {
  collect_digests_ = on;
  return *this;
}

std::size_t ExperimentSpec::cells() const {
  std::size_t n = workloads_.size();
  for (const auto& a : axes_) n *= a.values.size();
  return n;
}

std::vector<CellPlan> ExperimentSpec::expand() const {
  auto plans = expand_lenient();
  for (auto& cell : plans) {
    if (cell.issues.empty()) continue;
    std::string message = "invalid ExperimentSpec: " + core::describe(cell.issues);
    throw SpecError(std::move(message), std::move(cell.issues));
  }
  return plans;
}

std::vector<CellPlan> ExperimentSpec::expand_lenient() const {
  std::vector<core::ConfigIssue> issues;
  if (workloads_.empty()) issues.push_back({"workloads", "campaign needs at least one workload"});
  if (trials_ < 1) issues.push_back({"trials", "need at least one trial"});
  for (const auto& a : axes_) {
    if (a.values.empty()) issues.push_back({"axis '" + a.name + "'", "axis has no values"});
  }
  if (!issues.empty()) {
    // Render before moving: argument evaluation order is unspecified.
    std::string message = "invalid ExperimentSpec: " + core::describe(issues);
    throw SpecError(std::move(message), std::move(issues));
  }

  std::vector<CellPlan> plans;
  plans.reserve(cells());
  // Row-major: workload outermost, last axis innermost.
  std::vector<std::size_t> at(axes_.size(), 0);
  for (std::size_t w = 0; w < workloads_.size(); ++w) {
    std::fill(at.begin(), at.end(), 0);
    bool done = false;
    while (!done) {
      CellPlan cell;
      cell.index = plans.size();
      cell.workload = w;
      cell.workload_label = workloads_[w].first;
      cell.config = base_;
      if (collect_digests_) cell.config.determinism.digest = true;
      for (std::size_t i = 0; i < axes_.size(); ++i) {
        const AxisValue& v = axes_[i].values[at[i]];
        cell.labels.push_back(v.label);
        cell.numbers.push_back(v.number);
        cell.numeric.push_back(v.numeric);
        if (v.apply) v.apply(cell.config);
      }
      if (auto cell_issues = cell.config.validate(); !cell_issues.empty()) {
        std::string where = "cell '" + cell.workload_label;
        for (const auto& l : cell.labels) where += " / " + l;
        where += "'";
        for (auto& i : cell_issues) i.field = where + " " + i.field;
        cell.issues = std::move(cell_issues);
      }
      plans.push_back(std::move(cell));
      // Odometer increment over the axis indices, innermost fastest.
      done = true;
      for (std::size_t i = axes_.size(); i-- > 0;) {
        if (++at[i] < axes_[i].values.size()) {
          done = false;
          break;
        }
        at[i] = 0;
      }
      if (axes_.empty()) done = true;
    }
  }
  return plans;
}

core::RunConfig trial_config(const core::RunConfig& cell, int trial) {
  core::RunConfig c = cell;
  c.seed = cell.seed + static_cast<std::uint64_t>(trial) * 7919;
  return c;
}

}  // namespace pcd::campaign
