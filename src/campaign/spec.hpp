// Declarative experiment campaigns (the paper's methodology as an API).
//
// Every figure and table in the paper is a *sweep*: {workload x strategy x
// operating point} with repeated trials and median aggregation.  An
// ExperimentSpec names those dimensions explicitly — workloads plus any
// number of Axes, each axis a list of labelled RunConfig mutations — and
// expands them cartesian-style into a run matrix.  Because every simulated
// run is a pure function of its RunConfig (see DESIGN.md "Share-nothing
// runs"), the expansion is also the unit of parallelism: CampaignRunner
// executes the matrix on a work-stealing pool with results independent of
// thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "apps/workload.hpp"
#include "core/cpuspeed.hpp"
#include "core/runner.hpp"

namespace pcd::campaign {

/// One point on an axis: a display label, the RunConfig mutation applied at
/// expansion time, and (for axes over numbers, e.g. MHz) the raw value so
/// downstream analysis does not have to parse labels.
struct AxisValue {
  std::string label;
  std::function<void(core::RunConfig&)> apply;  // null = label-only point
  double number = 0;
  bool numeric = false;
};

/// A named sweep dimension.  Factories cover the common axes; arbitrary
/// dimensions are built from (label, mutator) pairs.
struct Axis {
  std::string name;
  std::vector<AxisValue> values;

  /// EXTERNAL control: one point per static frequency (0 = boot default).
  static Axis static_mhz(const std::vector<int>& freqs);

  /// Base-seed axis.  Most campaigns instead keep seeds identical across
  /// cells (paired comparisons) and let trials perturb them.
  static Axis seeds(const std::vector<std::uint64_t>& seeds);

  /// CPUSPEED daemon parameter sets (e.g. v1.1 vs v1.2.1).
  static Axis daemons(
      std::vector<std::pair<std::string, core::CpuspeedParams>> params);

  /// Arbitrary labelled strategies or config mutations.
  static Axis strategies(
      std::string name,
      std::vector<std::pair<std::string, std::function<void(core::RunConfig&)>>>
          values);

  /// Numeric parameter axis with one mutator shared across values.
  static Axis numeric(std::string name, const std::vector<double>& values,
                      std::function<void(core::RunConfig&, double)> set);
};

/// Spec validation failure: carries the structured issue list (one entry
/// per offending cell/field) in addition to the rendered message.
class SpecError : public std::invalid_argument {
 public:
  SpecError(std::string message, std::vector<core::ConfigIssue> issues)
      : std::invalid_argument(std::move(message)), issues_(std::move(issues)) {}
  const std::vector<core::ConfigIssue>& issues() const { return issues_; }

 private:
  std::vector<core::ConfigIssue> issues_;
};

/// One fully resolved cell of the run matrix: the workload plus the
/// RunConfig with every axis mutation applied (trial seeds are derived
/// later, see trial_config).
struct CellPlan {
  std::size_t index = 0;              // row-major position
  std::size_t workload = 0;           // index into ExperimentSpec::workloads()
  std::string workload_label;
  std::vector<std::string> labels;    // one per axis, in axis order
  std::vector<double> numbers;        // numeric value per axis (0 if none)
  std::vector<bool> numeric;          // whether numbers[i] is meaningful
  core::RunConfig config;

  /// Structured validation problems for this cell (lenient expansion only;
  /// expand() throws instead).  A cell with issues is never executed: the
  /// runner synthesizes a structured failure carrying the issue text.
  std::vector<core::ConfigIssue> issues;

  bool valid() const { return issues.empty(); }
};

/// Declarative campaign: workloads x axes x trials.
class ExperimentSpec {
 public:
  /// Adds a workload (leading implicit axis).  `label` defaults to the
  /// workload's name; override it when the same code appears twice (e.g.
  /// FT at two scales).
  ExperimentSpec& workload(apps::Workload w, std::string label = "");
  ExperimentSpec& workloads(const std::vector<apps::Workload>& ws);

  /// Base configuration every cell starts from (validated at expansion).
  ExperimentSpec& base(core::RunConfig cfg);

  /// Appends a sweep dimension (applied left to right at expansion).
  ExperimentSpec& axis(Axis a);

  /// Repeated measurements per cell; trial t runs with seed + t*7919 (the
  /// historical run_trials derivation) and cells aggregate to the median.
  ExperimentSpec& trials(int n);

  /// Collect a determinism digest (RunDigest) for every trial; cells then
  /// carry a digest root and CampaignResult::fingerprint() becomes the fold
  /// of those roots (drill-down to the diverging cell/trial).  Off by
  /// default: digest-off campaigns keep the legacy tsv() fingerprint.
  ExperimentSpec& collect_digests(bool on = true);

  const std::vector<std::pair<std::string, apps::Workload>>& workload_entries() const {
    return workloads_;
  }
  const core::RunConfig& base_config() const { return base_; }
  const std::vector<Axis>& axes() const { return axes_; }
  int trial_count() const { return trials_; }
  bool digests() const { return collect_digests_; }

  std::size_t cells() const;
  std::size_t total_runs() const { return cells() * static_cast<std::size_t>(trials_); }

  /// Cartesian expansion into the run matrix, with every cell's RunConfig
  /// validated eagerly — a bad cell raises SpecError (naming the cell)
  /// before any run starts.  Requires >= 1 workload and >= 1 trial.
  std::vector<CellPlan> expand() const;

  /// Lenient expansion for servers: structural problems (no workloads, no
  /// trials, an empty axis) still raise SpecError, but a cell whose
  /// RunConfig fails validation is returned with `issues` filled instead of
  /// aborting the whole matrix — one bad cell in a client's sweep yields
  /// one structured per-cell error, not a rejected campaign.
  std::vector<CellPlan> expand_lenient() const;

 private:
  std::vector<std::pair<std::string, apps::Workload>> workloads_;
  core::RunConfig base_;
  std::vector<Axis> axes_;
  int trials_ = 1;
  bool collect_digests_ = false;
};

/// Seed derivation for repetition `trial` of a cell: identical to the
/// historical run_trials rule, so a one-axis campaign reproduces it
/// bit-for-bit.  Pure function of (cell config, trial) — execution order
/// and thread count cannot perturb it.
core::RunConfig trial_config(const core::RunConfig& cell, int trial);

}  // namespace pcd::campaign
