#include "campaign/sweeps.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pcd::campaign {

core::RunResult run_trials(const apps::Workload& workload, core::RunConfig config,
                           int trials, int threads) {
  ExperimentSpec spec;
  spec.workload(workload).base(std::move(config)).trials(trials);
  CampaignOptions options;
  options.threads = threads;
  const auto result = CampaignRunner(options).run(spec);
  const CellResult& cell = result.cells.front();
  if (cell.thrown > 0) {
    // The old serial loop propagated trial exceptions; keep that contract.
    throw std::runtime_error(cell.first_exception);
  }
  return cell.result;
}

core::StaticSweep sweep_static(const apps::Workload& workload, core::RunConfig config,
                               std::vector<int> freqs, int trials, int threads) {
  if (freqs.empty()) {
    for (const auto& op : config.cluster.node.operating_points.points()) {
      freqs.push_back(op.freq_mhz);
    }
  }
  ExperimentSpec spec;
  spec.workload(workload).base(std::move(config)).axis(Axis::static_mhz(freqs)).trials(trials);
  CampaignOptions options;
  options.threads = threads;
  return sweep_of(CampaignRunner(options).run(spec), spec.workload_entries().front().first);
}

core::StaticSweep sweep_of(const CampaignResult& result, const std::string& workload) {
  // Locate the static-MHz axis: the numeric axis whose label matches its
  // value (Axis::static_mhz produces exactly that shape).
  const auto axis_it =
      std::find(result.axis_names.begin(), result.axis_names.end(), "static MHz");
  if (axis_it == result.axis_names.end()) {
    throw std::invalid_argument("campaign has no 'static MHz' axis");
  }
  const std::size_t axis = static_cast<std::size_t>(axis_it - result.axis_names.begin());

  core::StaticSweep sweep;
  for (const CellResult* cell : result.select(workload)) {
    const int f = static_cast<int>(std::lround(cell->numbers.at(axis)));
    sweep.points.push_back(core::SweepPoint{f, cell->result});
    sweep.base_mhz = std::max(sweep.base_mhz, f);
  }
  if (sweep.points.empty()) {
    throw std::invalid_argument("no cells for workload '" + workload + "'");
  }
  // Keep the classic ascending-frequency ordering regardless of axis order.
  std::sort(sweep.points.begin(), sweep.points.end(),
            [](const core::SweepPoint& a, const core::SweepPoint& b) {
              return a.freq_mhz < b.freq_mhz;
            });
  return sweep;
}

}  // namespace pcd::campaign
