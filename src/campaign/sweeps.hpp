// The classic runner entry points, reimplemented as campaigns.
//
// run_trials and sweep_static were serial loops in core/; they are now
// thin one- and two-axis ExperimentSpecs, so they share the campaign's
// seeding, aggregation, and (optionally) its thread pool, and their
// results are bit-identical at any thread count.
#pragma once

#include <vector>

#include "campaign/result.hpp"
#include "campaign/runner.hpp"
#include "core/strategies.hpp"

namespace pcd::campaign {

/// The paper's methodology: repeat >= `trials` times (trial t at seed +
/// t*7919) and aggregate to the median.  The returned RunResult carries
/// the median delay/energy; every other field comes consistently from the
/// representative (median-delay) trial — see CellResult::result.
/// Rethrows (as std::runtime_error) if any trial threw.
core::RunResult run_trials(const apps::Workload& workload, core::RunConfig config,
                           int trials = 3, int threads = 0);

/// EXTERNAL profiling: the workload at every frequency in `freqs` (default:
/// the cluster's operating points) x `trials`, expanded as a campaign.
core::StaticSweep sweep_static(const apps::Workload& workload, core::RunConfig config,
                               std::vector<int> freqs = {}, int trials = 1,
                               int threads = 0);

/// Rebuilds a StaticSweep for one workload from a campaign that swept
/// Axis::static_mhz — for specs that fuse several workloads into one
/// matrix (e.g. Figures 6-8) and then want per-workload crescendos.
core::StaticSweep sweep_of(const CampaignResult& result, const std::string& workload);

}  // namespace pcd::campaign
