#include "core/cpuspeed.hpp"

#include <algorithm>
#include <cstdio>

namespace pcd::core {

CpuspeedDaemon::CpuspeedDaemon(sim::Scheduler& engine, machine::Node& node,
                               CpuspeedParams params, sim::SimDuration start_offset)
    : engine_(engine), node_(node), params_(params), start_offset_(start_offset) {}

void CpuspeedDaemon::start() {
  if (running_) return;
  running_ = true;
  last_busy_ns_ = node_.cpu().busy_weighted_ns();
  // One pooled timer for the whole daemon lifetime: the poll loop re-arms in
  // place inside the engine's timer wheel instead of pushing a fresh heap
  // event per tick.
  next_tick_ =
      engine_.schedule_every(start_offset_ + sim::from_seconds(params_.interval_s),
                             sim::from_seconds(params_.interval_s), [this] { tick(); },
                             "cpuspeed.tick");
}

void CpuspeedDaemon::stop() {
  if (!running_) return;
  running_ = false;
  engine_.cancel(next_tick_);
  next_tick_ = {};
}

void CpuspeedDaemon::tick() {
  ++polls_;
  // poll %CPU-usage from "/proc/stat"
  const double busy = node_.cpu().busy_weighted_ns();
  const double usage =
      std::clamp((busy - last_busy_ns_) / (params_.interval_s * 1e9), 0.0, 1.0);
  last_busy_ns_ = busy;

  const auto& table = node_.cpu().table();
  const auto m = table.size() - 1;
  std::size_t s = node_.cpu().op_index();
  char why[96];
  if (usage < params_.min_threshold) {
    s = 0;
    std::snprintf(why, sizeof why, "usage %.3f < min %.2f: jump to lowest", usage,
                  params_.min_threshold);
  } else if (usage > params_.max_threshold) {
    s = m;
    std::snprintf(why, sizeof why, "usage %.3f > max %.2f: jump to highest", usage,
                  params_.max_threshold);
  } else if (usage < params_.usage_threshold) {
    s = (s == 0) ? 0 : s - 1;
    std::snprintf(why, sizeof why, "usage %.3f < threshold %.2f: step down", usage,
                  params_.usage_threshold);
  } else {
    s = std::min(s + 1, m);
    std::snprintf(why, sizeof why, "usage %.3f >= threshold %.2f: step up", usage,
                  params_.usage_threshold);
  }
  if (s != node_.cpu().op_index()) {
    ++speed_changes_;
    node_.set_cpuspeed(table.at(s).freq_mhz, telemetry::DvsCause::DaemonThreshold,
                       usage, why);
  }
}

}  // namespace pcd::core
