// The CPUSPEED daemon (paper §3.1, strategy #1): system-driven external
// DVS control.
//
// Implements the paper's pseudocode verbatim: poll %CPU over an interval,
// jump to the lowest point below min-threshold, jump to the highest above
// max-threshold, otherwise step down below the usage threshold and step up
// above it.  Version presets reproduce the two daemons the paper measured:
// v1.1 (Fedora Core 2) polls every 0.1 s — which the paper found
// "equivalent to no DVS" for NPB — and v1.2.1 (Fedora Core 3) every 2 s.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/node.hpp"
#include "sim/scheduler.hpp"

namespace pcd::core {

struct CpuspeedParams {
  double interval_s = 2.0;       // minimum speed-transition interval
  double min_threshold = 0.10;   // below: S = 0
  double max_threshold = 0.95;   // above: S = m
  double usage_threshold = 0.85; // below: S-1, else S+1

  /// cpuspeed 1.1 (Fedora Core 2): 0.1 s interval and conservative
  /// thresholds — any moderate activity steps the clock back up, which is
  /// why the paper found it "always chooses the highest CPU speed" for NPB
  /// ("threshold values were never achieved").
  static CpuspeedParams v1_1() {
    CpuspeedParams p;
    p.interval_s = 0.1;
    p.min_threshold = 0.05;
    p.usage_threshold = 0.25;  // above 25% busy: raise the clock
    p.max_threshold = 0.70;
    return p;
  }
  /// cpuspeed 1.2.1 (Fedora Core 3): 2 s default interval.
  static CpuspeedParams v1_2_1() { return CpuspeedParams{}; }
};

/// One daemon instance per node, exactly like the real system service.
class CpuspeedDaemon {
 public:
  CpuspeedDaemon(sim::Scheduler& engine, machine::Node& node, CpuspeedParams params,
                 sim::SimDuration start_offset = 0);
  ~CpuspeedDaemon() { stop(); }

  CpuspeedDaemon(const CpuspeedDaemon&) = delete;
  CpuspeedDaemon& operator=(const CpuspeedDaemon&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

  std::int64_t polls() const { return polls_; }
  std::int64_t speed_changes() const { return speed_changes_; }
  const CpuspeedParams& params() const { return params_; }

 private:
  void tick();

  sim::Scheduler& engine_;
  machine::Node& node_;
  CpuspeedParams params_;
  sim::SimDuration start_offset_;
  bool running_ = false;
  sim::EventId next_tick_;  // persistent periodic timer; invalid when stopped
  double last_busy_ns_ = 0;
  std::int64_t polls_ = 0;
  std::int64_t speed_changes_ = 0;
};

}  // namespace pcd::core
