#include "core/metrics.hpp"

#include <cmath>

namespace pcd::core {

const char* to_string(Metric m) {
  switch (m) {
    case Metric::EDP: return "EDP";
    case Metric::ED2P: return "ED2P";
    case Metric::ED3P: return "ED3P";
  }
  return "?";
}

double fused_value(Metric m, const EnergyDelay& ed) {
  switch (m) {
    case Metric::EDP: return ed.energy * ed.delay;
    case Metric::ED2P: return ed.energy * ed.delay * ed.delay;
    case Metric::ED3P: return ed.energy * ed.delay * ed.delay * ed.delay;
  }
  return ed.energy;
}

double weighted_ed2p(const EnergyDelay& ed, double weight) {
  return ed.energy * std::pow(ed.delay, 2.0 * weight);
}

OperatingChoice select_operating_point(const Crescendo& crescendo, Metric m) {
  if (crescendo.empty()) throw std::invalid_argument("empty crescendo");
  bool first = true;
  OperatingChoice best;
  for (const auto& [freq, ed] : crescendo) {
    const double v = fused_value(m, ed);
    const bool better =
        first || v < best.value - 1e-12 ||
        // Tie: "choose the point with best performance" (§5.2).
        (std::abs(v - best.value) <= 1e-12 &&
         (ed.delay < best.at.delay - 1e-12 ||
          (std::abs(ed.delay - best.at.delay) <= 1e-12 && freq > best.freq_mhz)));
    if (better) {
      best = OperatingChoice{freq, ed, v};
      first = false;
    }
  }
  return best;
}

std::optional<OperatingChoice> select_delay_constrained(const Crescendo& crescendo,
                                                        double max_delay_increase) {
  std::optional<OperatingChoice> best;
  for (const auto& [freq, ed] : crescendo) {
    if (ed.delay > 1.0 + max_delay_increase + 1e-12) continue;
    if (!best || ed.energy < best->at.energy - 1e-12 ||
        (std::abs(ed.energy - best->at.energy) <= 1e-12 && ed.delay < best->at.delay)) {
      best = OperatingChoice{freq, ed, ed.energy};
    }
  }
  return best;
}

}  // namespace pcd::core
