// Energy-performance efficiency metrics (paper §4.5) and operating-point
// selection, including the "performance-constrained" selection the title
// refers to.
//
// All energies and delays are normalized to the highest frequency
// (no-DVS) run, exactly as the paper reports them.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>

namespace pcd::core {

/// Normalized (energy, delay) pair for one operating point.
struct EnergyDelay {
  double energy = 1.0;  // < 1 means energy savings
  double delay = 1.0;   // > 1 means performance loss
};

/// Fused metrics: EDP for workstations, ED2P/ED3P put progressively more
/// weight on performance (ED3P is what Figure 6 uses, ED2P Figure 7).
enum class Metric { EDP, ED2P, ED3P };

const char* to_string(Metric m);

/// E * D^k for k = 1, 2, 3.
double fused_value(Metric m, const EnergyDelay& ed);

/// Cameron et al.'s weighted ED2P: E * D^(2w); w > 1 weights delay harder.
double weighted_ed2p(const EnergyDelay& ed, double weight);

/// A crescendo: normalized energy/delay per static frequency (MHz).
using Crescendo = std::map<int, EnergyDelay>;

struct OperatingChoice {
  int freq_mhz = 0;
  EnergyDelay at;
  double value = 0;  // the fused metric at the chosen point
};

/// The paper's selection rule (§5.2): the operating point minimizing the
/// fused metric; ties broken toward better performance (lower delay, then
/// higher frequency).
OperatingChoice select_operating_point(const Crescendo& crescendo, Metric m);

/// Performance-constrained minimum-energy selection: the lowest-energy
/// point whose delay increase stays within `max_delay_increase`
/// (e.g. 0.05 = at most 5% slower).  nullopt if no point qualifies.
std::optional<OperatingChoice> select_delay_constrained(const Crescendo& crescendo,
                                                        double max_delay_increase);

}  // namespace pcd::core
