#include "core/predictor.hpp"

#include <algorithm>

namespace pcd::core {

PhasePredictorDaemon::PhasePredictorDaemon(sim::Scheduler& engine, machine::Node& node,
                                           PhasePredictorParams params,
                                           sim::SimDuration start_offset)
    : engine_(engine), node_(node), params_(params), start_offset_(start_offset) {}

void PhasePredictorDaemon::start() {
  if (running_) return;
  running_ = true;
  last_busy_ns_ = node_.cpu().busy_weighted_ns();
  next_tick_ =
      engine_.schedule_every(start_offset_ + sim::from_seconds(params_.interval_s),
                             sim::from_seconds(params_.interval_s), [this] { tick(); },
                             "predictor.tick");
}

void PhasePredictorDaemon::stop() {
  if (!running_) return;
  running_ = false;
  engine_.cancel(next_tick_);
  next_tick_ = {};
}

int PhasePredictorDaemon::mixed_frequency(const cpu::OperatingPointTable& table,
                                          double utilization, double max_slowdown) {
  // A window with utilization u has a CPU-bound share of roughly u; running
  // at frequency f stretches that share by (f_max/f - 1).  Projected delay
  // increase = u * (f_max/f - 1); pick the lowest f within the budget.
  const int f_max = table.highest().freq_mhz;
  for (const auto& op : table.points()) {  // ascending frequency
    const double stretch = static_cast<double>(f_max) / op.freq_mhz - 1.0;
    if (utilization * stretch <= max_slowdown) return op.freq_mhz;
  }
  return f_max;
}

void PhasePredictorDaemon::tick() {
  ++polls_;
  const double busy = node_.cpu().busy_weighted_ns();
  const double usage =
      std::clamp((busy - last_busy_ns_) / (params_.interval_s * 1e9), 0.0, 1.0);
  last_busy_ns_ = busy;

  Phase seen = Phase::Mixed;
  if (usage >= params_.high_util) {
    seen = Phase::Compute;
  } else if (usage < params_.low_util) {
    seen = Phase::Slack;
  }

  // Hysteresis: require agreement before switching the confirmed phase —
  // except *into* Compute, which acts immediately (delay protection).
  if (seen == Phase::Compute) {
    confirmed_ = Phase::Compute;
    candidate_ = seen;
    candidate_count_ = 0;
  } else if (seen == candidate_) {
    if (++candidate_count_ >= params_.confirm_samples) confirmed_ = seen;
  } else {
    candidate_ = seen;
    candidate_count_ = 1;
    if (params_.confirm_samples <= 1) confirmed_ = seen;
  }

  apply(confirmed_, usage);
}

void PhasePredictorDaemon::apply(Phase phase, double utilization) {
  const auto& table = node_.cpu().table();
  int target = table.highest().freq_mhz;
  const char* why = "";
  switch (phase) {
    case Phase::Compute:
      target = table.highest().freq_mhz;
      why = "phase Compute: jump to highest";
      break;
    case Phase::Slack:
      target = table.lowest().freq_mhz;
      why = "phase Slack: jump to lowest";
      break;
    case Phase::Mixed:
      target = mixed_frequency(table, utilization, params_.max_slowdown);
      why = "phase Mixed: lowest point within slowdown budget";
      break;
  }
  if (target != node_.cpu().frequency_mhz()) {
    ++speed_changes_;
    node_.set_cpuspeed(target, telemetry::DvsCause::Predictor, utilization, why);
  }
}

}  // namespace pcd::core
