// Phase-predicting DVS daemon — the paper's stated future work ("better
// prediction methods more suitable to high-performance computing
// applications", §7), built on the same external, system-driven interface
// as CPUSPEED.
//
// CPUSPEED's weaknesses (§5.1): it reacts one step per interval (lagging
// phase boundaries) and its blended-utilization stepping drags mixed codes
// like MG/BT to the lowest point, costing 30%+ delay.  The predictor
// instead classifies each sampling window:
//
//   Compute (util >= high_util)  -> jump straight to the highest point;
//   Slack   (util <  low_util)   -> jump straight to the lowest point
//                                   (communication/idle phase);
//   Mixed   (in between)         -> pick the operating point whose slowdown
//                                   of the *CPU-bound share* keeps the
//                                   projected delay under `max_slowdown`.
//
// Classification changes take effect only after `confirm_samples`
// consecutive agreeing windows (hysteresis against thrash).
#pragma once

#include <cstdint>

#include "machine/node.hpp"
#include "sim/scheduler.hpp"

namespace pcd::core {

struct PhasePredictorParams {
  double interval_s = 0.5;    // finer than cpuspeed's 2 s
  double high_util = 0.92;
  double low_util = 0.55;
  int confirm_samples = 2;    // windows before a reclassification acts
  double max_slowdown = 0.05; // delay budget for Mixed windows
};

class PhasePredictorDaemon {
 public:
  enum class Phase { Compute, Slack, Mixed };

  PhasePredictorDaemon(sim::Scheduler& engine, machine::Node& node,
                       PhasePredictorParams params,
                       sim::SimDuration start_offset = 0);
  ~PhasePredictorDaemon() { stop(); }

  PhasePredictorDaemon(const PhasePredictorDaemon&) = delete;
  PhasePredictorDaemon& operator=(const PhasePredictorDaemon&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

  std::int64_t polls() const { return polls_; }
  std::int64_t speed_changes() const { return speed_changes_; }
  Phase current_phase() const { return confirmed_; }

  /// The operating point the Mixed policy picks for a given utilization:
  /// the lowest frequency whose projected delay increase on the CPU-bound
  /// share stays within the budget.  Exposed for unit testing.
  static int mixed_frequency(const cpu::OperatingPointTable& table, double utilization,
                             double max_slowdown);

 private:
  void tick();
  void apply(Phase phase, double utilization);

  sim::Scheduler& engine_;
  machine::Node& node_;
  PhasePredictorParams params_;
  sim::SimDuration start_offset_;
  bool running_ = false;
  sim::EventId next_tick_;  // persistent periodic timer; invalid when stopped
  double last_busy_ns_ = 0;
  Phase confirmed_ = Phase::Compute;
  Phase candidate_ = Phase::Compute;
  int candidate_count_ = 0;
  std::int64_t polls_ = 0;
  std::int64_t speed_changes_ = 0;
};

}  // namespace pcd::core
