#include "core/runner.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "mpi/comm.hpp"
#include "sim/process.hpp"
#include "telemetry/export.hpp"

namespace pcd::core {

namespace {

struct Completion {
  bool done = false;
  sim::SimTime t_end = 0;
  double energy_end = 0;
};

// Joins every rank process, then snapshots time/energy at the exact
// completion instant and stops the daemons — before any later meter or
// daemon event can advance the clock past the measurement window.
sim::Process completion_watcher(std::vector<sim::Process>& ranks, sim::Engine& engine,
                                machine::Cluster& cluster,
                                std::vector<std::function<void()>>& stoppers,
                                Completion* out) {
  for (auto& p : ranks) co_await p;
  out->t_end = engine.now();
  out->energy_end = cluster.total_energy_joules();
  for (auto& stop : stoppers) stop();
  out->done = true;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

RunResult run_workload(const apps::Workload& workload, const RunConfig& config) {
  sim::Engine engine;

  machine::ClusterConfig cc = config.cluster;
  // The paper reports total system energy of the nodes running the job
  // (one battery per participating node); size the cluster accordingly.
  cc.nodes = workload.ranks;
  cc.seed = config.seed * 0x9e3779b97f4a7c15ULL + 0x1234567;
  machine::Cluster cluster(engine, cc);

  // --- telemetry (attach before any strategy acts, so EXTERNAL static
  // sets and meter-protocol events are captured too) ---
  std::unique_ptr<telemetry::Hub> hub;
  if (config.telemetry.enabled) {
    hub = std::make_unique<telemetry::Hub>();
    cluster.attach_telemetry(hub.get());
  }

  // --- measurement protocol (paper §4.2) ---
  if (config.use_meters) {
    for (int i = 0; i < cluster.size(); ++i) {
      auto& b = cluster.node(i).battery();
      b.recharge_full();   // 1) fully charge
      b.disconnect_ac();   // 2) disconnect building power (via Baytech)
      b.start_polling();
    }
    cluster.baytech().start_polling();
    engine.run_until(engine.now() + 300 * sim::kSecond);  // 3) 5-min discharge
  }

  // --- strategy setup ---
  if (config.static_mhz != 0) {
    cluster.set_all_cpuspeed(config.static_mhz);  // EXTERNAL: psetcpuspeed
    engine.run_until(engine.now() + sim::kMillisecond);  // settle transitions
  }

  std::vector<std::unique_ptr<CpuspeedDaemon>> daemons;
  std::vector<std::unique_ptr<PhasePredictorDaemon>> predictors;
  std::vector<std::function<void()>> stoppers;
  if (config.daemon.has_value()) {
    auto stagger_rng = cluster.rng_stream();
    for (int i = 0; i < cluster.size(); ++i) {
      const auto offset = static_cast<sim::SimDuration>(
          stagger_rng.uniform(0.0, config.daemon->interval_s) * 1e9);
      daemons.push_back(std::make_unique<CpuspeedDaemon>(engine, cluster.node(i),
                                                         *config.daemon, offset));
      daemons.back()->start();
      stoppers.push_back([d = daemons.back().get()] { d->stop(); });
    }
  }
  if (config.predictor.has_value()) {
    auto stagger_rng = cluster.rng_stream();
    for (int i = 0; i < cluster.size(); ++i) {
      const auto offset = static_cast<sim::SimDuration>(
          stagger_rng.uniform(0.0, config.predictor->interval_s) * 1e9);
      predictors.push_back(std::make_unique<PhasePredictorDaemon>(
          engine, cluster.node(i), *config.predictor, offset));
      predictors.back()->start();
      stoppers.push_back([d = predictors.back().get()] { d->stop(); });
    }
  }

  std::unique_ptr<trace::Tracer> tracer;
  if (config.collect_trace) {
    tracer = std::make_unique<trace::Tracer>(engine, workload.ranks);
  }

  // The sampler only *reads* cluster state, so enabling it cannot perturb
  // delay or energy; it starts here so the series covers the run window.
  std::unique_ptr<telemetry::TimeSeriesSampler> sampler;
  if (hub != nullptr && config.telemetry.sample) {
    sampler = std::make_unique<telemetry::TimeSeriesSampler>(
        engine, cluster.size(), config.telemetry.sampler,
        [&cluster](int i) {
          auto& node = cluster.node(i);
          const auto bd = node.power().breakdown();
          telemetry::NodeProbe p;
          p.freq_mhz = node.cpu().frequency_mhz();
          p.busy_weighted_ns = node.cpu().busy_weighted_ns();
          p.watts_cpu = bd.cpu;
          p.watts_memory = bd.memory;
          p.watts_disk = bd.disk;
          p.watts_nic = bd.nic;
          p.watts_other = bd.other;
          return p;
        },
        &hub->registry());
    sampler->start();
    stoppers.push_back([s = sampler.get()] { s->stop(); });
  }

  std::vector<int> node_ids(workload.ranks);
  std::iota(node_ids.begin(), node_ids.end(), 0);
  mpi::Comm comm(cluster, node_ids, mpi::CostParams{}, tracer.get());

  apps::AppContext ctx;
  ctx.comm = &comm;
  ctx.tracer = tracer.get();
  ctx.hooks = &config.hooks;
  ctx.slice_s = config.slice_s;

  // --- launch and run ---
  const sim::SimTime t_start = engine.now();
  const double e_start = cluster.total_energy_joules();
  std::vector<double> acpi_start(cluster.size(), 0);
  std::vector<double> acpi_end(cluster.size(), 0);
  if (config.use_meters) {
    for (int i = 0; i < cluster.size(); ++i) {
      acpi_start[i] = cluster.node(i).battery().reported_remaining_mwh();
    }
    // The operator reads the batteries right at completion; register that
    // read with the completion watcher so it happens at exactly t_end.
    stoppers.push_back([&cluster, &acpi_end] {
      for (int i = 0; i < cluster.size(); ++i) {
        acpi_end[i] = cluster.node(i).battery().reported_remaining_mwh();
        cluster.node(i).battery().stop_polling();
      }
    });
  }

  std::vector<sim::Process> rank_procs;
  rank_procs.reserve(workload.ranks);
  for (int r = 0; r < workload.ranks; ++r) {
    rank_procs.push_back(sim::spawn(engine, workload.make_rank(ctx, r)));
  }
  Completion completion;
  sim::spawn(engine,
             completion_watcher(rank_procs, engine, cluster, stoppers, &completion));

  while (!completion.done) {
    if (engine.run(200'000) == 0) {
      throw std::runtime_error("workload deadlocked: no events but ranks unfinished");
    }
  }

  const sim::SimTime t_end = completion.t_end;
  RunResult result;
  result.workload = workload.name;
  result.delay_s = sim::to_seconds(t_end - t_start);
  result.energy_j = completion.energy_end - e_start;

  if (config.use_meters) {
    // Capacity differences were read at t_end by the completion watcher;
    // staleness at both ends (each value is from the last 15-20 s refresh)
    // largely cancels over long runs.
    double acpi_mwh = 0;
    for (int i = 0; i < cluster.size(); ++i) {
      acpi_mwh += acpi_start[i] - acpi_end[i];
    }
    result.energy_acpi_j = acpi_mwh * 3.6;
    // The Baytech unit reports completed one-minute windows; run the clock
    // past the next report so the window containing t_end is available.
    const sim::SimTime grace = t_end + 61 * sim::kSecond;
    if (engine.now() < grace) engine.run_until(grace);
    result.energy_baytech_j = cluster.baytech().estimate_energy_joules(t_start, t_end);
    cluster.baytech().stop_polling();
  }

  for (int i = 0; i < cluster.size(); ++i) {
    result.dvs_transitions += cluster.node(i).cpu().stats().transitions;
    result.mean_utilization += cluster.node(i).cpu().busy_weighted_ns() /
                               static_cast<double>(t_end - t_start) / cluster.size();
  }
  result.net_collisions = cluster.network().stats().collisions;
  result.messages = comm.stats().messages;

  if (tracer) {
    result.profile = trace::analyze(*tracer);
    result.timeline = trace::render_timeline(*tracer);
  }

  if (hub != nullptr) {
    auto& reg = hub->registry();
    reg.gauge("run_delay_seconds").set(result.delay_s);
    reg.gauge("run_energy_joules").set(result.energy_j);
    reg.counter("mpi_messages_total").inc(static_cast<double>(result.messages));
    auto snap = telemetry::make_snapshot(*hub, sampler.get());
    snap.chrome_trace_json = telemetry::to_chrome_json(snap, tracer.get());
    result.telemetry = std::move(snap);
  }
  return result;
}

RunResult run_trials(const apps::Workload& workload, RunConfig config, int trials) {
  if (trials < 1) throw std::invalid_argument("need at least one trial");
  std::vector<RunResult> runs;
  runs.reserve(trials);
  for (int t = 0; t < trials; ++t) {
    RunConfig c = config;
    c.seed = config.seed + static_cast<std::uint64_t>(t) * 7919;
    runs.push_back(run_workload(workload, c));
  }
  // Median delay/energy rejects outliers, mirroring the paper's repeated
  // measurements.
  RunResult out = runs.front();
  std::vector<double> delays, energies;
  for (const auto& r : runs) {
    delays.push_back(r.delay_s);
    energies.push_back(r.energy_j);
  }
  out.delay_s = median(delays);
  out.energy_j = median(energies);
  return out;
}

}  // namespace pcd::core
