#include "core/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <tuple>

#include "fault/injector.hpp"
#include "fault/watchdog.hpp"
#include "mpi/comm.hpp"
#include "net/network.hpp"
#include "sim/process.hpp"
#include "telemetry/export.hpp"

namespace pcd::core {

namespace {

struct Completion {
  bool done = false;
  bool failed = false;
  std::string failure;
  sim::SimTime t_end = 0;
  double energy_end = 0;
};

// Joins every rank process, then snapshots time/energy at the exact
// completion instant and stops the daemons — before any later meter or
// daemon event can advance the clock past the measurement window.
sim::Process completion_watcher(std::vector<sim::Process>& ranks, sim::Engine& engine,
                                machine::Cluster& cluster,
                                std::vector<std::function<void()>>& stoppers,
                                Completion* out) {
  for (auto& p : ranks) co_await p;
  if (out->done) co_return;  // the progress watchdog already failed the run
  out->t_end = engine.now();
  out->energy_end = cluster.total_energy_joules();
  for (auto& stop : stoppers) stop();
  out->done = true;
}

// Fails the run (structured, not a hang) when nothing has made progress for
// `timeout_s`: no MPI message delivered, no CPU work unit retired, no rank
// finished.  That is the signature of a crashed node with no
// checkpoint/restart — the survivors block inside MPI forever while the
// daemons keep the event queue alive.
sim::Process progress_watchdog(sim::Engine& engine, machine::Cluster& cluster,
                               mpi::Comm& comm, std::vector<sim::Process>& ranks,
                               std::vector<std::function<void()>>& stoppers,
                               double timeout_s, Completion* out) {
  auto signature = [&] {
    std::int64_t work = 0;
    for (int i = 0; i < cluster.size(); ++i) {
      work += cluster.node(i).cpu().stats().work_completed;
    }
    std::int64_t done_ranks = 0;
    for (const auto& p : ranks) done_ranks += p.done() ? 1 : 0;
    return std::tuple{comm.stats().messages, work, done_ranks};
  };
  auto last = signature();
  sim::SimTime last_change = engine.now();
  const auto poll = sim::from_seconds(std::max(0.25, timeout_s / 4.0));
  while (!out->done) {
    co_await sim::delay(poll);
    if (out->done) co_return;
    const auto cur = signature();
    if (cur != last) {
      last = cur;
      last_change = engine.now();
      continue;
    }
    if (sim::to_seconds(engine.now() - last_change) < timeout_s) continue;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "MPI progress timeout: no message, work, or rank completion "
                  "for %.1f s (%lld/%zu ranks finished)",
                  timeout_s, static_cast<long long>(std::get<2>(cur)), ranks.size());
    out->failed = true;
    out->failure = buf;
    out->t_end = engine.now();
    out->energy_end = cluster.total_energy_joules();
    for (auto& stop : stoppers) stop();
    out->done = true;
    co_return;
  }
}

// Energy probe behind scope attribution: a pure read of the exact node
// energy integrator and the CPU's retired-cycle counter.  Both accessors
// accrue lazily but never mutate simulation-visible state, so sampling on
// every scope boundary keeps the run bit-identical.
struct ClusterProbe final : trace::Tracer::Probe {
  explicit ClusterProbe(machine::Cluster& c) : cluster(&c) {}
  machine::Cluster* cluster;
  trace::Tracer::EnergySample sample(int rank) override {
    auto& node = cluster->node(rank);
    const auto e = node.power().energy_breakdown();
    return {e.total(), e.cpu, node.cpu().retired_sensitive_cycles()};
  }
};

}  // namespace

std::string describe(const std::vector<ConfigIssue>& issues) {
  std::string out;
  for (const auto& i : issues) {
    if (!out.empty()) out += "; ";
    out += i.field + ": " + i.message;
  }
  return out;
}

std::vector<ConfigIssue> RunConfig::validate() const {
  std::vector<ConfigIssue> issues;
  if (daemon.has_value() && predictor.has_value()) {
    issues.push_back({"daemon/predictor",
                      "CPUSPEED daemon and phase predictor are mutually "
                      "exclusive strategies; configure at most one"});
  }
  if (slice_s <= 0) {
    issues.push_back({"slice_s", "compute-phase slice must be positive, got " +
                                     std::to_string(slice_s)});
  }
  if (static_mhz < 0) {
    issues.push_back({"static_mhz", "static frequency cannot be negative, got " +
                                        std::to_string(static_mhz)});
  }
  if (daemon.has_value() && daemon->interval_s <= 0) {
    issues.push_back({"daemon.interval_s", "daemon polling interval must be positive"});
  }
  if (predictor.has_value() && predictor->interval_s <= 0) {
    issues.push_back({"predictor.interval_s",
                      "predictor polling interval must be positive"});
  }
  for (const auto& e : faults.events) {
    if (e.at_s < 0) {
      issues.push_back({"faults.events", "scripted fault scheduled before launch (at_s = " +
                                             std::to_string(e.at_s) + ")"});
      break;
    }
  }
  for (const auto& h : faults.hazards) {
    if (h.mtbf_s <= 0) {
      issues.push_back({"faults.hazards", "hazard MTBF must be positive"});
      break;
    }
  }
  if (faults.horizon_s < 0) {
    issues.push_back({"faults.horizon_s", "hazard horizon cannot be negative"});
  }
  if (wall_deadline_s < 0) {
    issues.push_back({"wall_deadline_s", "wall-clock deadline cannot be negative, got " +
                                             std::to_string(wall_deadline_s)});
  }
  if (faults.resilience.checkpoint_interval_s < 0 ||
      faults.resilience.checkpoint_cost_s < 0) {
    issues.push_back({"faults.resilience",
                      "checkpoint interval/cost cannot be negative"});
  }
  for (auto& [field, message] :
       net::Network::validate_params(cluster.network, "cluster.network")) {
    issues.push_back({field, message});
  }
  if (shards <= 0) {
    issues.push_back({"shards", "shard count must be positive, got " +
                                    std::to_string(shards)});
  } else if (shards > 1) {
    // The sharded path carries the full observation stack: every collector
    // (trace, profile, meters, telemetry, faults, digests, flight recorder)
    // is instantiated per shard and merged deterministically at run end
    // (DESIGN.md §3.14).  The one residual single-engine assumption is
    // focused per-event capture / seq perturbation: dispatch ordinals are
    // per-shard, so a machine-wide capture window is not definable.
    if (determinism.capture() || determinism.perturb_seq != 0) {
      issues.push_back({"determinism",
                        "focused per-event capture and seq perturbation are "
                        "not supported with shards > 1 (dispatch ordinals "
                        "are per-shard); digests and the flight recorder "
                        "shard fine"});
    }
  }
  return issues;
}

RunConfig RunConfigBuilder::build() const {
  auto issues = cfg_.validate();
  if (!issues.empty()) {
    throw std::invalid_argument("invalid RunConfig: " + describe(issues));
  }
  return cfg_;
}

// sharded_runner.cpp — the N-shard driver behind RunConfig::shards.
RunResult run_workload_sharded(const apps::Workload& workload,
                               const RunConfig& config, int shards);

RunResult run_workload(const apps::Workload& workload, const RunConfig& config) {
  if (auto issues = config.validate(); !issues.empty()) {
    throw std::invalid_argument("invalid RunConfig: " + describe(issues));
  }
  // Shards are clamped to the rank count; an effective count of 1 falls
  // through to the classic single-engine path below, bit-identical to a
  // config that never mentioned shards.
  if (const int s = std::min(config.shards, workload.ranks); s > 1) {
    return run_workload_sharded(workload, config, s);
  }
  sim::Engine engine;

  // --- determinism observability (installed before anything schedules, so
  // the digest streams cover the cluster's very first event) ---
  std::unique_ptr<telemetry::DeterminismCollector> det;
  if (config.determinism.any()) {
    det = std::make_unique<telemetry::DeterminismCollector>(engine, config.determinism);
  }

  machine::ClusterConfig cc = config.cluster;
  // The paper reports total system energy of the nodes running the job
  // (one battery per participating node); size the cluster accordingly.
  cc.nodes = workload.ranks;
  cc.seed = config.seed * 0x9e3779b97f4a7c15ULL + 0x1234567;
  machine::Cluster cluster(engine, cc);

  if (det != nullptr) {
    for (int i = 0; i < cluster.size(); ++i) {
      cluster.node(i).power().set_digest(det->power_stream(), i);
    }
    if (telemetry::FlightRecorder* fr = det->recorder(); fr != nullptr) {
      fr->add_state("engine", [&engine] {
        char b[160];
        std::snprintf(b, sizeof b,
                      "{\"t_ns\":%llu,\"pending_events\":%zu,"
                      "\"events_processed\":%zu}",
                      static_cast<unsigned long long>(engine.now()),
                      engine.pending_events(), engine.events_processed());
        return std::string(b);
      });
      fr->add_state("rng_draws", [] {
        return std::to_string(sim::RngTelemetry::draws);
      });
      // Dump-time read of the lazy integrators: pure, never folds (reads
      // are deliberately outside the power digest).
      fr->add_state("power", [&cluster] {
        char b[64];
        std::snprintf(b, sizeof b, "{\"total_joules\":%.9f}",
                      cluster.total_energy_joules());
        return std::string(b);
      });
      fr->add_state("digest", [d = det.get()] {
        const auto& dg = d->digest();
        char b[160];
        std::snprintf(b, sizeof b,
                      "{\"root\":\"%016llx\",\"events\":%llu,\"rng\":%llu,"
                      "\"power\":%llu,\"mpi\":%llu}",
                      static_cast<unsigned long long>(dg.root()),
                      static_cast<unsigned long long>(
                          dg.streams[telemetry::RunDigest::kEvents].count),
                      static_cast<unsigned long long>(
                          dg.streams[telemetry::RunDigest::kRng].count),
                      static_cast<unsigned long long>(
                          dg.streams[telemetry::RunDigest::kPower].count),
                      static_cast<unsigned long long>(
                          dg.streams[telemetry::RunDigest::kMpi].count));
        return std::string(b);
      });
    }
  }

  // --- telemetry (attach before any strategy acts, so EXTERNAL static
  // sets and meter-protocol events are captured too) ---
  std::unique_ptr<telemetry::Hub> hub;
  if (config.telemetry.enabled) {
    hub = std::make_unique<telemetry::Hub>();
    cluster.attach_telemetry(hub.get());
  }

  // --- measurement protocol (paper §4.2) ---
  if (config.use_meters) {
    for (int i = 0; i < cluster.size(); ++i) {
      auto& b = cluster.node(i).battery();
      b.recharge_full();   // 1) fully charge
      b.disconnect_ac();   // 2) disconnect building power (via Baytech)
      b.start_polling();
    }
    cluster.baytech().start_polling();
    engine.run_until(engine.now() + 300 * sim::kSecond);  // 3) 5-min discharge
  }

  // --- strategy setup ---
  if (config.static_mhz != 0) {
    cluster.set_all_cpuspeed(config.static_mhz);  // EXTERNAL: psetcpuspeed
    engine.run_until(engine.now() + sim::kMillisecond);  // settle transitions
  }

  std::vector<std::unique_ptr<CpuspeedDaemon>> daemons;
  std::vector<std::unique_ptr<PhasePredictorDaemon>> predictors;
  std::vector<std::function<void()>> stoppers;
  if (config.daemon.has_value()) {
    auto stagger_rng = cluster.rng_stream();
    for (int i = 0; i < cluster.size(); ++i) {
      const auto offset = static_cast<sim::SimDuration>(
          stagger_rng.uniform(0.0, config.daemon->interval_s) * 1e9);
      daemons.push_back(std::make_unique<CpuspeedDaemon>(engine, cluster.node(i),
                                                         *config.daemon, offset));
      daemons.back()->start();
      stoppers.push_back([d = daemons.back().get()] { d->stop(); });
    }
  }
  if (config.predictor.has_value()) {
    auto stagger_rng = cluster.rng_stream();
    for (int i = 0; i < cluster.size(); ++i) {
      const auto offset = static_cast<sim::SimDuration>(
          stagger_rng.uniform(0.0, config.predictor->interval_s) * 1e9);
      predictors.push_back(std::make_unique<PhasePredictorDaemon>(
          engine, cluster.node(i), *config.predictor, offset));
      predictors.back()->start();
      stoppers.push_back([d = predictors.back().get()] { d->stop(); });
    }
  }

  // --- fault layer (src/fault) ---
  //
  // Everything here is skipped for an empty plan: no RNG stream is drawn
  // (the injector split happens only when the plan injects, *after* the
  // daemon stagger draws), nothing is scheduled, nothing is observed.
  const fault::FaultPlan& plan = config.faults;
  std::optional<fault::FaultReport> fault_report;
  std::unique_ptr<fault::CheckpointService> ckpt;
  std::unique_ptr<fault::FaultInjector> injector;
  std::vector<std::unique_ptr<fault::DaemonWatchdog>> watchdogs;
  double mpi_timeout_s = plan.resilience.mpi_timeout_s;
  if (mpi_timeout_s == 0) mpi_timeout_s = plan.injects() ? 60.0 : -1.0;
  if (plan.active()) {
    fault_report.emplace();
    if (plan.resilience.checkpoint_interval_s > 0) {
      ckpt = std::make_unique<fault::CheckpointService>(
          engine, cluster, plan.resilience.checkpoint_interval_s,
          plan.resilience.checkpoint_cost_s, &*fault_report, hub.get());
      stoppers.push_back([c = ckpt.get()] { c->stop(); });
    }
    if (plan.injects()) {
      injector = std::make_unique<fault::FaultInjector>(
          engine, cluster, plan, cluster.rng_stream(), &*fault_report);
      injector->attach_telemetry(hub.get());
      if (ckpt != nullptr) injector->set_checkpoint_service(ckpt.get());
      if (!daemons.empty()) {
        injector->set_daemon_wedger([&daemons](int n) { daemons.at(n)->stop(); });
      } else if (!predictors.empty()) {
        injector->set_daemon_wedger([&predictors](int n) { predictors.at(n)->stop(); });
      }
      stoppers.push_back([inj = injector.get()] { inj->disarm(); });
    }
    if (plan.resilience.watchdog) {
      for (int i = 0; i < cluster.size(); ++i) {
        fault::DaemonHooks hooks;
        if (!daemons.empty()) {
          auto* d = daemons[static_cast<std::size_t>(i)].get();
          hooks.polls = [d] { return d->polls(); };
          hooks.restart = [d] { d->start(); };
          hooks.disable = [d] { d->stop(); };
          hooks.expected_poll_interval_s = config.daemon->interval_s;
        } else if (!predictors.empty()) {
          auto* d = predictors[static_cast<std::size_t>(i)].get();
          hooks.polls = [d] { return d->polls(); };
          hooks.restart = [d] { d->start(); };
          hooks.disable = [d] { d->stop(); };
          hooks.expected_poll_interval_s = config.predictor->interval_s;
        }
        watchdogs.push_back(std::make_unique<fault::DaemonWatchdog>(
            engine, cluster.node(i), plan.resilience.watchdog_params, hooks,
            &*fault_report, hub.get()));
        if (det != nullptr) watchdogs.back()->set_flight_recorder(det->recorder());
        watchdogs.back()->start();
        stoppers.push_back([w = watchdogs.back().get()] { w->stop(); });
      }
    }
  }

  std::unique_ptr<trace::Tracer> tracer;
  std::optional<ClusterProbe> probe;
  if (config.collect_trace || config.profile) {
    tracer = std::make_unique<trace::Tracer>(engine, workload.ranks);
    if (config.profile) {
      probe.emplace(cluster);
      tracer->set_probe(&*probe);
    }
  }

  // The sampler only *reads* cluster state, so enabling it cannot perturb
  // delay or energy; it starts here so the series covers the run window.
  std::unique_ptr<telemetry::TimeSeriesSampler> sampler;
  if (hub != nullptr && config.telemetry.sample) {
    sampler = std::make_unique<telemetry::TimeSeriesSampler>(
        engine, cluster.size(), config.telemetry.sampler,
        [&cluster](int i) {
          auto& node = cluster.node(i);
          const auto bd = node.power().breakdown();
          telemetry::NodeProbe p;
          p.freq_mhz = node.cpu().frequency_mhz();
          p.busy_weighted_ns = node.cpu().busy_weighted_ns();
          p.watts_cpu = bd.cpu;
          p.watts_memory = bd.memory;
          p.watts_disk = bd.disk;
          p.watts_nic = bd.nic;
          p.watts_other = bd.other;
          return p;
        },
        &hub->registry());
    // Batch path: one dense dirty-lane refresh over the arena per tick; the
    // per-node breakdown() calls above then read clean cached lanes.
    sampler->set_tick_prelude([&cluster] { cluster.arena().refresh_all(); });
    sampler->start();
    stoppers.push_back([s = sampler.get()] { s->stop(); });
  }

  std::vector<int> node_ids(workload.ranks);
  std::iota(node_ids.begin(), node_ids.end(), 0);
  mpi::Comm comm(cluster, node_ids, mpi::CostParams{}, tracer.get());
  if (det != nullptr) comm.set_digest(det->mpi_stream());

  apps::AppContext ctx;
  ctx.comm = &comm;
  ctx.tracer = tracer.get();
  ctx.hooks = &config.hooks;
  ctx.slice_s = config.slice_s;

  // --- launch and run ---
  const sim::SimTime t_start = engine.now();
  const double e_start = cluster.total_energy_joules();
  std::vector<double> acpi_start(cluster.size(), 0);
  std::vector<double> acpi_end(cluster.size(), 0);
  if (config.use_meters) {
    for (int i = 0; i < cluster.size(); ++i) {
      acpi_start[i] = cluster.node(i).battery().reported_remaining_mwh();
    }
    // The operator reads the batteries right at completion; register that
    // read with the completion watcher so it happens at exactly t_end.
    stoppers.push_back([&cluster, &acpi_end] {
      for (int i = 0; i < cluster.size(); ++i) {
        acpi_end[i] = cluster.node(i).battery().reported_remaining_mwh();
        cluster.node(i).battery().stop_polling();
      }
    });
  }

  // Arm the resilience/injection machinery right at launch so scripted
  // fault times are relative to the application's start.
  if (ckpt != nullptr) ckpt->start();
  if (injector != nullptr) injector->arm();

  std::vector<sim::Process> rank_procs;
  rank_procs.reserve(workload.ranks);
  for (int r = 0; r < workload.ranks; ++r) {
    rank_procs.push_back(sim::spawn(engine, workload.make_rank(ctx, r)));
  }
  Completion completion;
  sim::spawn(engine,
             completion_watcher(rank_procs, engine, cluster, stoppers, &completion));
  if (mpi_timeout_s > 0) {
    sim::spawn(engine, progress_watchdog(engine, cluster, comm, rank_procs, stoppers,
                                         mpi_timeout_s, &completion));
  }

  // Structured mid-run abort shared by the cancellation, deadline, and
  // deadlock paths: snapshot the measurement window at the abort instant and
  // stop every daemon/sampler so no later event advances the clock.
  auto abort_run = [&](std::string why) {
    completion.failed = true;
    completion.failure = std::move(why);
    completion.t_end = engine.now();
    completion.energy_end = cluster.total_energy_joules();
    for (auto& stop : stoppers) stop();
    completion.done = true;
  };

  // Cancellation and wall-clock deadline checks run between event batches:
  // a pure wall-side read (no event scheduled, no RNG drawn), so a run
  // that is never cancelled stays bit-identical to an unbounded one.
  const auto wall_start = std::chrono::steady_clock::now();
  auto check_control = [&]() -> bool {  // true = keep running
    if (config.cancel != nullptr &&
        config.cancel->load(std::memory_order_relaxed)) {
      abort_run("run cancelled by caller");
      return false;
    }
    if (config.wall_deadline_s > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
              .count();
      if (elapsed > config.wall_deadline_s) {
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "wall-clock deadline exceeded: %.2f s elapsed against a "
                      "%.2f s budget",
                      elapsed, config.wall_deadline_s);
        abort_run(buf);
        return false;
      }
    }
    return true;
  };

  while (!completion.done) {
    if (!check_control()) break;
    if (engine.run(200'000) == 0) {
      if (plan.active()) {
        // Structured failure: a crashed node left the survivors blocked in
        // MPI with nothing else scheduled.
        abort_run("cluster deadlocked: ranks blocked in MPI with no events pending");
        break;
      }
      throw std::runtime_error("workload deadlocked: no events but ranks unfinished");
    }
  }

  const sim::SimTime t_end = completion.t_end;
  RunResult result;
  result.workload = workload.name;
  result.delay_s = sim::to_seconds(t_end - t_start);
  result.energy_j = completion.energy_end - e_start;
  result.failed = completion.failed;
  result.failure = completion.failure;

  if (fault_report.has_value()) {
    if (injector != nullptr) injector->finalize();
    fault_report->run_failed = completion.failed;
    fault_report->failure = completion.failure;
    result.fault_report = std::move(fault_report);
  }

  if (config.use_meters) {
    // Capacity differences were read at t_end by the completion watcher;
    // staleness at both ends (each value is from the last 15-20 s refresh)
    // largely cancels over long runs.
    double acpi_mwh = 0;
    for (int i = 0; i < cluster.size(); ++i) {
      acpi_mwh += acpi_start[i] - acpi_end[i];
    }
    result.energy_acpi_j = acpi_mwh * 3.6;
    // The Baytech unit reports completed one-minute windows; run the clock
    // past the next report so the window containing t_end is available.
    const sim::SimTime grace = t_end + 61 * sim::kSecond;
    if (engine.now() < grace) engine.run_until(grace);
    result.energy_baytech_j = cluster.baytech().estimate_energy_joules(t_start, t_end);
    cluster.baytech().stop_polling();
  }

  for (int i = 0; i < cluster.size(); ++i) {
    result.dvs_transitions += cluster.node(i).cpu().stats().transitions;
    result.mean_utilization += cluster.node(i).cpu().busy_weighted_ns() /
                               static_cast<double>(t_end - t_start) / cluster.size();
  }
  result.net_collisions = cluster.network().stats().collisions;
  result.messages = comm.stats().messages;
  result.events = static_cast<std::int64_t>(engine.events_processed());

  if (tracer) {
    result.profile = trace::analyze(*tracer);
    result.timeline = trace::render_timeline(*tracer);
  }

  if (config.profile && config.profile_analysis && tracer) {
    const auto& table = cluster.node(0).cpu().table();
    const int profile_mhz =
        config.static_mhz != 0 ? config.static_mhz : table.highest().freq_mhz;
    result.profiler = profiler::profile(*tracer, table, profile_mhz, result.delay_s,
                                        result.energy_j);
  }

  if (det != nullptr) {
    telemetry::RunCapture capture = det->take_capture();
    // Black box: a failed run dumps the last N causal steps at the failure
    // instant (watchdog-fallback dumps are in fault_report already).
    if (completion.failed && det->recorder() != nullptr) {
      capture.flight_recording =
          det->recorder()->dump_json(completion.failure, engine.now());
    }
    det->detach();
    result.determinism = std::move(capture);
  }

  if (hub != nullptr) {
    auto& reg = hub->registry();
    reg.set_help("run_delay_seconds", "Wall time from launch to last rank completion");
    reg.set_help("run_energy_joules", "Exact total system energy over the run window");
    reg.set_help("mpi_messages_total", "Point-to-point MPI messages delivered");
    reg.gauge("run_delay_seconds").set(result.delay_s);
    reg.gauge("run_energy_joules").set(result.energy_j);
    reg.counter("mpi_messages_total").inc(static_cast<double>(result.messages));
    if (result.profiler.has_value()) {
      reg.set_help("profiler_scope_energy_joules",
                   "Node energy attributed to trace scopes, per rank and category");
      reg.set_help("profiler_scope_seconds",
                   "Time attributed to trace scopes, per rank and category");
      const auto& attr = result.profiler->attribution;
      for (std::size_t r = 0; r < attr.ranks.size(); ++r) {
        for (int c = 0; c < 6; ++c) {
          const auto& cat = attr.ranks[r].by_cat[static_cast<std::size_t>(c)];
          if (cat.count == 0) continue;
          const telemetry::Labels labels = {
              {"rank", std::to_string(r)},
              {"category", trace::to_string(static_cast<trace::Cat>(c))}};
          reg.counter("profiler_scope_energy_joules", labels).inc(cat.joules);
          reg.counter("profiler_scope_seconds", labels).inc(cat.seconds);
        }
      }
    }
    auto snap = telemetry::make_snapshot(*hub, sampler.get());
    snap.chrome_trace_json = telemetry::to_chrome_json(
        snap, tracer.get(),
        result.determinism.has_value() ? &*result.determinism : nullptr);
    result.telemetry = std::move(snap);
  }

  // Failed or abandoned runs leave ranks suspended inside MPI waits; those
  // frames hold RAII guards over cluster objects, so destroy them here while
  // the cluster (declared above) is still alive rather than in ~Engine.
  engine.destroy_suspended_frames();
  return result;
}

}  // namespace pcd::core
