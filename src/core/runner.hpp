// PowerPack: the measured-run orchestrator (paper §4).
//
// A run builds a fresh cluster, applies the requested DVS strategy
// (CPUSPEED daemon, EXTERNAL static frequency, INTERNAL hooks), executes
// the workload's rank processes, and measures delay + total system energy.
// Energy comes from the exact per-node integrators; when `use_meters` is
// set, the run additionally follows the paper's ACPI battery protocol
// (charge / disconnect / 5-minute discharge / run / poll) and records the
// Baytech cross-check, so measurement error is reproduced too.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/workload.hpp"
#include "core/cpuspeed.hpp"
#include "core/predictor.hpp"
#include "fault/plan.hpp"
#include "fault/report.hpp"
#include "machine/cluster.hpp"
#include "profiler/profiler.hpp"
#include "telemetry/determinism.hpp"
#include "telemetry/options.hpp"
#include "telemetry/snapshot.hpp"
#include "trace/profile.hpp"

namespace pcd::core {

/// One structured configuration problem found by RunConfig::validate().
struct ConfigIssue {
  std::string field;    // e.g. "daemon/predictor", "slice_s"
  std::string message;  // human-readable explanation
};

/// Renders an issue list as a one-per-line string (for exception texts).
std::string describe(const std::vector<ConfigIssue>& issues);

struct RunConfig {
  std::uint64_t seed = 1;

  /// EXTERNAL control: set every node to this frequency before the run
  /// (0 = leave at the boot default, i.e. full speed).
  int static_mhz = 0;

  /// CPUSPEED strategy: run one daemon per node with these parameters.
  std::optional<CpuspeedParams> daemon;

  /// Phase-predictor strategy (future-work extension): one predicting
  /// daemon per node.  Mutually exclusive with `daemon`.
  std::optional<PhasePredictorParams> predictor;

  /// INTERNAL strategy: hooks invoked from inside the application at the
  /// paper's insertion points.
  apps::DvsHooks hooks;

  /// Collect an MPE-style trace and attach the profile to the result.
  bool collect_trace = false;

  /// Energy-attribution profiling: implies trace collection, attaches the
  /// energy probe to every scope, and fills RunResult::profiler with the
  /// attribution + cross-rank slack analysis (ready for profiler::advise).
  /// Pure observation — delay/energy/transitions are bit-identical to the
  /// unprofiled run.
  bool profile = false;

  /// With `profile`: also run the post-run batch analysis (scope capture,
  /// energy aggregation, cross-rank critical path) and fill
  /// RunResult::profiler.  Turn off to collect energy-annotated traces with
  /// collection-only overhead — every Record still carries joules/cycles and
  /// the flat RankProfile still reports per-rank energy, but the DAG pass is
  /// skipped and RunResult::profiler stays empty.  The overhead benchmark
  /// uses this split to gate the in-run cost separately from the analysis.
  bool profile_analysis = true;

  /// Telemetry layer: metrics registry, DVS decision log, time-series
  /// sampler; the result then carries a TelemetrySnapshot with Chrome
  /// trace / Prometheus / CSV exports available on it.
  telemetry::TelemetryOptions telemetry;

  /// Follow the full ACPI/Baytech measurement protocol (adds a 5-minute
  /// pre-discharge and meter polling; slower, quantized readings).
  bool use_meters = false;

  /// Determinism observability (src/telemetry/determinism.hpp): per-run
  /// digest streams + checkpoints, flight recorder, focused event capture.
  /// The default (all off) is zero-cost and bit-identical to a build
  /// without the observability layer.
  telemetry::DeterminismOptions determinism;

  /// Fault injection + resilience (src/fault).  The default (empty) plan is
  /// zero-cost: no RNG stream is drawn, nothing is scheduled, and results
  /// are bit-identical to a build without the fault layer.
  fault::FaultPlan faults;

  /// Cooperative cancellation: when set, the run loop re-checks the flag
  /// between event batches (every ~200k dispatched events) and converts a
  /// raised flag into a structured failure ("run cancelled") instead of
  /// finishing the simulation.  Checking is a pure wall-side read — no
  /// event is scheduled and no RNG is drawn — so a run whose flag never
  /// rises is bit-identical to one with no token attached.
  const std::atomic<bool>* cancel = nullptr;

  /// Wall-clock ceiling for this run in seconds (0 = none), checked at the
  /// same batch boundaries as `cancel`.  Exceeding it fails the run with a
  /// structured "wall-clock deadline exceeded" — the defense against stuck
  /// cells in long-running campaign services.  Like `cancel`, a run that
  /// finishes inside the deadline is bit-identical to an unbounded run.
  double wall_deadline_s = 0;

  /// Cluster template; node count is raised to the workload's rank count.
  machine::ClusterConfig cluster;

  /// Compute-phase slice length (see AppContext).
  double slice_s = 0.050;

  /// Parallel sharding (DESIGN.md §3.14).  1 (the default) runs the
  /// single-engine path — bit-identical to every release before sharding
  /// existed.  N > 1 partitions the cluster into N per-shard engines
  /// advancing under conservative lookahead derived from
  /// Network::min_latency(); results are deterministic across repetitions
  /// at any fixed shard count, but event interleaving (and therefore digest
  /// roots) legitimately differs between different shard counts.  The
  /// effective count is clamped to the workload's rank count.
  ///
  /// The observation layers (trace/profile/meters/telemetry/faults/digest/
  /// flight recorder) all work at shards > 1: each shard feeds its own
  /// collector instances from its local engine, and the driver merges them
  /// deterministically — stable (time, source shard, posting order) — after
  /// global completion, so the merged snapshot, exports, profiler result,
  /// and fault report are independent of the shard count that produced
  /// them.  Per-shard provenance lives only in explicit views
  /// (TelemetrySnapshot::shard_metrics, to_prometheus_sharded,
  /// chrome_trace_sharded_json, RunCapture::shard_parts).  validate()
  /// rejects non-positive values; the one residual single-engine-only
  /// layer is per-event capture (determinism.capture_begin/end and
  /// determinism.perturb_seq), which is tied to the global dispatch
  /// sequence that sharded execution deliberately abandons.
  int shards = 1;

  /// Checks the configuration for contradictions and returns every problem
  /// found (empty = valid).  `run_workload` calls this and refuses to start
  /// on a non-empty list, so a daemon+predictor conflict or a negative
  /// slice is a structured error instead of undefined behaviour.
  std::vector<ConfigIssue> validate() const;
};

struct RunResult {
  std::string workload;
  double delay_s = 0;        // wall time from launch to last rank completion
  double energy_j = 0;       // exact total system energy over the run window
  double energy_acpi_j = -1;    // as the ACPI protocol would report it
  double energy_baytech_j = -1; // Baytech per-minute estimate
  std::int64_t dvs_transitions = 0;
  std::int64_t net_collisions = 0;
  std::int64_t messages = 0;
  /// Engine events dispatched over the run — the simulator's unit of work
  /// (events / wall second is the throughput the perf gate tracks).
  std::int64_t events = 0;
  /// Mean /proc-style CPU utilization across nodes over the run — what the
  /// CPUSPEED daemon integrates; useful for diagnosing daemon behaviour.
  double mean_utilization = 0;
  std::optional<trace::TraceProfile> profile;
  std::string timeline;  // rendered trace, if collected
  /// Energy attribution + slack analysis (when RunConfig::profile is set);
  /// feed to profiler::advise() to derive an INTERNAL schedule.
  std::optional<profiler::ProfileResult> profiler;
  /// Everything the telemetry layer collected (when enabled): registry
  /// snapshot, decision log, completed transitions, sampler series, and a
  /// ready-rendered Chrome trace-event JSON.
  std::optional<telemetry::TelemetrySnapshot> telemetry;
  /// Structured failure instead of a silent infinite run: set when the MPI
  /// progress watchdog timed out or the cluster deadlocked under faults
  /// (delay/energy then cover launch -> failure detection).
  bool failed = false;
  std::string failure;
  /// Fault/resilience record (present whenever the fault layer was active).
  std::optional<fault::FaultReport> fault_report;
  /// Determinism capture (when RunConfig::determinism enabled anything):
  /// the RunDigest with its checkpoint trail, any focused event capture,
  /// and — on a failed run with the flight recorder on — the black-box
  /// JSON dump taken at the failure instant.
  std::optional<telemetry::RunCapture> determinism;
};

/// Executes one measured run.  Throws std::invalid_argument (with the
/// rendered issue list) when `config.validate()` is non-empty.
RunResult run_workload(const apps::Workload& workload, const RunConfig& config = {});

/// Fluent RunConfig construction with eager validation: setters record the
/// intent, `build()` runs RunConfig::validate() and throws
/// std::invalid_argument with the full structured issue list on any
/// contradiction (daemon+predictor, negative slice, ...).  `issues()`
/// exposes the same list without throwing, for callers that want to
/// surface errors instead of raising.
///
/// Repeated-trial and sweep execution live in campaign/ (run_trials,
/// sweep_static, ExperimentSpec): every multi-run shape is a campaign.
class RunConfigBuilder {
 public:
  RunConfigBuilder() = default;
  explicit RunConfigBuilder(RunConfig base) : cfg_(std::move(base)) {}

  RunConfigBuilder& seed(std::uint64_t s) { cfg_.seed = s; return *this; }
  RunConfigBuilder& static_mhz(int mhz) { cfg_.static_mhz = mhz; return *this; }
  RunConfigBuilder& daemon(CpuspeedParams p) { cfg_.daemon = p; return *this; }
  RunConfigBuilder& predictor(PhasePredictorParams p) { cfg_.predictor = p; return *this; }
  RunConfigBuilder& hooks(apps::DvsHooks h) { cfg_.hooks = std::move(h); return *this; }
  RunConfigBuilder& collect_trace(bool on = true) { cfg_.collect_trace = on; return *this; }
  RunConfigBuilder& profile(bool on = true) { cfg_.profile = on; return *this; }
  RunConfigBuilder& profile_analysis(bool on = true) {
    cfg_.profile_analysis = on;
    return *this;
  }
  RunConfigBuilder& telemetry(telemetry::TelemetryOptions t) { cfg_.telemetry = std::move(t); return *this; }
  RunConfigBuilder& use_meters(bool on = true) { cfg_.use_meters = on; return *this; }
  RunConfigBuilder& determinism(telemetry::DeterminismOptions d) {
    cfg_.determinism = d;
    return *this;
  }
  RunConfigBuilder& faults(fault::FaultPlan plan) { cfg_.faults = std::move(plan); return *this; }
  RunConfigBuilder& cancel(const std::atomic<bool>* token) { cfg_.cancel = token; return *this; }
  RunConfigBuilder& wall_deadline_s(double s) { cfg_.wall_deadline_s = s; return *this; }
  RunConfigBuilder& cluster(machine::ClusterConfig c) { cfg_.cluster = std::move(c); return *this; }
  RunConfigBuilder& slice_s(double s) { cfg_.slice_s = s; return *this; }
  RunConfigBuilder& shards(int n) { cfg_.shards = n; return *this; }

  /// Mutable access to the cluster/topology template, so call sites can
  /// adjust node counts or network parameters without abandoning the fluent
  /// chain:  RunConfigBuilder(base).shards(4).topology().nodes = 64;
  /// followed by more setters via a fresh reference.  The const overload
  /// supports inspection before build().
  machine::ClusterConfig& topology() { return cfg_.cluster; }
  const machine::ClusterConfig& topology() const { return cfg_.cluster; }

  /// The issues `build()` would throw on (empty = valid).
  std::vector<ConfigIssue> issues() const { return cfg_.validate(); }

  /// Validates and returns the finished config; throws on any issue.
  RunConfig build() const;

 private:
  RunConfig cfg_;
};

}  // namespace pcd::core
