// PowerPack: the measured-run orchestrator (paper §4).
//
// A run builds a fresh cluster, applies the requested DVS strategy
// (CPUSPEED daemon, EXTERNAL static frequency, INTERNAL hooks), executes
// the workload's rank processes, and measures delay + total system energy.
// Energy comes from the exact per-node integrators; when `use_meters` is
// set, the run additionally follows the paper's ACPI battery protocol
// (charge / disconnect / 5-minute discharge / run / poll) and records the
// Baytech cross-check, so measurement error is reproduced too.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/workload.hpp"
#include "core/cpuspeed.hpp"
#include "core/predictor.hpp"
#include "fault/plan.hpp"
#include "fault/report.hpp"
#include "machine/cluster.hpp"
#include "telemetry/options.hpp"
#include "telemetry/snapshot.hpp"
#include "trace/profile.hpp"

namespace pcd::core {

struct RunConfig {
  std::uint64_t seed = 1;

  /// EXTERNAL control: set every node to this frequency before the run
  /// (0 = leave at the boot default, i.e. full speed).
  int static_mhz = 0;

  /// CPUSPEED strategy: run one daemon per node with these parameters.
  std::optional<CpuspeedParams> daemon;

  /// Phase-predictor strategy (future-work extension): one predicting
  /// daemon per node.  Mutually exclusive with `daemon`.
  std::optional<PhasePredictorParams> predictor;

  /// INTERNAL strategy: hooks invoked from inside the application at the
  /// paper's insertion points.
  apps::DvsHooks hooks;

  /// Collect an MPE-style trace and attach the profile to the result.
  bool collect_trace = false;

  /// Telemetry layer: metrics registry, DVS decision log, time-series
  /// sampler; the result then carries a TelemetrySnapshot with Chrome
  /// trace / Prometheus / CSV exports available on it.
  telemetry::TelemetryOptions telemetry;

  /// Follow the full ACPI/Baytech measurement protocol (adds a 5-minute
  /// pre-discharge and meter polling; slower, quantized readings).
  bool use_meters = false;

  /// Fault injection + resilience (src/fault).  The default (empty) plan is
  /// zero-cost: no RNG stream is drawn, nothing is scheduled, and results
  /// are bit-identical to a build without the fault layer.
  fault::FaultPlan faults;

  /// Cluster template; node count is raised to the workload's rank count.
  machine::ClusterConfig cluster;

  /// Compute-phase slice length (see AppContext).
  double slice_s = 0.050;
};

struct RunResult {
  std::string workload;
  double delay_s = 0;        // wall time from launch to last rank completion
  double energy_j = 0;       // exact total system energy over the run window
  double energy_acpi_j = -1;    // as the ACPI protocol would report it
  double energy_baytech_j = -1; // Baytech per-minute estimate
  std::int64_t dvs_transitions = 0;
  std::int64_t net_collisions = 0;
  std::int64_t messages = 0;
  /// Mean /proc-style CPU utilization across nodes over the run — what the
  /// CPUSPEED daemon integrates; useful for diagnosing daemon behaviour.
  double mean_utilization = 0;
  std::optional<trace::TraceProfile> profile;
  std::string timeline;  // rendered trace, if collected
  /// Everything the telemetry layer collected (when enabled): registry
  /// snapshot, decision log, completed transitions, sampler series, and a
  /// ready-rendered Chrome trace-event JSON.
  std::optional<telemetry::TelemetrySnapshot> telemetry;
  /// Structured failure instead of a silent infinite run: set when the MPI
  /// progress watchdog timed out or the cluster deadlocked under faults
  /// (delay/energy then cover launch -> failure detection).
  bool failed = false;
  std::string failure;
  /// Fault/resilience record (present whenever the fault layer was active).
  std::optional<fault::FaultReport> fault_report;
};

/// Executes one measured run.
RunResult run_workload(const apps::Workload& workload, const RunConfig& config = {});

/// The paper's methodology: repeat >= `trials` times (different seeds) and
/// take the median delay/energy to reject outliers.
RunResult run_trials(const apps::Workload& workload, RunConfig config, int trials = 3);

}  // namespace pcd::core
