// The sharded run_workload path (DESIGN.md §3.14): drives N ShardedEngine
// shards through conservative-lookahead windows instead of one Engine.
//
// run_workload dispatches here when min(config.shards, workload.ranks) > 1;
// validate() has already rejected the single-engine observation layers
// (trace, profile, meters, telemetry, faults, non-digest determinism), so
// this driver only carries the measurement core: cluster construction,
// DVS strategies (static / CPUSPEED daemon / phase predictor), INTERNAL
// hooks, the MPI workload itself, and the digest tier of determinism
// observability (per-shard digests merged by telemetry::merge_digests).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/runner.hpp"
#include "machine/partition.hpp"
#include "mpi/sharded_comm.hpp"
#include "sim/process.hpp"
#include "sim/sharded.hpp"
#include "telemetry/determinism.hpp"

namespace pcd::core {

namespace {

struct ShardDone {
  bool done = false;
  sim::SimTime t_end = 0;
  double energy_end = 0;
};

// Per-shard completion watcher: joins the shard's rank processes, snapshots
// the shard clock/energy at its last completion, then stops the shard's
// daemons so no later poll advances that shard past the measurement window.
sim::Process shard_watcher(std::vector<sim::Process>& ranks, sim::Engine& engine,
                           machine::Cluster& cluster,
                           std::vector<std::function<void()>>& stoppers,
                           ShardDone* out) {
  for (auto& p : ranks) co_await p;
  out->t_end = engine.now();
  out->energy_end = cluster.total_energy_joules();
  for (auto& stop : stoppers) stop();
  out->done = true;
}

}  // namespace

RunResult run_workload_sharded(const apps::Workload& workload,
                               const RunConfig& config, int shards) {
  sim::ShardedEngine engines(shards, config.cluster.network.latency);

  // Digest-tier determinism: one collector per shard.  The constructor's
  // RNG install covers only this (driver) thread and stacking N of them
  // would chain dangling restores, so each collector releases it and the
  // engine re-installs the stream on whichever thread runs the shard's
  // windows.  Driver-thread construction draws are therefore not folded
  // into the RNG stream at shards > 1 — the event/power/MPI streams still
  // cover construction, and multi-shard digests are a different (per-count
  // deterministic) interleaving anyway, with no 1-shard identity to hold.
  std::vector<std::unique_ptr<telemetry::DeterminismCollector>> dets;
  if (config.determinism.any()) {
    dets.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      dets.push_back(std::make_unique<telemetry::DeterminismCollector>(
          engines.shard(s), config.determinism));
      dets.back()->release_rng();
      engines.set_rng_digest(s, dets.back()->rng_stream());
    }
  }

  const auto plan = machine::ShardPlan::contiguous(workload.ranks, shards);
  machine::ClusterConfig cc = config.cluster;
  cc.seed = config.seed * 0x9e3779b97f4a7c15ULL + 0x1234567;  // as unsharded
  auto clusters = machine::build_shard_clusters(engines, cc, plan);

  if (!dets.empty()) {
    for (int s = 0; s < shards; ++s) {
      for (int i = 0; i < clusters[static_cast<std::size_t>(s)]->size(); ++i) {
        // Nodes fold under their *global* id, so the per-shard power streams
        // name the same machine the rank numbering does.
        clusters[static_cast<std::size_t>(s)]->node(i).power().set_digest(
            dets[static_cast<std::size_t>(s)]->power_stream(),
            plan.global_of(s, i));
      }
    }
  }

  // --- strategy setup (serial, before any parallel window) ---
  if (config.static_mhz != 0) {
    for (int s = 0; s < shards; ++s) {
      clusters[static_cast<std::size_t>(s)]->set_all_cpuspeed(config.static_mhz);
      engines.shard(s).run_until(engines.shard(s).now() + sim::kMillisecond);
    }
  }

  std::vector<std::unique_ptr<CpuspeedDaemon>> daemons;
  std::vector<std::unique_ptr<PhasePredictorDaemon>> predictors;
  std::vector<std::vector<std::function<void()>>> stoppers(
      static_cast<std::size_t>(shards));
  if (config.daemon.has_value()) {
    for (int s = 0; s < shards; ++s) {
      auto& cluster = *clusters[static_cast<std::size_t>(s)];
      auto stagger_rng = cluster.rng_stream();
      for (int i = 0; i < cluster.size(); ++i) {
        const auto offset = static_cast<sim::SimDuration>(
            stagger_rng.uniform(0.0, config.daemon->interval_s) * 1e9);
        daemons.push_back(std::make_unique<CpuspeedDaemon>(
            engines.shard(s), cluster.node(i), *config.daemon, offset));
        daemons.back()->start();
        stoppers[static_cast<std::size_t>(s)].push_back(
            [d = daemons.back().get()] { d->stop(); });
      }
    }
  }
  if (config.predictor.has_value()) {
    for (int s = 0; s < shards; ++s) {
      auto& cluster = *clusters[static_cast<std::size_t>(s)];
      auto stagger_rng = cluster.rng_stream();
      for (int i = 0; i < cluster.size(); ++i) {
        const auto offset = static_cast<sim::SimDuration>(
            stagger_rng.uniform(0.0, config.predictor->interval_s) * 1e9);
        predictors.push_back(std::make_unique<PhasePredictorDaemon>(
            engines.shard(s), cluster.node(i), *config.predictor, offset));
        predictors.back()->start();
        stoppers[static_cast<std::size_t>(s)].push_back(
            [d = predictors.back().get()] { d->stop(); });
      }
    }
  }

  std::vector<machine::Cluster*> cluster_ptrs;
  cluster_ptrs.reserve(clusters.size());
  for (auto& c : clusters) cluster_ptrs.push_back(c.get());
  mpi::ShardedComm comm(engines, cluster_ptrs, plan);
  if (!dets.empty()) {
    for (int s = 0; s < shards; ++s) {
      comm.set_digest(s, dets[static_cast<std::size_t>(s)]->mpi_stream());
    }
  }

  apps::AppContext ctx;
  ctx.comm = &comm;
  ctx.hooks = &config.hooks;
  ctx.slice_s = config.slice_s;

  // --- launch ---
  sim::SimTime t_start = 0;
  for (int s = 0; s < shards; ++s) {
    t_start = std::max(t_start, engines.shard(s).now());
  }
  std::vector<double> e_start(static_cast<std::size_t>(shards), 0);
  for (int s = 0; s < shards; ++s) {
    e_start[static_cast<std::size_t>(s)] =
        clusters[static_cast<std::size_t>(s)]->total_energy_joules();
  }

  std::vector<std::vector<sim::Process>> shard_ranks(
      static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    shard_ranks[static_cast<std::size_t>(s)].reserve(
        static_cast<std::size_t>(plan.count(s)));
  }
  for (int r = 0; r < workload.ranks; ++r) {
    const int s = plan.shard_of(r);
    shard_ranks[static_cast<std::size_t>(s)].push_back(
        sim::spawn(engines.shard(s), workload.make_rank(ctx, r)));
  }
  std::vector<ShardDone> done(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    sim::spawn(engines.shard(s),
               shard_watcher(shard_ranks[static_cast<std::size_t>(s)],
                             engines.shard(s), *clusters[static_cast<std::size_t>(s)],
                             stoppers[static_cast<std::size_t>(s)],
                             &done[static_cast<std::size_t>(s)]));
  }

  // --- run windows; cancel/deadline/completion checks at every barrier ---
  bool aborted = false;
  std::string abort_why;
  const auto wall_start = std::chrono::steady_clock::now();
  auto on_barrier = [&](sim::SimTime) -> bool {
    if (config.cancel != nullptr &&
        config.cancel->load(std::memory_order_relaxed)) {
      aborted = true;
      abort_why = "run cancelled by caller";
      return false;
    }
    if (config.wall_deadline_s > 0) {
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - wall_start)
                                 .count();
      if (elapsed > config.wall_deadline_s) {
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "wall-clock deadline exceeded: %.2f s elapsed against a "
                      "%.2f s budget",
                      elapsed, config.wall_deadline_s);
        aborted = true;
        abort_why = buf;
        return false;
      }
    }
    for (const auto& d : done) {
      if (!d.done) return true;
    }
    return false;  // every shard finished — stop promptly
  };
  const sim::ShardedEngine::RunStats run_stats =
      engines.run(sim::ShardedEngine::kNoLimit, on_barrier);

  bool all_done = true;
  for (const auto& d : done) all_done = all_done && d.done;
  if (!all_done && !aborted) {
    // Queues drained with ranks still suspended: same condition the
    // unsharded driver reports as a deadlock (no fault layer here).
    throw std::runtime_error(
        "workload deadlocked: no events but ranks unfinished");
  }
  if (aborted) {
    for (int s = 0; s < shards; ++s) {
      auto& d = done[static_cast<std::size_t>(s)];
      if (d.done) continue;
      d.t_end = engines.shard(s).now();
      d.energy_end = clusters[static_cast<std::size_t>(s)]->total_energy_joules();
      for (auto& stop : stoppers[static_cast<std::size_t>(s)]) stop();
      d.done = true;
    }
  }

  // --- assemble the result ---
  sim::SimTime t_end = t_start;
  RunResult result;
  result.workload = workload.name;
  result.failed = aborted;
  result.failure = abort_why;
  for (int s = 0; s < shards; ++s) {
    const auto& d = done[static_cast<std::size_t>(s)];
    t_end = std::max(t_end, d.t_end);
    result.energy_j += d.energy_end - e_start[static_cast<std::size_t>(s)];
  }
  result.delay_s = sim::to_seconds(t_end - t_start);
  for (int s = 0; s < shards; ++s) {
    auto& cluster = *clusters[static_cast<std::size_t>(s)];
    for (int i = 0; i < cluster.size(); ++i) {
      result.dvs_transitions += cluster.node(i).cpu().stats().transitions;
      result.mean_utilization += cluster.node(i).cpu().busy_weighted_ns() /
                                 static_cast<double>(t_end - t_start) /
                                 workload.ranks;
    }
    result.net_collisions += cluster.network().stats().collisions;
  }
  result.messages = comm.stats().messages;
  result.events = static_cast<std::int64_t>(run_stats.events);

  if (!dets.empty()) {
    std::vector<telemetry::RunDigest> parts;
    parts.reserve(dets.size());
    for (auto& det : dets) {
      parts.push_back(det->take_capture().digest);
      det->detach();
    }
    telemetry::RunCapture capture;
    capture.digest = telemetry::merge_digests(parts);
    result.determinism = std::move(capture);
  }

  // Aborted runs leave ranks suspended inside MPI waits; their frames hold
  // RAII guards over cluster objects, so destroy them while the clusters
  // (declared above, destroyed first) are still alive.
  for (int s = 0; s < shards; ++s) {
    engines.shard(s).destroy_suspended_frames();
  }
  return result;
}

}  // namespace pcd::core
