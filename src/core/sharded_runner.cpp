// The sharded run_workload path (DESIGN.md §3.14): drives N ShardedEngine
// shards through conservative-lookahead windows instead of one Engine.
//
// run_workload dispatches here when min(config.shards, workload.ranks) > 1.
// Every observation layer of the single-engine driver is carried: each
// shard gets its own collector instances — telemetry hub + sampler, tracer
// + energy probe, fault injector/checkpoint/watchdogs, ACPI/Baytech meter
// protocol, digest collector + flight recorder — fed only from the shard's
// local engine, then merged deterministically at run end in stable
// (time, shard order, posting order):
//   - telemetry:   telemetry::merge_snapshots (per-shard parts + one
//                  driver-side run-level part);
//   - trace:       trace::Tracer::absorb per rank row + sort_messages;
//   - faults:      fault::split_plan going in, fault::merge_reports out;
//   - energy:      per-lane joule terms snapshotted at each shard's end
//                  time and re-folded in global lane order, reproducing
//                  NodeStateArena::total_joules()'s addition order;
//   - digests:     telemetry::merge_digests (per-shard parts kept in
//                  RunCapture::shard_parts for tools/pcd_diff).
// The residual single-engine limit is focused per-event capture /
// perturb_seq (validate() still rejects those at shards > 1): dispatch
// ordinals are per-shard, so no machine-wide capture window exists.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "core/runner.hpp"
#include "fault/injector.hpp"
#include "fault/watchdog.hpp"
#include "machine/partition.hpp"
#include "mpi/sharded_comm.hpp"
#include "sim/process.hpp"
#include "sim/sharded.hpp"
#include "telemetry/determinism.hpp"
#include "telemetry/export.hpp"

namespace pcd::core {

namespace {

// Per-lane cumulative joule terms at the cluster's current instant: the
// exact doubles NodeStateArena::total_joules() folds, captured so the
// driver can rebuild the machine-wide sum in global lane order even though
// shards freeze their integrators at different local end times.
std::vector<double> lane_energy_terms(machine::Cluster& cluster) {
  cluster.total_energy_joules();  // accrues every lane to the shard clock
  const auto& arena = cluster.arena();
  std::vector<double> terms(static_cast<std::size_t>(arena.size()));
  for (int l = 0; l < arena.size(); ++l) {
    const double* j = arena.joules(l);
    terms[static_cast<std::size_t>(l)] = j[0] + j[1] + j[2] + j[3] + j[4];
  }
  return terms;
}

struct ShardDone {
  bool done = false;
  sim::SimTime t_end = 0;
  std::vector<double> lane_terms;  // per-lane joule sums at t_end
};

// Per-shard completion watcher: joins the shard's rank processes and
// snapshots the shard clock/energy at its last completion.  The shard's
// services (daemons, sampler, checkpoint sweep, injector) keep running —
// the single-engine driver stops them at *global* completion, so a shard
// that finishes early must keep collecting until every shard is done or
// its observation record would fall short of the 1-shard run's.  The
// driver runs the stoppers after the barrier loop exits.
sim::Process shard_watcher(std::vector<sim::Process>& ranks, sim::Engine& engine,
                           machine::Cluster& cluster, ShardDone* out) {
  for (auto& p : ranks) co_await p;
  if (out->done) co_return;  // the driver already aborted this shard
  out->t_end = engine.now();
  out->lane_terms = lane_energy_terms(cluster);
  out->done = true;
}

// Energy probe behind scope attribution, shard-local: scopes carry
// machine-wide rank ids, the cluster indexes its own nodes.
struct ShardProbe final : trace::Tracer::Probe {
  ShardProbe(machine::Cluster& c, int base) : cluster(&c), rank_base(base) {}
  machine::Cluster* cluster;
  int rank_base;
  trace::Tracer::EnergySample sample(int rank) override {
    auto& node = cluster->node(rank - rank_base);
    const auto e = node.power().energy_breakdown();
    return {e.total(), e.cpu, node.cpu().retired_sensitive_cycles()};
  }
};

}  // namespace

RunResult run_workload_sharded(const apps::Workload& workload,
                               const RunConfig& config, int shards) {
  sim::ShardedEngine engines(shards, config.cluster.network.latency);
  const std::size_t ns = static_cast<std::size_t>(shards);

  // Digest-tier determinism: one collector per shard.  The constructor's
  // RNG install covers only this (driver) thread and stacking N of them
  // would chain dangling restores, so each collector releases it and the
  // engine re-installs the stream on whichever thread runs the shard's
  // windows.  Driver-thread construction draws are therefore not folded
  // into the RNG stream at shards > 1 — the event/power/MPI streams still
  // cover construction, and multi-shard digests are a different (per-count
  // deterministic) interleaving anyway, with no 1-shard identity to hold.
  std::vector<std::unique_ptr<telemetry::DeterminismCollector>> dets;
  if (config.determinism.any()) {
    dets.reserve(ns);
    for (int s = 0; s < shards; ++s) {
      dets.push_back(std::make_unique<telemetry::DeterminismCollector>(
          engines.shard(s), config.determinism));
      dets.back()->release_rng();
      engines.set_rng_digest(s, dets.back()->rng_stream());
    }
  }

  const auto plan = machine::ShardPlan::contiguous(workload.ranks, shards);
  machine::ClusterConfig cc = config.cluster;
  cc.seed = config.seed * 0x9e3779b97f4a7c15ULL + 0x1234567;  // as unsharded
  auto clusters = machine::build_shard_clusters(engines, cc, plan);

  if (!dets.empty()) {
    for (int s = 0; s < shards; ++s) {
      for (int i = 0; i < clusters[static_cast<std::size_t>(s)]->size(); ++i) {
        // Nodes fold under their *global* id, so the per-shard power streams
        // name the same machine the rank numbering does.
        clusters[static_cast<std::size_t>(s)]->node(i).power().set_digest(
            dets[static_cast<std::size_t>(s)]->power_stream(),
            plan.global_of(s, i));
      }
      // Black box, per shard: same state providers as the single-engine
      // driver, reading the shard's engine/cluster/digest.
      telemetry::FlightRecorder* fr = dets[static_cast<std::size_t>(s)]->recorder();
      if (fr == nullptr) continue;
      sim::Engine* eng = &engines.shard(s);
      machine::Cluster* cl = clusters[static_cast<std::size_t>(s)].get();
      fr->add_state("engine", [eng] {
        char b[160];
        std::snprintf(b, sizeof b,
                      "{\"t_ns\":%llu,\"pending_events\":%zu,"
                      "\"events_processed\":%zu}",
                      static_cast<unsigned long long>(eng->now()),
                      eng->pending_events(), eng->events_processed());
        return std::string(b);
      });
      fr->add_state("rng_draws", [] {
        return std::to_string(sim::RngTelemetry::draws);
      });
      fr->add_state("power", [cl] {
        char b[64];
        std::snprintf(b, sizeof b, "{\"total_joules\":%.9f}",
                      cl->total_energy_joules());
        return std::string(b);
      });
      fr->add_state("digest", [d = dets[static_cast<std::size_t>(s)].get()] {
        const auto& dg = d->digest();
        char b[160];
        std::snprintf(b, sizeof b,
                      "{\"root\":\"%016llx\",\"events\":%llu,\"rng\":%llu,"
                      "\"power\":%llu,\"mpi\":%llu}",
                      static_cast<unsigned long long>(dg.root()),
                      static_cast<unsigned long long>(
                          dg.streams[telemetry::RunDigest::kEvents].count),
                      static_cast<unsigned long long>(
                          dg.streams[telemetry::RunDigest::kRng].count),
                      static_cast<unsigned long long>(
                          dg.streams[telemetry::RunDigest::kPower].count),
                      static_cast<unsigned long long>(
                          dg.streams[telemetry::RunDigest::kMpi].count));
        return std::string(b);
      });
    }
  }

  // --- telemetry: one hub per shard, merged at run end ---
  std::vector<std::unique_ptr<telemetry::Hub>> hubs(ns);
  if (config.telemetry.enabled) {
    for (int s = 0; s < shards; ++s) {
      hubs[static_cast<std::size_t>(s)] = std::make_unique<telemetry::Hub>();
      clusters[static_cast<std::size_t>(s)]->attach_telemetry(
          hubs[static_cast<std::size_t>(s)].get());
    }
  }

  // --- measurement protocol (paper §4.2), per shard ---
  if (config.use_meters) {
    for (int s = 0; s < shards; ++s) {
      auto& cluster = *clusters[static_cast<std::size_t>(s)];
      for (int i = 0; i < cluster.size(); ++i) {
        auto& b = cluster.node(i).battery();
        b.recharge_full();
        b.disconnect_ac();
        b.start_polling();
      }
      cluster.baytech().start_polling();
      engines.shard(s).run_until(engines.shard(s).now() + 300 * sim::kSecond);
    }
  }

  // --- strategy setup (serial, before any parallel window) ---
  if (config.static_mhz != 0) {
    for (int s = 0; s < shards; ++s) {
      clusters[static_cast<std::size_t>(s)]->set_all_cpuspeed(config.static_mhz);
      engines.shard(s).run_until(engines.shard(s).now() + sim::kMillisecond);
    }
  }

  std::vector<std::vector<std::unique_ptr<CpuspeedDaemon>>> daemons(ns);
  std::vector<std::vector<std::unique_ptr<PhasePredictorDaemon>>> predictors(ns);
  std::vector<std::vector<std::function<void()>>> stoppers(ns);
  if (config.daemon.has_value()) {
    for (int s = 0; s < shards; ++s) {
      auto& cluster = *clusters[static_cast<std::size_t>(s)];
      auto stagger_rng = cluster.rng_stream();
      for (int i = 0; i < cluster.size(); ++i) {
        const auto offset = static_cast<sim::SimDuration>(
            stagger_rng.uniform(0.0, config.daemon->interval_s) * 1e9);
        daemons[static_cast<std::size_t>(s)].push_back(
            std::make_unique<CpuspeedDaemon>(engines.shard(s), cluster.node(i),
                                             *config.daemon, offset));
        daemons[static_cast<std::size_t>(s)].back()->start();
        stoppers[static_cast<std::size_t>(s)].push_back(
            [d = daemons[static_cast<std::size_t>(s)].back().get()] { d->stop(); });
      }
    }
  }
  if (config.predictor.has_value()) {
    for (int s = 0; s < shards; ++s) {
      auto& cluster = *clusters[static_cast<std::size_t>(s)];
      auto stagger_rng = cluster.rng_stream();
      for (int i = 0; i < cluster.size(); ++i) {
        const auto offset = static_cast<sim::SimDuration>(
            stagger_rng.uniform(0.0, config.predictor->interval_s) * 1e9);
        predictors[static_cast<std::size_t>(s)].push_back(
            std::make_unique<PhasePredictorDaemon>(
                engines.shard(s), cluster.node(i), *config.predictor, offset));
        predictors[static_cast<std::size_t>(s)].back()->start();
        stoppers[static_cast<std::size_t>(s)].push_back(
            [d = predictors[static_cast<std::size_t>(s)].back().get()] { d->stop(); });
      }
    }
  }

  // --- fault layer, per shard (src/fault) ---
  //
  // The machine-wide plan is split along shard boundaries (split_plan):
  // node-targeted events localize to the owning shard, cluster-wide events
  // replicate (recording only on shard 0), pick-a-node hazards replicate
  // with their MTBF scaled to the shard's node share.  Reports merge at
  // run end; per-shard checkpoint services sweep in lockstep (same
  // interval, same launch instant), so the merged checkpoint count is the
  // max, not the sum.
  const fault::FaultPlan& fplan = config.faults;
  std::vector<fault::FaultReport> fault_reports(ns);
  std::vector<std::unique_ptr<fault::CheckpointService>> ckpts(ns);
  std::vector<std::unique_ptr<fault::FaultInjector>> injectors(ns);
  std::vector<std::unique_ptr<fault::DaemonWatchdog>> watchdogs;
  double mpi_timeout_s = fplan.resilience.mpi_timeout_s;
  if (mpi_timeout_s == 0) mpi_timeout_s = fplan.injects() ? 60.0 : -1.0;
  if (fplan.active()) {
    auto parts = fault::split_plan(fplan, plan.first);
    for (int s = 0; s < shards; ++s) {
      auto& cluster = *clusters[static_cast<std::size_t>(s)];
      auto& report = fault_reports[static_cast<std::size_t>(s)];
      if (fplan.resilience.checkpoint_interval_s > 0) {
        ckpts[static_cast<std::size_t>(s)] = std::make_unique<fault::CheckpointService>(
            engines.shard(s), cluster, fplan.resilience.checkpoint_interval_s,
            fplan.resilience.checkpoint_cost_s, &report,
            hubs[static_cast<std::size_t>(s)].get());
        stoppers[static_cast<std::size_t>(s)].push_back(
            [c = ckpts[static_cast<std::size_t>(s)].get()] { c->stop(); });
      }
      if (fplan.injects()) {
        // Every shard gets an injector even when its part is empty:
        // finalize() folds per-node downtime and dropped-DVS-write counts
        // into the report, and those must cover the whole machine.
        injectors[static_cast<std::size_t>(s)] = std::make_unique<fault::FaultInjector>(
            engines.shard(s), cluster, std::move(parts[static_cast<std::size_t>(s)]),
            cluster.rng_stream(), &report);
        auto* inj = injectors[static_cast<std::size_t>(s)].get();
        inj->attach_telemetry(hubs[static_cast<std::size_t>(s)].get());
        if (ckpts[static_cast<std::size_t>(s)] != nullptr) {
          inj->set_checkpoint_service(ckpts[static_cast<std::size_t>(s)].get());
        }
        if (!daemons[static_cast<std::size_t>(s)].empty()) {
          inj->set_daemon_wedger(
              [ds = &daemons[static_cast<std::size_t>(s)]](int n) {
                ds->at(static_cast<std::size_t>(n))->stop();
              });
        } else if (!predictors[static_cast<std::size_t>(s)].empty()) {
          inj->set_daemon_wedger(
              [ds = &predictors[static_cast<std::size_t>(s)]](int n) {
                ds->at(static_cast<std::size_t>(n))->stop();
              });
        }
        stoppers[static_cast<std::size_t>(s)].push_back([inj] { inj->disarm(); });
      }
      if (fplan.resilience.watchdog) {
        for (int i = 0; i < cluster.size(); ++i) {
          fault::DaemonHooks hooks;
          if (!daemons[static_cast<std::size_t>(s)].empty()) {
            auto* d = daemons[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)].get();
            hooks.polls = [d] { return d->polls(); };
            hooks.restart = [d] { d->start(); };
            hooks.disable = [d] { d->stop(); };
            hooks.expected_poll_interval_s = config.daemon->interval_s;
          } else if (!predictors[static_cast<std::size_t>(s)].empty()) {
            auto* d = predictors[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)].get();
            hooks.polls = [d] { return d->polls(); };
            hooks.restart = [d] { d->start(); };
            hooks.disable = [d] { d->stop(); };
            hooks.expected_poll_interval_s = config.predictor->interval_s;
          }
          watchdogs.push_back(std::make_unique<fault::DaemonWatchdog>(
              engines.shard(s), cluster.node(i), fplan.resilience.watchdog_params,
              hooks, &report, hubs[static_cast<std::size_t>(s)].get()));
          if (!dets.empty()) {
            watchdogs.back()->set_flight_recorder(
                dets[static_cast<std::size_t>(s)]->recorder());
          }
          watchdogs.back()->start();
          stoppers[static_cast<std::size_t>(s)].push_back(
              [w = watchdogs.back().get()] { w->stop(); });
        }
      }
    }
  }

  // --- trace/profile: one tracer per shard, sized for the machine-wide
  // rank space (rows are disjoint across shards), bound to the shard's
  // engine for timestamps; absorbed into one tracer at run end ---
  std::vector<std::unique_ptr<trace::Tracer>> tracers(ns);
  std::vector<std::unique_ptr<ShardProbe>> probes(ns);
  if (config.collect_trace || config.profile) {
    for (int s = 0; s < shards; ++s) {
      tracers[static_cast<std::size_t>(s)] =
          std::make_unique<trace::Tracer>(engines.shard(s), workload.ranks);
      if (config.profile) {
        probes[static_cast<std::size_t>(s)] = std::make_unique<ShardProbe>(
            *clusters[static_cast<std::size_t>(s)],
            static_cast<int>(plan.first[static_cast<std::size_t>(s)]));
        tracers[static_cast<std::size_t>(s)]->set_probe(
            probes[static_cast<std::size_t>(s)].get());
      }
    }
  }

  // Per-shard samplers feed the shard's registry with machine-wide node
  // labels (node_base); series concatenate in shard order at merge time.
  std::vector<std::unique_ptr<telemetry::TimeSeriesSampler>> samplers(ns);
  if (config.telemetry.enabled && config.telemetry.sample) {
    for (int s = 0; s < shards; ++s) {
      machine::Cluster* cl = clusters[static_cast<std::size_t>(s)].get();
      samplers[static_cast<std::size_t>(s)] =
          std::make_unique<telemetry::TimeSeriesSampler>(
              engines.shard(s), cl->size(), config.telemetry.sampler,
              [cl](int i) {
                auto& node = cl->node(i);
                const auto bd = node.power().breakdown();
                telemetry::NodeProbe p;
                p.freq_mhz = node.cpu().frequency_mhz();
                p.busy_weighted_ns = node.cpu().busy_weighted_ns();
                p.watts_cpu = bd.cpu;
                p.watts_memory = bd.memory;
                p.watts_disk = bd.disk;
                p.watts_nic = bd.nic;
                p.watts_other = bd.other;
                return p;
              },
              &hubs[static_cast<std::size_t>(s)]->registry(),
              static_cast<int>(plan.first[static_cast<std::size_t>(s)]));
      samplers[static_cast<std::size_t>(s)]->set_tick_prelude(
          [cl] { cl->arena().refresh_all(); });
      samplers[static_cast<std::size_t>(s)]->start();
      stoppers[static_cast<std::size_t>(s)].push_back(
          [sm = samplers[static_cast<std::size_t>(s)].get()] { sm->stop(); });
    }
  }

  std::vector<machine::Cluster*> cluster_ptrs;
  cluster_ptrs.reserve(clusters.size());
  for (auto& c : clusters) cluster_ptrs.push_back(c.get());
  mpi::ShardedComm comm(engines, cluster_ptrs, plan);
  for (int s = 0; s < shards; ++s) {
    if (!dets.empty()) {
      comm.set_digest(s, dets[static_cast<std::size_t>(s)]->mpi_stream());
    }
    if (tracers[static_cast<std::size_t>(s)] != nullptr) {
      comm.set_tracer(s, tracers[static_cast<std::size_t>(s)].get());
    }
  }

  // One AppContext per shard: ranks on shard s log scopes (by machine-wide
  // rank id) into shard s's tracer.
  std::vector<apps::AppContext> ctxs(ns);
  for (int s = 0; s < shards; ++s) {
    ctxs[static_cast<std::size_t>(s)].comm = &comm;
    ctxs[static_cast<std::size_t>(s)].tracer = tracers[static_cast<std::size_t>(s)].get();
    ctxs[static_cast<std::size_t>(s)].hooks = &config.hooks;
    ctxs[static_cast<std::size_t>(s)].slice_s = config.slice_s;
  }

  // --- launch ---
  sim::SimTime t_start = 0;
  for (int s = 0; s < shards; ++s) {
    t_start = std::max(t_start, engines.shard(s).now());
  }
  std::vector<std::vector<double>> e_start(ns);
  for (int s = 0; s < shards; ++s) {
    e_start[static_cast<std::size_t>(s)] =
        lane_energy_terms(*clusters[static_cast<std::size_t>(s)]);
  }
  std::vector<std::vector<double>> acpi_start(ns), acpi_end(ns);
  if (config.use_meters) {
    for (int s = 0; s < shards; ++s) {
      auto& cluster = *clusters[static_cast<std::size_t>(s)];
      auto& a0 = acpi_start[static_cast<std::size_t>(s)];
      auto& a1 = acpi_end[static_cast<std::size_t>(s)];
      a0.resize(static_cast<std::size_t>(cluster.size()));
      a1.resize(static_cast<std::size_t>(cluster.size()));
      for (int i = 0; i < cluster.size(); ++i) {
        a0[static_cast<std::size_t>(i)] =
            cluster.node(i).battery().reported_remaining_mwh();
      }
      stoppers[static_cast<std::size_t>(s)].push_back([cl = &cluster, pa = &a1] {
        for (int i = 0; i < cl->size(); ++i) {
          (*pa)[static_cast<std::size_t>(i)] =
              cl->node(i).battery().reported_remaining_mwh();
          cl->node(i).battery().stop_polling();
        }
      });
    }
  }

  // Arm the resilience/injection machinery right at launch so scripted
  // fault times are relative to the application's start.  Shard clocks are
  // equal here (all pre-run advances are identical per shard), so the
  // lockstep-checkpoint assumption behind the merge holds.
  for (int s = 0; s < shards; ++s) {
    if (ckpts[static_cast<std::size_t>(s)] != nullptr) {
      ckpts[static_cast<std::size_t>(s)]->start();
    }
    if (injectors[static_cast<std::size_t>(s)] != nullptr) {
      injectors[static_cast<std::size_t>(s)]->arm();
    }
  }

  std::vector<std::vector<sim::Process>> shard_ranks(ns);
  for (int s = 0; s < shards; ++s) {
    shard_ranks[static_cast<std::size_t>(s)].reserve(
        static_cast<std::size_t>(plan.count(s)));
  }
  for (int r = 0; r < workload.ranks; ++r) {
    const int s = plan.shard_of(r);
    shard_ranks[static_cast<std::size_t>(s)].push_back(sim::spawn(
        engines.shard(s),
        workload.make_rank(ctxs[static_cast<std::size_t>(s)], r)));
  }
  std::vector<ShardDone> done(ns);
  for (int s = 0; s < shards; ++s) {
    sim::spawn(engines.shard(s),
               shard_watcher(shard_ranks[static_cast<std::size_t>(s)],
                             engines.shard(s), *clusters[static_cast<std::size_t>(s)],
                             &done[static_cast<std::size_t>(s)]));
  }

  // --- run windows; cancel/deadline/progress/completion checks at every
  // barrier (the barrier is the sharded stand-in for the single-engine
  // driver's 200k-event control checks and its MPI progress watchdog —
  // a pure driver-side read, no event scheduled, no RNG drawn) ---
  bool aborted = false;
  std::string abort_why;
  const auto wall_start = std::chrono::steady_clock::now();
  auto progress_signature = [&] {
    std::int64_t work = 0;
    for (int s = 0; s < shards; ++s) {
      auto& cluster = *clusters[static_cast<std::size_t>(s)];
      for (int i = 0; i < cluster.size(); ++i) {
        work += cluster.node(i).cpu().stats().work_completed;
      }
    }
    std::int64_t done_ranks = 0;
    for (const auto& procs : shard_ranks) {
      for (const auto& p : procs) done_ranks += p.done() ? 1 : 0;
    }
    return std::tuple{comm.stats().messages, work, done_ranks};
  };
  auto last_sig = progress_signature();
  sim::SimTime last_change = t_start;
  auto on_barrier = [&](sim::SimTime t) -> bool {
    if (config.cancel != nullptr &&
        config.cancel->load(std::memory_order_relaxed)) {
      aborted = true;
      abort_why = "run cancelled by caller";
      return false;
    }
    if (config.wall_deadline_s > 0) {
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - wall_start)
                                 .count();
      if (elapsed > config.wall_deadline_s) {
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "wall-clock deadline exceeded: %.2f s elapsed against a "
                      "%.2f s budget",
                      elapsed, config.wall_deadline_s);
        aborted = true;
        abort_why = buf;
        return false;
      }
    }
    if (mpi_timeout_s > 0) {
      const auto cur = progress_signature();
      if (cur != last_sig) {
        last_sig = cur;
        last_change = t;
      } else if (sim::to_seconds(t - last_change) >= mpi_timeout_s) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "MPI progress timeout: no message, work, or rank "
                      "completion for %.1f s (%lld/%d ranks finished)",
                      mpi_timeout_s, static_cast<long long>(std::get<2>(cur)),
                      workload.ranks);
        aborted = true;
        abort_why = buf;
        return false;
      }
    }
    for (const auto& d : done) {
      if (!d.done) return true;
    }
    return false;  // every shard finished — stop promptly
  };
  const sim::ShardedEngine::RunStats run_stats =
      engines.run(sim::ShardedEngine::kNoLimit, on_barrier);

  bool all_done = true;
  for (const auto& d : done) all_done = all_done && d.done;
  if (!all_done && !aborted) {
    if (fplan.active()) {
      // Structured failure: a crashed node left the survivors blocked in
      // MPI with nothing else scheduled (same condition the single-engine
      // driver converts into a failed RunResult).
      aborted = true;
      abort_why = "cluster deadlocked: ranks blocked in MPI with no events pending";
    } else {
      throw std::runtime_error(
          "workload deadlocked: no events but ranks unfinished");
    }
  }
  if (aborted) {
    for (int s = 0; s < shards; ++s) {
      auto& d = done[static_cast<std::size_t>(s)];
      if (d.done) continue;
      d.t_end = engines.shard(s).now();
      d.lane_terms = lane_energy_terms(*clusters[static_cast<std::size_t>(s)]);
      d.done = true;
    }
  }
  // Global completion: stop every shard's services now, mirroring the
  // single-engine completion watcher (which runs its stoppers when the
  // *last* rank finishes, not when any one node goes idle).
  for (int s = 0; s < shards; ++s) {
    for (auto& stop : stoppers[static_cast<std::size_t>(s)]) stop();
  }

  // --- assemble the result ---
  sim::SimTime t_end = t_start;
  for (const auto& d : done) t_end = std::max(t_end, d.t_end);
  RunResult result;
  result.workload = workload.name;
  result.failed = aborted;
  result.failure = abort_why;
  result.delay_s = sim::to_seconds(t_end - t_start);
  // Machine-wide energy fold: each total walks every lane in global order
  // (shards are contiguous node ranges), so the addition order — and the
  // doubles — match a single arena's total_joules() at the same instants.
  double e_end_total = 0, e_start_total = 0;
  for (const auto& d : done) {
    for (const double v : d.lane_terms) e_end_total += v;
  }
  for (const auto& terms : e_start) {
    for (const double v : terms) e_start_total += v;
  }
  result.energy_j = e_end_total - e_start_total;

  if (fplan.active()) {
    for (auto& inj : injectors) {
      if (inj != nullptr) inj->finalize();
    }
    auto merged = fault::merge_reports(std::move(fault_reports));
    merged.run_failed = result.failed;
    merged.failure = result.failure;
    result.fault_report = std::move(merged);
  }

  if (config.use_meters) {
    double acpi_mwh = 0;
    for (int s = 0; s < shards; ++s) {
      const auto& a0 = acpi_start[static_cast<std::size_t>(s)];
      const auto& a1 = acpi_end[static_cast<std::size_t>(s)];
      for (std::size_t i = 0; i < a0.size(); ++i) acpi_mwh += a0[i] - a1[i];
    }
    result.energy_acpi_j = acpi_mwh * 3.6;
    // The Baytech units report completed one-minute windows; run each shard
    // past the next report so the window containing t_end is available.
    // All cross-shard traffic is over (every rank joined), so advancing a
    // shard alone only drains its local meter events.
    const sim::SimTime grace = t_end + 61 * sim::kSecond;
    for (int s = 0; s < shards; ++s) {
      if (engines.shard(s).now() < grace) engines.shard(s).run_until(grace);
      result.energy_baytech_j +=
          clusters[static_cast<std::size_t>(s)]->baytech().estimate_energy_joules(
              t_start, t_end);
      clusters[static_cast<std::size_t>(s)]->baytech().stop_polling();
    }
  }

  for (int s = 0; s < shards; ++s) {
    auto& cluster = *clusters[static_cast<std::size_t>(s)];
    for (int i = 0; i < cluster.size(); ++i) {
      result.dvs_transitions += cluster.node(i).cpu().stats().transitions;
      result.mean_utilization += cluster.node(i).cpu().busy_weighted_ns() /
                                 static_cast<double>(t_end - t_start) /
                                 workload.ranks;
    }
    result.net_collisions += cluster.network().stats().collisions;
  }
  result.messages = comm.stats().messages;
  result.events = static_cast<std::int64_t>(run_stats.events);

  // Trace merge: per-rank rows are disjoint (each shard traced only its own
  // ranks), messages re-sort by send time — the order one engine would have
  // logged them in.
  std::optional<trace::Tracer> merged_tracer;
  if (config.collect_trace || config.profile) {
    merged_tracer.emplace(engines.shard(0), workload.ranks);
    for (int s = 0; s < shards; ++s) {
      merged_tracer->absorb(*tracers[static_cast<std::size_t>(s)]);
    }
    merged_tracer->sort_messages();
    result.profile = trace::analyze(*merged_tracer);
    result.timeline = trace::render_timeline(*merged_tracer);
  }
  if (config.profile && config.profile_analysis && merged_tracer.has_value()) {
    const auto& table = clusters.front()->node(0).cpu().table();
    const int profile_mhz =
        config.static_mhz != 0 ? config.static_mhz : table.highest().freq_mhz;
    result.profiler = profiler::profile(*merged_tracer, table, profile_mhz,
                                        result.delay_s, result.energy_j);
  }

  if (!dets.empty()) {
    std::vector<telemetry::RunDigest> parts;
    parts.reserve(dets.size());
    telemetry::RunCapture capture;
    for (int s = 0; s < shards; ++s) {
      auto& det = dets[static_cast<std::size_t>(s)];
      parts.push_back(det->take_capture().digest);
      if (result.failed && det->recorder() != nullptr) {
        if (!capture.flight_recording.empty()) capture.flight_recording += "\n";
        capture.flight_recording +=
            det->recorder()->dump_json(result.failure, engines.shard(s).now());
      }
      det->detach();
    }
    capture.digest = telemetry::merge_digests(parts);
    capture.shard_parts = std::move(parts);
    result.determinism = std::move(capture);
  }

  if (config.telemetry.enabled) {
    // Driver-side run-level part: the gauges/counters the single-engine
    // driver writes into its one hub at run end.
    telemetry::Hub run_hub;
    auto& reg = run_hub.registry();
    reg.set_help("run_delay_seconds", "Wall time from launch to last rank completion");
    reg.set_help("run_energy_joules", "Exact total system energy over the run window");
    reg.set_help("mpi_messages_total", "Point-to-point MPI messages delivered");
    reg.gauge("run_delay_seconds").set(result.delay_s);
    reg.gauge("run_energy_joules").set(result.energy_j);
    reg.counter("mpi_messages_total").inc(static_cast<double>(result.messages));
    if (result.profiler.has_value()) {
      reg.set_help("profiler_scope_energy_joules",
                   "Node energy attributed to trace scopes, per rank and category");
      reg.set_help("profiler_scope_seconds",
                   "Time attributed to trace scopes, per rank and category");
      const auto& attr = result.profiler->attribution;
      for (std::size_t r = 0; r < attr.ranks.size(); ++r) {
        for (int c = 0; c < 6; ++c) {
          const auto& cat = attr.ranks[r].by_cat[static_cast<std::size_t>(c)];
          if (cat.count == 0) continue;
          const telemetry::Labels labels = {
              {"rank", std::to_string(r)},
              {"category", trace::to_string(static_cast<trace::Cat>(c))}};
          reg.counter("profiler_scope_energy_joules", labels).inc(cat.joules);
          reg.counter("profiler_scope_seconds", labels).inc(cat.seconds);
        }
      }
    }
    std::vector<telemetry::TelemetrySnapshot> snap_parts;
    snap_parts.reserve(ns + 1);
    // Keep each shard's raw registry for the per-shard provenance views
    // before the parts are consumed by the merge.
    std::vector<std::vector<telemetry::MetricSample>> shard_metrics;
    shard_metrics.reserve(ns);
    for (int s = 0; s < shards; ++s) {
      snap_parts.push_back(telemetry::make_snapshot(
          *hubs[static_cast<std::size_t>(s)],
          samplers[static_cast<std::size_t>(s)].get()));
      shard_metrics.push_back(snap_parts.back().metrics);
    }
    snap_parts.push_back(telemetry::make_snapshot(run_hub, nullptr));
    auto snap = telemetry::merge_snapshots(std::move(snap_parts));
    snap.shard_metrics = std::move(shard_metrics);
    snap.rank_shards.resize(static_cast<std::size_t>(workload.ranks));
    for (int r = 0; r < workload.ranks; ++r) {
      snap.rank_shards[static_cast<std::size_t>(r)] = plan.shard_of(r);
    }
    snap.chrome_trace_json = telemetry::to_chrome_json(
        snap, merged_tracer.has_value() ? &*merged_tracer : nullptr,
        result.determinism.has_value() ? &*result.determinism : nullptr);
    if (merged_tracer.has_value()) {
      snap.chrome_trace_sharded_json = telemetry::to_chrome_json(
          snap, &*merged_tracer,
          result.determinism.has_value() ? &*result.determinism : nullptr,
          &snap.rank_shards);
    }
    result.telemetry = std::move(snap);
  }

  // Aborted runs leave ranks suspended inside MPI waits; their frames hold
  // RAII guards over cluster objects, so destroy them while the clusters
  // (declared above, destroyed first) are still alive.
  for (int s = 0; s < shards; ++s) {
    engines.shard(s).destroy_suspended_frames();
  }
  return result;
}

}  // namespace pcd::core
