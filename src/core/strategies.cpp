#include "core/strategies.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "cpu/operating_point.hpp"

namespace pcd::core {

Crescendo StaticSweep::normalized() const {
  if (points.empty()) throw std::invalid_argument("empty sweep");
  const SweepPoint* base = nullptr;
  for (const auto& p : points) {
    if (p.freq_mhz == base_mhz) base = &p;
  }
  if (base == nullptr) throw std::invalid_argument("sweep missing the base frequency");
  Crescendo c;
  for (const auto& p : points) {
    c[p.freq_mhz] = EnergyDelay{p.result.energy_j / base->result.energy_j,
                                p.result.delay_s / base->result.delay_s};
  }
  return c;
}

ExternalDecision run_external(const apps::Workload& workload, const RunConfig& config,
                              const StaticSweep& sweep, Metric metric) {
  const auto choice = select_operating_point(sweep.normalized(), metric);
  RunConfig c = config;
  c.static_mhz = choice.freq_mhz;
  ExternalDecision d;
  d.choice = choice;
  d.result = run_workload(workload, c);
  return d;
}

namespace {

// All INTERNAL hooks funnel through here so the decision log attributes
// them uniformly (cause = Internal, detail = insertion-point label).
void internal_set(mpi::CommBase& comm, int rank, int mhz, const char* insertion_point) {
  comm.node(rank).set_cpuspeed(mhz, telemetry::DvsCause::Internal,
                               std::numeric_limits<double>::quiet_NaN(),
                               insertion_point);
}

}  // namespace

apps::DvsHooks internal_phase_hooks(int high_mhz, int low_mhz) {
  apps::DvsHooks h;
  h.before_marked_comm = [low_mhz](mpi::CommBase& comm, int rank) {
    internal_set(comm, rank, low_mhz, "before marked comm (Fig. 10)");
  };
  h.after_marked_comm = [high_mhz](mpi::CommBase& comm, int rank) {
    internal_set(comm, rank, high_mhz, "after marked comm (Fig. 10)");
  };
  // Start every rank at the high speed, like the paper's Figure 10 preamble.
  h.at_start = [high_mhz](mpi::CommBase& comm, int rank) {
    internal_set(comm, rank, high_mhz, "at start");
  };
  return h;
}

apps::DvsHooks internal_rank_speed_hooks(std::function<int(int)> mhz_of_rank) {
  apps::DvsHooks h;
  h.at_start = [fn = std::move(mhz_of_rank)](mpi::CommBase& comm, int rank) {
    internal_set(comm, rank, fn(rank), "per-rank speed (Fig. 13)");
  };
  return h;
}

apps::DvsHooks internal_comm_scaling_hooks(int high_mhz, int low_mhz) {
  apps::DvsHooks h;
  h.at_start = [high_mhz](mpi::CommBase& comm, int rank) {
    internal_set(comm, rank, high_mhz, "at start");
  };
  h.before_any_comm = [low_mhz](mpi::CommBase& comm, int rank) {
    internal_set(comm, rank, low_mhz, "before any comm (rejected policy 1)");
  };
  h.after_any_comm = [high_mhz](mpi::CommBase& comm, int rank) {
    internal_set(comm, rank, high_mhz, "after any comm (rejected policy 1)");
  };
  return h;
}

std::vector<int> select_per_rank_speeds(const trace::TraceProfile& profile,
                                        const cpu::OperatingPointTable& table,
                                        double usable_slack) {
  std::vector<int> speeds;
  speeds.reserve(profile.ranks.size());
  const int f_max = table.highest().freq_mhz;
  for (const auto& rank : profile.ranks) {
    const double busy = rank.comp_s() + rank.send_s + rank.recv_s;
    const double wait = rank.wait_s + rank.collective_s;
    if (busy <= 0) {
      speeds.push_back(table.lowest().freq_mhz);
      continue;
    }
    // Allowed busy-time stretch: extra <= usable_slack * wait.
    const double max_stretch = 1.0 + usable_slack * wait / busy;
    int chosen = f_max;
    for (const auto& op : table.points()) {  // ascending
      if (static_cast<double>(f_max) / op.freq_mhz <= max_stretch) {
        chosen = op.freq_mhz;
        break;
      }
    }
    speeds.push_back(chosen);
  }
  return speeds;
}

apps::DvsHooks hooks_for(const profiler::InternalSchedule& schedule) {
  switch (schedule.mode) {
    case profiler::InternalSchedule::Mode::Phase:
      return internal_phase_hooks(schedule.high_mhz, schedule.low_mhz);
    case profiler::InternalSchedule::Mode::PerRank:
      return internal_rank_speed_hooks([speeds = schedule.rank_mhz](int rank) {
        // Defensive modulo: a schedule derived from an N-rank profile may be
        // applied to a run with a different rank count.
        return speeds.empty() ? 0
                              : speeds[static_cast<std::size_t>(rank) % speeds.size()];
      });
    case profiler::InternalSchedule::Mode::None:
      break;
  }
  return {};
}

apps::DvsHooks internal_wait_scaling_hooks(int high_mhz, int low_mhz) {
  apps::DvsHooks h;
  h.at_start = [high_mhz](mpi::CommBase& comm, int rank) {
    internal_set(comm, rank, high_mhz, "at start");
  };
  h.before_wait = [low_mhz](mpi::CommBase& comm, int rank) {
    internal_set(comm, rank, low_mhz, "before wait (rejected policy 2)");
  };
  h.after_wait = [high_mhz](mpi::CommBase& comm, int rank) {
    internal_set(comm, rank, high_mhz, "after wait (rejected policy 2)");
  };
  return h;
}

}  // namespace pcd::core
