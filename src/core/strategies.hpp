// The three distributed DVS scheduling strategies (paper §3) as library
// building blocks:
//   - CPUSPEED DAEMON: see core/cpuspeed.hpp; enabled via RunConfig::daemon.
//   - EXTERNAL: sweep static frequencies (black-box profiling), build the
//     energy-delay crescendo, select an operating point with a fused metric.
//   - INTERNAL: DvsHooks factories matching the paper's source insertions
//     (FT Figure 10; CG Figure 13; plus the two rejected CG phase policies).
#pragma once

#include <functional>
#include <vector>

#include "apps/workload.hpp"
#include "core/metrics.hpp"
#include "core/runner.hpp"
#include "profiler/profiler.hpp"

namespace pcd::core {

/// One measured point of a static-frequency sweep.
struct SweepPoint {
  int freq_mhz = 0;
  RunResult result;
};

struct StaticSweep {
  std::vector<SweepPoint> points;  // ascending frequency; last = baseline
  int base_mhz = 0;                // normalization point (highest frequency)

  /// Normalized crescendo (energy/delay relative to the highest frequency).
  Crescendo normalized() const;
};

// EXTERNAL profiling (the static-frequency sweep itself) lives in
// campaign/sweeps.hpp: campaign::sweep_static expands to a one-axis
// ExperimentSpec and can execute the points concurrently.

/// EXTERNAL selection + run: choose the operating point minimizing `metric`
/// over the sweep and return the measured result at that point.
struct ExternalDecision {
  OperatingChoice choice;
  RunResult result;
};
ExternalDecision run_external(const apps::Workload& workload, const RunConfig& config,
                              const StaticSweep& sweep, Metric metric);

// ---- INTERNAL hook factories -------------------------------------------------

/// Figure 10: set_cpuspeed(low) before the profiled dominant communication
/// phase, set_cpuspeed(high) after it.
apps::DvsHooks internal_phase_hooks(int high_mhz, int low_mhz);

/// Figure 13: per-rank static speeds chosen from the trace asymmetry.
apps::DvsHooks internal_rank_speed_hooks(std::function<int(int rank)> mhz_of_rank);

/// Rejected CG policy #1 (§5.3.2): scale down around *every* communication.
apps::DvsHooks internal_comm_scaling_hooks(int high_mhz, int low_mhz);

/// Rejected CG policy #2 (§5.3.2): scale down around every MPI_Wait.
apps::DvsHooks internal_wait_scaling_hooks(int high_mhz, int low_mhz);

/// Automatic heterogeneous selection (paper footnote 6: "different nodes
/// at different speeds ... requires further profiling which is actually
/// accomplished by the INTERNAL approach"): derive a per-rank frequency
/// from a trace profile.  A rank may slow down until the projected stretch
/// of its busy time fills `usable_slack` of its observed wait time.
std::vector<int> select_per_rank_speeds(const trace::TraceProfile& profile,
                                        const cpu::OperatingPointTable& table,
                                        double usable_slack = 0.5);

/// Closes the profile -> schedule loop: turn an advisor-derived
/// InternalSchedule into the DvsHooks the paper's hand insertions would
/// have produced (Phase -> internal_phase_hooks; PerRank ->
/// internal_rank_speed_hooks; None -> empty hooks, run unchanged).
apps::DvsHooks hooks_for(const profiler::InternalSchedule& schedule);

}  // namespace pcd::core
