#include "cpu/cpu.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace pcd::cpu {

const char* to_string(CpuState s) {
  switch (s) {
    case CpuState::Idle: return "Idle";
    case CpuState::OnChip: return "OnChip";
    case CpuState::MemStall: return "MemStall";
    case CpuState::CommProc: return "CommProc";
    case CpuState::WaitPoll: return "WaitPoll";
    case CpuState::Transition: return "Transition";
    case CpuState::CkptStall: return "CkptStall";
    case CpuState::Off: return "Off";
  }
  return "?";
}

Cpu::Cpu(sim::Scheduler& engine, OperatingPointTable table, CpuConfig config, sim::Rng rng)
    : engine_(engine),
      table_(std::move(table)),
      config_(config),
      rng_(rng),
      op_index_(table_.size() - 1),  // boot at full speed, like the paper's baseline
      last_touch_(engine.now()) {
  stats_.op_residency_ns.assign(table_.size(), 0);
}

void Cpu::begin_work(const WorkAwaitable& w, std::coroutine_handle<> h) {
  ActiveWork a;
  a.kind = w.kind;
  a.timed = (w.kind == CpuState::MemStall);
  a.remaining_cycles = w.cycles;
  a.remaining_ns = w.fixed;
  a.act_override = w.act_override;
  a.waiter = h;
  if (active_.has_value()) {
    work_queue_.push_back(a);  // runs when the current unit finishes
    return;
  }
  active_ = a;
  if (!transitioning_ && !halted()) start_segment();
  // else: the work starts when the transition stall / outage ends.
}

void Cpu::start_segment() {
  assert(active_.has_value() && !active_->segment_running);
  set_state(active_->kind);
  active_->segment_start = engine_.now_cached();
  active_->segment_freq_mhz = frequency_mhz();
  active_->segment_eff = efficiency_;
  sim::SimDuration dur;
  if (active_->timed) {
    dur = active_->remaining_ns;  // memory stalls are frequency/eff-insensitive
  } else {
    // cycles at f MHz: 1 cycle = 1000/f ns; a straggler retires cycles at
    // eff * f.  (eff == 1 reproduces the healthy arithmetic bit-exactly.)
    dur = static_cast<sim::SimDuration>(
        std::llround(active_->remaining_cycles * 1000.0 /
                     (active_->segment_freq_mhz * active_->segment_eff)));
  }
  if (dur < 0) dur = 0;
  active_->segment_running = true;
  active_->finish_event = engine_.schedule_in(dur, [this] { finish_work(); }, "cpu.finish_work");
}

void Cpu::pause_segment() {
  if (!active_.has_value() || !active_->segment_running) return;
  engine_.cancel(active_->finish_event);
  const sim::SimDuration elapsed = engine_.now_cached() - active_->segment_start;
  if (active_->timed) {
    active_->remaining_ns = std::max<sim::SimDuration>(0, active_->remaining_ns - elapsed);
  } else {
    const double consumed = static_cast<double>(elapsed) * active_->segment_freq_mhz *
                            active_->segment_eff * 1e-3;
    active_->remaining_cycles = std::max(0.0, active_->remaining_cycles - consumed);
  }
  active_->segment_running = false;
}

void Cpu::finish_work() {
  assert(active_.has_value());
  auto waiter = active_->waiter;
  // Let observers integrate the finished interval while the work (and its
  // activity override) is still visible; set_state() alone would not fire
  // when the next unit has the same kind.
  notify();
  touch_accounting();
  ++stats_.work_completed;
  active_.reset();
  if (!work_queue_.empty()) {
    active_ = work_queue_.front();
    work_queue_.pop_front();
    if (!transitioning_ && !halted()) start_segment();
  } else {
    set_state(base_state());
  }
  waiter.resume();
}

void Cpu::set_frequency_mhz(int freq_mhz) {
  const std::size_t idx = table_.index_of(freq_mhz);
  if (dvs_stuck_) {
    // The /proc write is silently lost (wedged driver); the daemon gets no
    // error and the operating point stays pinned.
    if (idx != (transitioning_ ? transition_to_ : op_index_)) {
      ++stats_.dvs_requests_dropped;
    }
    return;
  }
  if (offline_) {
    ++stats_.dvs_requests_dropped;  // nobody home to take the write
    return;
  }
  if (transitioning_ || ckpt_stall_) {
    pending_target_ = idx;  // coalesce to the latest request
    return;
  }
  if (idx == op_index_) return;  // writing the current speed costs nothing
  begin_transition(idx);
}

void Cpu::begin_transition(std::size_t target) {
  transitioning_ = true;
  transition_from_ = op_index_;
  transition_to_ = target;
  pause_segment();
  set_state(CpuState::Transition);
  const auto span = static_cast<std::uint64_t>(config_.transition_max - config_.transition_min);
  const sim::SimDuration latency =
      config_.transition_min +
      (span == 0 ? 0 : static_cast<sim::SimDuration>(rng_.uniform_int(span + 1)));
  stats_.transition_stall_ns += latency;
  transition_event_ = engine_.schedule_in(latency, [this] { end_transition(); }, "cpu.end_transition");
  sync_mirror();
}

void Cpu::end_transition() {
  notify();            // observers integrate the stall at the old (higher) voltage
  touch_accounting();  // charge the stall to the old operating point
  transition_event_.reset();
  op_index_ = transition_to_;
  ++stats_.transitions;
  transitioning_ = false;
  sync_mirror();
  if (telemetry_ != nullptr) {
    telemetry_->record_transition({engine_.now_cached(), telemetry_node_,
                                   table_.at(transition_from_).freq_mhz,
                                   table_.at(transition_to_).freq_mhz});
  }
  if (pending_target_.has_value()) {
    const std::size_t next = *pending_target_;
    pending_target_.reset();
    if (next != op_index_) {
      begin_transition(next);
      return;
    }
  }
  if (ckpt_stall_) {
    // The mode change completed mid-checkpoint; execution stays stalled
    // until checkpoint_stall_end().
    set_state(CpuState::CkptStall);
    return;
  }
  if (active_.has_value()) {
    start_segment();
  } else {
    set_state(base_state());
  }
}

void Cpu::enter_wait() {
  ++wait_depth_;
  if (!active_.has_value() && !transitioning_ && !halted()) set_state(CpuState::WaitPoll);
}

void Cpu::leave_wait() {
  assert(wait_depth_ > 0);
  --wait_depth_;
  if (!active_.has_value() && !transitioning_ && !halted()) set_state(base_state());
}

void Cpu::power_off() {
  if (offline_) return;
  pause_segment();
  if (transitioning_) {
    // The mode transition dies with the power: cancel its completion and
    // stay at the pre-transition operating point for the reboot.
    if (transition_event_.has_value()) engine_.cancel(*transition_event_);
    transition_event_.reset();
    transitioning_ = false;
  }
  pending_target_.reset();
  ckpt_stall_ = false;
  // Order matters for energy: set_state() notifies observers, which must
  // integrate the elapsed interval at the pre-crash power level — the node
  // reads 0 W only once `offline_` is set afterwards.
  set_state(CpuState::Off);
  offline_ = true;
  sync_mirror();
}

void Cpu::power_on() {
  if (!offline_) return;
  // Integrate the outage interval while the node still reads offline (0 W),
  // then boot at full speed like the initial power-up.
  notify();
  touch_accounting();
  offline_ = false;
  op_index_ = table_.size() - 1;
  sync_mirror();
  if (active_.has_value()) {
    start_segment();  // resume (re-price) the work interrupted by the crash
  } else {
    set_state(base_state());
  }
}

void Cpu::checkpoint_stall_begin() {
  if (halted()) return;
  pause_segment();
  ckpt_stall_ = true;
  sync_mirror();
  // Mid-transition the stall state takes over when the transition ends.
  if (!transitioning_) set_state(CpuState::CkptStall);
}

void Cpu::checkpoint_stall_end() {
  if (!ckpt_stall_ || offline_) return;
  ckpt_stall_ = false;
  sync_mirror();
  if (transitioning_) return;  // end_transition() resumes execution
  if (pending_target_.has_value()) {
    const std::size_t next = *pending_target_;
    pending_target_.reset();
    if (next != op_index_) {
      begin_transition(next);
      return;
    }
  }
  if (active_.has_value()) {
    start_segment();
  } else {
    set_state(base_state());
  }
}

void Cpu::set_efficiency(double eff) {
  eff = std::clamp(eff, 0.01, 1.0);
  if (eff == efficiency_) return;
  pause_segment();
  // Close the accounting interval at the old retirement rate; the busy and
  // residency views are rate-independent, but retired cycles are not.
  touch_accounting();
  efficiency_ = eff;
  if (active_.has_value() && !transitioning_ && !halted()) start_segment();
}

CpuState Cpu::base_state() const {
  return wait_depth_ > 0 ? CpuState::WaitPoll : CpuState::Idle;
}

void Cpu::set_state(CpuState s) {
  if (s == state_) return;
  notify();  // observers integrate the elapsed interval at the old power level
  touch_accounting();
  state_ = s;
}

void Cpu::touch_accounting() {
  const sim::SimTime now = engine_.now_cached();
  const sim::SimDuration dt = now - last_touch_;
  if (dt > 0) {
    busy_weighted_accum_ns_ += static_cast<double>(dt) * busy_weight(state_);
    stats_.op_residency_ns[op_index_] += dt;
    if (state_ == CpuState::OnChip || state_ == CpuState::CommProc) {
      // ns * MHz * 1e-3 = cycles; stragglers retire at eff * f.
      retired_cycles_accum_ += static_cast<double>(dt) *
                               table_.get(op_index_).freq_mhz * efficiency_ * 1e-3;
    }
  }
  last_touch_ = now;
}

double Cpu::busy_weight(CpuState s) const {
  switch (s) {
    case CpuState::Idle: return 0.0;
    case CpuState::Off: return 0.0;
    case CpuState::WaitPoll: return config_.waitpoll_busy_fraction;
    default: return 1.0;  // CkptStall: the checkpoint writer looks busy to /proc
  }
}

const OperatingPoint& Cpu::power_op() const {
  if (transitioning_) {
    const OperatingPoint& a = table_.get(transition_from_);
    const OperatingPoint& b = table_.get(transition_to_);
    return a.voltage >= b.voltage ? a : b;
  }
  return table_.get(op_index_);
}

double Cpu::activity() const {
  if (active_.has_value() && state_ == active_->kind && active_->act_override >= 0) {
    return active_->act_override;
  }
  switch (state_) {
    case CpuState::Idle: return config_.act_idle;
    case CpuState::OnChip: return config_.act_onchip;
    case CpuState::MemStall: return config_.act_memstall;
    case CpuState::CommProc: return config_.act_commproc;
    case CpuState::Transition: return config_.act_transition;
    case CpuState::WaitPoll: return config_.act_waitpoll;
    case CpuState::CkptStall: return config_.act_checkpoint;
    case CpuState::Off: return 0.0;
  }
  return config_.act_idle;
}

double Cpu::mem_activity() const {
  switch (state_) {
    case CpuState::MemStall: return 1.0;
    case CpuState::OnChip: return 0.30;
    case CpuState::CommProc: return 0.20;
    case CpuState::WaitPoll: return 0.08;
    case CpuState::CkptStall: return 0.50;  // checkpoint image streams through DRAM
    case CpuState::Off: return 0.0;
    default: return 0.05;
  }
}

double Cpu::busy_weighted_ns() const {
  const sim::SimDuration dt = engine_.now_cached() - last_touch_;
  return busy_weighted_accum_ns_ + static_cast<double>(dt) * busy_weight(state_);
}

double Cpu::retired_sensitive_cycles() const {
  double cycles = retired_cycles_accum_;
  if (state_ == CpuState::OnChip || state_ == CpuState::CommProc) {
    const sim::SimDuration dt = engine_.now_cached() - last_touch_;
    cycles += static_cast<double>(dt) * table_.get(op_index_).freq_mhz * efficiency_ * 1e-3;
  }
  return cycles;
}

}  // namespace pcd::cpu
