// The per-node CPU model: a preemptible work executor with DVS.
//
// A node's single MPI process drives the CPU through three kinds of work:
//   - on-chip work, measured in cycles: duration scales as 1/f,
//   - memory-stall work, measured in time: frequency-insensitive,
//   - protocol (communication) processing, in cycles: the per-message CPU
//     cost of the MPI/TCP stack.
// While the process blocks inside MPI it holds a WaitScope: MPICH 1.2.5's
// progress engine alternates polling and sleeping, so the CPU is neither
// busy nor idle — a configurable duty cycle (waitpoll_busy_fraction) feeds
// both /proc-style utilization (what the CPUSPEED daemon samples) and the
// power model.
//
// DVS transitions stall the CPU for a bounded latency (paper §2 footnote 2:
// 20–30 µs observed, ~10 µs manufacturer floor) at the *higher* of the two
// supply voltages; in-flight work is paused and exactly re-priced at the
// new frequency.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "cpu/operating_point.hpp"
#include "sim/callback.hpp"
#include "sim/scheduler.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "telemetry/hub.hpp"

namespace pcd::cpu {

enum class CpuState {
  Idle,
  OnChip,
  MemStall,
  CommProc,
  WaitPoll,
  Transition,
  CkptStall,  // blocked in a coordinated checkpoint write
  Off,        // powered off (crash, battery exhaustion)
};

const char* to_string(CpuState s);

/// Tunable behaviour of the CPU model.
struct CpuConfig {
  /// Bounds on the DVS mode-transition stall; a latency is drawn uniformly
  /// from [min, max] per transition (deterministic per node seed).
  sim::SimDuration transition_min = sim::from_micros(10.0);
  sim::SimDuration transition_max = sim::from_micros(30.0);

  /// Fraction of an MPI blocking wait the progress engine spends runnable
  /// (polling select / copying packets) as seen by /proc/stat.
  double waitpoll_busy_fraction = 0.35;

  /// Power activity factors per state (A in P ~ A*C*V^2*f).
  double act_onchip = 1.00;
  double act_memstall = 0.30;
  double act_commproc = 0.85;
  double act_idle = 0.18;
  double act_transition = 0.90;
  /// Effective power activity while blocked in MPI: the progress engine
  /// spins through select/memcpy, keeping the core largely active even
  /// though /proc shows only `waitpoll_busy_fraction` as runnable.
  double act_waitpoll = 0.90;
  /// Power activity while writing a coordinated checkpoint (disk/NFS I/O
  /// with memory traffic; the core is mostly stalled).
  double act_checkpoint = 0.60;
};

/// Cumulative counters exposed for reports and tests.
struct CpuStats {
  std::int64_t transitions = 0;
  sim::SimDuration transition_stall_ns = 0;
  std::vector<sim::SimDuration> op_residency_ns;  // indexed like the OP table
  /// Work units (compute slices, stalls, protocol chunks) run to completion
  /// — a progress signal the MPI-timeout watchdog can difference.
  std::int64_t work_completed = 0;
  /// set_frequency_mhz() writes silently lost to a stuck DVS driver or a
  /// powered-off node.
  std::int64_t dvs_requests_dropped = 0;
};

class Cpu {
 public:
  Cpu(sim::Scheduler& engine, OperatingPointTable table, CpuConfig config, sim::Rng rng);

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  // ---- work API ----
  //
  // The CPU runs one unit of work at a time; additional requests (e.g. the
  // protocol work of an isend issued while compute is in flight) queue FIFO.

  struct [[nodiscard]] WorkAwaitable {
    Cpu* cpu;
    CpuState kind;
    double cycles;             // for OnChip / CommProc
    sim::SimDuration fixed;    // for MemStall
    double act_override = -1;  // per-phase power activity (< 0 = state default)

    bool await_ready() const { return cycles <= 0 && fixed <= 0; }
    void await_suspend(std::coroutine_handle<> h) { cpu->begin_work(*this, h); }
    void await_resume() const {}
  };

  /// Executes `cycles` of on-chip work (duration = cycles / f).
  WorkAwaitable run_onchip_cycles(double cycles) {
    return WorkAwaitable{this, CpuState::OnChip, cycles, 0};
  }
  /// On-chip work sized as `seconds` at the table's highest frequency.
  WorkAwaitable run_onchip_seconds_at_max(double seconds) {
    return run_onchip_cycles(seconds * table_.highest().freq_mhz * 1e6);
  }
  /// Frequency-insensitive memory-stall time.  `act_override` sets the
  /// power activity of the stall (e.g. cache-miss-heavy compute keeps the
  /// core nearly fully active; streaming stalls leave it mostly idle).
  WorkAwaitable run_memstall(sim::SimDuration ns, double act_override = -1) {
    return WorkAwaitable{this, CpuState::MemStall, 0, ns, act_override};
  }
  /// Communication protocol processing (cycles; scales 1/f).
  WorkAwaitable run_commproc_cycles(double cycles) {
    return WorkAwaitable{this, CpuState::CommProc, cycles, 0};
  }

  /// RAII marker for "blocked inside MPI": while alive (and no work or
  /// transition is active) the CPU reports the WaitPoll state.
  class WaitScope {
   public:
    explicit WaitScope(Cpu& cpu) : cpu_(&cpu) { cpu_->enter_wait(); }
    ~WaitScope() { if (cpu_ != nullptr) cpu_->leave_wait(); }
    WaitScope(WaitScope&& o) noexcept : cpu_(std::exchange(o.cpu_, nullptr)) {}
    WaitScope(const WaitScope&) = delete;
    WaitScope& operator=(const WaitScope&) = delete;
    WaitScope& operator=(WaitScope&&) = delete;

   private:
    Cpu* cpu_;
  };
  WaitScope wait_scope() { return WaitScope(*this); }

  // ---- DVS API ----

  /// Requests a transition to the operating point with this frequency.
  /// Returns immediately; the stall is modeled inside the executor.
  /// Requests arriving mid-transition coalesce to the latest target.
  void set_frequency_mhz(int freq_mhz);

  sim::Scheduler& scheduler() const { return engine_; }
  int frequency_mhz() const { return table_.get(op_index_).freq_mhz; }
  std::size_t op_index() const { return op_index_; }
  bool transitioning() const { return transitioning_; }
  const OperatingPointTable& table() const { return table_; }
  const CpuConfig& config() const { return config_; }

  // ---- fault / robustness API ----
  //
  // Hooks for the fault-injection layer (src/fault).  All of them default
  // to the healthy state and cost nothing unless used.

  /// Powers the CPU off (node crash, battery exhaustion): in-flight work is
  /// paused, a pending DVS transition is aborted, and the CPU draws 0 W.
  /// Blocked rank coroutines freeze at their next CPU touch.
  void power_off();
  /// Reboots: the CPU comes back at the table's highest frequency (the boot
  /// default) and resumes — re-pricing — any interrupted work.
  void power_on();
  bool offline() const { return offline_; }

  /// Coordinated-checkpoint stall: execution pauses (power stays on, the
  /// core shows busy to /proc) until checkpoint_stall_end().
  void checkpoint_stall_begin();
  void checkpoint_stall_end();
  /// Off or checkpoint-stalled: no work executes.
  bool halted() const { return offline_ || ckpt_stall_; }

  /// Straggler model (thermal throttling, background interference): cycle
  /// work executes at `eff * frequency` (clamped to [0.01, 1]); power and
  /// the /proc busy view are unchanged — the node just computes slower.
  void set_efficiency(double eff);
  double efficiency() const { return efficiency_; }

  /// Stuck DVS: while set, set_frequency_mhz() writes are silently lost
  /// (the paper's user-space daemon writing /proc with no error checking);
  /// the operating point stays pinned.  Dropped writes are counted in
  /// stats().dvs_requests_dropped.
  void set_dvs_stuck(bool stuck) {
    dvs_stuck_ = stuck;
    sync_mirror();
  }
  bool dvs_stuck() const { return dvs_stuck_; }

  // ---- observability ----

  CpuState state() const { return state_; }

  /// Operating point to use for power evaluation right now.  During a
  /// transition this is the higher-voltage endpoint.
  const OperatingPoint& power_op() const;

  /// Power activity factor for the current state.
  double activity() const;

  /// DRAM activity factor (drives the memory component of node power).
  double mem_activity() const;

  /// Weighted busy time (ns) accumulated so far — the /proc/stat view the
  /// CPUSPEED daemon differentiates over its polling interval.
  double busy_weighted_ns() const;

  /// Frequency-sensitive cycles retired so far (OnChip + CommProc states,
  /// at eff * f).  Differencing this across a trace scope tells the energy
  /// profiler how much of the scope stretches under DVS — memory stalls and
  /// wait-poll time do not retire cycles and keep their wall-clock duration.
  double retired_sensitive_cycles() const;

  const CpuStats& stats() const { return stats_; }

  /// Registered observer, invoked immediately *before* every state or
  /// operating-point change so it can integrate the elapsed interval at the
  /// old power level (the node power model subscribes here).
  void set_change_listener(sim::InlineFunction<void()> cb) { listener_ = std::move(cb); }

  // ---- SoA state mirror ----
  //
  // Write-through mirror of the DVS-relevant state into external
  // structure-of-arrays lanes (power::NodeStateArena), so cluster-wide
  // sweeps can test frequency / transition / outage state over dense
  // arrays instead of chasing N Cpu objects.  The mirror is passive: the
  // Cpu keeps its own state authoritative and re-syncs the lanes after
  // every mutation.

  /// Flag bits written to StateMirror::flags (must match the
  /// power::NodeStateArena::k* constants).
  static constexpr std::uint8_t kMirrorTransitioning = 1;
  static constexpr std::uint8_t kMirrorOffline = 2;
  static constexpr std::uint8_t kMirrorCkptStall = 4;
  static constexpr std::uint8_t kMirrorDvsStuck = 8;

  struct StateMirror {
    std::int32_t* freq_mhz = nullptr;
    std::uint8_t* flags = nullptr;
  };

  /// Binds (or, with a default-constructed mirror, detaches) the lane
  /// pointers and writes the current state through immediately.
  void bind_mirror(StateMirror m) {
    mirror_ = m;
    sync_mirror();
  }

  /// Attaches the telemetry hub: every *completed* transition is reported
  /// with the exact instant the new operating point became active.  Null
  /// detaches (telemetry off).
  void attach_telemetry(telemetry::Hub* hub, int node_id) {
    telemetry_ = hub;
    telemetry_node_ = node_id;
  }

 private:
  struct ActiveWork {
    CpuState kind = CpuState::Idle;
    double remaining_cycles = 0;
    sim::SimDuration remaining_ns = 0;
    double act_override = -1;
    bool timed = false;
    std::coroutine_handle<> waiter;
    sim::SimTime segment_start = 0;
    int segment_freq_mhz = 0;
    double segment_eff = 1.0;
    sim::EventId finish_event{};
    bool segment_running = false;
  };

  void begin_work(const WorkAwaitable& w, std::coroutine_handle<> h);
  void start_segment();
  void pause_segment();
  void finish_work();
  void begin_transition(std::size_t target);
  void end_transition();
  void enter_wait();
  void leave_wait();
  CpuState base_state() const;
  void set_state(CpuState s);
  void touch_accounting();
  double busy_weight(CpuState s) const;
  void notify() { if (listener_) listener_(); }
  void sync_mirror() {
    if (mirror_.freq_mhz == nullptr) return;
    *mirror_.freq_mhz = table_.get(op_index_).freq_mhz;
    *mirror_.flags = static_cast<std::uint8_t>(
        (transitioning_ ? kMirrorTransitioning : 0) |
        (offline_ ? kMirrorOffline : 0) | (ckpt_stall_ ? kMirrorCkptStall : 0) |
        (dvs_stuck_ ? kMirrorDvsStuck : 0));
  }

  sim::Scheduler& engine_;
  OperatingPointTable table_;
  CpuConfig config_;
  sim::Rng rng_;

  CpuState state_ = CpuState::Idle;
  std::size_t op_index_;
  bool transitioning_ = false;
  std::size_t transition_from_ = 0;
  std::size_t transition_to_ = 0;
  std::optional<sim::EventId> transition_event_;
  std::optional<std::size_t> pending_target_;
  bool offline_ = false;
  bool ckpt_stall_ = false;
  bool dvs_stuck_ = false;
  double efficiency_ = 1.0;
  std::optional<ActiveWork> active_;
  std::deque<ActiveWork> work_queue_;  // FIFO backlog (e.g. isend protocol work)
  int wait_depth_ = 0;

  // accounting
  sim::SimTime last_touch_ = 0;
  double busy_weighted_accum_ns_ = 0;
  double retired_cycles_accum_ = 0;
  CpuStats stats_;
  StateMirror mirror_;
  sim::InlineFunction<void()> listener_;
  telemetry::Hub* telemetry_ = nullptr;
  int telemetry_node_ = -1;
};

}  // namespace pcd::cpu
