// DVS operating points (frequency / supply-voltage pairs).
//
// The default table is the paper's Table 1: the five Enhanced SpeedStep
// points of the Pentium M 1.4 GHz used in every NEMO node.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace pcd::cpu {

/// One DVS operating point.  DVS changes frequency and voltage together
/// (paper footnote 3); we follow the paper in naming points by frequency.
struct OperatingPoint {
  int freq_mhz = 0;
  double voltage = 0.0;

  friend bool operator==(const OperatingPoint&, const OperatingPoint&) = default;
};

/// An ordered set of operating points (ascending frequency).
class OperatingPointTable {
 public:
  OperatingPointTable() = default;

  explicit OperatingPointTable(std::vector<OperatingPoint> points)
      : points_(std::move(points)) {
    if (points_.empty()) throw std::invalid_argument("empty operating point table");
    std::sort(points_.begin(), points_.end(),
              [](const OperatingPoint& a, const OperatingPoint& b) {
                return a.freq_mhz < b.freq_mhz;
              });
    for (std::size_t i = 1; i < points_.size(); ++i) {
      if (points_[i].freq_mhz == points_[i - 1].freq_mhz) {
        throw std::invalid_argument("duplicate frequency in operating point table");
      }
      if (points_[i].voltage < points_[i - 1].voltage) {
        throw std::invalid_argument("voltage must be non-decreasing with frequency");
      }
    }
  }

  /// The paper's Table 1: Pentium M 1.4 GHz SpeedStep points.
  static OperatingPointTable pentium_m_1400() {
    return OperatingPointTable({{600, 0.956},
                                {800, 1.180},
                                {1000, 1.308},
                                {1200, 1.436},
                                {1400, 1.484}});
  }

  std::size_t size() const { return points_.size(); }
  const OperatingPoint& at(std::size_t i) const { return points_.at(i); }

  /// Unchecked access for hot paths (accounting, power readback) where the
  /// index is a maintained invariant — Cpu validates op_index_ at assignment.
  const OperatingPoint& get(std::size_t i) const {
    assert(i < points_.size());
    return points_[i];
  }
  const OperatingPoint& lowest() const { return points_.front(); }
  const OperatingPoint& highest() const { return points_.back(); }
  const std::vector<OperatingPoint>& points() const { return points_; }

  /// Index of the point with exactly this frequency; throws if absent.
  std::size_t index_of(int freq_mhz) const {
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (points_[i].freq_mhz == freq_mhz) return i;
    }
    throw std::invalid_argument("frequency not in operating point table");
  }

  bool contains(int freq_mhz) const {
    return std::any_of(points_.begin(), points_.end(),
                       [freq_mhz](const OperatingPoint& p) { return p.freq_mhz == freq_mhz; });
  }

  /// The lowest point with frequency >= freq_mhz (clamped to the highest).
  std::size_t index_at_least(int freq_mhz) const {
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (points_[i].freq_mhz >= freq_mhz) return i;
    }
    return points_.size() - 1;
  }

 private:
  std::vector<OperatingPoint> points_;
};

}  // namespace pcd::cpu
