#include "fault/checkpoint.hpp"

namespace pcd::fault {

CheckpointService::CheckpointService(sim::Engine& engine, machine::Cluster& cluster,
                                     double interval_s, double cost_s,
                                     FaultReport* report, telemetry::Hub* hub)
    : engine_(engine),
      cluster_(cluster),
      interval_s_(interval_s),
      cost_s_(cost_s),
      report_(report),
      hub_(hub) {}

void CheckpointService::start() {
  if (running_) return;
  running_ = true;
  started_at_ = engine_.now();
  last_checkpoint_ = engine_.now();
  next_event_ = engine_.schedule_in(sim::from_seconds(interval_s_),
                                    [this] { begin_checkpoint(); },
                                    "checkpoint.begin");
}

void CheckpointService::stop() {
  if (!running_) return;
  if (in_checkpoint_) end_checkpoint();  // never leave CPUs stalled
  running_ = false;
  if (next_event_) engine_.cancel(*next_event_);
  next_event_.reset();
}

double CheckpointService::redo_seconds(sim::SimTime now) const {
  return sim::to_seconds(now - last_checkpoint_);
}

void CheckpointService::begin_checkpoint() {
  in_checkpoint_ = true;
  int stalled = 0;
  for (int i = 0; i < cluster_.size(); ++i) {
    auto& cpu = cluster_.node(i).cpu();
    if (!cpu.halted()) {
      cpu.checkpoint_stall_begin();
      ++stalled;
    }
  }
  if (report_ != nullptr) report_->checkpoint_stall_s += cost_s_ * stalled;
  next_event_ = engine_.schedule_in(sim::from_seconds(cost_s_),
                                    [this] { end_checkpoint(); },
                                    "checkpoint.end");
}

void CheckpointService::end_checkpoint() {
  in_checkpoint_ = false;
  for (int i = 0; i < cluster_.size(); ++i) {
    cluster_.node(i).cpu().checkpoint_stall_end();
  }
  last_checkpoint_ = engine_.now();
  ++count_;
  if (report_ != nullptr) ++report_->checkpoints;
  if (hub_ != nullptr) {
    hub_->registry().set_help("checkpoints_total",
                              "Coordinated checkpoints completed by the service");
    hub_->registry().counter("checkpoints_total").inc();
  }
  if (running_) {
    next_event_ = engine_.schedule_in(sim::from_seconds(interval_s_),
                                      [this] { begin_checkpoint(); },
                                      "checkpoint.begin");
  }
}

}  // namespace pcd::fault
