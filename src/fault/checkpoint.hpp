// Coordinated checkpoint/restart service (BLCR-style): every interval, all
// live nodes stall for the checkpoint write cost; after a node crash the
// cluster "rolls back" to the last checkpoint, modeled as the rebooting
// node's boot delay plus the redo time since that checkpoint (the paper's
// cluster has shared NFS storage, so the image is reachable from the
// reboot).
#pragma once

#include <optional>

#include "fault/report.hpp"
#include "machine/cluster.hpp"
#include "sim/engine.hpp"
#include "telemetry/hub.hpp"

namespace pcd::fault {

class CheckpointService {
 public:
  CheckpointService(sim::Engine& engine, machine::Cluster& cluster,
                    double interval_s, double cost_s, FaultReport* report,
                    telemetry::Hub* hub = nullptr);
  ~CheckpointService() { stop(); }

  CheckpointService(const CheckpointService&) = delete;
  CheckpointService& operator=(const CheckpointService&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

  /// Work lost to a crash at `now`: time since the last completed
  /// checkpoint (or since start() if none completed yet).
  double redo_seconds(sim::SimTime now) const;

  std::int64_t checkpoints() const { return count_; }

 private:
  void begin_checkpoint();
  void end_checkpoint();

  sim::Engine& engine_;
  machine::Cluster& cluster_;
  double interval_s_;
  double cost_s_;
  FaultReport* report_;
  telemetry::Hub* hub_;

  bool running_ = false;
  bool in_checkpoint_ = false;
  std::optional<sim::EventId> next_event_;
  sim::SimTime started_at_ = 0;
  sim::SimTime last_checkpoint_ = 0;
  std::int64_t count_ = 0;
};

}  // namespace pcd::fault
