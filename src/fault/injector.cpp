#include "fault/injector.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

namespace pcd::fault {

FaultInjector::FaultInjector(sim::Engine& engine, machine::Cluster& cluster,
                             FaultPlan plan, sim::Rng rng, FaultReport* report)
    : engine_(engine),
      cluster_(cluster),
      plan_(std::move(plan)),
      rng_(rng),
      report_(report),
      down_since_(cluster.size(), -1) {}

void FaultInjector::record(int node, const char* kind, telemetry::FaultPhase phase,
                           std::string detail) {
  const double t_s = sim::to_seconds(engine_.now());
  // Report/telemetry entries carry the machine-wide node id (identity on a
  // single-cluster run; plan.first[s] + node on a shard cluster).
  const int id = node >= 0 ? cluster_.node(node).id() : node;
  if (report_ != nullptr) {
    report_->record(t_s, id, kind, telemetry::to_string(phase), detail);
  }
  if (hub_ != nullptr) {
    hub_->record_fault({engine_.now(), id, kind, phase, std::move(detail)});
  }
}

void FaultInjector::schedule(const FaultEvent& e) {
  pending_.push_back(
      engine_.schedule_in(sim::from_seconds(e.at_s), [this, e] { apply(e); },
                          "fault.inject"));
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  for (const auto& e : plan_.events) schedule(e);
  // Hazard arrivals: exponential inter-arrival times, all sampled now from
  // the injector's private stream so the schedule is a pure function of
  // (plan, seed).
  for (const auto& h : plan_.hazards) {
    // Defense in depth: RunConfig::validate() rejects non-positive MTBFs,
    // but a hazard that slips through (hand-armed injector) must not spin
    // forever generating zero-spaced arrivals.
    if (h.mtbf_s <= 0) continue;
    double t = 0;
    while (true) {
      const double u = rng_.uniform(0.0, 1.0);
      t += -std::log(1.0 - u) * h.mtbf_s;
      if (t > plan_.horizon_s) break;
      FaultEvent e;
      e.at_s = t;
      e.kind = h.kind;
      e.node = h.node >= 0
                   ? h.node
                   : static_cast<int>(rng_.uniform_int(
                         static_cast<std::uint64_t>(cluster_.size())));
      e.duration_s = h.duration_s;
      e.magnitude = h.magnitude;
      e.collision_boost = h.collision_boost;
      e.boot_delay_s = h.boot_delay_s;
      e.note = "hazard";
      schedule(e);
    }
  }
}

void FaultInjector::disarm() {
  for (auto id : pending_) engine_.cancel(id);
  pending_.clear();
  armed_ = false;
}

void FaultInjector::finalize() {
  if (report_ == nullptr) return;
  for (std::size_t i = 0; i < down_since_.size(); ++i) {
    if (down_since_[i] >= 0) {
      report_->node_downtime_s += sim::to_seconds(engine_.now() - down_since_[i]);
      down_since_[i] = -1;
    }
  }
  for (int i = 0; i < cluster_.size(); ++i) {
    report_->dvs_requests_dropped += cluster_.node(i).cpu().stats().dvs_requests_dropped;
  }
}

void FaultInjector::crash_node(int node, double boot_delay_s) {
  auto& n = cluster_.node(node);
  if (n.cpu().offline()) return;  // already dark
  n.power_off();
  down_since_[node] = engine_.now();
  char buf[160];
  if (ckpt_ != nullptr) {
    const double redo = ckpt_->redo_seconds(engine_.now());
    const double downtime = boot_delay_s + redo;
    std::snprintf(buf, sizeof buf,
                  "hard power loss; reboot in %.1f s + %.1f s redo from last checkpoint",
                  boot_delay_s, redo);
    record(node, "node_crash", telemetry::FaultPhase::Injected, buf);
    if (report_ != nullptr) report_->redo_s += redo;
    pending_.push_back(
        engine_.schedule_in(
            sim::from_seconds(downtime),
            [this, node, downtime] {
          cluster_.node(node).power_on();
          if (down_since_[node] >= 0 && report_ != nullptr) {
            report_->node_downtime_s +=
                sim::to_seconds(engine_.now() - down_since_[node]);
            ++report_->node_reboots;
          }
          down_since_[node] = -1;
          char msg[128];
          std::snprintf(msg, sizeof msg,
                        "rebooted after %.1f s, restarted from checkpoint", downtime);
          record(node, "node_crash", telemetry::FaultPhase::Recovered, msg);
            },
            "fault.reboot"));
  } else {
    record(node, "node_crash", telemetry::FaultPhase::Injected,
           "hard power loss; no checkpoint/restart armed — node stays down");
  }
}

void FaultInjector::apply(const FaultEvent& e) {
  char buf[160];
  switch (e.kind) {
    case FaultKind::NodeCrash:
      crash_node(e.node, e.boot_delay_s);
      return;  // crash_node records (reboot is its own schedule, not clear())
    case FaultKind::Straggler:
      cluster_.node(e.node).cpu().set_efficiency(e.magnitude);
      std::snprintf(buf, sizeof buf, "CPU efficiency degraded to %.0f%%",
                    e.magnitude * 100.0);
      record(e.node, "straggler", telemetry::FaultPhase::Injected, buf);
      break;
    case FaultKind::StuckDvs:
      cluster_.node(e.node).cpu().set_dvs_stuck(true);
      std::snprintf(buf, sizeof buf, "DVS driver wedged; pinned at %d MHz",
                    cluster_.node(e.node).cpu().frequency_mhz());
      record(e.node, "stuck_dvs", telemetry::FaultPhase::Injected, buf);
      break;
    case FaultKind::NicDegrade:
      cluster_.network().set_bandwidth_factor(e.magnitude);
      cluster_.network().set_collision_boost(e.collision_boost);
      std::snprintf(buf, sizeof buf,
                    "bandwidth down to %.0f%%, collision boost +%.2f",
                    e.magnitude * 100.0, e.collision_boost);
      if (!e.silent) record(-1, "nic_degrade", telemetry::FaultPhase::Injected, buf);
      break;
    case FaultKind::LinkFlap:
      cluster_.network().set_link_up(e.node, false);
      record(e.node, "link_flap", telemetry::FaultPhase::Injected,
             "switch link down; transfers stall");
      break;
    case FaultKind::BatteryFail: {
      auto& b = cluster_.node(e.node).battery();
      b.disconnect_ac();
      b.fail_capacity(e.magnitude);
      b.start_polling();  // depletion is detected at ACPI refresh granularity
      std::snprintf(buf, sizeof buf,
                    "AC lost; %.0f%% of pack charge survives (%.0f mWh)",
                    e.magnitude * 100.0, b.true_remaining_mwh());
      record(e.node, "battery_fail", telemetry::FaultPhase::Injected, buf);
      break;
    }
    case FaultKind::SensorDropout: {
      const auto mode = e.sensor == SensorMode::Stale ? power::SensorFault::Stale
                                                      : power::SensorFault::Garbage;
      if (e.node >= 0) {
        cluster_.node(e.node).battery().set_sensor_fault(mode);
      } else {
        for (int i = 0; i < cluster_.size(); ++i) {
          cluster_.node(i).battery().set_sensor_fault(mode);
        }
        cluster_.baytech().set_dropout(true);
      }
      if (!e.silent) {
        record(e.node, "sensor_dropout", telemetry::FaultPhase::Injected,
               e.sensor == SensorMode::Stale ? "ACPI readings frozen"
                                             : "ACPI readings garbage");
      }
      break;
    }
    case FaultKind::DaemonWedge:
      if (wedger_) wedger_(e.node);
      record(e.node, "daemon_wedge", telemetry::FaultPhase::Injected,
             "DVS daemon process hung");
      break;
  }
  if (e.duration_s > 0) {
    pending_.push_back(engine_.schedule_in(sim::from_seconds(e.duration_s),
                                           [this, e] { clear(e); },
                                           "fault.clear"));
  }
}

void FaultInjector::clear(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::Straggler:
      cluster_.node(e.node).cpu().set_efficiency(1.0);
      record(e.node, "straggler", telemetry::FaultPhase::Cleared,
             "CPU efficiency restored");
      break;
    case FaultKind::StuckDvs:
      cluster_.node(e.node).cpu().set_dvs_stuck(false);
      record(e.node, "stuck_dvs", telemetry::FaultPhase::Cleared,
             "DVS driver accepting writes again");
      break;
    case FaultKind::NicDegrade:
      cluster_.network().set_bandwidth_factor(1.0);
      cluster_.network().set_collision_boost(0.0);
      if (!e.silent) {
        record(-1, "nic_degrade", telemetry::FaultPhase::Cleared,
               "network back to nominal");
      }
      break;
    case FaultKind::LinkFlap:
      cluster_.network().set_link_up(e.node, true);
      record(e.node, "link_flap", telemetry::FaultPhase::Cleared,
             "switch link restored");
      break;
    case FaultKind::SensorDropout:
      if (e.node >= 0) {
        cluster_.node(e.node).battery().set_sensor_fault(power::SensorFault::None);
      } else {
        for (int i = 0; i < cluster_.size(); ++i) {
          cluster_.node(i).battery().set_sensor_fault(power::SensorFault::None);
        }
        cluster_.baytech().set_dropout(false);
      }
      if (!e.silent) {
        record(e.node, "sensor_dropout", telemetry::FaultPhase::Cleared,
               "sensor path healthy");
      }
      break;
    case FaultKind::NodeCrash:
    case FaultKind::BatteryFail:
    case FaultKind::DaemonWedge:
      break;  // no timed clear: recovery is the resilience layer's job
  }
}

}  // namespace pcd::fault
