// FaultInjector: arms a FaultPlan against a live cluster.  Scripted events
// are scheduled verbatim; hazard arrivals are sampled up front (exponential
// inter-arrival times from one dedicated RNG split), so a given (plan,
// seed) pair replays bit-identically.
#pragma once

#include <functional>
#include <vector>

#include "fault/checkpoint.hpp"
#include "fault/plan.hpp"
#include "fault/report.hpp"
#include "machine/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "telemetry/hub.hpp"

namespace pcd::fault {

class FaultInjector {
 public:
  FaultInjector(sim::Engine& engine, machine::Cluster& cluster, FaultPlan plan,
                sim::Rng rng, FaultReport* report);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// DaemonWedge needs to reach into the strategy layer; the runner
  /// provides the hook (node -> wedge its daemon).  Optional.
  void set_daemon_wedger(std::function<void(int node)> wedger) {
    wedger_ = std::move(wedger);
  }
  /// With a checkpoint service attached, a crashed node reboots after its
  /// boot delay + redo time; without one, it stays down (the MPI progress
  /// watchdog then fails the run).
  void set_checkpoint_service(CheckpointService* ckpt) { ckpt_ = ckpt; }
  void attach_telemetry(telemetry::Hub* hub) { hub_ = hub; }

  /// Schedules every scripted event and every sampled hazard arrival.
  void arm();
  /// Cancels everything still pending (run is over).
  void disarm();
  /// End-of-run bookkeeping: downtime of nodes still dark, dropped-write
  /// totals.  Call once, after the run window closes.
  void finalize();

  const FaultPlan& plan() const { return plan_; }

 private:
  void apply(const FaultEvent& e);
  void clear(const FaultEvent& e);
  void schedule(const FaultEvent& e);
  void record(int node, const char* kind, telemetry::FaultPhase phase,
              std::string detail);
  void crash_node(int node, double boot_delay_s);

  sim::Engine& engine_;
  machine::Cluster& cluster_;
  FaultPlan plan_;
  sim::Rng rng_;
  FaultReport* report_;
  telemetry::Hub* hub_ = nullptr;
  CheckpointService* ckpt_ = nullptr;
  std::function<void(int)> wedger_;

  std::vector<sim::EventId> pending_;
  std::vector<sim::SimTime> down_since_;  // per node; -1 = up
  bool armed_ = false;
};

}  // namespace pcd::fault
