#include "fault/plan.hpp"

namespace pcd::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::NodeCrash: return "node_crash";
    case FaultKind::Straggler: return "straggler";
    case FaultKind::StuckDvs: return "stuck_dvs";
    case FaultKind::NicDegrade: return "nic_degrade";
    case FaultKind::LinkFlap: return "link_flap";
    case FaultKind::BatteryFail: return "battery_fail";
    case FaultKind::SensorDropout: return "sensor_dropout";
    case FaultKind::DaemonWedge: return "daemon_wedge";
  }
  return "?";
}

FaultEvent node_crash(double at_s, int node, double boot_delay_s) {
  FaultEvent e;
  e.at_s = at_s;
  e.kind = FaultKind::NodeCrash;
  e.node = node;
  e.boot_delay_s = boot_delay_s;
  return e;
}

FaultEvent straggler(double at_s, int node, double efficiency, double duration_s) {
  FaultEvent e;
  e.at_s = at_s;
  e.kind = FaultKind::Straggler;
  e.node = node;
  e.magnitude = efficiency;
  e.duration_s = duration_s;
  return e;
}

FaultEvent stuck_dvs(double at_s, int node, double duration_s) {
  FaultEvent e;
  e.at_s = at_s;
  e.kind = FaultKind::StuckDvs;
  e.node = node;
  e.duration_s = duration_s;
  return e;
}

FaultEvent nic_degrade(double at_s, double bandwidth_factor, double collision_boost,
                       double duration_s) {
  FaultEvent e;
  e.at_s = at_s;
  e.kind = FaultKind::NicDegrade;
  e.node = -1;
  e.magnitude = bandwidth_factor;
  e.collision_boost = collision_boost;
  e.duration_s = duration_s;
  return e;
}

FaultEvent link_flap(double at_s, int node, double duration_s) {
  FaultEvent e;
  e.at_s = at_s;
  e.kind = FaultKind::LinkFlap;
  e.node = node;
  e.duration_s = duration_s;
  return e;
}

FaultEvent battery_fail(double at_s, int node, double remaining_fraction) {
  FaultEvent e;
  e.at_s = at_s;
  e.kind = FaultKind::BatteryFail;
  e.node = node;
  e.magnitude = remaining_fraction;
  return e;
}

FaultEvent sensor_dropout(double at_s, int node, SensorMode mode, double duration_s) {
  FaultEvent e;
  e.at_s = at_s;
  e.kind = FaultKind::SensorDropout;
  e.node = node;
  e.sensor = mode;
  e.duration_s = duration_s;
  return e;
}

FaultEvent daemon_wedge(double at_s, int node) {
  FaultEvent e;
  e.at_s = at_s;
  e.kind = FaultKind::DaemonWedge;
  e.node = node;
  return e;
}

std::vector<FaultPlan> split_plan(const FaultPlan& plan,
                                  const std::vector<std::int64_t>& first) {
  const int shards = static_cast<int>(first.size()) - 1;
  const auto total = static_cast<double>(first.back() - first.front());
  std::vector<FaultPlan> parts(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    parts[static_cast<std::size_t>(s)].horizon_s = plan.horizon_s;
    parts[static_cast<std::size_t>(s)].resilience = plan.resilience;
  }
  auto owner = [&](int node) {
    int s = shards - 1;
    while (s > 0 && node < first[static_cast<std::size_t>(s)]) --s;
    return s;
  };
  for (const auto& e : plan.events) {
    if (e.node >= 0) {
      const int s = owner(e.node);
      FaultEvent local = e;
      local.node = e.node - static_cast<int>(first[static_cast<std::size_t>(s)]);
      parts[static_cast<std::size_t>(s)].events.push_back(std::move(local));
    } else {
      for (int s = 0; s < shards; ++s) {
        FaultEvent local = e;
        local.silent = e.silent || s != 0;
        parts[static_cast<std::size_t>(s)].events.push_back(std::move(local));
      }
    }
  }
  for (const auto& h : plan.hazards) {
    if (h.node >= 0) {
      const int s = owner(h.node);
      HazardModel local = h;
      local.node = h.node - static_cast<int>(first[static_cast<std::size_t>(s)]);
      parts[static_cast<std::size_t>(s)].hazards.push_back(local);
    } else {
      for (int s = 0; s < shards; ++s) {
        const auto count = static_cast<double>(first[static_cast<std::size_t>(s) + 1] -
                                               first[static_cast<std::size_t>(s)]);
        if (count <= 0) continue;
        HazardModel local = h;
        local.mtbf_s = h.mtbf_s * total / count;
        parts[static_cast<std::size_t>(s)].hazards.push_back(local);
      }
    }
  }
  return parts;
}

}  // namespace pcd::fault
