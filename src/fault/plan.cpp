#include "fault/plan.hpp"

namespace pcd::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::NodeCrash: return "node_crash";
    case FaultKind::Straggler: return "straggler";
    case FaultKind::StuckDvs: return "stuck_dvs";
    case FaultKind::NicDegrade: return "nic_degrade";
    case FaultKind::LinkFlap: return "link_flap";
    case FaultKind::BatteryFail: return "battery_fail";
    case FaultKind::SensorDropout: return "sensor_dropout";
    case FaultKind::DaemonWedge: return "daemon_wedge";
  }
  return "?";
}

FaultEvent node_crash(double at_s, int node, double boot_delay_s) {
  FaultEvent e;
  e.at_s = at_s;
  e.kind = FaultKind::NodeCrash;
  e.node = node;
  e.boot_delay_s = boot_delay_s;
  return e;
}

FaultEvent straggler(double at_s, int node, double efficiency, double duration_s) {
  FaultEvent e;
  e.at_s = at_s;
  e.kind = FaultKind::Straggler;
  e.node = node;
  e.magnitude = efficiency;
  e.duration_s = duration_s;
  return e;
}

FaultEvent stuck_dvs(double at_s, int node, double duration_s) {
  FaultEvent e;
  e.at_s = at_s;
  e.kind = FaultKind::StuckDvs;
  e.node = node;
  e.duration_s = duration_s;
  return e;
}

FaultEvent nic_degrade(double at_s, double bandwidth_factor, double collision_boost,
                       double duration_s) {
  FaultEvent e;
  e.at_s = at_s;
  e.kind = FaultKind::NicDegrade;
  e.node = -1;
  e.magnitude = bandwidth_factor;
  e.collision_boost = collision_boost;
  e.duration_s = duration_s;
  return e;
}

FaultEvent link_flap(double at_s, int node, double duration_s) {
  FaultEvent e;
  e.at_s = at_s;
  e.kind = FaultKind::LinkFlap;
  e.node = node;
  e.duration_s = duration_s;
  return e;
}

FaultEvent battery_fail(double at_s, int node, double remaining_fraction) {
  FaultEvent e;
  e.at_s = at_s;
  e.kind = FaultKind::BatteryFail;
  e.node = node;
  e.magnitude = remaining_fraction;
  return e;
}

FaultEvent sensor_dropout(double at_s, int node, SensorMode mode, double duration_s) {
  FaultEvent e;
  e.at_s = at_s;
  e.kind = FaultKind::SensorDropout;
  e.node = node;
  e.sensor = mode;
  e.duration_s = duration_s;
  return e;
}

FaultEvent daemon_wedge(double at_s, int node) {
  FaultEvent e;
  e.at_s = at_s;
  e.kind = FaultKind::DaemonWedge;
  e.node = node;
  return e;
}

}  // namespace pcd::fault
