// Fault plan: a deterministic, seeded schedule of what goes wrong during a
// run, plus the resilience mechanisms armed against it.
//
// Two ways to describe faults:
//   - scripted events: "node 3 crashes at t=12 s, reboots after 30 s" —
//     exact, replayable, the workhorse for tests and demos;
//   - hazard models: exponential inter-arrival times with a given MTBF,
//     sampled once up front from a split of the run's RNG — statistically
//     realistic background failure for ablation studies.
//
// An empty (default) plan is *zero-cost*: no RNG stream is drawn, no event
// is scheduled, and every run is bit-identical to one without the fault
// layer compiled in at all.  Tests assert this.
#pragma once

#include <string>
#include <vector>

namespace pcd::fault {

enum class FaultKind {
  NodeCrash,      // hard power loss; reboots after boot_delay_s (with C/R) or stays down
  Straggler,      // CPU retires cycles at `magnitude` x nominal (thermal throttle)
  StuckDvs,       // /proc DVS writes silently lost; operating point pinned
  NicDegrade,     // bandwidth drops to `magnitude` x nominal, + collision_boost
  LinkFlap,       // node's switch link down for duration_s
  BatteryFail,    // AC lost + only `magnitude` of the pack's charge survives
  SensorDropout,  // ACPI readings stale/garbage; node -1 also silences Baytech
  DaemonWedge,    // the DVS daemon process hangs (stops polling)
};

const char* to_string(FaultKind k);

/// How a SensorDropout presents at the ACPI reader.
enum class SensorMode { Stale, Garbage };

/// One scripted fault.  `node == -1` means cluster-wide where that makes
/// sense (NicDegrade, SensorDropout) or "pick per hazard" for hazards.
struct FaultEvent {
  double at_s = 0;
  FaultKind kind = FaultKind::NodeCrash;
  int node = -1;
  double duration_s = 0;     // 0 = permanent (until run end)
  double magnitude = 1.0;    // kind-specific (see FaultKind comments)
  double collision_boost = 0;
  double boot_delay_s = 30;  // NodeCrash: reboot time once recovery starts
  SensorMode sensor = SensorMode::Stale;
  std::string note;
  /// Apply the fault but record nothing (no report entry, no telemetry).
  /// Used by split_plan for cluster-wide events replicated to every shard:
  /// each shard must apply the state change to its own network/batteries,
  /// but only shard 0's copy records, so the merged report matches the
  /// 1-shard run's.
  bool silent = false;
};

// Scripted-event factories (the readable way to build plans).
FaultEvent node_crash(double at_s, int node, double boot_delay_s = 30);
FaultEvent straggler(double at_s, int node, double efficiency, double duration_s = 0);
FaultEvent stuck_dvs(double at_s, int node, double duration_s = 0);
FaultEvent nic_degrade(double at_s, double bandwidth_factor, double collision_boost = 0,
                       double duration_s = 0);
FaultEvent link_flap(double at_s, int node, double duration_s);
FaultEvent battery_fail(double at_s, int node, double remaining_fraction);
FaultEvent sensor_dropout(double at_s, int node, SensorMode mode, double duration_s = 0);
FaultEvent daemon_wedge(double at_s, int node);

/// Background failure process: arrivals ~ Exp(1/mtbf_s) over the horizon.
struct HazardModel {
  FaultKind kind = FaultKind::Straggler;
  double mtbf_s = 600;       // mean time between failures
  double duration_s = 5;     // 0 = permanent
  double magnitude = 0.5;
  double collision_boost = 0;
  double boot_delay_s = 30;
  int node = -1;             // -1: pick a node uniformly per arrival
};

struct WatchdogParams {
  double check_interval_s = 1.0;
  /// Consecutive checks with requested != actual frequency (and no
  /// transition in flight) before the node falls back to full speed.
  int stuck_checks_before_fallback = 3;
  /// Consecutive checks with a frozen daemon poll counter before restart.
  int missed_checks_before_restart = 3;
  double restart_backoff_s = 0.5;  // doubles per restart
  int max_restarts = 3;            // then give up and fall back
};

struct ResilienceParams {
  /// Per-node watchdog: detects wedged daemons (restart with backoff) and
  /// stuck DVS hardware (graceful degradation to full speed — the
  /// performance constraint survives, only the energy saving is lost).
  bool watchdog = false;
  WatchdogParams watchdog_params;

  /// Coordinated checkpoint/restart: > 0 arms a cluster-wide checkpoint
  /// every interval; a crashed node reboots and the cluster re-executes
  /// from the last checkpoint (modeled as the reboot stall plus redo time).
  /// 0 disables — a crash then fails the run (detected, not silent).
  double checkpoint_interval_s = 0;
  double checkpoint_cost_s = 0.5;  // cluster-wide stall per checkpoint

  /// MPI progress timeout: if no message completes and no work retires for
  /// this long, the run is declared failed (a structured RunResult, not an
  /// infinite simulation).  0 = auto (60 s when the plan injects faults,
  /// off otherwise); < 0 = force off.
  double mpi_timeout_s = 0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;
  std::vector<HazardModel> hazards;
  /// Hazard sampling horizon; arrivals past this are not generated.
  double horizon_s = 3600;
  ResilienceParams resilience;

  /// True when the plan will inject anything (needs an RNG stream + arming).
  bool injects() const { return !events.empty() || !hazards.empty(); }
  /// True when the fault layer must be wired into a run at all.
  bool active() const {
    return injects() || resilience.watchdog ||
           resilience.checkpoint_interval_s > 0 || resilience.mpi_timeout_s > 0;
  }
};

/// Splits one machine-wide plan into per-shard plans (DESIGN.md §3.14).
/// `first` is the shard partition boundary vector (machine::ShardPlan::
/// first: S+1 entries, first[s] = first global node of shard s):
///   - a node-targeted event/hazard goes to its owning shard with the node
///     renumbered to the shard-local index;
///   - a cluster-wide event (node == -1) is replicated to every shard,
///     silent everywhere but shard 0;
///   - a pick-a-node hazard (node == -1) is replicated with its MTBF
///     scaled by total/count(s), so each shard's local arrival rate is
///     proportional to its node count and the machine-wide rate matches.
/// Resilience parameters and the horizon copy to every shard.
std::vector<FaultPlan> split_plan(const FaultPlan& plan,
                                  const std::vector<std::int64_t>& first);

}  // namespace pcd::fault
