#include "fault/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

namespace pcd::fault {

void FaultReport::record(double t_s, int node, const char* kind, const char* phase,
                         std::string detail) {
  // Lifecycle counters derive from the phase so every producer (injector,
  // watchdogs, node brown-out path) stays consistent with the event list.
  if (std::strcmp(phase, "injected") == 0) ++injected;
  else if (std::strcmp(phase, "cleared") == 0) ++cleared;
  else if (std::strcmp(phase, "detected") == 0) ++detections;
  else if (std::strcmp(phase, "recovered") == 0) ++recoveries;
  events.push_back({t_s, node, kind, phase, std::move(detail)});
}

std::string FaultReport::summary() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "faults: %lld injected, %lld cleared, %lld detected, %lld recovered\n",
                static_cast<long long>(injected), static_cast<long long>(cleared),
                static_cast<long long>(detections), static_cast<long long>(recoveries));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "resilience: %lld daemon restarts, %lld fallbacks to full speed, "
                "%lld node reboots, %lld checkpoints\n",
                static_cast<long long>(daemon_restarts),
                static_cast<long long>(fallbacks),
                static_cast<long long>(node_reboots),
                static_cast<long long>(checkpoints));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "costs: %.2f s checkpoint stall, %.2f s node downtime, %.2f s redo, "
                "%.2f s restart backoff, %lld DVS writes dropped\n",
                checkpoint_stall_s, node_downtime_s, redo_s, daemon_backoff_s,
                static_cast<long long>(dvs_requests_dropped));
  out += buf;
  if (run_failed) {
    out += "RUN FAILED: " + failure + "\n";
  }
  for (const auto& e : events) {
    std::snprintf(buf, sizeof buf, "  [%9.3f s] node %2d %-14s %-9s %s\n", e.t_s,
                  e.node, e.kind.c_str(), e.phase.c_str(), e.detail.c_str());
    out += buf;
  }
  return out;
}

FaultReport merge_reports(std::vector<FaultReport> parts) {
  if (parts.empty()) return {};
  if (parts.size() == 1) return std::move(parts.front());
  FaultReport out;
  for (auto& p : parts) {
    for (auto& e : p.events) out.events.push_back(std::move(e));
    out.injected += p.injected;
    out.cleared += p.cleared;
    out.detections += p.detections;
    out.recoveries += p.recoveries;
    out.daemon_restarts += p.daemon_restarts;
    out.fallbacks += p.fallbacks;
    out.node_reboots += p.node_reboots;
    out.checkpoints = std::max(out.checkpoints, p.checkpoints);
    out.dvs_requests_dropped += p.dvs_requests_dropped;
    out.checkpoint_stall_s += p.checkpoint_stall_s;
    out.node_downtime_s += p.node_downtime_s;
    out.redo_s += p.redo_s;
    out.daemon_backoff_s += p.daemon_backoff_s;
    if (p.run_failed && !out.run_failed) {
      out.run_failed = true;
      out.failure = std::move(p.failure);
    }
    for (auto& f : p.flight_recordings) {
      out.flight_recordings.push_back(std::move(f));
    }
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const FaultRecord& a, const FaultRecord& b) {
                     return a.t_s < b.t_s;
                   });
  return out;
}

}  // namespace pcd::fault
