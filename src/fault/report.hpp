// FaultReport: what happened, what was detected, what recovered — the
// run-scoped record the fault layer attaches to core::RunResult.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pcd::fault {

/// One lifecycle entry, mirrored from the telemetry fault log so the
/// report stands alone (telemetry may be disabled).
struct FaultRecord {
  double t_s = 0;
  int node = -1;  // -1 = cluster-wide
  std::string kind;
  std::string phase;  // injected / cleared / detected / recovered
  std::string detail;
};

struct FaultReport {
  std::vector<FaultRecord> events;

  // Counters.
  std::int64_t injected = 0;
  std::int64_t cleared = 0;
  std::int64_t detections = 0;
  std::int64_t recoveries = 0;
  std::int64_t daemon_restarts = 0;
  std::int64_t fallbacks = 0;      // nodes degraded to full speed
  std::int64_t node_reboots = 0;
  std::int64_t checkpoints = 0;
  std::int64_t dvs_requests_dropped = 0;  // summed from the CPUs at run end

  // Accumulated costs.
  double checkpoint_stall_s = 0;  // summed over stalled nodes
  double node_downtime_s = 0;     // summed over crashed nodes
  double redo_s = 0;              // work re-executed after restarts
  /// Cumulative watchdog restart backoff actually waited (summed over
  /// nodes): with backoff b doubling per restart and N restarts taken,
  /// each node contributes b * (2^N - 1).  The final give-up transition
  /// records this total in its event detail, so the cost of the escalation
  /// ladder is attributable even when the daemon never comes back.
  double daemon_backoff_s = 0;

  // Outcome.
  bool run_failed = false;
  std::string failure;

  /// Flight-recorder dumps captured on failure paths (one JSON document per
  /// watchdog fallback), oldest first.  Empty unless the run enabled the
  /// recorder (RunConfig::determinism.flight_recorder).
  std::vector<std::string> flight_recordings;

  void record(double t_s, int node, const char* kind, const char* phase,
              std::string detail);

  /// Human-readable multi-line summary (for reports and demos).
  std::string summary() const;
};

/// Merges per-shard reports of one sharded run (parts in shard order) into
/// the machine-wide report: events stable-merged by (t_s, shard, posting
/// order), counters and costs summed — except `checkpoints`, which every
/// shard's lockstep checkpoint service counts once per global sweep, so
/// the merge takes the max.  run_failed/failure fold left-to-right (first
/// failure wins); flight recordings concatenate in shard order.
FaultReport merge_reports(std::vector<FaultReport> parts);

}  // namespace pcd::fault
