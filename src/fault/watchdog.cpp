#include "fault/watchdog.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace pcd::fault {

DaemonWatchdog::DaemonWatchdog(sim::Engine& engine, machine::Node& node,
                               WatchdogParams params, DaemonHooks hooks,
                               FaultReport* report, telemetry::Hub* hub,
                               sim::SimDuration start_offset)
    : engine_(engine),
      node_(node),
      params_(params),
      hooks_(std::move(hooks)),
      report_(report),
      hub_(hub),
      start_offset_(start_offset) {}

void DaemonWatchdog::start() {
  if (running_) return;
  running_ = true;
  last_polls_ = hooks_.polls ? hooks_.polls() : -1;
  last_poll_change_ = engine_.now();
  next_tick_ = engine_.schedule_in(start_offset_, [this] { tick(); }, "watchdog.tick");
}

void DaemonWatchdog::stop() {
  if (!running_) return;
  running_ = false;
  if (next_tick_) engine_.cancel(*next_tick_);
  next_tick_.reset();
}

void DaemonWatchdog::record(const char* kind, telemetry::FaultPhase phase,
                            std::string detail) {
  const double t_s = sim::to_seconds(engine_.now());
  if (report_ != nullptr) {
    report_->record(t_s, node_.id(), kind, telemetry::to_string(phase), detail);
  }
  if (hub_ != nullptr) {
    hub_->record_fault({engine_.now(), node_.id(), kind, phase, std::move(detail)});
  }
}

void DaemonWatchdog::tick() {
  if (!node_.cpu().offline()) {  // a dark node has bigger problems
    if (fallback_) {
      assert_full_speed();
    } else {
      check_daemon();
      check_dvs_path();
    }
  }
  next_tick_ = engine_.schedule_in(sim::from_seconds(params_.check_interval_s),
                                   [this] { tick(); }, "watchdog.tick");
}

void DaemonWatchdog::check_daemon() {
  if (!hooks_.polls || restart_pending_) return;
  const std::int64_t polls = hooks_.polls();
  if (polls != last_polls_) {
    last_polls_ = polls;
    last_poll_change_ = engine_.now();
    daemon_wedged_ = false;
    return;
  }
  const double silent_s = sim::to_seconds(engine_.now() - last_poll_change_);
  const double tolerated = params_.missed_checks_before_restart *
                           std::max(params_.check_interval_s,
                                    hooks_.expected_poll_interval_s);
  if (silent_s < tolerated || daemon_wedged_) return;
  daemon_wedged_ = true;
  char buf[128];
  std::snprintf(buf, sizeof buf, "daemon poll counter frozen for %.1f s", silent_s);
  record("daemon_wedge", telemetry::FaultPhase::Detected, buf);
  if (hooks_.restart && restarts_ < params_.max_restarts) {
    // The interval for restart r (0-based) is b * 2^r, computed BEFORE the
    // counter increments — reading restarts_ after ++ would double-report
    // the wait.  The running total is accumulated here, at scheduling time,
    // so the give-up transition below can report the backoff actually
    // spent (b * (2^N - 1)), not the next never-taken interval.
    const double backoff =
        params_.restart_backoff_s * static_cast<double>(1LL << restarts_);
    ++restarts_;
    backoff_total_s_ += backoff;
    if (report_ != nullptr) {
      ++report_->daemon_restarts;
      report_->daemon_backoff_s += backoff;
    }
    restart_pending_ = true;
    engine_.schedule_in(sim::from_seconds(backoff), [this] {
      restart_pending_ = false;
      daemon_wedged_ = false;
      last_poll_change_ = engine_.now();
      if (hooks_.polls) last_polls_ = hooks_.polls();
      hooks_.restart();
      record("daemon_wedge", telemetry::FaultPhase::Recovered,
             "daemon restarted by watchdog");
    }, "watchdog.restart");
  } else {
    // Final give-up transition: record it with the cumulative backoff this
    // node actually waited across the whole escalation ladder.
    char why[160];
    std::snprintf(why, sizeof why,
                  "daemon restarts exhausted (%lld restarts, %.2f s cumulative "
                  "backoff)",
                  static_cast<long long>(restarts_), backoff_total_s_);
    enter_fallback(why);
  }
}

void DaemonWatchdog::check_dvs_path() {
  const auto& cpu = node_.cpu();
  const bool stuck =
      node_.requested_mhz() != cpu.frequency_mhz() && !cpu.transitioning();
  if (!stuck) {
    stuck_streak_ = 0;
    return;
  }
  if (++stuck_streak_ < params_.stuck_checks_before_fallback) return;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "requested %d MHz but CPU stuck at %d MHz for %d checks",
                node_.requested_mhz(), cpu.frequency_mhz(), stuck_streak_);
  record("stuck_dvs", telemetry::FaultPhase::Detected, buf);
  enter_fallback("DVS writes are being lost");
}

void DaemonWatchdog::enter_fallback(const char* why) {
  if (fallback_) return;
  fallback_ = true;
  if (report_ != nullptr) ++report_->fallbacks;
  if (recorder_ != nullptr && report_ != nullptr) {
    char reason[192];
    std::snprintf(reason, sizeof reason, "watchdog fallback (node %d): %s",
                  node_.id(), why);
    report_->flight_recordings.push_back(
        recorder_->dump_json(reason, engine_.now()));
  }
  if (hooks_.disable) hooks_.disable();
  record("fallback", telemetry::FaultPhase::Detected,
         std::string("graceful degradation to full speed: ") + why);
  assert_full_speed();
}

void DaemonWatchdog::assert_full_speed() {
  const int max_mhz = node_.cpu().table().highest().freq_mhz;
  if (node_.cpu().frequency_mhz() == max_mhz && !node_.cpu().transitioning()) {
    if (!fallback_recovered_) {
      fallback_recovered_ = true;
      record("fallback", telemetry::FaultPhase::Recovered,
             "node pinned at full speed; performance constraint preserved");
    }
    return;
  }
  // Keep re-asserting: a stuck driver drops the write now but may recover.
  node_.set_cpuspeed(max_mhz, telemetry::DvsCause::Fallback,
                     std::numeric_limits<double>::quiet_NaN(),
                     "watchdog fallback");
}

}  // namespace pcd::fault
