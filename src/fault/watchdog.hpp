// Per-node resilience watchdog (the missing piece of the paper's CPUSPEED
// deployment: the daemon writes /proc with no error checking and nothing
// supervises it).
//
// Two independent detectors, polled every check interval:
//   - wedged daemon: the daemon's poll counter stops advancing.  Restart it
//     after an exponential backoff, up to max_restarts; then give up and
//     degrade gracefully.
//   - stuck DVS path: the node's last *requested* frequency differs from
//     the CPU's *actual* frequency for several consecutive checks with no
//     transition in flight — the /proc write is being lost.  Degrade
//     gracefully.
//
// Graceful degradation = disable the (untrustworthy) DVS strategy on this
// node and pin the clock at full speed: the paper's performance constraint
// is preserved at the cost of the energy saving.  The watchdog keeps
// re-asserting full speed until the write lands (a stuck driver may
// recover), then records the recovery.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "fault/plan.hpp"
#include "fault/report.hpp"
#include "machine/node.hpp"
#include "sim/engine.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/hub.hpp"

namespace pcd::fault {

/// How the watchdog observes and controls the strategy daemon on its node.
/// Any member may be empty (e.g. EXTERNAL static control has no daemon:
/// only the stuck-DVS detector is active).
struct DaemonHooks {
  std::function<std::int64_t()> polls;  // liveness counter
  std::function<void()> restart;        // bring a wedged daemon back
  std::function<void()> disable;        // stop the daemon for good (fallback)
  double expected_poll_interval_s = 2.0;
};

class DaemonWatchdog {
 public:
  DaemonWatchdog(sim::Engine& engine, machine::Node& node, WatchdogParams params,
                 DaemonHooks hooks, FaultReport* report,
                 telemetry::Hub* hub = nullptr, sim::SimDuration start_offset = 0);
  ~DaemonWatchdog() { stop(); }

  DaemonWatchdog(const DaemonWatchdog&) = delete;
  DaemonWatchdog& operator=(const DaemonWatchdog&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

  bool in_fallback() const { return fallback_; }
  std::int64_t restarts() const { return restarts_; }
  /// Cumulative restart backoff waited so far: the sum of the intervals
  /// actually scheduled (b, 2b, 4b, ...), NOT the next doubled interval —
  /// after N restarts this is b * (2^N - 1).
  double backoff_total_s() const { return backoff_total_s_; }

  /// Black-box wiring: when set, entering fallback dumps the recorder (the
  /// last N causal steps that led here) into FaultReport::flight_recordings.
  void set_flight_recorder(telemetry::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

 private:
  void tick();
  void check_daemon();
  void check_dvs_path();
  void enter_fallback(const char* why);
  void assert_full_speed();
  void record(const char* kind, telemetry::FaultPhase phase, std::string detail);

  sim::Engine& engine_;
  machine::Node& node_;
  WatchdogParams params_;
  DaemonHooks hooks_;
  FaultReport* report_;
  telemetry::Hub* hub_;
  telemetry::FlightRecorder* recorder_ = nullptr;
  sim::SimDuration start_offset_;

  bool running_ = false;
  std::optional<sim::EventId> next_tick_;

  // daemon-liveness detector
  std::int64_t last_polls_ = -1;
  sim::SimTime last_poll_change_ = 0;
  bool restart_pending_ = false;
  bool daemon_wedged_ = false;
  std::int64_t restarts_ = 0;
  double backoff_total_s_ = 0;

  // stuck-DVS detector
  int stuck_streak_ = 0;
  bool fallback_ = false;
  bool fallback_recovered_ = false;
};

}  // namespace pcd::fault
