#include "machine/cluster.hpp"

#include <limits>
#include <stdexcept>

namespace pcd::machine {

Cluster::Cluster(sim::Engine& engine, const ClusterConfig& config)
    : engine_(engine),
      config_(config),
      rng_(config.seed),
      arena_(config.nodes > 0 ? config.nodes : 1) {
  if (config.nodes <= 0) throw std::invalid_argument("cluster needs at least one node");
  nodes_.reserve(config.nodes);
  for (int i = 0; i < config.nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(engine, config.first_node_id + i,
                                            config.node, rng_.split(), &arena_, i));
  }
  network_ = std::make_unique<net::Network>(
      engine, config.nodes, config.network, rng_.split(),
      [this](int node_id, int delta) {
        auto& pm = nodes_.at(node_id)->power();
        pm.set_nic_flows(pm.nic_flows() + delta);
      });
  std::vector<power::NodePowerModel*> outlets;
  outlets.reserve(nodes_.size());
  for (auto& n : nodes_) outlets.push_back(&n->power());
  baytech_ = std::make_unique<power::BaytechStrip>(engine, std::move(outlets),
                                                   config.baytech);
}

void Cluster::set_all_cpuspeed(int mhz) {
  transition_all(mhz, telemetry::DvsCause::External, "psetcpuspeed");
}

void Cluster::transition_all(int mhz, telemetry::DvsCause cause, const char* detail) {
  const int n = static_cast<int>(nodes_.size());
  for (int i = 0; i < n; ++i) {
    // Dense no-op test over the arena lanes; a skipped node is one whose
    // full set_cpuspeed call would log nothing, draw nothing, and change
    // no state (see NodeStateArena::can_skip_transition).
    if (arena_.can_skip_transition(i, mhz)) continue;
    nodes_[static_cast<std::size_t>(i)]->set_cpuspeed(
        mhz, cause, std::numeric_limits<double>::quiet_NaN(), detail);
  }
}

void Cluster::attach_telemetry(telemetry::Hub* hub) {
  for (auto& n : nodes_) n->attach_telemetry(hub);
  network_->attach_telemetry(hub);
  baytech_->attach_telemetry(hub);
}

double Cluster::total_energy_joules() const {
  // One batch pass over the arena: refresh dirty lanes, integrate all
  // lanes to now, then sum — the same doubles, in the same order, as
  // summing node(i).power().energy_joules() one node at a time.
  auto& arena = const_cast<power::NodeStateArena&>(arena_);
  arena.accrue_all(engine_.now());
  return arena_.total_joules();
}

}  // namespace pcd::machine
