#include "machine/cluster.hpp"

#include <limits>
#include <stdexcept>

namespace pcd::machine {

Cluster::Cluster(sim::Engine& engine, const ClusterConfig& config)
    : engine_(engine), config_(config), rng_(config.seed) {
  if (config.nodes <= 0) throw std::invalid_argument("cluster needs at least one node");
  nodes_.reserve(config.nodes);
  for (int i = 0; i < config.nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(engine, i, config.node, rng_.split()));
  }
  network_ = std::make_unique<net::Network>(
      engine, config.nodes, config.network, rng_.split(),
      [this](int node_id, int delta) {
        auto& pm = nodes_.at(node_id)->power();
        pm.set_nic_flows(pm.nic_flows() + delta);
      });
  std::vector<power::NodePowerModel*> outlets;
  outlets.reserve(nodes_.size());
  for (auto& n : nodes_) outlets.push_back(&n->power());
  baytech_ = std::make_unique<power::BaytechStrip>(engine, std::move(outlets),
                                                   config.baytech);
}

void Cluster::set_all_cpuspeed(int mhz) {
  for (auto& n : nodes_) {
    n->set_cpuspeed(mhz, telemetry::DvsCause::External,
                    std::numeric_limits<double>::quiet_NaN(), "psetcpuspeed");
  }
}

void Cluster::attach_telemetry(telemetry::Hub* hub) {
  for (auto& n : nodes_) n->attach_telemetry(hub);
  network_->attach_telemetry(hub);
  baytech_->attach_telemetry(hub);
}

double Cluster::total_energy_joules() const {
  double joules = 0;
  for (const auto& n : nodes_) joules += n->power().energy_joules();
  return joules;
}

}  // namespace pcd::machine
