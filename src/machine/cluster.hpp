// The simulated power-aware cluster (the paper's NEMO: 16 Pentium M nodes
// behind a 100 Mb switch, each with an ACPI battery; a Baytech strip spans
// all outlets).
#pragma once

#include <memory>
#include <vector>

#include "machine/node.hpp"
#include "net/network.hpp"
#include "power/meters.hpp"
#include "power/state_arena.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace pcd::machine {

struct ClusterConfig {
  int nodes = 16;
  NodeConfig node;
  net::NetworkParams network;
  power::BaytechParams baytech;
  std::uint64_t seed = 0x5eed;
  /// Global id of node 0.  A sharded run builds one Cluster per shard; the
  /// shard's nodes carry their machine-wide ids (plan.first[s] + local), so
  /// telemetry/fault/trace records name the same node regardless of shard
  /// count.  Single-cluster runs leave this 0 and ids equal indices.
  int first_node_id = 0;
};

class Cluster {
 public:
  Cluster(sim::Engine& engine, const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Engine& engine() { return engine_; }
  int size() const { return static_cast<int>(nodes_.size()); }
  Node& node(int i) { return *nodes_.at(i); }
  const Node& node(int i) const { return *nodes_.at(i); }
  net::Network& network() { return *network_; }
  power::BaytechStrip& baytech() { return *baytech_; }
  const ClusterConfig& config() const { return config_; }

  /// The cluster-owned structure-of-arrays node state (power integrators,
  /// frequency/transition mirrors); every node's cpu/power model is a view
  /// over one lane.
  power::NodeStateArena& arena() { return arena_; }
  const power::NodeStateArena& arena() const { return arena_; }

  /// EXTERNAL control: "psetcpuspeed <mhz>" — set every node statically.
  /// (One transition_all sweep under the External cause.)
  void set_all_cpuspeed(int mhz);

  /// Batch kernel: applies a cluster-wide gear shift in one sweep over the
  /// arena lanes.  Nodes already at `mhz` with nothing pending are skipped
  /// by a dense lane test; every other node goes through the full
  /// Node::set_cpuspeed path in node order, so telemetry decisions, RNG
  /// draws, and event scheduling are exactly those of the per-node loop.
  void transition_all(int mhz, telemetry::DvsCause cause, const char* detail);

  /// Wires the telemetry hub through the whole machine: node DVS decision
  /// logging, CPU transition events, ACPI/Baytech meter counters, and
  /// network collision/backoff counters.  Null detaches everywhere.
  void attach_telemetry(telemetry::Hub* hub);

  /// Exact total cluster energy so far (sum of node integrators).
  double total_energy_joules() const;

  /// Derives an independent RNG stream (for schedulers, workloads, ...).
  sim::Rng rng_stream() { return rng_.split(); }

 private:
  sim::Engine& engine_;
  ClusterConfig config_;
  sim::Rng rng_;
  power::NodeStateArena arena_;  // declared before nodes_: views unbind first
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<power::BaytechStrip> baytech_;
};

}  // namespace pcd::machine
