// A power-aware cluster node: CPU with DVS + node power model + ACPI battery.
#pragma once

#include <memory>

#include <limits>
#include <string>
#include <utility>

#include "cpu/cpu.hpp"
#include "power/meters.hpp"
#include "power/node_power.hpp"
#include "sim/scheduler.hpp"
#include "sim/rng.hpp"
#include "telemetry/hub.hpp"

namespace pcd::machine {

struct NodeConfig {
  cpu::OperatingPointTable operating_points = cpu::OperatingPointTable::pentium_m_1400();
  cpu::CpuConfig cpu;
  power::NodePowerParams power = power::NodePowerParams::nemo();
  power::AcpiBatteryParams battery;
};

class Node {
 public:
  /// `arena`/`lane` select the node's backing lane in a cluster-owned
  /// power::NodeStateArena; without them the node's power model owns a
  /// private one-lane arena (standalone construction keeps working).
  Node(sim::Scheduler& engine, int id, const NodeConfig& config, sim::Rng rng,
       power::NodeStateArena* arena = nullptr, int lane = 0)
      : id_(id),
        cpu_(engine, config.operating_points, config.cpu, rng.split()),
        power_(engine, cpu_, config.power, arena, lane),
        battery_(engine, power_, config.battery, rng.split()),
        requested_mhz_(cpu_.frequency_mhz()) {
    battery_.set_depleted([this] { handle_battery_depleted(); });
    power_.mirror_requested_mhz(requested_mhz_);
  }

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int id() const { return id_; }
  cpu::Cpu& cpu() { return cpu_; }
  const cpu::Cpu& cpu() const { return cpu_; }
  power::NodePowerModel& power() { return power_; }
  const power::NodePowerModel& power() const { return power_; }
  power::AcpiBattery& battery() { return battery_; }
  const power::AcpiBattery& battery() const { return battery_; }

  /// The PowerPack DVS control entry point (set_cpuspeed in Figure 3).
  /// Strategy code passes its cause (and, for the daemons, the utilization
  /// sample that triggered the decision) so the telemetry decision log can
  /// answer *why* a node changed speed.  No-op requests (already at `mhz`)
  /// are not logged, matching the CPU's "writing the current speed costs
  /// nothing" semantics.
  void set_cpuspeed(int mhz, telemetry::DvsCause cause = telemetry::DvsCause::Api,
                    double utilization = std::numeric_limits<double>::quiet_NaN(),
                    std::string detail = {}) {
    if (telemetry_ != nullptr && mhz != cpu_.frequency_mhz()) {
      telemetry_->record_decision({cpu_.scheduler().now(), id_, cpu_.frequency_mhz(),
                                   mhz, cause, utilization, std::move(detail)});
    }
    requested_mhz_ = mhz;
    power_.mirror_requested_mhz(mhz);
    cpu_.set_frequency_mhz(mhz);
  }

  /// Last speed any strategy *asked* for — diverges from the CPU's actual
  /// frequency when the DVS driver is stuck (the watchdog compares the two).
  int requested_mhz() const { return requested_mhz_; }

  /// Fault hooks: hard power loss and reboot.
  void power_off() { cpu_.power_off(); }
  void power_on() {
    cpu_.power_on();
    requested_mhz_ = cpu_.frequency_mhz();  // BIOS default, nothing requested yet
    power_.mirror_requested_mhz(requested_mhz_);
  }

  /// Attaches (or detaches, with null) the telemetry hub to this node: DVS
  /// decisions are logged here and completed transitions at the CPU.
  void attach_telemetry(telemetry::Hub* hub) {
    telemetry_ = hub;
    cpu_.attach_telemetry(hub, id_);
    battery_.attach_telemetry(hub, id_);
  }

 private:
  void handle_battery_depleted() {
    if (cpu_.offline()) return;
    cpu_.power_off();
    if (telemetry_ != nullptr) {
      telemetry_->record_fault({cpu_.scheduler().now(), id_, "battery_depleted",
                               telemetry::FaultPhase::Detected,
                               "smart battery empty: node lost power"});
    }
  }

  int id_;
  telemetry::Hub* telemetry_ = nullptr;
  cpu::Cpu cpu_;
  power::NodePowerModel power_;
  power::AcpiBattery battery_;
  int requested_mhz_;
};

}  // namespace pcd::machine
