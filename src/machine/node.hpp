// A power-aware cluster node: CPU with DVS + node power model + ACPI battery.
#pragma once

#include <memory>

#include "cpu/cpu.hpp"
#include "power/meters.hpp"
#include "power/node_power.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace pcd::machine {

struct NodeConfig {
  cpu::OperatingPointTable operating_points = cpu::OperatingPointTable::pentium_m_1400();
  cpu::CpuConfig cpu;
  power::NodePowerParams power = power::NodePowerParams::nemo();
  power::AcpiBatteryParams battery;
};

class Node {
 public:
  Node(sim::Engine& engine, int id, const NodeConfig& config, sim::Rng rng)
      : id_(id),
        cpu_(engine, config.operating_points, config.cpu, rng.split()),
        power_(engine, cpu_, config.power),
        battery_(engine, power_, config.battery, rng.split()) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int id() const { return id_; }
  cpu::Cpu& cpu() { return cpu_; }
  const cpu::Cpu& cpu() const { return cpu_; }
  power::NodePowerModel& power() { return power_; }
  const power::NodePowerModel& power() const { return power_; }
  power::AcpiBattery& battery() { return battery_; }
  const power::AcpiBattery& battery() const { return battery_; }

  /// The PowerPack DVS control entry point (set_cpuspeed in Figure 3).
  void set_cpuspeed(int mhz) { cpu_.set_frequency_mhz(mhz); }

 private:
  int id_;
  cpu::Cpu cpu_;
  power::NodePowerModel power_;
  power::AcpiBattery battery_;
};

}  // namespace pcd::machine
