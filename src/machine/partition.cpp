#include "machine/partition.hpp"

#include <stdexcept>
#include <string>

namespace pcd::machine {

ShardPlan ShardPlan::contiguous(int total, int shards) {
  if (total <= 0) {
    throw std::invalid_argument("ShardPlan: total must be positive, got " +
                                std::to_string(total));
  }
  if (shards <= 0) {
    throw std::invalid_argument("ShardPlan: shard count must be positive, got " +
                                std::to_string(shards));
  }
  if (shards > total) shards = total;

  ShardPlan plan;
  plan.loc.resize(static_cast<std::size_t>(total));
  plan.first.resize(static_cast<std::size_t>(shards) + 1, 0);
  const int base = total / shards;
  const int extra = total % shards;
  int g = 0;
  for (int s = 0; s < shards; ++s) {
    plan.first[static_cast<std::size_t>(s)] = g;
    const int count = base + (s < extra ? 1 : 0);
    for (int i = 0; i < count; ++i, ++g) {
      plan.loc[static_cast<std::size_t>(g)] = {s, i};
    }
  }
  plan.first[static_cast<std::size_t>(shards)] = g;
  return plan;
}

std::uint64_t shard_seed(std::uint64_t base_seed, int shard) {
  // splitmix64 of (seed, shard): decorrelated streams, stable across runs.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL *
                                    (static_cast<std::uint64_t>(shard) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<std::unique_ptr<Cluster>> build_shard_clusters(
    sim::ShardedEngine& engines, const ClusterConfig& config,
    const ShardPlan& plan) {
  if (plan.shards() > engines.shards()) {
    throw std::invalid_argument(
        "build_shard_clusters: plan has more shards than the engine");
  }
  std::vector<std::unique_ptr<Cluster>> clusters;
  clusters.reserve(static_cast<std::size_t>(plan.shards()));
  for (int s = 0; s < plan.shards(); ++s) {
    ClusterConfig cc = config;
    cc.nodes = plan.count(s);
    cc.seed = shard_seed(config.seed, s);
    cc.first_node_id = static_cast<int>(plan.first[static_cast<std::size_t>(s)]);
    clusters.push_back(std::make_unique<Cluster>(engines.shard(s), cc));
  }
  return clusters;
}

}  // namespace pcd::machine
