// Shard-aware cluster construction (DESIGN.md §3.14).
//
// A sharded run splits the machine into S disjoint sub-clusters, one per
// ShardedEngine shard: every node, its power models, and its slice of the
// switch fabric live on exactly one shard and are touched by exactly one
// worker thread.  ShardPlan is the pure partition arithmetic (contiguous
// ranges, remainder spread over the leading shards) used consistently by
// the runner, the MPI layer, and the benches; build_shard_clusters turns a
// single ClusterConfig template into the per-shard machine::Cluster
// instances with deterministically derived per-shard seeds.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "machine/cluster.hpp"
#include "sim/sharded.hpp"

namespace pcd::machine {

/// Contiguous partition of `total` items over shards, plus both lookup
/// directions.  Pure data: the same plan partitions ranks (mpi layer) and
/// nodes (machine layer) — a sharded run uses one plan for both, so rank r
/// is node `local(r)` of cluster `shard_of(r)`.
struct ShardPlan {
  struct Loc {
    int shard = 0;
    int local = 0;
  };

  std::vector<Loc> loc;             // global index -> (shard, local index)
  std::vector<std::int64_t> first;  // shard -> first global index (size S+1)

  int shards() const { return static_cast<int>(first.size()) - 1; }
  int total() const { return static_cast<int>(loc.size()); }
  int count(int shard) const {
    return static_cast<int>(first.at(shard + 1) - first.at(shard));
  }
  int shard_of(int global) const { return loc.at(global).shard; }
  int local_of(int global) const { return loc.at(global).local; }
  int global_of(int shard, int local) const {
    return static_cast<int>(first.at(shard)) + local;
  }

  /// Contiguous split: shard s gets total/S items, the first total%S shards
  /// one extra.  `shards` is clamped to [1, total] so every shard is
  /// non-empty.
  static ShardPlan contiguous(int total, int shards);
};

/// Per-shard seed derivation: a pure function of (template seed, shard), so
/// sharded runs are reproducible and shards draw decorrelated streams.
std::uint64_t shard_seed(std::uint64_t base_seed, int shard);

/// Builds one Cluster per shard of `plan` against the matching shard
/// engine: shard s gets plan.count(s) nodes (overriding config.nodes) and
/// seed shard_seed(config.seed, s).  plan.shards() must not exceed
/// engines.shards().
std::vector<std::unique_ptr<Cluster>> build_shard_clusters(
    sim::ShardedEngine& engines, const ClusterConfig& config,
    const ShardPlan& plan);

}  // namespace pcd::machine
