#include "mpi/comm.hpp"

#include <cassert>
#include <memory>

#include "sim/frame_pool.hpp"
#include <optional>
#include <stdexcept>

namespace pcd::mpi {

namespace {

bool envelope_matches(int want_src, int want_tag, int src, int tag) {
  return (want_src == CommBase::kAnySource || want_src == src) &&
         (want_tag == CommBase::kAnyTag || want_tag == tag);
}

}  // namespace

Comm::Comm(machine::Cluster& cluster, std::vector<int> node_ids, CostParams costs,
           trace::Tracer* tracer)
    : CommBase(costs, tracer),
      cluster_(cluster),
      engine_(cluster.engine()),
      node_ids_(std::move(node_ids)) {
  if (node_ids_.empty()) throw std::invalid_argument("communicator needs >= 1 rank");
  for (int id : node_ids_) {
    if (id < 0 || id >= cluster.size()) {
      throw std::invalid_argument("communicator rank mapped to invalid node");
    }
  }
  mailboxes_.resize(node_ids_.size());
  init_ranks(size());
}

void Comm::note_match(int src, int dst, int tag, std::int64_t bytes) {
  if (digest_ == nullptr) return;
  const std::uint64_t rec[5] = {
      static_cast<std::uint64_t>(engine_.now()), static_cast<std::uint64_t>(src),
      static_cast<std::uint64_t>(dst), static_cast<std::uint64_t>(tag),
      static_cast<std::uint64_t>(bytes)};
  digest_->fold_record(rec, 5);
}

double CommBase::protocol_cycles(std::int64_t bytes) const {
  return costs_.per_msg_cycles + costs_.per_kb_cycles * (static_cast<double>(bytes) / 1024.0);
}

double CommBase::speed_ratio(int rank) {
  auto& cpu = node(rank).cpu();
  return static_cast<double>(cpu.frequency_mhz()) / cpu.table().highest().freq_mhz;
}

// ---- point-to-point --------------------------------------------------------

sim::Process Comm::send_proc(int rank, int dst, int tag, std::int64_t bytes,
                             Request req) {
  // The send's causal anchor is the isend call instant (spawn runs the body
  // up to the first co_await synchronously).
  const std::int64_t log_seq =
      tracer_ != nullptr
          ? tracer_->log_send(rank_base_ + rank, rank_base_ + dst, tag, bytes)
          : -1;
  auto& cpu = node(rank).cpu();
  co_await cpu.run_commproc_cycles(protocol_cycles(bytes));

  auto msg = std::allocate_shared<SendMsg>(sim::PoolAllocator<SendMsg>{}, engine_);
  msg->src = rank;
  msg->tag = tag;
  msg->bytes = bytes;
  msg->log_seq = log_seq;

  // Announce to the receiver: match a posted receive or queue as unexpected.
  Mailbox& mb = mailboxes_.at(dst);
  bool matched = false;
  for (auto it = mb.recvs.begin(); it != mb.recvs.end(); ++it) {
    if (envelope_matches((*it)->src, (*it)->tag, rank, tag)) {
      auto post = *it;
      mb.recvs.erase(it);
      post->msg = msg;
      post->matched.set();
      msg->recv_posted.set();
      note_match(rank, dst, tag, bytes);
      matched = true;
      break;
    }
  }
  if (!matched) mb.sends.push_back(msg);

  // Rendezvous: large messages stall until the receive is posted.
  if (bytes > costs_.eager_limit) co_await msg->recv_posted.wait();

  co_await cluster_.network().transfer(node_ids_[rank], node_ids_[dst], bytes,
                                       speed_ratio(rank));
  msg->delivered.set();
  if (tracer_ != nullptr) tracer_->log_delivered(log_seq);
  ++stats_.messages;
  stats_.bytes += bytes;
  req->bytes = bytes;
  req->done.set();
}

sim::Process Comm::recv_proc(int rank, int src, int tag, Request req) {
  Mailbox& mb = mailboxes_.at(rank);
  std::shared_ptr<SendMsg> msg;
  for (auto it = mb.sends.begin(); it != mb.sends.end(); ++it) {
    if (envelope_matches(src, tag, (*it)->src, (*it)->tag)) {
      msg = *it;
      mb.sends.erase(it);
      break;
    }
  }
  if (msg) {
    msg->recv_posted.set();
    note_match(msg->src, rank, msg->tag, msg->bytes);
  } else {
    auto post = std::allocate_shared<RecvPost>(sim::PoolAllocator<RecvPost>{}, engine_);
    post->src = src;
    post->tag = tag;
    mb.recvs.push_back(post);
    co_await post->matched.wait();
    msg = post->msg;
  }

  co_await msg->delivered.wait();
  // Receive-side copy / protocol processing.
  co_await node(rank).cpu().run_commproc_cycles(protocol_cycles(msg->bytes));
  if (tracer_ != nullptr) tracer_->log_recv_done(msg->log_seq);
  req->bytes = msg->bytes;
  req->done.set();
}

CommBase::Request Comm::isend(int rank, int dst, int tag, std::int64_t bytes) {
  assert(rank >= 0 && rank < size() && dst >= 0 && dst < size());
  auto req = std::allocate_shared<RequestState>(sim::PoolAllocator<RequestState>{}, engine_);
  sim::spawn(engine_, send_proc(rank, dst, tag, bytes, req));
  return req;
}

CommBase::Request Comm::irecv(int rank, int src, int tag) {
  assert(rank >= 0 && rank < size());
  auto req = std::allocate_shared<RequestState>(sim::PoolAllocator<RequestState>{}, engine_);
  sim::spawn(engine_, recv_proc(rank, src, tag, req));
  return req;
}

sim::Op<> CommBase::wait_inner(int rank, const Request& req) {
  if (!req->done.signaled()) {
    auto ws = node(rank).cpu().wait_scope();
    co_await req->done.wait();
  }
}

sim::Op<> CommBase::wait(int rank, Request req) {
  std::optional<trace::Tracer::Scope> sc;
  if (auto* tr = tracer_for(rank)) sc.emplace(tr->scope(rank, trace::Cat::Wait, "mpi_wait"));
  co_await wait_inner(rank, req);
}

sim::Op<> CommBase::waitall(int rank, std::vector<Request> reqs) {
  std::optional<trace::Tracer::Scope> sc;
  if (auto* tr = tracer_for(rank)) sc.emplace(tr->scope(rank, trace::Cat::Wait, "mpi_waitall"));
  for (auto& r : reqs) co_await wait_inner(rank, r);
}

sim::Op<> CommBase::send(int rank, int dst, int tag, std::int64_t bytes) {
  std::optional<trace::Tracer::Scope> sc;
  if (auto* tr = tracer_for(rank)) {
    sc.emplace(tr->scope(rank, trace::Cat::Send, "mpi_send", dst, bytes));
  }
  auto req = isend(rank, dst, tag, bytes);
  co_await wait_inner(rank, req);
}

sim::Op<std::int64_t> CommBase::recv(int rank, int src, int tag) {
  std::optional<trace::Tracer::Scope> sc;
  if (auto* tr = tracer_for(rank)) sc.emplace(tr->scope(rank, trace::Cat::Recv, "mpi_recv", src));
  auto req = irecv(rank, src, tag);
  co_await wait_inner(rank, req);
  if (sc) sc->set_bytes(req->bytes);  // size known only once the send matched
  co_return req->bytes;
}

sim::Op<std::int64_t> CommBase::sendrecv(int rank, int dst, int send_tag,
                                     std::int64_t send_bytes, int src, int recv_tag) {
  std::optional<trace::Tracer::Scope> sc;
  if (auto* tr = tracer_for(rank)) {
    sc.emplace(tr->scope(rank, trace::Cat::Send, "mpi_sendrecv", dst, send_bytes));
  }
  auto rr = irecv(rank, src, recv_tag);
  auto sr = isend(rank, dst, send_tag, send_bytes);
  co_await wait_inner(rank, sr);
  co_await wait_inner(rank, rr);
  co_return rr->bytes;
}

// ---- collectives ------------------------------------------------------------

namespace {

int coll_tag(int seq, int round) {
  assert(round < 64);
  return (1 << 20) + (seq % (1 << 10)) * 64 + round;
}

}  // namespace

sim::Op<> CommBase::barrier(int rank) {
  const int seq = next_coll_seq(rank);
  std::optional<trace::Tracer::Scope> sc;
  if (auto* tr = tracer_for(rank)) sc.emplace(tr->scope(rank, trace::Cat::Collective, "mpi_barrier"));
  co_await barrier_body(rank, seq);
}

sim::Op<> CommBase::barrier_body(int rank, int seq) {
  // Dissemination barrier: log2(P) rounds of token exchange.
  const int p = size();
  int round = 0;
  for (int step = 1; step < p; step <<= 1, ++round) {
    const int to = (rank + step) % p;
    const int from = (rank - step + p) % p;
    auto rr = irecv(rank, from, coll_tag(seq, round));
    auto sr = isend(rank, to, coll_tag(seq, round), 8);
    co_await wait_inner(rank, sr);
    co_await wait_inner(rank, rr);
  }
}

sim::Op<> CommBase::bcast(int rank, int root, std::int64_t bytes) {
  const int seq = next_coll_seq(rank);
  std::optional<trace::Tracer::Scope> sc;
  if (auto* tr = tracer_for(rank)) {
    sc.emplace(tr->scope(rank, trace::Cat::Collective, "mpi_bcast", root, bytes));
  }
  co_await bcast_body(rank, root, bytes, seq);
}

sim::Op<> CommBase::bcast_body(int rank, int root, std::int64_t bytes, int seq) {
  // Binomial tree (MPICH-1 style).
  const int p = size();
  const int relative = (rank - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (relative & mask) {
      const int parent = ((relative ^ mask) + root) % p;
      auto rr = irecv(rank, parent, coll_tag(seq, 0));
      co_await wait_inner(rank, rr);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < p) {
      const int child = ((relative + mask) + root) % p;
      auto sr = isend(rank, child, coll_tag(seq, 0), bytes);
      co_await wait_inner(rank, sr);
    }
    mask >>= 1;
  }
}

sim::Op<> CommBase::reduce(int rank, int root, std::int64_t bytes) {
  const int seq = next_coll_seq(rank);
  std::optional<trace::Tracer::Scope> sc;
  if (auto* tr = tracer_for(rank)) {
    sc.emplace(tr->scope(rank, trace::Cat::Collective, "mpi_reduce", root, bytes));
  }
  co_await reduce_body(rank, root, bytes, seq);
}

sim::Op<> CommBase::reduce_body(int rank, int root, std::int64_t bytes, int seq) {
  // Reverse binomial tree; leaves send first.
  const int p = size();
  const int relative = (rank - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((relative & mask) == 0) {
      const int child_rel = relative | mask;
      if (child_rel < p) {
        auto rr = irecv(rank, (child_rel + root) % p, coll_tag(seq, 1));
        co_await wait_inner(rank, rr);
      }
    } else {
      const int parent = ((relative & ~mask) + root) % p;
      auto sr = isend(rank, parent, coll_tag(seq, 1), bytes);
      co_await wait_inner(rank, sr);
      break;
    }
    mask <<= 1;
  }
}

sim::Op<> CommBase::allreduce(int rank, std::int64_t bytes) {
  std::optional<trace::Tracer::Scope> sc;
  if (auto* tr = tracer_for(rank)) {
    sc.emplace(tr->scope(rank, trace::Cat::Collective, "mpi_allreduce", -1, bytes));
  }
  const int seq1 = next_coll_seq(rank);
  co_await reduce_body(rank, 0, bytes, seq1);
  const int seq2 = next_coll_seq(rank);
  co_await bcast_body(rank, 0, bytes, seq2);
}

sim::Op<> CommBase::alltoall(int rank, std::int64_t bytes_per_pair) {
  std::vector<std::int64_t> sizes(size(), bytes_per_pair);
  sizes[rank] = 0;
  co_await alltoallv(rank, std::move(sizes));
}

sim::Op<> CommBase::alltoallv(int rank, std::vector<std::int64_t> bytes_to) {
  if (static_cast<int>(bytes_to.size()) != size()) {
    throw std::invalid_argument("alltoallv: bytes_to.size() != communicator size");
  }
  return alltoallv_body(rank, std::move(bytes_to), /*burst=*/false);
}

sim::Op<> CommBase::alltoallv_body(int rank, std::vector<std::int64_t> bytes_to,
                               bool burst) {
  const int seq = next_coll_seq(rank);
  std::optional<trace::Tracer::Scope> sc;
  if (auto* tr = tracer_for(rank)) {
    sc.emplace(tr->scope(rank, trace::Cat::Collective,
                              burst ? "mpi_alltoallv" : "mpi_alltoall"));
  }
  const int p = size();
  if (burst) {
    // All sends and receives posted at once (naive MPICH-1 alltoallv):
    // maximal overlap, the collision-prone traffic shape of §5.2.
    std::vector<Request> reqs;
    reqs.reserve(2 * (p - 1));
    for (int r = 1; r < p; ++r) {
      const int to = (rank + r) % p;
      const int from = (rank - r + p) % p;
      reqs.push_back(irecv(rank, from, coll_tag(seq, r % 64)));
      reqs.push_back(isend(rank, to, coll_tag(seq, r % 64), bytes_to[to]));
    }
    for (auto& r : reqs) co_await wait_inner(rank, r);
  } else {
    // Pairwise exchange, P-1 rounds (MPICH-1 pairwise algorithm).
    for (int r = 1; r < p; ++r) {
      const int to = (rank + r) % p;
      const int from = (rank - r + p) % p;
      auto rr = irecv(rank, from, coll_tag(seq, r % 64));
      auto sr = isend(rank, to, coll_tag(seq, r % 64), bytes_to[to]);
      co_await wait_inner(rank, sr);
      co_await wait_inner(rank, rr);
    }
  }
}

sim::Op<> CommBase::scatter(int rank, int root, std::int64_t bytes) {
  const int seq = next_coll_seq(rank);
  std::optional<trace::Tracer::Scope> sc;
  if (auto* tr = tracer_for(rank)) {
    sc.emplace(tr->scope(rank, trace::Cat::Collective, "mpi_scatter", root, bytes));
  }
  // Linear (MPICH-1): the root sends each rank its block.
  if (rank == root) {
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      reqs.push_back(isend(rank, r, coll_tag(seq, 2), bytes));
    }
    for (auto& r : reqs) co_await wait_inner(rank, r);
  } else {
    auto rr = irecv(rank, root, coll_tag(seq, 2));
    co_await wait_inner(rank, rr);
  }
}

sim::Op<> CommBase::gather(int rank, int root, std::int64_t bytes) {
  const int seq = next_coll_seq(rank);
  std::optional<trace::Tracer::Scope> sc;
  if (auto* tr = tracer_for(rank)) {
    sc.emplace(tr->scope(rank, trace::Cat::Collective, "mpi_gather", root, bytes));
  }
  if (rank == root) {
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      reqs.push_back(irecv(rank, r, coll_tag(seq, 3)));
    }
    for (auto& r : reqs) co_await wait_inner(rank, r);
  } else {
    auto sr = isend(rank, root, coll_tag(seq, 3), bytes);
    co_await wait_inner(rank, sr);
  }
}

sim::Op<> CommBase::reduce_scatter(int rank, std::int64_t bytes_per_rank) {
  std::optional<trace::Tracer::Scope> sc;
  if (auto* tr = tracer_for(rank)) {
    sc.emplace(tr->scope(rank, trace::Cat::Collective, "mpi_reduce_scatter", -1,
                              bytes_per_rank));
  }
  // MPICH-1 style: reduce the full vector to rank 0, then scatter blocks.
  const int seq1 = next_coll_seq(rank);
  co_await reduce_body(rank, 0, bytes_per_rank * size(), seq1);
  co_await scatter(rank, 0, bytes_per_rank);
}

sim::Op<> CommBase::alltoallv_burst(int rank, std::vector<std::int64_t> bytes_to) {
  // Validate eagerly (a coroutine body would capture the throw in the
  // promise instead of raising it at the call site).
  if (static_cast<int>(bytes_to.size()) != size()) {
    throw std::invalid_argument("alltoallv_burst: bytes_to.size() != communicator size");
  }
  return alltoallv_body(rank, std::move(bytes_to), /*burst=*/true);
}

sim::Op<> CommBase::allgather(int rank, std::int64_t bytes) {
  const int seq = next_coll_seq(rank);
  std::optional<trace::Tracer::Scope> sc;
  if (auto* tr = tracer_for(rank)) {
    sc.emplace(tr->scope(rank, trace::Cat::Collective, "mpi_allgather", -1, bytes));
  }
  // Ring algorithm: P-1 steps, passing blocks around.
  const int p = size();
  const int right = (rank + 1) % p;
  const int left = (rank - 1 + p) % p;
  for (int s = 0; s + 1 < p; ++s) {
    auto rr = irecv(rank, left, coll_tag(seq, s % 64));
    auto sr = isend(rank, right, coll_tag(seq, s % 64), bytes);
    co_await wait_inner(rank, sr);
    co_await wait_inner(rank, rr);
  }
}

}  // namespace pcd::mpi
