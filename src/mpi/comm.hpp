// Simulated MPI on top of the cluster model (MPICH-1.2.5-like semantics).
//
// Rank processes are coroutines; every call returns a lazy sim::Op awaited
// by the rank.  Costs charged per message:
//   - protocol processing on the CPU (per-message + per-KB cycles, scales
//     with 1/f — the part of communication that *is* frequency-sensitive),
//   - wire time through the network model (frequency-insensitive),
//   - blocked time inside MPI_Wait, spent in the CPU's WaitPoll state
//     (partly-runnable progress engine; see cpu::CpuConfig).
// Large messages use rendezvous (sender stalls until the receive is
// posted); small messages are eager.
//
// Collectives are implemented over point-to-point exactly like MPICH-1:
// dissemination barrier, binomial bcast/reduce, reduce+bcast allreduce,
// pairwise-exchange alltoall/alltoallv, ring allgather.  Each rank must
// call collectives in the same order (SPMD), which the tag sequencing
// relies on.
//
// The layer splits transport from algorithm: CommBase owns everything
// expressible over nonblocking point-to-point — the blocking wrappers,
// MPI_Wait semantics, and every collective — against two pure-virtual
// verbs, isend and irecv.  Comm is the classic single-engine transport
// (mailbox matching on one shared engine); mpi::ShardedComm
// (sharded_comm.hpp) is the cross-shard transport.  Application and
// strategy code takes CommBase&, so workloads and INTERNAL hooks run
// unchanged on either.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "machine/cluster.hpp"
#include "sim/op.hpp"
#include "sim/provenance.hpp"
#include "sim/process.hpp"
#include "trace/tracer.hpp"

namespace pcd::mpi {

struct CostParams {
  double per_msg_cycles = 20000;          // stack traversal per send/recv
  double per_kb_cycles = 600;             // copy/checksum per KB, each side
  std::int64_t eager_limit = 64 * 1024;   // rendezvous above this
};

struct CommStats {
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
};

/// Transport-independent MPI surface: blocking wrappers and collectives
/// composed over the derived class's isend/irecv.  All algorithm choices
/// (dissemination barrier, binomial trees, pairwise exchange...) live
/// here, so every transport exhibits the same traffic patterns.
class CommBase {
 public:
  struct RequestState {
    explicit RequestState(sim::Scheduler& e) : done(e) {}
    sim::Event done;
    std::int64_t bytes = 0;
  };
  using Request = std::shared_ptr<RequestState>;

  static constexpr int kAnySource = -1;
  static constexpr int kAnyTag = -1;

  CommBase(const CommBase&) = delete;
  CommBase& operator=(const CommBase&) = delete;
  virtual ~CommBase() = default;

  virtual int size() const = 0;
  /// The machine node rank `rank` runs on.
  virtual machine::Node& node(int rank) = 0;
  virtual CommStats stats() const = 0;
  trace::Tracer* tracer() { return tracer_; }
  /// Tracer receiving `rank`'s scope records.  Single-engine transports
  /// return the one tracer; ShardedComm overrides this to return the
  /// owning shard's tracer, so each worker thread only ever writes its own
  /// shard's collector (per-shard collection, merged at end of run).
  virtual trace::Tracer* tracer_for(int /*rank*/) { return tracer_; }

  // ---- point-to-point (transport-specific) ----

  /// Nonblocking send: protocol work + wire happen in the background; the
  /// returned request completes at delivery.  Tags must be < 2^20.
  virtual Request isend(int rank, int dst, int tag, std::int64_t bytes) = 0;
  /// Nonblocking receive.
  virtual Request irecv(int rank, int src = kAnySource, int tag = kAnyTag) = 0;

  // ---- blocking wrappers ----

  /// Blocks (WaitPoll) until the request completes.
  sim::Op<> wait(int rank, Request req);
  sim::Op<> waitall(int rank, std::vector<Request> reqs);
  /// Blocking send / receive.
  sim::Op<> send(int rank, int dst, int tag, std::int64_t bytes);
  sim::Op<std::int64_t> recv(int rank, int src = kAnySource, int tag = kAnyTag);
  /// Combined exchange (posts the receive first, so symmetric sendrecv
  /// pairs of any size cannot deadlock).  Returns received bytes.
  sim::Op<std::int64_t> sendrecv(int rank, int dst, int send_tag,
                                 std::int64_t send_bytes, int src, int recv_tag);

  // ---- collectives (call from every rank, same order) ----

  sim::Op<> barrier(int rank);
  sim::Op<> bcast(int rank, int root, std::int64_t bytes);
  sim::Op<> reduce(int rank, int root, std::int64_t bytes);
  sim::Op<> allreduce(int rank, std::int64_t bytes);
  /// Pairwise exchange; `bytes_per_pair` to each other rank.
  sim::Op<> alltoall(int rank, std::int64_t bytes_per_pair);
  /// Vector variant: `bytes_to[d]` to rank d (bytes_to.size() == size()).
  sim::Op<> alltoallv(int rank, std::vector<std::int64_t> bytes_to);
  /// Burst variant: posts *all* sends and receives at once instead of
  /// pairwise rounds — how MPICH-1's naive alltoallv behaves, and the
  /// traffic shape behind IS's collision-driven anomaly (§5.2).
  sim::Op<> alltoallv_burst(int rank, std::vector<std::int64_t> bytes_to);
  sim::Op<> allgather(int rank, std::int64_t bytes);
  /// Root sends a distinct `bytes` block to every rank (linear, MPICH-1).
  sim::Op<> scatter(int rank, int root, std::int64_t bytes);
  /// Every rank sends `bytes` to the root (linear).
  sim::Op<> gather(int rank, int root, std::int64_t bytes);
  /// Reduce + scatter of the result (`bytes` per rank).
  sim::Op<> reduce_scatter(int rank, std::int64_t bytes_per_rank);

 protected:
  CommBase(CostParams costs, trace::Tracer* tracer)
      : costs_(costs), tracer_(tracer) {}

  /// Wait without opening a trace scope (collective internals).
  sim::Op<> wait_inner(int rank, const Request& req);

  double protocol_cycles(std::int64_t bytes) const;
  double speed_ratio(int rank);
  /// Per-rank collective sequence numbers (tag disambiguation).  Derived
  /// constructors must call init_ranks() once the rank count is known.
  void init_ranks(int n) { coll_seq_.assign(static_cast<std::size_t>(n), 0); }
  int next_coll_seq(int rank) { return coll_seq_.at(rank)++; }

  CostParams costs_;
  trace::Tracer* tracer_;
  CommStats stats_;

 private:
  // Collective bodies, parameterized by the per-call sequence number.
  sim::Op<> barrier_body(int rank, int seq);
  sim::Op<> bcast_body(int rank, int root, std::int64_t bytes, int seq);
  sim::Op<> reduce_body(int rank, int root, std::int64_t bytes, int seq);
  sim::Op<> alltoallv_body(int rank, std::vector<std::int64_t> bytes_to, bool burst);

  std::vector<int> coll_seq_;
};

/// The single-engine transport: all ranks share one cluster/engine, and
/// envelope matching is a direct mailbox rendezvous between sender and
/// receiver coroutines.
class Comm final : public CommBase {
 public:
  /// Creates a communicator over `ranks` nodes of the cluster; rank r runs
  /// on cluster node `node_ids[r]`.
  Comm(machine::Cluster& cluster, std::vector<int> node_ids, CostParams costs = {},
       trace::Tracer* tracer = nullptr);

  int size() const override { return static_cast<int>(node_ids_.size()); }
  machine::Node& node(int rank) override { return cluster_.node(node_ids_.at(rank)); }
  machine::Cluster& cluster() { return cluster_; }
  CommStats stats() const override { return stats_; }

  /// Determinism observability: while set, every envelope match folds one
  /// record (t, src, dst, tag, bytes) into the stream at the instant the
  /// send meets its receive — the communication-order digest compared by
  /// tools/pcd_diff.  Null (the default) is zero-cost.
  void set_digest(sim::DigestStream* digest) { digest_ = digest; }

  /// Sharded use: routes this (intra-shard) communicator's message log to
  /// a per-shard tracer, with src/dst offset by `rank_base` so logged
  /// edges carry machine-wide rank ids.  ShardedComm drives the inner
  /// comms only through isend/irecv, so the blocking wrappers (which would
  /// open scopes under local rank ids) never see this tracer.
  void set_trace(trace::Tracer* tracer, int rank_base) {
    tracer_ = tracer;
    rank_base_ = rank_base;
  }

  Request isend(int rank, int dst, int tag, std::int64_t bytes) override;
  Request irecv(int rank, int src = kAnySource, int tag = kAnyTag) override;

 private:
  struct SendMsg {
    explicit SendMsg(sim::Scheduler& e) : recv_posted(e), delivered(e) {}
    int src = 0;
    int tag = 0;
    std::int64_t bytes = 0;
    std::int64_t log_seq = -1;  // index into the tracer's message log
    sim::Event recv_posted;
    sim::Event delivered;
  };
  struct RecvPost {
    explicit RecvPost(sim::Scheduler& e) : matched(e) {}
    int src = kAnySource;
    int tag = kAnyTag;
    std::shared_ptr<SendMsg> msg;
    sim::Event matched;
  };
  struct Mailbox {
    std::vector<std::shared_ptr<SendMsg>> sends;   // announced, unmatched
    std::vector<std::shared_ptr<RecvPost>> recvs;  // posted, unmatched
  };

  sim::Process send_proc(int rank, int dst, int tag, std::int64_t bytes, Request req);
  sim::Process recv_proc(int rank, int src, int tag, Request req);
  void note_match(int src, int dst, int tag, std::int64_t bytes);

  machine::Cluster& cluster_;
  sim::Scheduler& engine_;
  std::vector<int> node_ids_;
  sim::DigestStream* digest_ = nullptr;
  int rank_base_ = 0;  // added to src/dst in message-log entries (set_trace)
  std::vector<Mailbox> mailboxes_;  // indexed by destination rank
};

}  // namespace pcd::mpi
