#include "mpi/sharded_comm.hpp"

#include <cassert>
#include <memory>

#include "sim/frame_pool.hpp"
#include <numeric>
#include <stdexcept>

namespace pcd::mpi {

ShardedComm::ShardedComm(sim::ShardedEngine& engines,
                         std::vector<machine::Cluster*> clusters,
                         machine::ShardPlan plan, CostParams costs)
    : CommBase(costs, /*tracer=*/nullptr),
      engines_(engines),
      clusters_(std::move(clusters)),
      plan_(std::move(plan)),
      lookahead_(engines.lookahead()) {
  if (plan_.shards() > engines_.shards() ||
      static_cast<int>(clusters_.size()) != plan_.shards()) {
    throw std::invalid_argument(
        "ShardedComm: clusters/plan/engine shard counts disagree");
  }
  inner_.reserve(clusters_.size());
  for (int s = 0; s < plan_.shards(); ++s) {
    if (clusters_[static_cast<std::size_t>(s)]->size() < plan_.count(s)) {
      throw std::invalid_argument(
          "ShardedComm: shard cluster smaller than its rank count");
    }
    std::vector<int> local_ids(static_cast<std::size_t>(plan_.count(s)));
    std::iota(local_ids.begin(), local_ids.end(), 0);
    inner_.push_back(std::make_unique<Comm>(*clusters_[static_cast<std::size_t>(s)],
                                            std::move(local_ids), costs));
  }
  xmail_.resize(static_cast<std::size_t>(plan_.total()));
  digests_.resize(static_cast<std::size_t>(plan_.shards()), nullptr);
  tracers_.resize(static_cast<std::size_t>(plan_.shards()), nullptr);
  xstats_.resize(static_cast<std::size_t>(plan_.shards()));
  init_ranks(plan_.total());
}

CommStats ShardedComm::stats() const {
  CommStats total;
  for (const auto& c : inner_) {
    const CommStats s = c->stats();
    total.messages += s.messages;
    total.bytes += s.bytes;
  }
  for (const auto& s : xstats_) {
    total.messages += s.messages;
    total.bytes += s.bytes;
  }
  return total;
}

void ShardedComm::set_digest(int shard, sim::DigestStream* digest) {
  digests_.at(static_cast<std::size_t>(shard)) = digest;
  inner_.at(static_cast<std::size_t>(shard))->set_digest(digest);
}

void ShardedComm::set_tracer(int shard, trace::Tracer* tracer) {
  tracers_.at(static_cast<std::size_t>(shard)) = tracer;
  // The inner transport logs its (intra-shard) message edges to the same
  // per-shard tracer, with src/dst lifted to machine-wide rank ids.
  inner_.at(static_cast<std::size_t>(shard))
      ->set_trace(tracer, static_cast<int>(plan_.first.at(
                              static_cast<std::size_t>(shard))));
}

sim::SimDuration ShardedComm::wire_time(std::int64_t bytes) const {
  // Pure serialization at nominal port bandwidth (the latency hop is the
  // explicit lookahead L in the protocol timing).  Mirrors
  // Network::uncontended_time minus its latency term.
  const auto& params = clusters_.front()->config().network;
  const double wire_s =
      static_cast<double>(bytes) * 8.0 / (params.bandwidth_mbps * 1e6);
  return sim::from_seconds(wire_s);
}

void ShardedComm::note_xmatch(const XMsg& msg, sim::SimTime t) {
  sim::DigestStream* digest =
      digests_.at(static_cast<std::size_t>(plan_.shard_of(msg.dst)));
  if (digest == nullptr) return;
  const std::uint64_t rec[5] = {
      static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(msg.src),
      static_cast<std::uint64_t>(msg.dst), static_cast<std::uint64_t>(msg.tag),
      static_cast<std::uint64_t>(msg.bytes)};
  digest->fold_record(rec, 5);
}

CommBase::Request ShardedComm::isend(int rank, int dst, int tag,
                                     std::int64_t bytes) {
  assert(rank >= 0 && rank < size() && dst >= 0 && dst < size());
  const int a = plan_.shard_of(rank);
  const int b = plan_.shard_of(dst);
  if (a == b) {
    return inner_[static_cast<std::size_t>(a)]->isend(
        plan_.local_of(rank), plan_.local_of(dst), tag, bytes);
  }
  auto req = std::allocate_shared<RequestState>(sim::PoolAllocator<RequestState>{}, engines_.shard(a));
  sim::spawn(engines_.shard(a), xsend_proc(rank, dst, tag, bytes, req));
  return req;
}

CommBase::Request ShardedComm::irecv(int rank, int src, int tag) {
  assert(rank >= 0 && rank < size());
  if (src == kAnySource || tag == kAnyTag) {
    throw std::invalid_argument(
        "ShardedComm: wildcard receives (kAnySource/kAnyTag) are not "
        "supported across shards — conservative matching needs an exact "
        "envelope (no workload in src/apps uses wildcards)");
  }
  const int a = plan_.shard_of(rank);
  if (plan_.shard_of(src) == a) {
    return inner_[static_cast<std::size_t>(a)]->irecv(plan_.local_of(rank),
                                                      plan_.local_of(src), tag);
  }
  auto req = std::allocate_shared<RequestState>(sim::PoolAllocator<RequestState>{}, engines_.shard(a));
  sim::spawn(engines_.shard(a), xrecv_proc(rank, src, tag, req));
  return req;
}

sim::Process ShardedComm::xsend_proc(int rank, int dst, int tag,
                                     std::int64_t bytes, Request req) {
  const int a = plan_.shard_of(rank);
  const int b = plan_.shard_of(dst);
  // Mirror Comm::send_proc's causal anchor: the message's t_send is the
  // isend call instant (spawn runs the body to the first co_await
  // synchronously), captured here and shipped with the envelope so the
  // *receiving* shard's tracer can log the edge.
  const sim::SimTime t_send = engines_.shard(a).now();
  auto& cpu = node(rank).cpu();
  co_await cpu.run_commproc_cycles(protocol_cycles(bytes));

  auto st = std::allocate_shared<XSendState>(sim::PoolAllocator<XSendState>{}, engines_.shard(a));
  // The XMsg is plain data until the announce lands: its `delivered` Event
  // is bound to the receiving engine but not touched before then, and the
  // barrier hand-off orders this construction before any receiver access.
  auto msg = std::allocate_shared<XMsg>(sim::PoolAllocator<XMsg>{}, engines_.shard(b));
  msg->src = rank;
  msg->dst = dst;
  msg->tag = tag;
  msg->bytes = bytes;
  msg->t_send = t_send;
  msg->rendezvous = bytes > costs_.eager_limit;
  msg->src_shard = a;
  msg->sender = st;
  engines_.post(a, b, engines_.shard(a).now() + lookahead_,
                [this, msg] { on_envelope(msg); }, "mpi.xshard.announce");

  co_await st->acked.wait();
  CommStats& cs = xstats_[static_cast<std::size_t>(a)];
  ++cs.messages;
  cs.bytes += bytes;
  req->bytes = bytes;
  req->done.set();
}

sim::Process ShardedComm::xrecv_proc(int rank, int src, int tag, Request req) {
  XMailbox& mb = xmail_.at(static_cast<std::size_t>(rank));
  std::shared_ptr<XMsg> msg;
  for (auto it = mb.sends.begin(); it != mb.sends.end(); ++it) {
    if ((*it)->src == src && (*it)->tag == tag) {
      msg = *it;
      mb.sends.erase(it);
      break;
    }
  }
  if (msg) {
    complete_match(msg);
  } else {
    auto post = std::allocate_shared<XRecvPost>(sim::PoolAllocator<XRecvPost>{}, engine_of(rank));
    post->src = src;
    post->tag = tag;
    mb.recvs.push_back(post);
    co_await post->matched.wait();
    msg = post->msg;
  }

  co_await msg->delivered.wait();
  co_await node(rank).cpu().run_commproc_cycles(protocol_cycles(msg->bytes));
  if (auto* tr = tracer_for(rank)) tr->log_recv_done(msg->log_seq);
  req->bytes = msg->bytes;
  req->done.set();
}

// Runs on the destination shard at announce arrival.
void ShardedComm::on_envelope(const std::shared_ptr<XMsg>& msg) {
  msg->arrival = engine_of(msg->dst).now();
  // Receiver-side message logging: the edge enters the receiving shard's
  // tracer here (first event on the destination thread), stamped with the
  // sender-side t_send carried by the envelope.
  if (auto* tr = tracer_for(msg->dst)) {
    msg->log_seq = tr->log_send_at(msg->src, msg->dst, msg->tag, msg->bytes,
                                   msg->t_send);
  }
  XMailbox& mb = xmail_.at(static_cast<std::size_t>(msg->dst));
  for (auto it = mb.recvs.begin(); it != mb.recvs.end(); ++it) {
    if ((*it)->src == msg->src && (*it)->tag == msg->tag) {
      auto post = *it;
      mb.recvs.erase(it);
      post->msg = msg;
      post->matched.set();
      complete_match(msg);
      return;
    }
  }
  mb.sends.push_back(msg);
}

// Runs on the destination shard at match time; computes delivery timing.
void ShardedComm::complete_match(const std::shared_ptr<XMsg>& msg) {
  sim::Engine& eng = engine_of(msg->dst);
  const sim::SimTime tm = eng.now();
  note_xmatch(*msg, tm);
  sim::SimTime td;
  if (msg->rendezvous) {
    // Grant hop back to the sender (L), data ships and crosses (L + wire).
    // The grant carries no sender-side action — the sender is parked on the
    // ack either way — so the receiver folds both hops into the delivery
    // time instead of posting a real grant message.
    td = tm + 2 * lookahead_ + wire_time(msg->bytes);
  } else {
    // Eager: the payload travelled with the announce and finishes
    // serializing at arrival + wire; delivery also needs the match.
    td = std::max(tm, msg->arrival + wire_time(msg->bytes));
  }
  eng.schedule_at(td, [this, msg] { deliver(msg); }, "mpi.xshard.deliver");
}

// Runs on the destination shard at delivery time.
void ShardedComm::deliver(const std::shared_ptr<XMsg>& msg) {
  msg->delivered.set();
  if (auto* tr = tracer_for(msg->dst)) tr->log_delivered(msg->log_seq);
  const int b = plan_.shard_of(msg->dst);
  engines_.post(b, msg->src_shard, engine_of(msg->dst).now() + lookahead_,
                [st = msg->sender] { st->acked.set(); }, "mpi.xshard.ack");
}

}  // namespace pcd::mpi
