// Cross-shard MPI transport (DESIGN.md §3.14).
//
// One communicator spanning every shard of a ShardedEngine: rank r lives
// on node plan.local_of(r) of clusters[plan.shard_of(r)].  The algorithm
// layer (blocking wrappers, collectives) is inherited from CommBase, so a
// workload sees exactly the MPICH-1 traffic patterns of the single-engine
// Comm; only the transport of each point-to-point message differs:
//
//   - Intra-shard messages delegate to a per-shard mpi::Comm over that
//     shard's cluster — full mailbox semantics and full network-contention
//     fidelity (ports, FIFOs, collisions), all on one thread.
//   - Cross-shard messages travel as time-stamped ShardedEngine::post()
//     envelopes over a dedicated uncontended uplink: announce (sender ->
//     receiver shard, one min-latency hop carrying the envelope) and ack
//     (delivery notification back).  Matching, rendezvous pacing, and
//     delivery timing are all computed by the *receiving* shard, so each
//     piece of protocol state is owned and touched by exactly one shard
//     thread; the sender's coroutine only ever blocks on Events owned by
//     its own shard, signalled via posts routed back through the barrier
//     protocol.  Timing (L = lookahead = Network::min_latency(), w(b) =
//     serialization time of b bytes):
//        announce arrives:  ta = t_send + L
//        match:             tm = max(ta, t_recv_posted)
//        eager delivery:    td = max(tm, ta + w(b))      (data shipped with
//                                                         the announce)
//        rendezvous:        td = tm + 2L + w(b)          (grant travels
//                                                         back, then data)
//        sender completes:  td + L                       (ack hop)
//   - Wildcard receives (kAnySource/kAnyTag) are rejected: conservative
//     sharding cannot match "any" deterministically across shards without
//     global knowledge, and no workload in src/apps uses them.  Every
//     collective uses exact (src, tag) envelopes.
//
// Determinism: cross-shard matches fold (t, src, dst, tag, bytes) into the
// receiving shard's MPI digest stream, mirroring Comm::note_match, so the
// per-shard RunDigests (merged by telemetry::merge_digests) cover
// communication order across the boundary too.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "machine/partition.hpp"
#include "mpi/comm.hpp"
#include "sim/sharded.hpp"

namespace pcd::mpi {

class ShardedComm final : public CommBase {
 public:
  /// `plan` partitions ranks; clusters[s] must have at least plan.count(s)
  /// nodes and be built on engines.shard(s) (see build_shard_clusters).
  ShardedComm(sim::ShardedEngine& engines,
              std::vector<machine::Cluster*> clusters, machine::ShardPlan plan,
              CostParams costs = {});

  int size() const override { return plan_.total(); }
  machine::Node& node(int rank) override {
    return clusters_.at(static_cast<std::size_t>(plan_.shard_of(rank)))
        ->node(plan_.local_of(rank));
  }
  /// Aggregated across the per-shard transports + cross-shard messages.
  /// Only meaningful at a barrier (between windows) — per-shard counters
  /// are owned by their shard threads while a window runs.
  CommStats stats() const override;

  /// Wires shard `s`'s MPI digest stream: the inner transport's envelope
  /// matches and this layer's cross-shard matches both fold into it.
  void set_digest(int shard, sim::DigestStream* digest);

  /// Wires shard `s`'s tracer (sized to the TOTAL rank count, bound to the
  /// shard's engine): scope records for ranks of shard s, the inner
  /// transport's message log (src/dst globalized via the plan), and
  /// cross-shard edges logged receiver-side.  Each shard thread writes
  /// only its own tracer; the runner absorbs them into one at end of run.
  void set_tracer(int shard, trace::Tracer* tracer);

  trace::Tracer* tracer_for(int rank) override {
    return tracers_.at(static_cast<std::size_t>(plan_.shard_of(rank)));
  }

  Request isend(int rank, int dst, int tag, std::int64_t bytes) override;
  Request irecv(int rank, int src = kAnySource, int tag = kAnyTag) override;

  Comm& inner(int shard) { return *inner_.at(static_cast<std::size_t>(shard)); }

 private:
  // Sender-shard state: the coroutine parks on `acked` (Event on the
  // sender's engine) until the receiving shard posts the delivery ack.
  struct XSendState {
    explicit XSendState(sim::Scheduler& e) : acked(e) {}
    sim::Event acked;
  };
  // Receiver-shard view of one in-flight cross-shard message.  Created at
  // announce arrival; `delivered` is an Event on the receiving engine.
  struct XMsg {
    explicit XMsg(sim::Scheduler& e) : delivered(e) {}
    int src = 0;
    int dst = 0;
    int tag = 0;
    std::int64_t bytes = 0;
    sim::SimTime t_send = 0;  // sender-side protocol-entry instant
    std::int64_t log_seq = -1;  // receiver-tracer message-log index
    sim::SimTime arrival = 0;
    bool rendezvous = false;
    int src_shard = 0;
    std::shared_ptr<XSendState> sender;
    sim::Event delivered;
  };
  struct XRecvPost {
    explicit XRecvPost(sim::Scheduler& e) : matched(e) {}
    int src = 0;
    int tag = 0;
    std::shared_ptr<XMsg> msg;
    sim::Event matched;
  };
  struct XMailbox {
    std::vector<std::shared_ptr<XMsg>> sends;       // arrived, unmatched
    std::vector<std::shared_ptr<XRecvPost>> recvs;  // posted, unmatched
  };

  sim::Process xsend_proc(int rank, int dst, int tag, std::int64_t bytes,
                          Request req);
  sim::Process xrecv_proc(int rank, int src, int tag, Request req);
  void on_envelope(const std::shared_ptr<XMsg>& msg);         // dst shard
  void complete_match(const std::shared_ptr<XMsg>& msg);      // dst shard
  void deliver(const std::shared_ptr<XMsg>& msg);             // dst shard
  sim::SimDuration wire_time(std::int64_t bytes) const;
  void note_xmatch(const XMsg& msg, sim::SimTime t);

  sim::Engine& engine_of(int rank) {
    return engines_.shard(plan_.shard_of(rank));
  }

  sim::ShardedEngine& engines_;
  std::vector<machine::Cluster*> clusters_;
  machine::ShardPlan plan_;
  std::vector<std::unique_ptr<Comm>> inner_;
  std::vector<XMailbox> xmail_;              // indexed by destination rank
  std::vector<sim::DigestStream*> digests_;  // per shard (may be null)
  std::vector<trace::Tracer*> tracers_;      // per shard (may be null)
  std::vector<CommStats> xstats_;            // per source shard (no sharing)
  sim::SimDuration lookahead_;
};

}  // namespace pcd::mpi
