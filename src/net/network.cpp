#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pcd::net {

Network::Network(sim::Scheduler& engine, int nodes, NetworkParams params, sim::Rng rng,
                 sim::InlineFunction<void(int, int)> nic_activity)
    : engine_(engine),
      params_(params),
      rng_(rng),
      nic_activity_(std::move(nic_activity)),
      egress_(nodes),
      ingress_(nodes) {
  if (nodes <= 0) throw std::invalid_argument("network needs at least one node");
  for (const auto& [field, message] : validate_params(params_)) {
    throw std::invalid_argument(field + ": " + message);
  }
  links_.reserve(nodes);
  for (int i = 0; i < nodes; ++i) {
    links_.push_back(std::make_unique<sim::Event>(engine_));
    links_.back()->set();  // links start up
  }
}

std::vector<std::pair<std::string, std::string>> Network::validate_params(
    const NetworkParams& params, const std::string& prefix) {
  std::vector<std::pair<std::string, std::string>> issues;
  if (params.latency <= 0) {
    issues.emplace_back(prefix + ".latency",
                        "link latency must be strictly positive: a zero "
                        "latency silently breaks conservative lookahead "
                        "(min_latency() bounds cross-shard delivery)");
  }
  if (!(params.bandwidth_mbps > 0)) {
    issues.emplace_back(prefix + ".bandwidth_mbps",
                        "per-port bandwidth must be strictly positive");
  }
  return issues;
}

void Network::set_bandwidth_factor(double factor) {
  bandwidth_factor_ = std::clamp(factor, 0.01, 1.0);
}

void Network::set_collision_boost(double boost) {
  collision_boost_ = std::clamp(boost, 0.0, 0.95);
}

void Network::set_link_up(int node, bool up) {
  if (up) {
    links_.at(node)->set();  // wakes every transfer stalled on this link
  } else {
    links_.at(node)->reset();
  }
}

void Network::attach_telemetry(telemetry::Hub* hub) {
  if (hub == nullptr) {
    m_transfers_ = m_bytes_ = m_collisions_ = m_backoff_s_ = nullptr;
    return;
  }
  auto& reg = hub->registry();
  reg.set_help("net_transfers_total", "Point-to-point wire transfers completed");
  reg.set_help("net_bytes_total", "Payload bytes carried over the network");
  reg.set_help("net_collisions_total", "Transfers that hit a busy port and backed off");
  reg.set_help("net_backoff_seconds_total", "Simulated seconds spent in collision backoff");
  m_transfers_ = &reg.counter("net_transfers_total");
  m_bytes_ = &reg.counter("net_bytes_total");
  m_collisions_ = &reg.counter("net_collisions_total");
  m_backoff_s_ = &reg.counter("net_backoff_seconds_total");
}

sim::SimDuration Network::uncontended_time(std::int64_t bytes) const {
  const double wire_s = static_cast<double>(bytes) * 8.0 / (params_.bandwidth_mbps * 1e6);
  return params_.latency + sim::from_seconds(wire_s);
}

void Network::release(Port& port) {
  if (!port.waiters.empty()) {
    auto h = port.waiters.front();
    port.waiters.pop_front();
    // Hand the (still busy) port to the next waiter, FIFO.
    engine_.schedule_in(0, [h] { h.resume(); }, "net.port_handoff");
  } else {
    port.busy = false;
  }
}

void Network::start_transfer(int src, int dst, std::int64_t bytes, double speed_ratio,
                             std::coroutine_handle<> h) {
  if (src == dst) {  // local copy: no wire, negligible time
    engine_.schedule_in(0, [h] { h.resume(); }, "net.local_copy");
    return;
  }
  ++in_flight_;
  ++stats_.transfers;
  stats_.bytes += bytes;
  if (m_transfers_ != nullptr) {
    m_transfers_->inc();
    m_bytes_->inc(static_cast<double>(bytes));
  }
  sim::spawn(engine_, transfer_proc(src, dst, bytes, speed_ratio, h));
}

sim::Process Network::transfer_proc(int src, int dst, std::int64_t bytes,
                                    double speed_ratio, std::coroutine_handle<> h) {
  // NIC send queue: a sender's messages go out in posting order
  // (head-of-line), then the message waits for the receiver's port.
  co_await PortAcquire{&egress_[src]};
  co_await PortAcquire{&ingress_[dst]};

  // Link flap: holding the ports (head-of-line, like a real NIC with a dead
  // carrier), wait for both ends to come back up.  Free when healthy: a
  // signaled Event short-circuits without suspending.
  if (!links_[src]->signaled() || !links_[dst]->signaled()) {
    ++stats_.link_stalls;
    while (!links_[src]->signaled()) co_await links_[src]->wait();
    while (!links_[dst]->signaled()) co_await links_[dst]->wait();
  }

  const double wire_s = static_cast<double>(bytes) * 8.0 /
                        (params_.bandwidth_mbps * bandwidth_factor_ * 1e6);
  sim::SimDuration service = sim::from_seconds(wire_s);

  // Collision draw at wire start: risk grows with offered load and with
  // the injection speed ratio (paper §5.2's retransmission hypothesis).
  // The draw happens under exactly the same conditions as the healthy model
  // unless a fault adds a flat boost, so an inert fault plan perturbs no
  // RNG stream.
  const int excess = in_flight_ - params_.collision_free_transfers;
  const bool base_risk = excess > 0 && bytes >= params_.collision_min_bytes;
  if (base_risk || collision_boost_ > 0) {
    double p = base_risk
                   ? std::min(params_.collision_prob_cap,
                              params_.collision_coeff * excess *
                                  std::pow(speed_ratio, params_.collision_speed_exponent))
                   : 0.0;
    if (collision_boost_ > 0) p = std::min(0.95, p + collision_boost_);
    if (rng_.bernoulli(p)) {
      const auto span = static_cast<std::uint64_t>(
          params_.backoff_min >= params_.backoff_max
              ? 0
              : params_.backoff_max - params_.backoff_min);
      const sim::SimDuration backoff =
          params_.backoff_min +
          (span == 0 ? 0 : static_cast<sim::SimDuration>(rng_.uniform_int(span + 1)));
      service += backoff;
      ++stats_.collisions;
      stats_.backoff_ns += backoff;
      if (m_collisions_ != nullptr) {
        m_collisions_->inc();
        m_backoff_s_->inc(sim::to_seconds(backoff));
      }
    }
  }

  if (nic_activity_) {
    nic_activity_(src, +1);
    nic_activity_(dst, +1);
  }
  co_await sim::delay(service);
  if (nic_activity_) {
    nic_activity_(src, -1);
    nic_activity_(dst, -1);
  }
  release(egress_[src]);
  release(ingress_[dst]);

  co_await sim::delay(params_.latency);
  --in_flight_;
  h.resume();
}

}  // namespace pcd::net
