// Cluster interconnect model: a 100 Mb/s full-duplex switch (the paper's
// Cisco Catalyst 2950) with per-port FIFO service and an Ethernet-style
// collision/backoff penalty.
//
// A transfer from src to dst acquires src's egress port, then dst's
// ingress port (FIFO queues, event-driven — a port is never reserved into
// the future), occupies both for bytes/bandwidth, and completes one switch
// latency later.  Fan-in to one receiver serializes (the all-to-all hot
// spot); a sender's messages queue at its own NIC in posting order
// (head-of-line blocking, as with real TCP sockets); disjoint pairwise
// exchanges proceed in parallel.
//
// Collision model (DESIGN.md §4.4): the paper observes that IS and SP run
// *faster below* peak CPU frequency and attributes it to collisions —
// "within a busy network, higher frequency may increase the probability of
// traffic collision and result longer waiting time for packet
// retransmission".  We encode that hypothesis directly: a large message
// risks a retransmission backoff with probability growing in the offered
// load (transfers in flight, queued or on the wire) and steeply in the
// injecting CPU's relative frequency (faster injection => burstier
// traffic).  Small messages never collide (they fit switch buffers).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/scheduler.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "telemetry/hub.hpp"

namespace pcd::net {

struct NetworkParams {
  double bandwidth_mbps = 100.0;                       // per port, full duplex
  sim::SimDuration latency = sim::from_micros(90.0);   // TCP small-message latency
  // Collision/backoff model.
  int collision_free_transfers = 2;       // offered load tolerated without risk
  double collision_coeff = 0.012;         // probability per excess in-flight transfer
  double collision_speed_exponent = 6.0;  // sensitivity to injection speed ratio
  double collision_prob_cap = 0.32;
  std::int64_t collision_min_bytes = 256 * 1024;  // bursts below this never collide
  sim::SimDuration backoff_min = sim::from_millis(5.0);
  sim::SimDuration backoff_max = sim::from_millis(15.0);
};

struct NetworkStats {
  std::int64_t transfers = 0;
  std::int64_t collisions = 0;
  sim::SimDuration backoff_ns = 0;
  std::int64_t bytes = 0;
  std::int64_t link_stalls = 0;  // transfers that had to wait out a downed link
};

class Network {
 public:
  /// `nic_activity(node, delta)` is invoked with +1/-1 as transfers begin /
  /// end wire occupancy on a node (drives NIC power).  May be empty.
  Network(sim::Scheduler& engine, int nodes, NetworkParams params, sim::Rng rng,
          sim::InlineFunction<void(int node, int delta)> nic_activity = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int nodes() const { return static_cast<int>(egress_.size()); }
  const NetworkParams& params() const { return params_; }
  const NetworkStats& stats() const { return stats_; }
  /// Transfers posted but not yet delivered (queued or on the wire) — the
  /// offered load driving the collision probability.
  int in_flight() const { return in_flight_; }

  /// Mirrors NetworkStats into the registry (net_transfers_total,
  /// net_bytes_total, net_collisions_total, net_backoff_seconds_total).
  /// Null detaches.
  void attach_telemetry(telemetry::Hub* hub);

  /// Awaitable point-to-point transfer.  `speed_ratio` is the injecting
  /// CPU's current frequency divided by its maximum (drives the collision
  /// probability).  Completion = delivery at the receiver.
  struct [[nodiscard]] TransferAwaitable {
    Network* net;
    int src, dst;
    std::int64_t bytes;
    double speed_ratio;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      net->start_transfer(src, dst, bytes, speed_ratio, h);
    }
    void await_resume() const {}
  };

  TransferAwaitable transfer(int src, int dst, std::int64_t bytes, double speed_ratio) {
    return TransferAwaitable{this, src, dst, bytes, speed_ratio};
  }

  /// Wire time of an uncontended transfer (no queueing, no collision, at
  /// nominal — undegraded — bandwidth).
  sim::SimDuration uncontended_time(std::int64_t bytes) const;

  /// Minimum latency over every link in the fabric.  Today all ports share
  /// NetworkParams::latency, so this is that value; heterogeneous per-link
  /// latencies must keep returning the fabric-wide minimum.  This bound is
  /// load-bearing for sharding: no message posted at time t can be
  /// delivered before t + min_latency(), which is exactly the conservative
  /// lookahead window ShardedEngine advances shards by (DESIGN.md §3.14).
  /// The constructor rejects non-positive latency — a zero here would
  /// silently collapse the lookahead to nothing.
  sim::SimDuration min_latency() const { return params_.latency; }

  /// Validates a parameter set the way the constructor does, but as
  /// structured issues (for RunConfig::validate): strictly positive latency
  /// and bandwidth.  `prefix` names the offending field ("cluster.network").
  static std::vector<std::pair<std::string, std::string>> validate_params(
      const NetworkParams& params, const std::string& prefix = "network");

  // ---- fault hooks (src/fault) ----

  /// Degrades effective per-port bandwidth to `factor` × nominal (duplex
  /// mismatch, failing switch fabric).  1.0 restores health.
  void set_bandwidth_factor(double factor);
  double bandwidth_factor() const { return bandwidth_factor_; }

  /// Adds a flat probability of retransmission backoff on top of the
  /// load/speed-driven collision model (noisy cabling).  0 restores health.
  void set_collision_boost(double boost);
  double collision_boost() const { return collision_boost_; }

  /// Link flap: while a node's link is down, its transfers (either
  /// direction) stall at the switch and resume when the link comes back.
  void set_link_up(int node, bool up);
  bool link_up(int node) const { return links_[node]->signaled(); }

 private:
  /// Single-server FIFO resource (one per egress / ingress port).
  struct Port {
    bool busy = false;
    std::deque<std::coroutine_handle<>> waiters;
  };

  struct PortAcquire {
    Port* port;
    bool await_ready() const {
      if (!port->busy) {
        port->busy = true;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { port->waiters.push_back(h); }
    void await_resume() const {}
  };

  void release(Port& port);
  void start_transfer(int src, int dst, std::int64_t bytes, double speed_ratio,
                      std::coroutine_handle<> h);
  sim::Process transfer_proc(int src, int dst, std::int64_t bytes, double speed_ratio,
                             std::coroutine_handle<> h);

  sim::Scheduler& engine_;
  NetworkParams params_;
  sim::Rng rng_;
  sim::InlineFunction<void(int, int)> nic_activity_;
  std::vector<Port> egress_;
  std::vector<Port> ingress_;
  std::vector<std::unique_ptr<sim::Event>> links_;  // signaled = link up
  double bandwidth_factor_ = 1.0;
  double collision_boost_ = 0.0;
  int in_flight_ = 0;
  NetworkStats stats_;
  telemetry::Counter* m_transfers_ = nullptr;
  telemetry::Counter* m_bytes_ = nullptr;
  telemetry::Counter* m_collisions_ = nullptr;
  telemetry::Counter* m_backoff_s_ = nullptr;
};

}  // namespace pcd::net
