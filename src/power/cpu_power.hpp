// CPU power model: the paper's Eq. (1), P ≈ A·C·V²·f, plus a leakage floor.
//
// Power is split into a dynamic part that scales with activity·V²·f and a
// leakage part that scales with V².  Both are normalized against the top
// operating point, so a model is parameterized by just two wattages.
#pragma once

#include "cpu/operating_point.hpp"

namespace pcd::power {

struct CpuPowerParams {
  /// Core dynamic power at the top operating point with activity 1.0
  /// (scales with V²·f — the paper's Eq. 1).
  double dynamic_watts_max = 17.5;
  /// Clock-distribution / I/O dynamic power at the top point (runs from a
  /// fixed auxiliary rail, so it scales with f only).
  double clock_watts_max = 2.9;
  /// Leakage at the top operating point's voltage (scales with V²).
  double leakage_watts_vmax = 1.8;

  /// Busy power at the top operating point (activity 1.0).
  double busy_watts_max() const {
    return dynamic_watts_max + clock_watts_max + leakage_watts_vmax;
  }

  /// Pentium M 1.4 GHz (NEMO node): ~22 W busy at 1.4 GHz / 1.484 V.
  static CpuPowerParams pentium_m() { return CpuPowerParams{14.0, 6.4, 1.8}; }
  /// Pentium III server node for the Figure 1 breakdown: "nearly 45 watts".
  static CpuPowerParams pentium_iii() { return CpuPowerParams{33.0, 5.0, 4.5}; }
};

class CpuPowerModel {
 public:
  CpuPowerModel(CpuPowerParams params, cpu::OperatingPoint top)
      : params_(params), top_(top) {}

  /// Instantaneous CPU power at `op` with power activity factor `activity`.
  double watts(const cpu::OperatingPoint& op, double activity) const {
    const double vr = op.voltage / top_.voltage;
    const double fr = static_cast<double>(op.freq_mhz) / top_.freq_mhz;
    return params_.leakage_watts_vmax * vr * vr +
           activity * (params_.dynamic_watts_max * vr * vr * fr +
                       params_.clock_watts_max * fr);
  }

  const CpuPowerParams& params() const { return params_; }
  const cpu::OperatingPoint& top() const { return top_; }

 private:
  CpuPowerParams params_;
  cpu::OperatingPoint top_;
};

}  // namespace pcd::power
