#include "power/meters.hpp"

#include <algorithm>
#include <cmath>

namespace pcd::power {

namespace {
constexpr double kJoulesPerMwh = 3.6;  // 1 mWh = 3.6 J (paper §4.2)
}

AcpiBattery::AcpiBattery(sim::Scheduler& engine, NodePowerModel& node,
                         AcpiBatteryParams params, sim::Rng rng)
    : engine_(engine),
      node_(node),
      params_(params),
      rng_(rng),
      level_mwh_(params.capacity_mwh),
      reported_mwh_(params.capacity_mwh) {
  // Draw from the stored stream in the same order as before it was kept:
  // period first, then phase.  Garbage-sensor readings continue the stream
  // and perturb nothing else.
  const double period_s = rng_.uniform(params_.refresh_min_s, params_.refresh_max_s);
  refresh_period_ = sim::from_seconds(period_s);
  initial_phase_ = static_cast<sim::SimDuration>(rng_.uniform(0.0, period_s) * 1e9);
}

void AcpiBattery::recharge_full() {
  level_mwh_ = params_.capacity_mwh;
  drained_mwh_before_ = 0;
  if (!on_ac_) drained_joules_at_disconnect_ = node_.energy_joules();
  reported_mwh_ = quantize(true_remaining_mwh());
  depleted_at_.reset();  // fresh pack: re-arm the depletion callback
}

void AcpiBattery::disconnect_ac() {
  if (!on_ac_) return;
  on_ac_ = false;
  drained_joules_at_disconnect_ = node_.energy_joules();
}

void AcpiBattery::connect_ac() {
  if (on_ac_) return;
  drained_mwh_before_ +=
      (node_.energy_joules() - drained_joules_at_disconnect_) / kJoulesPerMwh;
  on_ac_ = true;
}

double AcpiBattery::true_remaining_mwh() const {
  double drained = drained_mwh_before_;
  if (!on_ac_) {
    drained += (node_.energy_joules() - drained_joules_at_disconnect_) / kJoulesPerMwh;
  }
  return std::max(0.0, level_mwh_ - drained);
}

void AcpiBattery::fail_capacity(double remaining_fraction) {
  const double keep = std::clamp(remaining_fraction, 0.0, 1.0);
  level_mwh_ -= true_remaining_mwh() * (1.0 - keep);
}

double AcpiBattery::quantize(double mwh) const {
  return std::floor(mwh / params_.quantum_mwh) * params_.quantum_mwh;
}

void AcpiBattery::start_polling() {
  if (polling_) return;
  polling_ = true;
  reported_mwh_ = quantize(true_remaining_mwh());
  // First refresh after the random phase, then strictly every refresh
  // period: one pooled wheel timer for the whole polling lifetime.
  next_tick_ =
      engine_.schedule_every(initial_phase_, refresh_period_, [this] { refresh_tick(); },
                             "acpi.refresh");
}

void AcpiBattery::stop_polling() {
  if (!polling_) return;
  polling_ = false;
  engine_.cancel(next_tick_);
  next_tick_ = {};
}

void AcpiBattery::refresh_tick() {
  switch (sensor_fault_) {
    case SensorFault::None:
      reported_mwh_ = quantize(true_remaining_mwh());
      break;
    case SensorFault::Stale:
      break;  // wedged driver: keep returning the last refreshed value
    case SensorFault::Garbage:
      reported_mwh_ = quantize(rng_.uniform(0.0, params_.capacity_mwh));
      break;
  }
  if (refreshes_ != nullptr) refreshes_->inc();
  if (!on_ac_ && !depleted_at_.has_value() && true_remaining_mwh() <= 0.0) {
    depleted_at_ = engine_.now();
    if (on_depleted_) on_depleted_();
  }
}

void AcpiBattery::attach_telemetry(telemetry::Hub* hub, int node_id) {
  if (hub == nullptr) {
    refreshes_ = nullptr;
    return;
  }
  hub->registry().set_help("acpi_refreshes_total",
                           "ACPI battery state refreshes served by the sensor model");
  refreshes_ = &hub->registry().counter("acpi_refreshes_total",
                                        telemetry::label("node", node_id));
}

BaytechStrip::BaytechStrip(sim::Scheduler& engine, std::vector<NodePowerModel*> outlets,
                           BaytechParams params)
    : engine_(engine), outlets_(std::move(outlets)), params_(params) {}

void BaytechStrip::start_polling() {
  if (polling_) return;
  polling_ = true;
  window_start_ = engine_.now();
  joules_at_window_start_.clear();
  for (auto* node : outlets_) joules_at_window_start_.push_back(node->energy_joules());
  next_tick_ =
      engine_.schedule_every(sim::from_seconds(params_.window_s), [this] { tick(); },
                             "baytech.window");
}

void BaytechStrip::stop_polling() {
  if (!polling_) return;
  polling_ = false;
  engine_.cancel(next_tick_);
  next_tick_ = {};
}

void BaytechStrip::tick() {
  if (dropout_) {
    // Management unit not answering: the window is lost, but keep the
    // accumulators current so the next good window averages correctly.
    for (std::size_t i = 0; i < outlets_.size(); ++i) {
      joules_at_window_start_[i] = outlets_[i]->energy_joules();
    }
    window_start_ = engine_.now();
    return;  // the periodic schedule keeps the window cadence
  }
  BaytechRecord rec;
  rec.window_end = engine_.now();
  const double window_s = sim::to_seconds(engine_.now() - window_start_);
  rec.avg_watts.resize(outlets_.size());
  for (std::size_t i = 0; i < outlets_.size(); ++i) {
    const double joules = outlets_[i]->energy_joules();
    rec.avg_watts[i] = (joules - joules_at_window_start_[i]) / window_s;
    joules_at_window_start_[i] = joules;
  }
  records_.push_back(std::move(rec));
  if (windows_ != nullptr) windows_->inc();
  window_start_ = engine_.now();
}

void BaytechStrip::attach_telemetry(telemetry::Hub* hub) {
  if (hub == nullptr) {
    windows_ = nullptr;
    return;
  }
  hub->registry().set_help("baytech_windows_total",
                           "Completed Baytech power-strip averaging windows");
  windows_ = &hub->registry().counter("baytech_windows_total");
}

double BaytechStrip::estimate_energy_joules(sim::SimTime t0, sim::SimTime t1) const {
  // Sum avg_watts * overlap over every record window intersecting [t0, t1] —
  // the coarse estimate an operator would compute from the SNMP log.
  double joules = 0;
  const auto window = sim::from_seconds(params_.window_s);
  for (const auto& rec : records_) {
    const sim::SimTime w1 = rec.window_end;
    const sim::SimTime w0 = w1 - window;
    const sim::SimTime lo = std::max(t0, w0);
    const sim::SimTime hi = std::min(t1, w1);
    if (hi <= lo) continue;
    const double overlap_s = sim::to_seconds(hi - lo);
    for (double w : rec.avg_watts) joules += w * overlap_s;
  }
  return joules;
}

}  // namespace pcd::power
