// Simulated measurement instruments.
//
// The paper measures energy two independent ways (§4.2):
//   1. ACPI smart battery polling — remaining capacity in mWh (1 mWh =
//      3.6 J), refreshed only every 15–20 s, valid only while the node runs
//      on DC power.  Application energy = capacity(start) − capacity(end).
//   2. Baytech power-strip polling — per-outlet power averaged over
//      one-minute windows, reported via SNMP.
// Both are reproduced here as instruments reading the node's exact energy
// integrator through a quantizing/staleness filter, so the measurement
// error of the paper's methodology is part of the model.
#pragma once

#include <optional>
#include <vector>

#include "power/node_power.hpp"
#include "sim/callback.hpp"
#include "sim/scheduler.hpp"
#include "sim/rng.hpp"
#include "telemetry/hub.hpp"

namespace pcd::power {

struct AcpiBatteryParams {
  double capacity_mwh = 53000;  // Inspiron 8600 pack, ~53 Wh
  double refresh_min_s = 15.0;  // paper: "polling data updated every 15-20 seconds"
  double refresh_max_s = 20.0;
  double quantum_mwh = 1.0;     // smart-battery reporting granularity
};

/// Failure mode of the ACPI sensor path (the /proc/acpi reader), injectable
/// by the fault layer.  The battery itself keeps draining either way.
enum class SensorFault {
  None,     // healthy: refreshes report the quantized true value
  Stale,    // driver wedged: refreshes keep returning the last value
  Garbage,  // flaky SMBus: refreshes report random capacities
};

/// ACPI smart battery attached to one node.
class AcpiBattery {
 public:
  AcpiBattery(sim::Scheduler& engine, NodePowerModel& node, AcpiBatteryParams params,
              sim::Rng rng);
  ~AcpiBattery() { stop_polling(); }

  AcpiBattery(const AcpiBattery&) = delete;
  AcpiBattery& operator=(const AcpiBattery&) = delete;

  /// Paper protocol step 1: fully charge (only sensible while on AC).
  void recharge_full();
  /// Paper protocol step 2: switch the node to DC; discharge begins.
  void disconnect_ac();
  /// Reconnect building power; discharge stops.
  void connect_ac();
  bool on_ac() const { return on_ac_; }

  /// Begins the 15–20 s ACPI refresh loop (the refresh period and its phase
  /// are drawn once per battery).  Idempotent.
  void start_polling();
  void stop_polling();

  /// The value `/proc/acpi` would show: stale (last refresh) and quantized.
  double reported_remaining_mwh() const { return reported_mwh_; }
  /// Ground truth, for accuracy studies.  Clamped at 0: a pack cannot hold
  /// negative charge — past this point the node is simply dead.
  double true_remaining_mwh() const;

  /// Fault hooks ------------------------------------------------------
  void set_sensor_fault(SensorFault f) { sensor_fault_ = f; }
  SensorFault sensor_fault() const { return sensor_fault_; }
  /// Sudden capacity loss (cell failure): only `remaining_fraction` of the
  /// current true charge survives.
  void fail_capacity(double remaining_fraction);
  /// Invoked once when a refresh tick finds the pack empty while on DC
  /// (the node browns out); re-armed by recharge_full().
  void set_depleted(sim::InlineFunction<void()> cb) { on_depleted_ = std::move(cb); }
  std::optional<sim::SimTime> depleted_at() const { return depleted_at_; }

  const AcpiBatteryParams& params() const { return params_; }
  sim::SimDuration refresh_period() const { return refresh_period_; }

  /// Counts ACPI refresh events as acpi_refreshes_total{node=...} so the
  /// measurement protocol's staleness window is observable.  Null detaches.
  void attach_telemetry(telemetry::Hub* hub, int node_id);

 private:
  void refresh_tick();
  double quantize(double mwh) const;

  sim::Scheduler& engine_;
  NodePowerModel& node_;
  AcpiBatteryParams params_;
  sim::Rng rng_;  // private stream for Garbage readings (drawn only then)
  sim::SimDuration refresh_period_;
  sim::SimDuration initial_phase_;

  bool on_ac_ = true;
  double drained_joules_at_disconnect_ = 0;  // node energy when DC began
  double drained_mwh_before_ = 0;            // accumulated over past DC stints
  double level_mwh_;                         // capacity level (set by recharge)
  double reported_mwh_;

  bool polling_ = false;
  sim::EventId next_tick_;  // persistent periodic timer; invalid when stopped
  telemetry::Counter* refreshes_ = nullptr;

  SensorFault sensor_fault_ = SensorFault::None;
  sim::InlineFunction<void()> on_depleted_;
  std::optional<sim::SimTime> depleted_at_;
};

struct BaytechParams {
  double window_s = 60.0;  // paper: "power related polling data is updated each minute"
};

/// One Baytech management-unit record: average outlet power per window.
struct BaytechRecord {
  sim::SimTime window_end = 0;
  std::vector<double> avg_watts;  // one entry per outlet
};

/// Baytech remote power strip: one outlet per node, plus remote on/off of
/// building power (used by the measurement protocol to flip nodes to DC).
class BaytechStrip {
 public:
  BaytechStrip(sim::Scheduler& engine, std::vector<NodePowerModel*> outlets,
               BaytechParams params = {});
  ~BaytechStrip() { stop_polling(); }

  BaytechStrip(const BaytechStrip&) = delete;
  BaytechStrip& operator=(const BaytechStrip&) = delete;

  void start_polling();
  void stop_polling();

  /// Fault hook: while set, the SNMP management unit stops answering —
  /// windows elapse but no records are appended (a gap in the log).
  void set_dropout(bool d) { dropout_ = d; }
  bool dropout() const { return dropout_; }

  const std::vector<BaytechRecord>& records() const { return records_; }

  /// Integrates the per-minute records overlapping [t0, t1] into an energy
  /// estimate (joules over all outlets) — how the redundant measurement is
  /// used to verify ACPI numbers.
  double estimate_energy_joules(sim::SimTime t0, sim::SimTime t1) const;

  /// Counts completed one-minute windows as baytech_windows_total.
  void attach_telemetry(telemetry::Hub* hub);

 private:
  void tick();

  sim::Scheduler& engine_;
  std::vector<NodePowerModel*> outlets_;
  BaytechParams params_;
  std::vector<double> joules_at_window_start_;
  sim::SimTime window_start_ = 0;
  std::vector<BaytechRecord> records_;
  bool polling_ = false;
  bool dropout_ = false;
  sim::EventId next_tick_;  // persistent periodic timer; invalid when stopped
  telemetry::Counter* windows_ = nullptr;
};

}  // namespace pcd::power
