#include "power/node_power.hpp"

#include <bit>

namespace pcd::power {

NodePowerParams NodePowerParams::nemo() {
  NodePowerParams p;
  p.cpu = CpuPowerParams::pentium_m();
  p.base_watts = 7.7;
  p.mem_idle_watts = 1.2;
  p.mem_active_watts = 2.2;
  p.disk_watts = 0.5;
  p.nic_idle_watts = 0.6;
  p.nic_active_watts = 1.2;
  return p;
}

NodePowerParams NodePowerParams::pentium_iii_server() {
  NodePowerParams p;
  p.cpu = CpuPowerParams::pentium_iii();
  p.base_watts = 26.0;  // server board, PSU loss, fans
  p.mem_idle_watts = 4.0;
  p.mem_active_watts = 5.0;
  p.disk_watts = 6.0;
  p.nic_idle_watts = 1.0;
  p.nic_active_watts = 1.5;
  return p;
}

NodePowerModel::NodePowerModel(sim::Scheduler& engine, cpu::Cpu& cpu,
                               NodePowerParams params, NodeStateArena* arena,
                               int lane)
    : engine_(engine),
      cpu_(cpu),
      params_(params),
      cpu_model_(params.cpu, cpu.table().highest()) {
  if (arena == nullptr) {
    owned_ = std::make_unique<NodeStateArena>(1);
    arena = owned_.get();
    lane = 0;
  }
  arena_ = arena;
  lane_ = lane;
  arena_->bind(lane_, this, engine.now());
  // The CPU writes its DVS-relevant state through to the lane so batch
  // sweeps (transition_all) can test for no-ops without touching objects.
  cpu_.bind_mirror({arena_->freq_lane(lane_), arena_->flags_lane(lane_)});
  cpu_.set_change_listener([this] {
    accrue();  // integrate the closing interval at the old draw...
    arena_->dirty_[static_cast<std::size_t>(lane_)] = 1;  // ...then mark stale
    note_step();
  });
}

NodePowerModel::~NodePowerModel() {
  cpu_.set_change_listener({});
  cpu_.bind_mirror({});
  arena_->unbind(lane_);
}

void NodePowerModel::set_digest(sim::DigestStream* digest, int node_id) {
  digest_ = digest;
  node_id_ = node_id;
}

double NodePowerModel::lane_total() const {
  const double* j = arena_->joules(lane_);
  return j[0] + j[1] + j[2] + j[3] + j[4];
}

void NodePowerModel::note_step_slow() const {
  const std::uint64_t rec[3] = {static_cast<std::uint64_t>(node_id_),
                                static_cast<std::uint64_t>(engine_.now_cached()),
                                std::bit_cast<std::uint64_t>(lane_total())};
  digest_->fold_record(rec, 3);
}

void NodePowerModel::refresh_watts() const {
  const auto i = static_cast<std::size_t>(lane_);
  double* w = &arena_->watts_[i * NodeStateArena::kComponents];
  if (cpu_.offline()) {
    w[0] = w[1] = w[2] = w[3] = w[4] = 0.0;  // node dark: every component at 0 W
  } else {
    w[0] = cpu_model_.watts(cpu_.power_op(), cpu_.activity());
    w[1] = params_.mem_idle_watts + params_.mem_active_watts * cpu_.mem_activity();
    w[2] = params_.disk_watts;
    w[3] = params_.nic_idle_watts +
           (arena_->nic_flows_[i] > 0 ? params_.nic_active_watts : 0.0);
    w[4] = params_.base_watts;
  }
  arena_->dirty_[i] = 0;
}

PowerBreakdown NodePowerModel::breakdown() const {
  if (arena_->dirty_[static_cast<std::size_t>(lane_)]) refresh_watts();
  const double* w = arena_->watts(lane_);
  PowerBreakdown b;
  b.cpu = w[0];
  b.memory = w[1];
  b.disk = w[2];
  b.nic = w[3];
  b.other = w[4];
  return b;
}


double NodePowerModel::energy_joules() const {
  accrue();
  return lane_total();
}

EnergyBreakdown NodePowerModel::energy_breakdown() const {
  accrue();
  const double* j = arena_->joules(lane_);
  EnergyBreakdown e;
  e.cpu = j[0];
  e.memory = j[1];
  e.disk = j[2];
  e.nic = j[3];
  e.other = j[4];
  return e;
}

void NodePowerModel::set_nic_flows(int flows) {
  const auto i = static_cast<std::size_t>(lane_);
  if (flows == arena_->nic_flows_[i]) return;
  accrue();
  arena_->nic_flows_[i] = flows;
  arena_->dirty_[i] = 1;  // the NIC component of the cached draw changed
  note_step();
}

}  // namespace pcd::power
