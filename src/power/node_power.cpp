#include "power/node_power.hpp"

#include <bit>

namespace pcd::power {

NodePowerParams NodePowerParams::nemo() {
  NodePowerParams p;
  p.cpu = CpuPowerParams::pentium_m();
  p.base_watts = 7.7;
  p.mem_idle_watts = 1.2;
  p.mem_active_watts = 2.2;
  p.disk_watts = 0.5;
  p.nic_idle_watts = 0.6;
  p.nic_active_watts = 1.2;
  return p;
}

NodePowerParams NodePowerParams::pentium_iii_server() {
  NodePowerParams p;
  p.cpu = CpuPowerParams::pentium_iii();
  p.base_watts = 26.0;  // server board, PSU loss, fans
  p.mem_idle_watts = 4.0;
  p.mem_active_watts = 5.0;
  p.disk_watts = 6.0;
  p.nic_idle_watts = 1.0;
  p.nic_active_watts = 1.5;
  return p;
}

NodePowerModel::NodePowerModel(sim::Scheduler& engine, cpu::Cpu& cpu, NodePowerParams params)
    : engine_(engine),
      cpu_(cpu),
      params_(params),
      cpu_model_(params.cpu, cpu.table().highest()),
      last_accrue_(engine.now()) {
  cpu_.set_change_listener([this] {
    accrue();
    note_step();
  });
}

void NodePowerModel::set_digest(sim::DigestStream* digest, int node_id) {
  digest_ = digest;
  node_id_ = node_id;
}

void NodePowerModel::note_step() const {
  if (digest_ == nullptr) return;
  const std::uint64_t rec[3] = {static_cast<std::uint64_t>(node_id_),
                                static_cast<std::uint64_t>(engine_.now()),
                                std::bit_cast<std::uint64_t>(energy_.total())};
  digest_->fold_record(rec, 3);
}

PowerBreakdown NodePowerModel::breakdown() const {
  PowerBreakdown b;
  if (cpu_.offline()) return b;  // node dark: every component at 0 W
  b.cpu = cpu_model_.watts(cpu_.power_op(), cpu_.activity());
  b.memory = params_.mem_idle_watts + params_.mem_active_watts * cpu_.mem_activity();
  b.disk = params_.disk_watts;
  b.nic = params_.nic_idle_watts + (nic_flows_ > 0 ? params_.nic_active_watts : 0.0);
  b.other = params_.base_watts;
  return b;
}

void NodePowerModel::accrue() const {
  const sim::SimTime now = engine_.now();
  const double dt = sim::to_seconds(now - last_accrue_);
  if (dt > 0) {
    const PowerBreakdown b = breakdown();
    energy_.cpu += b.cpu * dt;
    energy_.memory += b.memory * dt;
    energy_.disk += b.disk * dt;
    energy_.nic += b.nic * dt;
    energy_.other += b.other * dt;
  }
  last_accrue_ = now;
}

double NodePowerModel::energy_joules() const {
  accrue();
  return energy_.total();
}

EnergyBreakdown NodePowerModel::energy_breakdown() const {
  accrue();
  return energy_;
}

void NodePowerModel::set_nic_flows(int flows) {
  if (flows == nic_flows_) return;
  accrue();
  nic_flows_ = flows;
  note_step();
}

}  // namespace pcd::power
