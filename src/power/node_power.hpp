// Whole-node power model and exact energy accounting.
//
// Node power = CPU + memory + disk + NIC + base (Figure 1's component
// breakdown).  Every component's draw is a piecewise-constant function of
// simulation state, so energy is integrated exactly: the model accrues
// joules whenever any input changes and on every read.
#pragma once

#include <functional>

#include "cpu/cpu.hpp"
#include "power/cpu_power.hpp"
#include "sim/scheduler.hpp"

namespace pcd::power {

struct NodePowerParams {
  CpuPowerParams cpu;
  double base_watts = 9.0;        // mainboard, bridges, PSU loss, panel off
  double mem_idle_watts = 1.2;    // DRAM refresh + standby
  double mem_active_watts = 2.2;  // extra at full DRAM activity
  double disk_watts = 0.8;        // spun down most of the time (no disk I/O modeled)
  double nic_idle_watts = 0.6;
  double nic_active_watts = 1.2;  // extra while a transfer touches this node

  /// NEMO node: Dell Inspiron 8600 laptop, Pentium M 1.4 GHz.
  static NodePowerParams nemo();
  /// Pentium III server node used for the Figure 1 measurement.
  static NodePowerParams pentium_iii_server();
};

/// Instantaneous per-component wattage.
struct PowerBreakdown {
  double cpu = 0;
  double memory = 0;
  double disk = 0;
  double nic = 0;
  double other = 0;
  double total() const { return cpu + memory + disk + nic + other; }
};

/// Cumulative per-component energy (joules).
struct EnergyBreakdown {
  double cpu = 0;
  double memory = 0;
  double disk = 0;
  double nic = 0;
  double other = 0;
  double total() const { return cpu + memory + disk + nic + other; }
};

class NodePowerModel {
 public:
  NodePowerModel(sim::Scheduler& engine, cpu::Cpu& cpu, NodePowerParams params);

  NodePowerModel(const NodePowerModel&) = delete;
  NodePowerModel& operator=(const NodePowerModel&) = delete;

  /// Current per-component draw.
  PowerBreakdown breakdown() const;
  double watts() const { return breakdown().total(); }

  /// Exact cumulative node energy up to now.
  double energy_joules() const;
  /// Exact cumulative per-component energy up to now.
  EnergyBreakdown energy_breakdown() const;

  /// Number of network transfers currently touching this node (drives NIC
  /// active power).  Maintained by the network model.
  void set_nic_flows(int flows);
  int nic_flows() const { return nic_flows_; }

  const NodePowerParams& params() const { return params_; }

  /// Determinism observability: while set, every *simulation-driven*
  /// integration step (CPU state change, NIC flow change) folds one record
  /// (node, t, cumulative joules) into the stream.  Pure reads also accrue
  /// lazily but are deliberately NOT folded — the digest must be a function
  /// of the simulation, not of who observed it.
  void set_digest(sim::DigestStream* digest, int node_id);

 private:
  void accrue() const;
  void note_step() const;

  sim::Scheduler& engine_;
  cpu::Cpu& cpu_;
  NodePowerParams params_;
  CpuPowerModel cpu_model_;
  int nic_flows_ = 0;
  sim::DigestStream* digest_ = nullptr;
  int node_id_ = -1;

  mutable sim::SimTime last_accrue_;
  mutable EnergyBreakdown energy_;
};

}  // namespace pcd::power
