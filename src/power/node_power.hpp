// Whole-node power model and exact energy accounting.
//
// Node power = CPU + memory + disk + NIC + base (Figure 1's component
// breakdown).  Every component's draw is a piecewise-constant function of
// simulation state, so energy is integrated exactly: the model accrues
// joules whenever any input changes and on every read.
//
// Since the SoA refactor the integrator state itself (last-accrue tick,
// cached draw, cumulative joules, NIC flows) lives in a NodeStateArena
// lane; NodePowerModel is a thin view over that lane.  The cluster passes
// its shared arena in; the standalone constructor (used by tests and
// single-node setups) owns a private one-lane arena, so the public API and
// the integration arithmetic are identical either way.
#pragma once

#include <functional>
#include <memory>

#include "cpu/cpu.hpp"
#include "power/cpu_power.hpp"
#include "power/state_arena.hpp"
#include "sim/scheduler.hpp"

namespace pcd::power {

struct NodePowerParams {
  CpuPowerParams cpu;
  double base_watts = 9.0;        // mainboard, bridges, PSU loss, panel off
  double mem_idle_watts = 1.2;    // DRAM refresh + standby
  double mem_active_watts = 2.2;  // extra at full DRAM activity
  double disk_watts = 0.8;        // spun down most of the time (no disk I/O modeled)
  double nic_idle_watts = 0.6;
  double nic_active_watts = 1.2;  // extra while a transfer touches this node

  /// NEMO node: Dell Inspiron 8600 laptop, Pentium M 1.4 GHz.
  static NodePowerParams nemo();
  /// Pentium III server node used for the Figure 1 measurement.
  static NodePowerParams pentium_iii_server();
};

/// Instantaneous per-component wattage.
struct PowerBreakdown {
  double cpu = 0;
  double memory = 0;
  double disk = 0;
  double nic = 0;
  double other = 0;
  double total() const { return cpu + memory + disk + nic + other; }
};

/// Cumulative per-component energy (joules).
struct EnergyBreakdown {
  double cpu = 0;
  double memory = 0;
  double disk = 0;
  double nic = 0;
  double other = 0;
  double total() const { return cpu + memory + disk + nic + other; }
};

class NodePowerModel {
 public:
  /// View over `lane` of `arena`; with arena == nullptr the model owns a
  /// private one-lane arena (standalone use keeps working unchanged).
  NodePowerModel(sim::Scheduler& engine, cpu::Cpu& cpu, NodePowerParams params,
                 NodeStateArena* arena = nullptr, int lane = 0);
  ~NodePowerModel();

  NodePowerModel(const NodePowerModel&) = delete;
  NodePowerModel& operator=(const NodePowerModel&) = delete;

  /// Current per-component draw (served from the lane's cached watts,
  /// refreshed from live CPU state when stale — bit-identical to an eager
  /// recompute).
  PowerBreakdown breakdown() const;
  double watts() const { return breakdown().total(); }

  /// Exact cumulative node energy up to now.
  double energy_joules() const;
  /// Exact cumulative per-component energy up to now.
  EnergyBreakdown energy_breakdown() const;

  /// Number of network transfers currently touching this node (drives NIC
  /// active power).  Maintained by the network model.
  void set_nic_flows(int flows);
  int nic_flows() const { return arena_->nic_flows(lane_); }

  const NodePowerParams& params() const { return params_; }

  /// The backing arena and this view's lane in it.
  NodeStateArena& arena() { return *arena_; }
  const NodeStateArena& arena() const { return *arena_; }
  int lane() const { return lane_; }

  /// Write-through for machine::Node's requested-frequency bookkeeping, so
  /// NodeStateArena::can_skip_transition sees what strategies last asked
  /// for without touching the Node object.
  void mirror_requested_mhz(int mhz) {
    arena_->requested_mhz_[static_cast<std::size_t>(lane_)] = mhz;
  }

  /// Determinism observability: while set, every *simulation-driven*
  /// integration step (CPU state change, NIC flow change) folds one record
  /// (node, t, cumulative joules) into the stream.  Pure reads also accrue
  /// lazily but are deliberately NOT folded — the digest must be a function
  /// of the simulation, not of who observed it.
  void set_digest(sim::DigestStream* digest, int node_id);

 private:
  friend class NodeStateArena;

  void accrue() const { arena_->accrue_lane(lane_, engine_.now_cached()); }
  void note_step() const {
    if (digest_ != nullptr) note_step_slow();
  }
  void note_step_slow() const;
  /// Recomputes the lane's cached per-component draw from live CPU state
  /// and clears the dirty bit.  The expressions are exactly the old eager
  /// breakdown(), so cached values match a fresh compute bit for bit.
  void refresh_watts() const;
  double lane_total() const;

  sim::Scheduler& engine_;
  cpu::Cpu& cpu_;
  NodePowerParams params_;
  CpuPowerModel cpu_model_;
  std::unique_ptr<NodeStateArena> owned_;  // standalone ctor only
  NodeStateArena* arena_;
  int lane_;
  sim::DigestStream* digest_ = nullptr;
  int node_id_ = -1;
};

}  // namespace pcd::power
