#include "power/state_arena.hpp"

#include <stdexcept>

#include "power/node_power.hpp"

namespace pcd::power {

NodeStateArena::NodeStateArena(int nodes) {
  if (nodes <= 0) throw std::invalid_argument("arena needs at least one lane");
  const auto n = static_cast<std::size_t>(nodes);
  last_.assign(n, 0);
  watts_.assign(n * kComponents, 0.0);
  joules_.assign(n * kComponents, 0.0);
  dirty_.assign(n, 1);
  nic_flows_.assign(n, 0);
  freq_mhz_.assign(n, 0);
  requested_mhz_.assign(n, 0);
  flags_.assign(n, 0);
  views_.assign(n, nullptr);
}

void NodeStateArena::bind(int lane, NodePowerModel* view, sim::SimTime now) {
  const auto i = static_cast<std::size_t>(lane);
  if (i >= views_.size()) throw std::out_of_range("arena lane out of range");
  if (views_[i] != nullptr) throw std::logic_error("arena lane already bound");
  views_[i] = view;
  last_[i] = now;
  dirty_[i] = 1;
  nic_flows_[i] = 0;
  for (int c = 0; c < kComponents; ++c) {
    watts_[i * kComponents + static_cast<std::size_t>(c)] = 0.0;
    joules_[i * kComponents + static_cast<std::size_t>(c)] = 0.0;
  }
}

void NodeStateArena::unbind(int lane) {
  views_[static_cast<std::size_t>(lane)] = nullptr;
}

void NodeStateArena::accrue_lane_slow(int lane, sim::SimTime now) {
  const auto i = static_cast<std::size_t>(lane);
  const double dt = sim::to_seconds(now - last_[i]);
  if (dt > 0) {
    // Refresh only when there is an interval to price: with dt == 0 the
    // stale cache costs nothing, and any same-instant state changes all
    // land before time advances, so deferring the refresh is exact.
    if (dirty_[i]) views_[i]->refresh_watts();
    double* j = &joules_[i * kComponents];
    const double* w = &watts_[i * kComponents];
    j[0] += w[0] * dt;
    j[1] += w[1] * dt;
    j[2] += w[2] * dt;
    j[3] += w[3] * dt;
    j[4] += w[4] * dt;
  }
  last_[i] = now;
}

void NodeStateArena::accrue_all(sim::SimTime now) {
  const std::size_t n = views_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (dirty_[i] && views_[i] != nullptr && now > last_[i]) {
      views_[i]->refresh_watts();
    }
  }
  // With every lane that matters refreshed, the integration itself is one
  // dense vectorizable pass.
  for (std::size_t i = 0; i < n; ++i) {
    if (views_[i] == nullptr) continue;
    const double dt = sim::to_seconds(now - last_[i]);
    if (dt > 0) {
      double* j = &joules_[i * kComponents];
      const double* w = &watts_[i * kComponents];
      j[0] += w[0] * dt;
      j[1] += w[1] * dt;
      j[2] += w[2] * dt;
      j[3] += w[3] * dt;
      j[4] += w[4] * dt;
    }
    last_[i] = now;
  }
}

void NodeStateArena::refresh_all() {
  const std::size_t n = views_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (dirty_[i] && views_[i] != nullptr) views_[i]->refresh_watts();
  }
}

double NodeStateArena::total_joules() const {
  double total = 0;
  const std::size_t n = views_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (views_[i] == nullptr) continue;
    const double* j = &joules_[i * kComponents];
    total += j[0] + j[1] + j[2] + j[3] + j[4];
  }
  return total;
}

}  // namespace pcd::power
