// Structure-of-arrays backing store for per-node power/DVS state.
//
// Every node's integrator state — last-accrue tick, cached per-component
// draw, cumulative per-component joules, NIC flow count — plus mirrors of
// the DVS-relevant CPU state (current frequency, requested frequency,
// transition/offline/checkpoint/stuck flags) lives in contiguous lanes
// owned at the cluster layer.  cpu::Cpu and power::NodePowerModel are thin
// views over their lane: the public APIs and the exact piecewise-constant
// integration semantics are unchanged, but cluster-wide operations walk N
// dense lanes instead of N scattered heap objects.
//
// Integration protocol (bit-identical to the per-object model):
//   - watts_[lane] caches the node's per-component draw as of the last
//     refresh; dirty_[lane] is set whenever simulation state may have
//     changed since (the CPU change listener fires *before* every change
//     and marks the lane after integrating the closing interval).
//   - accrue_lane/accrue_all refresh dirty lanes from live CPU state, then
//     integrate joules += watts * dt.  Because every state change is
//     preceded by an accrual at the old draw, any un-integrated interval
//     is entirely under the *current* state, so a refresh at read time is
//     exact — the cached path reproduces the eager recompute bit for bit.
//   - Reads never fold digest records (the power digest is a function of
//     the simulation, not of who observed it); NodePowerModel::note_step
//     stays on the view.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace pcd::power {

class NodePowerModel;

class NodeStateArena {
 public:
  /// Component lanes per node, in EnergyBreakdown order:
  /// cpu, memory, disk, nic, other.
  static constexpr int kComponents = 5;

  // Flag bits mirrored from cpu::Cpu (must match cpu::Cpu::kMirror*).
  static constexpr std::uint8_t kTransitioning = 1;
  static constexpr std::uint8_t kOffline = 2;
  static constexpr std::uint8_t kCkptStall = 4;
  static constexpr std::uint8_t kDvsStuck = 8;

  explicit NodeStateArena(int nodes);

  NodeStateArena(const NodeStateArena&) = delete;
  NodeStateArena& operator=(const NodeStateArena&) = delete;

  int size() const { return static_cast<int>(views_.size()); }

  /// Batch kernel: integrates every bound lane's cached draw up to `now`
  /// in one pass (dirty lanes are refreshed from live CPU state first).
  /// Pure read-side accrual — never folds digest records.
  void accrue_all(sim::SimTime now);

  /// Recomputes the cached draw of every dirty bound lane (no
  /// integration) so a subsequent sweep of breakdown() reads is pure
  /// lane loads.
  void refresh_all();

  /// Cumulative joules over all bound lanes, accumulated per lane in
  /// component order then summed in lane order — the same addition order
  /// as summing NodePowerModel::energy_joules() node by node.
  double total_joules() const;

  /// True when applying `mhz` to this lane is a complete no-op: already at
  /// that frequency, nothing requested differently, and no transition /
  /// outage / checkpoint stall that the full set_cpuspeed path would have
  /// to coalesce into.  (A stuck driver at the same frequency drops
  /// nothing, so kDvsStuck does not block the skip.)
  bool can_skip_transition(int lane, int mhz) const {
    return freq_mhz_[static_cast<std::size_t>(lane)] == mhz &&
           requested_mhz_[static_cast<std::size_t>(lane)] == mhz &&
           (flags_[static_cast<std::size_t>(lane)] &
            (kTransitioning | kOffline | kCkptStall)) == 0;
  }

  // ---- lane accessors (views and mirrors write through these) ----

  std::int32_t* freq_lane(int lane) { return &freq_mhz_[static_cast<std::size_t>(lane)]; }
  std::uint8_t* flags_lane(int lane) { return &flags_[static_cast<std::size_t>(lane)]; }
  int freq_mhz(int lane) const { return freq_mhz_[static_cast<std::size_t>(lane)]; }
  int requested_mhz(int lane) const { return requested_mhz_[static_cast<std::size_t>(lane)]; }
  std::uint8_t flags(int lane) const { return flags_[static_cast<std::size_t>(lane)]; }
  int nic_flows(int lane) const { return nic_flows_[static_cast<std::size_t>(lane)]; }
  sim::SimTime last_accrue(int lane) const { return last_[static_cast<std::size_t>(lane)]; }
  bool dirty(int lane) const { return dirty_[static_cast<std::size_t>(lane)] != 0; }
  /// Cached per-component draw (kComponents doubles).  Valid when !dirty().
  const double* watts(int lane) const {
    return &watts_[static_cast<std::size_t>(lane) * kComponents];
  }
  /// Cumulative per-component joules (kComponents doubles).
  const double* joules(int lane) const {
    return &joules_[static_cast<std::size_t>(lane) * kComponents];
  }

 private:
  friend class NodePowerModel;

  /// Registers a view over `lane` and resets the lane's integrator state.
  void bind(int lane, NodePowerModel* view, sim::SimTime now);
  void unbind(int lane);

  /// Per-lane accrual, shared by the view read path and accrue_all so the
  /// arithmetic (and therefore the doubles) is identical in both.
  // The no-elapsed-time case (several notifies at one instant) is the
  // common one on the listener path; keep it call-free.
  void accrue_lane(int lane, sim::SimTime now) {
    if (now == last_[static_cast<std::size_t>(lane)]) return;
    accrue_lane_slow(lane, now);
  }
  void accrue_lane_slow(int lane, sim::SimTime now);

  std::vector<sim::SimTime> last_;          // last-accrue tick
  std::vector<double> watts_;               // cached draw   [lane*5 + c]
  std::vector<double> joules_;              // cumulative    [lane*5 + c]
  std::vector<std::uint8_t> dirty_;         // watts cache stale?
  std::vector<std::int32_t> nic_flows_;     // live transfers touching node
  std::vector<std::int32_t> freq_mhz_;      // mirror: current operating point
  std::vector<std::int32_t> requested_mhz_; // mirror: last strategy request
  std::vector<std::uint8_t> flags_;         // mirror: k* bits above
  std::vector<NodePowerModel*> views_;      // bound view per lane (may be null)
};

}  // namespace pcd::power
