#include "power/thermal.hpp"

namespace pcd::power {

ThermalModel::ThermalModel(sim::Scheduler& engine, const NodePowerModel& node,
                           ThermalParams params, double sample_s)
    : engine_(engine),
      node_(node),
      params_(params),
      sample_interval_(sim::from_seconds(sample_s)),
      temp_c_(params.t0_c),
      peak_c_(params.t0_c) {}

void ThermalModel::start() {
  if (running_) return;
  running_ = true;
  started_ = engine_.now();
  last_sample_ = engine_.now();
  weighted_sum_c_ = 0;
  peak_c_ = temp_c_;
  next_tick_ =
      engine_.schedule_every(sample_interval_, [this] { tick(); }, "thermal.sample");
}

void ThermalModel::stop() {
  if (!running_) return;
  running_ = false;
  engine_.cancel(next_tick_);
  next_tick_ = {};
}

double ThermalModel::mean_c() const {
  const double span = sim::to_seconds(last_sample_ - started_);
  return span > 0 ? weighted_sum_c_ / span : temp_c_;
}

void ThermalModel::tick() {
  const double dt = sim::to_seconds(engine_.now() - last_sample_);
  // The CPU's current draw drives the junction toward T_inf.
  const double cpu_watts = node_.breakdown().cpu;
  const double t_inf = params_.ambient_c + params_.r_th_c_per_w * cpu_watts;
  const double decay = std::exp(-dt / params_.tau_s);
  const double new_temp = t_inf + (temp_c_ - t_inf) * decay;
  // Trapezoidal accumulation of the mean.
  weighted_sum_c_ += 0.5 * (temp_c_ + new_temp) * dt;
  temp_c_ = new_temp;
  peak_c_ = std::max(peak_c_, temp_c_);
  last_sample_ = engine_.now();
}

}  // namespace pcd::power
