// Thermal and reliability model.
//
// The paper motivates power-aware clusters partly through reliability
// (§1): "According to formula based on the Arrhenius Law, component life
// expectancy decreases 50% for every 10°C (18°F) temperature increase.
// Reducing a component's operating temperature the same amount doubles
// the life expectancy."
//
// This module closes that loop: a first-order RC thermal model tracks CPU
// temperature from the node's power draw, and the Arrhenius factor turns
// the run's average temperature into a life-expectancy multiplier — so
// DVS schedules can be compared on reliability as well as energy.
//
// The RC response to piecewise-constant power is solved exactly per
// segment:  T(t) = T_inf + (T0 - T_inf) * exp(-dt/tau),
// with T_inf = T_ambient + R_th * P.
#pragma once

#include <cmath>

#include "power/node_power.hpp"
#include "sim/scheduler.hpp"

namespace pcd::power {

struct ThermalParams {
  double ambient_c = 24.0;       // machine-room air
  double r_th_c_per_w = 1.4;     // CPU junction-to-air thermal resistance
  double tau_s = 12.0;           // thermal time constant (heatsink mass)
  double t0_c = 38.0;            // initial temperature
};

/// Per-node CPU thermal tracker.  Samples the CPU component of node power
/// on a fixed cadence and advances the RC model exactly per sample.
class ThermalModel {
 public:
  ThermalModel(sim::Scheduler& engine, const NodePowerModel& node,
               ThermalParams params = {}, double sample_s = 0.25);
  ~ThermalModel() { stop(); }

  ThermalModel(const ThermalModel&) = delete;
  ThermalModel& operator=(const ThermalModel&) = delete;

  void start();
  void stop();

  double temperature_c() const { return temp_c_; }
  double peak_c() const { return peak_c_; }
  /// Time-weighted mean temperature since start().
  double mean_c() const;

  /// Arrhenius life-expectancy multiplier relative to a reference
  /// temperature: 2^((t_ref - t) / 10).  >1 means longer expected life.
  static double arrhenius_life_factor(double mean_temp_c, double reference_c) {
    return std::exp2((reference_c - mean_temp_c) / 10.0);
  }

  const ThermalParams& params() const { return params_; }

 private:
  void tick();

  sim::Scheduler& engine_;
  const NodePowerModel& node_;
  ThermalParams params_;
  sim::SimDuration sample_interval_;

  bool running_ = false;
  sim::EventId next_tick_;  // persistent periodic timer; invalid when stopped
  double temp_c_;
  double peak_c_;
  double weighted_sum_c_ = 0;  // integral of T dt
  sim::SimTime started_ = 0;
  sim::SimTime last_sample_ = 0;
};

}  // namespace pcd::power
