// The slack→schedule derivation.
//
// Phase mode (FT, §5.3): if one collective label dominates the run, its
// scopes sit on the critical path but retire few frequency-sensitive
// cycles — protocol processing stretches at low frequency, wire time and
// waiting do not.  The advisor picks the lowest operating point whose
// predicted stretch (cycle re-pricing on the busiest rank plus two mode
// transitions per instance) fits the delay budget.
//
// Per-rank mode (CG, §5.4): with no dominant collective, ranks that wait
// on their peers can run slower; the advisor converts a bounded fraction
// of each rank's elastic wait into slowdown, reproducing the paper's
// asymmetric speed assignment.  In a tightly-coupled exchange part of the
// stretch leaks back into the makespan (the paper accepts ~8% on CG), so
// the delay prediction is the no-absorption upper bound.
//
// Energy predictions are first order: the CPU-cycle portion of a scope's
// energy scales with V^2 at fixed cycle count, resident CPU power with
// V^2*f, and non-CPU power with stretched duration.
#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "profiler/profiler.hpp"

namespace pcd::profiler {

const char* to_string(InternalSchedule::Mode m) {
  switch (m) {
    case InternalSchedule::Mode::None: return "none";
    case InternalSchedule::Mode::Phase: return "phase";
    case InternalSchedule::Mode::PerRank: return "per-rank";
  }
  return "?";
}

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

double seconds_per_cycle(int mhz) { return 1.0 / (static_cast<double>(mhz) * 1e6); }

/// Energy of `scoped` joules after re-pricing its `cycles` from f_base to
/// f_low: the sensitive share scales with V^2 (same cycles, lower
/// voltage), the resident CPU share with V^2*f, and the non-CPU share
/// grows with the stretched duration.
double scale_energy(double joules, double cpu_joules, double cycles, double seconds,
                    const cpu::OperatingPoint& base, const cpu::OperatingPoint& low) {
  if (seconds <= 0) return joules;
  const double v2 = (low.voltage * low.voltage) / (base.voltage * base.voltage);
  const double v2f = v2 * (static_cast<double>(low.freq_mhz) / base.freq_mhz);
  const double sens_s = cycles * seconds_per_cycle(base.freq_mhz);
  const double sens_frac = std::clamp(sens_s / seconds, 0.0, 1.0);
  const double cpu_sens = cpu_joules * sens_frac;
  const double cpu_rest = cpu_joules - cpu_sens;
  const double other = joules - cpu_joules;
  const double stretch_s = cycles * (seconds_per_cycle(low.freq_mhz) -
                                     seconds_per_cycle(base.freq_mhz));
  const double other_scaled = other * (seconds + stretch_s) / seconds;
  return cpu_sens * v2 + cpu_rest * v2f + other_scaled;
}

}  // namespace

InternalSchedule advise(const RunTrace& run, const EnergyAttribution& attr,
                        const SlackAnalysis& slack, const AdvisorOptions& opts) {
  InternalSchedule s;
  const cpu::OperatingPointTable& table = run.table;
  const int f_base = run.profile_mhz > 0 ? run.profile_mhz : table.highest().freq_mhz;
  const cpu::OperatingPoint base{f_base, table.at(table.index_of(f_base)).voltage};
  const double makespan = slack.makespan_s;
  s.high_mhz = f_base;
  if (makespan <= 0 || attr.ranks.empty()) {
    s.rationale = "empty profile: nothing to schedule\n";
    return s;
  }

  // ---- phase mode: is one collective label dominant? ----
  const LabelAttribution* dom = nullptr;
  for (const auto& lab : attr.labels) {
    if (lab.cat != trace::Cat::Collective) continue;
    if (dom == nullptr || lab.max_rank_seconds > dom->max_rank_seconds) dom = &lab;
  }
  if (dom != nullptr) {
    const double share = dom->max_rank_seconds / makespan;
    appendf(s.rationale, "dominant collective '%s': %.1f%% of makespan (%d instances)\n",
            dom->label.c_str(), 100.0 * share, dom->max_rank_count);
    if (share >= opts.phase_dominance) {
      for (const auto& op : table.points()) {
        if (op.freq_mhz >= f_base) break;
        // Stretch on the busiest rank: its protocol cycles re-priced at the
        // low point, plus two transitions around every instance.
        const double stretch =
            dom->max_rank_cycles *
                (seconds_per_cycle(op.freq_mhz) - seconds_per_cycle(f_base)) +
            2.0 * dom->max_rank_count * opts.transition_stall_s;
        const bool ok = stretch <= opts.max_delay_increase * makespan;
        appendf(s.rationale, "  gear to %d MHz: predicted stretch %.3f s (%.2f%%) %s\n",
                op.freq_mhz, stretch, 100.0 * stretch / makespan,
                ok ? "<= budget: accept" : "> budget: reject");
        if (!ok) continue;
        s.mode = InternalSchedule::Mode::Phase;
        s.low_mhz = op.freq_mhz;
        s.phase_label = dom->label;
        s.predicted_delay_factor = 1.0 + stretch / makespan;
        const double scaled = scale_energy(dom->joules, dom->cpu_joules, dom->cycles,
                                           dom->seconds, base, op);
        if (run.measured_energy_j > 0) {
          s.predicted_energy_factor =
              (run.measured_energy_j - dom->joules + scaled) / run.measured_energy_j;
        }
        appendf(s.rationale,
                "phase schedule: %d MHz, %d MHz inside '%s' "
                "(predicted delay x%.3f, energy x%.3f)\n",
                s.high_mhz, s.low_mhz, s.phase_label.c_str(), s.predicted_delay_factor,
                s.predicted_energy_factor);
        return s;
      }
      appendf(s.rationale, "  no lower point fits the %.1f%% delay budget\n",
              100.0 * opts.max_delay_increase);
    }
  }

  // ---- per-rank mode: convert elastic wait into slowdown ----
  s.rank_mhz.assign(attr.ranks.size(), f_base);
  double max_stretch_s = 0;
  double predicted_j = run.measured_energy_j - attr.scoped_j;  // unscoped part
  bool any_lower = false;
  for (std::size_t r = 0; r < attr.ranks.size(); ++r) {
    const RankAttribution& ra = attr.ranks[r];
    // Elastic wait the rank could spend running slower: blocked time in
    // waits/recvs plus the idle share of its collectives (collective
    // protocol cycles are part of ra.cycles and stretch too).
    const double coll_idle =
        std::max(0.0, ra.at(trace::Cat::Collective).seconds -
                          ra.at(trace::Cat::Collective).cycles * seconds_per_cycle(f_base));
    const double wait_s = slack.rank_elastic_s[r] + coll_idle;
    const double budget = opts.usable_slack * wait_s;
    int chosen = f_base;
    double chosen_stretch = 0;
    for (const auto& op : table.points()) {
      if (op.freq_mhz >= f_base) break;
      const double stretch =
          ra.cycles * (seconds_per_cycle(op.freq_mhz) - seconds_per_cycle(f_base));
      if (stretch <= budget) {
        chosen = op.freq_mhz;
        chosen_stretch = stretch;
        break;  // ascending table: first fit is the lowest point
      }
    }
    s.rank_mhz[r] = chosen;
    appendf(s.rationale,
            "rank %zu: %.3f s elastic wait, budget %.3f s -> %d MHz "
            "(stretch %.3f s)\n",
            r, wait_s, budget, chosen, chosen_stretch);
    if (chosen < f_base) any_lower = true;
    max_stretch_s = std::max(max_stretch_s, chosen_stretch);
    const cpu::OperatingPoint low{chosen, table.at(table.index_of(chosen)).voltage};
    predicted_j += scale_energy(ra.joules, [&] {
      double cpu_j = 0;
      for (const auto& c : ra.by_cat) cpu_j += c.cpu_joules;
      return cpu_j;
    }(), ra.cycles, ra.seconds, base, low);
  }
  if (!any_lower) {
    s.rank_mhz.clear();
    appendf(s.rationale, "no rank has usable slack: keep %d MHz everywhere\n", f_base);
    return s;
  }
  s.mode = InternalSchedule::Mode::PerRank;
  // No-absorption upper bound: in a tightly-coupled app the slowed rank's
  // stretch propagates through the exchanges (CG measures ~8% for the
  // paper's 1200/800 split).
  s.predicted_delay_factor = 1.0 + max_stretch_s / makespan;
  if (run.measured_energy_j > 0) {
    s.predicted_energy_factor = predicted_j / run.measured_energy_j;
  }
  appendf(s.rationale, "per-rank schedule (predicted delay <= x%.3f, energy x%.3f)\n",
          s.predicted_delay_factor, s.predicted_energy_factor);
  return s;
}

}  // namespace pcd::profiler
