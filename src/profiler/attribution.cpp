#include <algorithm>
#include <map>
#include <utility>

#include "profiler/profiler.hpp"

namespace pcd::profiler {

RunTrace capture(const trace::Tracer& tracer, const cpu::OperatingPointTable& table,
                 int profile_mhz) {
  RunTrace run;
  run.table = table;
  run.profile_mhz = profile_mhz;
  run.records.reserve(static_cast<std::size_t>(tracer.ranks()));
  for (int r = 0; r < tracer.ranks(); ++r) {
    run.records.push_back(tracer.records(r));
    for (const auto& rec : run.records.back()) run.t_end = std::max(run.t_end, rec.end);
  }
  run.messages = tracer.messages();
  for (const auto& m : run.messages) {
    run.t_end = std::max({run.t_end, m.t_delivered, m.t_recv_done});
  }
  return run;
}

EnergyAttribution attribute(const RunTrace& run) {
  EnergyAttribution out;
  out.ranks.resize(static_cast<std::size_t>(run.ranks()));

  // Label aggregation keyed by (label, category); per-rank partial sums
  // feed the max_rank_* fields.
  struct LabelAccum {
    LabelAttribution total;
    std::vector<double> rank_seconds, rank_cycles;
    std::vector<int> rank_count;
  };
  std::map<std::pair<std::string, int>, LabelAccum> labels;

  for (int r = 0; r < run.ranks(); ++r) {
    RankAttribution& ra = out.ranks[static_cast<std::size_t>(r)];
    for (const auto& rec : run.records[static_cast<std::size_t>(r)]) {
      const double dur = sim::to_seconds(rec.end - rec.begin);
      auto& cat = ra.by_cat[static_cast<std::size_t>(rec.cat)];
      cat.seconds += dur;
      cat.joules += rec.energy_j;
      cat.cpu_joules += rec.cpu_energy_j;
      cat.cycles += rec.cycles;
      ++cat.count;
      ra.seconds += dur;
      ra.joules += rec.energy_j;
      ra.cycles += rec.cycles;
      out.scoped_j += rec.energy_j;

      auto& acc = labels[{rec.label, static_cast<int>(rec.cat)}];
      if (acc.rank_seconds.empty()) {
        acc.total.label = rec.label;
        acc.total.cat = rec.cat;
        acc.rank_seconds.resize(static_cast<std::size_t>(run.ranks()), 0);
        acc.rank_cycles.resize(static_cast<std::size_t>(run.ranks()), 0);
        acc.rank_count.resize(static_cast<std::size_t>(run.ranks()), 0);
      }
      acc.total.seconds += dur;
      acc.total.joules += rec.energy_j;
      acc.total.cpu_joules += rec.cpu_energy_j;
      acc.total.cycles += rec.cycles;
      ++acc.total.count;
      acc.rank_seconds[static_cast<std::size_t>(r)] += dur;
      acc.rank_cycles[static_cast<std::size_t>(r)] += rec.cycles;
      ++acc.rank_count[static_cast<std::size_t>(r)];
    }
  }

  for (auto& [key, acc] : labels) {
    for (int r = 0; r < run.ranks(); ++r) {
      const auto i = static_cast<std::size_t>(r);
      if (acc.rank_seconds[i] > acc.total.max_rank_seconds) {
        // Pick the single busiest rank's view atomically so seconds,
        // cycles, and count describe the same rank.
        acc.total.max_rank_seconds = acc.rank_seconds[i];
        acc.total.max_rank_cycles = acc.rank_cycles[i];
        acc.total.max_rank_count = acc.rank_count[i];
      }
    }
    out.labels.push_back(std::move(acc.total));
  }
  std::sort(out.labels.begin(), out.labels.end(),
            [](const LabelAttribution& a, const LabelAttribution& b) {
              if (a.joules != b.joules) return a.joules > b.joules;
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.label < b.label;
            });
  return out;
}

ProfileResult profile(const trace::Tracer& tracer, const cpu::OperatingPointTable& table,
                      int profile_mhz, double measured_delay_s,
                      double measured_energy_j) {
  ProfileResult prof;
  prof.run = capture(tracer, table, profile_mhz);
  prof.run.measured_delay_s = measured_delay_s;
  prof.run.measured_energy_j = measured_energy_j;
  prof.attribution = attribute(prof.run);
  prof.slack = analyze_slack(prof.run);
  return prof;
}

}  // namespace pcd::profiler
