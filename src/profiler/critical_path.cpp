// Cross-rank event DAG: latest-feasible-time backward pass.
//
// Nodes are the "anchor" instants of each rank's timeline: every scope
// boundary, plus the send instant (on the source rank) and the
// receive-completion instant (on the destination rank) of every matched
// message.  Edges:
//   - consecutive anchors of one rank, with weight = interval length if a
//     rigid scope covers the interval (the work is incompressible) and 0
//     if the interval is elastic (a wait, a recv, or an untraced gap);
//   - message edges from the send anchor to the matching recv-done anchor,
//     with weight = the observed send→recv-done lag (protocol + wire time
//     moves with the sender, so a late send shifts the receive).
//
// All edges point strictly forward in simulated time, so one descending
// sweep computes L(e) — the latest instant e could occur without pushing
// the makespan — and per-scope slack = L(end anchor) − observed end.
// Slack is provably non-negative: the observed schedule satisfies every
// constraint with equality or better.
#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>
#include <vector>

#include "profiler/profiler.hpp"

namespace pcd::profiler {

bool is_rigid(trace::Cat c) {
  switch (c) {
    case trace::Cat::Wait:
    case trace::Cat::Recv:
      return false;  // shrink when the awaited message is later/earlier
    default:
      return true;
  }
}

namespace {

int index_of(const std::vector<sim::SimTime>& ev, sim::SimTime t) {
  const auto it = std::lower_bound(ev.begin(), ev.end(), t);
  assert(it != ev.end() && *it == t);
  return static_cast<int>(it - ev.begin());
}

}  // namespace

SlackAnalysis analyze_slack(const RunTrace& run) {
  const int ranks = run.ranks();
  SlackAnalysis out;
  out.makespan_s = run.makespan_s();
  out.record_slack_s.resize(static_cast<std::size_t>(ranks));
  out.rank_elastic_s.assign(static_cast<std::size_t>(ranks), 0);
  out.rank_critical_s.assign(static_cast<std::size_t>(ranks), 0);
  // Exact-integer DAG arithmetic makes truly-critical chains come out at
  // slack 0; the epsilon only forgives sub-microsecond scheduling noise
  // between back-to-back scopes.
  out.critical_eps_s = 1e-6 + out.makespan_s * 1e-6;
  if (ranks == 0) return out;

  // 1. Anchor events per rank, sorted and deduplicated.
  std::vector<std::size_t> anchor_count(static_cast<std::size_t>(ranks), 0);
  for (int r = 0; r < ranks; ++r) {
    anchor_count[static_cast<std::size_t>(r)] =
        2 * run.records[static_cast<std::size_t>(r)].size();
  }
  for (const auto& m : run.messages) {
    if (!m.complete() || m.src < 0 || m.src >= ranks || m.dst < 0 || m.dst >= ranks) {
      continue;
    }
    ++anchor_count[static_cast<std::size_t>(m.src)];
    ++anchor_count[static_cast<std::size_t>(m.dst)];
  }
  std::vector<std::vector<sim::SimTime>> ev(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    auto& e = ev[static_cast<std::size_t>(r)];
    e.reserve(anchor_count[static_cast<std::size_t>(r)]);
    for (const auto& rec : run.records[static_cast<std::size_t>(r)]) {
      e.push_back(rec.begin);
      e.push_back(rec.end);
    }
  }
  for (const auto& m : run.messages) {
    if (!m.complete() || m.src < 0 || m.src >= ranks || m.dst < 0 || m.dst >= ranks) {
      continue;
    }
    ev[static_cast<std::size_t>(m.src)].push_back(m.t_send);
    ev[static_cast<std::size_t>(m.dst)].push_back(m.t_recv_done);
  }
  for (auto& e : ev) {
    std::sort(e.begin(), e.end());
    e.erase(std::unique(e.begin(), e.end()), e.end());
  }

  // Flatten anchors to global ids so edges and L live in single arrays
  // (one allocation each, cache-friendly sweep).
  std::vector<std::size_t> base(static_cast<std::size_t>(ranks) + 1, 0);
  for (int r = 0; r < ranks; ++r) {
    base[static_cast<std::size_t>(r) + 1] =
        base[static_cast<std::size_t>(r)] + ev[static_cast<std::size_t>(r)].size();
  }
  const std::size_t total = base[static_cast<std::size_t>(ranks)];

  // 2. Message out-edges in CSR form, anchored at their source event.  The
  //    log is in send order (appended at engine.now()), so the source
  //    lookup is a forward-only cursor per rank; the receive-completion
  //    side arrives out of order and keeps the binary search.
  std::vector<int> edge_count(total + 1, 0);
  std::vector<std::pair<std::size_t, std::size_t>> msg_anchor;  // (src aid, dst aid)
  msg_anchor.reserve(run.messages.size());
  std::vector<std::size_t> send_cur(static_cast<std::size_t>(ranks), 0);
  for (const auto& m : run.messages) {
    if (!m.complete() || m.src < 0 || m.src >= ranks || m.dst < 0 || m.dst >= ranks) {
      continue;
    }
    const auto& se = ev[static_cast<std::size_t>(m.src)];
    std::size_t& sc = send_cur[static_cast<std::size_t>(m.src)];
    while (sc < se.size() && se[sc] < m.t_send) ++sc;
    assert(sc < se.size() && se[sc] == m.t_send);
    const std::size_t si = base[static_cast<std::size_t>(m.src)] + sc;
    const std::size_t di = base[static_cast<std::size_t>(m.dst)] +
                           static_cast<std::size_t>(index_of(
                               ev[static_cast<std::size_t>(m.dst)], m.t_recv_done));
    msg_anchor.emplace_back(si, di);
    ++edge_count[si + 1];
  }
  for (std::size_t i = 1; i <= total; ++i) edge_count[i] += edge_count[i - 1];
  struct MsgEdge {
    std::size_t dst;
    sim::SimDuration lag;
  };
  std::vector<MsgEdge> edges(msg_anchor.size());
  {
    std::vector<int> fill(edge_count.begin(), edge_count.end() - 1);
    std::size_t k = 0;
    for (const auto& m : run.messages) {
      if (!m.complete() || m.src < 0 || m.src >= ranks || m.dst < 0 ||
          m.dst >= ranks) {
        continue;
      }
      const auto [si, di] = msg_anchor[k++];
      edges[static_cast<std::size_t>(fill[si]++)] = {di, m.t_recv_done - m.t_send};
    }
  }

  // 3. Intra-rank interval weights: interval i -> i+1 is rigid iff some
  //    rigid scope spans it.  Scope boundaries are themselves anchors, so
  //    "spans" reduces to begin <= e[i] and end >= e[i+1] — one merged
  //    sweep over (begin-sorted) rigid scopes per rank, no binary searches.
  std::vector<sim::SimDuration> weight(total, 0);
  {
    std::vector<std::pair<sim::SimTime, sim::SimTime>> iv;
    for (int r = 0; r < ranks; ++r) {
      iv.clear();
      for (const auto& rec : run.records[static_cast<std::size_t>(r)]) {
        if (is_rigid(rec.cat)) iv.emplace_back(rec.begin, rec.end);
      }
      std::sort(iv.begin(), iv.end());
      const auto& e = ev[static_cast<std::size_t>(r)];
      std::size_t k = 0;
      sim::SimTime max_end = std::numeric_limits<sim::SimTime>::min();
      for (std::size_t i = 0; i + 1 < e.size(); ++i) {
        while (k < iv.size() && iv[k].first <= e[i]) {
          max_end = std::max(max_end, iv[k].second);
          ++k;
        }
        if (max_end >= e[i + 1]) {
          weight[base[static_cast<std::size_t>(r)] + i] = e[i + 1] - e[i];
        }
      }
    }
  }

  // 4. Backward pass in descending event time, as a k-way merge over the
  //    per-rank (sorted) anchor arrays.  Every edge points strictly forward
  //    in time (message protocol cost is positive, anchors are deduped), so
  //    every successor is finalized before its predecessors are visited.
  std::vector<sim::SimTime> latest(total, run.t_end);
  {
    std::vector<std::size_t> ptr(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      ptr[static_cast<std::size_t>(r)] = ev[static_cast<std::size_t>(r)].size();
    }
    for (std::size_t done = 0; done < total; ++done) {
      int pick = -1;
      sim::SimTime pick_t = std::numeric_limits<sim::SimTime>::min();
      for (int r = 0; r < ranks; ++r) {
        const std::size_t p = ptr[static_cast<std::size_t>(r)];
        if (p == 0) continue;
        const sim::SimTime t = ev[static_cast<std::size_t>(r)][p - 1];
        if (pick < 0 || t > pick_t) {
          pick = r;
          pick_t = t;
        }
      }
      const std::size_t i = --ptr[static_cast<std::size_t>(pick)];
      const std::size_t aid = base[static_cast<std::size_t>(pick)] + i;
      sim::SimTime best = run.t_end;
      if (i + 1 < ev[static_cast<std::size_t>(pick)].size()) {
        best = std::min(best, latest[aid + 1] - weight[aid]);
      }
      for (int x = edge_count[aid]; x < edge_count[aid + 1]; ++x) {
        const auto& edge = edges[static_cast<std::size_t>(x)];
        best = std::min(best, latest[edge.dst] - edge.lag);
      }
      latest[aid] = best;
    }
  }

  // 5. Per-scope slack and critical-path aggregation.  Records are stored
  //    in end order (scopes log on close), so the end-anchor lookup is a
  //    forward-only cursor rather than a binary search per record.
  for (int r = 0; r < ranks; ++r) {
    const auto& recs = run.records[static_cast<std::size_t>(r)];
    const auto& e = ev[static_cast<std::size_t>(r)];
    auto& slack = out.record_slack_s[static_cast<std::size_t>(r)];
    slack.reserve(recs.size());
    std::size_t cur = 0;
    for (const auto& rec : recs) {
      while (cur < e.size() && e[cur] < rec.end) ++cur;
      assert(cur < e.size() && e[cur] == rec.end);
      const std::size_t aid = base[static_cast<std::size_t>(r)] + cur;
      const double s = sim::to_seconds(latest[aid] - rec.end);
      slack.push_back(s);
      const double dur = sim::to_seconds(rec.end - rec.begin);
      if (!is_rigid(rec.cat)) {
        out.rank_elastic_s[static_cast<std::size_t>(r)] += dur;
      } else if (s <= out.critical_eps_s) {
        out.rank_critical_s[static_cast<std::size_t>(r)] += dur;
        out.critical_by_cat_s[static_cast<std::size_t>(rec.cat)] += dur;
      }
    }
  }
  return out;
}

}  // namespace pcd::profiler
