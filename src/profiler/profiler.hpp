// Energy-and-slack attribution over MPE-style traces, plus the DVS advisor
// that turns a profile into an INTERNAL schedule.
//
// The paper derives its INTERNAL strategies by hand: reading Jumpshot
// traces of FT to find the frequency-insensitive MPI_Alltoall phase (§5.3)
// and of CG to find the rank asymmetry behind the 1200/800 split (§5.4).
// This module automates that loop:
//
//   1. Attribution — every trace scope carries joules (node + CPU
//      component) and the frequency-sensitive cycles retired inside it,
//      sampled through trace::Tracer::Probe.  Aggregated per rank, per
//      category, and per label.
//   2. Causality — the tracer's send→recv message log plus the per-rank
//      scope sequence form a cross-rank event DAG.  A backward pass
//      computes, for every scope, how much later it could have finished
//      without extending the makespan (its slack) and which scopes are on
//      the critical path.
//   3. Advice — from the attribution, the slack map, and the Table-1
//      operating points, emit an InternalSchedule: either a phase schedule
//      (drop to low_mhz around a dominant collective, FT-style) or a
//      per-rank static assignment (CG-style), with first-order predicted
//      energy/delay factors vs. the measured baseline.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cpu/operating_point.hpp"
#include "sim/time.hpp"
#include "trace/tracer.hpp"

namespace pcd::profiler {

// ---- captured run -----------------------------------------------------------

/// Portable copy of one profiled run: everything the analyses need after
/// the engine/cluster that produced it is gone.
struct RunTrace {
  std::vector<std::vector<trace::Record>> records;  // per rank, in end order
  std::vector<trace::MessageEvent> messages;
  sim::SimTime t_end = 0;                // latest scope/message instant
  cpu::OperatingPointTable table;        // operating points of the run
  int profile_mhz = 0;                   // frequency the profile ran at
  double measured_delay_s = 0;
  double measured_energy_j = 0;

  int ranks() const { return static_cast<int>(records.size()); }
  double makespan_s() const { return sim::to_seconds(t_end); }
};

/// Copies a finished tracer into a RunTrace.  The profile is assumed to
/// have been collected at `profile_mhz` (the paper profiles at full speed).
RunTrace capture(const trace::Tracer& tracer, const cpu::OperatingPointTable& table,
                 int profile_mhz);

// ---- (1) energy attribution -------------------------------------------------

struct CategoryAttribution {
  double seconds = 0;
  double joules = 0;      // node energy inside these scopes
  double cpu_joules = 0;  // CPU component of that energy
  double cycles = 0;      // frequency-sensitive cycles retired inside
  int count = 0;
};

struct RankAttribution {
  std::array<CategoryAttribution, 6> by_cat{};  // indexed by trace::Cat
  double seconds = 0;  // total scoped time
  double joules = 0;   // total scoped energy
  double cycles = 0;

  const CategoryAttribution& at(trace::Cat c) const {
    return by_cat[static_cast<std::size_t>(c)];
  }
};

/// Aggregation over every scope sharing a label (e.g. "mpi_alltoall").
struct LabelAttribution {
  std::string label;
  trace::Cat cat{};
  int count = 0;  // scope instances across all ranks
  double seconds = 0;
  double joules = 0;
  double cpu_joules = 0;
  double cycles = 0;
  // Worst single rank: in a synchronized application the slowest rank's
  // stretch is the one the run sees, so predictions use these.
  double max_rank_seconds = 0;
  double max_rank_cycles = 0;
  int max_rank_count = 0;
};

struct EnergyAttribution {
  std::vector<RankAttribution> ranks;
  std::vector<LabelAttribution> labels;  // sorted by joules, descending
  double scoped_j = 0;  // sum over scopes (<= measured run energy)
};

EnergyAttribution attribute(const RunTrace& run);

// ---- (2) cross-rank critical path and slack ---------------------------------

/// Whether stretching upstream work shifts this scope rather than being
/// absorbed by it: waits and receives shrink when their input arrives
/// "less early"; compute, stalls, sends, and collectives do not.
bool is_rigid(trace::Cat c);

struct SlackAnalysis {
  double makespan_s = 0;
  /// slack[rank][i]: how much later records(rank)[i] could have ended
  /// without extending the makespan.  Always >= 0.
  std::vector<std::vector<double>> record_slack_s;
  /// Elastic (Wait/Recv) recorded seconds per rank — the raw material a
  /// per-rank slowdown converts into energy savings.
  std::vector<double> rank_elastic_s;
  /// Rigid seconds on the critical path, per rank and per category.
  std::vector<double> rank_critical_s;
  std::array<double, 6> critical_by_cat_s{};
  /// Slack at or below this counts as critical.
  double critical_eps_s = 0;
};

SlackAnalysis analyze_slack(const RunTrace& run);

// ---- (3) the advisor --------------------------------------------------------

struct AdvisorOptions {
  /// Phase mode: accept the lowest frequency whose predicted makespan
  /// stretch stays within this fraction.
  double max_delay_increase = 0.02;
  /// Phase mode: the dominant collective must account for at least this
  /// fraction of the makespan (on its busiest rank) to be worth gearing.
  double phase_dominance = 0.25;
  /// Per-rank mode: fraction of a rank's elastic wait the advisor is
  /// willing to convert into slower execution (the paper's hand-derived
  /// CG split trades bounded delay for energy the same way).
  double usable_slack = 0.2;
  /// Assumed cost of one DVS mode transition (paper §2: 20-30 us).
  double transition_stall_s = 25e-6;
};

/// A schedule the INTERNAL strategy can execute directly
/// (core::hooks_for turns it into apps::DvsHooks).
struct InternalSchedule {
  enum class Mode {
    None,     // no exploitable slack found: stay at profile speed
    Phase,    // run at high_mhz, drop to low_mhz around `phase_label`
    PerRank,  // static per-rank frequencies
  };
  Mode mode = Mode::None;
  int high_mhz = 0;
  int low_mhz = 0;
  std::string phase_label;
  std::vector<int> rank_mhz;
  // First-order predictions relative to the measured profile run.
  double predicted_delay_factor = 1.0;
  double predicted_energy_factor = 1.0;
  /// Human-readable derivation log (candidates considered and why they
  /// were accepted or rejected).
  std::string rationale;
};

const char* to_string(InternalSchedule::Mode m);

InternalSchedule advise(const RunTrace& run, const EnergyAttribution& attr,
                        const SlackAnalysis& slack, const AdvisorOptions& opts = {});

// ---- bundled result ---------------------------------------------------------

/// Everything the profiler derives from one run, in analysis order.
struct ProfileResult {
  RunTrace run;
  EnergyAttribution attribution;
  SlackAnalysis slack;
};

/// capture + attribute + analyze_slack in one call.
ProfileResult profile(const trace::Tracer& tracer, const cpu::OperatingPointTable& table,
                      int profile_mhz, double measured_delay_s,
                      double measured_energy_j);

inline InternalSchedule advise(const ProfileResult& prof, const AdvisorOptions& opts = {}) {
  return advise(prof.run, prof.attribution, prof.slack, opts);
}

}  // namespace pcd::profiler
