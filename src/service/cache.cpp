#include "service/cache.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "service/json.hpp"

namespace pcd::service {

namespace {

std::uint64_t fnv1a(const char* p, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

bool parse_hex16(const std::string& s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 16);
  return end == s.c_str() + 16;
}

JsonValue summary_json(const campaign::Summary& s) {
  JsonValue v = JsonValue::object();
  v.set("n", JsonValue::of(s.n));
  v.set("median", JsonValue::of(hex_double(s.median)));
  v.set("q1", JsonValue::of(hex_double(s.q1)));
  v.set("q3", JsonValue::of(hex_double(s.q3)));
  v.set("min", JsonValue::of(hex_double(s.min)));
  v.set("max", JsonValue::of(hex_double(s.max)));
  v.set("mean", JsonValue::of(hex_double(s.mean)));
  return v;
}

bool summary_from(const JsonValue* v, campaign::Summary* out) {
  if (v == nullptr || !v->is_object()) return false;
  out->n = static_cast<int>(v->int_or("n", -1));
  if (out->n < 0) return false;
  struct Field { const char* name; double* dst; };
  const Field fields[] = {{"median", &out->median}, {"q1", &out->q1},
                          {"q3", &out->q3},         {"min", &out->min},
                          {"max", &out->max},       {"mean", &out->mean}};
  for (const auto& f : fields) {
    const JsonValue* s = v->find(f.name);
    if (s == nullptr || !s->is_string() ||
        !parse_hex_double(s->as_string(), f.dst)) {
      return false;
    }
  }
  return true;
}

bool hex_field(const JsonValue& v, const char* name, double* out) {
  const JsonValue* s = v.find(name);
  return s != nullptr && s->is_string() && parse_hex_double(s->as_string(), out);
}

}  // namespace

std::string ResultCache::encode(const campaign::CellResult& cell) {
  JsonValue v = JsonValue::object();
  v.set("index", JsonValue::of(static_cast<std::int64_t>(cell.index)));
  v.set("workload", JsonValue::of(cell.workload));
  JsonValue labels = JsonValue::array();
  for (const auto& l : cell.labels) labels.push(JsonValue::of(l));
  v.set("labels", std::move(labels));
  JsonValue numbers = JsonValue::array();
  for (double n : cell.numbers) numbers.push(JsonValue::of(hex_double(n)));
  v.set("numbers", std::move(numbers));
  JsonValue numeric = JsonValue::array();
  for (bool b : cell.numeric) numeric.push(JsonValue::of(b));
  v.set("numeric", std::move(numeric));
  v.set("delay", summary_json(cell.delay));
  v.set("energy", summary_json(cell.energy));
  v.set("digest_root", JsonValue::of(hex16(cell.digest_root)));
  v.set("has_digest", JsonValue::of(cell.has_digest));
  v.set("runs", JsonValue::of(cell.runs));
  v.set("failures", JsonValue::of(cell.failures));
  v.set("thrown", JsonValue::of(cell.thrown));
  JsonValue errors = JsonValue::array();
  for (const auto& e : cell.errors) errors.push(JsonValue::of(e));
  v.set("errors", std::move(errors));
  v.set("first_exception", JsonValue::of(cell.first_exception));
  // Representative run: exactly the fields tsv()/table() consume.  Cached
  // cells are clean successes, so traces/telemetry/fault reports (which do
  // not enter the TSV) are not persisted.
  JsonValue r = JsonValue::object();
  r.set("workload", JsonValue::of(cell.result.workload));
  r.set("delay_s", JsonValue::of(hex_double(cell.result.delay_s)));
  r.set("energy_j", JsonValue::of(hex_double(cell.result.energy_j)));
  r.set("energy_acpi_j", JsonValue::of(hex_double(cell.result.energy_acpi_j)));
  r.set("energy_baytech_j",
        JsonValue::of(hex_double(cell.result.energy_baytech_j)));
  r.set("dvs_transitions",
        JsonValue::of(static_cast<std::int64_t>(cell.result.dvs_transitions)));
  r.set("net_collisions",
        JsonValue::of(static_cast<std::int64_t>(cell.result.net_collisions)));
  r.set("messages", JsonValue::of(static_cast<std::int64_t>(cell.result.messages)));
  r.set("mean_utilization",
        JsonValue::of(hex_double(cell.result.mean_utilization)));
  r.set("failed", JsonValue::of(cell.result.failed));
  r.set("failure", JsonValue::of(cell.result.failure));
  v.set("result", std::move(r));
  return v.write();
}

bool ResultCache::decode(const std::string& payload, campaign::CellResult* out) {
  auto parsed = json_parse(payload);
  if (!parsed.has_value() || !parsed->is_object()) return false;
  const JsonValue& v = *parsed;
  campaign::CellResult cell;
  cell.index = static_cast<std::size_t>(v.int_or("index", 0));
  const JsonValue* wl = v.find("workload");
  if (wl == nullptr || !wl->is_string()) return false;
  cell.workload = wl->as_string();
  const JsonValue* labels = v.find("labels");
  if (labels == nullptr || !labels->is_array()) return false;
  for (const auto& l : labels->items()) {
    if (!l.is_string()) return false;
    cell.labels.push_back(l.as_string());
  }
  const JsonValue* numbers = v.find("numbers");
  if (numbers == nullptr || !numbers->is_array()) return false;
  for (const auto& n : numbers->items()) {
    double d = 0;
    if (!n.is_string() || !parse_hex_double(n.as_string(), &d)) return false;
    cell.numbers.push_back(d);
  }
  const JsonValue* numeric = v.find("numeric");
  if (numeric == nullptr || !numeric->is_array()) return false;
  for (const auto& b : numeric->items()) {
    if (!b.is_bool()) return false;
    cell.numeric.push_back(b.as_bool());
  }
  if (!summary_from(v.find("delay"), &cell.delay)) return false;
  if (!summary_from(v.find("energy"), &cell.energy)) return false;
  const JsonValue* root = v.find("digest_root");
  if (root == nullptr || !root->is_string() ||
      !parse_hex16(root->as_string(), &cell.digest_root)) {
    return false;
  }
  cell.has_digest = v.bool_or("has_digest", false);
  cell.runs = static_cast<int>(v.int_or("runs", -1));
  cell.failures = static_cast<int>(v.int_or("failures", -1));
  cell.thrown = static_cast<int>(v.int_or("thrown", -1));
  if (cell.runs < 0 || cell.failures < 0 || cell.thrown < 0) return false;
  const JsonValue* errors = v.find("errors");
  if (errors == nullptr || !errors->is_array()) return false;
  for (const auto& e : errors->items()) {
    if (!e.is_string()) return false;
    cell.errors.push_back(e.as_string());
  }
  cell.first_exception = v.str_or("first_exception", "");
  const JsonValue* r = v.find("result");
  if (r == nullptr || !r->is_object()) return false;
  cell.result.workload = r->str_or("workload", "");
  if (!hex_field(*r, "delay_s", &cell.result.delay_s) ||
      !hex_field(*r, "energy_j", &cell.result.energy_j) ||
      !hex_field(*r, "energy_acpi_j", &cell.result.energy_acpi_j) ||
      !hex_field(*r, "energy_baytech_j", &cell.result.energy_baytech_j) ||
      !hex_field(*r, "mean_utilization", &cell.result.mean_utilization)) {
    return false;
  }
  cell.result.dvs_transitions = r->int_or("dvs_transitions", 0);
  cell.result.net_collisions = r->int_or("net_collisions", 0);
  cell.result.messages = r->int_or("messages", 0);
  cell.result.failed = r->bool_or("failed", false);
  cell.result.failure = r->str_or("failure", "");
  *out = std::move(cell);
  return true;
}

ResultCache::ResultCache(std::string dir, bool sync)
    : dir_(std::move(dir)), sync_(sync) {
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  recover();
  log_fd_ = ::open(log_path().c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
}

ResultCache::~ResultCache() {
  if (log_fd_ >= 0) ::close(log_fd_);
}

void ResultCache::recover() {
  std::ifstream in(log_path(), std::ios::binary);
  if (!in) return;
  std::string log((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  in.close();
  if (recover_via_index(log)) {
    stats_.index_used = true;
  } else {
    entries_.clear();
    index_.clear();
    stats_.recovered = 0;
    scan_log(log);
  }
  stats_.entries = static_cast<std::int64_t>(entries_.size());
}

// Record layout (see header): "PCDC1 <key> <len> <digest>\n<payload>\n".
// Returns the byte length of the whole record, or 0 when the bytes at
// `off` are not one intact, digest-verified record.  `framed` reports
// whether the header itself parsed and the payload was fully present —
// i.e. a 0 return with framed=true is a digest mismatch, not a torn tail.
namespace {
struct Record {
  std::uint64_t key = 0;
  std::uint64_t digest = 0;
  std::size_t payload_off = 0;
  std::size_t payload_len = 0;
};

std::size_t parse_record(const std::string& log, std::size_t off, Record* rec,
                         bool* framed) {
  *framed = false;
  const std::size_t nl = log.find('\n', off);
  if (nl == std::string::npos) return 0;
  unsigned long long key = 0, len = 0, digest = 0;
  int consumed = 0;
  const std::string header = log.substr(off, nl - off);
  if (std::sscanf(header.c_str(), "PCDC1 %16llx %llu %16llx%n", &key, &len,
                  &digest, &consumed) != 3 ||
      static_cast<std::size_t>(consumed) != header.size()) {
    return 0;
  }
  const std::size_t payload_off = nl + 1;
  // Overflow-safe fit check: payload plus its trailing '\n' must lie inside
  // the log (a huge `len` from a torn header must not wrap).
  if (len >= log.size() || payload_off > log.size() - len - 1) return 0;
  const std::size_t end = payload_off + static_cast<std::size_t>(len);
  if (log[end] != '\n') return 0;
  *framed = true;
  if (fnv1a(log.data() + payload_off, len) != digest) return 0;
  rec->key = key;
  rec->digest = digest;
  rec->payload_off = payload_off;
  rec->payload_len = len;
  return end + 1 - off;
}
}  // namespace

void ResultCache::scan_log(const std::string& log) {
  std::size_t pos = 0;
  while (pos < log.size()) {
    Record rec;
    bool framed = false;
    const std::size_t n = parse_record(log, pos, &rec, &framed);
    if (n == 0) {
      // Torn or corrupt tail: everything from here is untrusted (the log is
      // append-only, so bytes after an interrupted write prove nothing).
      if (framed) ++stats_.corrupt;
      stats_.torn_bytes = static_cast<std::int64_t>(log.size() - pos);
      if (::truncate(log_path().c_str(),
                     static_cast<off_t>(pos)) != 0) {
        // Leave the file as-is; in-memory state is still only the verified
        // prefix, and the next open re-truncates.
      }
      log_size_ = pos;
      return;
    }
    entries_[rec.key] = log.substr(rec.payload_off, rec.payload_len);
    index_[rec.key] = IndexEntry{pos, rec.payload_len, rec.digest};
    ++stats_.recovered;
    pos += n;
  }
  log_size_ = pos;
}

bool ResultCache::recover_via_index(const std::string& log) {
  std::ifstream in(index_path());
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;
  unsigned long long log_bytes = 0, count = 0;
  if (std::sscanf(line.c_str(), "PCDIDX1 %llu %llu", &log_bytes, &count) != 2) {
    return false;
  }
  // Fast path only for the exact log the index described: any append or
  // torn tail since the drain invalidates it.
  if (log_bytes != log.size()) return false;
  for (unsigned long long i = 0; i < count; ++i) {
    if (!std::getline(in, line)) return false;
    unsigned long long key = 0, off = 0, len = 0, digest = 0;
    if (std::sscanf(line.c_str(), "%16llx %llu %llu %16llx", &key, &off, &len,
                    &digest) != 4) {
      return false;
    }
    Record rec;
    bool framed = false;
    if (parse_record(log, off, &rec, &framed) == 0 || rec.key != key ||
        rec.payload_len != len || rec.digest != digest) {
      return false;
    }
    entries_[key] = log.substr(rec.payload_off, rec.payload_len);
    index_[key] = IndexEntry{off, len, digest};
    ++stats_.recovered;
  }
  log_size_ = log.size();
  return true;
}

std::optional<campaign::CellResult> ResultCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  campaign::CellResult cell;
  if (!decode(it->second, &cell)) {
    // Verified-on-disk but undecodable (e.g. written by a newer codec):
    // treat as a miss so the cell is recomputed and re-inserted.
    entries_.erase(it);
    index_.erase(key);
    stats_.entries = static_cast<std::int64_t>(entries_.size());
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return cell;
}

void ResultCache::insert(std::uint64_t key, const campaign::CellResult& cell) {
  std::string payload = encode(cell);
  std::lock_guard<std::mutex> lock(mu_);
  if (log_fd_ >= 0) {
    char header[64];
    const int hn = std::snprintf(header, sizeof header,
                                 "PCDC1 %016" PRIx64 " %zu %016" PRIx64 "\n",
                                 key, payload.size(),
                                 fnv1a(payload.data(), payload.size()));
    std::string record(header, static_cast<std::size_t>(hn));
    record += payload;
    record += '\n';
    // One write so a crash can only tear the tail, then make it durable.
    if (::write(log_fd_, record.data(), record.size()) ==
        static_cast<ssize_t>(record.size())) {
      index_[key] = IndexEntry{log_size_, payload.size(),
                               fnv1a(payload.data(), payload.size())};
      log_size_ += record.size();
      if (sync_) ::fsync(log_fd_);
    }
  }
  entries_[key] = std::move(payload);
  stats_.entries = static_cast<std::int64_t>(entries_.size());
  ++stats_.inserts;
}

void ResultCache::persist_index() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) return;
  if (log_fd_ >= 0) ::fsync(log_fd_);
  const std::string tmp = index_path() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out << "PCDIDX1 " << log_size_ << " " << index_.size() << "\n";
    for (const auto& [key, e] : index_) {
      out << hex16(key) << " " << e.offset << " " << e.len << " "
          << hex16(e.digest) << "\n";
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, index_path(), ec);
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace pcd::service
