// Crash-safe, fingerprint-keyed result cache for the campaign service.
//
// On disk the cache is a single append-only log of self-verifying records:
//
//   PCDC1 <key:16hex> <payload-bytes> <payload-digest:16hex>\n
//   <payload>\n
//
// where the payload is a strict-JSON serialization of one CellResult with
// hex-float doubles (byte-exact round trip) and the digest is FNV-1a over
// the payload bytes.  Appends are a single write(2) followed by fsync, so
// the only state a crash (kill -9 included) can leave behind is a torn
// *tail*: recovery scans the log, keeps every verified record, and
// truncates the file at the first malformed / short / digest-mismatched
// byte.  Everything before that point is provably intact.
//
// A graceful drain additionally writes an index file
//
//   PCDIDX1 <log-bytes> <entries>\n
//   <key:16hex> <offset> <payload-bytes> <digest:16hex>\n ...
//
// recording where every record sits in a log of exactly <log-bytes>.  The
// next open uses it as a fast path (seek + verify instead of a full parse)
// — but only when the log's size still matches; any mismatch (crash after
// more appends, torn tail) falls back to the full scan.  The log is always
// the source of truth; the index is a checksummed accelerator.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "campaign/result.hpp"

namespace pcd::service {

struct CacheStats {
  std::int64_t entries = 0;    // live entries in memory
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t inserts = 0;
  std::int64_t recovered = 0;  // records accepted from the log at open
  std::int64_t corrupt = 0;    // framed records whose digest did not verify
  std::int64_t torn_bytes = 0; // bytes truncated off the log tail at open
  bool index_used = false;     // open took the index fast path

  double hit_ratio() const {
    const std::int64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

class ResultCache {
 public:
  /// `dir` is created if missing; "" disables persistence (pure in-memory).
  /// `sync` fsyncs every append (the crash-safety contract; tests that
  /// hammer the cache may turn it off).
  explicit ResultCache(std::string dir, bool sync = true);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Thread-safe.  A hit returns a decoded copy; hit/miss counters update.
  std::optional<campaign::CellResult> lookup(std::uint64_t key);

  /// Thread-safe.  Overwrites an existing key in memory; the log append is
  /// one write + fsync (last record wins at recovery).
  void insert(std::uint64_t key, const campaign::CellResult& cell);

  /// Graceful-drain hook: writes the index file for the next open's fast
  /// path.  No-op without a cache dir.
  void persist_index();

  CacheStats stats() const;

  // Payload codec (exposed for tests): strict JSON, hex-float doubles.
  // decode returns false on any malformed or missing field.
  static std::string encode(const campaign::CellResult& cell);
  static bool decode(const std::string& payload, campaign::CellResult* out);

 private:
  /// Where one record's payload sits in the log (for the drain-time index).
  struct IndexEntry {
    std::uint64_t offset = 0;  // record start (header) in the log
    std::uint64_t len = 0;     // payload bytes
    std::uint64_t digest = 0;  // FNV-1a of the payload
  };

  void recover();
  bool recover_via_index(const std::string& log);
  void scan_log(const std::string& log);

  std::string log_path() const { return dir_ + "/results.log"; }
  std::string index_path() const { return dir_ + "/results.idx"; }

  mutable std::mutex mu_;
  std::string dir_;
  bool sync_;
  int log_fd_ = -1;
  std::uint64_t log_size_ = 0;  // verified log bytes (recovery + appends)
  std::map<std::uint64_t, std::string> entries_;  // key -> encoded payload
  std::map<std::uint64_t, IndexEntry> index_;     // key -> last record
  CacheStats stats_;
};

}  // namespace pcd::service
