#include "service/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pcd::service {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  std::optional<JsonValue> parse(JsonError* err) {
    skip_ws();
    JsonValue v;
    if (!value(&v)) return fail(err);
    skip_ws();
    if (pos_ != s_.size()) {
      message_ = "trailing bytes after top-level value";
      return fail(err);
    }
    return v;
  }

 private:
  std::optional<JsonValue> fail(JsonError* err) {
    if (err != nullptr) {
      err->pos = pos_;
      err->message = message_.empty() ? "malformed JSON" : message_;
    }
    return std::nullopt;
  }

  bool value(JsonValue* out) {
    if (pos_ >= s_.size()) {
      message_ = "unexpected end of input";
      return false;
    }
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': {
        std::string str;
        if (!string(&str)) return false;
        *out = JsonValue::of(std::move(str));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        *out = JsonValue::of(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        *out = JsonValue::of(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        *out = JsonValue::null();
        return true;
      default: return number(out);
    }
  }

  bool object(JsonValue* out) {
    *out = JsonValue::object();
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) {
        message_ = "expected object key string";
        return false;
      }
      skip_ws();
      if (peek() != ':') {
        message_ = "expected ':' after object key";
        return false;
      }
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!value(&v)) return false;
      out->set(key, std::move(v));
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      message_ = "expected ',' or '}' in object";
      return false;
    }
  }

  bool array(JsonValue* out) {
    *out = JsonValue::array();
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!value(&v)) return false;
      out->push(std::move(v));
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      message_ = "expected ',' or ']' in array";
      return false;
    }
  }

  // Appends the UTF-8 encoding of `cp` to `out`.
  static void utf8_append(std::string* out, std::uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool hex4(std::uint32_t* out) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i, ++pos_) {
      if (pos_ >= s_.size() ||
          !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
        message_ = "expected 4 hex digits after \\u";
        return false;
      }
      const char c = s_[pos_];
      v = (v << 4) | static_cast<std::uint32_t>(
                         c <= '9' ? c - '0' : (c | 0x20) - 'a' + 10);
    }
    *out = v;
    return true;
  }

  bool string(std::string* out) {
    if (peek() != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) {
        message_ = "raw control character in string";
        return false;
      }
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= s_.size()) {
        message_ = "unterminated escape";
        return false;
      }
      switch (s_[pos_]) {
        case '"': out->push_back('"'); ++pos_; break;
        case '\\': out->push_back('\\'); ++pos_; break;
        case '/': out->push_back('/'); ++pos_; break;
        case 'b': out->push_back('\b'); ++pos_; break;
        case 'f': out->push_back('\f'); ++pos_; break;
        case 'n': out->push_back('\n'); ++pos_; break;
        case 'r': out->push_back('\r'); ++pos_; break;
        case 't': out->push_back('\t'); ++pos_; break;
        case 'u': {
          ++pos_;
          std::uint32_t cp = 0;
          if (!hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must pair with a following \uDC00-\uDFFF.
            if (pos_ + 1 >= s_.size() || s_[pos_] != '\\' || s_[pos_ + 1] != 'u') {
              message_ = "lone high surrogate";
              return false;
            }
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!hex4(&lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              message_ = "invalid low surrogate";
              return false;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            message_ = "lone low surrogate";
            return false;
          }
          utf8_append(out, cp);
          break;
        }
        default:
          message_ = "invalid escape character";
          return false;
      }
    }
    message_ = "unterminated string";
    return false;
  }

  bool number(JsonValue* out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
    } else if (std::isdigit(static_cast<unsigned char>(peek()))) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    } else {
      message_ = "malformed number";
      return false;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        message_ = "digit required after decimal point";
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        message_ = "digit required in exponent";
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    *out = JsonValue::of(std::strtod(s_.c_str() + start, nullptr));
    return true;
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) {
      message_ = "malformed literal";
      return false;
    }
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string message_;
};

}  // namespace

std::optional<JsonValue> json_parse(const std::string& s, JsonError* err) {
  return Parser(s).parse(err);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonValue::write() const {
  switch (type_) {
    case Type::Null: return "null";
    case Type::Bool: return bool_ ? "true" : "false";
    case Type::Number: {
      char buf[40];
      // Shortest decimal that round-trips a double; integers print bare.
      if (num_ == static_cast<double>(static_cast<std::int64_t>(num_)) &&
          num_ > -1e15 && num_ < 1e15) {
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(static_cast<std::int64_t>(num_)));
      } else {
        std::snprintf(buf, sizeof buf, "%.17g", num_);
      }
      return buf;
    }
    case Type::String: return "\"" + json_escape(str_) + "\"";
    case Type::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ",";
        out += items_[i].write();
      }
      out += "]";
      return out;
    }
    case Type::Object: {
      std::string out = "{";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"" + json_escape(members_[i].first) + "\":";
        out += members_[i].second.write();
      }
      out += "}";
      return out;
    }
  }
  return "null";
}

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

bool parse_hex_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace pcd::service
