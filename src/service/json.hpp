// Strict JSON (RFC 8259 subset, no extensions) for the campaign service's
// wire protocol: a small DOM, a recursive-descent parser that validates the
// whole grammar (not just brace balance), and a writer whose output always
// round-trips through the parser.
//
// This is the grown-up home of the strict validator test_telemetry.cpp
// introduced for the Chrome/Perfetto exports: the server, the pcd_client
// CLI, the result cache, and the exporter tests all share one
// implementation, so "parses here" means "parses everywhere".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pcd::service {

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  static JsonValue null() { return JsonValue(); }
  static JsonValue of(bool b) {
    JsonValue v;
    v.type_ = Type::Bool;
    v.bool_ = b;
    return v;
  }
  static JsonValue of(double d) {
    JsonValue v;
    v.type_ = Type::Number;
    v.num_ = d;
    return v;
  }
  static JsonValue of(std::int64_t i) { return of(static_cast<double>(i)); }
  static JsonValue of(int i) { return of(static_cast<double>(i)); }
  static JsonValue of(std::string s) {
    JsonValue v;
    v.type_ = Type::String;
    v.str_ = std::move(s);
    return v;
  }
  static JsonValue of(const char* s) { return of(std::string(s)); }
  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::Array;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::Object;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }

  // Array access.
  std::vector<JsonValue>& items() { return items_; }
  const std::vector<JsonValue>& items() const { return items_; }
  JsonValue& push(JsonValue v) {
    items_.push_back(std::move(v));
    return items_.back();
  }

  // Object access (insertion-ordered).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// Null when absent (or not an object).
  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  /// Appends or replaces.
  JsonValue& set(const std::string& key, JsonValue v) {
    for (auto& [k, existing] : members_) {
      if (k == key) {
        existing = std::move(v);
        return existing;
      }
    }
    members_.emplace_back(key, std::move(v));
    return members_.back().second;
  }

  // Typed lookups with defaults, for tolerant request parsing.
  double num_or(const std::string& key, double def) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->is_number() ? v->num_ : def;
  }
  std::int64_t int_or(const std::string& key, std::int64_t def) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->is_number() ? static_cast<std::int64_t>(v->num_) : def;
  }
  bool bool_or(const std::string& key, bool def) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->is_bool() ? v->bool_ : def;
  }
  std::string str_or(const std::string& key, std::string def) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->is_string() ? v->str_ : def;
  }

  /// Compact serialization (no whitespace); always re-parses strictly.
  std::string write() const;

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

struct JsonError {
  std::size_t pos = 0;      // byte offset of the first violation
  std::string message;
};

/// Strict parse of the ENTIRE input (trailing non-whitespace is an error).
/// Escapes are decoded (\uXXXX to UTF-8, surrogate pairs combined; a lone
/// surrogate is a violation).  Returns nullopt and fills `err` on failure.
std::optional<JsonValue> json_parse(const std::string& s, JsonError* err = nullptr);

/// JSON string escaping of `s` (no surrounding quotes).
std::string json_escape(const std::string& s);

/// Exact double round-trip helpers: C99 hex-float text (`%a`), used where
/// bit-identical persistence matters (the result cache).  parse_hex_double
/// returns false on malformed input.
std::string hex_double(double v);
bool parse_hex_double(const std::string& s, double* out);

}  // namespace pcd::service
