#include "service/request.hpp"

#include <cinttypes>
#include <cstdio>

#include "apps/npb.hpp"
#include "core/cpuspeed.hpp"
#include "sim/provenance.hpp"

namespace pcd::service {

namespace {

bool parse_strategy(const JsonValue& v, StrategyPoint* out, std::string* error) {
  if (!v.is_object()) {
    *error = "strategies entries must be objects";
    return false;
  }
  out->label = v.str_or("label", "");
  out->static_mhz = static_cast<int>(v.int_or("static_mhz", 0));
  out->daemon = v.str_or("daemon", "");
  if (!out->daemon.empty() && out->daemon != "v1.1" && out->daemon != "v1.2.1") {
    *error = "unknown daemon version '" + out->daemon + "' (v1.1 or v1.2.1)";
    return false;
  }
  if (!out->daemon.empty() && out->static_mhz != 0) {
    *error = "strategy '" + out->label + "' sets both daemon and static_mhz";
    return false;
  }
  if (out->label.empty()) {
    out->label = !out->daemon.empty()
                     ? "auto-" + out->daemon
                     : (out->static_mhz > 0 ? std::to_string(out->static_mhz)
                                            : std::string("full"));
  }
  return true;
}

}  // namespace

std::optional<SpecRequest> SpecRequest::from_json(const JsonValue& v,
                                                 std::string* error) {
  if (!v.is_object()) {
    if (error != nullptr) *error = "request must be a JSON object";
    return std::nullopt;
  }
  SpecRequest req;
  std::string err;
  if (const JsonValue* w = v.find("workloads"); w != nullptr) {
    if (!w->is_array()) {
      err = "workloads must be an array of code names";
    } else {
      for (const auto& item : w->items()) {
        if (!item.is_string()) {
          err = "workloads entries must be strings";
          break;
        }
        req.workloads.push_back(item.as_string());
      }
    }
  }
  req.scale = v.num_or("scale", req.scale);
  req.trials = static_cast<int>(v.int_or("trials", req.trials));
  req.seed = static_cast<std::uint64_t>(v.int_or("seed", 1));
  req.digests = v.bool_or("digests", req.digests);
  req.slice_s = v.num_or("slice_s", req.slice_s);
  req.deadline_s = v.num_or("deadline_s", req.deadline_s);
  req.budget_s = v.num_or("budget_s", req.budget_s);
  if (err.empty()) {
    if (const JsonValue* s = v.find("strategies"); s != nullptr) {
      if (!s->is_array()) {
        err = "strategies must be an array";
      } else {
        for (const auto& item : s->items()) {
          StrategyPoint p;
          if (!parse_strategy(item, &p, &err)) break;
          req.strategies.push_back(std::move(p));
        }
      }
    }
  }
  if (err.empty() && req.scale <= 0) err = "scale must be > 0";
  if (err.empty() && req.trials < 1) err = "trials must be >= 1";
  if (err.empty() && req.deadline_s < 0) err = "deadline_s must be >= 0";
  if (err.empty() && req.budget_s < 0) err = "budget_s must be >= 0";
  if (!err.empty()) {
    if (error != nullptr) *error = std::move(err);
    return std::nullopt;
  }
  return req;
}

JsonValue SpecRequest::to_json() const {
  JsonValue v = JsonValue::object();
  JsonValue ws = JsonValue::array();
  for (const auto& w : workloads) ws.push(JsonValue::of(w));
  v.set("workloads", std::move(ws));
  v.set("scale", JsonValue::of(scale));
  v.set("trials", JsonValue::of(trials));
  v.set("seed", JsonValue::of(static_cast<std::int64_t>(seed)));
  v.set("digests", JsonValue::of(digests));
  v.set("slice_s", JsonValue::of(slice_s));
  if (!strategies.empty()) {
    JsonValue ss = JsonValue::array();
    for (const auto& s : strategies) {
      JsonValue p = JsonValue::object();
      p.set("label", JsonValue::of(s.label));
      if (!s.daemon.empty()) {
        p.set("daemon", JsonValue::of(s.daemon));
      } else if (s.static_mhz != 0) {
        p.set("static_mhz", JsonValue::of(s.static_mhz));
      }
      ss.push(std::move(p));
    }
    v.set("strategies", std::move(ss));
  }
  if (deadline_s > 0) v.set("deadline_s", JsonValue::of(deadline_s));
  if (budget_s > 0) v.set("budget_s", JsonValue::of(budget_s));
  return v;
}

std::optional<campaign::ExperimentSpec> SpecRequest::to_spec(
    std::string* error) const {
  if (workloads.empty()) {
    if (error != nullptr) *error = "request names no workloads";
    return std::nullopt;
  }
  campaign::ExperimentSpec spec;
  for (const auto& name : workloads) {
    auto w = apps::npb_by_name(name, scale);
    if (!w.has_value()) {
      if (error != nullptr) *error = "unknown workload '" + name + "'";
      return std::nullopt;
    }
    spec.workload(std::move(*w), name);
  }
  core::RunConfig base;
  base.seed = seed;
  base.slice_s = slice_s;
  spec.base(base);

  std::vector<StrategyPoint> points = strategies;
  if (points.empty()) points.push_back(StrategyPoint{"full", 0, ""});
  std::vector<std::pair<std::string, std::function<void(core::RunConfig&)>>>
      values;
  values.reserve(points.size());
  for (const auto& p : points) {
    if (!p.daemon.empty()) {
      const core::CpuspeedParams params = p.daemon == "v1.1"
                                              ? core::CpuspeedParams::v1_1()
                                              : core::CpuspeedParams::v1_2_1();
      values.emplace_back(p.label,
                          [params](core::RunConfig& c) { c.daemon = params; });
    } else {
      const int mhz = p.static_mhz;
      values.emplace_back(p.label,
                          [mhz](core::RunConfig& c) { c.static_mhz = mhz; });
    }
  }
  spec.axis(campaign::Axis::strategies("strategy", std::move(values)));
  spec.trials(trials);
  spec.collect_digests(digests);
  return spec;
}

std::uint64_t SpecRequest::cell_key(const std::string& workload_label,
                                    const std::string& strategy_label) const {
  const StrategyPoint* strat = nullptr;
  for (const auto& s : strategies) {
    if (s.label == strategy_label) {
      strat = &s;
      break;
    }
  }
  // Canonical identity record.  Hex-float doubles so the text (and the key)
  // is exact; the daemon version tag stands in for its parameter set (the
  // factories are the only source of those parameters).
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "pcd-cell-v1|wl=%s|scale=%a|trials=%d|seed=%" PRIu64
                "|dig=%d|slice=%a|strat=%s|mhz=%d|daemon=%s",
                workload_label.c_str(), scale, trials, seed, digests ? 1 : 0,
                slice_s, strategy_label.c_str(),
                strat != nullptr ? strat->static_mhz : 0,
                strat != nullptr ? strat->daemon.c_str() : "");
  return sim::digest_cstr(buf);
}

}  // namespace pcd::service
