// Campaign submission wire format: the JSON shape clients put on the
// socket, resolved into an ExperimentSpec (workload names -> apps::npb,
// strategy points -> one "strategy" axis) plus the fingerprint identity the
// result cache is keyed by.
//
// Cache keys are a pure function of the *cell's* identity — the shared
// run parameters plus one (workload, strategy) coordinate — so a cell hits
// the cache no matter which request it arrives in: a 2-workload subset of
// yesterday's 8-workload sweep re-runs nothing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "service/json.hpp"

namespace pcd::service {

/// One point on the request's strategy axis.  Exactly one control mode:
/// `daemon` non-empty selects the CPUSPEED daemon ("v1.1" or "v1.2.1"),
/// otherwise `static_mhz` is EXTERNAL static control (0 = boot default,
/// i.e. full speed).
struct StrategyPoint {
  std::string label;
  int static_mhz = 0;
  std::string daemon;
};

/// A parsed campaign submission.  Field defaults are the wire defaults:
/// omitting a field in the JSON means this value.
struct SpecRequest {
  std::vector<std::string> workloads;  // NPB code names (apps::npb_by_name)
  double scale = 0.02;                 // workload scale factor
  int trials = 1;
  std::uint64_t seed = 1;
  bool digests = true;                 // collect determinism digests
  double slice_s = 0.05;
  std::vector<StrategyPoint> strategies;  // empty = one full-speed point

  // Robustness knobs (0 = use the service defaults).
  double deadline_s = 0;  // per-run wall-clock ceiling
  double budget_s = 0;    // whole-request wall-clock budget

  /// Parses the submission fields out of a JSON object (unknown members are
  /// ignored so the same object can carry the envelope's "op").  Returns
  /// nullopt and fills `error` on a malformed field.
  static std::optional<SpecRequest> from_json(const JsonValue& v, std::string* error);

  /// The request as a wire object (round-trips through from_json).
  JsonValue to_json() const;

  /// Resolves workload names and builds the ExperimentSpec: workloads x one
  /// "strategy" axis, digests per `digests`.  Returns nullopt and fills
  /// `error` when a workload name is unknown or the list is empty.
  std::optional<campaign::ExperimentSpec> to_spec(std::string* error) const;

  /// Cache identity of one cell: FNV-1a over a canonical serialization of
  /// the shared parameters (scale, trials, seed, digests, slice) plus the
  /// (workload, strategy) coordinate — deliberately independent of which
  /// other cells the request carried and of the robustness knobs (a tighter
  /// deadline does not change what a completed cell computed).
  std::uint64_t cell_key(const std::string& workload_label,
                         const std::string& strategy_label) const;
};

}  // namespace pcd::service
