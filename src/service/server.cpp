#include "service/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

namespace pcd::service {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

/// Sends the whole buffer; MSG_NOSIGNAL so a vanished client is an error
/// return, not a SIGPIPE.
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

JsonValue response_to_json(const Response& r, bool include_result) {
  JsonValue v = JsonValue::object();
  v.set("status", JsonValue::of(to_string(r.status)));
  if (!r.reason.empty()) v.set("reason", JsonValue::of(r.reason));
  if (r.status == Status::Rejected) {
    v.set("retry_after_s", JsonValue::of(r.retry_after_s));
  }
  v.set("cache_hits", JsonValue::of(r.cache_hits));
  v.set("cache_misses", JsonValue::of(r.cache_misses));
  v.set("retries", JsonValue::of(r.retries));
  if (include_result && (r.status == Status::Ok || r.status == Status::Cancelled)) {
    v.set("fingerprint", JsonValue::of(hex16(r.fingerprint)));
    v.set("cells", JsonValue::of(static_cast<std::int64_t>(r.result.cells.size())));
    std::int64_t failures = 0;
    for (const auto& c : r.result.cells) failures += c.failures;
    v.set("cell_failures", JsonValue::of(failures));
    v.set("wall_s", JsonValue::of(r.result.wall_s));
    v.set("tsv", JsonValue::of(r.result.tsv()));
    if (!r.flight_recordings.empty()) {
      JsonValue dumps = JsonValue::array();
      for (const auto& d : r.flight_recordings) dumps.push(JsonValue::of(d));
      v.set("flight_recordings", std::move(dumps));
    }
  }
  return v;
}

SocketServer::SocketServer(CampaignService& service, std::string socket_path)
    : service_(service), path_(std::move(socket_path)) {}

SocketServer::~SocketServer() { stop(); }

bool SocketServer::start(std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path_;
    return false;
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(path_.c_str());  // stale socket from a previous (killed) server
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    if (error != nullptr) {
      *error = std::string("bind/listen ") + path_ + ": " + std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void SocketServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop()) or fatal
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

std::string SocketServer::handle_line(const std::string& line,
                                      bool* shutdown_requested) {
  JsonError jerr;
  auto parsed = json_parse(line, &jerr);
  JsonValue out = JsonValue::object();
  if (!parsed.has_value()) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "malformed JSON at byte %zu: %s", jerr.pos,
                  jerr.message.c_str());
    out.set("status", JsonValue::of("error"));
    out.set("reason", JsonValue::of(buf));
    return out.write();
  }
  const std::string op = parsed->str_or("op", "submit");
  if (op == "ping") {
    out.set("ok", JsonValue::of(true));
    out.set("op", JsonValue::of("ping"));
    return out.write();
  }
  if (op == "stats") {
    const CacheStats cs = service_.cache_stats();
    out.set("ok", JsonValue::of(true));
    out.set("op", JsonValue::of("stats"));
    out.set("queue_depth",
            JsonValue::of(static_cast<std::int64_t>(service_.queue_depth())));
    out.set("draining", JsonValue::of(service_.draining()));
    JsonValue cache = JsonValue::object();
    cache.set("entries", JsonValue::of(cs.entries));
    cache.set("hits", JsonValue::of(cs.hits));
    cache.set("misses", JsonValue::of(cs.misses));
    cache.set("inserts", JsonValue::of(cs.inserts));
    cache.set("recovered", JsonValue::of(cs.recovered));
    cache.set("corrupt", JsonValue::of(cs.corrupt));
    cache.set("torn_bytes", JsonValue::of(cs.torn_bytes));
    cache.set("index_used", JsonValue::of(cs.index_used));
    cache.set("hit_ratio", JsonValue::of(cs.hit_ratio()));
    out.set("cache", std::move(cache));
    return out.write();
  }
  if (op == "shutdown") {
    *shutdown_requested = true;
    out.set("ok", JsonValue::of(true));
    out.set("op", JsonValue::of("shutdown"));
    return out.write();
  }
  if (op == "submit") {
    std::string err;
    auto req = SpecRequest::from_json(*parsed, &err);
    if (!req.has_value()) {
      out.set("status", JsonValue::of("error"));
      out.set("reason", JsonValue::of(err));
      return out.write();
    }
    const Response resp = service_.execute(std::move(*req));
    return response_to_json(resp).write();
  }
  out.set("status", JsonValue::of("error"));
  out.set("reason", JsonValue::of("unknown op '" + op + "'"));
  return out.write();
}

void SocketServer::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool shutdown_requested = false;
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while (open && (nl = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty()) continue;
      const std::string reply = handle_line(line, &shutdown_requested);
      if (!send_all(fd, reply + "\n") || shutdown_requested) open = false;
    }
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
      if (*it == fd) {
        conn_fds_.erase(it);
        break;
      }
    }
  }
  if (shutdown_requested && !shutdown_fired_.exchange(true) && on_shutdown_) {
    on_shutdown_();
  }
}

void SocketServer::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  ::unlink(path_.c_str());
}

}  // namespace pcd::service
