// Line-delimited JSON over an AF_UNIX stream socket: the campaign
// service's wire.  One request object per line, one response object per
// line, strictly parsed on both sides (service/json.hpp).
//
// Ops:
//   {"op":"ping"}                  -> {"ok":true,"op":"ping"}
//   {"op":"stats"}                 -> queue depth, cache stats, counters
//   {"op":"submit", ...SpecRequest fields...}
//                                  -> the structured Response (status,
//                                     reason, retry_after_s, fingerprint,
//                                     cache hits/misses, retries, tsv,
//                                     flight recordings on failures)
//   {"op":"shutdown"}              -> {"ok":true}, then the on_shutdown
//                                     hook fires (the binary drains)
//
// Every connection gets its own thread, so concurrent clients map to
// concurrent CampaignService::execute calls — admission control, not the
// socket accept loop, is what bounds the work.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/json.hpp"
#include "service/service.hpp"

namespace pcd::service {

/// The wire form of a Response (shared by server, client, and tests).
/// `include_result` controls the heavyweight members (tsv, table, flight
/// recordings); rejection/error envelopes do not need them.
JsonValue response_to_json(const Response& r, bool include_result = true);

class SocketServer {
 public:
  SocketServer(CampaignService& service, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and starts the accept thread.  False + `error` on any
  /// socket failure (path too long, address in use, ...).
  bool start(std::string* error = nullptr);

  /// Closes the listener and every open connection, joins all threads,
  /// unlinks the socket path.  Idempotent.
  void stop();

  const std::string& path() const { return path_; }

  /// Invoked (once) after a client's {"op":"shutdown"} response is written.
  void on_shutdown(std::function<void()> fn) { on_shutdown_ = std::move(fn); }

 private:
  void accept_loop();
  void handle_connection(int fd);
  std::string handle_line(const std::string& line, bool* shutdown_requested);

  CampaignService& service_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_fired_{false};
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
  std::function<void()> on_shutdown_;
};

}  // namespace pcd::service
