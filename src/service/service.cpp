#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "campaign/runner.hpp"

namespace pcd::service {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

bool contains(const std::string& s, const char* sub) {
  return s.find(sub) != std::string::npos;
}

/// SplitMix64 finalizer: the deterministic mixer behind the chaos coin and
/// the retry jitter (no global RNG — replayable per (seed, key, round)).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit_interval(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

enum class Outcome { Success, Permanent, Transient, Cancelled };

Outcome classify(const campaign::CellResult& cell, bool plan_valid) {
  if (!plan_valid) return Outcome::Permanent;
  const bool failed = cell.failures > 0 || cell.result.failed;
  if (!failed) return Outcome::Success;
  auto any_error = [&](const char* sub) {
    if (contains(cell.result.failure, sub)) return true;
    for (const auto& e : cell.errors) {
      if (contains(e, sub)) return true;
    }
    return false;
  };
  if (any_error("cancelled")) return Outcome::Cancelled;
  // Fault-injected failures are the transient class of the taxonomy: the
  // injection was infrastructure, not the spec, so a clean re-run can
  // succeed.  Deadline overruns retry too (bounded by max_retries) — a
  // loaded box may simply have been slow.
  if (cell.result.fault_report.has_value() &&
      cell.result.fault_report->injected > 0) {
    return Outcome::Transient;
  }
  if (any_error("deadline exceeded")) return Outcome::Transient;
  // Everything else is deterministic for a share-nothing run: re-running
  // the same RunConfig reproduces the same failure.
  return Outcome::Permanent;
}

void collect_recordings(const campaign::CellResult& cell, Response* resp) {
  if (cell.result.determinism.has_value() &&
      !cell.result.determinism->flight_recording.empty()) {
    resp->flight_recordings.push_back(cell.result.determinism->flight_recording);
  }
  if (cell.result.fault_report.has_value()) {
    for (const auto& dump : cell.result.fault_report->flight_recordings) {
      resp->flight_recordings.push_back(dump);
    }
  }
}

/// A cell the service never ran (budget exhausted, cancelled while queued
/// in the retry set): same shape a fully failed run would have, so the TSV
/// and the client see a structured per-cell error.
campaign::CellResult synthetic_failure(const campaign::CellPlan& plan,
                                       const std::string& why) {
  campaign::CellResult cell;
  cell.index = plan.index;
  cell.workload = plan.workload_label;
  cell.labels = plan.labels;
  cell.numbers = plan.numbers;
  cell.numeric = plan.numeric;
  cell.config_issues = plan.issues;
  cell.runs = 0;
  cell.failures = 1;
  cell.errors.push_back(why);
  cell.result.failed = true;
  cell.result.failure = why;
  return cell;
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::Rejected: return "rejected";
    case Status::Error: return "error";
    case Status::Cancelled: return "cancelled";
  }
  return "?";
}

CampaignService::CampaignService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_dir, options_.cache_sync) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.metrics != nullptr) {
    auto& m = *options_.metrics;
    m.set_help("campaign_service_requests_total", "Requests submitted");
    m.set_help("campaign_service_shed_total", "Requests shed at admission");
    m.set_help("campaign_service_retries_total", "Cell re-runs after transient failures");
    m.set_help("campaign_service_cache_hits_total", "Cells served from the result cache");
    m.set_help("campaign_service_cache_misses_total", "Cells that had to run");
    m.set_help("campaign_service_cancelled_total", "Requests cancelled before completion");
    m.set_help("campaign_service_queue_depth", "Requests waiting for a worker");
    m_requests_ = &m.counter("campaign_service_requests_total");
    m_shed_ = &m.counter("campaign_service_shed_total");
    m_retries_ = &m.counter("campaign_service_retries_total");
    m_cache_hits_ = &m.counter("campaign_service_cache_hits_total");
    m_cache_misses_ = &m.counter("campaign_service_cache_misses_total");
    m_cancelled_ = &m.counter("campaign_service_cancelled_total");
    m_queue_depth_ = &m.gauge("campaign_service_queue_depth");
  }
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

CampaignService::~CampaignService() { shutdown_now(); }

std::size_t CampaignService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool CampaignService::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_ || stopping_;
}

double CampaignService::retry_after_locked() const {
  // Work ahead of a re-submission: everything queued or running, spread
  // over the workers, at the recent per-request pace.
  const double waiting = static_cast<double>(queue_.size() + in_flight_ + 1);
  return waiting * ewma_request_s_ / static_cast<double>(options_.workers);
}

CampaignService::Ticket CampaignService::submit(SpecRequest req) {
  auto job = std::make_shared<Job>();
  job->req = std::move(req);

  Response rejected;
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job->id = ++next_id_;
    jobs_[job->id] = job;
    if (m_requests_ != nullptr) m_requests_->inc();
    if (draining_ || stopping_) {
      shed = true;
      rejected.status = Status::Rejected;
      rejected.reason = "service is draining; not admitting new campaigns";
      rejected.retry_after_s = 0;
    } else if (queue_.size() >= options_.max_queue) {
      shed = true;
      rejected.status = Status::Rejected;
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "admission queue full (%zu waiting); shedding load",
                    queue_.size());
      rejected.reason = buf;
      rejected.retry_after_s = retry_after_locked();
      if (m_shed_ != nullptr) m_shed_->inc();
    } else {
      queue_.push_back(job);
      if (m_queue_depth_ != nullptr) {
        m_queue_depth_->set(static_cast<double>(queue_.size()));
      }
    }
  }
  if (shed) {
    complete(job, std::move(rejected));
  } else {
    cv_.notify_one();
  }
  return Ticket{job->id};
}

Response CampaignService::wait(Ticket t) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(t.id);
    if (it != jobs_.end()) job = it->second;
  }
  if (job == nullptr) {
    Response resp;
    resp.status = Status::Error;
    resp.reason = "unknown or already-collected ticket";
    return resp;
  }
  Response out;
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&] { return job->done; });
    out = std::move(job->response);
  }
  std::lock_guard<std::mutex> lock(mu_);
  jobs_.erase(t.id);
  return out;
}

void CampaignService::cancel(Ticket t) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(t.id);
    if (it != jobs_.end()) job = it->second;
  }
  if (job == nullptr) return;
  job->cancel.store(true, std::memory_order_relaxed);
  job->cv.notify_all();
}

void CampaignService::complete(const std::shared_ptr<Job>& job, Response resp) {
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->response = std::move(resp);
    job->done = true;
  }
  job->cv.notify_all();
}

void CampaignService::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with nothing left
      job = queue_.front();
      queue_.pop_front();
      ++in_flight_;
      running_.push_back(job);
      if (m_queue_depth_ != nullptr) {
        m_queue_depth_->set(static_cast<double>(queue_.size()));
      }
    }

    const auto t0 = Clock::now();
    Response resp;
    if (job->cancel.load(std::memory_order_relaxed)) {
      resp.status = Status::Cancelled;
      resp.reason = "cancelled while queued";
    } else {
      resp = run_request(*job);
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      running_.erase(std::find(running_.begin(), running_.end(), job));
      --in_flight_;
      ewma_request_s_ = 0.8 * ewma_request_s_ + 0.2 * elapsed_s(t0);
      if (m_cancelled_ != nullptr && resp.status == Status::Cancelled) {
        m_cancelled_->inc();
      }
    }
    complete(job, std::move(resp));
    idle_cv_.notify_all();
  }
}

bool CampaignService::chaos_coin(std::uint64_t key, int attempt) const {
  const auto& chaos = options_.chaos;
  if (chaos.probability <= 0 || attempt >= chaos.max_attempt) return false;
  const std::uint64_t h =
      mix64(chaos.seed ^ mix64(key ^ static_cast<std::uint64_t>(attempt)));
  return unit_interval(h) < chaos.probability;
}

void CampaignService::backoff_wait(Job& job, int round, std::uint64_t key) {
  double interval =
      options_.retry_backoff_s * static_cast<double>(1LL << std::min(round, 20));
  if (options_.retry_jitter > 0) {
    // Deterministic jitter in [1 - j, 1 + j]: decorrelates concurrent
    // clients without drawing from any shared RNG.
    const double u = unit_interval(
        mix64(key ^ (static_cast<std::uint64_t>(round) << 32) ^ 0xa5a5a5a5ULL));
    interval *= 1.0 + options_.retry_jitter * (2.0 * u - 1.0);
  }
  std::unique_lock<std::mutex> lock(job.mu);
  job.cv.wait_for(lock, std::chrono::duration<double>(interval), [&] {
    return job.cancel.load(std::memory_order_relaxed);
  });
}

Response CampaignService::run_request(Job& job) {
  const auto t0 = Clock::now();
  Response resp;

  std::string err;
  auto spec_opt = job.req.to_spec(&err);
  if (!spec_opt.has_value()) {
    resp.status = Status::Error;
    resp.reason = err;
    return resp;
  }
  campaign::ExperimentSpec& spec = *spec_opt;

  std::vector<campaign::CellPlan> plans;
  try {
    plans = spec.expand_lenient();
  } catch (const std::exception& e) {
    resp.status = Status::Error;
    resp.reason = e.what();
    return resp;
  }

  const double budget =
      job.req.budget_s > 0 ? job.req.budget_s : options_.default_budget_s;
  const double deadline =
      job.req.deadline_s > 0 ? job.req.deadline_s : options_.default_deadline_s;

  struct Slot {
    campaign::CellPlan plan;
    std::uint64_t key = 0;
    int attempt = 0;
    bool chaos = false;  // chaos applied to the attempt about to run / just run
  };

  std::vector<campaign::CellResult> cells;
  std::vector<Slot> pending;
  cells.reserve(plans.size());
  for (auto& plan : plans) {
    const std::string strategy = plan.labels.empty() ? "" : plan.labels.front();
    Slot slot;
    slot.key = job.req.cell_key(plan.workload_label, strategy);
    if (plan.valid()) {
      if (auto hit = cache_.lookup(slot.key); hit.has_value()) {
        hit->index = plan.index;  // matrix position in THIS request
        cells.push_back(std::move(*hit));
        ++resp.cache_hits;
        continue;
      }
      ++resp.cache_misses;
    }
    slot.plan = std::move(plan);
    pending.push_back(std::move(slot));
  }
  if (options_.metrics != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    if (m_cache_hits_ != nullptr) m_cache_hits_->inc(resp.cache_hits);
    if (m_cache_misses_ != nullptr) m_cache_misses_->inc(resp.cache_misses);
  }

  bool cancelled = false;
  bool budget_hit = false;
  int round = 0;
  while (!pending.empty()) {
    if (job.cancel.load(std::memory_order_relaxed)) {
      cancelled = true;
      for (auto& slot : pending) {
        cells.push_back(synthetic_failure(slot.plan, "request cancelled"));
      }
      pending.clear();
      break;
    }
    double remaining_s = 0;
    if (budget > 0) {
      remaining_s = budget - elapsed_s(t0);
      if (remaining_s <= 0) {
        budget_hit = true;
        for (auto& slot : pending) {
          cells.push_back(synthetic_failure(
              slot.plan, "request budget exhausted before the cell ran"));
        }
        pending.clear();
        break;
      }
    }

    // Chaos marking for this round: early attempts may run under the chaos
    // FaultPlan; the flag also forces a clean re-run afterwards.
    for (auto& slot : pending) {
      slot.chaos = chaos_coin(slot.key, slot.attempt);
      slot.plan.config.faults =
          slot.chaos ? options_.chaos.plan : fault::FaultPlan{};
    }

    campaign::CampaignOptions copts;
    copts.threads = options_.campaign_threads;
    copts.cancel = &job.cancel;
    copts.run_deadline_s = deadline;
    if (budget > 0 &&
        (copts.run_deadline_s <= 0 || copts.run_deadline_s > remaining_s)) {
      copts.run_deadline_s = remaining_s;
    }

    std::vector<campaign::CellPlan> round_plans;
    round_plans.reserve(pending.size());
    for (const auto& slot : pending) round_plans.push_back(slot.plan);
    campaign::CampaignResult partial =
        campaign::CampaignRunner(copts).run_cells(spec, std::move(round_plans));

    std::vector<Slot> next;
    int retries_this_round = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      Slot& slot = pending[i];
      campaign::CellResult& cell = partial.cells[i];
      Outcome outcome = classify(cell, slot.plan.valid());
      // A chaos-touched attempt never stands as the final word while
      // retries remain: even a "success" under injected faults is a
      // different trajectory than the clean run, so it is re-run clean
      // (and never cached).
      if (slot.chaos && outcome != Outcome::Cancelled) {
        outcome = Outcome::Transient;
      }
      const bool attempts_left = slot.attempt < options_.max_retries;
      if (outcome == Outcome::Transient && attempts_left) {
        collect_recordings(cell, &resp);
        ++slot.attempt;
        ++retries_this_round;
        next.push_back(std::move(slot));
        continue;
      }
      if (outcome == Outcome::Success && slot.plan.valid() && !slot.chaos) {
        cache_.insert(slot.key, cell);
      } else {
        collect_recordings(cell, &resp);
      }
      cells.push_back(std::move(cell));
    }
    if (retries_this_round > 0) {
      resp.retries += retries_this_round;
      if (options_.metrics != nullptr) {
        std::lock_guard<std::mutex> lock(mu_);
        if (m_retries_ != nullptr) m_retries_->inc(retries_this_round);
      }
    }
    pending = std::move(next);
    if (!pending.empty()) backoff_wait(job, round, pending.front().key);
    ++round;
  }

  std::sort(cells.begin(), cells.end(),
            [](const campaign::CellResult& a, const campaign::CellResult& b) {
              return a.index < b.index;
            });
  for (const auto& a : spec.axes()) resp.result.axis_names.push_back(a.name);
  resp.result.cells = std::move(cells);
  resp.result.total_runs = spec.total_runs();
  resp.result.threads = options_.campaign_threads;
  resp.result.wall_s = elapsed_s(t0);
  resp.fingerprint = resp.result.fingerprint();

  // A cancel that landed mid-round (the runner aborted its cells at a batch
  // boundary, but the round loop never saw the flag at its top) still makes
  // the request Cancelled, not Ok-with-failures.
  if (job.cancel.load(std::memory_order_relaxed)) cancelled = true;
  if (cancelled) {
    resp.status = Status::Cancelled;
    resp.reason = "request cancelled";
  } else {
    resp.status = Status::Ok;
    if (budget_hit) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "request budget (%.2f s) exhausted", budget);
      resp.reason = buf;
    }
  }
  return resp;
}

void CampaignService::stop_workers() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  workers_stopped_ = true;
}

void CampaignService::drain() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (workers_stopped_) return;
    draining_ = true;
    idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
    stopping_ = true;
  }
  stop_workers();
  cache_.persist_index();
}

void CampaignService::shutdown_now() {
  std::vector<std::shared_ptr<Job>> to_cancel;
  std::vector<std::shared_ptr<Job>> queued;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (workers_stopped_) return;
    draining_ = true;
    stopping_ = true;
    for (auto& job : queue_) queued.push_back(job);
    queue_.clear();
    if (m_queue_depth_ != nullptr) m_queue_depth_->set(0);
    to_cancel = running_;
  }
  for (auto& job : queued) {
    Response resp;
    resp.status = Status::Cancelled;
    resp.reason = "service shutting down";
    complete(job, std::move(resp));
  }
  for (auto& job : to_cancel) {
    job->cancel.store(true, std::memory_order_relaxed);
    job->cv.notify_all();
  }
  stop_workers();
}

}  // namespace pcd::service
