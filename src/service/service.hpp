// CampaignService: the resilient campaign server's in-process core.
//
// A fixed worker pool executes SpecRequests on the existing work-stealing
// CampaignRunner, with the robustness layer the paper's methodology never
// needed interactively but a long-running service does:
//
//   - admission control: a bounded queue; when it is full (or the service
//     is draining) submissions are shed immediately with a structured
//     Rejected{reason, retry_after} instead of queueing unboundedly;
//   - deadlines and budgets: every run gets a wall-clock ceiling and every
//     request a total budget, enforced through the cooperative
//     cancel/deadline hooks threaded into RunConfig (zero digest
//     perturbation — see core/runner.hpp);
//   - retry with backoff: transiently failed cells (fault-injected runs,
//     deadline overruns) are re-run after exponential backoff with
//     deterministic jitter, up to max_retries; spec errors are permanent
//     and never retried;
//   - result cache: completed clean cells persist in the crash-safe
//     fingerprint-keyed ResultCache, so a re-submitted campaign (or an
//     overlapping one) re-runs only what it must;
//   - chaos hook: a deterministic per-(cell, attempt) coin injects a
//     configured FaultPlan into early attempts — the test harness for the
//     whole retry path.  Chaos-touched results are never cached, and a
//     chaos-touched attempt is always retried while retries remain, so
//     surviving responses converge to the clean run's digest root.
//
// Everything is in-process (the AF_UNIX wire lives in service/server.hpp),
// so tests exercise admission, retries, and the cache without networking.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/result.hpp"
#include "fault/plan.hpp"
#include "service/cache.hpp"
#include "service/request.hpp"
#include "telemetry/metrics.hpp"

namespace pcd::service {

/// Deterministic fault injection into early attempts: with probability
/// `probability`, an attempt with index < max_attempt runs under `plan`.
/// The coin is a pure function of (seed, cell key, attempt), so a chaos
/// campaign is replayable.
struct ChaosOptions {
  fault::FaultPlan plan;
  double probability = 0;  // 0 = chaos off
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  int max_attempt = 1;  // only attempts 0 .. max_attempt-1 are eligible
};

struct ServiceOptions {
  int workers = 2;           // request-executing threads
  int campaign_threads = 0;  // per-request CampaignRunner threads (0 = auto)

  /// Admission: requests waiting for a worker beyond this are shed.
  std::size_t max_queue = 8;

  /// Applied when the request leaves the knob at 0.
  double default_deadline_s = 0;  // per-run wall ceiling
  double default_budget_s = 0;    // per-request wall budget

  int max_retries = 2;           // per cell, transient failures only
  double retry_backoff_s = 0.05; // base interval; doubles per round
  double retry_jitter = 0.25;    // +/- fraction, deterministic per (key, round)

  std::string cache_dir;   // "" = in-memory cache only
  bool cache_sync = true;  // fsync every cache append

  /// Service-level counters/gauges (campaign_service_*).  The registry is
  /// not handed to the inner CampaignRunners: it is not thread-safe, and
  /// the service serializes its own updates under one lock.
  telemetry::MetricsRegistry* metrics = nullptr;

  ChaosOptions chaos;
};

enum class Status {
  Ok,         // campaign executed (individual cells may still carry failures)
  Rejected,   // shed at admission; retry_after_s estimates when to come back
  Error,      // the request itself is malformed (never retried)
  Cancelled,  // cancelled by the client or service shutdown
};

const char* to_string(Status s);

struct Response {
  Status status = Status::Error;
  std::string reason;       // Rejected/Error/Cancelled detail; Ok caveats
  double retry_after_s = 0; // Rejected only: suggested backoff

  campaign::CampaignResult result;  // cells present for Ok (and partial ends)
  std::uint64_t fingerprint = 0;    // result.fingerprint()

  int cache_hits = 0;
  int cache_misses = 0;
  int retries = 0;  // cell re-runs this request triggered

  /// Black-box dumps from failed runs (flight recorder + watchdog
  /// fallbacks), for post-mortem without re-running.
  std::vector<std::string> flight_recordings;
};

class CampaignService {
 public:
  explicit CampaignService(ServiceOptions options = {});
  ~CampaignService();

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  /// Handle for one submission.  Every submit() — including one that was
  /// shed — yields a ticket whose wait() returns the structured response.
  struct Ticket {
    std::uint64_t id = 0;
  };

  /// Admission: never blocks.  Shedding completes the ticket immediately
  /// with Status::Rejected and a retry_after_s estimate.
  Ticket submit(SpecRequest req);

  /// Blocks until the ticket's request completes and returns its response.
  /// A ticket can be waited on once; unknown tickets return Error.
  Response wait(Ticket t);

  /// submit + wait.
  Response execute(SpecRequest req) { return wait(submit(std::move(req))); }

  /// Raises the request's cancel token: queued requests complete as
  /// Cancelled without running; an executing request aborts at its next
  /// event-batch boundary.
  void cancel(Ticket t);

  /// Graceful drain: stop admitting, finish everything accepted, stop the
  /// workers, persist the cache index.  Idempotent.
  void drain();

  /// Immediate stop: stop admitting, cancel queued and in-flight requests,
  /// join the workers.  The cache log is already durable (per-append
  /// fsync); no index is written.  Idempotent.
  void shutdown_now();

  CacheStats cache_stats() const { return cache_.stats(); }
  std::size_t queue_depth() const;
  bool draining() const;

 private:
  struct Job {
    std::uint64_t id = 0;
    SpecRequest req;
    std::atomic<bool> cancel{false};
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Response response;
  };

  void worker_loop();
  Response run_request(Job& job);
  void complete(const std::shared_ptr<Job>& job, Response resp);
  void backoff_wait(Job& job, int round, std::uint64_t key);
  bool chaos_coin(std::uint64_t key, int attempt) const;
  double retry_after_locked() const;
  void stop_workers();

  ServiceOptions options_;
  ResultCache cache_;

  std::mutex stop_mu_;  // serializes worker joins (drain vs shutdown_now)
  mutable std::mutex mu_;
  std::condition_variable cv_;       // workers: queue/not-stopping
  std::condition_variable idle_cv_;  // drain: queue empty + nothing in flight
  std::deque<std::shared_ptr<Job>> queue_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::vector<std::shared_ptr<Job>> running_;
  std::vector<std::thread> workers_;
  std::uint64_t next_id_ = 0;
  int in_flight_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
  bool workers_stopped_ = false;
  double ewma_request_s_ = 1.0;  // retry_after estimator

  // Metric handles (null when options_.metrics is null).
  telemetry::Counter* m_requests_ = nullptr;
  telemetry::Counter* m_shed_ = nullptr;
  telemetry::Counter* m_retries_ = nullptr;
  telemetry::Counter* m_cache_hits_ = nullptr;
  telemetry::Counter* m_cache_misses_ = nullptr;
  telemetry::Counter* m_cancelled_ = nullptr;
  telemetry::Gauge* m_queue_depth_ = nullptr;
};

}  // namespace pcd::service
