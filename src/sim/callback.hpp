// InlineFunction: a move-only callable with small-buffer storage.
//
// The event engine schedules millions of tiny lambdas per run (a captured
// `this`, a coroutine handle, a couple of ints).  std::function heap-allocates
// most of them and always pays for copyability; InlineFunction stores any
// callable up to kInlineCallableSize bytes directly in the object — no heap
// in the scheduling hot path — and falls back to the heap only for oversized
// captures.  Move-only callables are accepted (std::function rejects them).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace pcd::sim {

/// Inline capacity of InlineFunction.  Sized so that every callback the
/// simulator schedules today (≤ 4 pointer-sized captures plus a vtable of
/// one pointer) fits without touching the heap; a std::function<void()>
/// itself (32 bytes on the usual ABIs) also fits, so wrapping legacy
/// callables stays allocation-free.
inline constexpr std::size_t kInlineCallableSize = 48;

template <typename Signature, std::size_t Capacity = kInlineCallableSize>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    construct<D>(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) const {
    return ops_->invoke(const_cast<void*>(static_cast<const void*>(buf_)),
                        std::forward<Args>(args)...);
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    // Move-construct the callable from `src` storage into `dst` storage and
    // destroy the source (for heap-stored callables this just moves the
    // owning pointer).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  struct InlineOps {
    static D* get(void* storage) { return std::launder(reinterpret_cast<D*>(storage)); }
    static R invoke(void* storage, Args&&... args) {
      return (*get(storage))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D(std::move(*get(src)));
      get(src)->~D();
    }
    static void destroy(void* storage) noexcept { get(storage)->~D(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename D>
  struct HeapOps {
    static D*& slot(void* storage) { return *std::launder(reinterpret_cast<D**>(storage)); }
    static R invoke(void* storage, Args&&... args) {
      return (*slot(storage))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D*(slot(src));
    }
    static void destroy(void* storage) noexcept { delete slot(storage); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename D, typename F>
  void construct(F&& f) {
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace pcd::sim
