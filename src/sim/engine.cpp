#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace pcd::sim {

Engine::~Engine() { destroy_suspended_frames(); }

void Engine::destroy_suspended_frames() {
  // Destroy still-suspended coroutine frames in reverse spawn order.  The
  // vector is moved out first: destroying a suspended frame never calls
  // unregister_frame (that only happens at normal completion), but moving
  // keeps the registry consistent if a destructor spawns nothing yet reads
  // engine state.
  std::vector<std::coroutine_handle<>> frames = std::move(live_frames_);
  live_frames_.clear();
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    if (*it) it->destroy();
  }
}

EventId Engine::schedule_at(SimTime t, Callback cb) {
  assert(t >= now_ && "cannot schedule events in the simulated past");
  if (t < now_) t = now_;
  const std::uint64_t seq = next_seq_++;
  pq_.push(QueueEntry{t, seq});
  callbacks_.emplace(seq, std::move(cb));
  return EventId{seq};
}

EventId Engine::schedule_in(SimDuration dt, Callback cb) {
  assert(dt >= 0 && "cannot schedule events in the simulated past");
  if (dt < 0) dt = 0;
  return schedule_at(now_ + dt, std::move(cb));
}

bool Engine::cancel(EventId id) { return callbacks_.erase(id.seq) > 0; }

void Engine::post_orphan_exception(std::exception_ptr ex) {
  orphan_exceptions_.push_back(std::move(ex));
}

void Engine::register_frame(std::coroutine_handle<> h) { live_frames_.push_back(h); }

void Engine::unregister_frame(std::coroutine_handle<> h) {
  auto it = std::find(live_frames_.begin(), live_frames_.end(), h);
  if (it != live_frames_.end()) live_frames_.erase(it);
}

void Engine::throw_pending() {
  if (orphan_exceptions_.empty()) return;
  auto ex = orphan_exceptions_.front();
  orphan_exceptions_.erase(orphan_exceptions_.begin());
  std::rethrow_exception(ex);
}

bool Engine::step() {
  while (!pq_.empty()) {
    const QueueEntry top = pq_.top();
    auto it = callbacks_.find(top.seq);
    if (it == callbacks_.end()) {
      pq_.pop();  // cancelled
      continue;
    }
    assert(top.t >= now_);
    now_ = top.t;
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    pq_.pop();
    ++processed_;
    cb();
    return true;
  }
  return false;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  throw_pending();
  while (n < max_events && step()) {
    ++n;
    throw_pending();
  }
  return n;
}

std::size_t Engine::run_until(SimTime t) {
  if (t < now_) throw std::invalid_argument("run_until: target time is in the past");
  std::size_t n = 0;
  throw_pending();
  while (!pq_.empty() && pq_.top().t <= t) {
    if (!step()) break;
    ++n;
    throw_pending();
  }
  now_ = t;
  return n;
}

}  // namespace pcd::sim
