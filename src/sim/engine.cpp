#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace pcd::sim {

namespace {

// Global dispatch order: (time, seq) lexicographic.
bool precedes(SimTime ta, std::uint64_t sa, SimTime tb, std::uint64_t sb) {
  return ta < tb || (ta == tb && sa < sb);
}

}  // namespace

Engine::~Engine() { destroy_suspended_frames(); }

// ---- slab -----------------------------------------------------------------

std::uint32_t Engine::alloc_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t slot = free_head_;
    free_head_ = node(slot).next;
    return slot;
  }
  if ((slab_size_ >> kChunkBits) == chunks_.size()) {
    chunks_.push_back(std::make_unique<EventNode[]>(kChunkSize));
  }
  const std::uint32_t slot = slab_size_++;
  node(slot).gen = 1;
  return slot;
}

void Engine::release_slot(std::uint32_t slot) {
  EventNode& n = node(slot);
  n.cb.reset();
  n.flags = 0;
  ++n.gen;
  if (n.gen == 0) n.gen = 1;  // gen 0 is reserved for invalid EventIds
  n.next = free_head_;
  free_head_ = slot;
}

// ---- one-shot heap --------------------------------------------------------

void Engine::heap_push(const HeapEntry& e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t p = (i - 1) >> 2;
    const HeapEntry& parent = heap_[p];
    if (!precedes(e.t, e.seq, parent.t, parent.seq)) break;
    heap_[i] = parent;
    i = p;
  }
  heap_[i] = e;
}

void Engine::heap_pop() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t c = (i << 2) + 1;
    if (c >= n) break;
    std::size_t m = c;
    const std::size_t end = c + 4 < n ? c + 4 : n;
    for (std::size_t k = c + 1; k < end; ++k) {
      if (precedes(heap_[k].t, heap_[k].seq, heap_[m].t, heap_[m].seq)) m = k;
    }
    if (!precedes(heap_[m].t, heap_[m].seq, last.t, last.seq)) break;
    heap_[i] = heap_[m];
    i = m;
  }
  heap_[i] = last;
}

void Engine::prune_heap() {
  while (!heap_.empty()) {
    const HeapEntry& e = heap_.front();
    const EventNode& n = node(e.slot);
    if (n.gen == e.gen && (n.flags & kArmed) != 0) return;
    heap_pop();  // cancelled: the slot's generation has moved on
  }
}

void Engine::prune_runs() {
  for (RunLane& lane : runs_) {
    if (lane.head >= 4096 && lane.head * 2 >= lane.entries.size()) {
      // Reclaim the consumed prefix (amortized O(1) per popped entry) so a
      // long monotone phase doesn't hold memory for already-fired events.
      lane.entries.erase(lane.entries.begin(),
                         lane.entries.begin() + static_cast<std::ptrdiff_t>(lane.head));
      lane.head = 0;
    }
    while (lane.head < lane.entries.size()) {
      const HeapEntry& e = lane.entries[lane.head];
      const EventNode& n = node(e.slot);
      if (n.gen == e.gen && (n.flags & kArmed) != 0) break;
      ++lane.head;  // cancelled: skip in place
    }
    if (lane.head == lane.entries.size()) {
      lane.entries.clear();
      lane.head = 0;
    }
  }
}

// ---- scheduling -----------------------------------------------------------

EventId Engine::schedule_at(SimTime t, Callback cb, const char* site) {
  assert(t >= now_ && "cannot schedule events in the simulated past");
  if (t < now_) t = now_;
  const std::uint64_t seq = next_seq();
  const std::uint32_t slot = alloc_slot();
  EventNode& n = node(slot);
  n.t = t;
  n.seq = seq;
  n.period = 0;
  n.parent = dispatch_parent_;
  n.site = site;
  n.flags = kArmed;
  n.cb = std::move(cb);
  // A fresh event's seq is the global maximum, so comparing times alone
  // decides lane membership: the event appends to the fitting lane whose
  // tail it extends the least (best fit, so lanes specialize into horizon
  // bands instead of all drifting to the longest stream), an empty lane
  // restarts at any time, and strays that fit nowhere go to the heap.
  const HeapEntry entry{t, seq, slot, n.gen};
  RunLane* best_lane = nullptr;
  RunLane* empty_lane = nullptr;
  SimTime best_back = 0;
  for (RunLane& lane : runs_) {
    if (lane.head == lane.entries.size()) {
      if (empty_lane == nullptr) empty_lane = &lane;
      continue;
    }
    const SimTime back = lane.entries.back().t;
    if (t >= back && (best_lane == nullptr || back > best_back)) {
      best_lane = &lane;
      best_back = back;
    }
  }
  if (best_lane != nullptr) {
    best_lane->entries.push_back(entry);
  } else if (empty_lane != nullptr) {
    empty_lane->entries.clear();
    empty_lane->head = 0;
    empty_lane->entries.push_back(entry);
  } else {
    heap_push(entry);
  }
  ++live_events_;
  return EventId{slot, n.gen};
}

EventId Engine::schedule_in(SimDuration dt, Callback cb, const char* site) {
  assert(dt >= 0 && "cannot schedule events in the simulated past");
  if (dt < 0) dt = 0;
  return schedule_at(now_ + dt, std::move(cb), site);
}

EventId Engine::schedule_every(SimDuration first_delay, SimDuration period, Callback cb,
                               const char* site) {
  assert(first_delay >= 0 && "cannot schedule events in the simulated past");
  if (first_delay < 0) first_delay = 0;
  if (period <= 0) throw std::invalid_argument("schedule_every: period must be positive");
  const std::uint64_t seq = next_seq();
  const std::uint32_t slot = alloc_slot();
  EventNode& n = node(slot);
  n.t = now_ + first_delay;
  n.seq = seq;
  n.period = period;
  n.parent = dispatch_parent_;
  n.site = site;
  n.flags = kArmed;
  n.cb = std::move(cb);
  bucket_insert(slot);
  ++live_events_;
  return EventId{slot, n.gen};
}

bool Engine::cancel(EventId id) {
  if (!id.valid()) return false;  // default-constructed id: never a live event
  if (id.slot >= slab_size_) return false;
  EventNode& n = node(id.slot);
  if (n.gen != id.gen || (n.flags & kArmed) == 0) return false;
  n.flags = static_cast<std::uint8_t>(n.flags & ~kArmed);
  --live_events_;
  if ((n.flags & kFiring) != 0) {
    // Periodic event cancelled from inside its own callback: the dispatcher
    // still owns the slot and will release it when the callback returns.
    return true;
  }
  if (n.period > 0) bucket_unlink(id.slot);
  release_slot(id.slot);
  // One-shot heap entries are not searched for here: the stale HeapEntry is
  // skipped at pop because its generation no longer matches.
  return true;
}

// ---- timer wheel ----------------------------------------------------------

void Engine::bucket_insert(std::uint32_t slot) {
  EventNode& n = node(slot);
  std::uint16_t bucket = kOverflowBucket;
  for (int level = 0; level < kWheelLevels; ++level) {
    const int shift = kWheelShift + level * kWheelSlotBits;
    // Slot-unit distance from now.  < kWheelSlots means (t >> shift) mod 64
    // is unambiguous at this level: the cyclic first-occupied-slot scan in
    // wheel_min() then visits buckets in increasing time order.
    if (((n.t >> shift) - (now_ >> shift)) < kWheelSlots) {
      bucket = static_cast<std::uint16_t>(level * kWheelSlots +
                                          static_cast<int>((n.t >> shift) & (kWheelSlots - 1)));
      break;
    }
  }
  n.bucket = bucket;
  std::uint32_t* head = nullptr;
  if (bucket == kOverflowBucket) {
    head = &overflow_head_;
  } else {
    WheelLevel& lvl = wheel_[bucket >> kWheelSlotBits];
    lvl.occupied |= std::uint64_t{1} << (bucket & (kWheelSlots - 1));
    head = &lvl.head[bucket & (kWheelSlots - 1)];
  }
  // Wheel buckets stay sorted by (t, seq): wheel_min() then reads only each
  // level's first bucket head instead of scanning a whole bucket list.  The
  // overflow list is left unsorted — it is scanned in full, and parking
  // there (> ~4.9 h out) is rare.
  if (bucket == kOverflowBucket) {
    n.prev = kNil;
    n.next = *head;
    if (*head != kNil) node(*head).prev = slot;
    *head = slot;
  } else {
    std::uint32_t prev = kNil;
    std::uint32_t cur = *head;
    while (cur != kNil && precedes(node(cur).t, node(cur).seq, n.t, n.seq)) {
      prev = cur;
      cur = node(cur).next;
    }
    n.prev = prev;
    n.next = cur;
    if (prev != kNil) {
      node(prev).next = slot;
    } else {
      *head = slot;
    }
    if (cur != kNil) node(cur).prev = slot;
  }
  ++wheel_count_;
  if (wheel_min_ != kNil) {
    const EventNode& m = node(wheel_min_);
    if (precedes(n.t, n.seq, m.t, m.seq)) wheel_min_ = slot;
  } else if (wheel_count_ == 1) {
    wheel_min_ = slot;
  }
}

void Engine::bucket_unlink(std::uint32_t slot) {
  EventNode& n = node(slot);
  std::uint32_t* head = nullptr;
  WheelLevel* lvl = nullptr;
  if (n.bucket == kOverflowBucket) {
    head = &overflow_head_;
  } else {
    lvl = &wheel_[n.bucket >> kWheelSlotBits];
    head = &lvl->head[n.bucket & (kWheelSlots - 1)];
  }
  if (n.prev != kNil) {
    node(n.prev).next = n.next;
  } else {
    *head = n.next;
  }
  if (n.next != kNil) node(n.next).prev = n.prev;
  if (lvl != nullptr && *head == kNil) {
    lvl->occupied &= ~(std::uint64_t{1} << (n.bucket & (kWheelSlots - 1)));
  }
  n.next = kNil;
  n.prev = kNil;
  --wheel_count_;
  if (wheel_min_ == slot) wheel_min_ = kNil;  // cache dirty; recompute lazily
}

std::uint32_t Engine::wheel_min() {
  if (wheel_count_ == 0) return kNil;
  if (wheel_min_ != kNil) return wheel_min_;
  std::uint32_t best = kNil;
  const auto consider = [&](std::uint32_t s) {
    if (best == kNil ||
        precedes(node(s).t, node(s).seq, node(best).t, node(best).seq)) {
      best = s;
    }
  };
  for (int level = 0; level < kWheelLevels; ++level) {
    const WheelLevel& lvl = wheel_[level];
    if (lvl.occupied == 0) continue;
    const int shift = kWheelShift + level * kWheelSlotBits;
    const int cur = static_cast<int>((now_ >> shift) & (kWheelSlots - 1));
    // Every parked timer lies 0..63 slot-units ahead of now at its level, so
    // the first occupied bucket cyclically at/after `cur` holds this level's
    // minimum — and buckets are kept sorted, so its head is that minimum.
    const std::uint64_t rotated = std::rotr(lvl.occupied, cur);
    const int s = (cur + std::countr_zero(rotated)) & (kWheelSlots - 1);
    consider(lvl.head[s]);
  }
  for (std::uint32_t it = overflow_head_; it != kNil; it = node(it).next) consider(it);
  wheel_min_ = best;
  return best;
}

// ---- dispatch -------------------------------------------------------------

void Engine::dispatch_oneshot(HeapEntry e) {
  EventNode& n = node(e.slot);
  assert(n.t >= now_);
  now_ = n.t;
  // The id is retired before the callback runs, so cancelling the event's
  // own id from inside the callback reports false (already fired).  The
  // callback itself is invoked in place — node addresses are stable even if
  // it schedules more events — and the slot joins the free list after.
  n.flags = 0;
  ++n.gen;
  if (n.gen == 0) n.gen = 1;
  --live_events_;
  ++processed_;
  const std::uint64_t parent_before = dispatch_parent_;
  dispatch_parent_ = n.seq;
  std::uint64_t draws_before = 0;
  if (det_.per_event) draws_before = RngTelemetry::draws;
  try {
    n.cb();
  } catch (...) {
    dispatch_parent_ = parent_before;
    n.cb.reset();
    n.next = free_head_;
    free_head_ = e.slot;
    throw;
  }
  dispatch_parent_ = parent_before;
  if (det_.event_digest != nullptr) note_dispatch(n, draws_before);
  n.cb.reset();
  n.next = free_head_;
  free_head_ = e.slot;
}

void Engine::dispatch_wheel(std::uint32_t slot) {
  EventNode& n = node(slot);
  assert(n.t >= now_);
  now_ = n.t;
  bucket_unlink(slot);
  n.flags = static_cast<std::uint8_t>(n.flags | kFiring);
  ++processed_;
  const std::uint64_t parent_before = dispatch_parent_;
  dispatch_parent_ = n.seq;
  std::uint64_t draws_before = 0;
  if (det_.per_event) draws_before = RngTelemetry::draws;
  // In-place invoke: the chunked slab never relocates the node, even if the
  // callback schedules events, so the callable is never moved between fires.
  try {
    n.cb();
  } catch (...) {
    dispatch_parent_ = parent_before;
    if ((n.flags & kArmed) != 0) --live_events_;  // not cancelled from inside
    release_slot(slot);
    throw;  // the recurrence stops, as if the reschedule never ran
  }
  dispatch_parent_ = parent_before;
  // Digest/provenance note *before* the re-arm overwrites seq: the record
  // must describe the occurrence that just fired.
  if (det_.event_digest != nullptr) note_dispatch(n, draws_before);
  if ((n.flags & kArmed) == 0) {
    release_slot(slot);  // cancelled from inside the callback
    return;
  }
  // Re-arm in place.  The next occurrence draws its sequence number *after*
  // the callback returned — exactly when a self-rescheduling callback's
  // trailing schedule_in() would have drawn it, so the global (time, seq)
  // order is bit-identical to the legacy pattern.
  n.flags = static_cast<std::uint8_t>(n.flags & ~kFiring);
  n.seq = next_seq();
  n.t += n.period;
  bucket_insert(slot);
}

// The cold half of note_dispatch (see engine.hpp for the inlined digest
// fold): per-event provenance records for the observer tier, plus the
// periodic checkpoint callback.  Also reached on checkpoint boundaries of
// digest-only runs with no observer, where both branches fall through.
void Engine::note_dispatch_slow(const EventNode& n, std::uint64_t draws_before) {
  if (det_.per_event) {
    EventProvenance p;
    p.index = det_.event_digest->count;
    p.seq = n.seq;
    p.parent = n.parent;
    p.site = n.site;
    p.t = n.t;
    p.rng_draws = RngTelemetry::draws - draws_before;
    det_.observer->on_event(p);
  }
  if ((det_.event_digest->count & det_.checkpoint_mask) == 0 &&
      det_.observer != nullptr) {
    det_.observer->on_checkpoint(det_.event_digest->count);
  }
}

bool Engine::step() {
  prune_runs();
  prune_heap();
  // Pick the global (t, seq) minimum across all containers.
  const HeapEntry* best = heap_.empty() ? nullptr : &heap_.front();
  RunLane* from_lane = nullptr;
  for (RunLane& lane : runs_) {
    if (lane.head < lane.entries.size()) {
      const HeapEntry& r = lane.entries[lane.head];
      if (best == nullptr || precedes(r.t, r.seq, best->t, best->seq)) {
        best = &r;
        from_lane = &lane;
      }
    }
  }
  const std::uint32_t w = wheel_min();
  if (w != kNil) {
    const EventNode& wn = node(w);
    if (best == nullptr || precedes(wn.t, wn.seq, best->t, best->seq)) {
      dispatch_wheel(w);
      return true;
    }
  }
  if (best == nullptr) return false;
  const HeapEntry e = *best;  // copy before the pop invalidates the pointer
  if (from_lane != nullptr) {
    ++from_lane->head;
  } else {
    heap_pop();
  }
  dispatch_oneshot(e);
  return true;
}

bool Engine::next_event_time(SimTime* out) {
  prune_runs();
  prune_heap();
  bool found = false;
  SimTime t = 0;
  if (!heap_.empty()) {
    t = heap_.front().t;
    found = true;
  }
  for (const RunLane& lane : runs_) {
    if (lane.head < lane.entries.size() &&
        (!found || lane.entries[lane.head].t < t)) {
      t = lane.entries[lane.head].t;
      found = true;
    }
  }
  const std::uint32_t w = wheel_min();
  if (w != kNil && (!found || node(w).t < t)) {
    t = node(w).t;
    found = true;
  }
  if (found) *out = t;
  return found;
}

// ---- run loops ------------------------------------------------------------

void Engine::throw_pending() {
  if (orphan_exceptions_.empty()) return;
  auto ex = orphan_exceptions_.front();
  orphan_exceptions_.erase(orphan_exceptions_.begin());
  std::rethrow_exception(ex);
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  throw_pending();
  while (n < max_events && step()) {
    ++n;
    throw_pending();
  }
  return n;
}

std::size_t Engine::run_until(SimTime t) {
  if (t < now_) throw std::invalid_argument("run_until: target time is in the past");
  std::size_t n = 0;
  throw_pending();
  SimTime next = 0;
  while (next_event_time(&next) && next <= t) {
    if (!step()) break;
    ++n;
    // Exceptions (from the callback or a rethrown orphan) propagate before
    // the final clock advance below: now_ stays at the last dispatched
    // event's time rather than jumping ahead to t.
    throw_pending();
  }
  now_ = t;
  return n;
}

void Engine::post_orphan_exception(std::exception_ptr ex) {
  orphan_exceptions_.push_back(std::move(ex));
}

// ---- coroutine frame registry ---------------------------------------------

std::uint32_t Engine::register_frame(std::coroutine_handle<> h, FrameDetachFn detach) {
  std::uint32_t slot;
  if (frame_free_head_ != kNil) {
    slot = frame_free_head_;
    frame_free_head_ = frames_[slot].next_free;
  } else {
    frames_.emplace_back();
    slot = static_cast<std::uint32_t>(frames_.size() - 1);
  }
  FrameSlot& f = frames_[slot];
  f.h = h;
  f.detach = detach;
  f.ticket = next_frame_ticket_++;
  f.next_free = kNil;
  return slot;
}

void Engine::unregister_frame(std::uint32_t frame_slot) {
  FrameSlot& f = frames_[frame_slot];
  f.h = nullptr;
  f.detach = nullptr;
  f.next_free = frame_free_head_;
  frame_free_head_ = frame_slot;
}

void Engine::destroy_suspended_frames() {
  struct Live {
    std::uint64_t ticket;
    std::coroutine_handle<> h;
    FrameDetachFn detach;
  };
  std::vector<Live> live;
  live.reserve(frames_.size());
  for (const FrameSlot& f : frames_) {
    if (f.h) live.push_back(Live{f.ticket, f.h, f.detach});
  }
  frames_.clear();
  frame_free_head_ = kNil;
  // Two passes: first detach every external owner (a Process handle may live
  // in another suspended frame's locals, and must stop referring to its
  // coroutine's promise before any frame dies), then destroy in reverse
  // spawn order so dependents unwind before the processes they built on.
  for (const Live& f : live) {
    if (f.detach != nullptr) f.detach(f.h);
  }
  std::sort(live.begin(), live.end(),
            [](const Live& a, const Live& b) { return a.ticket > b.ticket; });
  for (const Live& f : live) f.h.destroy();
}

}  // namespace pcd::sim
