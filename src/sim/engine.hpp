// Deterministic discrete-event engine.
//
// The engine owns a priority queue of (time, sequence) events; sequence
// numbers break ties so that events scheduled for the same instant run in
// FIFO order.  All model code — CPU executors, the network, MPI processes,
// the CPUSPEED daemon — advances exclusively through this queue.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace pcd::sim {

/// Handle to a scheduled event; can be used to cancel it before it fires.
struct EventId {
  std::uint64_t seq = 0;
  friend bool operator==(EventId, EventId) = default;
};

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` at now() + dt (dt must be >= 0).
  EventId schedule_in(SimDuration dt, Callback cb);

  /// Cancels a pending event.  Returns false if it already ran or was
  /// already cancelled.
  bool cancel(EventId id);

  /// Runs until the queue drains (or `max_events` have been processed).
  /// Returns the number of events processed.  Rethrows the first exception
  /// that escaped a top-level coroutine with no joiner.
  std::size_t run(std::size_t max_events = std::numeric_limits<std::size_t>::max());

  /// Runs events with time <= t, then advances now() to t.
  std::size_t run_until(SimTime t);

  SimTime now() const { return now_; }
  bool empty() const { return pq_.empty(); }
  std::size_t pending_events() const { return callbacks_.size(); }
  std::size_t events_processed() const { return processed_; }

  /// Records an exception that escaped a detached coroutine.  The next call
  /// to run()/run_until() rethrows it.
  void post_orphan_exception(std::exception_ptr ex);

  /// Coroutine frame registry: frames register on spawn and unregister on
  /// completion; ~Engine destroys any still-suspended frames (in reverse
  /// spawn order) so blocked processes never leak.
  void register_frame(std::coroutine_handle<> h);
  void unregister_frame(std::coroutine_handle<> h);

  /// Destroys all still-suspended frames now rather than in ~Engine.  Call
  /// this before tearing down model objects the frames' locals reference:
  /// a frame blocked in an MPI wait holds RAII guards over its Cpu, so on a
  /// failed/abandoned run the frames must die while the cluster is alive.
  void destroy_suspended_frames();

 private:
  struct QueueEntry {
    SimTime t;
    std::uint64_t seq;
    friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  void throw_pending();
  bool step();  // runs one event; returns false if queue empty

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::vector<std::coroutine_handle<>> live_frames_;
  std::vector<std::exception_ptr> orphan_exceptions_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t processed_ = 0;
};

}  // namespace pcd::sim
