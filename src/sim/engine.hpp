// Deterministic discrete-event engine.
//
// The engine dispatches events in (time, sequence) order; sequence numbers
// break ties so that events scheduled for the same instant run in FIFO
// order.  All model code — CPU executors, the network, MPI processes, the
// CPUSPEED daemon — advances exclusively through this engine.
//
// Internals (DESIGN.md §3.10): event state lives in a chunked slab of
// pooled nodes addressed by generation-tagged EventIds — schedule and
// cancel never touch a hash map, and the steady state is allocation-free
// (callbacks are stored in an InlineFunction small buffer, cancelled slots
// are recycled through a free list, dead heap entries are lazily skipped
// at pop).  Node addresses are stable for the life of the engine, so a
// callback is invoked in place — it is never moved out of its node.
// One-shot ordering uses four sorted append-only run lanes (best-fit by
// horizon, capturing near-monotone streams) with a 4-ary min-heap of 24-byte
// (time, seq, slot) entries as the stray fallback; strictly periodic
// events (schedule_every) bypass all of that: they park in a hierarchical
// timer wheel and re-arm in place after every fire.
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "sim/callback.hpp"
#include "sim/provenance.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace pcd::sim {

class Engine final : public Scheduler {
 public:
  using Callback = InlineFunction<void()>;

  Engine() { now_src_ = &now_; }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine() override;

  /// Schedules `cb` at absolute time `t` (must be >= now()).  `site` is a
  /// scheduling-site label for determinism provenance; it must point at a
  /// string with static storage duration (the engine stores the pointer).
  EventId schedule_at(SimTime t, Callback cb, const char* site = "") override;

  /// Schedules `cb` at now() + dt (dt must be >= 0).
  EventId schedule_in(SimDuration dt, Callback cb, const char* site = "") override;

  /// Schedules `cb` to fire at now() + first_delay and then every `period`
  /// after the previous fire, until cancelled.  Each occurrence draws a
  /// fresh sequence number when the previous one completes, so a periodic
  /// event interleaves with one-shot events exactly as if the callback
  /// rescheduled itself with schedule_in as its last statement — but the
  /// steady state never touches the heap or the binary event heap.
  EventId schedule_every(SimDuration first_delay, SimDuration period, Callback cb,
                         const char* site = "") override;
  EventId schedule_every(SimDuration period, Callback cb, const char* site = "") {
    return schedule_every(period, period, std::move(cb), site);
  }

  /// Cancels a pending event.  Returns false for an invalid id, or if the
  /// event already ran or was already cancelled.  Cancelling a periodic
  /// event — including from inside its own callback — stops the recurrence
  /// and returns true.
  bool cancel(EventId id) override;

  /// Runs until no live events remain (or `max_events` have been
  /// processed).  Returns the number of events processed.  Rethrows the
  /// first exception that escaped a top-level coroutine with no joiner.
  std::size_t run(std::size_t max_events = std::numeric_limits<std::size_t>::max());

  /// Runs events with time <= t, then advances now() to t.  If an event
  /// callback throws (or an orphaned coroutine exception is rethrown), the
  /// clock stays at the last dispatched event's time rather than jumping
  /// to t.
  std::size_t run_until(SimTime t);

  SimTime now() const override { return now_; }
  bool empty() const { return live_events_ == 0; }
  std::size_t pending_events() const { return live_events_; }
  std::size_t events_processed() const { return processed_; }

  /// Time of the earliest live event, or no value when the engine is idle.
  /// Used by ShardedEngine to derive the next conservative window end; also
  /// handy for drivers that interleave engines manually.
  std::optional<SimTime> peek_next_time() {
    SimTime t;
    if (!next_event_time(&t)) return std::nullopt;
    return t;
  }

  /// Records an exception that escaped a detached coroutine.  The next call
  /// to run()/run_until() rethrows it.
  void post_orphan_exception(std::exception_ptr ex) override;

  /// Coroutine frame registry: frames register on spawn and unregister on
  /// completion (O(1) slot free, no scan); ~Engine destroys any
  /// still-suspended frames in reverse spawn order so blocked processes
  /// never leak.  `detach` (optional) is invoked on the handle just before
  /// the engine destroys the frame, so external owners can drop their
  /// references first.
  std::uint32_t register_frame(std::coroutine_handle<> h,
                               FrameDetachFn detach = nullptr) override;
  void unregister_frame(std::uint32_t frame_slot) override;

  /// Destroys all still-suspended frames now rather than in ~Engine.  Call
  /// this before tearing down model objects the frames' locals reference:
  /// a frame blocked in an MPI wait holds RAII guards over its Cpu, so on a
  /// failed/abandoned run the frames must die while the cluster is alive.
  void destroy_suspended_frames();

  // ---- determinism observability ----

  /// Hooks installed by a telemetry::DeterminismCollector.  Two cost tiers:
  /// with only `event_digest` set, dispatch folds one provenance word per
  /// event into the stream (the "always on in CI" tier the ≤3% overhead
  /// gate covers); with `per_event` also set, the observer additionally
  /// receives the full EventProvenance record after every callback (flight
  /// recorder / focused capture — a virtual call per event, debug tier).
  /// `observer->on_checkpoint` fires whenever the event digest's count
  /// crosses a multiple of (checkpoint_mask + 1), which must be a power of
  /// two.
  struct DeterminismHooks {
    DigestStream* event_digest = nullptr;
    std::uint64_t checkpoint_mask = 4095;  // checkpoint every 4096 events
    EventObserver* observer = nullptr;
    bool per_event = false;
  };
  void set_determinism(const DeterminismHooks& hooks) { det_ = hooks; }
  void clear_determinism() { det_ = DeterminismHooks{}; }

  /// Seq of the event whose callback is currently executing (0 outside any
  /// dispatch).  New events record this as their causal parent.
  std::uint64_t dispatching_seq() const { return dispatch_parent_; }

  /// Debug hook: swaps the allocation order of sequence numbers `seq` and
  /// `seq + 1` — the minimal scheduling-order perturbation, used to
  /// exercise divergence localization.  Pass 0 to disable.
  void set_seq_perturbation(std::uint64_t seq) { perturb_seq_ = seq; }

 private:
  friend struct EngineTestAccess;  // white-box tests (generation wrap)

  // ---- pooled event nodes ----

  static constexpr std::uint32_t kNil = 0xffffffffu;

  enum NodeFlags : std::uint8_t {
    kArmed = 1,   // the EventId is live (cancellable)
    kFiring = 2,  // periodic event currently running its callback
  };

  struct EventNode {
    SimTime t = 0;
    std::uint64_t seq = 0;
    SimDuration period = 0;       // > 0: periodic, parked in the wheel
    std::uint64_t parent = 0;     // seq of the scheduling event (provenance)
    const char* site = "";        // scheduling-site label (static storage)
    std::uint32_t gen = 0;        // matches EventId.gen while armed
    std::uint32_t next = kNil;    // free list / wheel bucket chain
    std::uint32_t prev = kNil;    // wheel bucket back link (O(1) unlink)
    std::uint16_t bucket = 0;     // wheel bucket index (level*kWheelSlots+slot)
    std::uint8_t flags = 0;
    Callback cb;
  };

  // Heap entry for one-shot events.  Dead entries (generation mismatch
  // after a cancel) are skipped lazily at pop.  The heap is 4-ary: half the
  // depth of a binary heap, and all four children of a node share one or
  // two cache lines, which roughly halves the sift-down cost that dominates
  // event dispatch.
  struct HeapEntry {
    SimTime t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  // ---- hierarchical timer wheel (periodic events) ----
  //
  // kWheelLevels levels of kWheelSlots slots; level l buckets time by
  // 2^(kWheelShift + l*kWheelSlotBits) ns (level 0 ≈ 1 ms).  A timer is
  // parked in the lowest level whose slot distance from now fits, so its
  // bucket index never wraps ambiguously; timers beyond the top horizon
  // (~4.9 h) go to an overflow bucket.  There is no cascading: dispatch
  // needs only the wheel *minimum*, which is recomputed lazily from the
  // per-level occupancy bitmaps plus a scan of one short bucket per level
  // (exact, because bucket lists store full (t, seq) keys).
  static constexpr int kWheelLevels = 4;
  static constexpr int kWheelSlotBits = 6;
  static constexpr int kWheelSlots = 1 << kWheelSlotBits;  // 64
  static constexpr int kWheelShift = 20;                   // level-0 slot ≈ 1.05 ms
  static constexpr std::uint16_t kOverflowBucket =
      static_cast<std::uint16_t>(kWheelLevels * kWheelSlots);

  struct WheelLevel {
    std::uint64_t occupied = 0;  // bit per slot with a non-empty bucket
    std::array<std::uint32_t, kWheelSlots> head;
    WheelLevel() { head.fill(kNil); }
  };

  // Nodes live in fixed-size chunks: addresses never move (so callbacks run
  // in place even if the callback allocates more events), and growing the
  // pool never relocates existing nodes.
  static constexpr std::uint32_t kChunkBits = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;  // 256 nodes

  EventNode& node(std::uint32_t slot) {
    return chunks_[slot >> kChunkBits][slot & (kChunkSize - 1)];
  }

  std::uint32_t alloc_slot();
  void release_slot(std::uint32_t slot);
  void bucket_insert(std::uint32_t slot);
  void bucket_unlink(std::uint32_t slot);
  std::uint32_t wheel_min();  // kNil if no periodic events are parked
  void prune_heap();          // pops cancelled entries off the heap top
  void prune_runs();          // skips cancelled entries at the lane fronts
  void heap_push(const HeapEntry& e);
  void heap_pop();

  void throw_pending();
  bool step();  // runs one event; returns false if no live events remain
  void dispatch_oneshot(HeapEntry e);
  void dispatch_wheel(std::uint32_t slot);
  bool next_event_time(SimTime* out);
  void note_dispatch(const EventNode& n, std::uint64_t draws_before);
  void note_dispatch_slow(const EventNode& n, std::uint64_t draws_before);

  // Allocates the next sequence number, honoring the perturbation hook:
  // when next_seq_ hits perturb_seq_, seq N+1 is handed out before seq N.
  // perturb_seq_ == 0 never matches (seq allocation starts at 1).
  std::uint64_t next_seq() {
    if (pending_seq_ != 0) [[unlikely]] {
      const std::uint64_t s = pending_seq_;
      pending_seq_ = 0;
      return s;
    }
    if (next_seq_ == perturb_seq_) [[unlikely]] {
      pending_seq_ = next_seq_++;
      return next_seq_++;
    }
    return next_seq_++;
  }

  // One-shot events split between three containers (ladder-queue style).
  // Simulations overwhelmingly schedule in near-monotone time order, so an
  // event no earlier than a lane's newest entry appends to that lane — a
  // sorted FIFO popped from the front in O(1) with perfectly sequential
  // memory traffic.  Four lanes with best-fit placement: a new event goes
  // to the fitting lane whose back is *latest* (tightest horizon band), so
  // the lanes self-organize into bands — compute-segment ends, network
  // hops, MPI protocol steps, daemon ticks — and keep absorbing appends
  // even late in a run when per-node DVS divergence turns the delay
  // distribution into a continuum.  An empty lane is seeded only when no
  // lane fits; each lane stays sorted because an appended event's seq is
  // the global maximum at insert time.  Strays that fit no lane fall back
  // to the 4-ary min-heap.  Dispatch always takes the global (t, seq)
  // minimum of the lane fronts, heap top, and wheel min, so lane placement
  // never affects event order.
  struct RunLane {
    std::vector<HeapEntry> entries;  // monotone (t, seq)-ascending
    std::size_t head = 0;            // first unconsumed entry
  };
  std::array<RunLane, 4> runs_;
  std::vector<HeapEntry> heap_;  // 4-ary min-heap ordered by (t, seq)
  std::vector<std::unique_ptr<EventNode[]>> chunks_;
  std::uint32_t slab_size_ = 0;  // slots handed out so far (free or armed)
  std::uint32_t free_head_ = kNil;
  std::size_t live_events_ = 0;

  std::array<WheelLevel, kWheelLevels> wheel_;
  std::uint32_t overflow_head_ = kNil;
  std::size_t wheel_count_ = 0;
  std::uint32_t wheel_min_ = kNil;  // cached; kNil + wheel_count_>0 = dirty

  struct FrameSlot {
    std::coroutine_handle<> h;
    FrameDetachFn detach = nullptr;
    std::uint64_t ticket = 0;   // spawn order, for deterministic teardown
    std::uint32_t next_free = kNil;
  };
  std::vector<FrameSlot> frames_;
  std::uint32_t frame_free_head_ = kNil;
  std::uint64_t next_frame_ticket_ = 0;

  std::vector<std::exception_ptr> orphan_exceptions_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t processed_ = 0;

  // Determinism observability state.  dispatch_parent_ is maintained
  // unconditionally (two plain stores per dispatch); everything else hides
  // behind the det_.event_digest null check.
  DeterminismHooks det_;
  std::uint64_t dispatch_parent_ = 0;
  std::uint64_t perturb_seq_ = 0;
  std::uint64_t pending_seq_ = 0;
  const char* last_site_ = nullptr;   // single-entry site-hash cache:
  std::uint64_t last_site_hash_ = 0;  // labels are static literals, so
                                      // pointer identity ≈ value identity
};

// Folds one dispatched event into the event-order digest.  The folded word
// mixes time, sequence, parent, and site: two runs that dispatch the same
// (t, seq) pairs but hand them to different callbacks — e.g. after a
// seq-allocation swap between two same-time events — still produce
// different streams, because site and parent differ.  Inlined into the
// dispatch paths: the three multiplies are independent (ILP-friendly) and
// only the running-hash chain is serial across events, which keeps the
// digest-only tier inside the ≤3% overhead gate.  Observer work (per-event
// records, checkpoints) is the out-of-line slow path.
inline void Engine::note_dispatch(const EventNode& n, std::uint64_t draws_before) {
  std::uint64_t site_h = last_site_hash_;
  if (n.site != last_site_) {
    last_site_ = n.site;
    last_site_hash_ = site_h = digest_cstr(n.site);
  }
  const std::uint64_t w =
      (static_cast<std::uint64_t>(n.t) * 0x9e3779b97f4a7c15ULL) ^
      (n.seq * 0xff51afd7ed558ccdULL) ^ (n.parent * 0xc4ceb9fe1a85ec53ULL) ^
      site_h;
  det_.event_digest->fold(w);
  if (det_.per_event ||
      (det_.event_digest->count & det_.checkpoint_mask) == 0) [[unlikely]] {
    note_dispatch_slow(n, draws_before);
  }
}

}  // namespace pcd::sim
