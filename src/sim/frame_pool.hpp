// Thread-local free-list pool for the simulator's hottest transient
// allocations: coroutine frames (Process and Op bodies) and the MPI layer's
// per-message shared state.  A CG-shaped 4096-rank run churns through
// millions of such objects, all short-lived and drawn from a handful of size
// classes, so malloc round-trips dominate the profile; recycling them
// through a per-thread LIFO free list removes that cost without changing
// event counts, ordering, or RNG draws (memory addresses never feed the
// digests).
//
// Layout: 32 buckets at 64-byte granularity (up to 2048 bytes).  Larger
// requests fall through to ::operator new/delete.  Each thread owns its
// lists outright — no locks; blocks freed on a different thread than they
// were allocated on simply migrate to the freeing thread's pool.
//
// Teardown: the pool is a function-local thread_local.  A trivially-
// destructible `destroyed` flag (which therefore outlives the pool's
// destructor) lets late frees during thread exit fall back to plain
// ::operator delete instead of touching a dead free list.
//
// Under AddressSanitizer the pool is compiled out entirely so poisoning,
// use-after-free detection, and leak accounting keep full precision.
#pragma once

#include <cstddef>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define PCD_FRAME_POOL_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PCD_FRAME_POOL_DISABLED 1
#endif
#endif

namespace pcd::sim {

namespace framepool_detail {

inline constexpr std::size_t kGranule = 64;
inline constexpr std::size_t kBuckets = 32;
inline constexpr std::size_t kMaxPooled = kGranule * kBuckets;  // 2048 bytes

#ifndef PCD_FRAME_POOL_DISABLED

struct Pool {
  void* heads[kBuckets] = {};
  bool* destroyed = nullptr;

  ~Pool() {
    for (void*& h : heads) {
      while (h != nullptr) {
        void* next = *static_cast<void**>(h);
        ::operator delete(h);
        h = next;
      }
    }
    if (destroyed != nullptr) *destroyed = true;
  }
};

inline Pool* tls_pool() noexcept {
  // `gone` is trivially destructible, so it stays readable through the whole
  // thread-exit sequence; the pool's destructor flips it when the lists die.
  static thread_local bool gone = false;
  static thread_local Pool pool;
  if (gone) return nullptr;
  pool.destroyed = &gone;
  return &pool;
}

#endif  // !PCD_FRAME_POOL_DISABLED

}  // namespace framepool_detail

inline void* pool_alloc(std::size_t bytes) {
#ifdef PCD_FRAME_POOL_DISABLED
  return ::operator new(bytes);
#else
  using namespace framepool_detail;
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxPooled) return ::operator new(bytes);
  const std::size_t b = (bytes + kGranule - 1) / kGranule - 1;
  Pool* p = tls_pool();
  if (p != nullptr && p->heads[b] != nullptr) {
    void* r = p->heads[b];
    p->heads[b] = *static_cast<void**>(r);
    return r;
  }
  return ::operator new((b + 1) * kGranule);
#endif
}

inline void pool_free(void* ptr, std::size_t bytes) noexcept {
  if (ptr == nullptr) return;
#ifdef PCD_FRAME_POOL_DISABLED
  ::operator delete(ptr);
#else
  using namespace framepool_detail;
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxPooled) {
    ::operator delete(ptr);
    return;
  }
  Pool* p = tls_pool();
  if (p == nullptr) {  // thread is tearing down; its lists are gone
    ::operator delete(ptr);
    return;
  }
  const std::size_t b = (bytes + kGranule - 1) / kGranule - 1;
  *static_cast<void**>(ptr) = p->heads[b];
  p->heads[b] = ptr;
#endif
}

/// Minimal allocator over the pool, for allocate_shared of the MPI layer's
/// per-message objects (control block + payload become one pooled block).
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool_alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    pool_free(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace pcd::sim
