// Op<T>: a lazy, awaitable coroutine for composable simulation operations.
//
// Unlike Process (eagerly spawned, detachable, joined through shared state),
// an Op starts only when awaited and resumes its awaiter on completion via
// symmetric transfer.  The simulated MPI layer returns Ops so that
//
//   co_await comm.alltoall(rank, bytes);
//
// composes naturally inside rank processes with no heap-allocated join
// state per call.  The awaiting coroutine owns the Op frame (RAII).
//
// Scheduler propagation: the child's promise learns the scheduler from its parent
// at await time, so sim::delay() and friends work at any nesting depth.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/frame_pool.hpp"
#include "sim/scheduler.hpp"

namespace pcd::sim {

template <typename T>
class [[nodiscard]] Op;

namespace detail {

struct OpPromiseBase {
  Scheduler* engine_ptr = nullptr;
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  // Op frames are the single hottest allocation in an MPI-heavy run (every
  // point-to-point call and every collective stage is one); recycle them
  // through the thread-local pool.  Inherited by both Op<T> promise types.
  static void* operator new(std::size_t bytes) { return pool_alloc(bytes); }
  static void operator delete(void* p, std::size_t bytes) noexcept {
    pool_free(p, bytes);
  }

  Scheduler* engine() const { return engine_ptr; }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Op {
 public:
  struct promise_type : detail::OpPromiseBase {
    std::optional<T> value;
    Op get_return_object() {
      return Op(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  Op(Op&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Op(const Op&) = delete;
  Op& operator=(const Op&) = delete;
  Op& operator=(Op&&) = delete;
  ~Op() {
    if (h_) h_.destroy();
  }

  bool done() const noexcept { return h_ && h_.done(); }

  struct Awaiter {
    std::coroutine_handle<promise_type> h;
    bool await_ready() const noexcept { return false; }
    template <typename ParentPromise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<ParentPromise> parent) noexcept {
      h.promise().continuation = parent;
      h.promise().engine_ptr = parent.promise().engine();
      assert(h.promise().engine_ptr != nullptr);
      return h;  // symmetric transfer: start the child now
    }
    T await_resume() {
      if (h.promise().exception) std::rethrow_exception(h.promise().exception);
      return std::move(*h.promise().value);
    }
  };

  auto operator co_await() & = delete;  // awaiting must consume the Op
  auto operator co_await() && { return Awaiter{h_}; }

 private:
  explicit Op(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Op<void> {
 public:
  struct promise_type : detail::OpPromiseBase {
    Op get_return_object() {
      return Op(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Op(Op&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Op(const Op&) = delete;
  Op& operator=(const Op&) = delete;
  Op& operator=(Op&&) = delete;
  ~Op() {
    if (h_) h_.destroy();
  }

  bool done() const noexcept { return h_ && h_.done(); }

  struct Awaiter {
    std::coroutine_handle<promise_type> h;
    bool await_ready() const noexcept { return false; }
    template <typename ParentPromise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<ParentPromise> parent) noexcept {
      h.promise().continuation = parent;
      h.promise().engine_ptr = parent.promise().engine();
      assert(h.promise().engine_ptr != nullptr);
      return h;
    }
    void await_resume() {
      if (h.promise().exception) std::rethrow_exception(h.promise().exception);
    }
  };

  auto operator co_await() & = delete;
  auto operator co_await() && { return Awaiter{h_}; }

 private:
  explicit Op(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

}  // namespace pcd::sim
