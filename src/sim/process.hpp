// Process-oriented simulation on top of the event engine, using C++20
// coroutines.  A simulated MPI rank, the CPUSPEED daemon, or a measurement
// loop is written as an ordinary coroutine:
//
//   sim::Process rank_main(NodeHandle node, ...) {
//     co_await sim::delay(sim::kMillisecond);
//     co_await comm.alltoall(rank, bytes);
//   }
//   sim::spawn(engine, rank_main(node, ...));
//
// Lifetime model: the coroutine frame is owned by the scheduler from spawn()
// until completion (it self-destroys at final suspend).  Process is a
// move-only handle linked to the frame by a back-pointer in the promise:
// completion copies the done flag and any exception into the handle, so the
// common fire-and-forget spawn allocates nothing beyond the frame itself —
// the shared_ptr control block of the old design exists only if someone
// calls watch().  Frames still suspended when the engine is destroyed are
// cleaned up by ~Engine (the back-pointer is detached first, so dropped or
// held handles never dangle).
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <exception>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/frame_pool.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace pcd::sim {

class Process {
 public:
  /// Snapshot view handed out by watch(); allocated lazily on first use.
  struct State {
    bool done = false;
    std::exception_ptr exception;
  };

  struct promise_type {
    Scheduler* engine_ptr = nullptr;
    Process* owner = nullptr;  // the live handle, if any (kept current on move)
    std::shared_ptr<State> shared;  // created only by watch()
    std::exception_ptr exception;
    std::vector<std::coroutine_handle<>> waiters;
    std::uint32_t frame_slot = 0;

    // Coroutine frames cycle through the thread-local pool; spawning a rank
    // process costs a freelist pop instead of a malloc on the steady state.
    static void* operator new(std::size_t bytes) { return pool_alloc(bytes); }
    static void operator delete(void* p, std::size_t bytes) noexcept {
      pool_free(p, bytes);
    }

    Scheduler* engine() const { return engine_ptr; }

    Process get_return_object() {
      return Process(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        // Publish completion into the owning handle and any watch() state,
        // wake joiners through the engine queue (preserving FIFO ordering at
        // the current timestamp), then self-destroy.
        promise_type& p = h.promise();
        Scheduler* engine = p.engine_ptr;
        std::exception_ptr ex = p.exception;
        auto waiters = std::move(p.waiters);
        if (p.owner != nullptr) {
          p.owner->done_ = true;
          p.owner->exception_ = ex;
          p.owner->handle_ = nullptr;
        }
        if (p.shared) {
          p.shared->done = true;
          p.shared->exception = ex;
        }
        if (engine != nullptr) engine->unregister_frame(p.frame_slot);
        h.destroy();
        if (engine == nullptr) return;
        if (ex && waiters.empty()) {
          engine->post_orphan_exception(ex);
        }
        for (auto w : waiters) {
          engine->schedule_in(0, [w] { w.resume(); }, "process.join");
        }
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Process(Process&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)),
        started_(other.started_),
        done_(other.done_),
        exception_(std::move(other.exception_)) {
    if (handle_) handle_.promise().owner = this;
  }
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      release();
      handle_ = std::exchange(other.handle_, nullptr);
      started_ = other.started_;
      done_ = other.done_;
      exception_ = std::move(other.exception_);
      if (handle_) handle_.promise().owner = this;
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { release(); }

  bool done() const { return done_; }
  bool started() const { return started_; }
  bool failed() const { return exception_ != nullptr; }

  /// Joins the process: suspends until it completes; rethrows its exception.
  /// The Process handle must outlive the join (it is where completion lands).
  auto operator co_await() const {
    struct Awaiter {
      const Process* p;
      bool await_ready() const { return p->done_; }
      void await_suspend(std::coroutine_handle<> h) {
        p->handle_.promise().waiters.push_back(h);
      }
      void await_resume() const {
        if (p->exception_) std::rethrow_exception(p->exception_);
      }
    };
    return Awaiter{this};
  }

  /// A copyable completion handle (e.g. to hand to several watchers).  This
  /// is the only path that materializes shared state.
  std::shared_ptr<const State> watch() const {
    if (handle_) {
      promise_type& p = handle_.promise();
      if (!p.shared) p.shared = std::make_shared<State>();
      return p.shared;
    }
    auto st = std::make_shared<State>();
    st->done = done_;
    st->exception = exception_;
    return st;
  }

 private:
  friend Process spawn(Scheduler& engine, Process proc);

  explicit Process(std::coroutine_handle<promise_type> h) : handle_(h) {
    handle_.promise().owner = this;
  }

  void release() {
    if (!handle_) return;
    if (!started_) {
      handle_.destroy();  // never spawned: the handle still owns the frame
    } else {
      handle_.promise().owner = nullptr;  // fire-and-forget: frame lives on
    }
    handle_ = nullptr;
  }

  // Engine teardown notifier: the frame is about to be destroyed with its
  // owner handle still live, so the handle must forget it first.
  static void detach_frame(std::coroutine_handle<> raw) {
    auto h = std::coroutine_handle<promise_type>::from_address(raw.address());
    promise_type& p = h.promise();
    if (p.owner != nullptr) {
      p.owner->handle_ = nullptr;
      p.owner = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
  bool started_ = false;
  bool done_ = false;
  std::exception_ptr exception_;
};

/// Launches a process: the coroutine body starts running at the engine's
/// current time (as a queued event, so spawn order = run order).  Returns a
/// handle usable for joining; the handle may be dropped for fire-and-forget.
inline Process spawn(Scheduler& engine, Process proc) {
  assert(proc.handle_ && !proc.started_ && "process already spawned");
  auto h = proc.handle_;
  h.promise().engine_ptr = &engine;
  h.promise().frame_slot = engine.register_frame(h, &Process::detach_frame);
  proc.started_ = true;
  engine.schedule_in(0, [h] { h.resume(); }, "process.spawn");
  return proc;
}

/// Awaitable that suspends the current process for `dt` nanoseconds.
struct DelayAwaiter {
  SimDuration dt;
  bool await_ready() const { return dt <= 0; }
  template <typename Promise>
  void await_suspend(std::coroutine_handle<Promise> h) {
    Scheduler* engine = h.promise().engine();
    engine->schedule_in(dt, [h]() mutable { h.resume(); }, "process.delay");
  }
  void await_resume() const {}
};

inline DelayAwaiter delay(SimDuration dt) { return DelayAwaiter{dt}; }

/// One-shot broadcast event: waiters suspend until set() is called; waiting
/// on an already-set event does not suspend.  reset() re-arms it.
class Event {
 public:
  explicit Event(Scheduler& engine) : engine_(&engine) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  void set() {
    if (signaled_) return;
    signaled_ = true;
    // First waiter wakes first, then the overflow vector in arrival order —
    // the same FIFO schedule the single-vector implementation produced.
    if (w0_) {
      auto w = std::exchange(w0_, nullptr);
      engine_->schedule_in(0, [w] { w.resume(); }, "event.set");
    }
    if (!rest_.empty()) {
      auto waiters = std::move(rest_);
      rest_.clear();
      for (auto w : waiters) {
        engine_->schedule_in(0, [w] { w.resume(); }, "event.set");
      }
    }
  }

  void reset() { signaled_ = false; }
  bool signaled() const { return signaled_; }
  std::size_t waiter_count() const { return (w0_ ? 1 : 0) + rest_.size(); }

  auto wait() {
    struct Awaiter {
      Event* ev;
      bool await_ready() const { return ev->signaled_; }
      void await_suspend(std::coroutine_handle<> h) {
        if (!ev->w0_) {
          ev->w0_ = h;
        } else {
          ev->rest_.push_back(h);
        }
      }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

 private:
  Scheduler* engine_;
  bool signaled_ = false;
  // Nearly every event (message delivered, request done) has exactly one
  // waiter; the inline slot makes that case allocation-free.
  std::coroutine_handle<> w0_ = nullptr;
  std::vector<std::coroutine_handle<>> rest_;
};

/// Unbounded FIFO channel between processes.  pop() suspends while empty.
///
/// Items are handed directly to suspended poppers (never re-queued), so a
/// popper that was woken by a push can never have "its" item stolen by a
/// concurrent non-suspending pop at the same timestamp.
template <typename T>
class Queue {
 public:
  explicit Queue(Scheduler& engine) : engine_(&engine) {}
  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  void push(T value) {
    if (!waiters_.empty()) {
      PopAwaiter* w = waiters_.front();
      waiters_.erase(waiters_.begin());
      w->item = std::move(value);
      auto h = w->handle;
      engine_->schedule_in(0, [h] { h.resume(); }, "queue.push");
      return;
    }
    items_.push_back(std::move(value));
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t waiter_count() const { return waiters_.size(); }

  struct PopAwaiter {
    Queue* q;
    std::optional<T> item;
    std::coroutine_handle<> handle;

    bool await_ready() {
      if (!q->items_.empty()) {
        item = std::move(q->items_.front());
        q->items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      q->waiters_.push_back(this);
    }
    T await_resume() {
      assert(item.has_value());
      return std::move(*item);
    }
  };

  /// Awaitable pop: resumes with the front item once one is available.
  PopAwaiter pop() { return PopAwaiter{this, std::nullopt, nullptr}; }

 private:
  Scheduler* engine_;
  std::deque<T> items_;
  std::vector<PopAwaiter*> waiters_;
};

}  // namespace pcd::sim
