// Process-oriented simulation on top of the event engine, using C++20
// coroutines.  A simulated MPI rank, the CPUSPEED daemon, or a measurement
// loop is written as an ordinary coroutine:
//
//   sim::Process rank_main(NodeHandle node, ...) {
//     co_await sim::delay(sim::kMillisecond);
//     co_await comm.alltoall(rank, bytes);
//   }
//   sim::spawn(engine, rank_main(node, ...));
//
// Lifetime model: the coroutine frame is owned by the engine from spawn()
// until completion (it self-destroys at final suspend).  Process itself is a
// cheap shared handle to the completion state, so it can be copied, joined
// (`co_await proc`), or dropped freely.  Frames still suspended when the
// engine is destroyed are cleaned up by ~Engine.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <exception>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace pcd::sim {

class Process {
 public:
  struct State {
    Engine* engine = nullptr;
    bool started = false;
    bool done = false;
    std::exception_ptr exception;
    std::vector<std::coroutine_handle<>> waiters;
  };

  struct promise_type {
    std::shared_ptr<State> state = std::make_shared<State>();

    Engine* engine() const { return state->engine; }

    Process get_return_object() {
      return Process(std::coroutine_handle<promise_type>::from_promise(*this), state);
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        // Mark completion, wake joiners through the engine queue (preserving
        // FIFO ordering at the current timestamp), then self-destroy.
        auto st = h.promise().state;
        st->done = true;
        Engine* engine = st->engine;
        auto waiters = std::move(st->waiters);
        st->waiters.clear();
        if (engine != nullptr) engine->unregister_frame(h);
        h.destroy();
        if (engine == nullptr) return;
        if (st->exception && waiters.empty()) {
          engine->post_orphan_exception(st->exception);
        }
        for (auto w : waiters) {
          engine->schedule_in(0, [w] { w.resume(); });
        }
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { state->exception = std::current_exception(); }
  };

  Process(Process&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)), state_(std::move(other.state_)) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy_if_unstarted();
      handle_ = std::exchange(other.handle_, nullptr);
      state_ = std::move(other.state_);
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { destroy_if_unstarted(); }

  bool done() const { return state_->done; }
  bool started() const { return state_->started; }
  bool failed() const { return state_->exception != nullptr; }

  /// Joins the process: suspends until it completes; rethrows its exception.
  auto operator co_await() const {
    struct Awaiter {
      std::shared_ptr<State> st;
      bool await_ready() const { return st->done; }
      void await_suspend(std::coroutine_handle<> h) { st->waiters.push_back(h); }
      void await_resume() const {
        if (st->exception) std::rethrow_exception(st->exception);
      }
    };
    return Awaiter{state_};
  }

  /// A copyable join handle (e.g. to hand to several watchers).
  std::shared_ptr<const State> watch() const { return state_; }

 private:
  friend Process spawn(Engine& engine, Process proc);

  Process(std::coroutine_handle<promise_type> h, std::shared_ptr<State> st)
      : handle_(h), state_(std::move(st)) {}

  void destroy_if_unstarted() {
    if (handle_ && !state_->started) handle_.destroy();
    handle_ = nullptr;
  }

  std::coroutine_handle<promise_type> handle_;
  std::shared_ptr<State> state_;
};

/// Launches a process: the coroutine body starts running at the engine's
/// current time (as a queued event, so spawn order = run order).  Returns a
/// handle usable for joining; the handle may be dropped for fire-and-forget.
inline Process spawn(Engine& engine, Process proc) {
  assert(!proc.state_->started && "process already spawned");
  proc.state_->engine = &engine;
  proc.state_->started = true;
  auto h = proc.handle_;
  proc.handle_ = nullptr;  // ownership passes to the engine
  engine.register_frame(h);
  engine.schedule_in(0, [h] { h.resume(); });
  return proc;
}

/// Awaitable that suspends the current process for `dt` nanoseconds.
struct DelayAwaiter {
  SimDuration dt;
  bool await_ready() const { return dt <= 0; }
  template <typename Promise>
  void await_suspend(std::coroutine_handle<Promise> h) {
    Engine* engine = h.promise().engine();
    engine->schedule_in(dt, [h]() mutable { h.resume(); });
  }
  void await_resume() const {}
};

inline DelayAwaiter delay(SimDuration dt) { return DelayAwaiter{dt}; }

/// One-shot broadcast event: waiters suspend until set() is called; waiting
/// on an already-set event does not suspend.  reset() re-arms it.
class Event {
 public:
  explicit Event(Engine& engine) : engine_(&engine) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  void set() {
    if (signaled_) return;
    signaled_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto w : waiters) {
      engine_->schedule_in(0, [w] { w.resume(); });
    }
  }

  void reset() { signaled_ = false; }
  bool signaled() const { return signaled_; }
  std::size_t waiter_count() const { return waiters_.size(); }

  auto wait() {
    struct Awaiter {
      Event* ev;
      bool await_ready() const { return ev->signaled_; }
      void await_suspend(std::coroutine_handle<> h) { ev->waiters_.push_back(h); }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

 private:
  Engine* engine_;
  bool signaled_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO channel between processes.  pop() suspends while empty.
///
/// Items are handed directly to suspended poppers (never re-queued), so a
/// popper that was woken by a push can never have "its" item stolen by a
/// concurrent non-suspending pop at the same timestamp.
template <typename T>
class Queue {
 public:
  explicit Queue(Engine& engine) : engine_(&engine) {}
  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  void push(T value) {
    if (!waiters_.empty()) {
      PopAwaiter* w = waiters_.front();
      waiters_.erase(waiters_.begin());
      w->item = std::move(value);
      auto h = w->handle;
      engine_->schedule_in(0, [h] { h.resume(); });
      return;
    }
    items_.push_back(std::move(value));
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t waiter_count() const { return waiters_.size(); }

  struct PopAwaiter {
    Queue* q;
    std::optional<T> item;
    std::coroutine_handle<> handle;

    bool await_ready() {
      if (!q->items_.empty()) {
        item = std::move(q->items_.front());
        q->items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      q->waiters_.push_back(this);
    }
    T await_resume() {
      assert(item.has_value());
      return std::move(*item);
    }
  };

  /// Awaitable pop: resumes with the front item once one is available.
  PopAwaiter pop() { return PopAwaiter{this, std::nullopt, nullptr}; }

 private:
  Engine* engine_;
  std::deque<T> items_;
  std::vector<PopAwaiter*> waiters_;
};

}  // namespace pcd::sim
