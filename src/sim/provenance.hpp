// Determinism-observability primitives for the event engine.
//
// The simulator's correctness story is bit-identical determinism: a run is
// a pure function of its RunConfig.  When two runs *do* diverge, a mismatch
// in a 64-bit fingerprint says nothing about where.  This header defines the
// low-level pieces the observability layer (telemetry/determinism.hpp) is
// built from:
//
//   - DigestStream: a rolling FNV-1a hash + element count.  Subsystems fold
//     their externally visible decision stream into one (event dispatches,
//     RNG draws, power-integration steps, MPI message matches), so two runs
//     can be compared stream-by-stream without retaining the streams.
//   - EventProvenance: the compact causal record of one dispatched event —
//     who scheduled it (parent event), from where (site label), when, and
//     how many RNG draws its callback made.  Walking parent links
//     reconstructs any event's causal chain back to the run's root.
//   - EventObserver: the engine-side hook that delivers provenance records
//     and digest checkpoints to a collector.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace pcd::sim {

/// Rolling FNV-1a (64-bit) over machine words, plus the number of words
/// folded.  Equal streams have equal (hash, count); the count localizes a
/// divergence even when the hashes collide on length-prefix weirdness.
struct DigestStream {
  static constexpr std::uint64_t kBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  std::uint64_t hash = kBasis;
  std::uint64_t count = 0;

  void fold(std::uint64_t w) {
    hash = (hash ^ w) * kPrime;
    ++count;
  }
  /// Folds several words as one element (count advances by one): used for
  /// composite records like an MPI match (src, dst, tag, bytes, t).
  void fold_record(const std::uint64_t* words, int n) {
    std::uint64_t h = hash;
    for (int i = 0; i < n; ++i) h = (h ^ words[i]) * kPrime;
    hash = h;
    ++count;
  }

  void reset() {
    hash = kBasis;
    count = 0;
  }
};

/// FNV-1a of a C string; used to fold scheduling-site labels into digests.
inline std::uint64_t digest_cstr(const char* s) {
  std::uint64_t h = DigestStream::kBasis;
  if (s != nullptr) {
    for (; *s != '\0'; ++s) {
      h = (h ^ static_cast<unsigned char>(*s)) * DigestStream::kPrime;
    }
  }
  return h;
}

/// Causal record of one dispatched event.  `site` points at the static
/// string literal passed to Engine::schedule_* — the engine never copies or
/// frees it, so labels must have static storage duration.
struct EventProvenance {
  std::uint64_t index = 0;      // dispatch ordinal within the run (1-based)
  std::uint64_t seq = 0;        // the event's global sequence number
  std::uint64_t parent = 0;     // seq of the event whose callback scheduled it
                                // (0 = scheduled outside any event: a root)
  const char* site = "";        // scheduling-site label
  SimTime t = 0;                // dispatch time
  std::uint64_t rng_draws = 0;  // RNG draws made by this event's callback
};

/// Thread-local RNG telemetry shared between Rng (the producer) and the
/// determinism collector (the consumer) without coupling the two headers.
/// While `digest` is set, every Rng::next_u64 on this thread folds its
/// output into the stream and bumps `draws`; the engine differences `draws`
/// around each callback to attribute RNG consumption to events.  Null
/// digest (the default) keeps next_u64 at one predictable branch.
struct RngTelemetry {
  static inline thread_local std::uint64_t draws = 0;
  static inline thread_local DigestStream* digest = nullptr;
};

/// Engine-side observer.  `on_event` fires after each callback returns (so
/// rng_draws is final) — only when Engine::DeterminismHooks::per_event is
/// set, because a virtual call per dispatch is the expensive tier.
/// `on_checkpoint` fires every time the inline event digest crosses a
/// checkpoint boundary (count & checkpoint_mask == 0), cheap and amortized.
class EventObserver {
 public:
  virtual ~EventObserver() = default;
  virtual void on_event(const EventProvenance& p) = 0;
  virtual void on_checkpoint(std::uint64_t events_dispatched) = 0;
};

}  // namespace pcd::sim
