// Deterministic random number generation for the simulator.
//
// Every stochastic element of the model (DVS transition latency draws, ACPI
// polling phase, Ethernet collision draws, workload jitter) pulls from an
// explicitly seeded Rng.  The engine never consults wall-clock time or
// global random state, so a run is a pure function of its configuration.
#pragma once

#include <cstdint>

#include "sim/provenance.hpp"

namespace pcd::sim {

/// xoshiro256** by Blackman & Vigna, seeded through SplitMix64.
///
/// Small, fast, and with well-understood statistical quality; more than
/// adequate for the coarse-grained stochastic elements of this simulator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    // Determinism observability: while a collector is installed, every draw
    // on this thread is folded into the run's RNG digest stream and counted
    // (the engine attributes the count to the dispatching event).  Both
    // effects live under one branch so the uninstrumented path stays a
    // single never-taken compare.
    if (RngTelemetry::digest != nullptr) {
      ++RngTelemetry::draws;
      RngTelemetry::digest->fold(result);
    }
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) { return uniform() < p; }

  /// Derives an independent child stream; used to give each node / subsystem
  /// its own stream so adding draws in one place never perturbs another.
  Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace pcd::sim
