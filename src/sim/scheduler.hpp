// The minimal scheduling surface shared by every event-driven model class.
//
// Model code — CPU executors, power integrators, daemons, the network —
// needs exactly five verbs from the simulation core: read the clock,
// schedule at/after a time, schedule a recurrence, and cancel.  Scheduler
// names that surface as an abstract interface so the same model code runs
// unchanged against a single Engine or against one shard of a
// ShardedEngine (DESIGN.md §3.14).  Driver-side concerns — run loops,
// determinism hooks, the perturbation debug knob — stay on the concrete
// Engine; they are not part of the model-facing contract.
//
// The interface also carries the small coroutine-support surface
// (frame registry + orphan-exception post) that sim::Process, sim::Event,
// and sim::Queue need, so process-oriented model code is equally
// scheduler-agnostic.
//
// Engine is `final`: calls made through a concrete Engine& (the event-core
// hot paths and benches) devirtualize; only calls through Scheduler& pay
// the virtual dispatch, and those sit next to an event-pool allocation
// that dwarfs it.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace pcd::sim {

/// Handle to a scheduled event; can be used to cancel it before it fires.
/// A default-constructed id is never a live event (`valid()` is false and
/// `cancel` rejects it explicitly).  The generation tag makes ids
/// single-use: once the event fires or is cancelled, the slot's generation
/// advances and stale ids can no longer cancel an unrelated newer event.
struct EventId {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;

  bool valid() const { return gen != 0; }
  friend bool operator==(EventId, EventId) = default;
};

class Scheduler {
 public:
  using Callback = InlineFunction<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  virtual ~Scheduler() = default;

  /// Current simulation time.
  virtual SimTime now() const = 0;

  /// Non-virtual fast path for now(): reads the implementation's clock word
  /// directly when the implementation has published it (Engine does), else
  /// falls back to the virtual call.  Hot accounting paths (CPU utilization,
  /// power integration) read the clock tens of millions of times per run;
  /// this turns each of those reads into a plain load.
  SimTime now_cached() const { return now_src_ != nullptr ? *now_src_ : now(); }

  /// Schedules `cb` at absolute time `t` (must be >= now()).  `site` is a
  /// scheduling-site label for determinism provenance; it must point at a
  /// string with static storage duration (the scheduler stores the pointer).
  virtual EventId schedule_at(SimTime t, Callback cb, const char* site = "") = 0;

  /// Schedules `cb` at now() + dt (dt must be >= 0).
  virtual EventId schedule_in(SimDuration dt, Callback cb, const char* site = "") = 0;

  /// Schedules `cb` to fire at now() + first_delay and then every `period`
  /// after the previous fire, until cancelled.
  virtual EventId schedule_every(SimDuration first_delay, SimDuration period,
                                 Callback cb, const char* site = "") = 0;
  EventId schedule_every(SimDuration period, Callback cb, const char* site = "") {
    return schedule_every(period, period, std::move(cb), site);
  }

  /// Cancels a pending event.  Returns false for an invalid id, or if the
  /// event already ran or was already cancelled.
  virtual bool cancel(EventId id) = 0;

  // ---- coroutine support (sim::Process / Event / Queue) ----

  /// Invoked on a registered frame's handle just before the scheduler
  /// destroys it at teardown, so external owners can drop references first.
  using FrameDetachFn = void (*)(std::coroutine_handle<>);

  /// Coroutine frame registry: frames register on spawn and unregister on
  /// completion; teardown destroys any still-suspended frames in reverse
  /// spawn order so blocked processes never leak.
  virtual std::uint32_t register_frame(std::coroutine_handle<> h,
                                       FrameDetachFn detach = nullptr) = 0;
  virtual void unregister_frame(std::uint32_t frame_slot) = 0;

  /// Records an exception that escaped a detached coroutine; the driver's
  /// next run call rethrows it.
  virtual void post_orphan_exception(std::exception_ptr ex) = 0;

 protected:
  /// Implementations publish the address of their clock word here to enable
  /// the now_cached() fast path; it must stay valid for the scheduler's
  /// lifetime and always equal what now() would return.
  const SimTime* now_src_ = nullptr;
};

}  // namespace pcd::sim
