#include "sim/sharded.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/provenance.hpp"

namespace pcd::sim {

namespace {

// Scoped install of a shard's RNG digest sink into the executing thread's
// telemetry slot.  Windows never nest, so plain save/restore is enough.
class RngDigestScope {
 public:
  explicit RngDigestScope(DigestStream* digest)
      : prev_(RngTelemetry::digest) {
    if (digest != nullptr) RngTelemetry::digest = digest;
  }
  ~RngDigestScope() { RngTelemetry::digest = prev_; }
  RngDigestScope(const RngDigestScope&) = delete;
  RngDigestScope& operator=(const RngDigestScope&) = delete;

 private:
  DigestStream* prev_;
};

}  // namespace

ShardedEngine::ShardedEngine(int shards, SimDuration lookahead,
                             ShardedEngineOptions options)
    : lookahead_(lookahead), options_(options) {
  if (shards <= 0) {
    throw std::invalid_argument("ShardedEngine: shard count must be positive, got " +
                                std::to_string(shards));
  }
  if (lookahead <= 0) {
    throw std::invalid_argument(
        "ShardedEngine: lookahead must be >= 1 ns (derive it from "
        "Network::min_latency(), which is validated strictly positive), got " +
        std::to_string(lookahead));
  }
  engines_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) engines_.push_back(std::make_unique<Engine>());
  outboxes_.resize(static_cast<std::size_t>(shards));
  rng_digests_.resize(static_cast<std::size_t>(shards), nullptr);
  worker_errors_.resize(static_cast<std::size_t>(shards));
}

ShardedEngine::~ShardedEngine() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    for (auto& w : workers_) w.join();
  }
}

void ShardedEngine::post(int from, int to, SimTime t, Engine::Callback cb,
                         const char* site) {
  if (from < 0 || from >= shards() || to < 0 || to >= shards()) {
    throw std::out_of_range("ShardedEngine::post: shard index out of range");
  }
  const SimTime sender_now = engines_[static_cast<std::size_t>(from)]->now();
  if (t < sender_now + lookahead_) {
    throw std::logic_error(
        "ShardedEngine::post: conservative lookahead violated at site '" +
        std::string(site) + "': deliver time " + std::to_string(t) +
        " < sender now " + std::to_string(sender_now) + " + lookahead " +
        std::to_string(lookahead_));
  }
  Outbox& box = outboxes_[static_cast<std::size_t>(from)];
  box.msgs.push_back(Pending{t, box.next_order++, to, site, std::move(cb)});
}

void ShardedEngine::inject_outboxes(RunStats& stats) {
  inject_scratch_.clear();
  for (auto& box : outboxes_) {
    for (auto& m : box.msgs) inject_scratch_.push_back(std::move(m));
    box.msgs.clear();
  }
  if (inject_scratch_.empty()) return;
  // Injection order is part of the deterministic contract: destination
  // engines assign sequence numbers in injection order, so two messages
  // landing at the same instant tie-break by (source shard, posting order)
  // — properties of the simulation, not of thread timing.  The source-shard
  // component of the key is recovered from `order`'s owner by sorting the
  // per-source boxes in shard order above and using a stable sort here.
  std::stable_sort(inject_scratch_.begin(), inject_scratch_.end(),
                   [](const Pending& a, const Pending& b) { return a.t < b.t; });
  for (auto& m : inject_scratch_) {
    engines_[static_cast<std::size_t>(m.to)]->schedule_at(m.t, std::move(m.cb),
                                                          m.site);
    ++stats.posts;
  }
  inject_scratch_.clear();
}

void ShardedEngine::set_rng_digest(int s, DigestStream* digest) {
  rng_digests_.at(static_cast<std::size_t>(s)) = digest;
}

void ShardedEngine::start_workers() {
  workers_.reserve(engines_.size());
  for (int s = 0; s < shards(); ++s) {
    workers_.emplace_back([this, s] { worker_main(s); });
  }
}

void ShardedEngine::worker_main(int s) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    SimTime target;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      target = target_;
    }
    try {
      RngDigestScope rng(rng_digests_[static_cast<std::size_t>(s)]);
      engines_[static_cast<std::size_t>(s)]->run_until(target);
    } catch (...) {
      worker_errors_[static_cast<std::size_t>(s)] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_workers_;
    }
    cv_done_.notify_one();
  }
}

void ShardedEngine::advance_all(SimTime target) {
  if (!options_.parallel || shards() == 1) {
    for (int s = 0; s < shards(); ++s) {
      RngDigestScope rng(rng_digests_[static_cast<std::size_t>(s)]);
      engines_[static_cast<std::size_t>(s)]->run_until(target);
    }
    return;
  }
  if (workers_.empty()) start_workers();
  {
    std::lock_guard<std::mutex> lock(mu_);
    target_ = target;
    running_workers_ = shards();
    ++epoch_;
  }
  cv_work_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return running_workers_ == 0; });
  }
  for (auto& err : worker_errors_) {
    if (err) {
      std::exception_ptr ex = err;
      for (auto& e : worker_errors_) e = nullptr;
      std::rethrow_exception(ex);
    }
  }
}

ShardedEngine::RunStats ShardedEngine::run(
    SimTime until, const std::function<bool(SimTime)>& on_barrier) {
  RunStats stats;
  std::uint64_t processed_before = 0;
  for (auto& e : engines_) processed_before += e->events_processed();
  horizon_ = 0;
  for (auto& e : engines_) horizon_ = std::max(horizon_, e->now());

  for (;;) {
    // Barrier: every engine parked, workers idle.  Drain cross-shard
    // messages first so the control callback and the next-window minimum
    // both see them.
    inject_outboxes(stats);
    if (on_barrier && !on_barrier(horizon_)) break;
    // The control callback may have scheduled or cancelled events — and a
    // post() from the driver is legal here — so re-drain before measuring.
    inject_outboxes(stats);

    SimTime next = kNoLimit;
    bool any = false;
    for (auto& e : engines_) {
      if (auto t = e->peek_next_time()) {
        any = true;
        next = std::min(next, *t);
      }
    }
    if (!any) break;            // globally idle and no message in flight
    if (next > until) {         // nothing left inside the bound
      advance_all(until);
      horizon_ = until;
      break;
    }
    // Conservative window: events at t >= next post cross-shard work no
    // earlier than next + lookahead, so everything in [next, E] is safe to
    // run without hearing from other shards.
    SimTime end = (next >= until - lookahead_ + 1) ? until
                                                   : next + lookahead_ - 1;
    advance_all(end);
    horizon_ = end;
    ++stats.windows;
    if (end == until) break;
  }

  std::uint64_t processed_after = 0;
  for (auto& e : engines_) processed_after += e->events_processed();
  stats.events = processed_after - processed_before;
  stats.horizon = horizon_;
  return stats;
}

}  // namespace pcd::sim
