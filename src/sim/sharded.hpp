// Sharded parallel event engine: conservative-lookahead windows over N
// per-shard Engines (DESIGN.md §3.14).
//
// The cluster is partitioned into shards, each owning one single-threaded
// Engine plus every model object (nodes, network, daemons, rank processes)
// that lives on it.  Shards advance in lock-step *windows*: with L the
// lookahead (derived from Network::min_latency() — no cross-shard message
// posted at time t can demand delivery before t + L), the coordinator
// computes
//
//   E = min over shards of next-event-time + L - 1
//
// and every shard runs its own events with t <= E in parallel.  Any event
// executing inside the window sits at t >= min-next, so everything it
// posts across a shard boundary is timestamped >= min-next + L = E + 1 —
// strictly beyond the window.  Cross-shard messages therefore never need
// to interrupt a running window: they accumulate in per-source outboxes
// (each shard appends only to its own — no locks on the hot path) and are
// drained at the barrier, sorted by (time, source shard, posting order),
// and injected into the destination engines before the next window starts.
// This is the classic synchronous/barrier variant of conservative PDES
// (CMB without null messages); the window is adaptive — derived from the
// global minimum next event each round — so idle stretches are crossed in
// one hop instead of L-sized steps.
//
// Determinism: each shard's engine is single-threaded and deterministic;
// the only cross-thread interaction is the barrier injection, whose order
// is fixed by the (time, shard, order) sort.  Hence a sharded run is a
// pure function of (inputs, shard count) — bit-identical across
// repetitions and across worker placement/OS scheduling — while different
// shard counts are different (each deterministic) interleavings.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace pcd::sim {

struct DigestStream;

struct ShardedEngineOptions {
  /// Run windows on persistent worker threads (one per shard).  Off runs
  /// every shard on the calling thread — bit-identical results (useful for
  /// debugging and for sanitizer runs that want single-threaded repros).
  bool parallel = true;
};

class ShardedEngine {
 public:
  static constexpr SimTime kNoLimit = std::numeric_limits<SimTime>::max();

  /// `lookahead` must be >= 1 ns (use Network::min_latency(); the Network
  /// constructor already rejects non-positive latency).
  ShardedEngine(int shards, SimDuration lookahead,
                ShardedEngineOptions options = {});
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();

  int shards() const { return static_cast<int>(engines_.size()); }
  SimDuration lookahead() const { return lookahead_; }
  Engine& shard(int s) { return *engines_[static_cast<std::size_t>(s)]; }

  /// The barrier time every engine currently rests at (the end of the last
  /// completed window).
  SimTime horizon() const { return horizon_; }

  /// Posts `cb` into shard `to` at absolute time `t`.  Must be called from
  /// shard `from` — either by an event executing inside a window (the
  /// cross-shard message path) or from the driver thread between runs
  /// (seeding).  Enforces the conservative bound t >= shard(from).now() +
  /// lookahead(); violations throw std::logic_error, because a short
  /// message is a protocol bug that would silently break determinism.
  /// `site` must have static storage duration (provenance label, as for
  /// Engine::schedule_at).
  void post(int from, int to, SimTime t, Engine::Callback cb,
            const char* site = "shard.post");

  struct RunStats {
    std::uint64_t events = 0;   // dispatched across all shards this run
    std::uint64_t windows = 0;  // lookahead windows executed
    std::uint64_t posts = 0;    // cross-shard messages injected
    SimTime horizon = 0;        // barrier time at exit
  };

  /// Runs windows until every shard is idle with no cross-shard message in
  /// flight, `until` is passed, or `on_barrier` returns false.  on_barrier
  /// runs on the calling thread between windows — every engine parked at
  /// horizon(), no worker running — so it may freely inspect shard state,
  /// cancel events (stop daemons), or decide termination; it is the
  /// sharded runner's control point for completion/cancel/deadline checks.
  /// Rethrows the first (lowest shard index) exception that escaped a
  /// shard's window.
  RunStats run(SimTime until = kNoLimit,
               const std::function<bool(SimTime)>& on_barrier = {});

  /// Installs `digest` as shard `s`'s RNG digest sink: every Rng draw made
  /// while that shard's window executes folds into it, on whichever thread
  /// runs the window (RngTelemetry is thread-local, so the collector's own
  /// constructor-time install only ever covers the driver thread — callers
  /// pair this with DeterminismCollector::release_rng()).  Pass nullptr to
  /// uninstall.  Must not be called while run() is in flight.
  void set_rng_digest(int s, DigestStream* digest);

 private:
  struct Pending {
    SimTime t;
    std::uint64_t order;  // per-source posting sequence (tie-break)
    int to;
    const char* site;
    Engine::Callback cb;
  };
  struct Outbox {
    std::vector<Pending> msgs;
    std::uint64_t next_order = 0;
  };

  void inject_outboxes(RunStats& stats);
  void advance_all(SimTime target);
  void start_workers();
  void worker_main(int s);

  SimDuration lookahead_;
  ShardedEngineOptions options_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<Outbox> outboxes_;  // indexed by source shard
  std::vector<DigestStream*> rng_digests_;  // per-shard RNG sink (may be null)
  std::vector<Pending> inject_scratch_;
  SimTime horizon_ = 0;

  // Worker-pool state (created lazily on the first parallel window).  The
  // mutex/condvar pair orders every window hand-off, which is also what
  // publishes each shard's engine + outbox writes to the coordinator.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  SimTime target_ = 0;
  int running_workers_ = 0;
  bool shutdown_ = false;
  std::vector<std::exception_ptr> worker_errors_;
};

}  // namespace pcd::sim
