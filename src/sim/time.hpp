// Simulated-time representation for the pcdvs discrete-event engine.
//
// All simulation time is kept as signed 64-bit nanoseconds.  Integer time
// keeps event ordering exact and reproducible: the same program produces the
// same event sequence on every platform, which the repeated-trial methodology
// of the paper (Section 5) relies on.
#pragma once

#include <cstdint>

namespace pcd::sim {

/// Simulated time in nanoseconds since the start of the simulation.
using SimTime = std::int64_t;

/// Duration in nanoseconds (same representation as SimTime).
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1'000;
inline constexpr SimDuration kMillisecond = 1'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000;

/// Converts a duration in (fractional) seconds to nanoseconds, rounding to
/// the nearest representable tick.
constexpr SimDuration from_seconds(double s) {
  return static_cast<SimDuration>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

/// Converts nanoseconds to fractional seconds.
constexpr double to_seconds(SimDuration d) { return static_cast<double>(d) * 1e-9; }

constexpr SimDuration from_micros(double us) { return from_seconds(us * 1e-6); }
constexpr SimDuration from_millis(double ms) { return from_seconds(ms * 1e-3); }

}  // namespace pcd::sim
