// Structured DVS decision log: every frequency-change *request* records
// sim-time, node, from/to MHz, and the cause that triggered it — the
// CPUSPEED daemon threshold trip (with the utilization reading), an
// EXTERNAL static set, an INTERNAL application hook, or the phase
// predictor.  Answers "why did node 3 downshift at t=4.2 s?" without
// recompiling with printf.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace pcd::telemetry {

enum class DvsCause : std::uint8_t {
  DaemonThreshold,  // CPUSPEED daemon threshold trip (utilization attached)
  External,         // static set before the run (psetcpuspeed)
  Internal,         // application hook (set_cpuspeed at a source insertion)
  Predictor,        // phase-predictor daemon decision
  Fallback,         // watchdog graceful degradation (force full speed)
  Api,              // direct set_cpuspeed() call with no strategy context
};

inline const char* to_string(DvsCause c) {
  switch (c) {
    case DvsCause::DaemonThreshold: return "daemon";
    case DvsCause::External: return "external";
    case DvsCause::Internal: return "internal";
    case DvsCause::Predictor: return "predictor";
    case DvsCause::Fallback: return "fallback";
    case DvsCause::Api: return "api";
  }
  return "?";
}

struct DvsDecision {
  sim::SimTime t = 0;
  int node = -1;
  int from_mhz = 0;
  int to_mhz = 0;
  DvsCause cause = DvsCause::Api;
  /// The utilization sample that triggered the decision; NaN when the
  /// cause carries no utilization (External/Internal/Api).
  double utilization = std::numeric_limits<double>::quiet_NaN();
  /// Human-readable trigger, e.g. "usage 0.23 < threshold 0.85: step down"
  /// or the hook label "before mpi_alltoall".
  std::string detail;

  bool has_utilization() const { return !std::isnan(utilization); }
};

class DecisionLog {
 public:
  /// `capacity` bounds memory on pathological runs; once full, new entries
  /// are counted in dropped() but not stored.
  explicit DecisionLog(std::size_t capacity = 1 << 20) : capacity_(capacity) {}

  DecisionLog(const DecisionLog&) = delete;
  DecisionLog& operator=(const DecisionLog&) = delete;

  void record(DvsDecision d) {
    if (entries_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    entries_.push_back(std::move(d));
  }

  const std::vector<DvsDecision>& entries() const { return entries_; }
  std::int64_t dropped() const { return dropped_; }

  std::vector<DvsDecision> for_node(int node) const {
    std::vector<DvsDecision> out;
    for (const auto& d : entries_) {
      if (d.node == node) out.push_back(d);
    }
    return out;
  }

 private:
  std::size_t capacity_;
  std::vector<DvsDecision> entries_;
  std::int64_t dropped_ = 0;
};

}  // namespace pcd::telemetry
