#include "telemetry/determinism.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace pcd::telemetry {

// ---- RunDigest ------------------------------------------------------------

const char* RunDigest::stream_name(int s) {
  switch (s) {
    case kEvents: return "events";
    case kRng: return "rng";
    case kPower: return "power";
    case kMpi: return "mpi";
    default: return "?";
  }
}

std::uint64_t RunDigest::root() const {
  sim::DigestStream r;
  for (const auto& s : streams) {
    r.fold(s.hash);
    r.fold(s.count);
  }
  return r.hash;
}

RunDigest merge_digests(const std::vector<RunDigest>& parts) {
  if (parts.empty()) return {};
  if (parts.size() == 1) return parts.front();
  RunDigest merged;
  merged.checkpoint_every = parts.front().checkpoint_every;
  for (int s = 0; s < RunDigest::kStreams; ++s) {
    sim::DigestStream& m = merged.streams[s];
    std::uint64_t total = 0;
    for (const auto& p : parts) {
      const std::uint64_t rec[2] = {p.streams[s].hash, p.streams[s].count};
      m.fold_record(rec, 2);
      total += p.streams[s].count;
    }
    m.count = total;
  }
  return merged;
}

std::string RunDigest::to_text() const {
  char buf[256];
  std::string out = "pcd-digest v1\n";
  std::snprintf(buf, sizeof buf, "checkpoint_every %" PRIu64 "\n", checkpoint_every);
  out += buf;
  for (int s = 0; s < kStreams; ++s) {
    std::snprintf(buf, sizeof buf, "stream %s %016" PRIx64 " %" PRIu64 "\n",
                  stream_name(s), streams[s].hash, streams[s].count);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "root %016" PRIx64 "\n", root());
  out += buf;
  for (const auto& c : checkpoints) {
    std::snprintf(buf, sizeof buf,
                  "checkpoint %" PRIu64 " %016" PRIx64 " %" PRIu64 " %016" PRIx64
                  " %" PRIu64 " %016" PRIx64 " %" PRIu64 " %016" PRIx64 " %" PRIu64
                  "\n",
                  c.events, c.hash[0], c.count[0], c.hash[1], c.count[1], c.hash[2],
                  c.count[2], c.hash[3], c.count[3]);
    out += buf;
  }
  return out;
}

std::optional<RunDigest> RunDigest::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "pcd-digest v1") return std::nullopt;
  RunDigest d;
  int streams_seen = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    char name[16];
    std::uint64_t h, n;
    DigestCheckpoint c;
    if (std::sscanf(line.c_str(), "checkpoint_every %" SCNu64, &h) == 1) {
      d.checkpoint_every = h;
    } else if (std::sscanf(line.c_str(), "stream %15s %" SCNx64 " %" SCNu64, name,
                           &h, &n) == 3) {
      for (int s = 0; s < kStreams; ++s) {
        if (std::strcmp(name, stream_name(s)) == 0) {
          d.streams[s].hash = h;
          d.streams[s].count = n;
          ++streams_seen;
        }
      }
    } else if (std::sscanf(line.c_str(),
                           "checkpoint %" SCNu64 " %" SCNx64 " %" SCNu64 " %" SCNx64
                           " %" SCNu64 " %" SCNx64 " %" SCNu64 " %" SCNx64
                           " %" SCNu64,
                           &c.events, &c.hash[0], &c.count[0], &c.hash[1],
                           &c.count[1], &c.hash[2], &c.count[2], &c.hash[3],
                           &c.count[3]) == 9) {
      d.checkpoints.push_back(c);
    } else if (line.rfind("root ", 0) == 0) {
      // informational; recomputed from the streams
    } else {
      return std::nullopt;  // unknown record: refuse rather than mis-compare
    }
  }
  if (streams_seen != kStreams) return std::nullopt;
  return d;
}

// ---- diff -----------------------------------------------------------------

namespace {

bool checkpoint_equal(const DigestCheckpoint& a, const DigestCheckpoint& b) {
  if (a.events != b.events) return false;
  for (int s = 0; s < RunDigest::kStreams; ++s) {
    if (a.hash[s] != b.hash[s] || a.count[s] != b.count[s]) return false;
  }
  return true;
}

int first_diverging_stream(const DigestCheckpoint& a, const DigestCheckpoint& b) {
  for (int s = 0; s < RunDigest::kStreams; ++s) {
    if (a.hash[s] != b.hash[s] || a.count[s] != b.count[s]) return s;
  }
  return -1;
}

}  // namespace

DigestDiff diff(const RunDigest& a, const RunDigest& b) {
  DigestDiff d;
  if (a.checkpoint_every != b.checkpoint_every) {
    d.comparable = false;
    d.diverged = a.root() != b.root();
    return d;
  }
  bool final_equal = true;
  int final_stream = -1;
  for (int s = 0; s < RunDigest::kStreams; ++s) {
    if (a.streams[s].hash != b.streams[s].hash ||
        a.streams[s].count != b.streams[s].count) {
      final_equal = false;
      if (final_stream < 0) final_stream = s;
    }
  }
  const std::size_t common = std::min(a.checkpoints.size(), b.checkpoints.size());
  std::size_t agree = 0;
  while (agree < common &&
         checkpoint_equal(a.checkpoints[agree], b.checkpoints[agree])) {
    ++agree;
  }
  if (final_equal && agree == common &&
      a.checkpoints.size() == b.checkpoints.size()) {
    return d;  // identical
  }
  d.diverged = true;
  d.interval_begin = agree > 0 ? a.checkpoints[agree - 1].events : 0;
  if (agree < common) {
    d.interval_end = a.checkpoints[agree].events;
    d.stream = first_diverging_stream(a.checkpoints[agree], b.checkpoints[agree]);
  } else {
    // Divergence past the last common checkpoint (or in the tail streams).
    d.interval_end = ~0ULL;
    d.stream = final_stream >= 0 ? final_stream : RunDigest::kEvents;
  }
  return d;
}

std::string DigestDiff::summary() const {
  if (!comparable) return "digests not comparable (different checkpoint_every)";
  if (!diverged) return "digests identical";
  char buf[192];
  if (interval_end == ~0ULL) {
    std::snprintf(buf, sizeof buf,
                  "first divergence in stream '%s' after event %" PRIu64
                  " (past the last common checkpoint)",
                  RunDigest::stream_name(stream), interval_begin);
  } else {
    std::snprintf(buf, sizeof buf,
                  "first divergence in stream '%s' within events (%" PRIu64
                  ", %" PRIu64 "]",
                  RunDigest::stream_name(stream), interval_begin, interval_end);
  }
  return buf;
}

// ---- collector ------------------------------------------------------------

DeterminismCollector::DeterminismCollector(sim::Engine& engine,
                                           const DeterminismOptions& opts)
    : engine_(engine), opts_(opts) {
  if (!opts_.any()) return;
  if (opts_.checkpoint_every < 2) opts_.checkpoint_every = 2;
  opts_.checkpoint_every = std::bit_ceil(opts_.checkpoint_every);
  digest_.checkpoint_every = opts_.checkpoint_every;
  if (opts_.flight_recorder) {
    recorder_ = std::make_unique<FlightRecorder>(opts_.recorder_entries);
  }
  sim::Engine::DeterminismHooks hooks;
  hooks.event_digest = &digest_.streams[RunDigest::kEvents];
  hooks.checkpoint_mask = opts_.checkpoint_every - 1;
  hooks.observer = this;
  hooks.per_event = opts_.flight_recorder || opts_.capture();
  engine_.set_determinism(hooks);
  engine_.set_seq_perturbation(opts_.perturb_seq);
  prev_rng_digest_ = sim::RngTelemetry::digest;
  sim::RngTelemetry::digest = &digest_.streams[RunDigest::kRng];
  rng_installed_ = true;
  attached_ = true;
}

void DeterminismCollector::release_rng() {
  if (!rng_installed_) return;
  rng_installed_ = false;
  sim::RngTelemetry::digest = prev_rng_digest_;
}

void DeterminismCollector::detach() {
  if (!attached_) return;
  attached_ = false;
  engine_.clear_determinism();
  engine_.set_seq_perturbation(0);
  release_rng();
}

void DeterminismCollector::on_event(const sim::EventProvenance& p) {
  if (recorder_ != nullptr) recorder_->record(p);
  if (!opts_.capture() || p.index > opts_.capture_end) return;
  CapturedEvent e;
  e.index = p.index;
  e.seq = p.seq;
  e.parent = p.parent;
  e.site = p.site;
  e.t = p.t;
  e.rng_draws = p.rng_draws;
  if (p.index > opts_.capture_begin) captured_.push_back(e);
  chain_.emplace(p.seq, std::move(e));
}

void DeterminismCollector::on_checkpoint(std::uint64_t events_dispatched) {
  DigestCheckpoint c;
  c.events = events_dispatched;
  for (int s = 0; s < RunDigest::kStreams; ++s) {
    c.hash[s] = digest_.streams[s].hash;
    c.count[s] = digest_.streams[s].count;
  }
  digest_.checkpoints.push_back(c);
}

RunCapture DeterminismCollector::take_capture() {
  RunCapture out;
  out.digest = digest_;
  out.events = std::move(captured_);
  out.chain = std::move(chain_);
  captured_.clear();
  chain_.clear();
  return out;
}

// ---- localization ---------------------------------------------------------

std::vector<CapturedEvent> causal_chain(const RunCapture& capture,
                                        std::uint64_t seq) {
  std::vector<CapturedEvent> chain;
  std::uint64_t cur = seq;
  while (cur != 0) {
    auto it = capture.chain.find(cur);
    if (it == capture.chain.end()) break;  // ancestor outside the chain table
    chain.push_back(it->second);
    cur = it->second.parent;
    if (chain.size() > 10000) break;  // defensive: corrupt parent cycle
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

namespace {

std::string render_event(const char* tag, const CapturedEvent& e) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s#%" PRIu64 " site='%s' seq=%" PRIu64 " parent=%" PRIu64
                " t=%.9fs rng_draws=%" PRIu64 "\n",
                tag, e.index, e.site.c_str(), e.seq, e.parent,
                sim::to_seconds(e.t), e.rng_draws);
  return buf;
}

void render_chain(std::string& out, const char* which,
                  const std::vector<CapturedEvent>& chain) {
  out += std::string("causal chain (run ") + which + ", root first):\n";
  if (chain.empty()) {
    out += "  (scheduled outside any event: a root)\n";
    return;
  }
  for (const auto& e : chain) out += render_event("  ", e);
}

}  // namespace

LocalizeResult localize(const InstrumentedRun& run_a, const InstrumentedRun& run_b,
                        std::uint64_t checkpoint_every) {
  LocalizeResult r;
  DeterminismOptions digest_only;
  digest_only.digest = true;
  digest_only.checkpoint_every = checkpoint_every;
  const RunCapture a = run_a(digest_only);
  const RunCapture b = run_b(digest_only);
  r.digests = diff(a.digest, b.digest);
  r.diverged = r.digests.diverged;
  if (!r.diverged) {
    r.report = "runs are bit-identical: " + r.digests.summary() + "\n";
    return r;
  }

  // Focused re-run: capture the first diverging checkpoint interval.
  DeterminismOptions focus = digest_only;
  focus.capture_begin = r.digests.interval_begin;
  focus.capture_end = r.digests.interval_end;
  const RunCapture fa = run_a(focus);
  const RunCapture fb = run_b(focus);

  const std::size_t n = std::min(fa.events.size(), fb.events.size());
  std::size_t k = 0;
  while (k < n && fa.events[k] == fb.events[k]) ++k;

  std::string out = "runs diverge: " + r.digests.summary() + "\n";
  if (k < fa.events.size()) r.first_a = fa.events[k];
  if (k < fb.events.size()) r.first_b = fb.events[k];
  if (!r.first_a.has_value() && !r.first_b.has_value()) {
    out +=
        "event streams agree inside the interval; the divergence is in the '" +
        std::string(RunDigest::stream_name(r.digests.stream)) +
        "' stream between event dispatches (e.g. power/MPI activity not tied "
        "to a dispatched event)\n";
    r.report = std::move(out);
    return r;
  }
  if (r.first_a.has_value()) out += render_event("first diverging event (run A): ", *r.first_a);
  else out += "run A has no event at this position (its stream ended)\n";
  if (r.first_b.has_value()) out += render_event("first diverging event (run B): ", *r.first_b);
  else out += "run B has no event at this position (its stream ended)\n";
  if (r.first_a.has_value()) {
    r.chain_a = causal_chain(fa, r.first_a->seq);
    render_chain(out, "A", r.chain_a);
  }
  if (r.first_b.has_value()) {
    r.chain_b = causal_chain(fb, r.first_b->seq);
    render_chain(out, "B", r.chain_b);
  }
  r.report = std::move(out);
  return r;
}

}  // namespace pcd::telemetry
