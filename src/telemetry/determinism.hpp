// Determinism observability: run digests, focused capture, and divergence
// localization (DESIGN.md §3.12).
//
// A run's externally visible decision sequence is folded into four rolling
// digest streams — event-dispatch order, RNG draws, power-integration
// steps, MPI message matches — checkpointed every K events into a
// RunDigest.  Two runs of the same RunConfig must produce byte-identical
// digests; when they do not, diff() names the first diverging stream and
// the checkpoint interval containing the first divergence, and localize()
// re-runs the pair with per-event capture focused on that interval to name
// the first diverging event with its full causal chain.
//
// The collector is RAII: constructing one installs the engine hooks and the
// thread-local RNG sink, destroying it restores both, so a digest-off run
// executes exactly the pre-observability instruction stream.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/provenance.hpp"
#include "telemetry/flight_recorder.hpp"

namespace pcd::telemetry {

/// Run-level determinism switches (RunConfig::determinism).
struct DeterminismOptions {
  /// Collect the four digest streams + checkpoints (the cheap tier: one
  /// hash fold per event dispatch / RNG draw / power step / MPI match).
  bool digest = false;

  /// Events per digest checkpoint; rounded up to a power of two.
  std::uint64_t checkpoint_every = 4096;

  /// Keep a ring of the last N provenance records and attach a JSON dump to
  /// the result on run failure (and to watchdog-fallback fault records).
  bool flight_recorder = false;
  std::size_t recorder_entries = 1024;

  /// Focused capture: retain full per-event records for dispatch indices i
  /// with capture_begin < i <= capture_end (1-based dispatch ordinals, so
  /// the window slots directly between two digest checkpoints), plus the
  /// causal-chain table needed to walk any captured event back to the run's
  /// root.  The debug tier — a virtual call per event — used by the
  /// divergence localizer.
  std::uint64_t capture_begin = 0;
  std::uint64_t capture_end = 0;

  /// Debug knob: swap the engine's allocation order of sequence numbers
  /// `perturb_seq` and `perturb_seq + 1` — the minimal scheduling-order
  /// perturbation (two same-time events dispatch in swapped order).  Used
  /// to exercise and test divergence localization; 0 = off.
  std::uint64_t perturb_seq = 0;

  bool capture() const { return capture_end > capture_begin; }
  bool any() const { return digest || flight_recorder || capture() || perturb_seq != 0; }
};

/// Snapshot of all four streams at one checkpoint boundary.
struct DigestCheckpoint {
  std::uint64_t events = 0;  // dispatch count at the boundary
  std::uint64_t hash[4] = {0, 0, 0, 0};
  std::uint64_t count[4] = {0, 0, 0, 0};
};

/// The per-run digest: final stream states plus the checkpoint trail.
struct RunDigest {
  enum Stream { kEvents = 0, kRng = 1, kPower = 2, kMpi = 3 };
  static constexpr int kStreams = 4;
  static const char* stream_name(int s);

  sim::DigestStream streams[kStreams];
  std::uint64_t checkpoint_every = 4096;
  std::vector<DigestCheckpoint> checkpoints;

  /// One word summarizing the whole run: fold of every stream's final
  /// (hash, count).  Equal digests have equal roots.
  std::uint64_t root() const;

  /// Line-based text serialization (stable across versions within v1);
  /// parse() round-trips it.  Used by tools/pcd_diff digest files.
  std::string to_text() const;
  static std::optional<RunDigest> parse(const std::string& text);
};

/// Merges per-shard digests of one sharded run into a single RunDigest
/// (DESIGN.md §3.14).  A single part is returned unchanged — checkpoints
/// and all — so a 1-shard run's digest (and root, and any campaign
/// fingerprint folded from it) is byte-identical to the unsharded path.
/// For S > 1 parts, stream i of the result is the FNV fold of each part's
/// (hash, count) pair in shard order, with `count` then overwritten by the
/// sum of the parts' counts (total records observed across the machine);
/// checkpoints are dropped, because per-shard dispatch ordinals do not form
/// one global interval scale.
RunDigest merge_digests(const std::vector<RunDigest>& parts);

/// Where two digests first part ways.
struct DigestDiff {
  bool diverged = false;
  bool comparable = true;  // false: different checkpoint_every / stream sets
  int stream = -1;         // first diverging stream (RunDigest::Stream)
  /// Dispatch-index interval containing the first divergence: the last
  /// checkpoint where all streams still agreed, and the first where one
  /// differed (UINT64_MAX = past the last common checkpoint).
  std::uint64_t interval_begin = 0;
  std::uint64_t interval_end = ~0ULL;

  std::string summary() const;
};

DigestDiff diff(const RunDigest& a, const RunDigest& b);

/// One event retained by focused capture (site copied out of the static
/// label so captures outlive the engine).
struct CapturedEvent {
  std::uint64_t index = 0;
  std::uint64_t seq = 0;
  std::uint64_t parent = 0;
  std::string site;
  sim::SimTime t = 0;
  std::uint64_t rng_draws = 0;

  bool operator==(const CapturedEvent&) const = default;
};

/// Everything one instrumented run hands back: the digest, the focused
/// capture window, the causal-chain table (seq -> record, populated up to
/// capture_end), and the flight recording if one was dumped.
struct RunCapture {
  RunDigest digest;
  std::vector<CapturedEvent> events;
  std::unordered_map<std::uint64_t, CapturedEvent> chain;
  std::string flight_recording;
  /// Per-shard digest parts of a sharded run, in shard order (empty for a
  /// single-engine run).  `digest` above is merge_digests(shard_parts).
  /// tools/pcd_diff compares parts pairwise to name the first diverging
  /// shard before falling back to the merged diff.
  std::vector<RunDigest> shard_parts;
};

/// RAII engine instrumentation.  Construct after the Engine and before any
/// scheduling that should be covered; destroy (or detach()) before the
/// Engine dies.
class DeterminismCollector final : public sim::EventObserver {
 public:
  DeterminismCollector(sim::Engine& engine, const DeterminismOptions& opts);
  ~DeterminismCollector() override { detach(); }

  DeterminismCollector(const DeterminismCollector&) = delete;
  DeterminismCollector& operator=(const DeterminismCollector&) = delete;

  /// Uninstalls the engine hooks and the RNG sink (idempotent).
  void detach();

  /// Uninstalls only the thread-local RNG sink, now, on the calling thread
  /// (idempotent; detach() then leaves the TLS slot alone).  The sharded
  /// runner constructs one collector per shard on the driver thread but
  /// runs each shard's events on a worker — it releases the constructor's
  /// install and re-installs rng_stream() on the shard's thread instead
  /// (ShardedEngine::set_rng_digest).  Without this, stacked collectors
  /// restore each other's freed streams into the thread-local on teardown.
  void release_rng();

  const RunDigest& digest() const { return digest_; }
  /// Streams for subsystem wiring (power integrator, MPI match points,
  /// per-shard RNG installation).
  sim::DigestStream* power_stream() { return &digest_.streams[RunDigest::kPower]; }
  sim::DigestStream* mpi_stream() { return &digest_.streams[RunDigest::kMpi]; }
  sim::DigestStream* rng_stream() { return &digest_.streams[RunDigest::kRng]; }
  FlightRecorder* recorder() { return recorder_.get(); }

  /// Moves the collected state out (digest, capture, chain); the collector
  /// keeps running but starts from what is left (call at run end).
  RunCapture take_capture();

  // sim::EventObserver
  void on_event(const sim::EventProvenance& p) override;
  void on_checkpoint(std::uint64_t events_dispatched) override;

 private:
  sim::Engine& engine_;
  DeterminismOptions opts_;
  RunDigest digest_;
  std::unique_ptr<FlightRecorder> recorder_;
  std::vector<CapturedEvent> captured_;
  std::unordered_map<std::uint64_t, CapturedEvent> chain_;
  sim::DigestStream* prev_rng_digest_ = nullptr;
  bool attached_ = false;
  bool rng_installed_ = false;
};

/// Executes one instrumented run under the given options and returns its
/// capture.  Implementations wrap core::run_workload (or any other driver)
/// — the localizer stays independent of the runner layer.
using InstrumentedRun = std::function<RunCapture(const DeterminismOptions&)>;

/// Divergence localization verdict: the digest diff, plus (after the
/// focused re-run) the first diverging event from each side with its causal
/// chain, rendered into `report`.
struct LocalizeResult {
  bool diverged = false;
  DigestDiff digests;
  std::optional<CapturedEvent> first_a, first_b;
  std::vector<CapturedEvent> chain_a, chain_b;  // root first, event last
  std::string report;
};

/// Runs a and b with digests, diffs, and — on divergence — re-runs both
/// with capture focused on the first diverging checkpoint interval to name
/// the first diverging event and walk its causal chain.
LocalizeResult localize(const InstrumentedRun& run_a, const InstrumentedRun& run_b,
                        std::uint64_t checkpoint_every = 4096);

/// Renders a capture's causal chain for `seq` (root first).
std::vector<CapturedEvent> causal_chain(const RunCapture& capture, std::uint64_t seq);

}  // namespace pcd::telemetry
