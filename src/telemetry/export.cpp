#include "telemetry/export.hpp"

#include <algorithm>
#include <cstdio>

namespace pcd::telemetry {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt_value(double v) {
  char buf[64];
  // %.17g round-trips doubles but prints integers compactly.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string prom_series(const std::string& name, const Labels& labels,
                        const std::string& extra_label, double value) {
  std::string line = name;
  if (!labels.empty() || !extra_label.empty()) {
    line += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) line += ',';
      first = false;
      line += k + "=\"" + escape(v) + "\"";
    }
    if (!extra_label.empty()) {
      if (!first) line += ',';
      line += extra_label;
    }
    line += '}';
  }
  line += ' ' + fmt_value(value) + '\n';
  return line;
}

}  // namespace

namespace {

// HELP text escaping per the exposition format: only backslash and
// newline (label values additionally escape double quotes, see escape()).
std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string to_prometheus(const std::vector<MetricSample>& samples) {
  std::string out;
  const std::string* last_family = nullptr;
  for (const auto& s : samples) {
    if (last_family == nullptr || *last_family != s.name) {
      if (!s.help.empty()) {
        out += "# HELP " + s.name + ' ' + escape_help(s.help) + '\n';
      }
      out += "# TYPE " + s.name + ' ' + to_string(s.type) + '\n';
      last_family = &s.name;
    }
    if (s.type == MetricType::Histogram) {
      for (std::size_t i = 0; i < s.bucket_bounds.size(); ++i) {
        out += prom_series(s.name + "_bucket", s.labels,
                           "le=\"" + fmt_value(s.bucket_bounds[i]) + "\"",
                           static_cast<double>(s.bucket_counts[i]));
      }
      out += prom_series(s.name + "_bucket", s.labels, "le=\"+Inf\"",
                         static_cast<double>(s.count));
      out += prom_series(s.name + "_sum", s.labels, "", s.value);
      out += prom_series(s.name + "_count", s.labels, "",
                         static_cast<double>(s.count));
    } else {
      out += prom_series(s.name, s.labels, "", s.value);
    }
  }
  return out;
}

std::string to_prometheus(const MetricsRegistry& registry) {
  return to_prometheus(registry.samples());
}

std::vector<MetricSample> with_shard_label(std::vector<MetricSample> samples,
                                           int shard) {
  for (auto& s : samples) {
    s.labels.emplace_back("shard", std::to_string(shard));
  }
  return samples;
}

std::string to_prometheus_sharded(const TelemetrySnapshot& snapshot) {
  std::string out;
  for (std::size_t s = 0; s < snapshot.shard_metrics.size(); ++s) {
    out += to_prometheus(
        with_shard_label(snapshot.shard_metrics[s], static_cast<int>(s)));
  }
  return out;
}

std::string to_chrome_json(const TelemetrySnapshot& snapshot,
                           const trace::Tracer* tracer,
                           const RunCapture* determinism,
                           const std::vector<int>* rank_shards) {
  // Shard-provenance layout: rank r's track lives under its shard's
  // process (pid 10 + shard) instead of the merged pid-0 "ranks" process.
  const bool sharded = rank_shards != nullptr && !rank_shards->empty();
  auto rank_pid = [&](int rank) {
    return sharded ? 10 + (*rank_shards)[static_cast<std::size_t>(rank)] : 0;
  };
  // Collect (ts, json) pairs, sort by ts so the stream is monotone.
  struct Ev {
    double ts;
    std::string json;
  };
  std::vector<Ev> events;
  char buf[512];

  auto us = [](sim::SimTime t) { return static_cast<double>(t) / 1000.0; };

  if (tracer != nullptr) {
    for (int rank = 0; rank < tracer->ranks(); ++rank) {
      for (const auto& r : tracer->records(rank)) {
        const char* name = (r.label != nullptr && r.label[0] != '\0')
                               ? r.label
                               : trace::to_string(r.cat);
        std::string args = "{\"peer\":" + std::to_string(r.peer) +
                           ",\"bytes\":" + std::to_string(r.bytes);
        if (r.energy_j != 0 || r.cycles != 0) {
          // Energy-annotated slice (the profiler's attribution probe ran).
          args += ",\"energy_j\":" + fmt_value(r.energy_j) +
                  ",\"cpu_energy_j\":" + fmt_value(r.cpu_energy_j) +
                  ",\"cycles\":" + fmt_value(r.cycles);
        }
        args += '}';
        std::snprintf(buf, sizeof buf,
                      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                      "\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":%s}",
                      escape(name).c_str(), trace::to_string(r.cat), us(r.begin),
                      us(r.end - r.begin), rank_pid(rank), rank, args.c_str());
        events.push_back({us(r.begin), buf});
      }
    }
    // Message edges as Perfetto flow events: an arrow from the send instant
    // on the source rank to the receive completion on the destination rank.
    std::int64_t id = 0;
    for (const auto& m : tracer->messages()) {
      ++id;
      if (!m.complete()) continue;
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"msg\",\"cat\":\"mpi_msg\",\"ph\":\"s\","
                    "\"id\":%lld,\"ts\":%.3f,\"pid\":%d,\"tid\":%d,"
                    "\"args\":{\"bytes\":%lld,\"tag\":%d}}",
                    static_cast<long long>(id), us(m.t_send), rank_pid(m.src),
                    m.src, static_cast<long long>(m.bytes), m.tag);
      events.push_back({us(m.t_send), buf});
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"msg\",\"cat\":\"mpi_msg\",\"ph\":\"f\",\"bp\":\"e\","
                    "\"id\":%lld,\"ts\":%.3f,\"pid\":%d,\"tid\":%d}",
                    static_cast<long long>(id), us(m.t_recv_done),
                    rank_pid(m.dst), m.dst);
      events.push_back({us(m.t_recv_done), buf});
    }
  }

  for (const auto& t : snapshot.transitions) {
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"dvs %d->%d\",\"cat\":\"dvs\",\"ph\":\"i\","
                  "\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"s\":\"t\","
                  "\"args\":{\"from_mhz\":%d,\"to_mhz\":%d}}",
                  t.from_mhz, t.to_mhz, us(t.t), t.node, t.from_mhz, t.to_mhz);
    events.push_back({us(t.t), buf});
  }

  for (const auto& d : snapshot.decisions) {
    std::string args = "{\"from_mhz\":" + std::to_string(d.from_mhz) +
                       ",\"to_mhz\":" + std::to_string(d.to_mhz) +
                       ",\"cause\":\"" + to_string(d.cause) + "\"";
    if (d.has_utilization()) args += ",\"utilization\":" + fmt_value(d.utilization);
    if (!d.detail.empty()) args += ",\"detail\":\"" + escape(d.detail) + "\"";
    args += '}';
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"decision %s\",\"cat\":\"dvs_decision\",\"ph\":\"i\","
                  "\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"s\":\"t\",\"args\":%s}",
                  to_string(d.cause), us(d.t), d.node, args.c_str());
    events.push_back({us(d.t), buf});
  }

  for (const auto& f : snapshot.faults) {
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"fault %s %s\",\"cat\":\"fault\",\"ph\":\"i\","
                  "\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"s\":\"%s\","
                  "\"args\":{\"kind\":\"%s\",\"phase\":\"%s\",\"detail\":\"%s\"}}",
                  escape(f.kind).c_str(), to_string(f.phase), us(f.t),
                  f.node < 0 ? 0 : f.node, f.node < 0 ? "g" : "t",
                  escape(f.kind).c_str(), to_string(f.phase),
                  escape(f.detail).c_str());
    events.push_back({us(f.t), buf});
  }

  for (std::size_t node = 0; node < snapshot.series.size(); ++node) {
    for (const auto& s : snapshot.series[node]) {
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"node%zu power\",\"cat\":\"sampler\",\"ph\":\"C\","
                    "\"ts\":%.3f,\"pid\":1,"
                    "\"args\":{\"cpu\":%.3f,\"memory\":%.3f,\"disk\":%.3f,"
                    "\"nic\":%.3f,\"other\":%.3f}}",
                    node, us(s.t), s.watts_cpu, s.watts_memory, s.watts_disk,
                    s.watts_nic, s.watts_other);
      events.push_back({us(s.t), buf});
    }
  }

  // Captured engine events (determinism focused capture): one short slice
  // per dispatch under a dedicated process, with provenance flow arrows
  // from each event's scheduling parent.
  if (determinism != nullptr && !determinism->events.empty()) {
    for (const auto& e : determinism->events) {
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%s\",\"cat\":\"engine\",\"ph\":\"X\","
                    "\"ts\":%.3f,\"dur\":0.001,\"pid\":2,\"tid\":0,"
                    "\"args\":{\"seq\":%llu,\"parent\":%llu,\"index\":%llu,"
                    "\"rng_draws\":%llu}}",
                    escape(e.site).c_str(), us(e.t),
                    static_cast<unsigned long long>(e.seq),
                    static_cast<unsigned long long>(e.parent),
                    static_cast<unsigned long long>(e.index),
                    static_cast<unsigned long long>(e.rng_draws));
      events.push_back({us(e.t), buf});
      if (e.parent == 0) continue;
      const auto pit = determinism->chain.find(e.parent);
      if (pit == determinism->chain.end()) continue;
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"prov\",\"cat\":\"provenance\",\"ph\":\"s\","
                    "\"id\":%llu,\"ts\":%.3f,\"pid\":2,\"tid\":0}",
                    static_cast<unsigned long long>(e.seq), us(pit->second.t));
      events.push_back({us(pit->second.t), buf});
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"prov\",\"cat\":\"provenance\",\"ph\":\"f\","
                    "\"bp\":\"e\",\"id\":%llu,\"ts\":%.3f,\"pid\":2,\"tid\":0}",
                    static_cast<unsigned long long>(e.seq), us(e.t));
      events.push_back({us(e.t), buf});
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const Ev& a, const Ev& b) { return a.ts < b.ts; });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  if (sharded) {
    // One Perfetto process row per shard, named with its rank range.
    const int shards = 1 + *std::max_element(rank_shards->begin(),
                                             rank_shards->end());
    bool first = true;
    for (int s = 0; s < shards; ++s) {
      int lo = -1, hi = -1;
      for (std::size_t r = 0; r < rank_shards->size(); ++r) {
        if ((*rank_shards)[r] != s) continue;
        if (lo < 0) lo = static_cast<int>(r);
        hi = static_cast<int>(r);
      }
      std::snprintf(buf, sizeof buf,
                    "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                    "\"ts\":0,\"args\":{\"name\":\"shard %d (ranks %d-%d)\"}}",
                    first ? "" : ",\n", 10 + s, s, lo, hi);
      first = false;
      out += buf;
    }
    out += ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"ts\":0,"
           "\"args\":{\"name\":\"nodes\"}}";
  } else {
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"ts\":0,"
           "\"args\":{\"name\":\"ranks\"}},\n";
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"ts\":0,"
           "\"args\":{\"name\":\"nodes\"}}";
  }
  // Thread-name metadata so tracks render as "rank N" / "node N" instead of
  // bare numeric tids.
  if (tracer != nullptr) {
    for (int rank = 0; rank < tracer->ranks(); ++rank) {
      std::snprintf(buf, sizeof buf,
                    ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                    "\"tid\":%d,\"ts\":0,\"args\":{\"name\":\"rank %d\"}}",
                    rank_pid(rank), rank, rank);
      out += buf;
    }
  }
  {
    std::vector<int> node_tids;
    auto note_tid = [&node_tids](int node) {
      if (node < 0) return;
      if (std::find(node_tids.begin(), node_tids.end(), node) == node_tids.end()) {
        node_tids.push_back(node);
      }
    };
    for (const auto& t : snapshot.transitions) note_tid(t.node);
    for (const auto& d : snapshot.decisions) note_tid(d.node);
    for (const auto& f : snapshot.faults) note_tid(f.node);
    for (std::size_t n = 0; n < snapshot.series.size(); ++n) {
      note_tid(static_cast<int>(n));
    }
    std::sort(node_tids.begin(), node_tids.end());
    for (int node : node_tids) {
      std::snprintf(buf, sizeof buf,
                    ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                    "\"tid\":%d,\"ts\":0,\"args\":{\"name\":\"node %d\"}}",
                    node, node);
      out += buf;
    }
  }
  if (determinism != nullptr && !determinism->events.empty()) {
    out += ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"ts\":0,"
           "\"args\":{\"name\":\"engine\"}}";
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
           "\"ts\":0,\"args\":{\"name\":\"event dispatch\"}}";
  }
  for (const auto& e : events) {
    out += ",\n";
    out += e.json;
  }
  out += "\n]}\n";
  return out;
}

std::string series_csv(const TelemetrySnapshot& snapshot) {
  std::string out =
      "node,t_s,freq_mhz,utilization,watts_cpu,watts_memory,watts_disk,"
      "watts_nic,watts_other,watts_total\n";
  char line[256];
  for (std::size_t node = 0; node < snapshot.series.size(); ++node) {
    for (const auto& s : snapshot.series[node]) {
      std::snprintf(line, sizeof line,
                    "%zu,%.9f,%d,%.4f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n", node,
                    sim::to_seconds(s.t), s.freq_mhz, s.utilization, s.watts_cpu,
                    s.watts_memory, s.watts_disk, s.watts_nic, s.watts_other,
                    s.watts_total());
      out += line;
    }
  }
  return out;
}

std::string faults_csv(const TelemetrySnapshot& snapshot) {
  std::string out = "t_s,node,kind,phase,detail\n";
  char line[384];
  for (const auto& f : snapshot.faults) {
    std::snprintf(line, sizeof line, "%.9f,%d,%s,%s,\"%s\"\n", sim::to_seconds(f.t),
                  f.node, escape(f.kind).c_str(), to_string(f.phase),
                  escape(f.detail).c_str());
    out += line;
  }
  return out;
}

std::string decisions_csv(const TelemetrySnapshot& snapshot) {
  std::string out = "t_s,node,from_mhz,to_mhz,cause,utilization,detail\n";
  char line[384];
  for (const auto& d : snapshot.decisions) {
    std::snprintf(line, sizeof line, "%.9f,%d,%d,%d,%s,%s,\"%s\"\n",
                  sim::to_seconds(d.t), d.node, d.from_mhz, d.to_mhz,
                  to_string(d.cause),
                  d.has_utilization() ? fmt_value(d.utilization).c_str() : "",
                  escape(d.detail).c_str());
    out += line;
  }
  return out;
}

}  // namespace pcd::telemetry
