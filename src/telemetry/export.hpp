// Telemetry exporters:
//   - Prometheus text exposition of the metrics registry,
//   - Chrome trace-event JSON (loadable in Perfetto / chrome://tracing):
//     tracer scopes as "X" complete events, DVS transitions and decisions
//     as "i" instant events, sampled node power as "C" counter events,
//   - CSV dump of the sampler time series.
#pragma once

#include <string>

#include "telemetry/determinism.hpp"
#include "telemetry/snapshot.hpp"
#include "trace/tracer.hpp"

namespace pcd::telemetry {

/// Prometheus text exposition format (one # TYPE line per family).
std::string to_prometheus(const std::vector<MetricSample>& samples);
std::string to_prometheus(const MetricsRegistry& registry);

/// Chrome trace-event JSON.  `tracer` may be null (DVS/power events only).
/// Events are emitted sorted by timestamp (ts in microseconds).  Process
/// and thread name metadata records give simulated ranks/nodes readable
/// track names.  When `determinism` carries a focused event capture, the
/// captured engine events are emitted as slices on a dedicated "engine"
/// process with parent->child provenance flow arrows.
std::string to_chrome_json(const TelemetrySnapshot& snapshot,
                           const trace::Tracer* tracer = nullptr,
                           const RunCapture* determinism = nullptr);

/// Sampler series as CSV:
///   node,t_s,freq_mhz,utilization,watts_cpu,...,watts_total
std::string series_csv(const TelemetrySnapshot& snapshot);

/// Decision log as CSV: t_s,node,from_mhz,to_mhz,cause,utilization,detail
std::string decisions_csv(const TelemetrySnapshot& snapshot);

/// Fault event log as CSV: t_s,node,kind,phase,detail
std::string faults_csv(const TelemetrySnapshot& snapshot);

}  // namespace pcd::telemetry
