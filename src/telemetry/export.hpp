// Telemetry exporters:
//   - Prometheus text exposition of the metrics registry,
//   - Chrome trace-event JSON (loadable in Perfetto / chrome://tracing):
//     tracer scopes as "X" complete events, DVS transitions and decisions
//     as "i" instant events, sampled node power as "C" counter events,
//   - CSV dump of the sampler time series.
#pragma once

#include <string>

#include "telemetry/determinism.hpp"
#include "telemetry/snapshot.hpp"
#include "trace/tracer.hpp"

namespace pcd::telemetry {

/// Prometheus text exposition format (one # TYPE line per family).
std::string to_prometheus(const std::vector<MetricSample>& samples);
std::string to_prometheus(const MetricsRegistry& registry);

/// Copy of `samples` with a shard="N" label appended to every series — the
/// per-shard Prometheus view.  Merged exports never carry the label, so a
/// sharded run's merged exposition stays label-compatible with (and
/// byte-identical to) single-engine output.
std::vector<MetricSample> with_shard_label(std::vector<MetricSample> samples,
                                           int shard);

/// Per-shard Prometheus exposition of a sharded snapshot: each shard's
/// registry rendered with its shard label, concatenated in shard order.
/// Empty for a single-engine snapshot (no shard_metrics).
std::string to_prometheus_sharded(const TelemetrySnapshot& snapshot);

/// Chrome trace-event JSON.  `tracer` may be null (DVS/power events only).
/// Events are emitted sorted by timestamp (ts in microseconds).  Process
/// and thread name metadata records give simulated ranks/nodes readable
/// track names.  When `determinism` carries a focused event capture, the
/// captured engine events are emitted as slices on a dedicated "engine"
/// process with parent->child provenance flow arrows.
///
/// `rank_shards` (shard owning each rank, e.g. TelemetrySnapshot::
/// rank_shards) switches on shard provenance: rank tracks are grouped into
/// one Perfetto process per shard ("shard N", pid 10+N) instead of the
/// single "ranks" process.  Null/empty keeps the merged, shard-free layout.
std::string to_chrome_json(const TelemetrySnapshot& snapshot,
                           const trace::Tracer* tracer = nullptr,
                           const RunCapture* determinism = nullptr,
                           const std::vector<int>* rank_shards = nullptr);

/// Sampler series as CSV:
///   node,t_s,freq_mhz,utilization,watts_cpu,...,watts_total
std::string series_csv(const TelemetrySnapshot& snapshot);

/// Decision log as CSV: t_s,node,from_mhz,to_mhz,cause,utilization,detail
std::string decisions_csv(const TelemetrySnapshot& snapshot);

/// Fault event log as CSV: t_s,node,kind,phase,detail
std::string faults_csv(const TelemetrySnapshot& snapshot);

}  // namespace pcd::telemetry
