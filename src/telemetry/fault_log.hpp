// Structured fault event log: every fault-layer event — an injection, the
// end of a transient fault, a watchdog detection, a recovery action —
// records sim-time, node, fault kind, and lifecycle phase, so the full
// inject -> detect -> recover chain of a run is reconstructible from the
// telemetry snapshot alongside the DVS decision log.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace pcd::telemetry {

enum class FaultPhase : std::uint8_t {
  Injected,   // the injector applied a fault
  Cleared,    // a transient fault's duration elapsed
  Detected,   // a watchdog / monitor noticed the symptom
  Recovered,  // a resilience mechanism restored service
};

inline const char* to_string(FaultPhase p) {
  switch (p) {
    case FaultPhase::Injected: return "injected";
    case FaultPhase::Cleared: return "cleared";
    case FaultPhase::Detected: return "detected";
    case FaultPhase::Recovered: return "recovered";
  }
  return "?";
}

struct FaultLogEntry {
  sim::SimTime t = 0;
  int node = -1;       // -1 = cluster-wide (e.g. shared-medium degradation)
  std::string kind;    // "node_crash", "stuck_dvs", "nic_degrade", ...
  FaultPhase phase = FaultPhase::Injected;
  std::string detail;  // e.g. "pinned at 600 MHz for 10 s"
};

}  // namespace pcd::telemetry
