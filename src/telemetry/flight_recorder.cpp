#include "telemetry/flight_recorder.hpp"

#include <bit>
#include <cstdio>

namespace pcd::telemetry {

namespace {

std::string escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += *s;
    }
  }
  return out;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t entries) {
  if (entries < 2) entries = 2;
  ring_.resize(std::bit_ceil(entries));
  mask_ = ring_.size() - 1;
}

std::vector<sim::EventProvenance> FlightRecorder::entries() const {
  std::vector<sim::EventProvenance> out;
  const std::uint64_t n = head_ < ring_.size() ? head_ : ring_.size();
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = head_ - n; i < head_; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i) & mask_]);
  }
  return out;
}

std::string FlightRecorder::dump_json(const std::string& reason,
                                      sim::SimTime now) const {
  std::string out = "{\"reason\":\"" + escape(reason.c_str()) + "\"";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                ",\"t_ns\":%llu,\"recorded\":%llu,\"retained\":%zu,\"state\":{",
                static_cast<unsigned long long>(now),
                static_cast<unsigned long long>(recorded()),
                static_cast<std::size_t>(head_ < ring_.size() ? head_ : ring_.size()));
  out += buf;
  bool first = true;
  for (const auto& [name, fn] : providers_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + fn();
  }
  out += "},\"events\":[";
  first = true;
  for (const sim::EventProvenance& p : entries()) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof buf,
                  "{\"index\":%llu,\"seq\":%llu,\"parent\":%llu,\"site\":\"%s\","
                  "\"t_ns\":%llu,\"rng_draws\":%llu}",
                  static_cast<unsigned long long>(p.index),
                  static_cast<unsigned long long>(p.seq),
                  static_cast<unsigned long long>(p.parent), escape(p.site).c_str(),
                  static_cast<unsigned long long>(p.t),
                  static_cast<unsigned long long>(p.rng_draws));
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace pcd::telemetry
