// Flight recorder: the simulator's black box.
//
// A fixed-size ring of the most recent event-provenance records plus a set
// of registered state-snapshot providers (RNG draw counts, power totals,
// engine queue state).  On a failure path — watchdog fallback, progress
// timeout, deadlock — the owner calls dump_json() and attaches the result
// to the fault report / RunResult, so the last N causal steps before the
// failure survive the crash.  Recording is O(1) per event and allocation
// free after construction; providers run only at dump time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/provenance.hpp"
#include "sim/time.hpp"

namespace pcd::telemetry {

class FlightRecorder {
 public:
  /// `entries` is rounded up to a power of two (minimum 2).
  explicit FlightRecorder(std::size_t entries = 1024);

  void record(const sim::EventProvenance& p) {
    ring_[static_cast<std::size_t>(head_) & mask_] = p;
    ++head_;
  }

  /// Registers a named state provider; `fn` must return a JSON value
  /// (object, number, or quoted string) and is invoked only by dump_json.
  void add_state(std::string name, std::function<std::string()> fn) {
    providers_.emplace_back(std::move(name), std::move(fn));
  }

  /// Structured JSON dump: reason, sim time, state snapshots, and the
  /// retained provenance records oldest-first.
  std::string dump_json(const std::string& reason, sim::SimTime now) const;

  std::uint64_t recorded() const { return head_; }       // total ever seen
  std::size_t capacity() const { return ring_.size(); }
  bool wrapped() const { return head_ > ring_.size(); }

  /// Retained records, oldest-first (at most capacity() of them).
  std::vector<sim::EventProvenance> entries() const;

 private:
  std::vector<sim::EventProvenance> ring_;
  std::size_t mask_;
  std::uint64_t head_ = 0;
  std::vector<std::pair<std::string, std::function<std::string()>>> providers_;
};

}  // namespace pcd::telemetry
