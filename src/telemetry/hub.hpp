// The telemetry hub: the one object threaded through the stack.
//
// Owns the metrics registry and the DVS decision log, and collects the
// stream of *completed* frequency transitions reported by the CPU model
// (the decision log records requests with their cause; the transition
// stream records what the hardware actually did, with the exact sim-time
// at which the new operating point became active).  Components hold a
// nullable `Hub*` — a null hub means telemetry off and near-zero cost.
#pragma once

#include <utility>
#include <vector>

#include "telemetry/decision_log.hpp"
#include "telemetry/fault_log.hpp"
#include "telemetry/metrics.hpp"

namespace pcd::telemetry {

/// One completed DVS transition as observed at the CPU.
struct DvsTransition {
  sim::SimTime t = 0;  // instant the new operating point became active
  int node = -1;
  int from_mhz = 0;
  int to_mhz = 0;
};

class Hub {
 public:
  Hub() {
    registry_.set_help("dvs_decisions_total",
                       "DVS frequency requests recorded by the policy layer, by cause");
    registry_.set_help("dvs_transitions_total",
                       "Completed DVS mode transitions observed at the CPU, by node");
    registry_.set_help("fault_events_total",
                       "Fault lifecycle events (inject/detect/recover), by phase");
  }
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  DecisionLog& decisions() { return decisions_; }
  const DecisionLog& decisions() const { return decisions_; }

  /// Called by the policy layer at request time (cause attribution).
  void record_decision(DvsDecision d) {
    registry_.counter("dvs_decisions_total", {{"cause", to_string(d.cause)}}).inc();
    decisions_.record(std::move(d));
  }

  /// Called by the CPU model when a transition stall completes.
  void record_transition(const DvsTransition& t) {
    registry_.counter("dvs_transitions_total", label("node", t.node)).inc();
    transitions_.push_back(t);
  }

  const std::vector<DvsTransition>& transitions() const { return transitions_; }

  /// Called by the fault layer (and the battery depletion path) so the
  /// inject -> detect -> recover chain lands next to the DVS events.
  void record_fault(FaultLogEntry e) {
    registry_.counter("fault_events_total", {{"phase", to_string(e.phase)}}).inc();
    faults_.push_back(std::move(e));
  }

  const std::vector<FaultLogEntry>& faults() const { return faults_; }

 private:
  MetricsRegistry registry_;
  DecisionLog decisions_;
  std::vector<DvsTransition> transitions_;
  std::vector<FaultLogEntry> faults_;
};

}  // namespace pcd::telemetry
