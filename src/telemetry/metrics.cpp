#include "telemetry/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcd::telemetry {

const char* to_string(MetricType t) {
  switch (t) {
    case MetricType::Counter: return "counter";
    case MetricType::Gauge: return "gauge";
    case MetricType::Histogram: return "histogram";
  }
  return "?";
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  if (upper_bounds_.empty()) {
    throw std::invalid_argument("histogram needs at least one bucket bound");
  }
  if (!std::is_sorted(upper_bounds_.begin(), upper_bounds_.end())) {
    throw std::invalid_argument("histogram bounds must be ascending");
  }
  cumulative_.assign(upper_bounds_.size(), 0);
}

void Histogram::observe(double v) {
  // Cumulative buckets: every bound >= v counts the observation.
  const auto it = std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  for (std::size_t i = it - upper_bounds_.begin(); i < cumulative_.size(); ++i) {
    ++cumulative_[i];
  }
  ++count_;
  sum_ += v;
}

std::string label_string(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [k, v] : sorted) {
    if (!out.empty()) out += ',';
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  return out;
}

Labels label(const std::string& key, const std::string& value) {
  return Labels{{key, value}};
}

Labels label(const std::string& key, std::int64_t value) {
  return Labels{{key, std::to_string(value)}};
}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                 MetricType type) {
  auto [it, inserted] = families_.try_emplace(name, Family{type, {}, {}, {}, {}});
  if (!inserted && it->second.type != type) {
    throw std::logic_error("metric '" + name + "' re-registered as " +
                           to_string(type) + ", was " + to_string(it->second.type));
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  Family& f = family(name, MetricType::Counter);
  const std::string key = label_string(labels);
  auto it = f.counters.find(key);
  if (it == f.counters.end()) {
    it = f.counters.emplace(key, std::make_unique<Counter>()).first;
    f.label_sets.emplace(key, std::move(labels));
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  Family& f = family(name, MetricType::Gauge);
  const std::string key = label_string(labels);
  auto it = f.gauges.find(key);
  if (it == f.gauges.end()) {
    it = f.gauges.emplace(key, std::make_unique<Gauge>()).first;
    f.label_sets.emplace(key, std::move(labels));
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name, Labels labels,
                                      std::vector<double> upper_bounds) {
  Family& f = family(name, MetricType::Histogram);
  const std::string key = label_string(labels);
  auto it = f.histograms.find(key);
  if (it == f.histograms.end()) {
    it = f.histograms.emplace(key, std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
    f.label_sets.emplace(key, std::move(labels));
  }
  return *it->second;
}

const std::string& MetricsRegistry::help(const std::string& name) const {
  static const std::string kEmpty;
  const auto it = help_.find(name);
  return it != help_.end() ? it->second : kEmpty;
}

std::vector<MetricSample> MetricsRegistry::samples() const {
  std::vector<MetricSample> out;
  for (const auto& [name, f] : families_) {
    auto base = [&](const std::string& key) {
      MetricSample s;
      s.name = name;
      s.type = f.type;
      s.help = help(name);
      s.labels = f.label_sets.at(key);
      return s;
    };
    for (const auto& [key, c] : f.counters) {
      MetricSample s = base(key);
      s.value = c->value();
      out.push_back(std::move(s));
    }
    for (const auto& [key, g] : f.gauges) {
      MetricSample s = base(key);
      s.value = g->value();
      out.push_back(std::move(s));
    }
    for (const auto& [key, h] : f.histograms) {
      MetricSample s = base(key);
      s.value = h->sum();
      s.bucket_bounds = h->upper_bounds();
      s.bucket_counts = h->bucket_counts();
      s.count = h->count();
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::size_t MetricsRegistry::series_count() const {
  std::size_t n = 0;
  for (const auto& [name, f] : families_) {
    n += f.counters.size() + f.gauges.size() + f.histograms.size();
  }
  return n;
}

}  // namespace pcd::telemetry
