// Label-aware metrics registry: counters, gauges, and fixed-bucket
// histograms, keyed by metric name + label set (e.g. node, rank, cause).
//
// Designed to be cheap enough to stay on in every run: instrument lookup
// (`counter()`, `gauge()`, `histogram()`) interns the (name, labels) pair
// once and returns a stable handle; hot paths hold the handle and pay one
// add per event.  The registry itself is engine-agnostic — simulation
// timestamps only enter through the decision log and sampler.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pcd::telemetry {

/// Label set as sorted key/value pairs ("node" -> "3").  Kept sorted so
/// {a=1,b=2} and {b=2,a=1} intern to the same instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket cumulative histogram (Prometheus semantics: bucket i counts
/// observations <= upper_bounds[i]; an implicit +Inf bucket is `count()`).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Cumulative count of observations <= upper_bounds()[i].
  const std::vector<std::int64_t>& bucket_counts() const { return cumulative_; }
  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> upper_bounds_;   // sorted ascending
  std::vector<std::int64_t> cumulative_;
  std::int64_t count_ = 0;
  double sum_ = 0;
};

enum class MetricType { Counter, Gauge, Histogram };

const char* to_string(MetricType t);

/// One exported time-point of one instrument (flattened registry view).
struct MetricSample {
  std::string name;
  Labels labels;
  MetricType type = MetricType::Counter;
  std::string help;  // family help text ("" = none registered)
  double value = 0;  // counter/gauge value; histogram sum
  // Histogram-only payload (empty otherwise).
  std::vector<double> bucket_bounds;
  std::vector<std::int64_t> bucket_counts;
  std::int64_t count = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Interns and returns the instrument for (name, labels).  Handles are
  /// stable for the registry's lifetime.  Registering the same name with a
  /// different instrument type throws std::logic_error.
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name, Labels labels,
                       std::vector<double> upper_bounds);

  /// Registers the family's help text (Prometheus `# HELP`).  Idempotent;
  /// may be called before or after the first instrument of the family.
  void set_help(const std::string& name, std::string help) {
    help_[name] = std::move(help);
  }
  /// The registered help text for a family ("" = none).
  const std::string& help(const std::string& name) const;

  /// Flattened snapshot of every instrument, families sorted by name and
  /// series sorted by label string — the exporters' input.
  std::vector<MetricSample> samples() const;

  std::size_t series_count() const;

 private:
  struct Family {
    MetricType type;
    // Keyed by the canonical label string; pointers stay valid on insert.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::map<std::string, Labels> label_sets;
  };

  Family& family(const std::string& name, MetricType type);

  std::map<std::string, Family> families_;
  std::map<std::string, std::string> help_;
};

/// Canonical `k="v",k2="v2"` form of a label set (sorted by key).
std::string label_string(const Labels& labels);

/// Convenience: a one-label set, with the common int-valued case.
Labels label(const std::string& key, const std::string& value);
Labels label(const std::string& key, std::int64_t value);

}  // namespace pcd::telemetry
