// Run-level telemetry switches (RunConfig::telemetry).
#pragma once

#include "telemetry/sampler.hpp"

namespace pcd::telemetry {

struct TelemetryOptions {
  /// Master switch: registry + decision log + transition stream + exports.
  bool enabled = false;
  /// Run the engine-driven time-series sampler (per-node power/freq/util).
  bool sample = true;
  SamplerParams sampler;
};

}  // namespace pcd::telemetry
