#include "telemetry/sampler.hpp"

#include <algorithm>

namespace pcd::telemetry {

TimeSeriesSampler::TimeSeriesSampler(sim::Engine& engine, int nodes,
                                     SamplerParams params, Probe probe,
                                     MetricsRegistry* registry, int node_base)
    : engine_(engine),
      params_(params),
      probe_(std::move(probe)),
      registry_(registry),
      last_busy_ns_(nodes, 0) {
  series_.reserve(nodes);
  for (int i = 0; i < nodes; ++i) series_.emplace_back(params_.capacity);
  if (registry_ != nullptr) {
    registry_->set_help("node_power_watts", "Instantaneous node power draw");
    registry_->set_help("node_freq_mhz", "CPU operating frequency at the last sample");
    registry_->set_help("node_utilization", "Busy fraction of the CPU over the sample period");
    for (int i = 0; i < nodes; ++i) {
      const Labels l = label("node", node_base + i);
      g_power_.push_back(&registry_->gauge("node_power_watts", l));
      g_freq_.push_back(&registry_->gauge("node_freq_mhz", l));
      g_util_.push_back(&registry_->gauge("node_utilization", l));
    }
  }
}

void TimeSeriesSampler::start() {
  if (running_) return;
  running_ = true;
  last_tick_ = engine_.now();
  for (int i = 0; i < nodes(); ++i) last_busy_ns_[i] = probe_(i).busy_weighted_ns;
  next_tick_ =
      engine_.schedule_every(sim::from_seconds(params_.period_s), [this] { tick(); },
                             "telemetry.sample");
}

void TimeSeriesSampler::stop() {
  if (!running_) return;
  running_ = false;
  engine_.cancel(next_tick_);
  next_tick_ = {};
}

void TimeSeriesSampler::tick() {
  ++ticks_;
  if (prelude_) prelude_();
  const sim::SimTime now = engine_.now();
  const double period_ns = static_cast<double>(now - last_tick_);
  for (int i = 0; i < nodes(); ++i) {
    const NodeProbe p = probe_(i);
    NodeSample s;
    s.t = now;
    s.freq_mhz = p.freq_mhz;
    s.utilization =
        period_ns > 0
            ? std::clamp((p.busy_weighted_ns - last_busy_ns_[i]) / period_ns, 0.0, 1.0)
            : 0.0;
    s.watts_cpu = p.watts_cpu;
    s.watts_memory = p.watts_memory;
    s.watts_disk = p.watts_disk;
    s.watts_nic = p.watts_nic;
    s.watts_other = p.watts_other;
    last_busy_ns_[i] = p.busy_weighted_ns;
    if (registry_ != nullptr) {
      g_power_[i]->set(s.watts_total());
      g_freq_[i]->set(s.freq_mhz);
      g_util_[i]->set(s.utilization);
    }
    series_[i].push(std::move(s));
  }
  last_tick_ = now;
}

}  // namespace pcd::telemetry
