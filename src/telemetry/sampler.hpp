// Engine-driven time-series sampler: periodically snapshots per-node power
// (total and per-component, Figure-1 style), current frequency, and
// /proc-style utilization into fixed-capacity ring buffers.
//
// The sampler only *reads* model state through a probe callback, so an
// enabled sampler never perturbs the simulation: delay and energy of a run
// are bit-identical with sampling on or off (verified in tests).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/engine.hpp"
#include "telemetry/metrics.hpp"

namespace pcd::telemetry {

/// Raw per-node readings the probe supplies each tick.
struct NodeProbe {
  int freq_mhz = 0;
  double busy_weighted_ns = 0;  // cumulative /proc-style busy time
  double watts_cpu = 0;
  double watts_memory = 0;
  double watts_disk = 0;
  double watts_nic = 0;
  double watts_other = 0;
};

/// One stored sample (probe + derived utilization + timestamp).
struct NodeSample {
  sim::SimTime t = 0;
  int freq_mhz = 0;
  double utilization = 0;  // busy fraction over the elapsed sample period
  double watts_cpu = 0;
  double watts_memory = 0;
  double watts_disk = 0;
  double watts_nic = 0;
  double watts_other = 0;

  double watts_total() const {
    return watts_cpu + watts_memory + watts_disk + watts_nic + watts_other;
  }
};

/// Fixed-capacity ring buffer; overwrites the oldest entry when full.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : capacity_(capacity) {}

  void push(T v) {
    if (data_.size() < capacity_) {
      data_.push_back(std::move(v));
    } else {
      data_[head_] = std::move(v);
      head_ = (head_ + 1) % capacity_;
      ++overwritten_;
    }
  }

  std::size_t size() const { return data_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::int64_t overwritten() const { return overwritten_; }

  /// Contents oldest-first.
  std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(data_.size());
    for (std::size_t i = 0; i < data_.size(); ++i) {
      out.push_back(data_[(head_ + i) % data_.size()]);
    }
    return out;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // oldest element once full
  std::int64_t overwritten_ = 0;
  std::vector<T> data_;
};

struct SamplerParams {
  double period_s = 0.050;       // sampling interval
  std::size_t capacity = 16384;  // per-node ring capacity
};

class TimeSeriesSampler {
 public:
  using Probe = sim::InlineFunction<NodeProbe(int node)>;

  /// `registry` is optional; when given, each tick also refreshes the
  /// per-node gauges node_power_watts / node_freq_mhz / node_utilization.
  /// `node_base` offsets the gauge "node" labels (and nothing else): a
  /// sharded run gives shard s's sampler node_base = plan.first[s], so the
  /// merged registry carries machine-wide node ids.
  TimeSeriesSampler(sim::Engine& engine, int nodes, SamplerParams params,
                    Probe probe, MetricsRegistry* registry = nullptr,
                    int node_base = 0);
  ~TimeSeriesSampler() { stop(); }

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

  /// Optional hook run once at the top of every tick, before any per-node
  /// probe.  The runner points it at the cluster arena's batch refresh
  /// (power::NodeStateArena::refresh_all) so a tick costs one dense sweep
  /// plus N cached reads instead of N scalar refreshes.
  void set_tick_prelude(sim::InlineFunction<void()> prelude) {
    prelude_ = std::move(prelude);
  }

  int nodes() const { return static_cast<int>(series_.size()); }
  std::int64_t ticks() const { return ticks_; }
  const SamplerParams& params() const { return params_; }

  /// Samples for one node, oldest-first.
  std::vector<NodeSample> samples(int node) const { return series_.at(node).to_vector(); }
  std::int64_t overwritten(int node) const { return series_.at(node).overwritten(); }

 private:
  void tick();

  sim::Engine& engine_;
  SamplerParams params_;
  Probe probe_;
  sim::InlineFunction<void()> prelude_;
  MetricsRegistry* registry_;
  std::vector<RingBuffer<NodeSample>> series_;
  std::vector<double> last_busy_ns_;
  std::vector<Gauge*> g_power_, g_freq_, g_util_;
  sim::SimTime last_tick_ = 0;
  bool running_ = false;
  std::int64_t ticks_ = 0;
  sim::EventId next_tick_;  // persistent periodic timer; invalid when stopped
};

}  // namespace pcd::telemetry
