#include "telemetry/snapshot.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace pcd::telemetry {

double TelemetrySnapshot::metric_value(const std::string& name, const Labels& labels,
                                       double fallback) const {
  const std::string key = label_string(labels);
  for (const auto& s : metrics) {
    if (s.name == name && label_string(s.labels) == key) return s.value;
  }
  return fallback;
}

TelemetrySnapshot make_snapshot(const Hub& hub, const TimeSeriesSampler* sampler) {
  TelemetrySnapshot snap;
  snap.metrics = hub.registry().samples();
  snap.decisions = hub.decisions().entries();
  snap.decisions_dropped = hub.decisions().dropped();
  snap.transitions = hub.transitions();
  snap.faults = hub.faults();
  if (sampler != nullptr) {
    snap.sample_period_s = sampler->params().period_s;
    snap.series.reserve(sampler->nodes());
    for (int i = 0; i < sampler->nodes(); ++i) {
      snap.series.push_back(sampler->samples(i));
    }
  }
  return snap;
}

TelemetrySnapshot merge_snapshots(std::vector<TelemetrySnapshot> parts) {
  if (parts.empty()) return {};
  if (parts.size() == 1) return std::move(parts.front());

  TelemetrySnapshot out;

  // Metrics: group series across parts by (name, canonical label string),
  // in the same (name, label_string) order MetricsRegistry::samples()
  // emits, so the merged list is byte-compatible with a 1-shard registry.
  std::map<std::pair<std::string, std::string>, MetricSample> merged;
  for (const auto& part : parts) {
    for (const auto& s : part.metrics) {
      const auto key = std::make_pair(s.name, label_string(s.labels));
      auto it = merged.find(key);
      if (it == merged.end()) {
        merged.emplace(key, s);
        continue;
      }
      MetricSample& m = it->second;
      if (m.help.empty()) m.help = s.help;
      switch (s.type) {
        case MetricType::Counter:
          // Per-shard checkpoint services sweep the same global cadence:
          // every shard counts the same sweep once, so summing would
          // multiply by the shard count.
          if (s.name == "checkpoints_total") {
            m.value = std::max(m.value, s.value);
          } else {
            m.value += s.value;
          }
          break;
        case MetricType::Gauge:
          m.value = s.value;  // collisions keep the last part's reading
          break;
        case MetricType::Histogram:
          m.value += s.value;
          m.count += s.count;
          for (std::size_t b = 0;
               b < m.bucket_counts.size() && b < s.bucket_counts.size(); ++b) {
            m.bucket_counts[b] += s.bucket_counts[b];
          }
          break;
      }
    }
  }
  out.metrics.reserve(merged.size());
  for (auto& [key, sample] : merged) out.metrics.push_back(std::move(sample));

  // Event logs: parts arrive in shard order with per-part entries already
  // in posting order, so a stable sort by time realizes the global
  // (time, source shard, posting order) order of the barrier drain.
  for (auto& part : parts) {
    out.decisions.insert(out.decisions.end(), part.decisions.begin(),
                         part.decisions.end());
    out.decisions_dropped += part.decisions_dropped;
    out.transitions.insert(out.transitions.end(), part.transitions.begin(),
                           part.transitions.end());
    out.faults.insert(out.faults.end(), part.faults.begin(), part.faults.end());
    for (auto& s : part.series) out.series.push_back(std::move(s));
    if (out.sample_period_s == 0) out.sample_period_s = part.sample_period_s;
  }
  std::stable_sort(out.decisions.begin(), out.decisions.end(),
                   [](const DvsDecision& a, const DvsDecision& b) { return a.t < b.t; });
  std::stable_sort(
      out.transitions.begin(), out.transitions.end(),
      [](const DvsTransition& a, const DvsTransition& b) { return a.t < b.t; });
  std::stable_sort(
      out.faults.begin(), out.faults.end(),
      [](const FaultLogEntry& a, const FaultLogEntry& b) { return a.t < b.t; });
  return out;
}

}  // namespace pcd::telemetry
