#include "telemetry/snapshot.hpp"

namespace pcd::telemetry {

double TelemetrySnapshot::metric_value(const std::string& name, const Labels& labels,
                                       double fallback) const {
  const std::string key = label_string(labels);
  for (const auto& s : metrics) {
    if (s.name == name && label_string(s.labels) == key) return s.value;
  }
  return fallback;
}

TelemetrySnapshot make_snapshot(const Hub& hub, const TimeSeriesSampler* sampler) {
  TelemetrySnapshot snap;
  snap.metrics = hub.registry().samples();
  snap.decisions = hub.decisions().entries();
  snap.decisions_dropped = hub.decisions().dropped();
  snap.transitions = hub.transitions();
  snap.faults = hub.faults();
  if (sampler != nullptr) {
    snap.sample_period_s = sampler->params().period_s;
    snap.series.reserve(sampler->nodes());
    for (int i = 0; i < sampler->nodes(); ++i) {
      snap.series.push_back(sampler->samples(i));
    }
  }
  return snap;
}

}  // namespace pcd::telemetry
