// TelemetrySnapshot: the portable, run-scoped copy of everything the
// telemetry layer collected — attached to core::RunResult so callers can
// inspect or export after the engine and cluster are gone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/decision_log.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sampler.hpp"

namespace pcd::telemetry {

struct TelemetrySnapshot {
  /// Flattened registry at run end.
  std::vector<MetricSample> metrics;
  /// DVS decision log (requests with cause attribution).
  std::vector<DvsDecision> decisions;
  std::int64_t decisions_dropped = 0;
  /// Completed transitions as observed at the CPUs.
  std::vector<DvsTransition> transitions;
  /// Fault lifecycle events (inject/clear/detect/recover), time-ordered.
  std::vector<FaultLogEntry> faults;
  /// Per-node sampler series, oldest-first (empty when sampling was off).
  std::vector<std::vector<NodeSample>> series;
  double sample_period_s = 0;
  /// Chrome trace-event JSON (tracer scopes + DVS instants + power
  /// counters); empty when no trace was collected.
  std::string chrome_trace_json;

  /// Shard provenance of a sharded run (empty on a single-engine run):
  /// shard_metrics[s] is shard s's registry at run end and rank_shards[r]
  /// the shard that owned rank r.  Everything above is merged shard-free —
  /// byte-identical at every shard count — so the shard dimension only
  /// surfaces through the explicitly per-shard views (to_prometheus_sharded,
  /// to_chrome_json with shard grouping).
  std::vector<std::vector<MetricSample>> shard_metrics;
  std::vector<int> rank_shards;
  /// Process-per-shard rendering of chrome_trace_json (rank tracks grouped
  /// under one Perfetto process per shard); empty unless sharded + traced.
  std::string chrome_trace_sharded_json;

  /// Value of a counter/gauge series, or `fallback` if absent.
  double metric_value(const std::string& name, const Labels& labels = {},
                      double fallback = -1) const;
};

/// Copies hub (and optionally sampler) state into a snapshot.
TelemetrySnapshot make_snapshot(const Hub& hub,
                                const TimeSeriesSampler* sampler = nullptr);

/// Merges per-shard snapshots of one sharded run (parts in shard order,
/// optionally followed by the driver-side run-level part) into a single
/// snapshot indistinguishable from a 1-shard collection (DESIGN.md §3.14):
///   - metrics: series grouped by (name, labels) and re-sorted the way
///     MetricsRegistry::samples() sorts.  Counters sum across parts —
///     except "checkpoints_total", where per-shard checkpoint services
///     sweep in lockstep and each counts the same global sweep, so the
///     merge takes the max.  Gauges and histogram series are disjoint by
///     construction (per-node labels / driver-only); a gauge seen twice
///     keeps the last part's value, histograms sum buckets.
///   - decisions / transitions / faults: stable-merged by (t, part order,
///     posting order), matching single-engine event dispatch order.
///   - series: concatenated in part order (= global node order).
TelemetrySnapshot merge_snapshots(std::vector<TelemetrySnapshot> parts);

}  // namespace pcd::telemetry
