// TelemetrySnapshot: the portable, run-scoped copy of everything the
// telemetry layer collected — attached to core::RunResult so callers can
// inspect or export after the engine and cluster are gone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/decision_log.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sampler.hpp"

namespace pcd::telemetry {

struct TelemetrySnapshot {
  /// Flattened registry at run end.
  std::vector<MetricSample> metrics;
  /// DVS decision log (requests with cause attribution).
  std::vector<DvsDecision> decisions;
  std::int64_t decisions_dropped = 0;
  /// Completed transitions as observed at the CPUs.
  std::vector<DvsTransition> transitions;
  /// Fault lifecycle events (inject/clear/detect/recover), time-ordered.
  std::vector<FaultLogEntry> faults;
  /// Per-node sampler series, oldest-first (empty when sampling was off).
  std::vector<std::vector<NodeSample>> series;
  double sample_period_s = 0;
  /// Chrome trace-event JSON (tracer scopes + DVS instants + power
  /// counters); empty when no trace was collected.
  std::string chrome_trace_json;

  /// Value of a counter/gauge series, or `fallback` if absent.
  double metric_value(const std::string& name, const Labels& labels = {},
                      double fallback = -1) const;
};

/// Copies hub (and optionally sampler) state into a snapshot.
TelemetrySnapshot make_snapshot(const Hub& hub,
                                const TimeSeriesSampler* sampler = nullptr);

}  // namespace pcd::telemetry
