#include "trace/export.hpp"

#include <cmath>
#include <cstdio>

namespace pcd::trace {

std::string export_csv(const Tracer& tracer) {
  std::string out = "rank,category,label,begin_ns,end_ns,duration_ns,peer,bytes\n";
  char line[256];
  for (int rank = 0; rank < tracer.ranks(); ++rank) {
    for (const Record& r : tracer.records(rank)) {
      std::snprintf(line, sizeof line, "%d,%s,%s,%lld,%lld,%lld,%d,%lld\n", rank,
                    to_string(r.cat), r.label,
                    static_cast<long long>(r.begin), static_cast<long long>(r.end),
                    static_cast<long long>(r.end - r.begin), r.peer,
                    static_cast<long long>(r.bytes));
      out += line;
    }
  }
  return out;
}

double DurationHistogram::typical_us() const {
  if (total == 0) return 0;
  int seen = 0;
  for (const auto& [bucket, count] : bucket_counts) {
    seen += count;
    if (2 * seen >= total) return std::exp2(bucket) * 1.5;  // bucket midpoint
  }
  return 0;
}

DurationHistogram histogram(const Tracer& tracer, int rank, Cat cat) {
  DurationHistogram h;
  for (const Record& r : tracer.records(rank)) {
    if (r.cat != cat) continue;
    const double us = static_cast<double>(r.end - r.begin) / 1000.0;
    const int bucket = us <= 1.0 ? 0 : static_cast<int>(std::floor(std::log2(us)));
    ++h.bucket_counts[bucket];
    ++h.total;
    h.total_s += us * 1e-6;
  }
  return h;
}

}  // namespace pcd::trace
