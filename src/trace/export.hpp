// Trace export: CLOG/SLOG-style flat event dumps (the paper generated
// MPICH CLOG files and visualized them with Jumpshot; we export CSV that
// external tooling can plot the same way) plus summary histograms.
#pragma once

#include <map>
#include <string>

#include "trace/tracer.hpp"

namespace pcd::trace {

/// One CSV line per record:
///   rank,category,label,begin_ns,end_ns,duration_ns,peer,bytes
std::string export_csv(const Tracer& tracer);

/// Duration histogram of one rank's records in a category (bucketed by
/// powers of two microseconds); used to characterize message granularity
/// (the paper's "execution time of each cycle is relatively small" check).
struct DurationHistogram {
  std::map<int, int> bucket_counts;  // bucket k: [2^k, 2^(k+1)) microseconds
  int total = 0;
  double total_s = 0;

  /// Median-ish bucket midpoint in microseconds (0 if empty).
  double typical_us() const;
};

DurationHistogram histogram(const Tracer& tracer, int rank, Cat cat);

}  // namespace pcd::trace
