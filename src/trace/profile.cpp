#include "trace/profile.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>

namespace pcd::trace {

const char* to_string(Cat c) {
  switch (c) {
    case Cat::Compute: return "Compute";
    case Cat::MemStall: return "MemStall";
    case Cat::Send: return "Send";
    case Cat::Recv: return "Recv";
    case Cat::Wait: return "Wait";
    case Cat::Collective: return "Collective";
  }
  return "?";
}

bool is_comm(Cat c) {
  return c == Cat::Send || c == Cat::Recv || c == Cat::Wait || c == Cat::Collective;
}

double TraceProfile::total_comm_s() const {
  double s = 0;
  for (const auto& r : ranks) s += r.comm_s();
  return s;
}

double TraceProfile::total_comp_s() const {
  double s = 0;
  for (const auto& r : ranks) s += r.comp_s();
  return s;
}

double TraceProfile::comm_to_comp() const {
  const double comp = total_comp_s();
  return comp > 0 ? total_comm_s() / comp : 0.0;
}

double TraceProfile::imbalance() const {
  if (ranks.empty()) return 0;
  double sum = 0;
  for (const auto& r : ranks) sum += r.comp_s();
  const double mean = sum / ranks.size();
  if (mean <= 0) return 0;
  double worst = 0;
  for (const auto& r : ranks) {
    worst = std::max(worst, std::abs(r.comp_s() - mean) / mean);
  }
  return worst;
}

TraceProfile analyze(const Tracer& tracer) {
  TraceProfile p;
  p.ranks.resize(tracer.ranks());
  for (int rank = 0; rank < tracer.ranks(); ++rank) {
    RankProfile& rp = p.ranks[rank];
    for (const Record& rec : tracer.records(rank)) {
      const double dur = sim::to_seconds(rec.end - rec.begin);
      rp.energy_j += rec.energy_j;
      switch (rec.cat) {
        case Cat::Compute: rp.compute_s += dur; break;
        case Cat::MemStall: rp.memstall_s += dur; break;
        case Cat::Send: rp.send_s += dur; ++rp.sends; rp.bytes_sent += rec.bytes; break;
        case Cat::Recv: rp.recv_s += dur; ++rp.recvs; rp.bytes_received += rec.bytes; break;
        case Cat::Wait: rp.wait_s += dur; ++rp.waits; break;
        case Cat::Collective: rp.collective_s += dur; ++rp.collectives; break;
      }
    }
  }
  if (tracer.ranks() > 0) {
    const auto& marks = tracer.iteration_marks(0);
    if (marks.size() >= 2) {
      p.iterations = static_cast<int>(marks.size()) - 1;
      p.mean_iteration_s = sim::to_seconds(marks.back() - marks.front()) / p.iterations;
    }
  }
  return p;
}

namespace {

char glyph(Cat c) {
  switch (c) {
    case Cat::Compute: return '#';
    case Cat::MemStall: return 'm';
    case Cat::Send: return 's';
    case Cat::Recv: return 'r';
    case Cat::Wait: return 'w';
    case Cat::Collective: return 'A';
  }
  return '?';
}

}  // namespace

std::string render_timeline(const Tracer& tracer, int width) {
  sim::SimTime t0 = std::numeric_limits<sim::SimTime>::max();
  sim::SimTime t1 = std::numeric_limits<sim::SimTime>::min();
  for (int rank = 0; rank < tracer.ranks(); ++rank) {
    for (const Record& rec : tracer.records(rank)) {
      t0 = std::min(t0, rec.begin);
      t1 = std::max(t1, rec.end);
    }
  }
  if (t0 >= t1) return "(empty trace)\n";

  std::string out;
  const double span = static_cast<double>(t1 - t0);
  for (int rank = 0; rank < tracer.ranks(); ++rank) {
    // Per column, keep the category with the largest time share.
    std::vector<std::array<double, 6>> share(width, std::array<double, 6>{});
    for (const Record& rec : tracer.records(rank)) {
      const double b = (rec.begin - t0) / span * width;
      const double e = (rec.end - t0) / span * width;
      for (int col = std::max(0, static_cast<int>(b));
           col < std::min(width, static_cast<int>(std::ceil(e))); ++col) {
        const double lo = std::max(b, static_cast<double>(col));
        const double hi = std::min(e, static_cast<double>(col + 1));
        if (hi > lo) share[col][static_cast<int>(rec.cat)] += hi - lo;
      }
    }
    char line[16];
    std::snprintf(line, sizeof line, "r%-3d |", rank);
    out += line;
    for (int col = 0; col < width; ++col) {
      int best = -1;
      double best_v = 0;
      for (int c = 0; c < 6; ++c) {
        if (share[col][c] > best_v) { best_v = share[col][c]; best = c; }
      }
      out += best < 0 ? '.' : glyph(static_cast<Cat>(best));
    }
    out += "|\n";
  }
  out += "     legend: #=compute m=memstall s=send r=recv w=wait A=collective .=idle\n";
  return out;
}

std::string render_profile(const TraceProfile& p) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "%-5s %10s %10s %10s %10s %10s %8s %8s %11s %11s %9s\n", "rank",
                "comp(s)", "mem(s)", "send(s)", "recv(s)", "wait(s)", "coll(s)",
                "#msgs", "sent(B)", "recv(B)", "comm/comp");
  out += line;
  for (std::size_t i = 0; i < p.ranks.size(); ++i) {
    const RankProfile& r = p.ranks[i];
    std::snprintf(line, sizeof line,
                  "%-5zu %10.2f %10.2f %10.2f %10.2f %10.2f %8.2f %8d %11lld %11lld %9.2f\n",
                  i, r.compute_s, r.memstall_s, r.send_s, r.recv_s, r.wait_s,
                  r.collective_s, r.sends + r.recvs,
                  static_cast<long long>(r.bytes_sent),
                  static_cast<long long>(r.bytes_received), r.comm_to_comp());
    out += line;
  }
  std::snprintf(line, sizeof line,
                "total comm/comp = %.2f, mean iteration = %.4f s (%d iterations), "
                "imbalance = %.1f%%\n",
                p.comm_to_comp(), p.mean_iteration_s, p.iterations,
                p.imbalance() * 100.0);
  out += line;
  return out;
}

}  // namespace pcd::trace
