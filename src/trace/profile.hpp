// Profile extraction and text rendering for traces (Figures 9 and 12).
#pragma once

#include <string>
#include <vector>

#include "trace/tracer.hpp"

namespace pcd::trace {

/// Aggregated view of one rank's trace.
struct RankProfile {
  double compute_s = 0;   // on-chip compute
  double memstall_s = 0;  // memory-bound phases
  double send_s = 0;
  double recv_s = 0;
  double wait_s = 0;
  double collective_s = 0;
  int sends = 0;
  int recvs = 0;
  int waits = 0;
  int collectives = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;
  // Attributed energy over the rank's scopes; zero unless the trace was
  // collected with an energy probe attached (RunConfig::profile).
  double energy_j = 0;

  double comp_s() const { return compute_s + memstall_s; }
  double comm_s() const { return send_s + recv_s + wait_s + collective_s; }
  /// The paper's communication-to-computation ratio.
  double comm_to_comp() const { return comp_s() > 0 ? comm_s() / comp_s() : 0.0; }
};

struct TraceProfile {
  std::vector<RankProfile> ranks;
  double mean_iteration_s = 0;  // from iteration marks (rank 0)
  int iterations = 0;

  double total_comm_s() const;
  double total_comp_s() const;
  double comm_to_comp() const;
  /// Max relative deviation of per-rank busy (comp) time from the mean —
  /// the "workload is almost balanced across all nodes" check for FT.
  double imbalance() const;
};

TraceProfile analyze(const Tracer& tracer);

/// Jumpshot-like ASCII timeline: one row per rank, bucketed into `width`
/// columns, each column showing the dominant category in that time slice.
/// Legend: '#' compute, 'm' memory, 's' send, 'r' recv, 'w' wait,
/// 'A' collective, '.' idle.
std::string render_timeline(const Tracer& tracer, int width = 100);

/// Human-readable per-rank summary table (the observations drawn from the
/// paper's Jumpshot screenshots).
std::string render_profile(const TraceProfile& profile);

}  // namespace pcd::trace
