// MPE-style event tracing (paper §4.2/§5.3: profiles generated with an
// instrumented MPICH, visualized with Jumpshot).
//
// Ranks log begin/end scopes per category; the profile analyzer derives
// the observations the paper draws from Figures 9 and 12 — per-rank
// communication-to-computation ratios, dominant event types, cycle times,
// and balance across nodes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace pcd::trace {

enum class Cat : std::uint8_t {
  Compute,     // on-chip compute phase
  MemStall,    // memory-bound phase
  Send,        // point-to-point send (incl. protocol processing)
  Recv,        // point-to-point receive
  Wait,        // blocked in MPI_Wait / request completion
  Collective,  // alltoall / allreduce / barrier / ...
};

const char* to_string(Cat c);
bool is_comm(Cat c);

struct Record {
  Cat cat;
  sim::SimTime begin = 0;
  sim::SimTime end = 0;
  int peer = -1;          // other rank for p2p, -1 otherwise
  std::int64_t bytes = 0;
  const char* label = ""; // e.g. "mpi_alltoall"
  // Energy attribution (filled only when a Probe is attached): node energy,
  // its CPU component, and the frequency-sensitive cycles retired inside
  // this scope.
  double energy_j = 0;
  double cpu_energy_j = 0;
  double cycles = 0;
};

/// One matched point-to-point message: the causal edge the cross-rank
/// critical-path analysis walks.  Collectives decompose into their
/// constituent p2p messages, so collective causality is captured too.
struct MessageEvent {
  int src = -1;
  int dst = -1;
  int tag = 0;
  std::int64_t bytes = 0;
  sim::SimTime t_send = 0;       // sender entered the send protocol
  sim::SimTime t_delivered = 0;  // last byte arrived at the receiver
  sim::SimTime t_recv_done = 0;  // receiver finished protocol processing
  bool complete() const { return t_recv_done > 0; }
};

class Tracer {
 public:
  Tracer(sim::Engine& engine, int ranks, bool enabled = true)
      : engine_(engine), records_(ranks), iter_marks_(ranks), comm_depth_(ranks, 0),
        enabled_(enabled) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool e) { enabled_ = e; }
  int ranks() const { return static_cast<int>(records_.size()); }

  /// Point-in-time energy reading for one rank's node.  The profiler
  /// differences a sample pair across each scope to attribute joules and
  /// frequency-sensitive cycles; sampling must be a pure read of the power
  /// model (no side effects on simulation state).
  struct EnergySample {
    double energy_j = 0;  // total node energy so far
    double cpu_j = 0;     // CPU component of that energy
    double cycles = 0;    // retired frequency-sensitive cycles
  };
  class Probe {
   public:
    virtual ~Probe() = default;
    virtual EnergySample sample(int rank) = 0;
  };
  /// Attaches (or detaches, with nullptr) the energy probe.  Without a
  /// probe, scopes record zero energy and cost nothing extra.
  void set_probe(Probe* probe) { probe_ = probe; }
  Probe* probe() const { return probe_; }

  /// RAII scope; records on destruction.  Nested *communication* scopes are
  /// suppressed (only the outermost Send/Recv/Wait/Collective records), so
  /// p2p messages inside a collective don't double-count comm time.
  class Scope {
   public:
    Scope(Tracer& tracer, int rank, Cat cat, const char* label, int peer,
          std::int64_t bytes)
        : tracer_(&tracer), rank_(rank) {
      if (!tracer_->enabled_) return;
      if (is_comm(cat)) {
        counted_comm_ = true;
        if (tracer_->comm_depth_[rank]++ > 0) return;  // nested comm: suppress
      }
      rec_.cat = cat;
      rec_.begin = tracer_->engine_.now();
      rec_.peer = peer;
      rec_.bytes = bytes;
      rec_.label = label;
      active_ = true;
      if (tracer_->probe_ != nullptr) begin_sample_ = tracer_->probe_->sample(rank);
    }
    ~Scope() { close(); }
    // The moved-from scope must drop its flags as well as its tracer
    // pointer: close() currently short-circuits on the null tracer, but a
    // stale counted_comm_/active_ would double-decrement comm_depth_ the
    // moment close() grew another early-out path.
    Scope(Scope&& o) noexcept
        : tracer_(std::exchange(o.tracer_, nullptr)), rank_(o.rank_), rec_(o.rec_),
          begin_sample_(o.begin_sample_),
          active_(std::exchange(o.active_, false)),
          counted_comm_(std::exchange(o.counted_comm_, false)) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope& operator=(Scope&&) = delete;

    /// Patches the byte count after the fact (a recv learns its size only
    /// once the matching send arrives).  No-op on suppressed/moved scopes.
    void set_bytes(std::int64_t bytes) {
      if (active_) rec_.bytes = bytes;
    }

   private:
    void close() {
      if (tracer_ == nullptr) return;
      if (counted_comm_) --tracer_->comm_depth_[rank_];
      if (active_) {
        rec_.end = tracer_->engine_.now();
        if (tracer_->probe_ != nullptr) {
          const EnergySample s = tracer_->probe_->sample(rank_);
          rec_.energy_j = s.energy_j - begin_sample_.energy_j;
          rec_.cpu_energy_j = s.cpu_j - begin_sample_.cpu_j;
          rec_.cycles = s.cycles - begin_sample_.cycles;
        }
        tracer_->records_[rank_].push_back(rec_);
      }
      tracer_ = nullptr;
    }

    Tracer* tracer_;
    int rank_;
    Record rec_{};
    EnergySample begin_sample_{};
    bool active_ = false;
    bool counted_comm_ = false;

    friend class Tracer;
  };

  Scope scope(int rank, Cat cat, const char* label = "", int peer = -1,
              std::int64_t bytes = 0) {
    return Scope(*this, rank, cat, label, peer, bytes);
  }

  /// Marks an outer-iteration boundary on a rank.
  void mark_iteration(int rank) {
    if (enabled_) iter_marks_[rank].push_back(engine_.now());
  }

  // ---- message log (send→recv causal edges) ----
  //
  // The MPI layer reports every p2p message as it moves through the
  // protocol; the log is pure recording and never feeds back into the
  // simulation.  Returns -1 (and the updates no-op) when tracing is off.

  std::int64_t log_send(int src, int dst, int tag, std::int64_t bytes) {
    if (!enabled_) return -1;
    messages_.push_back({src, dst, tag, bytes, engine_.now(), 0, 0});
    return static_cast<std::int64_t>(messages_.size()) - 1;
  }
  /// Like log_send but with an explicit send timestamp: a cross-shard
  /// message is logged by the *receiving* shard's tracer when the envelope
  /// arrives, carrying the sender-side protocol-entry time captured on the
  /// sending shard.
  std::int64_t log_send_at(int src, int dst, int tag, std::int64_t bytes,
                           sim::SimTime t_send) {
    if (!enabled_) return -1;
    messages_.push_back({src, dst, tag, bytes, t_send, 0, 0});
    return static_cast<std::int64_t>(messages_.size()) - 1;
  }
  void log_delivered(std::int64_t seq) {
    if (seq >= 0) messages_[static_cast<std::size_t>(seq)].t_delivered = engine_.now();
  }
  void log_recv_done(std::int64_t seq) {
    if (seq >= 0) messages_[static_cast<std::size_t>(seq)].t_recv_done = engine_.now();
  }
  const std::vector<MessageEvent>& messages() const { return messages_; }

  const std::vector<Record>& records(int rank) const { return records_.at(rank); }
  const std::vector<sim::SimTime>& iteration_marks(int rank) const {
    return iter_marks_.at(rank);
  }

  void clear() {
    for (auto& r : records_) r.clear();
    for (auto& m : iter_marks_) m.clear();
    messages_.clear();
  }

  /// Folds a per-shard tracer into this one (the end-of-run merge of a
  /// sharded run, DESIGN.md §3.14).  Both tracers are sized to the total
  /// rank count and each shard's tracer only ever writes its own ranks'
  /// rows, so per-rank records and iteration marks concatenate without
  /// reordering; messages concatenate in shard order — call
  /// sort_messages() once after the last absorb to restore the global
  /// (t_send, source shard, posting order) order.
  void absorb(const Tracer& other) {
    const std::size_t n = std::min(records_.size(), other.records_.size());
    for (std::size_t r = 0; r < n; ++r) {
      records_[r].insert(records_[r].end(), other.records_[r].begin(),
                         other.records_[r].end());
      iter_marks_[r].insert(iter_marks_[r].end(), other.iter_marks_[r].begin(),
                            other.iter_marks_[r].end());
    }
    messages_.insert(messages_.end(), other.messages_.begin(),
                     other.messages_.end());
  }

  /// Stable-sorts the message log by send time (absorb order breaks ties),
  /// so merged cross-shard edges interleave deterministically.
  void sort_messages() {
    std::stable_sort(messages_.begin(), messages_.end(),
                     [](const MessageEvent& a, const MessageEvent& b) {
                       return a.t_send < b.t_send;
                     });
  }

 private:
  sim::Engine& engine_;
  std::vector<std::vector<Record>> records_;
  std::vector<std::vector<sim::SimTime>> iter_marks_;
  std::vector<MessageEvent> messages_;
  std::vector<int> comm_depth_;
  bool enabled_;
  Probe* probe_ = nullptr;
};

}  // namespace pcd::trace
