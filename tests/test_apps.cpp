// Tests for the workload framework and the NPB replicas' structural
// properties (the trace observations the paper's scheduling relies on).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/npb.hpp"
#include "core/runner.hpp"
#include "trace/profile.hpp"

using namespace pcd;

TEST(Workloads, RegistryHasAllEightNpbCodes) {
  const auto all = apps::all_npb(0.1);
  ASSERT_EQ(all.size(), 8u);
  const char* expected[] = {"BT.C.9", "CG.C.8", "EP.C.8", "FT.C.8",
                            "IS.C.8", "LU.C.8", "MG.C.8", "SP.C.9"};
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].name, expected[i]);
    EXPECT_TRUE(all[i].make_rank != nullptr);
    EXPECT_FALSE(all[i].description.empty());
  }
}

TEST(Workloads, PaperRankCounts) {
  EXPECT_EQ(apps::make_bt(1).ranks, 9);   // BT.C.9
  EXPECT_EQ(apps::make_sp(1).ranks, 9);   // SP.C.9
  EXPECT_EQ(apps::make_ft(1).ranks, 8);
  EXPECT_EQ(apps::make_cg(1).ranks, 8);
  EXPECT_EQ(apps::make_swim(1).ranks, 1);
  EXPECT_EQ(apps::make_micro_comm_bound(1).ranks, 2);
}

TEST(Workloads, LookupByNameIsCaseInsensitiveAndPrefixed) {
  EXPECT_TRUE(apps::npb_by_name("FT").has_value());
  EXPECT_TRUE(apps::npb_by_name("ft").has_value());
  EXPECT_TRUE(apps::npb_by_name("Ft.C.8").has_value());
  EXPECT_TRUE(apps::npb_by_name("swim").has_value());
  EXPECT_FALSE(apps::npb_by_name("ZZ").has_value());
  EXPECT_EQ(apps::npb_by_name("cg")->name, "CG.C.8");
}

namespace {

core::RunResult run_traced(const apps::Workload& w, double /*scale_unused*/ = 0) {
  core::RunConfig cfg;
  cfg.collect_trace = true;
  return core::run_workload(w, cfg);
}

}  // namespace

TEST(Workloads, AllCodesRunToCompletionAtTinyScale) {
  for (const auto& w : apps::all_npb(0.02)) {
    core::RunConfig cfg;
    const auto r = core::run_workload(w, cfg);
    EXPECT_GT(r.delay_s, 0) << w.name;
    EXPECT_GT(r.energy_j, 0) << w.name;
  }
}

TEST(Workloads, FtMatchesFigure9Observations) {
  const auto r = run_traced(apps::make_ft(0.15));
  const auto& p = *r.profile;
  // 1. communication bound, comm:comp about 2:1.
  EXPECT_GT(p.comm_to_comp(), 1.3);
  EXPECT_LT(p.comm_to_comp(), 2.8);
  // 2. alltoall dominates communication.
  double coll = 0, comm = 0;
  for (const auto& rp : p.ranks) {
    coll += rp.collective_s;
    comm += rp.comm_s();
  }
  EXPECT_GT(coll / comm, 0.8);
  // 4. balanced across ranks.
  EXPECT_LT(p.imbalance(), 0.1);
}

TEST(Workloads, CgMatchesFigure12Observations) {
  const auto r = run_traced(apps::make_cg(0.05));
  const auto& p = *r.profile;
  // Wait dominates communication.
  double wait = 0, comm = 0;
  for (const auto& rp : p.ranks) {
    wait += rp.wait_s;
    comm += rp.comm_s();
  }
  EXPECT_GT(wait / comm, 0.5);
  // Ranks 4-7 have larger comm-to-comp ratios than ranks 0-3.
  for (int lower = 0; lower < 4; ++lower) {
    for (int upper = 4; upper < 8; ++upper) {
      EXPECT_GT(p.ranks[upper].comm_to_comp(),
                p.ranks[lower].comm_to_comp()) << lower << "," << upper;
    }
  }
}

TEST(Workloads, EpIsComputeDominated) {
  const auto r = run_traced(apps::make_ep(0.1));
  const auto& p = *r.profile;
  EXPECT_LT(p.comm_to_comp(), 0.05);
}

TEST(Workloads, SwimIsMemoryBound) {
  const auto r = run_traced(apps::make_swim(0.2));
  const auto& p = *r.profile;
  EXPECT_GT(p.ranks[0].memstall_s, 2.0 * p.ranks[0].compute_s);
  EXPECT_DOUBLE_EQ(p.ranks[0].comm_s(), 0.0);
}

TEST(Workloads, MicrobenchmarkCharacters) {
  const auto cpu = run_traced(apps::make_micro_cpu_bound(0.2));
  EXPECT_DOUBLE_EQ(cpu.profile->ranks[0].memstall_s, 0.0);

  const auto mem = run_traced(apps::make_micro_memory_bound(0.2));
  EXPECT_GT(mem.profile->ranks[0].memstall_s, 5.0 * mem.profile->ranks[0].compute_s);

  const auto comm = run_traced(apps::make_micro_comm_bound(0.2));
  double total_comm = 0, total_comp = 0;
  for (const auto& rp : comm.profile->ranks) {
    total_comm += rp.comm_s();
    total_comp += rp.comp_s();
  }
  EXPECT_GT(total_comm, total_comp);
}

TEST(Workloads, ScaleShortensRuns) {
  core::RunConfig cfg;
  const auto small = core::run_workload(apps::make_ft(0.1), cfg);
  const auto large = core::run_workload(apps::make_ft(0.3), cfg);
  EXPECT_GT(large.delay_s, 2.0 * small.delay_s);
}

TEST(Workloads, InternalHooksFireAtPaperInsertionPoints) {
  // FT: before/after the marked all-to-all, once per iteration per rank.
  int before = 0, after = 0, at_start = 0;
  apps::DvsHooks hooks;
  hooks.at_start = [&](mpi::CommBase&, int) { ++at_start; };
  hooks.before_marked_comm = [&](mpi::CommBase&, int) { ++before; };
  hooks.after_marked_comm = [&](mpi::CommBase&, int) { ++after; };
  core::RunConfig cfg;
  cfg.hooks = hooks;
  auto ft = apps::make_ft(0.1);  // 2 iterations
  core::run_workload(ft, cfg);
  EXPECT_EQ(at_start, ft.ranks);
  EXPECT_EQ(before, after);
  EXPECT_EQ(before % ft.ranks, 0);
  EXPECT_GE(before / ft.ranks, 2);
}

TEST(Workloads, WaitHooksFireForCg) {
  int waits = 0;
  apps::DvsHooks hooks;
  hooks.before_wait = [&](mpi::CommBase&, int) { ++waits; };
  core::RunConfig cfg;
  cfg.hooks = hooks;
  core::run_workload(apps::make_cg(0.01), cfg);
  EXPECT_GT(waits, 0);
}
