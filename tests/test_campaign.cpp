// Campaign engine tests: spec expansion, builder/spec validation, the
// work-stealing pool, thread-count determinism (the tentpole property),
// median aggregation (including the even-trial-count and tie-breaking
// regression), failure capture, and progress/telemetry feeds.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "apps/npb.hpp"
#include "campaign/pool.hpp"
#include "campaign/runner.hpp"
#include "campaign/sweeps.hpp"
#include "core/predictor.hpp"
#include "core/runner.hpp"
#include "core/strategies.hpp"
#include "fault/plan.hpp"
#include "telemetry/metrics.hpp"

using namespace pcd;

namespace {

constexpr double kTinyScale = 0.05;

// A workload whose rank 0 throws before doing any work.
apps::Workload throwing_workload() {
  apps::Workload w;
  w.name = "THROW";
  w.ranks = 2;
  w.make_rank = [](apps::AppContext& ctx, int rank) -> sim::Process {
    if (rank == 0) throw std::runtime_error("rank 0 exploded");
    return [](apps::AppContext&) -> sim::Process { co_return; }(ctx);
  };
  return w;
}

campaign::ExperimentSpec tiny_spec(int trials = 2) {
  campaign::ExperimentSpec spec;
  spec.workload(apps::make_cg(kTinyScale))
      .workload(apps::make_ep(kTinyScale))
      .axis(campaign::Axis::static_mhz({600, 1400}))
      .trials(trials);
  return spec;
}

}  // namespace

// --- Spec expansion ---------------------------------------------------------

TEST(Spec, CartesianExpansionIsRowMajor) {
  auto spec = tiny_spec(3);
  spec.axis(campaign::Axis::strategies(
      "mode", {{"plain", nullptr},
               {"daemon", [](core::RunConfig& c) {
                  c.daemon = core::CpuspeedParams::v1_2_1();
                }}}));
  EXPECT_EQ(spec.cells(), 2u * 2u * 2u);
  EXPECT_EQ(spec.total_runs(), 8u * 3u);

  const auto plans = spec.expand();
  ASSERT_EQ(plans.size(), 8u);
  // Workload outermost, last axis innermost.
  EXPECT_EQ(plans[0].workload_label, plans[3].workload_label);
  EXPECT_NE(plans[0].workload_label, plans[4].workload_label);
  EXPECT_EQ(plans[0].labels, (std::vector<std::string>{"600", "plain"}));
  EXPECT_EQ(plans[1].labels, (std::vector<std::string>{"600", "daemon"}));
  EXPECT_EQ(plans[2].labels, (std::vector<std::string>{"1400", "plain"}));
  EXPECT_EQ(plans[0].config.static_mhz, 600);
  EXPECT_EQ(plans[2].config.static_mhz, 1400);
  EXPECT_TRUE(plans[1].config.daemon.has_value());
  EXPECT_FALSE(plans[0].config.daemon.has_value());
  for (std::size_t i = 0; i < plans.size(); ++i) EXPECT_EQ(plans[i].index, i);
}

TEST(Spec, TrialSeedsFollowHistoricalRule) {
  core::RunConfig cfg;
  cfg.seed = 11;
  EXPECT_EQ(campaign::trial_config(cfg, 0).seed, 11u);
  EXPECT_EQ(campaign::trial_config(cfg, 2).seed, 11u + 2u * 7919u);
}

TEST(Spec, RejectsEmptyAndInvalidShapes) {
  campaign::ExperimentSpec empty;
  EXPECT_THROW(empty.expand(), campaign::SpecError);

  auto no_trials = tiny_spec(0);
  EXPECT_THROW(no_trials.expand(), campaign::SpecError);

  campaign::ExperimentSpec empty_axis;
  empty_axis.workload(apps::make_ep(kTinyScale)).axis(campaign::Axis{"hollow", {}});
  EXPECT_THROW(empty_axis.expand(), campaign::SpecError);
}

TEST(Spec, EagerlyValidatesEveryCellAndNamesTheBadOne) {
  campaign::ExperimentSpec spec;
  spec.workload(apps::make_ep(kTinyScale))
      .axis(campaign::Axis::strategies(
          "mode", {{"ok", nullptr},
                   {"contradiction", [](core::RunConfig& c) {
                      c.daemon = core::CpuspeedParams::v1_2_1();
                      c.predictor = core::PhasePredictorParams{};
                    }}}));
  try {
    spec.expand();
    FAIL() << "expected SpecError";
  } catch (const campaign::SpecError& e) {
    ASSERT_FALSE(e.issues().empty());
    EXPECT_NE(std::string(e.what()).find("contradiction"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("daemon"), std::string::npos);
  }
}

// --- RunConfig validation / builder ----------------------------------------

TEST(Validate, DaemonPlusPredictorIsStructuredError) {
  core::RunConfig cfg;
  cfg.daemon = core::CpuspeedParams::v1_2_1();
  cfg.predictor = core::PhasePredictorParams{};
  const auto issues = cfg.validate();
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues.front().field, "daemon/predictor");
  EXPECT_THROW(core::run_workload(apps::make_ep(kTinyScale), cfg),
               std::invalid_argument);
}

TEST(Validate, NegativeSliceAndFrequencyAreCaught) {
  core::RunConfig cfg;
  cfg.slice_s = -0.5;
  cfg.static_mhz = -600;
  const auto issues = cfg.validate();
  EXPECT_EQ(issues.size(), 2u);
  EXPECT_THROW(core::run_workload(apps::make_ep(kTinyScale), cfg),
               std::invalid_argument);
}

TEST(Builder, BuildsValidConfigsAndThrowsOnContradiction) {
  const auto cfg = core::RunConfigBuilder()
                       .seed(42)
                       .static_mhz(800)
                       .collect_trace(true)
                       .build();
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_EQ(cfg.static_mhz, 800);
  EXPECT_TRUE(cfg.collect_trace);

  auto bad = core::RunConfigBuilder()
                 .daemon(core::CpuspeedParams::v1_2_1())
                 .predictor(core::PhasePredictorParams{});
  EXPECT_FALSE(bad.issues().empty());
  EXPECT_THROW(bad.build(), std::invalid_argument);

  EXPECT_THROW(core::RunConfigBuilder().slice_s(-1).build(), std::invalid_argument);
}

// --- Pool -------------------------------------------------------------------

TEST(Pool, EffectiveThreadsClampsToItems) {
  EXPECT_EQ(campaign::effective_threads(8, 3), 3);
  EXPECT_EQ(campaign::effective_threads(2, 100), 2);
  EXPECT_EQ(campaign::effective_threads(1, 100), 1);
  EXPECT_GE(campaign::effective_threads(0, 100), 1);
  EXPECT_EQ(campaign::effective_threads(4, 0), 1);
}

TEST(Pool, RunsEveryItemExactlyOnce) {
  constexpr std::size_t kItems = 500;
  std::vector<std::atomic<int>> hits(kItems);
  campaign::run_indexed(kItems, 7, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Pool, RethrowsFirstExceptionByIndexButFinishesAllItems) {
  constexpr std::size_t kItems = 64;
  std::vector<std::atomic<int>> hits(kItems);
  try {
    campaign::run_indexed(kItems, 4, [&](std::size_t i) {
      hits[i].fetch_add(1);
      if (i == 50 || i == 9) throw std::runtime_error("item " + std::to_string(i));
    });
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "item 9");
  }
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

// --- Determinism across thread counts (the tentpole property) ---------------

TEST(Campaign, SerialAndParallelTablesAreByteIdentical) {
  const auto spec = tiny_spec(2);
  campaign::CampaignOptions serial{.threads = 1};
  campaign::CampaignOptions parallel{.threads = 8};
  const auto a = campaign::CampaignRunner(serial).run(spec);
  const auto b = campaign::CampaignRunner(parallel).run(spec);
  EXPECT_EQ(a.tsv(), b.tsv());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.threads, 1);
  EXPECT_EQ(b.threads, campaign::effective_threads(8, spec.total_runs()));
}

TEST(Campaign, DeterministicUnderArmedFaultPlan) {
  core::RunConfig base;
  base.daemon = core::CpuspeedParams::v1_2_1();
  fault::HazardModel hazard;
  hazard.kind = fault::FaultKind::Straggler;
  hazard.mtbf_s = 2.0;
  hazard.duration_s = 0.5;
  hazard.magnitude = 0.5;
  base.faults.hazards.push_back(hazard);
  base.faults.horizon_s = 30;
  base.faults.resilience.watchdog = true;

  campaign::ExperimentSpec spec;
  spec.workload(apps::make_cg(kTinyScale))
      .base(base)
      .axis(campaign::Axis::seeds({1, 2, 3}))
      .trials(2);
  const auto a = campaign::run_campaign(spec, {.threads = 1});
  const auto b = campaign::run_campaign(spec, {.threads = 8});
  EXPECT_EQ(a.tsv(), b.tsv());
}

// --- Aggregation ------------------------------------------------------------

TEST(Aggregation, OddTrialsMatchClassicMedianOfRuns) {
  auto cg = apps::make_cg(kTinyScale);
  core::RunConfig cfg;
  cfg.seed = 5;

  std::vector<double> delays;
  for (int t = 0; t < 3; ++t) {
    delays.push_back(core::run_workload(cg, campaign::trial_config(cfg, t)).delay_s);
  }
  std::sort(delays.begin(), delays.end());

  const auto med = campaign::run_trials(cg, cfg, 3);
  EXPECT_DOUBLE_EQ(med.delay_s, delays[1]);
}

TEST(Aggregation, EvenTrialsAverageTheMiddlePairRegression) {
  // The historical run_trials picked runs[n/2] after sorting — wrong for
  // even n, and its secondary fields came from an unrelated run.  The
  // campaign reduction averages the middle pair and keeps every secondary
  // field from one well-defined representative trial.
  auto cg = apps::make_cg(kTinyScale);
  core::RunConfig cfg;
  cfg.seed = 9;

  std::vector<core::RunResult> runs;
  for (int t = 0; t < 4; ++t) {
    runs.push_back(core::run_workload(cg, campaign::trial_config(cfg, t)));
  }
  std::vector<double> delays, energies;
  for (const auto& r : runs) {
    delays.push_back(r.delay_s);
    energies.push_back(r.energy_j);
  }
  std::sort(delays.begin(), delays.end());
  std::sort(energies.begin(), energies.end());

  const auto med = campaign::run_trials(cg, cfg, 4);
  EXPECT_DOUBLE_EQ(med.delay_s, (delays[1] + delays[2]) / 2);
  EXPECT_DOUBLE_EQ(med.energy_j, (energies[1] + energies[2]) / 2);

  // The representative trial is a real run: secondary fields must all come
  // from the same trial instead of mixing sources.
  bool consistent = false;
  for (const auto& r : runs) {
    consistent |= (r.net_collisions == med.net_collisions &&
                   r.dvs_transitions == med.dvs_transitions &&
                   r.messages == med.messages);
  }
  EXPECT_TRUE(consistent);
}

TEST(Aggregation, TwoTrialTiesResolveToLowestIndex) {
  // With two trials both delays are equidistant from their midpoint, and so
  // are the energies — the documented tie-break lands on trial 0.
  campaign::TrialRecord a, b;
  a.result.delay_s = 1.0;
  a.result.energy_j = 10.0;
  a.result.net_collisions = 111;
  b.result.delay_s = 3.0;
  b.result.energy_j = 30.0;
  b.result.net_collisions = 222;
  const auto cell = campaign::aggregate_cell({a, b});
  EXPECT_DOUBLE_EQ(cell.result.delay_s, 2.0);
  EXPECT_DOUBLE_EQ(cell.result.energy_j, 20.0);
  EXPECT_EQ(cell.result.net_collisions, 111);
  EXPECT_EQ(cell.delay.q1, 1.0);
  EXPECT_EQ(cell.delay.q3, 3.0);
}

TEST(Aggregation, SummaryQuartilesUseTukeyHinges) {
  const auto s = campaign::Summary::of({5, 1, 3, 2, 4});  // 1 2 3 4 5
  EXPECT_DOUBLE_EQ(s.median, 3);
  // Inclusive hinges: lower half {1,2,3}, upper half {3,4,5}.
  EXPECT_DOUBLE_EQ(s.q1, 2);
  EXPECT_DOUBLE_EQ(s.q3, 4);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_EQ(s.n, 5);
}

TEST(Aggregation, SingleTrialCampaignEqualsDirectRun) {
  auto ep = apps::make_ep(kTinyScale);
  core::RunConfig cfg;
  cfg.seed = 21;
  const auto direct = core::run_workload(ep, cfg);
  const auto via_campaign = campaign::run_trials(ep, cfg, 1);
  EXPECT_DOUBLE_EQ(direct.delay_s, via_campaign.delay_s);
  EXPECT_DOUBLE_EQ(direct.energy_j, via_campaign.energy_j);
}

// --- Sweeps as campaigns ----------------------------------------------------

TEST(Sweeps, SweepStaticNormalizesAgainstHighestFrequency) {
  auto sweep = campaign::sweep_static(apps::make_cg(kTinyScale), core::RunConfig{},
                                      {600, 1400});
  const auto c = sweep.normalized();
  EXPECT_DOUBLE_EQ(c.at(1400).delay, 1.0);
  EXPECT_GT(c.at(600).delay, 1.0);
  EXPECT_LT(c.at(600).energy, 1.0);
}

TEST(Sweeps, SweepOfRebuildsPerWorkloadCrescendo) {
  auto spec = tiny_spec(1);
  const auto result = campaign::run_campaign(spec, {.threads = 1});
  const auto& label = spec.workload_entries().front().first;
  const auto sweep = campaign::sweep_of(result, label);
  ASSERT_EQ(sweep.points.size(), 2u);
  EXPECT_EQ(sweep.points.front().freq_mhz, 600);
  EXPECT_EQ(sweep.points.back().freq_mhz, 1400);
  EXPECT_EQ(sweep.base_mhz, 1400);
}

// --- Failure capture and observability --------------------------------------

TEST(Campaign, CapturesThrowingTrialsWithoutAbortingTheMatrix) {
  campaign::ExperimentSpec spec;
  spec.workload(throwing_workload())
      .workload(apps::make_ep(kTinyScale))
      .trials(2);
  const auto result = campaign::run_campaign(spec, {.threads = 4});

  const auto* bad = result.find("THROW");
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->runs, 2);
  EXPECT_EQ(bad->failures, 2);
  EXPECT_EQ(bad->thrown, 2);
  EXPECT_TRUE(bad->result.failed);
  EXPECT_NE(bad->first_exception.find("rank 0 exploded"), std::string::npos);

  // The healthy workload still completed.
  const auto* good = result.find(apps::make_ep(kTinyScale).name);
  ASSERT_NE(good, nullptr);
  EXPECT_EQ(good->failures, 0);
  EXPECT_GT(good->result.delay_s, 0);
}

TEST(Campaign, RunTrialsRethrowsWhenAnyTrialThrew) {
  EXPECT_THROW(campaign::run_trials(throwing_workload(), core::RunConfig{}, 2),
               std::runtime_error);
}

TEST(Campaign, ProgressCallbackSeesEveryRunAndFeedsTelemetry) {
  telemetry::MetricsRegistry metrics;
  std::mutex mu;
  std::vector<campaign::Progress> seen;
  campaign::CampaignOptions opts;
  opts.threads = 4;
  opts.metrics = &metrics;
  opts.on_progress = [&](const campaign::Progress& p) {
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(p);
  };

  const auto spec = tiny_spec(2);
  const auto result = campaign::CampaignRunner(opts).run(spec);
  ASSERT_EQ(seen.size(), spec.total_runs());
  std::set<std::size_t> completed;
  for (const auto& p : seen) {
    EXPECT_EQ(p.total, spec.total_runs());
    EXPECT_FALSE(p.cell.empty());
    completed.insert(p.completed);
  }
  // `completed` is monotone under the progress lock: every value 1..N seen.
  EXPECT_EQ(completed.size(), spec.total_runs());
  EXPECT_EQ(*completed.rbegin(), spec.total_runs());
  EXPECT_DOUBLE_EQ(metrics.counter("campaign_runs_total").value(),
                   static_cast<double>(spec.total_runs()));
  EXPECT_DOUBLE_EQ(metrics.counter("campaign_failures_total").value(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("campaign_runs_in_flight").value(), 0.0);
  EXPECT_GT(result.wall_s, 0);
}

// --- Result lookups ---------------------------------------------------------

TEST(Result, FindAndNormalizedTo) {
  const auto spec = tiny_spec(1);
  const auto result = campaign::run_campaign(spec, {.threads = 2});
  const auto& cg = spec.workload_entries().front().first;

  const auto* slow = result.find(cg, {"600"});
  const auto* fast = result.find(cg, {"1400"});
  ASSERT_NE(slow, nullptr);
  ASSERT_NE(fast, nullptr);
  EXPECT_EQ(result.find(cg, {"9999"}), nullptr);
  EXPECT_EQ(result.find("NOPE"), nullptr);

  const auto ed = slow->normalized_to(*fast);
  EXPECT_GT(ed.delay, 1.0);
  EXPECT_LT(ed.energy, 1.0);

  EXPECT_EQ(result.select(cg).size(), 2u);
  EXPECT_NE(result.tsv().find("600"), std::string::npos);
  EXPECT_FALSE(result.table().empty());
}
