// Unit tests for the CPU model: operating points, DVS transitions,
// preemptible work execution, utilization accounting.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "cpu/cpu.hpp"
#include "cpu/operating_point.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace sim = pcd::sim;
using pcd::cpu::Cpu;
using pcd::cpu::CpuConfig;
using pcd::cpu::CpuState;
using pcd::cpu::OperatingPoint;
using pcd::cpu::OperatingPointTable;

namespace {

CpuConfig fixed_transition(sim::SimDuration ns) {
  CpuConfig c;
  c.transition_min = ns;
  c.transition_max = ns;
  return c;
}

struct CpuFixture {
  sim::Engine engine;
  Cpu cpu;
  explicit CpuFixture(CpuConfig cfg = fixed_transition(sim::from_micros(20)))
      : cpu(engine, OperatingPointTable::pentium_m_1400(), cfg, sim::Rng(1)) {}
};

sim::Process run_onchip(Cpu& cpu, double cycles) { co_await cpu.run_onchip_cycles(cycles); }
sim::Process run_mem(Cpu& cpu, sim::SimDuration ns) { co_await cpu.run_memstall(ns); }

}  // namespace

// ---- OperatingPointTable ----------------------------------------------------

TEST(OperatingPointTable, PaperTable1) {
  auto t = OperatingPointTable::pentium_m_1400();
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t.lowest().freq_mhz, 600);
  EXPECT_DOUBLE_EQ(t.lowest().voltage, 0.956);
  EXPECT_EQ(t.highest().freq_mhz, 1400);
  EXPECT_DOUBLE_EQ(t.highest().voltage, 1.484);
  EXPECT_EQ(t.at(2).freq_mhz, 1000);
  EXPECT_DOUBLE_EQ(t.at(2).voltage, 1.308);
}

TEST(OperatingPointTable, SortsByFrequency) {
  OperatingPointTable t({{1400, 1.484}, {600, 0.956}, {1000, 1.308}});
  EXPECT_EQ(t.at(0).freq_mhz, 600);
  EXPECT_EQ(t.at(1).freq_mhz, 1000);
  EXPECT_EQ(t.at(2).freq_mhz, 1400);
}

TEST(OperatingPointTable, IndexOfAndContains) {
  auto t = OperatingPointTable::pentium_m_1400();
  EXPECT_EQ(t.index_of(800), 1u);
  EXPECT_TRUE(t.contains(1200));
  EXPECT_FALSE(t.contains(900));
  EXPECT_THROW(t.index_of(900), std::invalid_argument);
}

TEST(OperatingPointTable, IndexAtLeastClampsHigh) {
  auto t = OperatingPointTable::pentium_m_1400();
  EXPECT_EQ(t.index_at_least(600), 0u);
  EXPECT_EQ(t.index_at_least(700), 1u);
  EXPECT_EQ(t.index_at_least(1400), 4u);
  EXPECT_EQ(t.index_at_least(2000), 4u);
}

TEST(OperatingPointTable, RejectsInvalidTables) {
  EXPECT_THROW(OperatingPointTable(std::vector<OperatingPoint>{}), std::invalid_argument);
  EXPECT_THROW(OperatingPointTable({{600, 1.0}, {600, 1.1}}), std::invalid_argument);
  EXPECT_THROW(OperatingPointTable({{600, 1.2}, {800, 1.0}}), std::invalid_argument);
}

// ---- Execution timing -------------------------------------------------------

TEST(Cpu, BootsAtHighestFrequencyIdle) {
  CpuFixture f;
  EXPECT_EQ(f.cpu.frequency_mhz(), 1400);
  EXPECT_EQ(f.cpu.state(), CpuState::Idle);
  EXPECT_FALSE(f.cpu.transitioning());
}

TEST(Cpu, OnChipDurationScalesWithFrequency) {
  // 1.4e9 cycles at 1400 MHz = exactly 1 s.
  CpuFixture f;
  sim::spawn(f.engine, run_onchip(f.cpu, 1.4e9));
  f.engine.run();
  EXPECT_EQ(f.engine.now(), sim::kSecond);
}

TEST(Cpu, OnChipSlowsAtLowFrequency) {
  CpuFixture f(fixed_transition(0));
  f.cpu.set_frequency_mhz(600);
  f.engine.run();
  sim::spawn(f.engine, run_onchip(f.cpu, 1.4e9));
  f.engine.run();
  // 1.4e9 cycles / 600 MHz = 2.3333... s
  EXPECT_NEAR(sim::to_seconds(f.engine.now()), 1400.0 / 600.0, 1e-6);
}

TEST(Cpu, SecondsAtMaxHelper) {
  CpuFixture f;
  auto work = [](Cpu& c) -> sim::Process { co_await c.run_onchip_seconds_at_max(0.25); };
  sim::spawn(f.engine, work(f.cpu));
  f.engine.run();
  EXPECT_EQ(f.engine.now(), sim::kSecond / 4);
}

TEST(Cpu, MemStallIsFrequencyInsensitive) {
  for (int mhz : {600, 1000, 1400}) {
    CpuFixture f(fixed_transition(0));
    f.cpu.set_frequency_mhz(mhz);
    f.engine.run();
    const sim::SimTime start = f.engine.now();
    sim::spawn(f.engine, run_mem(f.cpu, 123 * sim::kMillisecond));
    f.engine.run();
    EXPECT_EQ(f.engine.now() - start, 123 * sim::kMillisecond) << mhz;
  }
}

TEST(Cpu, StateDuringWorkAndAfter) {
  CpuFixture f;
  std::vector<CpuState> observed;
  sim::spawn(f.engine, run_onchip(f.cpu, 1.4e9));
  f.engine.schedule_at(sim::kMillisecond, [&] { observed.push_back(f.cpu.state()); });
  f.engine.run();
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0], CpuState::OnChip);
  EXPECT_EQ(f.cpu.state(), CpuState::Idle);
}

// ---- DVS transitions --------------------------------------------------------

TEST(Cpu, TransitionTakesConfiguredLatency) {
  CpuFixture f(fixed_transition(sim::from_micros(25)));
  f.cpu.set_frequency_mhz(600);
  EXPECT_TRUE(f.cpu.transitioning());
  EXPECT_EQ(f.cpu.frequency_mhz(), 1400);  // not applied yet
  f.engine.run();
  EXPECT_EQ(f.engine.now(), sim::from_micros(25));
  EXPECT_EQ(f.cpu.frequency_mhz(), 600);
  EXPECT_EQ(f.cpu.stats().transitions, 1);
  EXPECT_EQ(f.cpu.stats().transition_stall_ns, sim::from_micros(25));
}

TEST(Cpu, TransitionLatencyWithinBounds) {
  CpuConfig cfg;
  cfg.transition_min = sim::from_micros(10);
  cfg.transition_max = sim::from_micros(30);
  for (int seed = 0; seed < 20; ++seed) {
    sim::Engine e;
    Cpu cpu(e, OperatingPointTable::pentium_m_1400(), cfg, sim::Rng(seed));
    cpu.set_frequency_mhz(800);
    e.run();
    EXPECT_GE(e.now(), sim::from_micros(10));
    EXPECT_LE(e.now(), sim::from_micros(30));
  }
}

TEST(Cpu, SettingSameFrequencyIsFree) {
  CpuFixture f;
  f.cpu.set_frequency_mhz(1400);
  EXPECT_FALSE(f.cpu.transitioning());
  f.engine.run();
  EXPECT_EQ(f.cpu.stats().transitions, 0);
  EXPECT_EQ(f.engine.now(), 0);
}

TEST(Cpu, TransitionStateAndPowerOpUseHigherVoltage) {
  CpuFixture f(fixed_transition(sim::from_micros(20)));
  f.cpu.set_frequency_mhz(600);
  EXPECT_EQ(f.cpu.state(), CpuState::Transition);
  EXPECT_EQ(f.cpu.power_op().freq_mhz, 1400);  // higher-voltage endpoint
  f.engine.run();
  f.cpu.set_frequency_mhz(1200);  // upward: higher-voltage endpoint is target
  EXPECT_EQ(f.cpu.power_op().freq_mhz, 1200);
  f.engine.run();
}

TEST(Cpu, MidWorkPreemptionRepricesRemainingCycles) {
  // 1.4e9 cycles at 1400 MHz; at t=0.5 s switch to 600 MHz (20 us stall).
  // Remaining 0.7e9 cycles take 0.7e9/600e6 s; total = 0.5 + 20us + 1.1666… s.
  CpuFixture f(fixed_transition(sim::from_micros(20)));
  sim::spawn(f.engine, run_onchip(f.cpu, 1.4e9));
  f.engine.schedule_at(sim::kSecond / 2, [&] { f.cpu.set_frequency_mhz(600); });
  f.engine.run();
  const double expected = 0.5 + 20e-6 + 0.7e9 / 600e6;
  EXPECT_NEAR(sim::to_seconds(f.engine.now()), expected, 1e-6);
}

TEST(Cpu, MemStallPausedDuringTransition) {
  CpuFixture f(fixed_transition(sim::from_micros(20)));
  sim::spawn(f.engine, run_mem(f.cpu, 100 * sim::kMillisecond));
  f.engine.schedule_at(50 * sim::kMillisecond, [&] { f.cpu.set_frequency_mhz(600); });
  f.engine.run();
  EXPECT_EQ(f.engine.now(), 100 * sim::kMillisecond + sim::from_micros(20));
}

TEST(Cpu, CoalescesTransitionRequests) {
  CpuFixture f(fixed_transition(sim::from_micros(20)));
  f.cpu.set_frequency_mhz(600);
  f.cpu.set_frequency_mhz(800);
  f.cpu.set_frequency_mhz(1000);  // latest wins
  f.engine.run();
  EXPECT_EQ(f.cpu.frequency_mhz(), 1000);
  EXPECT_EQ(f.cpu.stats().transitions, 2);  // 1400->600, then 600->1000
}

TEST(Cpu, PendingTargetEqualToResultIsDropped) {
  CpuFixture f(fixed_transition(sim::from_micros(20)));
  f.cpu.set_frequency_mhz(600);
  f.cpu.set_frequency_mhz(600);
  f.engine.run();
  EXPECT_EQ(f.cpu.frequency_mhz(), 600);
  EXPECT_EQ(f.cpu.stats().transitions, 1);
}

TEST(Cpu, WorkRequestedDuringTransitionStartsAfterIt) {
  CpuFixture f(fixed_transition(sim::from_micros(20)));
  f.cpu.set_frequency_mhz(600);
  sim::spawn(f.engine, run_onchip(f.cpu, 600e6));  // 1 s at 600 MHz
  f.engine.run();
  EXPECT_NEAR(sim::to_seconds(f.engine.now()), 20e-6 + 1.0, 1e-7);
}

// ---- Work queue -------------------------------------------------------------

TEST(Cpu, ConcurrentWorkQueuesFifo) {
  CpuFixture f;
  std::vector<int> order;
  auto work = [&](int tag, double cycles) -> sim::Process {
    co_await f.cpu.run_onchip_cycles(cycles);
    order.push_back(tag);
  };
  sim::spawn(f.engine, work(1, 1.4e8));  // 0.1 s
  sim::spawn(f.engine, work(2, 1.4e8));  // queued behind
  f.engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_NEAR(sim::to_seconds(f.engine.now()), 0.2, 1e-9);
}

// ---- Wait scope and utilization accounting ---------------------------------

TEST(Cpu, WaitScopeSetsWaitPoll) {
  CpuFixture f;
  auto waiter = [&](sim::Event& ev) -> sim::Process {
    auto ws = f.cpu.wait_scope();
    co_await ev.wait();
  };
  sim::Event ev(f.engine);
  sim::spawn(f.engine, waiter(ev));
  std::vector<CpuState> states;
  f.engine.schedule_at(sim::kMillisecond, [&] { states.push_back(f.cpu.state()); });
  f.engine.schedule_at(2 * sim::kMillisecond, [&] { ev.set(); });
  f.engine.run();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0], CpuState::WaitPoll);
  EXPECT_EQ(f.cpu.state(), CpuState::Idle);
}

TEST(Cpu, BusyAccountingWeightsStates) {
  CpuConfig cfg = fixed_transition(0);
  cfg.waitpoll_busy_fraction = 0.25;
  CpuFixture f(cfg);
  // 1 s busy, then 1 s waiting, then 1 s idle.
  auto script = [&](sim::Event& ev) -> sim::Process {
    co_await f.cpu.run_onchip_cycles(1.4e9);
    {
      auto ws = f.cpu.wait_scope();
      co_await ev.wait();
    }
  };
  sim::Event ev(f.engine);
  sim::spawn(f.engine, script(ev));
  f.engine.schedule_at(2 * sim::kSecond, [&] { ev.set(); });
  f.engine.schedule_at(3 * sim::kSecond, [] {});
  f.engine.run();
  EXPECT_NEAR(f.cpu.busy_weighted_ns(), (1.0 + 0.25) * 1e9, 1e3);
}

TEST(Cpu, OpResidencyAccumulates) {
  CpuFixture f(fixed_transition(0));
  f.engine.schedule_at(sim::kSecond, [&] { f.cpu.set_frequency_mhz(600); });
  f.engine.schedule_at(3 * sim::kSecond, [] {});
  f.engine.run();
  f.cpu.set_frequency_mhz(600);  // force accounting flush via no-op? (no) —
  // query through busy_weighted_ns path instead: residency updates lazily on
  // state/op changes, so check the recorded split after the 1400->600 change.
  const auto& res = f.cpu.stats().op_residency_ns;
  const auto table = f.cpu.table();
  EXPECT_EQ(res[table.index_of(1400)], sim::kSecond);
  EXPECT_GE(res[table.index_of(600)], 0);
}

// ---- Activity factors -------------------------------------------------------

TEST(Cpu, ActivityFactorsFollowState) {
  CpuConfig cfg = fixed_transition(0);
  CpuFixture f(cfg);
  EXPECT_DOUBLE_EQ(f.cpu.activity(), cfg.act_idle);
  sim::spawn(f.engine, run_onchip(f.cpu, 1.4e9));
  CpuState seen_state{};
  double seen_act = -1;
  f.engine.schedule_at(sim::kMillisecond, [&] {
    seen_state = f.cpu.state();
    seen_act = f.cpu.activity();
  });
  f.engine.run();
  EXPECT_EQ(seen_state, CpuState::OnChip);
  EXPECT_DOUBLE_EQ(seen_act, cfg.act_onchip);
}

TEST(Cpu, WaitPollActivityIsSpinPower) {
  CpuConfig cfg = fixed_transition(0);
  CpuFixture f(cfg);
  auto waiter = [&](sim::Event& ev) -> sim::Process {
    auto ws = f.cpu.wait_scope();
    co_await ev.wait();
  };
  sim::Event ev(f.engine);
  sim::spawn(f.engine, waiter(ev));
  f.engine.run();
  EXPECT_DOUBLE_EQ(f.cpu.activity(), cfg.act_waitpoll);
  ev.set();
  f.engine.run();
}

TEST(Cpu, MemStallActivityOverride) {
  CpuFixture f;
  auto work = [&]() -> sim::Process {
    co_await f.cpu.run_memstall(sim::kSecond, 0.95);
  };
  sim::spawn(f.engine, work());
  double seen_act = -1;
  pcd::cpu::CpuState seen_state{};
  f.engine.schedule_at(sim::kMillisecond, [&] {
    seen_state = f.cpu.state();
    seen_act = f.cpu.activity();
  });
  f.engine.run();
  EXPECT_EQ(seen_state, CpuState::MemStall);
  EXPECT_DOUBLE_EQ(seen_act, 0.95);
  EXPECT_DOUBLE_EQ(f.cpu.activity(), f.cpu.config().act_idle);
}

TEST(Cpu, MemActivityHighestDuringStall) {
  CpuFixture f;
  sim::spawn(f.engine, run_mem(f.cpu, sim::kSecond));
  double seen_mem_act = -1;
  CpuState seen_state{};
  f.engine.schedule_at(sim::kMillisecond, [&] {
    seen_state = f.cpu.state();
    seen_mem_act = f.cpu.mem_activity();
  });
  f.engine.run();
  EXPECT_EQ(seen_state, CpuState::MemStall);
  EXPECT_DOUBLE_EQ(seen_mem_act, 1.0);
  EXPECT_LT(f.cpu.mem_activity(), 0.1);
}
