// Unit tests for the CPUSPEED daemon against synthetic utilization loads.
#include <gtest/gtest.h>

#include "core/cpuspeed.hpp"
#include "machine/node.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace sim = pcd::sim;
using pcd::core::CpuspeedDaemon;
using pcd::core::CpuspeedParams;
using pcd::machine::Node;
using pcd::machine::NodeConfig;

namespace {

struct DaemonFixture {
  sim::Engine engine;
  Node node;
  DaemonFixture() : node(engine, 0, fixed_config(), sim::Rng(5)) {}

  static NodeConfig fixed_config() {
    NodeConfig c;
    c.cpu.transition_min = c.cpu.transition_max = sim::from_micros(20);
    return c;
  }

  /// Keeps the CPU at `duty` utilization with 100 ms busy/idle periods.
  sim::Process duty_load(double duty, double seconds) {
    const auto total = sim::from_seconds(seconds);
    const auto start = engine.now();
    while (engine.now() - start < total) {
      if (duty > 0) {
        // Busy portion: memory stalls so frequency changes don't alter the
        // duty cycle itself.
        co_await node.cpu().run_memstall(
            static_cast<sim::SimDuration>(100 * sim::kMillisecond * duty));
      }
      co_await sim::delay(
          static_cast<sim::SimDuration>(100 * sim::kMillisecond * (1.0 - duty)));
    }
  }
};

}  // namespace

TEST(Cpuspeed, StepsDownOnModerateUtilization) {
  DaemonFixture f;
  CpuspeedDaemon daemon(f.engine, f.node, CpuspeedParams::v1_2_1());
  daemon.start();
  sim::spawn(f.engine, f.duty_load(0.5, 30.0));  // below usage threshold
  f.engine.run_until(sim::from_seconds(9.0));
  // 4 polls at 2 s: stepped down from index 4 toward 0, one per poll.
  EXPECT_LT(f.node.cpu().frequency_mhz(), 1400);
  f.engine.run_until(sim::from_seconds(25.0));
  EXPECT_EQ(f.node.cpu().frequency_mhz(), 600);  // settled at the bottom
  daemon.stop();
  f.engine.run();
}

TEST(Cpuspeed, JumpsToMaxAboveMaxThreshold) {
  DaemonFixture f;
  f.node.set_cpuspeed(600);
  f.engine.run();
  CpuspeedDaemon daemon(f.engine, f.node, CpuspeedParams::v1_2_1());
  daemon.start();
  sim::spawn(f.engine, f.duty_load(1.0, 10.0));
  f.engine.run_until(sim::from_seconds(4.5));
  EXPECT_EQ(f.node.cpu().frequency_mhz(), 1400);  // straight to the top
  daemon.stop();
  f.engine.run();
}

TEST(Cpuspeed, JumpsToMinBelowMinThreshold) {
  DaemonFixture f;
  CpuspeedDaemon daemon(f.engine, f.node, CpuspeedParams::v1_2_1());
  daemon.start();
  // idle node: utilization ~0 < min threshold -> S = 0 immediately.
  f.engine.run_until(sim::from_seconds(2.5));
  EXPECT_EQ(f.node.cpu().frequency_mhz(), 600);
  daemon.stop();
  f.engine.run();
}

TEST(Cpuspeed, StepsUpOneLevelInBetweenBand) {
  DaemonFixture f;
  f.node.set_cpuspeed(600);
  f.engine.run();
  CpuspeedDaemon daemon(f.engine, f.node, CpuspeedParams::v1_2_1());
  daemon.start();
  // Utilization between usage (0.85) and max (0.95): step up one per poll.
  sim::spawn(f.engine, f.duty_load(0.9, 30.0));
  f.engine.run_until(sim::from_seconds(2.5));
  EXPECT_EQ(f.node.cpu().frequency_mhz(), 800);
  f.engine.run_until(sim::from_seconds(4.5));
  EXPECT_EQ(f.node.cpu().frequency_mhz(), 1000);
  daemon.stop();
  f.engine.run();
}

TEST(Cpuspeed, V11PollsTwentyTimesFaster) {
  DaemonFixture f;
  CpuspeedDaemon d11(f.engine, f.node, CpuspeedParams::v1_1());
  EXPECT_DOUBLE_EQ(d11.params().interval_s, 0.1);
  EXPECT_DOUBLE_EQ(CpuspeedParams::v1_2_1().interval_s, 2.0);
  d11.start();
  f.engine.run_until(sim::from_seconds(1.05));
  EXPECT_GE(d11.polls(), 10);
  d11.stop();
  f.engine.run();
}

TEST(Cpuspeed, StopCancelsFutureTicks) {
  DaemonFixture f;
  CpuspeedDaemon daemon(f.engine, f.node, CpuspeedParams::v1_2_1());
  daemon.start();
  f.engine.run_until(sim::from_seconds(2.5));
  const auto polls = daemon.polls();
  daemon.stop();
  EXPECT_FALSE(daemon.running());
  f.engine.run();
  EXPECT_EQ(daemon.polls(), polls);
}

TEST(Cpuspeed, StartIsIdempotent) {
  DaemonFixture f;
  CpuspeedDaemon daemon(f.engine, f.node, CpuspeedParams::v1_2_1());
  daemon.start();
  daemon.start();
  f.engine.run_until(sim::from_seconds(2.5));
  EXPECT_EQ(daemon.polls(), 1);
  daemon.stop();
  f.engine.run();
}

TEST(Cpuspeed, SpeedChangesAreCounted) {
  DaemonFixture f;
  CpuspeedDaemon daemon(f.engine, f.node, CpuspeedParams::v1_2_1());
  daemon.start();
  f.engine.run_until(sim::from_seconds(2.5));  // idle -> jump to 600
  EXPECT_EQ(daemon.speed_changes(), 1);
  f.engine.run_until(sim::from_seconds(8.5));  // stays at 600, no new changes
  EXPECT_EQ(daemon.speed_changes(), 1);
  daemon.stop();
  f.engine.run();
}

TEST(Cpuspeed, StartOffsetDelaysFirstPoll) {
  DaemonFixture f;
  CpuspeedDaemon daemon(f.engine, f.node, CpuspeedParams::v1_2_1(),
                        sim::from_seconds(1.0));
  daemon.start();
  f.engine.run_until(sim::from_seconds(2.5));
  EXPECT_EQ(daemon.polls(), 0);  // first poll at 3.0 s
  f.engine.run_until(sim::from_seconds(3.5));
  EXPECT_EQ(daemon.polls(), 1);
  daemon.stop();
  f.engine.run();
}
