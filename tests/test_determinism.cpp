// Determinism observability (DESIGN.md §3.12): digest streams and
// checkpoints, divergence diff/localization, focused capture, the flight
// recorder ring, and the campaign digest drill-down.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/npb.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "core/runner.hpp"
#include "sim/engine.hpp"
#include "sim/provenance.hpp"
#include "telemetry/determinism.hpp"
#include "telemetry/flight_recorder.hpp"

namespace pcd {
namespace {

constexpr double kScale = 0.02;

telemetry::RunCapture instrumented_cg(const telemetry::DeterminismOptions& det,
                                      std::uint64_t perturb = 0) {
  core::RunConfig cfg;
  cfg.daemon = core::CpuspeedParams::v1_2_1();
  cfg.determinism = det;
  cfg.determinism.perturb_seq = perturb;
  auto result = core::run_workload(apps::make_cg(kScale), cfg);
  return std::move(*result.determinism);
}

// --- digest streams ---------------------------------------------------------

TEST(Digest, IdenticalRunsProduceIdenticalDigests) {
  telemetry::DeterminismOptions det;
  det.digest = true;
  det.checkpoint_every = 1024;
  const auto a = instrumented_cg(det);
  const auto b = instrumented_cg(det);

  EXPECT_GT(a.digest.streams[telemetry::RunDigest::kEvents].count, 0u);
  EXPECT_GT(a.digest.streams[telemetry::RunDigest::kRng].count, 0u);
  EXPECT_GT(a.digest.streams[telemetry::RunDigest::kPower].count, 0u);
  EXPECT_GT(a.digest.streams[telemetry::RunDigest::kMpi].count, 0u);
  EXPECT_FALSE(a.digest.checkpoints.empty());

  const auto d = telemetry::diff(a.digest, b.digest);
  EXPECT_FALSE(d.diverged);
  EXPECT_EQ(a.digest.root(), b.digest.root());
  EXPECT_EQ(d.summary(), "digests identical");
}

TEST(Digest, DifferentSeedsProduceDifferentDigests) {
  telemetry::DeterminismOptions det;
  det.digest = true;
  core::RunConfig cfg;
  cfg.daemon = core::CpuspeedParams::v1_2_1();
  cfg.determinism = det;
  const auto a = core::run_workload(apps::make_cg(kScale), cfg);
  cfg.seed = 2;
  const auto b = core::run_workload(apps::make_cg(kScale), cfg);
  EXPECT_TRUE(
      telemetry::diff(a.determinism->digest, b.determinism->digest).diverged);
}

TEST(Digest, TextSerializationRoundTrips) {
  telemetry::DeterminismOptions det;
  det.digest = true;
  det.checkpoint_every = 512;
  const auto a = instrumented_cg(det);
  const std::string text = a.digest.to_text();
  EXPECT_NE(text.find("pcd-digest v1"), std::string::npos);
  EXPECT_NE(text.find("stream events"), std::string::npos);

  const auto parsed = telemetry::RunDigest::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(telemetry::diff(a.digest, *parsed).diverged);
  EXPECT_EQ(parsed->root(), a.digest.root());
  EXPECT_EQ(parsed->checkpoints.size(), a.digest.checkpoints.size());

  EXPECT_FALSE(telemetry::RunDigest::parse("not a digest").has_value());
  EXPECT_FALSE(telemetry::RunDigest::parse("pcd-digest v1\nbogus record\n")
                   .has_value());
}

TEST(Digest, DiffNamesFirstDivergingCheckpointInterval) {
  telemetry::RunDigest a, b;
  a.checkpoint_every = b.checkpoint_every = 4;
  for (std::uint64_t e = 4; e <= 16; e += 4) {
    telemetry::DigestCheckpoint c;
    c.events = e;
    c.hash[0] = e * 7;
    a.checkpoints.push_back(c);
    if (e >= 12) c.hash[0] ^= 0xdead;  // diverges inside (8, 12]
    b.checkpoints.push_back(c);
  }
  a.streams[0].hash = 1;
  b.streams[0].hash = 2;
  const auto d = telemetry::diff(a, b);
  EXPECT_TRUE(d.diverged);
  EXPECT_EQ(d.stream, telemetry::RunDigest::kEvents);
  EXPECT_EQ(d.interval_begin, 8u);
  EXPECT_EQ(d.interval_end, 12u);
}

// --- localization -----------------------------------------------------------

TEST(Localize, SeqPerturbationIsNamedWithLabelSeqAndChain) {
  const std::uint64_t kPerturb = 500;
  const auto run_a = [](const telemetry::DeterminismOptions& det) {
    return instrumented_cg(det);
  };
  const auto run_b = [kPerturb](const telemetry::DeterminismOptions& det) {
    return instrumented_cg(det, kPerturb);
  };
  const auto r = telemetry::localize(run_a, run_b, 256);
  ASSERT_TRUE(r.diverged);
  EXPECT_EQ(r.digests.stream, telemetry::RunDigest::kEvents);
  ASSERT_TRUE(r.first_a.has_value());
  ASSERT_TRUE(r.first_b.has_value());

  // The perturbation swaps the allocation of seqs 500/501, so the first
  // diverging dispatch must be one of the two swapped events on each side.
  EXPECT_TRUE(r.first_a->seq == kPerturb || r.first_a->seq == kPerturb + 1)
      << r.first_a->seq;
  EXPECT_TRUE(r.first_b->seq == kPerturb || r.first_b->seq == kPerturb + 1)
      << r.first_b->seq;
  EXPECT_EQ(r.first_a->index, r.first_b->index);
  EXPECT_FALSE(*r.first_a == *r.first_b);

  // Causal chains walk back to a root, ending at the diverging event.
  ASSERT_FALSE(r.chain_a.empty());
  EXPECT_EQ(r.chain_a.front().parent, 0u);
  EXPECT_EQ(r.chain_a.back(), *r.first_a);
  ASSERT_FALSE(r.chain_b.empty());
  EXPECT_EQ(r.chain_b.back(), *r.first_b);

  // The rendered report names the label and sequence number.
  EXPECT_NE(r.report.find("first diverging event (run A)"), std::string::npos);
  EXPECT_NE(r.report.find("seq=" + std::to_string(r.first_a->seq)),
            std::string::npos);
  EXPECT_NE(r.report.find("site='" + r.first_a->site + "'"), std::string::npos);
  EXPECT_NE(r.report.find("causal chain"), std::string::npos);
}

TEST(Localize, IdenticalRunsReportBitIdentical) {
  const auto run = [](const telemetry::DeterminismOptions& det) {
    return instrumented_cg(det);
  };
  const auto r = telemetry::localize(run, run, 1024);
  EXPECT_FALSE(r.diverged);
  EXPECT_NE(r.report.find("bit-identical"), std::string::npos);
}

// Injected unordered-map nondeterminism: run B rehashes the map before
// iterating, so the two runs schedule the same 16 events in (usually) a
// different order.  The localizer must name the exact site label and
// sequence number where the orders first differ.
constexpr const char* kMapSites[16] = {
    "map.k0",  "map.k1",  "map.k2",  "map.k3", "map.k4",  "map.k5",
    "map.k6",  "map.k7",  "map.k8",  "map.k9", "map.k10", "map.k11",
    "map.k12", "map.k13", "map.k14", "map.k15"};

std::vector<int> map_order(bool rehash) {
  std::unordered_map<int, int> map;
  for (int k = 0; k < 16; ++k) map.emplace(k, k);
  if (rehash) map.rehash(1024);
  std::vector<int> order;
  for (const auto& [k, v] : map) order.push_back(k);
  return order;
}

telemetry::RunCapture map_run(const telemetry::DeterminismOptions& det,
                              bool rehash) {
  sim::Engine engine;
  telemetry::DeterminismCollector col(engine, det);
  std::unordered_map<int, int> map;
  for (int k = 0; k < 16; ++k) map.emplace(k, k);
  if (rehash) map.rehash(1024);
  for (const auto& [k, v] : map) {
    engine.schedule_at(1000, [] {}, kMapSites[k]);
  }
  engine.run();
  auto cap = col.take_capture();
  col.detach();
  return cap;
}

TEST(Localize, UnorderedMapIterationOrderIsLocalizedToExactLabel) {
  const auto order_a = map_order(false);
  const auto order_b = map_order(true);
  if (order_a == order_b) {
    GTEST_SKIP() << "this libstdc++ iterates identically across rehash";
  }
  std::size_t p = 0;
  while (order_a[p] == order_b[p]) ++p;

  const auto r = telemetry::localize(
      [](const telemetry::DeterminismOptions& det) { return map_run(det, false); },
      [](const telemetry::DeterminismOptions& det) { return map_run(det, true); },
      4);
  ASSERT_TRUE(r.diverged);
  EXPECT_EQ(r.digests.stream, telemetry::RunDigest::kEvents);
  ASSERT_TRUE(r.first_a.has_value());
  ASSERT_TRUE(r.first_b.has_value());
  // Same-time events dispatch in scheduling order, so dispatch position ==
  // map iteration position: the first diverging event is the p-th one, with
  // the site label of the key each run put there (seqs start at 1).
  EXPECT_EQ(r.first_a->index, p + 1);
  EXPECT_EQ(r.first_a->seq, p + 1);
  EXPECT_EQ(r.first_a->site, kMapSites[order_a[p]]);
  EXPECT_EQ(r.first_b->site, kMapSites[order_b[p]]);
}

// --- focused capture --------------------------------------------------------

TEST(Capture, WindowRetainsOnlyTheRequestedIntervalButChainsToRoots) {
  telemetry::DeterminismOptions det;
  det.digest = true;
  det.capture_begin = 4;
  det.capture_end = 8;
  const auto cap = map_run(det, false);
  ASSERT_EQ(cap.events.size(), 4u);
  for (const auto& e : cap.events) {
    EXPECT_GT(e.index, 4u);
    EXPECT_LE(e.index, 8u);
  }
  // The chain table covers everything up to capture_end, so captured events
  // can be walked back through ancestors outside the window.
  EXPECT_EQ(cap.chain.size(), 8u);
  const auto chain = telemetry::causal_chain(cap, cap.events.front().seq);
  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(chain.back(), cap.events.front());
}

// --- flight recorder --------------------------------------------------------

TEST(FlightRecorder, RingWrapsAroundKeepingTheNewestRecords) {
  telemetry::FlightRecorder fr(4);
  EXPECT_EQ(fr.capacity(), 4u);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    sim::EventProvenance p;
    p.index = i;
    p.seq = i;
    p.site = "test.site";
    p.t = static_cast<sim::SimTime>(i * 100);
    fr.record(p);
  }
  EXPECT_TRUE(fr.wrapped());
  EXPECT_EQ(fr.recorded(), 10u);
  const auto entries = fr.entries();
  ASSERT_EQ(entries.size(), 4u);
  // Oldest-first: records 7..10 survive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(entries[i].index, 7 + i);
  }
  const std::string dump = fr.dump_json("test reason", 1234);
  EXPECT_NE(dump.find("test reason"), std::string::npos);
  EXPECT_NE(dump.find("\"seq\":10"), std::string::npos);
  EXPECT_EQ(dump.find("\"seq\":6"), std::string::npos);
}

TEST(FlightRecorder, StateProvidersAppearInTheDump) {
  telemetry::FlightRecorder fr(8);
  fr.add_state("custom", [] { return std::string("{\"x\":42}"); });
  const std::string dump = fr.dump_json("why", 0);
  EXPECT_NE(dump.find("\"custom\""), std::string::npos);
  EXPECT_NE(dump.find("42"), std::string::npos);
}

// --- campaign drill-down ----------------------------------------------------

TEST(Campaign, DigestFingerprintDrillsDownToCells) {
  campaign::ExperimentSpec spec;
  spec.workload(apps::make_cg(0.01))
      .axis(campaign::Axis::static_mhz({600, 1400}))
      .trials(2)
      .collect_digests();
  campaign::CampaignOptions opts;
  opts.threads = 2;
  const auto a = campaign::CampaignRunner(opts).run(spec);
  const auto b = campaign::CampaignRunner(opts).run(spec);

  for (const auto& c : a.cells) {
    EXPECT_TRUE(c.has_digest);
    EXPECT_NE(c.digest_root, 0u);
  }
  // Fingerprint is the fold of the per-cell digest roots, and reproducible.
  sim::DigestStream h;
  for (const auto& c : a.cells) h.fold(c.digest_root);
  EXPECT_EQ(a.fingerprint(), h.hash);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].digest_root, b.cells[i].digest_root) << "cell " << i;
  }
}

TEST(Campaign, DigestOffKeepsTheLegacyTsvFingerprint) {
  campaign::ExperimentSpec spec;
  spec.workload(apps::make_ep(0.01)).trials(1);
  const auto a = campaign::CampaignRunner(campaign::CampaignOptions{}).run(spec);
  for (const auto& c : a.cells) EXPECT_FALSE(c.has_digest);
  // Legacy rule: FNV-1a of tsv(), bit-for-bit.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char ch : a.tsv()) {
    h ^= ch;
    h *= 0x100000001b3ULL;
  }
  EXPECT_EQ(a.fingerprint(), h);
}

// --- off by default ---------------------------------------------------------

TEST(Determinism, OffByDefaultAndBitIdenticalToInstrumentedRuns) {
  core::RunConfig plain;
  const auto base = core::run_workload(apps::make_cg(kScale), plain);
  EXPECT_FALSE(base.determinism.has_value());

  core::RunConfig dig = plain;
  dig.determinism.digest = true;
  const auto instrumented = core::run_workload(apps::make_cg(kScale), dig);
  ASSERT_TRUE(instrumented.determinism.has_value());
  // Observation does not perturb the run: same delay and energy exactly.
  EXPECT_EQ(base.delay_s, instrumented.delay_s);
  EXPECT_EQ(base.energy_j, instrumented.energy_j);
}

}  // namespace
}  // namespace pcd
