// Tests for the extension modules: thermal/reliability model, the
// phase-predictor daemon (future work §7), automatic heterogeneous
// selection, trace export, and the additional MPI collectives.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "apps/npb.hpp"
#include "core/predictor.hpp"
#include "core/runner.hpp"
#include "core/strategies.hpp"
#include "machine/cluster.hpp"
#include "mpi/comm.hpp"
#include "power/thermal.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "trace/export.hpp"

namespace sim = pcd::sim;
using namespace pcd;

// ---- ThermalModel -----------------------------------------------------------

namespace {

struct ThermalFixture {
  sim::Engine engine;
  cpu::Cpu cpu;
  power::NodePowerModel node;
  ThermalFixture()
      : cpu(engine, cpu::OperatingPointTable::pentium_m_1400(), cpu::CpuConfig{},
            sim::Rng(1)),
        node(engine, cpu, power::NodePowerParams::nemo()) {}
};

}  // namespace

TEST(Thermal, ConvergesToSteadyStateUnderConstantPower) {
  ThermalFixture f;
  power::ThermalParams tp;
  power::ThermalModel thermal(f.engine, f.node, tp);
  thermal.start();
  // Idle node: constant CPU power; after >> tau the temperature must reach
  // T_ambient + R * P_cpu.
  f.engine.run_until(sim::from_seconds(120.0));
  const double cpu_watts = f.node.breakdown().cpu;
  const double expected = tp.ambient_c + tp.r_th_c_per_w * cpu_watts;
  EXPECT_NEAR(thermal.temperature_c(), expected, 0.2);
  thermal.stop();
}

TEST(Thermal, BusyCpuRunsHotter) {
  ThermalFixture f;
  power::ThermalModel thermal(f.engine, f.node, power::ThermalParams{});
  thermal.start();
  auto burn = [&]() -> sim::Process {
    co_await f.cpu.run_onchip_cycles(1.4e9 * 120);  // 2 minutes busy
  };
  sim::spawn(f.engine, burn());
  f.engine.run_until(sim::from_seconds(120.0));
  const double busy_temp = thermal.temperature_c();
  EXPECT_GT(busy_temp, 52.0);  // ~24 + 1.4*22 ~ 55 C steady state (approached)
  EXPECT_GT(thermal.peak_c(), 50.0);
  // Cool-down after the work ends.
  f.engine.run_until(sim::from_seconds(240.0));
  EXPECT_LT(thermal.temperature_c(), busy_temp - 10.0);
  thermal.stop();
}

TEST(Thermal, LowerFrequencyLowersTemperature) {
  auto run_at = [](int mhz) {
    ThermalFixture f;
    f.cpu.set_frequency_mhz(mhz);
    f.engine.run();
    power::ThermalModel thermal(f.engine, f.node, power::ThermalParams{});
    thermal.start();
    auto burn = [&]() -> sim::Process {
      co_await f.cpu.run_onchip_cycles(static_cast<double>(mhz) * 1e6 * 180);
    };
    sim::spawn(f.engine, burn());
    f.engine.run_until(sim::from_seconds(180.0));
    const double t = thermal.temperature_c();
    thermal.stop();
    return t;
  };
  EXPECT_LT(run_at(600), run_at(1400) - 12.0);
}

TEST(Thermal, ArrheniusFactorDoublesPerTenDegrees) {
  EXPECT_DOUBLE_EQ(power::ThermalModel::arrhenius_life_factor(50.0, 50.0), 1.0);
  EXPECT_DOUBLE_EQ(power::ThermalModel::arrhenius_life_factor(40.0, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(power::ThermalModel::arrhenius_life_factor(60.0, 50.0), 0.5);
}

TEST(Thermal, MeanIsTimeWeighted) {
  ThermalFixture f;
  power::ThermalParams tp;
  tp.t0_c = 40.0;
  power::ThermalModel thermal(f.engine, f.node, tp);
  thermal.start();
  f.engine.run_until(sim::from_seconds(60.0));
  EXPECT_GT(thermal.mean_c(), tp.ambient_c);
  EXPECT_LT(thermal.mean_c(), std::max(40.0, thermal.peak_c()) + 1e-9);
  thermal.stop();
}

// ---- PhasePredictorDaemon -----------------------------------------------------

TEST(Predictor, MixedFrequencyRespectsSlowdownBudget) {
  const auto table = cpu::OperatingPointTable::pentium_m_1400();
  // util 0.7, budget 5%: need 0.7*(1400/f - 1) <= 0.05 -> f >= 1307 -> 1400.
  EXPECT_EQ(core::PhasePredictorDaemon::mixed_frequency(table, 0.7, 0.05), 1400);
  // util 0.1: 0.1*(1400/600-1) = 0.133 > 0.05; f=800: 0.075 > 0.05;
  // f=1000: 0.04 <= 0.05 -> 1000.
  EXPECT_EQ(core::PhasePredictorDaemon::mixed_frequency(table, 0.1, 0.05), 1000);
  // Zero utilization: any frequency fits -> lowest.
  EXPECT_EQ(core::PhasePredictorDaemon::mixed_frequency(table, 0.0, 0.05), 600);
}

TEST(Predictor, JumpsToLowDuringSlackAndBackOnCompute) {
  sim::Engine engine;
  machine::NodeConfig nc;
  nc.cpu.transition_min = nc.cpu.transition_max = sim::from_micros(20);
  machine::Node node(engine, 0, nc, sim::Rng(2));
  core::PhasePredictorParams params;
  params.confirm_samples = 1;
  core::PhasePredictorDaemon daemon(engine, node, params);
  daemon.start();
  // Idle (slack) for 3 s -> lowest point.
  engine.run_until(sim::from_seconds(3.0));
  EXPECT_EQ(node.cpu().frequency_mhz(), 600);
  EXPECT_EQ(daemon.current_phase(), core::PhasePredictorDaemon::Phase::Slack);
  // Compute burst -> back to the top after one window (immediate rule).
  auto burn = [&]() -> sim::Process { co_await node.cpu().run_memstall(
      5 * sim::kSecond); };
  sim::spawn(engine, burn());
  engine.run_until(sim::from_seconds(4.1));
  EXPECT_EQ(node.cpu().frequency_mhz(), 1400);
  daemon.stop();
  engine.run();
}

TEST(Predictor, HysteresisDelaysSlackClassification) {
  sim::Engine engine;
  machine::NodeConfig nc;
  machine::Node node(engine, 0, nc, sim::Rng(3));
  core::PhasePredictorParams params;
  params.confirm_samples = 3;
  core::PhasePredictorDaemon daemon(engine, node, params);
  daemon.start();
  engine.run_until(sim::from_seconds(1.2));  // 2 windows of idle
  EXPECT_EQ(node.cpu().frequency_mhz(), 1400);  // not yet confirmed
  engine.run_until(sim::from_seconds(2.2));
  EXPECT_EQ(node.cpu().frequency_mhz(), 600);
  daemon.stop();
  engine.run();
}

TEST(Predictor, BeatsCpuspeedOnMixedCode) {
  // MG is CPUSPEED's pathology (32% delay in the paper); the predictor's
  // Mixed policy must keep delay low, winning on energy-delay efficiency.
  auto mg = apps::npb_by_name("MG", 0.5).value();
  core::RunConfig base_cfg;
  base_cfg.static_mhz = 1400;
  const auto base = core::run_workload(mg, base_cfg);

  core::RunConfig cpuspeed_cfg;
  cpuspeed_cfg.daemon = core::CpuspeedParams::v1_2_1();
  const auto cs = core::run_workload(mg, cpuspeed_cfg);

  core::RunConfig pred_cfg;
  pred_cfg.predictor = core::PhasePredictorParams{};
  const auto pred = core::run_workload(mg, pred_cfg);

  const auto ed2p = [&](const core::RunResult& r) {
    const double d = r.delay_s / base.delay_s;
    return (r.energy_j / base.energy_j) * d * d;
  };
  EXPECT_LT(pred.delay_s / base.delay_s, 1.12);
  EXPECT_GT(cs.delay_s / base.delay_s, 1.15);
  EXPECT_LT(ed2p(pred), ed2p(cs));
}

TEST(Predictor, SavesEnergyOnPhaseHeavyCode) {
  // FT's long all-to-all phases are exactly what the predictor detects.
  auto ft = apps::npb_by_name("FT", 0.4).value();
  core::RunConfig base_cfg;
  base_cfg.static_mhz = 1400;
  const auto base = core::run_workload(ft, base_cfg);
  core::RunConfig pred_cfg;
  pred_cfg.predictor = core::PhasePredictorParams{};
  const auto pred = core::run_workload(ft, pred_cfg);
  EXPECT_LT(pred.energy_j / base.energy_j, 0.85);
  EXPECT_LT(pred.delay_s / base.delay_s, 1.08);
}

// ---- select_per_rank_speeds ---------------------------------------------------

TEST(Heterogeneous, SlackyRanksGetLowerSpeeds) {
  trace::TraceProfile p;
  for (int r = 0; r < 4; ++r) {
    trace::RankProfile rp;
    rp.compute_s = 10.0;
    rp.wait_s = (r >= 2) ? 20.0 : 0.5;  // ranks 2-3 mostly wait
    p.ranks.push_back(rp);
  }
  const auto speeds = core::select_per_rank_speeds(
      p, cpu::OperatingPointTable::pentium_m_1400());
  EXPECT_EQ(speeds.size(), 4u);
  EXPECT_EQ(speeds[0], 1400);
  EXPECT_EQ(speeds[1], 1400);
  // Stretch budget 1 + 0.5*(20/10) = 2.0: lowest point with 1400/f <= 2.0
  // is 800 MHz (600 would stretch 2.33x, beyond the slack budget).
  EXPECT_EQ(speeds[2], 800);
  EXPECT_EQ(speeds[3], 800);
}

TEST(Heterogeneous, IdleRankGetsLowestSpeed) {
  trace::TraceProfile p;
  trace::RankProfile rp;  // no recorded busy time at all
  p.ranks.push_back(rp);
  const auto speeds = core::select_per_rank_speeds(
      p, cpu::OperatingPointTable::pentium_m_1400());
  EXPECT_EQ(speeds[0], 600);
}

// ---- trace export -------------------------------------------------------------

TEST(TraceExport, CsvContainsHeaderAndRecords) {
  sim::Engine e;
  trace::Tracer t(e, 2);
  e.schedule_at(0, [&] {
    auto s = new trace::Tracer::Scope(t.scope(1, trace::Cat::Send, "mpi_send", 0, 512));
    e.schedule_at(1000, [s] { delete s; });
  });
  e.run();
  const auto csv = trace::export_csv(t);
  EXPECT_NE(csv.find("rank,category,label"), std::string::npos);
  EXPECT_NE(csv.find("1,Send,mpi_send,0,1000,1000,0,512"), std::string::npos);
}

TEST(TraceExport, HistogramBucketsDurations) {
  sim::Engine e;
  trace::Tracer t(e, 1);
  auto add_scope = [&](sim::SimTime start, sim::SimDuration dur) {
    e.schedule_at(start, [&t, &e, dur] {
      auto s = new trace::Tracer::Scope(t.scope(0, trace::Cat::Wait, "w"));
      e.schedule_in(dur, [s] { delete s; });
    });
  };
  add_scope(0, 10 * sim::kMicrosecond);
  add_scope(sim::kSecond, 10 * sim::kMicrosecond);
  add_scope(2 * sim::kSecond, 10 * sim::kMillisecond);
  e.run();
  const auto h = trace::histogram(t, 0, trace::Cat::Wait);
  EXPECT_EQ(h.total, 3);
  EXPECT_NEAR(h.total_s, 2 * 10e-6 + 10e-3, 1e-9);
  EXPECT_GT(h.typical_us(), 4.0);
  EXPECT_LT(h.typical_us(), 40.0);
  EXPECT_EQ(trace::histogram(t, 0, trace::Cat::Compute).total, 0);
}

// ---- additional MPI collectives -----------------------------------------------

namespace {

struct ExtMpiFixture {
  sim::Engine engine;
  machine::Cluster cluster;
  mpi::Comm comm;
  explicit ExtMpiFixture(int ranks)
      : cluster(engine,
                [&] {
                  machine::ClusterConfig c;
                  c.nodes = ranks;
                  c.network.collision_coeff = 0;
                  return c;
                }()),
        comm(cluster, iota(ranks)) {}
  static std::vector<int> iota(int n) {
    std::vector<int> v(n);
    std::iota(v.begin(), v.end(), 0);
    return v;
  }
};

}  // namespace

TEST(MpiExt, SendrecvExchangesWithoutDeadlock) {
  ExtMpiFixture f(2);
  std::int64_t got0 = 0, got1 = 0;
  auto proc = [&](int rank, std::int64_t* got) -> sim::Process {
    // Symmetric large exchange: blocking send/recv would rendezvous-deadlock.
    *got = co_await f.comm.sendrecv(rank, 1 - rank, 1, 500'000, 1 - rank, 1);
  };
  sim::spawn(f.engine, proc(0, &got0));
  sim::spawn(f.engine, proc(1, &got1));
  f.engine.run();
  EXPECT_EQ(got0, 500'000);
  EXPECT_EQ(got1, 500'000);
}

TEST(MpiExt, ScatterSendsToAllNonRoots) {
  ExtMpiFixture f(6);
  int done = 0;
  auto proc = [&](int rank) -> sim::Process {
    co_await f.comm.scatter(rank, 2, 10'000);
    ++done;
  };
  for (int r = 0; r < 6; ++r) sim::spawn(f.engine, proc(r));
  f.engine.run();
  EXPECT_EQ(done, 6);
  EXPECT_EQ(f.comm.stats().messages, 5);
}

TEST(MpiExt, GatherCollectsAtRoot) {
  ExtMpiFixture f(6);
  int done = 0;
  auto proc = [&](int rank) -> sim::Process {
    co_await f.comm.gather(rank, 0, 10'000);
    ++done;
  };
  for (int r = 0; r < 6; ++r) sim::spawn(f.engine, proc(r));
  f.engine.run();
  EXPECT_EQ(done, 6);
  EXPECT_EQ(f.comm.stats().messages, 5);
  EXPECT_EQ(f.comm.stats().bytes, 5 * 10'000);
}

TEST(MpiExt, ReduceScatterCompletesEverywhere) {
  ExtMpiFixture f(4);
  int done = 0;
  auto proc = [&](int rank) -> sim::Process {
    co_await f.comm.reduce_scatter(rank, 1'000);
    ++done;
  };
  for (int r = 0; r < 4; ++r) sim::spawn(f.engine, proc(r));
  f.engine.run();
  EXPECT_EQ(done, 4);
  // reduce tree: 3 messages; scatter: 3 messages.
  EXPECT_EQ(f.comm.stats().messages, 6);
}

TEST(MpiExt, RunnerWithPredictorCountsTransitions) {
  auto ft = apps::npb_by_name("FT", 0.1).value();
  core::RunConfig cfg;
  cfg.predictor = core::PhasePredictorParams{};
  const auto r = core::run_workload(ft, cfg);
  EXPECT_GT(r.dvs_transitions, 0);
}
