// Fault-injection and resilience tests: unit coverage of the fault hooks on
// Cpu / meters / Network, plus runner-level scenarios for every FaultKind
// and every resilience mechanism (watchdog fallback, daemon restart,
// checkpoint/restart, MPI progress timeout).  Also asserts the two load-
// bearing properties from the design: an inactive plan is bit-identical to
// a run without the fault layer, and a given plan replays deterministically.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "apps/npb.hpp"
#include "core/runner.hpp"
#include "cpu/cpu.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/report.hpp"
#include "fault/watchdog.hpp"
#include "machine/cluster.hpp"
#include "machine/node.hpp"
#include "net/network.hpp"
#include "power/meters.hpp"
#include "power/node_power.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "telemetry/export.hpp"

using namespace pcd;
namespace sim = pcd::sim;

namespace {

constexpr double kTinyScale = 0.05;

struct CpuFixture {
  sim::Engine engine;
  cpu::Cpu cpu;
  power::NodePowerModel node;
  CpuFixture()
      : cpu(engine, cpu::OperatingPointTable::pentium_m_1400(),
            [] {
              cpu::CpuConfig c;
              c.transition_min = c.transition_max = sim::from_micros(20);
              return c;
            }(),
            sim::Rng(3)),
        node(engine, cpu, power::NodePowerParams::nemo()) {}
};

sim::Process run_onchip(cpu::Cpu& c, double cycles) {
  co_await c.run_onchip_cycles(cycles);
}

bool report_mentions(const fault::FaultReport& r, const std::string& kind,
                     const std::string& phase) {
  for (const auto& e : r.events) {
    if (e.kind == kind && e.phase == phase) return true;
  }
  return false;
}

}  // namespace

// ---- Cpu fault hooks -------------------------------------------------------

TEST(CpuFaults, StuckDvsDropsWritesAndCounts) {
  CpuFixture f;
  f.cpu.set_dvs_stuck(true);
  f.cpu.set_frequency_mhz(600);
  f.engine.run();
  EXPECT_EQ(f.cpu.frequency_mhz(), 1400);
  EXPECT_EQ(f.cpu.stats().dvs_requests_dropped, 1);
  f.cpu.set_dvs_stuck(false);
  f.cpu.set_frequency_mhz(600);
  f.engine.run();
  EXPECT_EQ(f.cpu.frequency_mhz(), 600);
  EXPECT_EQ(f.cpu.stats().dvs_requests_dropped, 1);
}

TEST(CpuFaults, StragglerEfficiencyScalesComputeTime) {
  const double cycles = 1.4e9;  // 1 s at full speed, full efficiency
  double full_s = 0, throttled_s = 0;
  {
    CpuFixture f;
    sim::spawn(f.engine, run_onchip(f.cpu, cycles));
    f.engine.run();
    full_s = sim::to_seconds(f.engine.now());
  }
  {
    CpuFixture f;
    f.cpu.set_efficiency(0.5);
    sim::spawn(f.engine, run_onchip(f.cpu, cycles));
    f.engine.run();
    throttled_s = sim::to_seconds(f.engine.now());
  }
  EXPECT_NEAR(full_s, 1.0, 1e-9);
  EXPECT_NEAR(throttled_s, 2.0 * full_s, 1e-6);
}

TEST(CpuFaults, PowerOffFreezesWorkAndDrawsNothing) {
  CpuFixture f;
  sim::spawn(f.engine, run_onchip(f.cpu, 1.4e9));  // 1 s of work
  f.engine.schedule_at(sim::from_seconds(0.25), [&] { f.cpu.power_off(); });
  f.engine.run_until(sim::from_seconds(0.5));
  EXPECT_TRUE(f.cpu.offline());
  EXPECT_EQ(f.cpu.state(), cpu::CpuState::Off);
  // An offline node draws nothing: the whole breakdown is zero.
  EXPECT_DOUBLE_EQ(f.node.breakdown().total(), 0.0);
  const double joules_off = f.node.energy_joules();
  f.engine.schedule_at(sim::from_seconds(2.0), [&] { f.cpu.power_on(); });
  f.engine.run_until(sim::from_seconds(2.0));
  // 1.5 s of outage added no energy.
  EXPECT_NEAR(f.node.energy_joules(), joules_off, 1e-9);
  f.engine.run();
  // The interrupted segment resumes and finishes: 0.25 s done before the
  // crash, 0.75 s left after power-on at t=2 -> completion at t=2.75.
  EXPECT_EQ(f.cpu.stats().work_completed, 1);
  EXPECT_NEAR(sim::to_seconds(f.engine.now()), 2.75, 1e-6);
}

TEST(CpuFaults, WritesWhileOfflineAreDropped) {
  CpuFixture f;
  f.cpu.power_off();
  f.cpu.set_frequency_mhz(600);
  EXPECT_EQ(f.cpu.frequency_mhz(), 1400);
  EXPECT_EQ(f.cpu.stats().dvs_requests_dropped, 1);
  f.cpu.power_on();
  EXPECT_EQ(f.cpu.frequency_mhz(), 1400);  // reboots at full speed
}

// ---- ACPI battery: clamp, brown-out, sensor faults -------------------------

namespace {
power::AcpiBatteryParams tiny_battery() {
  power::AcpiBatteryParams p;
  p.capacity_mwh = 10;  // 36 J: drains in a few seconds at idle draw
  p.refresh_min_s = p.refresh_max_s = 1.0;
  return p;
}
}  // namespace

TEST(BatteryFaults, ClampsAtZeroAndBrownsOut) {
  CpuFixture f;
  power::AcpiBattery battery(f.engine, f.node, tiny_battery(), sim::Rng(11));
  bool browned_out = false;
  battery.set_depleted([&] { browned_out = true; });
  battery.disconnect_ac();
  battery.start_polling();
  f.engine.run_until(sim::from_seconds(60));
  battery.stop_polling();
  // A pack cannot report negative charge, no matter how long we discharge.
  EXPECT_DOUBLE_EQ(battery.true_remaining_mwh(), 0.0);
  EXPECT_GE(battery.reported_remaining_mwh(), 0.0);
  EXPECT_TRUE(browned_out);
  ASSERT_TRUE(battery.depleted_at().has_value());
  EXPECT_GT(*battery.depleted_at(), 0);
  // recharge_full() re-arms the depletion edge.
  battery.connect_ac();
  battery.recharge_full();
  EXPECT_FALSE(battery.depleted_at().has_value());
  EXPECT_DOUBLE_EQ(battery.true_remaining_mwh(), tiny_battery().capacity_mwh);
}

TEST(BatteryFaults, StaleSensorFreezesReadings) {
  CpuFixture f;
  auto params = tiny_battery();
  params.capacity_mwh = 53000;
  power::AcpiBattery battery(f.engine, f.node, params, sim::Rng(11));
  battery.disconnect_ac();
  battery.start_polling();
  f.engine.run_until(sim::from_seconds(5));
  const double frozen = battery.reported_remaining_mwh();
  battery.set_sensor_fault(power::SensorFault::Stale);
  f.engine.run_until(sim::from_seconds(15));
  battery.stop_polling();
  EXPECT_DOUBLE_EQ(battery.reported_remaining_mwh(), frozen);
  EXPECT_LT(battery.true_remaining_mwh(), frozen);  // the pack kept draining
}

TEST(BatteryFaults, GarbageSensorReportsNoise) {
  CpuFixture f;
  auto params = tiny_battery();
  params.capacity_mwh = 53000;
  power::AcpiBattery battery(f.engine, f.node, params, sim::Rng(11));
  // On AC the true level never moves; any change in readings is noise.
  battery.set_sensor_fault(power::SensorFault::Garbage);
  battery.start_polling();
  bool moved = false;
  double prev = battery.reported_remaining_mwh();
  for (int tick = 1; tick <= 5; ++tick) {
    f.engine.run_until(sim::from_seconds(2.0 * tick));
    if (battery.reported_remaining_mwh() != prev) moved = true;
    prev = battery.reported_remaining_mwh();
  }
  battery.stop_polling();
  EXPECT_TRUE(moved);
  EXPECT_DOUBLE_EQ(battery.true_remaining_mwh(), params.capacity_mwh);
}

TEST(BatteryFaults, BaytechDropoutLeavesGapInRecords) {
  CpuFixture f;
  power::BaytechParams params;
  params.window_s = 1.0;
  power::BaytechStrip strip(f.engine, {&f.node}, params);
  strip.start_polling();
  f.engine.run_until(sim::from_seconds(3.5));
  const std::size_t before = strip.records().size();
  EXPECT_EQ(before, 3u);
  strip.set_dropout(true);
  f.engine.run_until(sim::from_seconds(6.5));
  EXPECT_EQ(strip.records().size(), before);  // SNMP silent: no records
  strip.set_dropout(false);
  f.engine.run_until(sim::from_seconds(8.5));
  strip.stop_polling();
  EXPECT_EQ(strip.records().size(), before + 2);
}

// ---- Network fault hooks ---------------------------------------------------

TEST(NetworkFaults, LinkStateIsPerNode) {
  sim::Engine engine;
  net::Network network(engine, 4, net::NetworkParams{}, sim::Rng(5));
  EXPECT_TRUE(network.link_up(0));
  network.set_link_up(0, false);
  EXPECT_FALSE(network.link_up(0));
  EXPECT_TRUE(network.link_up(1));
  network.set_link_up(0, true);
  EXPECT_TRUE(network.link_up(0));
  EXPECT_EQ(network.stats().link_stalls, 0);
}

// ---- Runner integration: zero-cost, replay, every fault kind ---------------

TEST(FaultRunner, InactivePlanIsBitIdentical) {
  // Arming resilience machinery without any injected fault must not perturb
  // the simulation by one bit: the watchdogs and the progress monitor are
  // pure observers, and no fault RNG stream is ever drawn.
  core::RunConfig plain;
  plain.daemon = core::CpuspeedParams{};
  const auto base = core::run_workload(apps::make_cg(kTinyScale), plain);

  core::RunConfig armed = plain;
  armed.faults.resilience.watchdog = true;
  armed.faults.resilience.mpi_timeout_s = 120;
  const auto guarded = core::run_workload(apps::make_cg(kTinyScale), armed);

  EXPECT_DOUBLE_EQ(guarded.delay_s, base.delay_s);
  EXPECT_DOUBLE_EQ(guarded.energy_j, base.energy_j);
  EXPECT_EQ(guarded.dvs_transitions, base.dvs_transitions);
  EXPECT_EQ(guarded.net_collisions, base.net_collisions);
  EXPECT_EQ(guarded.messages, base.messages);
  EXPECT_FALSE(guarded.failed);
  ASSERT_TRUE(guarded.fault_report.has_value());
  EXPECT_EQ(guarded.fault_report->injected, 0);
  EXPECT_EQ(guarded.fault_report->fallbacks, 0);
  EXPECT_FALSE(base.fault_report.has_value());
}

TEST(FaultRunner, FaultPlanReplaysDeterministically) {
  core::RunConfig cfg;
  cfg.seed = 13;
  cfg.daemon = core::CpuspeedParams{};
  cfg.faults.events.push_back(fault::straggler(0.4, 2, 0.6, 1.0));
  cfg.faults.events.push_back(fault::nic_degrade(0.8, 0.5, 0.2, 0.5));
  fault::HazardModel hazard;
  hazard.kind = fault::FaultKind::Straggler;
  hazard.mtbf_s = 1.0;
  hazard.duration_s = 0.3;
  hazard.magnitude = 0.8;
  cfg.faults.hazards.push_back(hazard);
  cfg.faults.horizon_s = 3.0;
  const auto a = core::run_workload(apps::make_cg(kTinyScale), cfg);
  const auto b = core::run_workload(apps::make_cg(kTinyScale), cfg);
  EXPECT_DOUBLE_EQ(a.delay_s, b.delay_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.net_collisions, b.net_collisions);
  ASSERT_TRUE(a.fault_report.has_value());
  ASSERT_TRUE(b.fault_report.has_value());
  EXPECT_GT(a.fault_report->injected, 2);  // hazards actually fired
  EXPECT_EQ(a.fault_report->injected, b.fault_report->injected);
  EXPECT_EQ(a.fault_report->events.size(), b.fault_report->events.size());
  for (std::size_t i = 0; i < a.fault_report->events.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.fault_report->events[i].t_s, b.fault_report->events[i].t_s);
    EXPECT_EQ(a.fault_report->events[i].kind, b.fault_report->events[i].kind);
    EXPECT_EQ(a.fault_report->events[i].node, b.fault_report->events[i].node);
  }
}

TEST(FaultRunner, StragglerStretchesSynchronousRun) {
  core::RunConfig cfg;
  const auto base = core::run_workload(apps::make_cg(kTinyScale), cfg);
  cfg.faults.events.push_back(fault::straggler(0.2, 0, 0.1));  // permanent
  const auto hit = core::run_workload(apps::make_cg(kTinyScale), cfg);
  // CG synchronizes every iteration, so one throttled node drags everyone.
  EXPECT_GT(hit.delay_s, base.delay_s * 1.3);
  EXPECT_FALSE(hit.failed);
  ASSERT_TRUE(hit.fault_report.has_value());
  EXPECT_EQ(hit.fault_report->injected, 1);
  EXPECT_EQ(hit.fault_report->cleared, 0);
}

TEST(FaultRunner, NicDegradationAddsCollisionsAndDelay) {
  core::RunConfig cfg;
  const auto base = core::run_workload(apps::make_is(0.1), cfg);
  cfg.faults.events.push_back(fault::nic_degrade(0.0, 0.25, 0.3));
  const auto hit = core::run_workload(apps::make_is(0.1), cfg);
  EXPECT_GT(hit.delay_s, base.delay_s);
  EXPECT_GT(hit.net_collisions, base.net_collisions);
  EXPECT_FALSE(hit.failed);
}

TEST(FaultRunner, LinkFlapStallsButCompletes) {
  core::RunConfig cfg;
  const auto base = core::run_workload(apps::make_cg(kTinyScale), cfg);
  cfg.faults.events.push_back(fault::link_flap(0.5, 0, 0.4));
  const auto hit = core::run_workload(apps::make_cg(kTinyScale), cfg);
  EXPECT_FALSE(hit.failed);
  EXPECT_GE(hit.delay_s, base.delay_s - 1e-9);
  ASSERT_TRUE(hit.fault_report.has_value());
  EXPECT_TRUE(report_mentions(*hit.fault_report, "link_flap", "injected"));
  EXPECT_TRUE(report_mentions(*hit.fault_report, "link_flap", "cleared"));
}

// ---- Watchdog: stuck-DVS fallback and wedged-daemon restart ----------------

TEST(FaultRunner, WatchdogFallbackPreservesPerformanceConstraint) {
  const double scale = 0.15;
  core::RunConfig plain;
  const auto base = core::run_workload(apps::make_cg(scale), plain);

  // CPUSPEED daemon everywhere; at t=0.3 s every DVS driver wedges for 1 s.
  core::RunConfig stuck;
  stuck.daemon = core::CpuspeedParams{};
  stuck.daemon->interval_s = 0.2;
  for (int n = 0; n < 8; ++n) {
    stuck.faults.events.push_back(fault::stuck_dvs(0.3, n, 1.0));
  }
  const auto unguarded = core::run_workload(apps::make_cg(scale), stuck);

  core::RunConfig guarded_cfg = stuck;
  guarded_cfg.telemetry.enabled = true;
  guarded_cfg.faults.resilience.watchdog = true;
  guarded_cfg.faults.resilience.watchdog_params.check_interval_s = 0.25;
  guarded_cfg.faults.resilience.watchdog_params.stuck_checks_before_fallback = 2;
  const auto guarded = core::run_workload(apps::make_cg(scale), guarded_cfg);

  // Without the watchdog, the daemon keeps issuing lost writes and the run
  // blows the baseline by far more than the paper's constraint.
  EXPECT_GT(unguarded.delay_s, base.delay_s * 1.05);
  // With it, every node degrades gracefully to full speed: delay lands
  // within 5% of the no-DVS baseline.  (Only the energy saving is lost.)
  EXPECT_FALSE(guarded.failed);
  EXPECT_LT(guarded.delay_s, base.delay_s * 1.05);

  ASSERT_TRUE(guarded.fault_report.has_value());
  const auto& report = *guarded.fault_report;
  EXPECT_EQ(report.injected, 8);
  EXPECT_GE(report.detections, 8);
  EXPECT_EQ(report.fallbacks, 8);
  EXPECT_GT(report.dvs_requests_dropped, 0);
  EXPECT_TRUE(report_mentions(report, "stuck_dvs", "detected"));
  EXPECT_TRUE(report_mentions(report, "fallback", "recovered"));

  // The full inject -> detect -> recover chain lands in telemetry too.
  ASSERT_TRUE(guarded.telemetry.has_value());
  EXPECT_FALSE(guarded.telemetry->faults.empty());
  bool fallback_decision = false;
  for (const auto& d : guarded.telemetry->decisions) {
    if (d.cause == telemetry::DvsCause::Fallback) fallback_decision = true;
  }
  EXPECT_TRUE(fallback_decision);
  const std::string csv = telemetry::faults_csv(*guarded.telemetry);
  EXPECT_NE(csv.find("stuck_dvs"), std::string::npos);
  EXPECT_NE(csv.find("recovered"), std::string::npos);
  EXPECT_NE(guarded.telemetry->chrome_trace_json.find("\"cat\":\"fault\""),
            std::string::npos);
}

TEST(FaultRunner, WatchdogFallbackDumpsTheFlightRecorder) {
  // Same stuck-DVS scenario as above, with the determinism flight recorder
  // armed: every watchdog fallback must attach a black-box dump carrying
  // the last causal steps plus the registered state snapshots.
  core::RunConfig cfg;
  cfg.daemon = core::CpuspeedParams{};
  cfg.daemon->interval_s = 0.2;
  for (int n = 0; n < 8; ++n) {
    cfg.faults.events.push_back(fault::stuck_dvs(0.3, n, 1.0));
  }
  cfg.faults.resilience.watchdog = true;
  cfg.faults.resilience.watchdog_params.check_interval_s = 0.25;
  cfg.faults.resilience.watchdog_params.stuck_checks_before_fallback = 2;
  cfg.determinism.flight_recorder = true;
  cfg.determinism.recorder_entries = 256;
  const auto r = core::run_workload(apps::make_cg(0.15), cfg);

  ASSERT_TRUE(r.fault_report.has_value());
  EXPECT_EQ(r.fault_report->fallbacks, 8);
  ASSERT_EQ(r.fault_report->flight_recordings.size(), 8u);
  const std::string& dump = r.fault_report->flight_recordings.front();
  EXPECT_NE(dump.find("watchdog fallback (node"), std::string::npos);
  EXPECT_NE(dump.find("\"events\":["), std::string::npos);
  EXPECT_NE(dump.find("\"site\":\""), std::string::npos);
  EXPECT_NE(dump.find("\"rng_draws\""), std::string::npos);
  EXPECT_NE(dump.find("\"engine\""), std::string::npos);
}

TEST(FaultRunner, WatchdogRestartsWedgedDaemon) {
  core::RunConfig cfg;
  cfg.daemon = core::CpuspeedParams{};
  cfg.daemon->interval_s = 0.2;
  cfg.faults.events.push_back(fault::daemon_wedge(0.4, 0));
  cfg.faults.resilience.watchdog = true;
  cfg.faults.resilience.watchdog_params.check_interval_s = 0.25;
  const auto result = core::run_workload(apps::make_cg(kTinyScale), cfg);
  EXPECT_FALSE(result.failed);
  ASSERT_TRUE(result.fault_report.has_value());
  EXPECT_GE(result.fault_report->daemon_restarts, 1);
  EXPECT_TRUE(report_mentions(*result.fault_report, "daemon_wedge", "detected"));
  EXPECT_TRUE(report_mentions(*result.fault_report, "daemon_wedge", "recovered"));
}

TEST(FaultRunner, WatchdogBackoffAccountingIsCumulativeAtGiveUp) {
  // Regression for the restart-backoff ledger: a daemon that never comes
  // back exhausts max_restarts with intervals b, 2b, 4b, so the report must
  // carry b*(2^N - 1) — the backoff actually waited — not the next doubled
  // interval the watchdog would have scheduled.
  sim::Engine engine;
  machine::Node node(engine, 0, machine::NodeConfig{}, sim::Rng(5));
  fault::WatchdogParams params;  // defaults: backoff 0.5 s, max_restarts 3
  params.check_interval_s = 0.25;
  fault::FaultReport report;
  fault::DaemonHooks hooks;
  int restart_calls = 0;
  hooks.polls = [] { return std::int64_t{7}; };  // frozen forever
  hooks.restart = [&] { ++restart_calls; };      // no-op: stays wedged
  hooks.expected_poll_interval_s = 0.25;
  fault::DaemonWatchdog dog(engine, node, params, hooks, &report);
  dog.start();
  engine.run_until(sim::from_seconds(30));
  dog.stop();

  EXPECT_EQ(restart_calls, 3);
  EXPECT_EQ(dog.restarts(), 3);
  EXPECT_DOUBLE_EQ(dog.backoff_total_s(), 0.5 + 1.0 + 2.0);
  EXPECT_EQ(report.daemon_restarts, 3);
  EXPECT_DOUBLE_EQ(report.daemon_backoff_s, 3.5);
  EXPECT_TRUE(dog.in_fallback());
  bool gave_up = false;
  for (const auto& e : report.events) {
    if (e.detail.find("cumulative backoff") != std::string::npos) {
      EXPECT_NE(e.detail.find("3 restarts"), std::string::npos);
      EXPECT_NE(e.detail.find("3.50 s"), std::string::npos);
      gave_up = true;
    }
  }
  EXPECT_TRUE(gave_up);
}

// ---- Hazard and event-timing edge cases ------------------------------------

TEST(FaultHazards, NonPositiveMtbfIsAStructuredConfigIssue) {
  core::RunConfig cfg;
  fault::HazardModel h;
  h.mtbf_s = 0;
  cfg.faults.hazards.push_back(h);
  auto issues = cfg.validate();
  ASSERT_FALSE(issues.empty());
  bool flagged = false;
  for (const auto& i : issues) {
    if (i.field == "faults.hazards") flagged = true;
  }
  EXPECT_TRUE(flagged);
  cfg.faults.hazards[0].mtbf_s = -5;
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(FaultHazards, HandArmedInjectorSkipsDegenerateMtbfWithoutSpinning) {
  // A hazard that slips past validation (hand-armed injector) must neither
  // inject anything nor loop forever sampling zero-length inter-arrivals.
  sim::Engine engine;
  machine::ClusterConfig cluster_cfg;
  cluster_cfg.nodes = 2;
  machine::Cluster cluster(engine, cluster_cfg);
  fault::FaultPlan plan;
  fault::HazardModel h;
  h.mtbf_s = 0;
  h.kind = fault::FaultKind::Straggler;
  plan.hazards.push_back(h);
  fault::FaultReport report;
  fault::FaultInjector injector(engine, cluster, plan, sim::Rng(9), &report);
  injector.arm();  // must return, not spin
  engine.run();
  injector.finalize();
  EXPECT_EQ(report.injected, 0);
}

TEST(FaultRunner, FaultScheduledBeyondRunEndNeverFires) {
  core::RunConfig cfg;
  cfg.faults.events.push_back(fault::node_crash(1e6, 0));  // far past run end
  const auto result = core::run_workload(apps::make_cg(kTinyScale), cfg);
  EXPECT_FALSE(result.failed);
  ASSERT_TRUE(result.fault_report.has_value());
  EXPECT_EQ(result.fault_report->injected, 0);
  EXPECT_FALSE(result.fault_report->run_failed);

  // And the armed-but-silent plan is still deterministic: replay is
  // bit-identical.
  const auto replay = core::run_workload(apps::make_cg(kTinyScale), cfg);
  EXPECT_DOUBLE_EQ(result.delay_s, replay.delay_s);
  EXPECT_DOUBLE_EQ(result.energy_j, replay.energy_j);
}

TEST(FaultRunner, OverlappingCrashAndStragglerReplayDeterministically) {
  // Two faults live on the same node at once — a throttled CPU that then
  // loses power mid-outage — under checkpoint/restart.  The combination
  // must survive and replay bit-identically.
  core::RunConfig cfg;
  cfg.faults.events.push_back(fault::straggler(0.3, 0, 0.5, /*duration_s=*/2.0));
  cfg.faults.events.push_back(fault::node_crash(0.6, 0, /*boot_delay_s=*/0.4));
  cfg.faults.resilience.checkpoint_interval_s = 0.25;
  cfg.faults.resilience.checkpoint_cost_s = 0.02;
  const auto a = core::run_workload(apps::make_cg(kTinyScale), cfg);
  EXPECT_FALSE(a.failed);
  ASSERT_TRUE(a.fault_report.has_value());
  EXPECT_EQ(a.fault_report->injected, 2);
  EXPECT_EQ(a.fault_report->node_reboots, 1);
  const auto b = core::run_workload(apps::make_cg(kTinyScale), cfg);
  EXPECT_DOUBLE_EQ(a.delay_s, b.delay_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.dvs_transitions, b.dvs_transitions);
}

TEST(FaultRunner, RebootRacingATimedFaultClearIsDeterministic) {
  // A stuck-DVS window (0.4 s .. 1.0 s) straddles the crash at 0.5 s and
  // clears while the node is still dark (reboot lands ~0.9 s + redo).  The
  // clear must not resurrect state on the downed node, and the interleaving
  // replays bit-identically.
  core::RunConfig cfg;
  cfg.daemon = core::CpuspeedParams{};
  cfg.faults.events.push_back(fault::stuck_dvs(0.4, 0, /*duration_s=*/0.6));
  cfg.faults.events.push_back(fault::node_crash(0.5, 0, /*boot_delay_s=*/0.4));
  cfg.faults.resilience.checkpoint_interval_s = 0.25;
  cfg.faults.resilience.checkpoint_cost_s = 0.02;
  const auto a = core::run_workload(apps::make_cg(kTinyScale), cfg);
  EXPECT_FALSE(a.failed);
  ASSERT_TRUE(a.fault_report.has_value());
  EXPECT_EQ(a.fault_report->node_reboots, 1);
  EXPECT_TRUE(report_mentions(*a.fault_report, "node_crash", "recovered"));
  const auto b = core::run_workload(apps::make_cg(kTinyScale), cfg);
  EXPECT_DOUBLE_EQ(a.delay_s, b.delay_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.net_collisions, b.net_collisions);
}

// ---- Node crash: structured failure vs. checkpoint/restart -----------------

TEST(FaultRunner, CrashWithoutCheckpointFailsStructurally) {
  core::RunConfig cfg;
  cfg.daemon = core::CpuspeedParams{};
  cfg.faults.events.push_back(fault::node_crash(0.5, 0));
  cfg.faults.resilience.mpi_timeout_s = 5;
  const auto result = core::run_workload(apps::make_cg(kTinyScale), cfg);
  EXPECT_TRUE(result.failed);
  EXPECT_FALSE(result.failure.empty());
  ASSERT_TRUE(result.fault_report.has_value());
  EXPECT_TRUE(result.fault_report->run_failed);
  EXPECT_EQ(result.fault_report->node_reboots, 0);
  EXPECT_GT(result.fault_report->node_downtime_s, 0);
  EXPECT_TRUE(report_mentions(*result.fault_report, "node_crash", "injected"));
}

TEST(FaultRunner, CheckpointRestartSurvivesCrash) {
  core::RunConfig cfg;
  cfg.faults.events.push_back(fault::node_crash(0.6, 0, /*boot_delay_s=*/0.5));
  cfg.faults.resilience.checkpoint_interval_s = 0.5;
  cfg.faults.resilience.checkpoint_cost_s = 0.05;
  const auto result = core::run_workload(apps::make_cg(kTinyScale), cfg);
  EXPECT_FALSE(result.failed);
  ASSERT_TRUE(result.fault_report.has_value());
  const auto& report = *result.fault_report;
  EXPECT_EQ(report.node_reboots, 1);
  EXPECT_GE(report.checkpoints, 1);
  EXPECT_GT(report.node_downtime_s, 0);
  EXPECT_GT(report.checkpoint_stall_s, 0);
  EXPECT_TRUE(report_mentions(report, "node_crash", "recovered"));

  // The run pays for the outage: slower than the undisturbed baseline.
  core::RunConfig plain;
  const auto base = core::run_workload(apps::make_cg(kTinyScale), plain);
  EXPECT_GT(result.delay_s, base.delay_s);
}

TEST(FaultRunner, BatteryExhaustionTakesNodeDown) {
  // Long enough to cross the first ACPI refresh (15-20 s) after the cell
  // failure empties the pack; the brown-out then stalls rank 0 until the
  // MPI progress watchdog declares the run dead.
  core::RunConfig cfg;
  cfg.telemetry.enabled = true;
  cfg.daemon = core::CpuspeedParams{};
  cfg.faults.events.push_back(fault::battery_fail(1.0, 0, 0.0));
  cfg.faults.resilience.mpi_timeout_s = 10;
  const auto result = core::run_workload(apps::make_cg(0.5), cfg);
  EXPECT_TRUE(result.failed);
  ASSERT_TRUE(result.fault_report.has_value());
  EXPECT_TRUE(report_mentions(*result.fault_report, "battery_fail", "injected"));
  ASSERT_TRUE(result.telemetry.has_value());
  bool browned_out = false;
  for (const auto& e : result.telemetry->faults) {
    if (e.kind == "battery_depleted") browned_out = true;
  }
  EXPECT_TRUE(browned_out);
}

// ---- Report rendering ------------------------------------------------------

TEST(FaultReport, SummaryRendersCountersAndEvents) {
  fault::FaultReport report;
  report.record(1.5, 3, "stuck_dvs", "injected", "pinned at 600 MHz");
  report.record(2.5, 3, "stuck_dvs", "detected", "writes lost");
  report.fallbacks = 1;
  report.run_failed = true;
  report.failure = "boom";
  const std::string s = report.summary();
  EXPECT_NE(s.find("1 injected"), std::string::npos);
  EXPECT_NE(s.find("1 detected"), std::string::npos);
  EXPECT_NE(s.find("stuck_dvs"), std::string::npos);
  EXPECT_NE(s.find("RUN FAILED: boom"), std::string::npos);
  EXPECT_EQ(report.injected, 1);
  EXPECT_EQ(report.detections, 1);
}

TEST(FaultPlanApi, KindNamesAndActivation) {
  EXPECT_STREQ(fault::to_string(fault::FaultKind::NodeCrash), "node_crash");
  EXPECT_STREQ(fault::to_string(fault::FaultKind::SensorDropout), "sensor_dropout");
  fault::FaultPlan plan;
  EXPECT_FALSE(plan.injects());
  EXPECT_FALSE(plan.active());
  plan.resilience.watchdog = true;
  EXPECT_FALSE(plan.injects());
  EXPECT_TRUE(plan.active());
  plan.events.push_back(fault::stuck_dvs(1.0, 0));
  EXPECT_TRUE(plan.injects());
}
